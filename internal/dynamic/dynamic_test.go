package dynamic

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestInterval(t *testing.T) {
	iv := Interval{From: 3, To: 7}
	for _, c := range []struct {
		t    int64
		want bool
	}{{2, false}, {3, true}, {6, true}, {7, false}} {
		if iv.Contains(c.t) != c.want {
			t.Fatalf("Contains(%d) = %v", c.t, !c.want)
		}
	}
}

func TestSchedule(t *testing.T) {
	s := &Schedule{Down: map[graph.EdgeID][]Interval{
		1: {{From: 10, To: 20}, {From: 30, To: 31}},
	}}
	if !s.EdgeAlive(5, 1) || !s.EdgeAlive(20, 1) {
		t.Fatal("edge dead outside its windows")
	}
	if s.EdgeAlive(10, 1) || s.EdgeAlive(19, 1) || s.EdgeAlive(30, 1) {
		t.Fatal("edge alive inside its windows")
	}
	if !s.EdgeAlive(15, 0) {
		t.Fatal("unscheduled edge affected")
	}
	if s.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestRoundRobinBlink(t *testing.T) {
	r := &RoundRobinBlink{Victims: []graph.EdgeID{2, 5}, Period: 3}
	// t in [0,3): victim 2 down; t in [3,6): victim 5 down; then repeat.
	for tm := int64(0); tm < 12; tm++ {
		victim := r.Victims[(tm/3)%2]
		for _, e := range []graph.EdgeID{0, 2, 5} {
			want := e != victim
			if r.EdgeAlive(tm, e) != want {
				t.Fatalf("t=%d edge=%d alive=%v, want %v", tm, e, !want, want)
			}
		}
	}
	empty := &RoundRobinBlink{Period: 3}
	if !empty.EdgeAlive(0, 0) {
		t.Fatal("no victims should mean all alive")
	}
}

func TestRoundRobinBlinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad period accepted")
		}
	}()
	(&RoundRobinBlink{Victims: []graph.EdgeID{0}}).EdgeAlive(0, 0)
}

func TestFlakyProtectedAndConsistent(t *testing.T) {
	f := &Flaky{PUp: 0.5, Protected: map[graph.EdgeID]bool{0: true}, R: rng.New(1)}
	for tm := int64(0); tm < 100; tm++ {
		if !f.EdgeAlive(tm, 0) {
			t.Fatal("protected edge died")
		}
		// Same (t, e) must answer consistently within a step.
		a := f.EdgeAlive(tm, 1)
		if f.EdgeAlive(tm, 1) != a {
			t.Fatal("per-step decision not cached")
		}
	}
	// Unprotected edges should be down sometimes and up sometimes.
	up, down := 0, 0
	for tm := int64(0); tm < 400; tm++ {
		if f.EdgeAlive(tm, 2) {
			up++
		} else {
			down++
		}
	}
	if up < 100 || down < 100 {
		t.Fatalf("flaky imbalance up=%d down=%d", up, down)
	}
}

func TestChurn(t *testing.T) {
	c := &Churn{
		MaskA:  []bool{true, false},
		MaskB:  []bool{false, true},
		Period: 5,
	}
	if !c.EdgeAlive(0, 0) || c.EdgeAlive(0, 1) {
		t.Fatal("phase A mask wrong")
	}
	if c.EdgeAlive(5, 0) || !c.EdgeAlive(5, 1) {
		t.Fatal("phase B mask wrong")
	}
	if !c.EdgeAlive(10, 0) {
		t.Fatal("phase did not cycle back")
	}
}

func TestChurnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad period accepted")
		}
	}()
	(&Churn{MaskA: []bool{true}, MaskB: []bool{true}}).EdgeAlive(0, 0)
}
