// Package dynamic implements time-varying topologies for the Conjecture 4
// experiments ("the case of a dynamic network in which the topology
// changes among time"). A TopologyProcess masks edges step by step; the
// engine hides dead edges from the routing policy and rejects
// transmissions over them.
package dynamic

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Interval is a half-open time range [From, To).
type Interval struct {
	From, To int64
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t int64) bool { return t >= iv.From && t < iv.To }

// Schedule takes edges down during explicit intervals: edge e is dead at
// time t iff some interval in Down[e] contains t. Deterministic and
// scriptable — the adversarial topology process.
type Schedule struct {
	Down map[graph.EdgeID][]Interval
}

// Name implements core.TopologyProcess.
func (s *Schedule) Name() string { return fmt.Sprintf("schedule(%d edges)", len(s.Down)) }

// EdgeAlive implements core.TopologyProcess.
func (s *Schedule) EdgeAlive(t int64, e graph.EdgeID) bool {
	for _, iv := range s.Down[e] {
		if iv.Contains(t) {
			return false
		}
	}
	return true
}

// RoundRobinBlink takes down one victim edge at a time, rotating through
// the Victims list every Period steps (each victim is dead for Period
// consecutive steps, then the next takes over). Edges outside Victims are
// always alive, so protecting a feasible backbone is easy: leave its
// edges out of Victims.
type RoundRobinBlink struct {
	Victims []graph.EdgeID
	Period  int64
}

// Name implements core.TopologyProcess.
func (r *RoundRobinBlink) Name() string {
	return fmt.Sprintf("round-robin-blink(%d victims, period %d)", len(r.Victims), r.Period)
}

// EdgeAlive implements core.TopologyProcess.
func (r *RoundRobinBlink) EdgeAlive(t int64, e graph.EdgeID) bool {
	if len(r.Victims) == 0 {
		return true
	}
	if r.Period <= 0 {
		panic("dynamic: RoundRobinBlink needs a positive period")
	}
	idx := (t / r.Period) % int64(len(r.Victims))
	return r.Victims[idx] != e
}

// Flaky keeps every non-protected edge alive independently with
// probability PUp at each step (memoryless). Protected edges are always
// alive — set them to a spanning feasible subnetwork to keep the
// conjecture's premise ("the number of injected packets ensures the
// existence of a feasible S-D-flow") true at every step.
type Flaky struct {
	PUp       float64
	Protected map[graph.EdgeID]bool
	R         *rng.Source

	// cache: per-step decisions so all queries at the same t agree
	t     int64
	alive map[graph.EdgeID]bool
}

// Name implements core.TopologyProcess.
func (f *Flaky) Name() string {
	return fmt.Sprintf("flaky(p=%g, %d protected)", f.PUp, len(f.Protected))
}

// EdgeAlive implements core.TopologyProcess.
func (f *Flaky) EdgeAlive(t int64, e graph.EdgeID) bool {
	if f.Protected[e] {
		return true
	}
	if f.alive == nil || t != f.t {
		f.t = t
		f.alive = map[graph.EdgeID]bool{}
	}
	a, ok := f.alive[e]
	if !ok {
		a = f.R.Bool(f.PUp)
		f.alive[e] = a
	}
	return a
}

// Churn alternates between two whole topologies (edge masks) every Period
// steps — the "network reconfiguration" shape of dynamic networks. Both
// masks should be feasible for the spec if the experiment wants to stay
// inside Conjecture 4's premise.
type Churn struct {
	MaskA, MaskB []bool
	Period       int64
}

// Name implements core.TopologyProcess.
func (c *Churn) Name() string { return fmt.Sprintf("churn(period %d)", c.Period) }

// EdgeAlive implements core.TopologyProcess.
func (c *Churn) EdgeAlive(t int64, e graph.EdgeID) bool {
	if c.Period <= 0 {
		panic("dynamic: Churn needs a positive period")
	}
	if (t/c.Period)%2 == 0 {
		return c.MaskA[e]
	}
	return c.MaskB[e]
}
