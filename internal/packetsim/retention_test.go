package packetsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Generalized (R > 0) behaviour of the packet engine.

func TestRetentionHoldsPackets(t *testing.T) {
	// Sink with R=3 and lazy extraction: it may retain up to 3 packets
	// forever; above that, Definition 7(i) forces extraction.
	g := graph.Line(2)
	spec := core.NewSpec(g).SetSource(0, 1).SetSink(1, 2).SetRetention(1, 3)
	pe := New(spec, core.NewLGG())
	pe.Extract = core.ExtractMin{}
	pe.Run(100)
	q := pe.QueueLen(1)
	if q == 0 {
		t.Fatal("lazy generalized sink should retain packets")
	}
	if q > 3+2 { // R plus at most one round of slack
		t.Fatalf("retention exceeded: %d", q)
	}
	// Parity with the count engine under identical policies.
	ce := core.NewEngine(spec, core.NewLGG())
	ce.Extract = core.ExtractMin{}
	ce.Run(100)
	if ce.Q[1] != q {
		t.Fatalf("count engine q=%d vs packet engine %d", ce.Q[1], q)
	}
}

func TestLyingSinkAttractsAndParity(t *testing.T) {
	g := graph.ThetaGraph(2, 2)
	spec := core.NewSpec(g).SetSource(0, 1).SetSink(1, 1).SetRetention(1, 6)
	mk := func() (*Engine, *core.Engine) {
		pe := New(spec, core.NewLGG())
		pe.Declare = core.DeclareZero{}
		pe.Extract = core.ExtractMin{}
		ce := core.NewEngine(spec, core.NewLGG())
		ce.Declare = core.DeclareZero{}
		ce.Extract = core.ExtractMin{}
		return pe, ce
	}
	pe, ce := mk()
	lens := make([]int64, spec.N())
	for i := 0; i < 200; i++ {
		pe.Step()
		ce.Step()
		pe.QueueLens(lens)
		for v := range lens {
			if lens[v] != ce.Q[v] {
				t.Fatalf("step %d node %d: %d vs %d", i, v, lens[v], ce.Q[v])
			}
		}
	}
}

func TestDeliveriesCarrySinkIdentity(t *testing.T) {
	// Two sinks: deliveries must record which sink extracted each packet.
	g := graph.Star(3)
	spec := core.NewSpec(g).SetSource(0, 2).SetSink(1, 1).SetSink(2, 1)
	pe := New(spec, core.NewLGG())
	pe.Run(200)
	seen := map[graph.NodeID]int{}
	for _, d := range pe.Deliveries {
		seen[d.At]++
	}
	if seen[1] == 0 || seen[2] == 0 {
		t.Fatalf("deliveries per sink: %v", seen)
	}
	if seen[0] != 0 {
		t.Fatal("non-sink recorded deliveries")
	}
}

func TestSourceIdentityPreserved(t *testing.T) {
	g := graph.Line(3)
	spec := core.NewSpec(g).SetSource(0, 1).SetSink(2, 2)
	pe := New(spec, core.NewLGG())
	pe.Run(100)
	for _, d := range pe.Deliveries {
		if d.Src != 0 {
			t.Fatalf("packet %d has source %d", d.ID, d.Src)
		}
		if d.Born < 0 || d.Done < d.Born {
			t.Fatalf("timeline broken: born %d done %d", d.Born, d.Done)
		}
	}
}
