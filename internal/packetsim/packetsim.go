// Package packetsim is a packet-identity twin of the core engine. Where
// core.Engine tracks anonymous queue *counts* (all the paper's theory
// needs), this engine tracks individual packets through FIFO queues, so
// experiments can measure what the count model cannot: end-to-end
// latency, hop counts, delivery ratios per source, and the age of the
// oldest packet in flight.
//
// The step semantics are identical to core.Engine — same snapshot
// planning, same physical validation, same extraction window — and a
// cross-validation test asserts that, run side by side with the same
// policies, the two engines produce byte-identical queue-length vectors
// at every step.
package packetsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Packet is one tracked packet.
type Packet struct {
	ID   int64
	Src  graph.NodeID
	Born int64
	Hops int32
}

// Delivery records a packet leaving the network through a sink.
type Delivery struct {
	Packet
	At   graph.NodeID
	Done int64
}

// Engine is the packet-level simulator. Construct with New; the pluggable
// behaviours default to the classical semantics exactly like core.Engine.
type Engine struct {
	Spec     *core.Spec
	Router   core.Router
	Arrivals core.ArrivalProcess
	Loss     core.LossModel
	Declare  core.DeclarePolicy
	Extract  core.ExtractPolicy

	T      int64
	queues [][]Packet
	nextID int64

	// Aggregates (running).
	Injected  int64
	Delivered int64
	Lost      int64
	// SumStored accumulates the end-of-step backlog, so
	// SumStored/T is the time-averaged number in system (the L of
	// Little's law; see MeanStored).
	SumStored int64
	// Deliveries holds every completed delivery when KeepDeliveries is
	// true (default); long unbounded runs may switch it off and rely on
	// the running aggregates below.
	KeepDeliveries bool
	Deliveries     []Delivery
	SumLatency     int64
	MaxLatency     int64
	SumHops        int64

	// scratch
	inj      []int64
	snapQ    []int64
	declared []int64
	sends    []core.Send
	edgeUsed []int64
	sentBy   []int64
}

// New builds a packet engine with classical defaults.
func New(spec *core.Spec, router core.Router) *Engine {
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("packetsim: invalid spec: %v", err))
	}
	n := spec.N()
	return &Engine{
		Spec:           spec,
		Router:         router,
		Arrivals:       core.ExactArrivals{},
		Loss:           core.NoLoss{},
		Declare:        core.DeclareTruth{},
		Extract:        core.ExtractMax{},
		KeepDeliveries: true,
		queues:         make([][]Packet, n),
		inj:            make([]int64, n),
		snapQ:          make([]int64, n),
		declared:       make([]int64, n),
		sentBy:         make([]int64, n),
		edgeUsed:       make([]int64, spec.G.NumEdges()),
	}
}

// QueueLen returns the current queue length of v.
func (e *Engine) QueueLen(v graph.NodeID) int64 { return int64(len(e.queues[v])) }

// QueueLens fills out with all queue lengths (len must be N).
func (e *Engine) QueueLens(out []int64) {
	for v := range e.queues {
		out[v] = int64(len(e.queues[v]))
	}
}

// Stored returns the number of packets currently in the network.
func (e *Engine) Stored() int64 {
	var t int64
	for _, q := range e.queues {
		t += int64(len(q))
	}
	return t
}

// OldestAge returns the age of the oldest stored packet (0 if empty).
func (e *Engine) OldestAge() int64 {
	var born int64 = -1
	for _, q := range e.queues {
		for _, p := range q {
			if born == -1 || p.Born < born {
				born = p.Born
			}
		}
	}
	if born == -1 {
		return 0
	}
	return e.T - born
}

// MeanStored returns the time-averaged backlog L = (Σ_t N_t)/T.
func (e *Engine) MeanStored() float64 {
	if e.T == 0 {
		return 0
	}
	return float64(e.SumStored) / float64(e.T)
}

// LittleLawGap compares the measured time-average backlog L with
// Little's law's prediction λ·W from the delivered packets (λ =
// delivered/T, W = mean latency). With end-of-step sampling the
// conventions line up exactly: a packet delivered m steps after its
// injection appears in exactly m end-of-step backlogs and has latency m.
// For a stationary system the two sides agree asymptotically; stranded
// or lost packets open a gap.
func (e *Engine) LittleLawGap() (l, lambdaW float64) {
	l = e.MeanStored()
	if e.T == 0 || e.Delivered == 0 {
		return l, 0
	}
	lambda := float64(e.Delivered) / float64(e.T)
	return l, lambda * e.MeanLatency()
}

// MeanLatency returns the average delivery latency so far (0 if nothing
// was delivered).
func (e *Engine) MeanLatency() float64 {
	if e.Delivered == 0 {
		return 0
	}
	return float64(e.SumLatency) / float64(e.Delivered)
}

// MeanHops returns the average hop count of delivered packets.
func (e *Engine) MeanHops() float64 {
	if e.Delivered == 0 {
		return 0
	}
	return float64(e.SumHops) / float64(e.Delivered)
}

// Step executes one synchronous step (mirroring core.Engine.Step).
func (e *Engine) Step() {
	spec := e.Spec
	g := spec.G
	n := spec.N()

	// Phase 1: injection (FIFO tail).
	for v := range e.inj {
		e.inj[v] = 0
	}
	e.Arrivals.Injections(e.T, spec, e.inj)
	for v := 0; v < n; v++ {
		for k := int64(0); k < e.inj[v]; k++ {
			e.queues[v] = append(e.queues[v], Packet{
				ID: e.nextID, Src: graph.NodeID(v), Born: e.T,
			})
			e.nextID++
			e.Injected++
		}
	}

	// Phase 2: snapshot + declarations.
	for v := 0; v < n; v++ {
		q := int64(len(e.queues[v]))
		e.snapQ[v] = q
		if r := spec.R[v]; r > 0 && q <= r {
			d := e.Declare.Declare(e.T, graph.NodeID(v), q, r)
			if d < 0 {
				d = 0
			}
			if d > r {
				d = r
			}
			e.declared[v] = d
		} else {
			e.declared[v] = q
		}
	}
	snap := core.Snapshot{Spec: spec, T: e.T, Q: e.snapQ, Declared: e.declared}

	// Phase 3: plan + validate.
	e.sends = e.Router.Plan(&snap, e.sends[:0])
	marker := e.T + 1
	for v := range e.sentBy {
		e.sentBy[v] = 0
	}
	valid := e.sends[:0]
	for _, s := range e.sends {
		if e.edgeUsed[s.Edge] == marker {
			continue
		}
		if e.sentBy[s.From]+1 > e.snapQ[s.From] {
			continue
		}
		e.edgeUsed[s.Edge] = marker
		e.sentBy[s.From]++
		valid = append(valid, s)
	}
	e.sends = valid

	// Phase 4: transmit FIFO heads. All pops use the snapshot queues, so
	// a packet arriving this step cannot be forwarded this step.
	for _, s := range e.sends {
		q := e.queues[s.From]
		p := q[0]
		e.queues[s.From] = q[1:]
		if e.Loss.Lost(e.T, s.Edge, s.From) {
			e.Lost++
			continue
		}
		p.Hops++
		to := s.To(g)
		e.queues[to] = append(e.queues[to], p)
	}

	// Phase 5: extraction (FIFO heads at sinks).
	for v := 0; v < n; v++ {
		out := spec.Out[v]
		if out == 0 {
			continue
		}
		q := int64(len(e.queues[v]))
		hi := min64(out, q)
		var lo int64
		if r := spec.R[v]; q > r {
			lo = min64(out, q-r)
		}
		amt := e.Extract.Extract(e.T, graph.NodeID(v), lo, hi)
		if amt < lo {
			amt = lo
		}
		if amt > hi {
			amt = hi
		}
		for k := int64(0); k < amt; k++ {
			p := e.queues[v][0]
			e.queues[v] = e.queues[v][1:]
			lat := e.T - p.Born
			e.Delivered++
			e.SumLatency += lat
			if lat > e.MaxLatency {
				e.MaxLatency = lat
			}
			e.SumHops += int64(p.Hops)
			if e.KeepDeliveries {
				e.Deliveries = append(e.Deliveries, Delivery{
					Packet: p, At: graph.NodeID(v), Done: e.T,
				})
			}
		}
	}
	e.T++
	e.SumStored += e.Stored()
}

// Run executes steps time steps.
func (e *Engine) Run(steps int64) {
	for i := int64(0); i < steps; i++ {
		e.Step()
	}
}

// Latencies extracts the latency of every recorded delivery.
func (e *Engine) Latencies() []int64 {
	out := make([]int64, len(e.Deliveries))
	for i, d := range e.Deliveries {
		out[i] = d.Done - d.Born
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
