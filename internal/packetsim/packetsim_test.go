package packetsim

import (
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/loss"
	"repro/internal/rng"
)

func thetaSpec() *core.Spec {
	return core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
}

// TestCountParity is the cross-validation at the heart of this package:
// the packet engine and the count engine, fed identical policies, must
// agree on every queue length at every step.
func TestCountParity(t *testing.T) {
	spec := thetaSpec()
	pe := New(spec, core.NewLGG())
	ce := core.NewEngine(spec, core.NewLGG())
	lens := make([]int64, spec.N())
	for i := 0; i < 500; i++ {
		pe.Step()
		ce.Step()
		pe.QueueLens(lens)
		for v := range lens {
			if lens[v] != ce.Q[v] {
				t.Fatalf("step %d node %d: packet engine %d vs count engine %d",
					i, v, lens[v], ce.Q[v])
			}
		}
	}
}

// Property: parity holds on random networks with lying nodes and
// deterministic loss schedules (both engines must see the same losses, so
// the loss model must be a pure function of (t, edge)).
func TestQuickCountParityUniversal(t *testing.T) {
	f := func(seed uint64, nRaw uint8, retention uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%8) + 3
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		spec := core.NewSpec(g).SetSource(0, 1+r.Int64N(3)).SetSink(graph.NodeID(n-1), 1+r.Int64N(3))
		if retention%2 == 1 {
			spec.SetRetention(graph.NodeID(n-1), int64(retention))
		}
		// deterministic pure loss: drop when (t+edge) divisible by 5
		lossModel := periodicLoss{}
		pe := New(spec, core.NewLGG())
		pe.Loss = lossModel
		pe.Declare = core.DeclareZero{}
		ce := core.NewEngine(spec, core.NewLGG())
		ce.Loss = lossModel
		ce.Declare = core.DeclareZero{}
		lens := make([]int64, n)
		for i := 0; i < 80; i++ {
			pe.Step()
			ce.Step()
			pe.QueueLens(lens)
			for v := range lens {
				if lens[v] != ce.Q[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

type periodicLoss struct{}

func (periodicLoss) Name() string { return "periodic" }
func (periodicLoss) Lost(t int64, e graph.EdgeID, _ graph.NodeID) bool {
	return (t+int64(e))%5 == 0
}

func TestPacketConservation(t *testing.T) {
	pe := New(thetaSpec(), core.NewLGG())
	pe.Run(400)
	if pe.Injected != pe.Delivered+pe.Lost+pe.Stored() {
		t.Fatalf("conservation: injected=%d delivered=%d lost=%d stored=%d",
			pe.Injected, pe.Delivered, pe.Lost, pe.Stored())
	}
	if pe.Injected != 800 {
		t.Fatalf("injected = %d", pe.Injected)
	}
}

func TestLatencyAccounting(t *testing.T) {
	// On a 2-node line with in=out=1, each packet takes exactly 1 step:
	// injected at t, forwarded at t, extracted at t... forwarded and then
	// extracted within the same step (arrival precedes extraction).
	spec := core.NewSpec(graph.Line(2)).SetSource(0, 1).SetSink(1, 1)
	pe := New(spec, core.NewLGG())
	pe.Run(100)
	if pe.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	for _, d := range pe.Deliveries {
		if lat := d.Done - d.Born; lat != 0 {
			t.Fatalf("latency %d on the 1-hop line, want 0 (same-step delivery)", lat)
		}
		if d.Hops != 1 {
			t.Fatalf("hops = %d, want 1", d.Hops)
		}
	}
	if pe.MeanHops() != 1 {
		t.Fatalf("mean hops = %v", pe.MeanHops())
	}
	if pe.MeanLatency() != 0 {
		t.Fatalf("mean latency = %v", pe.MeanLatency())
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	// Deliveries drained through a single forward path preserve injection
	// order (FIFO end to end). This needs a monotone router: LGG's
	// tie-breaking may bounce a packet backwards on flat gradients and
	// leapfrog later packets, so we use the flow router here.
	spec := core.NewSpec(graph.Line(4)).SetSource(0, 1).SetSink(3, 1)
	fr, err := baseline.NewFlowRouter(spec, flow.NewPushRelabel())
	if err != nil {
		t.Fatal(err)
	}
	pe := New(spec, fr)
	pe.Run(600)
	var last int64 = -1
	for _, d := range pe.Deliveries {
		if d.ID <= last {
			t.Fatalf("out-of-order delivery: %d after %d", d.ID, last)
		}
		last = d.ID
	}
	if len(pe.Deliveries) < 100 {
		t.Fatalf("only %d deliveries", len(pe.Deliveries))
	}
}

func TestOldestAge(t *testing.T) {
	spec := core.NewSpec(graph.Line(2)).SetSource(0, 2).SetSink(1, 1)
	pe := New(spec, core.NewLGG()) // overloaded: backlog builds at node 0
	pe.Run(50)
	if pe.OldestAge() == 0 {
		t.Fatal("overloaded network should hold an old packet")
	}
	empty := New(thetaSpec(), core.NewLGG())
	if empty.OldestAge() != 0 {
		t.Fatal("fresh network age != 0")
	}
}

func TestLossCounting(t *testing.T) {
	spec := core.NewSpec(graph.Line(3)).SetSource(0, 1).SetSink(2, 1)
	pe := New(spec, core.NewLGG())
	pe.Loss = &loss.Bernoulli{P: 1, R: rng.New(1)}
	pe.Run(50)
	if pe.Delivered != 0 {
		t.Fatal("everything should be lost")
	}
	if pe.Lost == 0 {
		t.Fatal("no losses recorded")
	}
}

func TestKeepDeliveriesOff(t *testing.T) {
	pe := New(thetaSpec(), core.NewLGG())
	pe.KeepDeliveries = false
	pe.Run(200)
	if len(pe.Deliveries) != 0 {
		t.Fatal("deliveries recorded despite KeepDeliveries=false")
	}
	if pe.Delivered == 0 || pe.MeanLatency() < 0 {
		t.Fatal("aggregates missing")
	}
}

func TestLatenciesExtraction(t *testing.T) {
	pe := New(thetaSpec(), core.NewLGG())
	pe.Run(100)
	ls := pe.Latencies()
	if int64(len(ls)) != pe.Delivered {
		t.Fatalf("latencies %d vs delivered %d", len(ls), pe.Delivered)
	}
	for _, l := range ls {
		if l < 0 {
			t.Fatal("negative latency")
		}
	}
}

func TestInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec accepted")
		}
	}()
	New(core.NewSpec(graph.Line(2)), core.NewLGG())
}
