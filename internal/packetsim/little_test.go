package packetsim

import (
	"math"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Little's law L = λW cross-checks the packet engine's three independent
// meters (time-averaged backlog, throughput, latency) against each other.

func TestLittleLawDeterministicLine(t *testing.T) {
	// Saturated line: stationary after warmup; L and λW must agree.
	spec := core.NewSpec(graph.Line(5)).SetSource(0, 1).SetSink(4, 1)
	pe := New(spec, core.NewLGG())
	pe.KeepDeliveries = false
	pe.Run(50000)
	l, lw := pe.LittleLawGap()
	if l <= 0 || lw <= 0 {
		t.Fatalf("degenerate meters: L=%v λW=%v", l, lw)
	}
	if math.Abs(l-lw)/l > 0.02 {
		t.Fatalf("Little's law gap: L=%.4f λW=%.4f", l, lw)
	}
}

func TestLittleLawStochastic(t *testing.T) {
	spec := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
	pe := New(spec, core.NewLGG())
	pe.KeepDeliveries = false
	pe.Arrivals = &arrivals.Thinned{P: 0.8, R: rng.New(5)}
	pe.Run(100000)
	l, lw := pe.LittleLawGap()
	if math.Abs(l-lw)/math.Max(l, 1e-9) > 0.05 {
		t.Fatalf("Little's law gap: L=%.4f λW=%.4f", l, lw)
	}
}

func TestLittleLawGapWithLosses(t *testing.T) {
	// Losses break the delivered-only accounting: packets that die en
	// route contributed to L but never to λW, so L > λW.
	spec := core.NewSpec(graph.Line(6)).SetSource(0, 1).SetSink(5, 1)
	pe := New(spec, core.NewLGG())
	pe.KeepDeliveries = false
	pe.Loss = lossEveryNth{n: 4}
	pe.Run(30000)
	l, lw := pe.LittleLawGap()
	if l <= lw {
		t.Fatalf("expected L > λW under losses: L=%.4f λW=%.4f", l, lw)
	}
}

type lossEveryNth struct{ n int64 }

func (l lossEveryNth) Name() string { return "every-nth" }
func (l lossEveryNth) Lost(t int64, e graph.EdgeID, _ graph.NodeID) bool {
	return (t+int64(e))%l.n == 0
}

func TestMeanStoredMatchesManualAverage(t *testing.T) {
	spec := core.NewSpec(graph.Line(4)).SetSource(0, 1).SetSink(3, 1)
	pe := New(spec, core.NewLGG())
	var manual int64
	const steps = 500
	for i := 0; i < steps; i++ {
		pe.Step()
		manual += pe.Stored()
	}
	if got, want := pe.MeanStored(), float64(manual)/steps; math.Abs(got-want) > 1e-9 {
		t.Fatalf("MeanStored %v vs manual %v", got, want)
	}
}

func TestLittleLawEmptyEngine(t *testing.T) {
	spec := core.NewSpec(graph.Line(2)).SetSource(0, 1).SetSink(1, 1)
	pe := New(spec, core.NewLGG())
	if l, lw := pe.LittleLawGap(); l != 0 || lw != 0 {
		t.Fatal("fresh engine should report zeros")
	}
}
