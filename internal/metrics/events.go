package metrics

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
)

// EventWriter is a step observer that streams one JSON line per
// observed step — the live counterpart of the post-hoc series CSV.
// Each line has a fixed field order, so the stream of a deterministic
// run is byte-stable:
//
//	{"t":0,"injected":2,"planned":1,"filtered":0,"sent":1,"lost":0,
//	 "arrived":1,"extracted":0,"collisions":0,"violations":0,
//	 "potential":5,"queued":3,"maxq":2}
//
// Writes are buffered; call Flush when the run ends. The first write
// error sticks and silences further output (check Flush's return).
// An EventWriter belongs to one engine — do not share across
// concurrent runs.
type EventWriter struct {
	// Stride emits only every Stride-th step (default 1 = every step).
	Stride int64

	bw   *bufio.Writer
	seen int64
	err  error
}

// NewEventWriter streams events to w.
func NewEventWriter(w io.Writer) *EventWriter {
	return &EventWriter{bw: bufio.NewWriter(w), Stride: 1}
}

// OnStep implements core.StepObserver.
func (ew *EventWriter) OnStep(t int64, _ *core.Snapshot, st *core.StepStats) {
	n := ew.seen
	ew.seen++
	if ew.err != nil {
		return
	}
	if stride := ew.Stride; stride > 1 && n%stride != 0 {
		return
	}
	_, err := fmt.Fprintf(ew.bw,
		`{"t":%d,"injected":%d,"planned":%d,"filtered":%d,"sent":%d,"lost":%d,"arrived":%d,"extracted":%d,"collisions":%d,"violations":%d,"potential":%d,"queued":%d,"maxq":%d}`+"\n",
		t, st.Injected, st.Planned, st.Filtered, st.Sent, st.Lost,
		st.Arrived, st.Extracted, st.Collisions, st.Violations,
		st.Potential, st.Queued, st.MaxQueue)
	if err != nil {
		ew.err = err
	}
}

// Flush drains the buffer and reports the first error encountered.
func (ew *EventWriter) Flush() error {
	if err := ew.bw.Flush(); ew.err == nil {
		ew.err = err
	}
	return ew.err
}
