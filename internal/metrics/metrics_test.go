package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestRegistryIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c2 := r.Counter("x_total", "other help ignored")
	if c1 != c2 {
		t.Fatal("re-registering a counter returned a different instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge")
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lives", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	// Valid names must not panic.
	r.Counter("ok_total", "")
	r.Gauge("Also:ok_2", "")
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax kept %d, want 5", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax kept %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []int64{0, 10})
	for _, v := range []int64{-5, 0, 1, 10, 11} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 17 {
		t.Fatalf("count=%d sum=%d, want 5/17", h.Count(), h.Sum())
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE h histogram
h_bucket{le="0"} 2
h_bucket{le="10"} 4
h_bucket{le="+Inf"} 5
h_sum 17
h_count 5
`
	if sb.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestWritePromGolden pins the exposition format byte-for-byte: a tiny
// deterministic run must always scrape to exactly this text.
func TestWritePromGolden(t *testing.T) {
	spec := core.NewSpec(graph.Line(3)).SetSource(0, 1).SetSink(2, 2)
	reg := NewRegistry()
	e := core.NewEngine(spec, core.NewLGG())
	e.AddObserver(NewStepMetrics(reg))
	for i := 0; i < 4; i++ {
		e.Step()
	}
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lgg_arrived_packets_total Sent packets that reached the far queue.
# TYPE lgg_arrived_packets_total counter
lgg_arrived_packets_total 5
# HELP lgg_backlog Stored packets N_t = sum of queues (Definition 2).
# TYPE lgg_backlog gauge
lgg_backlog 2
# HELP lgg_collisions_total Sends dropped because their edge was already used.
# TYPE lgg_collisions_total counter
lgg_collisions_total 0
# HELP lgg_extracted_packets_total Packets removed by destinations (Definition 7).
# TYPE lgg_extracted_packets_total counter
lgg_extracted_packets_total 2
# HELP lgg_filtered_sends_total Planned sends removed by interference or topology.
# TYPE lgg_filtered_sends_total counter
lgg_filtered_sends_total 0
# HELP lgg_injected_packets_total Packets injected by sources (Section II arrivals).
# TYPE lgg_injected_packets_total counter
lgg_injected_packets_total 4
# HELP lgg_lost_packets_total Sent packets destroyed in flight (lossy links).
# TYPE lgg_lost_packets_total counter
lgg_lost_packets_total 0
# HELP lgg_max_queue Largest single queue after the most recent step.
# TYPE lgg_max_queue gauge
lgg_max_queue 1
# HELP lgg_peak_backlog Largest N_t seen so far.
# TYPE lgg_peak_backlog gauge
lgg_peak_backlog 2
# HELP lgg_peak_potential Largest P_t seen so far.
# TYPE lgg_peak_potential gauge
lgg_peak_potential 2
# HELP lgg_planned_sends_total Sends requested by the router before filtering.
# TYPE lgg_planned_sends_total counter
lgg_planned_sends_total 5
# HELP lgg_potential Network state P_t = sum of squared queues (Definition 1).
# TYPE lgg_potential gauge
lgg_potential 2
# HELP lgg_sent_packets_total Packets that left their queue.
# TYPE lgg_sent_packets_total counter
lgg_sent_packets_total 5
# HELP lgg_steps_total Synchronous steps executed.
# TYPE lgg_steps_total counter
lgg_steps_total 4
# HELP lgg_violations_total Unphysical router outputs rejected by the engine.
# TYPE lgg_violations_total counter
lgg_violations_total 0
`
	if sb.String() != want {
		t.Fatalf("golden mismatch.\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestEventWriterGolden pins the JSONL event format byte-for-byte.
func TestEventWriterGolden(t *testing.T) {
	spec := core.NewSpec(graph.Line(3)).SetSource(0, 1).SetSink(2, 2)
	e := core.NewEngine(spec, core.NewLGG())
	var sb strings.Builder
	ew := NewEventWriter(&sb)
	e.AddObserver(ew)
	for i := 0; i < 3; i++ {
		e.Step()
	}
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"t":0,"injected":1,"planned":1,"filtered":0,"sent":1,"lost":0,"arrived":1,"extracted":0,"collisions":0,"violations":0,"potential":1,"queued":1,"maxq":1}
{"t":1,"injected":1,"planned":1,"filtered":0,"sent":1,"lost":0,"arrived":1,"extracted":1,"collisions":0,"violations":0,"potential":1,"queued":1,"maxq":1}
{"t":2,"injected":1,"planned":1,"filtered":0,"sent":1,"lost":0,"arrived":1,"extracted":0,"collisions":0,"violations":0,"potential":2,"queued":2,"maxq":1}
`
	if sb.String() != want {
		t.Fatalf("golden mismatch.\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestEventWriterStride(t *testing.T) {
	spec := core.NewSpec(graph.Line(3)).SetSource(0, 1).SetSink(2, 2)
	e := core.NewEngine(spec, core.NewLGG())
	var sb strings.Builder
	ew := NewEventWriter(&sb)
	ew.Stride = 4
	e.AddObserver(ew)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != 3 { // t = 0, 4, 8
		t.Fatalf("stride 4 over 10 steps emitted %d lines, want 3:\n%s", lines, sb.String())
	}
	for _, prefix := range []string{`{"t":0,`, `{"t":4,`, `{"t":8,`} {
		if !strings.Contains(sb.String(), prefix) {
			t.Fatalf("missing event %s in:\n%s", prefix, sb.String())
		}
	}
}

// TestStepMetricsConcurrent drives one shared StepMetrics from many
// engines at once (the RunSeeds topology) and checks the counters
// aggregate exactly. Run under -race this also proves the instruments
// are data-race free.
func TestStepMetricsConcurrent(t *testing.T) {
	spec := core.NewSpec(graph.Line(4)).SetSource(0, 1).SetSink(3, 2)
	reg := NewRegistry()
	sm := NewStepMetrics(reg)
	const engines, steps = 8, 200
	var want int64
	{ // ground truth from one serial engine
		e := core.NewEngine(spec, core.NewLGG())
		tt := e.Run(steps)
		want = tt.Injected
	}
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := core.NewEngine(spec, core.NewLGG())
			e.AddObserver(sm)
			e.Run(steps)
		}()
	}
	wg.Wait()
	if got := sm.Steps.Value(); got != engines*steps {
		t.Fatalf("steps counter = %d, want %d", got, engines*steps)
	}
	if got := sm.Injected.Value(); got != engines*want {
		t.Fatalf("injected counter = %d, want %d", got, engines*want)
	}
}

func TestDriftObserver(t *testing.T) {
	spec := core.NewSpec(graph.Line(3)).SetSource(0, 1).SetSink(2, 2)
	reg := NewRegistry()
	e := core.NewEngine(spec, core.NewLGG())
	d := NewDriftObserver(reg)
	e.AddObserver(d)
	var prev int64
	var maxDelta int64
	for i := 0; i < 50; i++ {
		st := e.Step()
		if delta := st.Potential - prev; delta > maxDelta {
			maxDelta = delta
		}
		prev = st.Potential
	}
	if got := d.Hist.Count(); got != 50 {
		t.Fatalf("drift histogram count = %d, want 50", got)
	}
	if got := d.MaxDrift.Value(); got != maxDelta {
		t.Fatalf("max drift gauge = %d, want %d", got, maxDelta)
	}
}

func TestMultiObserver(t *testing.T) {
	spec := core.NewSpec(graph.Line(2)).SetSource(0, 1).SetSink(1, 1)
	reg := NewRegistry()
	sm := NewStepMetrics(reg)
	var calls int
	e := core.NewEngine(spec, core.NewLGG())
	e.AddObserver(Multi{sm, core.ObserverFunc(func(int64, *core.Snapshot, *core.StepStats) { calls++ })})
	e.Run(7)
	if calls != 7 || sm.Steps.Value() != 7 {
		t.Fatalf("multi fanned out %d/%d calls, want 7/7", calls, sm.Steps.Value())
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []int64{0})
	c.Add(5)
	g.Set(7)
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Reset left values: c=%d g=%d hcount=%d hsum=%d",
			c.Value(), g.Value(), h.Count(), h.Sum())
	}
	// Instruments survive the reset and keep working.
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("counter dead after Reset")
	}
}

// TestScrapeDuringRunRace is the satellite-2 contention audit: Prometheus
// scrapes (WriteProm), hot-path instrument updates, fresh registrations
// and Resets all race against each other. Run under -race (the CI race
// list includes this package); correctness here is "no data race and no
// torn exposition", not specific values.
func TestScrapeDuringRunRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("run_steps_total", "")
	g := reg.Gauge("run_backlog", "")
	h := reg.Histogram("run_delta", "", []int64{1, 10, 100})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() { // the "active run": hammer pre-registered instruments
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i % 200))
			}
		}()
	}
	wg.Add(1)
	go func() { // late registrations invalidate the scrape snapshot
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Counter(fmt.Sprintf("late_%d_total", i%32), "").Inc()
			if i%64 == 0 {
				reg.Reset()
			}
		}
	}()
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			t.Fatalf("scrape failed mid-run: %v", err)
		}
		if !strings.Contains(buf.String(), "# TYPE run_steps_total counter") {
			t.Fatal("scrape lost a registered metric")
		}
	}
	close(stop)
	wg.Wait()
	// A final quiet scrape must still be well-formed and sorted.
	var a, b bytes.Buffer
	if err := reg.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("back-to-back quiet scrapes differ")
	}
}
