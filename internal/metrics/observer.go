package metrics

import (
	"repro/internal/core"
)

// Canonical metric names. Every name maps to a quantity from the paper
// or from the engine's physical accounting; DESIGN.md carries the full
// mapping table.
const (
	MetricSteps      = "lgg_steps_total"
	MetricInjected   = "lgg_injected_packets_total"
	MetricPlanned    = "lgg_planned_sends_total"
	MetricFiltered   = "lgg_filtered_sends_total"
	MetricSent       = "lgg_sent_packets_total"
	MetricLost       = "lgg_lost_packets_total"
	MetricArrived    = "lgg_arrived_packets_total"
	MetricExtracted  = "lgg_extracted_packets_total"
	MetricCollisions = "lgg_collisions_total"
	MetricViolations = "lgg_violations_total"
	MetricPotential  = "lgg_potential"
	MetricBacklog    = "lgg_backlog"
	MetricMaxQueue   = "lgg_max_queue"
	MetricPeakPot    = "lgg_peak_potential"
	MetricPeakBack   = "lgg_peak_backlog"
	MetricDrift      = "lgg_potential_delta"
	MetricMaxDrift   = "lgg_max_potential_delta"
)

// StepMetrics is the canonical registry-backed observer: it folds every
// step's statistics into counters and gauges. It keeps no per-engine
// state, so one instance may be shared by engines running concurrently
// (RunSeeds, sweeps) — the counters then aggregate across the whole
// fleet, while Potential/Backlog/MaxQueue are last-writer-wins and the
// peaks are fleet-wide maxima.
type StepMetrics struct {
	Steps      *Counter
	Injected   *Counter
	Planned    *Counter
	Filtered   *Counter
	Sent       *Counter
	Lost       *Counter
	Arrived    *Counter
	Extracted  *Counter
	Collisions *Counter
	Violations *Counter

	Potential *Gauge // P_t after the most recent step (Definition 1)
	Backlog   *Gauge // N_t = Σ q_t(v) after the most recent step
	MaxQueue  *Gauge // max_v q_t(v) after the most recent step

	PeakPotential *Gauge // running max of P_t
	PeakBacklog   *Gauge // running max of N_t
}

// NewStepMetrics registers the canonical step metrics in r and returns
// the observer. Registering twice against the same registry returns an
// observer backed by the same instruments.
func NewStepMetrics(r *Registry) *StepMetrics {
	return &StepMetrics{
		Steps:      r.Counter(MetricSteps, "Synchronous steps executed."),
		Injected:   r.Counter(MetricInjected, "Packets injected by sources (Section II arrivals)."),
		Planned:    r.Counter(MetricPlanned, "Sends requested by the router before filtering."),
		Filtered:   r.Counter(MetricFiltered, "Planned sends removed by interference or topology."),
		Sent:       r.Counter(MetricSent, "Packets that left their queue."),
		Lost:       r.Counter(MetricLost, "Sent packets destroyed in flight (lossy links)."),
		Arrived:    r.Counter(MetricArrived, "Sent packets that reached the far queue."),
		Extracted:  r.Counter(MetricExtracted, "Packets removed by destinations (Definition 7)."),
		Collisions: r.Counter(MetricCollisions, "Sends dropped because their edge was already used."),
		Violations: r.Counter(MetricViolations, "Unphysical router outputs rejected by the engine."),

		Potential: r.Gauge(MetricPotential, "Network state P_t = sum of squared queues (Definition 1)."),
		Backlog:   r.Gauge(MetricBacklog, "Stored packets N_t = sum of queues (Definition 2)."),
		MaxQueue:  r.Gauge(MetricMaxQueue, "Largest single queue after the most recent step."),

		PeakPotential: r.Gauge(MetricPeakPot, "Largest P_t seen so far."),
		PeakBacklog:   r.Gauge(MetricPeakBack, "Largest N_t seen so far."),
	}
}

// OnStep implements core.StepObserver.
func (m *StepMetrics) OnStep(_ int64, _ *core.Snapshot, st *core.StepStats) {
	m.Steps.Inc()
	m.Injected.Add(st.Injected)
	m.Planned.Add(st.Planned)
	m.Filtered.Add(st.Filtered)
	m.Sent.Add(st.Sent)
	m.Lost.Add(st.Lost)
	m.Arrived.Add(st.Arrived)
	m.Extracted.Add(st.Extracted)
	m.Collisions.Add(st.Collisions)
	m.Violations.Add(st.Violations)

	m.Potential.Set(st.Potential)
	m.Backlog.Set(st.Queued)
	m.MaxQueue.Set(st.MaxQueue)
	m.PeakPotential.SetMax(st.Potential)
	m.PeakBacklog.SetMax(st.Queued)
}

// DefaultDriftBounds are the histogram bucket upper bounds used for the
// one-step potential change ΔP_t = P_{t+1} − P_t. Lemma 1 bounds this
// drift by explicit constants, so the interesting resolution is around
// zero with geometric falloff on both sides.
var DefaultDriftBounds = []int64{-1024, -256, -64, -16, -4, -1, 0, 1, 4, 16, 64, 256, 1024}

// DriftObserver tracks the per-step potential drift ΔP_t into a
// histogram plus a running maximum — the empirical face of Lemma 1's
// drift bounds. It keeps the previous step's potential as internal
// state, so a DriftObserver belongs to exactly ONE engine; create one
// per run (unlike StepMetrics it must not be shared across concurrent
// engines).
type DriftObserver struct {
	Hist     *Histogram
	MaxDrift *Gauge
	prev     int64
}

// NewDriftObserver registers the drift metrics in r and returns an
// observer primed for an engine starting from an empty network
// (P_0 = 0). Engines prepared with SetQueues should call Prime with
// the initial potential first.
func NewDriftObserver(r *Registry) *DriftObserver {
	return &DriftObserver{
		Hist:     r.Histogram(MetricDrift, "One-step potential change (Lemma 1 drift).", DefaultDriftBounds),
		MaxDrift: r.Gauge(MetricMaxDrift, "Largest one-step potential increase seen so far."),
	}
}

// Prime sets the potential the first step's drift is measured against.
func (d *DriftObserver) Prime(p0 int64) { d.prev = p0 }

// OnStep implements core.StepObserver.
func (d *DriftObserver) OnStep(_ int64, _ *core.Snapshot, st *core.StepStats) {
	delta := st.Potential - d.prev
	d.prev = st.Potential
	d.Hist.Observe(delta)
	d.MaxDrift.SetMax(delta)
}

// Multi fans one step out to several observers in order; a convenience
// for APIs that accept a single observer.
type Multi []core.StepObserver

// OnStep implements core.StepObserver.
func (m Multi) OnStep(t int64, sn *core.Snapshot, st *core.StepStats) {
	for _, o := range m {
		o.OnStep(t, sn, st)
	}
}
