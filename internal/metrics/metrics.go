// Package metrics is the streaming observability layer of the
// reproduction: a low-overhead registry of counters, gauges and
// histograms, step observers that feed it from the engine's hot loop,
// a Prometheus-style text exposition writer, and a JSONL event
// streamer.
//
// Design constraints, in order:
//
//   - The disabled path is free: engines pay one slice-length check per
//     step when no observer is registered (BenchmarkStepObserverOverhead
//     guards the budget).
//   - The enabled path is allocation-free: all metrics are pre-registered
//     and updated with atomic integer operations, so observers can run
//     inside million-step simulations without GC pressure.
//   - Exposition is deterministic: WriteProm emits metrics sorted by
//     name, so the scrape text for a deterministic run is byte-stable.
//   - Instruments are safe for concurrent use: one StepMetrics can be
//     shared by every engine of a sim.RunSeeds or sweep fleet and the
//     counters aggregate across all of them.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be non-negative for Prometheus semantics; this is
// not enforced on the hot path).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Set is last-writer-wins;
// SetMax keeps a running maximum, which is what cross-run peak metrics
// want. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores x.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Add adds d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to x if x exceeds the current value.
func (g *Gauge) SetMax(x int64) {
	for {
		cur := g.v.Load()
		if x <= cur || g.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts integer observations into cumulative buckets with
// fixed upper bounds (a +Inf bucket is implicit). Construct through
// Registry.Histogram; methods are safe for concurrent use.
type Histogram struct {
	bounds []int64 // ascending upper bounds, exclusive of +Inf
	counts []atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// kind tags what a registry entry is, and doubles as the TYPE line text.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

type entry struct {
	name string
	help string
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics and renders them as Prometheus text
// exposition. Registration takes a lock; updates to the returned
// instruments are lock-free. The zero value is not usable — construct
// with NewRegistry.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) lookup(name, help string, k kind) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("metrics: %s already registered as %s, not %s", name, e.kind, k))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: k}
	r.entries[name] = e
	return e
}

// Counter returns the counter registered under name, creating it on
// first use. Re-registering an existing name with a different kind
// panics.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.lookup(name, help, kindCounter)
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.lookup(name, help, kindGauge)
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// Histogram returns the histogram registered under name, creating it on
// first use with the given ascending bucket upper bounds (+Inf is
// implicit). Bounds are fixed at first registration.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bounds not ascending: %v", name, bounds))
		}
	}
	e := r.lookup(name, help, kindHistogram)
	if e.h == nil {
		e.h = &Histogram{bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1)}
	}
	return e.h
}

// Reset zeroes every registered metric (counts, gauge values, histogram
// buckets) while keeping the registrations. Sweep drivers use it to
// reuse one registry across cells.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		switch {
		case e.c != nil:
			e.c.v.Store(0)
		case e.g != nil:
			e.g.v.Store(0)
		case e.h != nil:
			for i := range e.h.counts {
				e.h.counts[i].Store(0)
			}
			e.h.sum.Store(0)
			e.h.n.Store(0)
		}
	}
}

// WriteProm renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name so the
// output of a deterministic run is byte-stable.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	entries := make([]*entry, len(names))
	for i, n := range names {
		entries[i] = r.entries[n]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if e.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", e.name, e.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		switch {
		case e.c != nil:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.c.Value())
		case e.g != nil:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.g.Value())
		case e.h != nil:
			var cum int64
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				le := "+Inf"
				if i < len(e.h.bounds) {
					le = strconv.FormatInt(e.h.bounds[i], 10)
				}
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", e.name, le, cum)
			}
			fmt.Fprintf(bw, "%s_sum %d\n", e.name, e.h.Sum())
			fmt.Fprintf(bw, "%s_count %d\n", e.name, e.h.Count())
		}
	}
	return bw.Flush()
}
