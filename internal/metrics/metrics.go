// Package metrics is the streaming observability layer of the
// reproduction: a low-overhead registry of counters, gauges and
// histograms, step observers that feed it from the engine's hot loop,
// a Prometheus-style text exposition writer, and a JSONL event
// streamer.
//
// Design constraints, in order:
//
//   - The disabled path is free: engines pay one slice-length check per
//     step when no observer is registered (BenchmarkStepObserverOverhead
//     guards the budget).
//   - The enabled path is allocation-free: all metrics are pre-registered
//     and updated with atomic integer operations, so observers can run
//     inside million-step simulations without GC pressure.
//   - Exposition is deterministic: WriteProm emits metrics sorted by
//     name, so the scrape text for a deterministic run is byte-stable.
//   - Instruments are safe for concurrent use: one StepMetrics can be
//     shared by every engine of a sim.RunSeeds or sweep fleet and the
//     counters aggregate across all of them.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be non-negative for Prometheus semantics; this is
// not enforced on the hot path).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Set is last-writer-wins;
// SetMax keeps a running maximum, which is what cross-run peak metrics
// want. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores x.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Add adds d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to x if x exceeds the current value.
func (g *Gauge) SetMax(x int64) {
	for {
		cur := g.v.Load()
		if x <= cur || g.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts integer observations into cumulative buckets with
// fixed upper bounds (a +Inf bucket is implicit). Construct through
// Registry.Histogram; methods are safe for concurrent use.
type Histogram struct {
	bounds []int64 // ascending upper bounds, exclusive of +Inf
	counts []atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// kind tags what a registry entry is, and doubles as the TYPE line text.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

type entry struct {
	name string
	help string
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics and renders them as Prometheus text
// exposition. Updates to the returned instruments are lock-free;
// registration of a *new* name takes the write lock once, and repeated
// lookups of an existing name only share the read lock — so a Prometheus
// scrape racing an active run never serializes against the run's metric
// lookups (TestScrapeDuringRunRace and BenchmarkScrapeUnderLoad guard
// this). The zero value is not usable — construct with NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	// sorted is the name-ordered exposition snapshot, rebuilt lazily
	// after a registration invalidates it; scrapes reuse it instead of
	// re-sorting the whole registry on every pass.
	sorted []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup finds or creates the entry for name. init populates the new
// entry's instrument and runs under the write lock exactly once per
// name, so concurrent first registrations of one metric agree on a
// single instrument.
func (r *Registry) lookup(name, help string, k kind, init func(*entry)) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	// Fast path: the name already exists. Instrument lookups on a warm
	// registry (the run hot path) only ever take this read lock, so they
	// proceed in parallel with each other and with scrapes.
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if e, ok = r.entries[name]; !ok { // won the registration race
			e = &entry{name: name, help: help, kind: k}
			init(e)
			r.entries[name] = e
			r.sorted = nil // invalidate the exposition snapshot
		}
		r.mu.Unlock()
	}
	if e.kind != k {
		panic(fmt.Sprintf("metrics: %s already registered as %s, not %s", name, e.kind, k))
	}
	return e
}

// snapshot returns the name-sorted entry list, rebuilding the cache if a
// registration invalidated it.
func (r *Registry) snapshot() []*entry {
	r.mu.RLock()
	s := r.sorted
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sorted == nil {
		s = make([]*entry, 0, len(r.entries))
		for _, e := range r.entries {
			s = append(s, e)
		}
		sort.Slice(s, func(i, j int) bool { return s[i].name < s[j].name })
		r.sorted = s
	}
	return r.sorted
}

// Counter returns the counter registered under name, creating it on
// first use. Re-registering an existing name with a different kind
// panics.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram returns the histogram registered under name, creating it on
// first use with the given ascending bucket upper bounds (+Inf is
// implicit). Bounds are fixed at first registration.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bounds not ascending: %v", name, bounds))
		}
	}
	return r.lookup(name, help, kindHistogram, func(e *entry) {
		e.h = &Histogram{bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1)}
	}).h
}

// Reset zeroes every registered metric (counts, gauge values, histogram
// buckets) while keeping the registrations. Sweep drivers use it to
// reuse one registry across cells. Value stores are atomic, so Reset
// only needs the read lock to walk the entry set.
func (r *Registry) Reset() {
	for _, e := range r.snapshot() {
		switch {
		case e.c != nil:
			e.c.v.Store(0)
		case e.g != nil:
			e.g.v.Store(0)
		case e.h != nil:
			for i := range e.h.counts {
				e.h.counts[i].Store(0)
			}
			e.h.sum.Store(0)
			e.h.n.Store(0)
		}
	}
}

// WriteProm renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name so the
// output of a deterministic run is byte-stable. A scrape holds no lock
// while rendering: it walks the cached sorted snapshot and loads each
// value atomically, so concurrent runs keep updating unimpeded.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.snapshot() {
		if e.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", e.name, e.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		switch {
		case e.c != nil:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.c.Value())
		case e.g != nil:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.g.Value())
		case e.h != nil:
			var cum int64
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				le := "+Inf"
				if i < len(e.h.bounds) {
					le = strconv.FormatInt(e.h.bounds[i], 10)
				}
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", e.name, le, cum)
			}
			fmt.Fprintf(bw, "%s_sum %d\n", e.name, e.h.Sum())
			fmt.Fprintf(bw, "%s_count %d\n", e.name, e.h.Count())
		}
	}
	return bw.Flush()
}
