package metrics

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// BenchmarkScrapeUnderLoad prices a Prometheus scrape while a simulated
// run hammers the registry's instruments from GOMAXPROCS-1 goroutines —
// the satellite-2 contention budget. The scrape must stay in the tens of
// microseconds: it renders from the cached sorted snapshot with atomic
// loads and never blocks the updaters.
func BenchmarkScrapeUnderLoad(b *testing.B) {
	reg := NewRegistry()
	counters := make([]*Counter, 48)
	for i := range counters {
		counters[i] = reg.Counter(fmt.Sprintf("bench_metric_%02d_total", i), "bench")
	}
	h := reg.Histogram("bench_hist", "bench", []int64{1, 10, 100, 1000})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0)-1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				counters[(w+i)%len(counters)].Inc()
				h.Observe(int64(i % 2000))
			}
		}(w)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WriteProm(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func benchEngine() *core.Engine {
	spec := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
	return core.NewEngine(spec, core.NewLGG())
}

// BenchmarkStepObserverOverhead guards the observability budget: with no
// observer registered the step path must cost within noise (<2%) of the
// pre-observer engine — the disabled path is a single slice-length
// check — and the sub-benchmarks price each built-in observer.
func BenchmarkStepObserverOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		e := benchEngine()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
	b.Run("noop", func(b *testing.B) {
		e := benchEngine()
		e.AddObserver(core.ObserverFunc(func(int64, *core.Snapshot, *core.StepStats) {}))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
	b.Run("metrics", func(b *testing.B) {
		e := benchEngine()
		reg := NewRegistry()
		e.AddObserver(NewStepMetrics(reg))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
	b.Run("metrics+drift", func(b *testing.B) {
		e := benchEngine()
		reg := NewRegistry()
		e.AddObserver(NewStepMetrics(reg))
		e.AddObserver(NewDriftObserver(reg))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
	b.Run("events", func(b *testing.B) {
		e := benchEngine()
		e.AddObserver(NewEventWriter(io.Discard))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
}
