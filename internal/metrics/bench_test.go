package metrics

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func benchEngine() *core.Engine {
	spec := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
	return core.NewEngine(spec, core.NewLGG())
}

// BenchmarkStepObserverOverhead guards the observability budget: with no
// observer registered the step path must cost within noise (<2%) of the
// pre-observer engine — the disabled path is a single slice-length
// check — and the sub-benchmarks price each built-in observer.
func BenchmarkStepObserverOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		e := benchEngine()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
	b.Run("noop", func(b *testing.B) {
		e := benchEngine()
		e.AddObserver(core.ObserverFunc(func(int64, *core.Snapshot, *core.StepStats) {}))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
	b.Run("metrics", func(b *testing.B) {
		e := benchEngine()
		reg := NewRegistry()
		e.AddObserver(NewStepMetrics(reg))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
	b.Run("metrics+drift", func(b *testing.B) {
		e := benchEngine()
		reg := NewRegistry()
		e.AddObserver(NewStepMetrics(reg))
		e.AddObserver(NewDriftObserver(reg))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
	b.Run("events", func(b *testing.B) {
		e := benchEngine()
		e.AddObserver(NewEventWriter(io.Discard))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
}
