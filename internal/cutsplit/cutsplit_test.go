package cutsplit

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/sim"
)

// barbellSpec: source in the left clique, sink in the right, bridge of
// capacity 1 in between; out has slack so the maximal min cut crosses the
// bridge.
func barbellSpec() *core.Spec {
	g := graph.Barbell(3, 2)
	return core.NewSpec(g).SetSource(0, 1).SetSink(graph.NodeID(g.NumNodes()-1), 2)
}

func TestFromAnalysisBarbell(t *testing.T) {
	spec := barbellSpec()
	a := spec.Analyze(flow.NewPushRelabel())
	if InductionCase(a) != 3 {
		t.Fatalf("induction case = %d, want 3", InductionCase(a))
	}
	s, err := FromAnalysis(spec, a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.CutEdges) != 1 {
		t.Fatalf("cut edges = %d, want the single bridge edge", len(s.CutEdges))
	}
	// A = left clique + bridge interior (4 nodes), B = right clique (3).
	if s.A.Spec.N() != 4 || s.B.Spec.N() != 3 {
		t.Fatalf("|A|=%d |B|=%d", s.A.Spec.N(), s.B.Spec.N())
	}
	// B′'s border node becomes a source with in = |Γ|A| = 1.
	if len(s.B.Border) != 1 {
		t.Fatalf("B border = %v", s.B.Border)
	}
	bBorder := s.B.Border[0]
	if s.B.Spec.In[bBorder] != 1 {
		t.Fatalf("B′ border in = %d, want 1", s.B.Spec.In[bBorder])
	}
	// A′'s border node becomes a destination with out = 1 and R = R_B.
	aBorder := s.A.Border[0]
	if s.A.Spec.Out[aBorder] != 1 {
		t.Fatalf("A′ border out = %d, want 1", s.A.Spec.Out[aBorder])
	}
	if s.A.Spec.R[aBorder] != 10 {
		t.Fatalf("A′ border R = %d, want 10", s.A.Spec.R[aBorder])
	}
	// The original source survives in A′ with its injection.
	foundSrc := false
	for pv, ov := range s.A.ToOriginal {
		if ov == 0 && s.A.Spec.In[pv] == 1 {
			foundSrc = true
		}
	}
	if !foundSrc {
		t.Fatal("original source lost in A′")
	}
	if _, _, err := s.Check(flow.NewPushRelabel()); err != nil {
		t.Fatal(err)
	}
}

func TestSplitPreservesDualRoles(t *testing.T) {
	// A border node that is already a source keeps in(v) and adds the
	// cross-degree: build a 4-path with the cut in the middle and the
	// second node a source.
	g := graph.Line(4)
	spec := core.NewSpec(g).SetSource(0, 1).SetSource(1, 2).SetSink(3, 5)
	mask := []bool{true, true, false, false}
	s, err := At(spec, mask, 0)
	if err != nil {
		t.Fatal(err)
	}
	// B = {2,3}; border node is original 2 with in = |Γ|A(2)| = 1.
	b2 := -1
	for pv, ov := range s.B.ToOriginal {
		if ov == 2 {
			b2 = pv
		}
	}
	if b2 < 0 || s.B.Spec.In[b2] != 1 {
		t.Fatalf("B′ border injection wrong: %+v", s.B.Spec.In)
	}
	// A = {0,1}; border node original 1 keeps in=2 and gains out=1.
	a1 := -1
	for pv, ov := range s.A.ToOriginal {
		if ov == 1 {
			a1 = pv
		}
	}
	if a1 < 0 || s.A.Spec.In[a1] != 2 || s.A.Spec.Out[a1] != 1 {
		t.Fatalf("A′ border roles wrong: in=%v out=%v", s.A.Spec.In, s.A.Spec.Out)
	}
}

func TestAtRejectsBadMasks(t *testing.T) {
	spec := barbellSpec()
	n := spec.N()
	if _, err := At(spec, make([]bool, n-1), 0); err == nil {
		t.Fatal("short mask accepted")
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	if _, err := At(spec, all, 0); err == nil {
		t.Fatal("all-A mask accepted")
	}
	if _, err := At(spec, make([]bool, n), 0); err == nil {
		t.Fatal("all-B mask accepted")
	}
	half := make([]bool, n)
	half[0] = true
	if _, err := At(spec, half, -1); err == nil {
		t.Fatal("negative retention accepted")
	}
}

func TestFromAnalysisRejectsBaseCases(t *testing.T) {
	// Unsaturated theta network: case 1, no interior cut.
	g := graph.ThetaGraph(3, 2)
	spec := core.NewSpec(g).SetSource(0, 2).SetSink(1, 3)
	a := spec.Analyze(flow.NewPushRelabel())
	if InductionCase(a) != 1 {
		t.Fatalf("case = %d, want 1", InductionCase(a))
	}
	if _, err := FromAnalysis(spec, a, 0); err == nil {
		t.Fatal("base case accepted")
	}
	// Saturated at the sink: case 2.
	spec2 := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 2)
	a2 := spec2.Analyze(flow.NewPushRelabel())
	if InductionCase(a2) != 2 {
		t.Fatalf("case = %d, want 2", InductionCase(a2))
	}
}

func TestPartsRunStablyUnderLGG(t *testing.T) {
	// The induction's conclusion, checked empirically: both parts of the
	// barbell split are stable under LGG with full injection.
	spec := barbellSpec()
	a := spec.Analyze(flow.NewPushRelabel())
	s, err := FromAnalysis(spec, a, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, part := range map[string]*Part{"A'": s.A, "B'": s.B} {
		e := core.NewEngine(part.Spec, core.NewLGG())
		r := sim.Run(e, sim.Options{Horizon: 600})
		if r.Diagnosis.Verdict == sim.Diverging {
			t.Fatalf("%s diverged: %+v", name, r.Diagnosis)
		}
	}
}
