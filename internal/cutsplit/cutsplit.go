// Package cutsplit implements the decomposition at the heart of the
// paper's induction (Section V-C): given a feasible R-generalized
// S-D-network and a minimum cut (A, B) of G* that crosses the interior of
// G, it constructs
//
//   - B′: the sink-side part viewed as an R-generalized S′-D′-network in
//     which every border node (the set X of nodes of B adjacent to A)
//     becomes an R-generalized source injecting at most
//     in(v) + |Γ|A(v)| packets per step, and
//   - A′: the source-side part viewed as an R_B-generalized
//     S″-D″-network in which every border node (the set Y of nodes of A
//     adjacent to B) becomes an R_B-generalized destination extracting at
//     most out(v) + |Γ|B(v)| packets per step,
//
// where R_B bounds the number of packets stored in B. The paper's
// induction applies the stability hypothesis to both parts; experiment
// E10 verifies empirically that both parts are feasible (as the proof
// shows) and stay bounded under LGG.
package cutsplit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
)

// Part is one side of the decomposition, rebuilt as a standalone network.
type Part struct {
	// Spec is the derived (generalized) network on the part's nodes.
	Spec *core.Spec
	// ToOriginal maps the part's node ids back to nodes of the original
	// network.
	ToOriginal []graph.NodeID
	// Border lists the part-local ids of the cut-border nodes (the set X
	// for B′, Y for A′).
	Border []graph.NodeID
	// BorderDegree[i] is |Γ_otherSide(Border[i])|: the number of cut
	// edges at that border node.
	BorderDegree []int64
}

// Split is the full decomposition of a network at a cut.
type Split struct {
	// SourceSide[v] reports whether original node v lies in A.
	SourceSide []bool
	// CutEdges are the original edges crossing the cut.
	CutEdges []graph.EdgeID
	// A is the source-side part (an R_B-generalized S″-D″-network);
	// B is the sink-side part (an R-generalized S′-D′-network).
	A, B *Part
}

// At decomposes spec at the given cut mask over the *original graph's*
// nodes (true = source side A). retentionB is the constant R_B granted to
// A′'s border destinations (the bound on B's backlog from the induction
// step). The mask must put at least one node on each side.
func At(spec *core.Spec, sourceSide []bool, retentionB int64) (*Split, error) {
	g := spec.G
	n := g.NumNodes()
	if len(sourceSide) != n {
		return nil, fmt.Errorf("cutsplit: mask length %d, want %d", len(sourceSide), n)
	}
	nA := 0
	for _, a := range sourceSide {
		if a {
			nA++
		}
	}
	if nA == 0 || nA == n {
		return nil, fmt.Errorf("cutsplit: cut does not split the graph interior (|A|=%d of %d)", nA, n)
	}
	if retentionB < 0 {
		return nil, fmt.Errorf("cutsplit: negative retention")
	}

	s := &Split{SourceSide: append([]bool(nil), sourceSide...)}
	for e, edge := range g.Edges() {
		if sourceSide[edge.U] != sourceSide[edge.V] {
			s.CutEdges = append(s.CutEdges, graph.EdgeID(e))
		}
	}

	// crossDeg[v] = number of cut edges incident to v.
	crossDeg := make([]int64, n)
	for _, e := range s.CutEdges {
		edge := g.EdgeByID(e)
		crossDeg[edge.U]++
		crossDeg[edge.V]++
	}

	var err error
	// B′: keep the non-A side; border sources gain |Γ|A(v)| injection.
	s.B, err = buildPart(spec, sourceSide, false, crossDeg, func(p *core.Spec, pv graph.NodeID, ov graph.NodeID) {
		p.In[pv] = spec.In[ov] + crossDeg[ov]
		p.Out[pv] = spec.Out[ov]
		p.R[pv] = spec.R[ov]
	})
	if err != nil {
		return nil, err
	}
	// A′: keep the A side; border destinations gain |Γ|B(v)| extraction
	// and the retention constant R_B.
	s.A, err = buildPart(spec, sourceSide, true, crossDeg, func(p *core.Spec, pv graph.NodeID, ov graph.NodeID) {
		p.In[pv] = spec.In[ov]
		p.Out[pv] = spec.Out[ov] + crossDeg[ov]
		r := spec.R[ov]
		if retentionB > r {
			r = retentionB
		}
		p.R[pv] = r
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// buildPart extracts the subgraph on one side and applies the border
// transformation.
func buildPart(spec *core.Spec, sourceSide []bool, keepA bool, crossDeg []int64,
	transformBorder func(p *core.Spec, pv, ov graph.NodeID)) (*Part, error) {

	g := spec.G
	n := g.NumNodes()
	keep := make([]bool, n)
	for v := 0; v < n; v++ {
		keep[v] = sourceSide[v] == keepA
	}
	sub, remap := g.InducedSubgraph(keep)
	part := &Part{Spec: core.NewSpec(sub), ToOriginal: make([]graph.NodeID, sub.NumNodes())}
	for v := 0; v < n; v++ {
		if !keep[v] {
			continue
		}
		pv := remap[v]
		part.ToOriginal[pv] = graph.NodeID(v)
		if crossDeg[v] > 0 {
			part.Border = append(part.Border, pv)
			part.BorderDegree = append(part.BorderDegree, crossDeg[v])
			transformBorder(part.Spec, pv, graph.NodeID(v))
		} else {
			part.Spec.In[pv] = spec.In[v]
			part.Spec.Out[pv] = spec.Out[v]
			part.Spec.R[pv] = spec.R[v]
		}
	}
	return part, nil
}

// FromAnalysis decomposes spec at the maximal minimum cut of its
// feasibility analysis. It fails when the cut does not cross the interior
// (cases 1 and 2 of Section V — the induction's base cases).
func FromAnalysis(spec *core.Spec, a *flow.Analysis, retentionB int64) (*Split, error) {
	if a.Feasibility == flow.Infeasible {
		return nil, fmt.Errorf("cutsplit: network is infeasible")
	}
	if !a.CutInterior() {
		return nil, fmt.Errorf("cutsplit: the maximal minimum cut is a base case (no interior crossing)")
	}
	mask := make([]bool, spec.N())
	for v := 0; v < spec.N(); v++ {
		mask[v] = a.MaximalCut[v]
	}
	return At(spec, mask, retentionB)
}

// Check verifies the structural claims the induction relies on:
// both parts validate, B′ is feasible (the proof's flow Φ_B′ restriction
// argument), A′ is feasible, and D″ ≠ ∅ (Remark 2: A′ has at least one
// destination). It returns the two feasibility analyses.
func (s *Split) Check(solver flow.Solver) (aAnalysis, bAnalysis *flow.Analysis, err error) {
	if err := s.B.Spec.Validate(); err != nil {
		return nil, nil, fmt.Errorf("cutsplit: B′ invalid: %w", err)
	}
	if err := s.A.Spec.Validate(); err != nil {
		return nil, nil, fmt.Errorf("cutsplit: A′ invalid: %w", err)
	}
	bAnalysis = s.B.Spec.Analyze(solver)
	if bAnalysis.Feasibility == flow.Infeasible {
		return nil, nil, fmt.Errorf("cutsplit: B′ is infeasible (rate %d > flow %d)",
			bAnalysis.ArrivalRate, bAnalysis.MaxFlow.Value)
	}
	aAnalysis = s.A.Spec.Analyze(solver)
	if aAnalysis.Feasibility == flow.Infeasible {
		return nil, nil, fmt.Errorf("cutsplit: A′ is infeasible (rate %d > flow %d)",
			aAnalysis.ArrivalRate, aAnalysis.MaxFlow.Value)
	}
	if len(s.A.Spec.Sinks()) == 0 {
		return nil, nil, fmt.Errorf("cutsplit: D″ is empty, contradicting Remark 2")
	}
	return aAnalysis, bAnalysis, nil
}

// InductionCase classifies a feasibility analysis into the three cases of
// Section V: 1 = unsaturated (unique trivial min cut), 2 = saturated only
// at d*, 3 = saturated with an interior cut. It inspects only the two
// extreme minimum cuts; an interior cut hiding between trivial extremes
// is missed — use InductionCaseExact when that matters.
func InductionCase(a *flow.Analysis) int {
	switch {
	case a.Feasibility == flow.Unsaturated:
		return 1
	case a.CutInterior():
		return 3
	default:
		return 2
	}
}

// InductionCaseExact classifies using full minimum-cut enumeration
// (Picard–Queyranne): case 3 is reported whenever ANY minimum cut crosses
// the interior, even if both extreme cuts are trivial. The limit caps the
// enumeration; exhaustive reports whether the answer is certain.
func InductionCaseExact(a *flow.Analysis, limit int) (kase int, exhaustive bool) {
	if a.Feasibility == flow.Unsaturated {
		return 1, true
	}
	found, exhaustive := a.Ext.HasInteriorMinCut(a.MaxFlow, limit)
	if found {
		return 3, true
	}
	return 2, exhaustive
}

// FindInteriorCut returns the node mask (over G's real nodes, true =
// source side) of some interior minimum cut, preferring the one with the
// most balanced split. It returns ok=false when no enumerated minimum cut
// crosses the interior.
func FindInteriorCut(a *flow.Analysis, limit int) (mask []bool, ok bool) {
	cuts := flow.EnumerateMinCuts(a.MaxFlow, limit)
	n := a.Ext.G.NumNodes()
	bestBalance := -1
	for _, cut := range cuts {
		real := 0
		for v := 0; v < n; v++ {
			if cut[v] {
				real++
			}
		}
		if real == 0 || real == n {
			continue
		}
		balance := real
		if n-real < balance {
			balance = n - real
		}
		if balance > bestBalance {
			bestBalance = balance
			mask = make([]bool, n)
			for v := 0; v < n; v++ {
				mask[v] = cut[v]
			}
			ok = true
		}
	}
	return mask, ok
}
