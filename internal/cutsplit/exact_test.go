package cutsplit

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestExactCaseCatchesHiddenInteriorCut: on a saturated line the minimal
// cut is {s*} and the maximal is everything-but-d*, so the extreme-cut
// classifier says case 2 — but every interior edge is also a minimum cut,
// so the exact classifier must say case 3.
func TestExactCaseCatchesHiddenInteriorCut(t *testing.T) {
	spec := core.NewSpec(graph.Line(4)).SetSource(0, 1).SetSink(3, 1)
	a := spec.Analyze(flow.NewPushRelabel())
	if got := InductionCase(a); got != 2 {
		t.Fatalf("extreme-cut classifier = %d (expected the blind spot: 2)", got)
	}
	kase, exhaustive := InductionCaseExact(a, 64)
	if kase != 3 || !exhaustive {
		t.Fatalf("exact classifier = %d (exhaustive=%v), want 3/true", kase, exhaustive)
	}
}

func TestExactCaseAgreementElsewhere(t *testing.T) {
	// Unsaturated: both classifiers say 1.
	s1 := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
	a1 := s1.Analyze(flow.NewPushRelabel())
	if k, _ := InductionCaseExact(a1, 64); k != 1 || InductionCase(a1) != 1 {
		t.Fatal("unsaturated classification mismatch")
	}
	// True case 2: saturated only at the sink with no interior min cut —
	// theta(3,2) with in=2, out=2: interior cuts have value 3 > 2; the
	// sink link cut has value 2.
	s2 := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 2)
	a2 := s2.Analyze(flow.NewPushRelabel())
	if k, ex := InductionCaseExact(a2, 64); k != 2 || !ex {
		t.Fatalf("theta sink-saturated: exact case = %d", k)
	}
}

func TestFindInteriorCutOnLine(t *testing.T) {
	spec := core.NewSpec(graph.Line(5)).SetSource(0, 1).SetSink(4, 1)
	a := spec.Analyze(flow.NewPushRelabel())
	mask, ok := FindInteriorCut(a, 64)
	if !ok {
		t.Fatal("no interior cut found on a saturated line")
	}
	// balanced preference: the middle edge cut puts 2-3 nodes per side
	real := 0
	for _, b := range mask {
		if b {
			real++
		}
	}
	if real < 2 || real > 3 {
		t.Fatalf("expected the balanced middle cut, source side has %d real nodes", real)
	}
	// and the split built from it must be feasible
	s, err := At(spec, mask, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Check(flow.NewPushRelabel()); err != nil {
		t.Fatal(err)
	}
}

func TestFindInteriorCutNone(t *testing.T) {
	spec := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
	a := spec.Analyze(flow.NewPushRelabel())
	if _, ok := FindInteriorCut(a, 64); ok {
		t.Fatal("unsaturated network yielded an interior min cut")
	}
}

// TestFullInductionWalk performs the paper's recursion end to end on a
// saturated line: classify, split at an interior cut, check feasibility
// of the parts, and recurse until only base cases remain.
func TestFullInductionWalk(t *testing.T) {
	var walk func(spec *core.Spec, depth int)
	walk = func(spec *core.Spec, depth int) {
		if depth > 6 {
			t.Fatal("induction recursion too deep")
		}
		if spec.N() == 1 {
			return // |V| = 1: trivially stable, paper's base
		}
		a := spec.Analyze(flow.NewPushRelabel())
		if a.Feasibility == flow.Infeasible {
			t.Fatalf("depth %d: infeasible part", depth)
		}
		kase, _ := InductionCaseExact(a, 64)
		switch kase {
		case 1, 2:
			return // analytic base cases (Sections V-A, V-B)
		case 3:
			mask, ok := FindInteriorCut(a, 64)
			if !ok {
				t.Fatalf("depth %d: case 3 without an interior cut", depth)
			}
			s, err := At(spec, mask, 16)
			if err != nil {
				t.Fatalf("depth %d: %v", depth, err)
			}
			if _, _, err := s.Check(flow.NewPushRelabel()); err != nil {
				t.Fatalf("depth %d: %v", depth, err)
			}
			walk(s.A.Spec, depth+1)
			walk(s.B.Spec, depth+1)
		}
	}
	walk(core.NewSpec(graph.Line(6)).SetSource(0, 1).SetSink(5, 1), 0)
	walk(barbellSpecFor(t), 0)
}

func barbellSpecFor(t *testing.T) *core.Spec {
	t.Helper()
	g := graph.Barbell(3, 3)
	return core.NewSpec(g).SetSource(0, 1).SetSink(graph.NodeID(g.NumNodes()-1), 2)
}

// Property-ish: on random saturated networks, whenever the exact
// classifier says case 3, FindInteriorCut succeeds and the split checks.
func TestExactCaseAndSplitConsistency(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		r := rng.New(seed)
		n := 8
		g := graph.RandomMultigraph(n, n+r.IntN(6), r)
		spec := core.NewSpec(g).SetSource(0, 1+r.Int64N(2)).SetSink(graph.NodeID(n-1), 1+r.Int64N(3))
		a := spec.Analyze(flow.NewPushRelabel())
		if a.Feasibility == flow.Infeasible {
			continue
		}
		kase, exhaustive := InductionCaseExact(a, 128)
		if !exhaustive {
			continue
		}
		if kase != 3 {
			continue
		}
		mask, ok := FindInteriorCut(a, 128)
		if !ok {
			t.Fatalf("seed %d: case 3 but no interior cut found", seed)
		}
		s, err := At(spec, mask, 8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, _, err := s.Check(flow.NewPushRelabel()); err != nil {
			t.Fatalf("seed %d: split check: %v", seed, err)
		}
	}
}
