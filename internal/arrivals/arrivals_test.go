package arrivals

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func spec2() *core.Spec {
	return core.NewSpec(graph.Line(3)).SetSource(0, 4).SetSink(2, 4)
}

func inject(t *testing.T, a core.ArrivalProcess, spec *core.Spec, tm int64) []int64 {
	t.Helper()
	inj := make([]int64, spec.N())
	a.Injections(tm, spec, inj)
	return inj
}

func TestThinnedBounds(t *testing.T) {
	a := &Thinned{P: 0.5, R: rng.New(1)}
	spec := spec2()
	var sum int64
	const n = 2000
	for i := 0; i < n; i++ {
		inj := inject(t, a, spec, int64(i))
		if inj[0] < 0 || inj[0] > 4 {
			t.Fatalf("thinned injection %d out of [0,4]", inj[0])
		}
		if inj[1] != 0 || inj[2] != 0 {
			t.Fatal("non-source received packets")
		}
		sum += inj[0]
	}
	mean := float64(sum) / n
	if math.Abs(mean-2.0) > 0.15 {
		t.Fatalf("thinned mean %v, want ~2", mean)
	}
}

func TestThinnedExtremes(t *testing.T) {
	spec := spec2()
	a := &Thinned{P: 0, R: rng.New(1)}
	if inject(t, a, spec, 0)[0] != 0 {
		t.Fatal("p=0 injected")
	}
	a = &Thinned{P: 1, R: rng.New(1)}
	if inject(t, a, spec, 0)[0] != 4 {
		t.Fatal("p=1 did not inject in(v)")
	}
}

func TestUniformDefaultRange(t *testing.T) {
	a := &Uniform{R: rng.New(2)}
	spec := spec2()
	seen := map[int64]bool{}
	var sum int64
	const n = 5000
	for i := 0; i < n; i++ {
		x := inject(t, a, spec, int64(i))[0]
		if x < 0 || x > 8 {
			t.Fatalf("uniform injection %d out of [0,8]", x)
		}
		seen[x] = true
		sum += x
	}
	if len(seen) != 9 {
		t.Fatalf("uniform hit %d/9 values", len(seen))
	}
	if mean := float64(sum) / n; math.Abs(mean-4.0) > 0.3 {
		t.Fatalf("uniform mean %v, want ~4 (= in)", mean)
	}
}

func TestUniformCustomHi(t *testing.T) {
	spec := spec2()
	a := &Uniform{Hi: []int64{2, 0, 0}, R: rng.New(3)}
	for i := 0; i < 200; i++ {
		if x := inject(t, a, spec, int64(i))[0]; x < 0 || x > 2 {
			t.Fatalf("custom-hi injection %d", x)
		}
	}
}

func TestBurstySchedule(t *testing.T) {
	a := &Bursty{Period: 10, BurstLen: 2, BurstFactor: 3, QuietFactor: 0}
	spec := spec2()
	for tm := int64(0); tm < 30; tm++ {
		x := inject(t, a, spec, tm)[0]
		want := int64(0)
		if tm%10 < 2 {
			want = 12 // 3×in
		}
		if x != want {
			t.Fatalf("t=%d: injected %d, want %d", tm, x, want)
		}
	}
	if f := a.AverageFactor(); math.Abs(f-0.6) > 1e-12 {
		t.Fatalf("average factor %v, want 0.6", f)
	}
}

func TestBurstyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad Bursty accepted")
		}
	}()
	inject(t, &Bursty{Period: 0}, spec2(), 0)
}

func TestReplayCycles(t *testing.T) {
	a := &Replay{Steps: [][]int64{{1, 0, 0}, {5, 0, 0}}}
	spec := spec2()
	if inject(t, a, spec, 0)[0] != 1 || inject(t, a, spec, 1)[0] != 5 || inject(t, a, spec, 2)[0] != 1 {
		t.Fatal("replay did not cycle")
	}
	empty := &Replay{}
	if inject(t, empty, spec, 0)[0] != 0 {
		t.Fatal("empty replay injected")
	}
}

func TestReplayLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched replay row accepted")
		}
	}()
	inject(t, &Replay{Steps: [][]int64{{1}}}, spec2(), 0)
}

func TestOnOffAlternates(t *testing.T) {
	a := &OnOff{POnToOff: 0.5, POffToOn: 0.5, R: rng.New(7)}
	spec := spec2()
	on, off := 0, 0
	for i := 0; i < 2000; i++ {
		if inject(t, a, spec, int64(i))[0] > 0 {
			on++
		} else {
			off++
		}
	}
	if on < 700 || off < 700 {
		t.Fatalf("on/off imbalance: %d/%d", on, off)
	}
}

func TestScaledLongRunAverage(t *testing.T) {
	// Scale exact arrivals by 3/4: in=4 → average 3/step with exact
	// accumulator behaviour.
	a := &Scaled{Inner: core.ExactArrivals{}, Num: 3, Den: 4}
	spec := spec2()
	var sum int64
	const n = 400
	for i := 0; i < n; i++ {
		sum += inject(t, a, spec, int64(i))[0]
	}
	if sum != 3*n { // 4·3/4 per step, exactly
		t.Fatalf("scaled sum = %d, want %d", sum, 3*n)
	}
}

func TestScaledFractionalCarry(t *testing.T) {
	// in=1 scaled by 1/3 → exactly one packet every 3 steps.
	spec := core.NewSpec(graph.Line(2)).SetSource(0, 1).SetSink(1, 1)
	a := &Scaled{Inner: core.ExactArrivals{}, Num: 1, Den: 3}
	got := []int64{}
	for i := 0; i < 9; i++ {
		got = append(got, inject(t, a, spec, int64(i))[0])
	}
	var sum int64
	for _, x := range got {
		sum += x
	}
	if sum != 3 {
		t.Fatalf("carry total = %d over 9 steps, want 3 (%v)", sum, got)
	}
}

func TestScaledPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad Scaled accepted")
		}
	}()
	inject(t, &Scaled{Inner: core.ExactArrivals{}, Num: 1, Den: 0}, spec2(), 0)
}

func TestNames(t *testing.T) {
	for _, a := range []core.ArrivalProcess{
		&Thinned{P: 0.5, R: rng.New(1)},
		&Uniform{R: rng.New(1)},
		&Bursty{Period: 4, BurstLen: 1, BurstFactor: 2},
		&Replay{},
		&OnOff{R: rng.New(1)},
		&Scaled{Inner: core.ExactArrivals{}, Num: 1, Den: 2},
	} {
		if a.Name() == "" {
			t.Fatalf("%T has empty name", a)
		}
	}
}
