// Package arrivals provides the arrival processes used by the stability
// experiments. The classical process (inject exactly in(v), core's
// ExactArrivals) is the hypothesis of Conjecture 1; the processes here
// model the relaxations the paper's conjectures reason about:
//
//   - Thinned: inject Binomial(in(v), p) ≤ in(v) — a generalized source
//     (Definition 5), also how "packet losses are modeled by the ability
//     of a source to inject less than in(s)" (Section IV).
//   - Uniform: inject a uniform integer, Conjecture 3's regime.
//   - Bursty: alternate overload bursts with compensating quiet periods,
//     Conjecture 2's regime.
//   - Replay: deterministic adversarial schedules.
//   - OnOff: a two-state Markov-modulated source.
package arrivals

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
)

// Thinned injects Binomial(in(v), P) packets per source per step:
// each nominal packet independently materializes with probability P.
type Thinned struct {
	P float64
	R *rng.Source
}

// Name implements core.ArrivalProcess.
func (a *Thinned) Name() string { return fmt.Sprintf("thinned(p=%g)", a.P) }

// Injections implements core.ArrivalProcess.
func (a *Thinned) Injections(_ int64, spec *core.Spec, inj []int64) {
	for v, in := range spec.In {
		if in > 0 {
			inj[v] = a.R.Binomial(in, a.P)
		}
	}
}

// SourcesOnly implements core.SourceOnlyArrivals: thinning only ever
// injects where in(v) > 0.
func (a *Thinned) SourcesOnly() bool { return true }

// Uniform injects, at every source v, a uniform integer in [0, Hi(v)]
// (mean Hi(v)/2) — the regime of Conjecture 3 when the mean is below the
// minimum S-D-cut.
type Uniform struct {
	// Hi caps the per-step injection per node; nodes with in(v) == 0 are
	// skipped regardless. If Hi is nil, 2·in(v) is used (mean = in(v)).
	Hi []int64
	R  *rng.Source
}

// Name implements core.ArrivalProcess.
func (a *Uniform) Name() string { return "uniform" }

// Injections implements core.ArrivalProcess.
func (a *Uniform) Injections(_ int64, spec *core.Spec, inj []int64) {
	for v, in := range spec.In {
		if in <= 0 {
			continue
		}
		hi := 2 * in
		if a.Hi != nil {
			hi = a.Hi[v]
		}
		if hi < 0 {
			hi = 0
		}
		inj[v] = a.R.IntRange(0, hi)
	}
}

// SourcesOnly implements core.SourceOnlyArrivals.
func (a *Uniform) SourcesOnly() bool { return true }

// Bursty alternates overload and compensation deterministically: within
// each period of Period steps, the first BurstLen steps inject
// BurstFactor·in(v) and the remaining steps inject QuietFactor·in(v).
// Choosing BurstLen·BurstFactor + (Period−BurstLen)·QuietFactor ≤ Period
// keeps the long-run average at or below the nominal rate (the premise of
// Conjecture 2).
type Bursty struct {
	Period      int64
	BurstLen    int64
	BurstFactor int64
	QuietFactor int64
}

// Name implements core.ArrivalProcess.
func (a *Bursty) Name() string {
	return fmt.Sprintf("bursty(%d/%d ×%d,×%d)", a.BurstLen, a.Period, a.BurstFactor, a.QuietFactor)
}

// AverageFactor returns the long-run injection rate as a multiple of
// in(v).
func (a *Bursty) AverageFactor() float64 {
	return (float64(a.BurstLen*a.BurstFactor) + float64((a.Period-a.BurstLen)*a.QuietFactor)) / float64(a.Period)
}

// Injections implements core.ArrivalProcess.
func (a *Bursty) Injections(t int64, spec *core.Spec, inj []int64) {
	if a.Period <= 0 || a.BurstLen < 0 || a.BurstLen > a.Period {
		panic("arrivals: inconsistent Bursty parameters")
	}
	factor := a.QuietFactor
	if t%a.Period < a.BurstLen {
		factor = a.BurstFactor
	}
	for v, in := range spec.In {
		if in > 0 {
			inj[v] = in * factor
		}
	}
}

// SourcesOnly implements core.SourceOnlyArrivals.
func (a *Bursty) SourcesOnly() bool { return true }

// Replay injects a fixed schedule: Steps[t%len(Steps)][v] packets at node
// v. It lets experiments encode adversarial arrival patterns exactly.
// Replay rows may target any node, so it does not advertise SourcesOnly.
type Replay struct {
	Steps [][]int64
}

// Name implements core.ArrivalProcess.
func (a *Replay) Name() string { return fmt.Sprintf("replay(%d)", len(a.Steps)) }

// Injections implements core.ArrivalProcess.
func (a *Replay) Injections(t int64, spec *core.Spec, inj []int64) {
	if len(a.Steps) == 0 {
		return
	}
	row := a.Steps[t%int64(len(a.Steps))]
	if len(row) != len(inj) {
		panic("arrivals: replay row length mismatch")
	}
	copy(inj, row)
}

// OnOff is a Markov-modulated source: each source is independently ON or
// OFF; ON sources inject in(v), OFF sources inject nothing. State flips
// with probabilities POnToOff / POffToOn per step. The stationary ON
// probability is POffToOn/(POnToOff+POffToOn).
type OnOff struct {
	POnToOff float64
	POffToOn float64
	R        *rng.Source

	on []bool
}

// Name implements core.ArrivalProcess.
func (a *OnOff) Name() string {
	return fmt.Sprintf("onoff(%.2f,%.2f)", a.POnToOff, a.POffToOn)
}

// Injections implements core.ArrivalProcess.
func (a *OnOff) Injections(_ int64, spec *core.Spec, inj []int64) {
	if a.on == nil {
		a.on = make([]bool, len(spec.In))
		for v := range a.on {
			a.on[v] = true // start ON
		}
	}
	for v, in := range spec.In {
		if in <= 0 {
			continue
		}
		if a.on[v] {
			if a.R.Bool(a.POnToOff) {
				a.on[v] = false
			}
		} else if a.R.Bool(a.POffToOn) {
			a.on[v] = true
		}
		if a.on[v] {
			inj[v] = in
		}
	}
}

// SourcesOnly implements core.SourceOnlyArrivals.
func (a *OnOff) SourcesOnly() bool { return true }

// Scaled wraps another process and multiplies every injection by a
// rational Num/Den (rounding down, with an error-carrying accumulator per
// node so the long-run average is exact). It is how load sweeps dial the
// arrival rate to ρ·in(v) without rebuilding the spec.
type Scaled struct {
	Inner core.ArrivalProcess
	Num   int64
	Den   int64

	acc []int64
	tmp []int64
}

// Name implements core.ArrivalProcess.
func (a *Scaled) Name() string {
	return fmt.Sprintf("%s×%d/%d", a.Inner.Name(), a.Num, a.Den)
}

// Injections implements core.ArrivalProcess.
func (a *Scaled) Injections(t int64, spec *core.Spec, inj []int64) {
	if a.Den <= 0 || a.Num < 0 {
		panic("arrivals: inconsistent Scaled parameters")
	}
	if a.tmp == nil {
		a.tmp = make([]int64, len(inj))
		a.acc = make([]int64, len(inj))
	}
	for i := range a.tmp {
		a.tmp[i] = 0
	}
	a.Inner.Injections(t, spec, a.tmp)
	for v, x := range a.tmp {
		a.acc[v] += x * a.Num
		inj[v] = a.acc[v] / a.Den
		a.acc[v] -= inj[v] * a.Den
	}
}

// SourcesOnly implements core.SourceOnlyArrivals by delegation: scaling
// cannot move an injection to a new node, so the guarantee is exactly
// the inner process's.
func (a *Scaled) SourcesOnly() bool {
	so, ok := a.Inner.(core.SourceOnlyArrivals)
	return ok && so.SourcesOnly()
}
