package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "E20", Title: "Gradient plateaus: stability without delivery",
		Paper: "Definition 2 scope (bounded ≠ delivered)", Run: runE20})
	register(Experiment{ID: "E21", Title: "Steady-state backlog scaling on saturated lines",
		Paper: "Section V-B dynamics, quantified", Run: runE21})
}

// runE20 quantifies the gap between the paper's stability notion and
// packet delivery: preload every node, switch arrivals off, and measure
// how many packets LGG actually drains to the sinks before the gradient
// field flattens and the remainder is stranded (ping-ponging on
// plateaus). Random tie-breaking turns the plateau walk into an unbiased
// random walk that eventually finds the sinks, draining far more.
func runE20(cfg Config) *Table {
	t := &Table{
		ID:      "E20",
		Title:   "drain analysis: stranded packets on flat gradients",
		Claim:   "P_t stays bounded (Definition 2) even though deterministic ties strand packets",
		Columns: []string{"network", "tie-rule", "preloaded", "drained", "stranded", "stranded-%", "steps-to-quiesce"},
	}
	ws := unsaturatedSuite(cfg)
	rules := []core.TieBreak{core.TieEdgeOrder, core.TiePeerOrder, core.TieRandom}
	type job struct {
		w    workload
		rule core.TieBreak
	}
	var jobs []job
	for _, w := range ws {
		for _, r := range rules {
			jobs = append(jobs, job{w, r})
		}
	}
	rows := make([][]string, len(jobs))
	sim.ForEach(len(jobs), func(i int) {
		j := jobs[i]
		var router *core.LGG
		if j.rule == core.TieRandom {
			router = core.NewLGGRandomTies(rng.New(cfg.Seed).Split(uint64(100 + i)))
		} else {
			router = &core.LGG{Tie: j.rule}
		}
		e := core.NewEngine(j.w.spec, router)
		e.Arrivals = zeroArrivals{}
		pre := make([]int64, j.w.spec.N())
		var preloaded int64
		for v := range pre {
			pre[v] = 10
			preloaded += 10
		}
		e.SetQueues(pre)
		quiesce := int64(-1)
		lastQ := preloaded
		stable := int64(0)
		for s := int64(0); s < cfg.horizon(); s++ {
			st := e.Step()
			if st.Queued == lastQ {
				stable++
				// With deterministic ties the state cycles quickly; a long
				// plateau of the backlog means quiescent (or ping-pong).
				if stable >= 50 && quiesce < 0 {
					quiesce = s - 49
				}
			} else {
				stable = 0
			}
			lastQ = st.Queued
			if st.Queued == 0 {
				quiesce = s
				break
			}
		}
		stranded := lastQ
		qs := "never"
		if quiesce >= 0 {
			qs = fmtI(quiesce)
		}
		rows[i] = []string{j.w.name, j.rule.String(), fmtI(preloaded),
			fmtI(preloaded - stranded), fmtI(stranded),
			fmtF(100 * float64(stranded) / float64(preloaded)), qs}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Note("stranded packets keep P_t bounded — Definition 2 never promises delivery; random ties drain (random-walk recurrence)")
	return t
}

// runE21 measures how the steady-state backlog of a *saturated* line
// grows with its length: the queue profile under LGG is a staircase
// descending toward the sink, so the stored mass scales quadratically
// with hop count — bounded for each n (stability) but not uniformly in n.
func runE21(cfg Config) *Table {
	t := &Table{
		ID:      "E21",
		Title:   "saturated-line backlog vs length",
		Claim:   "peak backlog grows ~n² on saturated lines (bounded per network, unbounded in n)",
		Columns: []string{"n(nodes)", "hops", "peak-backlog", "final-backlog", "peak-maxQ"},
	}
	sizes := []int{3, 5, 9, 17}
	if !cfg.Quick {
		sizes = append(sizes, 33)
	}
	type out struct{ peak, final, maxq int64 }
	outs := make([]out, len(sizes))
	sim.ForEach(len(sizes), func(i int) {
		n := sizes[i]
		spec := core.NewSpec(graph.Line(n)).SetSource(0, 1).SetSink(graph.NodeID(n-1), 1)
		e := core.NewEngine(spec, core.NewLGG())
		// saturated lines converge slowly: give them a long horizon
		tot := e.Run(cfg.horizon() * 4)
		outs[i] = out{tot.PeakQueued, tot.FinalQueued, tot.PeakMaxQ}
	})
	var xs, ys []float64
	for i, n := range sizes {
		t.AddRow(fmtI(int64(n)), fmtI(int64(n-1)), fmtI(outs[i].peak),
			fmtI(outs[i].final), fmtI(outs[i].maxq))
		xs = append(xs, math.Log(float64(n-1)))
		ys = append(ys, math.Log(float64(outs[i].peak)))
	}
	fit := stats.FitLine(xs, ys)
	t.Note("log-log fit: peak ~ hops^%.2f (R²=%.3f); the staircase profile predicts exponent ≈ 2", fit.Slope, fit.R2)
	return t
}
