package experiments

import (
	"fmt"
	"sort"

	"repro/internal/sweep"
)

// NamedGrid is a sweep addressable by name from cmd/lggsweep and the
// benchmarks; Jobs rebuilds the enumerated job list for a given Config so
// callers can vary seed, replica count and horizon. Space, when set,
// exposes the same sweep as a typed-axis sweep.Space — the form the
// adaptive frontier driver (and any axis-aware tooling) consumes. Jobs
// and Space always describe the same runs: for migrated grids, Jobs is
// exactly Space(cfg).Jobs().
type NamedGrid struct {
	Name  string
	Desc  string
	Jobs  func(cfg Config) []sweep.Job
	Space func(cfg Config) *sweep.Space
}

// mustJobs enumerates a space that is enumerable by construction; the
// migrated grid constructors use it so their historical []sweep.Job
// signatures survive the typed-axis redesign.
func mustJobs(s *sweep.Space) []sweep.Job {
	jobs, err := s.Jobs()
	if err != nil {
		panic(fmt.Sprintf("experiments: grid %q: %v", s.Name, err))
	}
	return jobs
}

// SweepGrids returns the registered grids, sorted by name.
func SweepGrids() []NamedGrid {
	grids := []NamedGrid{
		{Name: "stability", Desc: "E4 load sweep: unsaturated suite × load fractions of f*",
			Jobs: StabilityGrid, Space: StabilitySpace},
		{Name: "generalized", Desc: "E8 R-generalized networks: retention × lying × extraction policies",
			Jobs: GeneralizedGrid, Space: GeneralizedSpace},
		{Name: "duel", Desc: "E16 router duel: LGG vs baselines across sub-critical loads",
			Jobs: RouterDuelGrid, Space: RouterDuelSpace},
		{Name: "faults", Desc: "fault injection: unsaturated suite × fault regimes, with recovery verdicts",
			Jobs: FaultsGrid, Space: FaultsSpace},
		{Name: "shard", Desc: "shard-determinism stress: LGG × stochastic losses/arrivals/lying on localized topologies",
			Jobs: ShardGrid, Space: ShardSpace},
		{Name: "frontier", Desc: "critical-load frontier: unsaturated suite × a dense rho axis around f* (built for -adaptive)",
			Jobs: FrontierGrid, Space: FrontierSpace},
	}
	sort.Slice(grids, func(i, j int) bool { return grids[i].Name < grids[j].Name })
	return grids
}

// FindGrid looks a grid up by name.
func FindGrid(name string) (NamedGrid, error) {
	for _, g := range SweepGrids() {
		if g.Name == name {
			return g, nil
		}
	}
	return NamedGrid{}, fmt.Errorf("experiments: unknown grid %q", name)
}

// ResultTable renders sweep results as a Table so they reuse the existing
// CSV/text writers. One row per run, in sweep order.
func ResultTable(name string, rs []sweep.Result) *Table {
	t := &Table{
		ID:      "sweep-" + name,
		Title:   "sweep results: " + name,
		Columns: []string{"index", "network", "router", "variant", "replica", "seed", "horizon", "verdict", "slope", "mean-backlog", "peak-P", "final-P"},
	}
	for _, r := range rs {
		t.AddRow(fmtI(int64(r.Index)), r.Network, r.Router, r.Variant,
			fmtI(int64(r.Replica)), fmt.Sprintf("%d", r.Seed), fmtI(r.Horizon),
			r.Verdict.String(), fmtF(r.Slope), fmtF(r.MeanBacklog),
			fmtI(r.PeakPotential), fmtI(r.FinalPotential))
	}
	return t
}
