package experiments

import (
	"fmt"
	"math"

	"repro/internal/arrivals"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "E4", Title: "Stability region of LGG (Theorem 1, feasible side)",
		Paper: "Theorem 1, Lemma 1", Run: runE4})
	register(Experiment{ID: "E5", Title: "Divergence beyond f* for every router (Theorem 1, infeasible side)",
		Paper: "Theorem 1, min-cut argument", Run: runE5})
	register(Experiment{ID: "E6", Title: "One-step growth bound (Property 1)",
		Paper: "Property 1: P_{t+1}−P_t ≤ 5nΔ²", Run: runE6})
	register(Experiment{ID: "E7", Title: "High-state decrease and Lemma 1 state bound",
		Paper: "Property 2, Lemma 1", Run: runE7})
}

// scaledEngine builds an LGG engine whose arrivals are the nominal rates
// scaled by num/den.
func scaledEngine(spec *core.Spec, num, den int64) *core.Engine {
	e := core.NewEngine(spec, core.NewLGG())
	e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: num, Den: den}
	return e
}

// e4cell is one (network, load fraction) cell of the E4 stability grid.
type e4cell struct {
	w        workload
	frac     string
	rate     int64
	fstar    int64
	num, den int64
}

// stabilityCells enumerates the E4 grid: the unsaturated suite crossed
// with load fractions of f*.
func stabilityCells(cfg Config) []e4cell {
	fracs := []struct {
		name     string
		num, den int64
	}{{"0.50", 1, 2}, {"0.80", 4, 5}, {"1.00", 1, 1}, {"1.25", 5, 4}}
	var cells []e4cell
	for _, w := range unsaturatedSuite(cfg) {
		a := w.spec.Analyze(flow.NewPushRelabel())
		rate := w.spec.ArrivalRate()
		for _, f := range fracs {
			// target per-step total = ρ·f*: scale nominal rate by
			// (f*·num)/(rate·den).
			cells = append(cells, e4cell{w: w, frac: f.name, rate: rate,
				fstar: a.FStar, num: a.FStar * f.num, den: rate * f.den})
		}
	}
	return cells
}

// loadInfo is the per-network capacity data a rho-axis Build scales
// arrivals by.
type loadInfo struct {
	spec  *core.Spec
	fstar int64
	rate  int64
}

// loadInfos analyzes a workload list once for rho-axis spaces.
func loadInfos(ws []workload) ([]string, []loadInfo) {
	names := make([]string, len(ws))
	infos := make([]loadInfo, len(ws))
	for i, w := range ws {
		a := w.spec.Analyze(flow.NewPushRelabel())
		names[i] = w.name
		infos[i] = loadInfo{spec: w.spec, fstar: a.FStar, rate: w.spec.ArrivalRate()}
	}
	return names, infos
}

// rhoScale converts an arbitrary load fraction rho into the exact Scaled
// rational num/den targeting rho·f* per step. Representing rho as
// round(rho·1e6)/1e6 keeps declared grid fractions exact (0.50 → 1/2,
// 0.80 → 4/5, …), so the accumulator arithmetic — which depends only on
// the value of the rational — reproduces the historical per-step
// injection sequence at every enumerated point.
func rhoScale(info loadInfo, rho float64) (num, den int64) {
	const q = 1_000_000
	return info.fstar * int64(math.Round(rho*q)), info.rate * q
}

// StabilitySpace is the E4 load sweep as a typed-axis space: the
// unsaturated suite crossed with a numeric rho axis in units of f*. The
// rho axis is what makes the grid adaptively searchable — RunFrontier
// bisects it for the empirical edge of Theorem 1's stability region.
func StabilitySpace(cfg Config) *sweep.Space {
	names, infos := loadInfos(unsaturatedSuite(cfg))
	return &sweep.Space{
		Name:     "stability",
		BaseSeed: cfg.Seed,
		Replicas: cfg.seeds(),
		Horizon:  cfg.horizon(),
		Axes: []sweep.Axis{
			{Name: "network", Labels: names},
			{Name: "rho", Unit: "×f*", Points: []float64{0.5, 0.8, 1.0, 1.25},
				Labels: []string{"0.50", "0.80", "1.00", "1.25"}},
		},
		// Historical seeding: every cell shares the base seed + replica
		// offset (the runs are deterministic given the engine).
		SeedFn: func(_ sweep.Point, rep int) uint64 { return cfg.Seed + uint64(rep) },
		Build: func(p sweep.Probe) *core.Engine {
			info := infos[int(p.Point[0].Value)]
			rho, _ := p.Point.Value("rho")
			num, den := rhoScale(info, rho)
			return scaledEngine(info.spec, num, den)
		},
	}
}

// StabilityGrid returns the E4 load-sweep job list (Theorem 1's stability
// frontier) for sweep-based execution: lggsweep and BenchmarkSweep* run
// exactly the grid the experiment tables are built from.
func StabilityGrid(cfg Config) []sweep.Job {
	return mustJobs(StabilitySpace(cfg))
}

// runE4 sweeps the injected load as a fraction of f* on the unsaturated
// suite: LGG must be stable through the entire feasible region (ρ ≤ 1)
// and diverge beyond it.
func runE4(cfg Config) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "stability region sweep",
		Claim:   "stable for every load ρ ≤ 1 (×f*), diverging for ρ > 1",
		Columns: []string{"network", "ρ(×f*)", "rate", "f*", "stable-share", "mean-backlog", "verdict"},
	}
	cells := stabilityCells(cfg)
	rs, _ := (&sweep.Runner{}).Run(StabilityGrid(cfg))
	for i, cell := range fullCells(rs, cfg.seeds()) {
		c := cells[i]
		share := sweep.StableShare(cell)
		verdict := "stable"
		if share < 0.5 {
			verdict = cell[0].Verdict.String()
		}
		t.AddRow(c.w.name, c.frac, fmtI(c.rate*c.num/c.den), fmtI(c.fstar),
			fmtF(share), fmtF(sweep.MeanBacklog(cell)), verdict)
	}
	t.Note("ρ=1.00 loads the network exactly at f* (the saturated frontier); Theorem 1 still predicts stability there")
	return t
}

// runE5 overloads networks past f* and runs every router: the min-cut
// argument says no algorithm can drain the excess, and the backlog slope
// must be at least rate − f*.
func runE5(cfg Config) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "universal divergence beyond capacity",
		Claim:   "Σin > f* ⇒ backlog grows ≥ (rate − f*) per step for every algorithm",
		Columns: []string{"network", "router", "rate", "f*", "verdict", "slope", "slope≥rate−f*"},
	}
	spec := thetaSpec(3, 2, 2, 3)
	if !cfg.Quick {
		spec = thetaSpec(4, 3, 2, 4)
	}
	a := spec.Analyze(flow.NewPushRelabel())
	rate := spec.ArrivalRate()
	// overload to exactly 2·f* per step: strictly beyond capacity no
	// matter how much slack the nominal rate had.
	num, den := 2*a.FStar, rate
	actual := 2 * a.FStar
	mkRouters := func(seed uint64) []core.Router {
		fr, err := baseline.NewFlowRouter(spec, flow.NewPushRelabel())
		routers := []core.Router{
			core.NewLGG(),
			baseline.NewFullGradient(),
			baseline.NewShortestPath(spec),
			baseline.NewRandomForward(rng.New(seed).Split(3)),
		}
		if err == nil {
			routers = append(routers, fr)
		}
		return routers
	}
	names := []string{}
	for _, r := range mkRouters(0) {
		names = append(names, r.Name())
	}
	jobs := make([]sweep.Job, len(names))
	for i, name := range names {
		i := i
		jobs[i] = sweep.Job{
			Desc: sweep.Desc{Index: i, Grid: "E5", Network: spec.String(), Router: name,
				Seed: cfg.Seed, Horizon: cfg.horizon()},
			Build: func(seed uint64) *core.Engine {
				e := core.NewEngine(spec, mkRouters(seed)[i])
				e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: num, Den: den}
				return e
			},
		}
	}
	rs, _ := (&sweep.Runner{}).Run(jobs)
	for i, r := range rs {
		margin := float64(actual - a.FStar)
		ok := r.Slope >= margin*0.9 // tolerance for warmup
		t.AddRow(spec.String(), names[i], fmtI(actual), fmtI(a.FStar),
			r.Verdict.String(), fmtF(r.Slope), fmt.Sprintf("%v", ok))
	}
	return t
}

// runE6 records every one-step potential change on the unsaturated suite
// and compares the worst observed growth with Property 1's 5nΔ² bound.
func runE6(cfg Config) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "one-step growth of the network state",
		Claim:   "max_t (P_{t+1} − P_t) ≤ 5nΔ² on unsaturated networks",
		Columns: []string{"network", "n", "Δ", "bound 5nΔ²", "max-observed", "ratio", "holds"},
	}
	ws := unsaturatedSuite(cfg)
	jobs := make([]sweep.Job, len(ws))
	for i, w := range ws {
		w := w
		jobs[i] = sweep.Job{
			Desc: sweep.Desc{Index: i, Grid: "E6", Network: w.name,
				Seed: cfg.Seed, Horizon: cfg.horizon()},
			Build:   func(uint64) *core.Engine { return core.NewEngine(w.spec, core.NewLGG()) },
			Options: sim.Options{Horizon: cfg.horizon(), RecordDeltas: true},
		}
	}
	rs, _ := (&sweep.Runner{}).Run(jobs)
	for i, r := range rs {
		w := ws[i]
		bound := 5 * float64(w.spec.N()) * float64(w.spec.Delta()) * float64(w.spec.Delta())
		t.AddRow(w.name, fmtI(int64(w.spec.N())), fmtI(int64(w.spec.Delta())),
			fmtF(bound), fmtF(r.MaxDelta), fmtF(r.MaxDelta/bound),
			fmt.Sprintf("%v", r.MaxDelta <= bound))
	}
	t.Note("the bound is intentionally loose (worst-case over all reachable states); small ratios are expected")
	return t
}

// runE7 verifies the two halves of Lemma 1's mechanism: (a) long-run
// peaks stay far below the explicit state bound nY² + 5nΔ², and (b) from
// an artificially inflated state with arrivals switched off, the network
// state drains monotonically (Property 2's negative drift).
func runE7(cfg Config) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "state bound and high-state drift",
		Claim:   "P_t stays below nY²+5nΔ²; large states strictly decrease",
		Columns: []string{"network", "ε", "state-bound", "peak-P", "drain-start-P", "drain-final-P", "decreasing-steps"},
	}
	for _, w := range unsaturatedSuite(cfg) {
		b, err := core.ComputeBounds(w.spec, flow.NewPushRelabel())
		if err != nil {
			t.AddRow(w.name, "-", "-", "-", "-", "-", err.Error())
			continue
		}
		// (a) long run under nominal arrivals.
		e := core.NewEngine(w.spec, core.NewLGG())
		r := sim.Run(e, sim.Options{Horizon: cfg.horizon()})
		// (b) drain: preload every node, stop arrivals.
		e2 := core.NewEngine(w.spec, core.NewLGG())
		preload := make([]int64, w.spec.N())
		for v := range preload {
			preload[v] = 40
		}
		e2.SetQueues(preload)
		e2.Arrivals = zeroArrivals{}
		startP := core.Potential(e2.Q)
		dec, total := 0, 0
		prev := startP
		for i := int64(0); i < cfg.horizon(); i++ {
			st := e2.Step()
			if st.Potential < prev {
				dec++
			}
			if prev > 0 {
				total++
			}
			prev = st.Potential
			if st.Potential == 0 {
				break
			}
		}
		frac := 0.0
		if total > 0 {
			frac = float64(dec) / float64(total)
		}
		t.AddRow(w.name, fmtF(b.Eps), fmtF(b.StateBound),
			fmtF(float64(r.Totals.PeakPotential)), fmtF(float64(startP)),
			fmtF(float64(prev)), fmtF(frac))
	}
	return t
}

// zeroArrivals injects nothing (the drain phase of E7).
type zeroArrivals struct{}

func (zeroArrivals) Name() string                          { return "zero" }
func (zeroArrivals) Injections(int64, *core.Spec, []int64) {}
