package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "E1", Title: "S-D-network model invariants",
		Paper: "Fig. 1, Section II", Run: runE1})
	register(Experiment{ID: "E2", Title: "Extended graph G* and feasibility classification",
		Paper: "Fig. 2, Defs 3–4", Run: runE2})
	register(Experiment{ID: "E3", Title: "LGG tie-breaking is stability-neutral",
		Paper: "Algorithm 1 remark", Run: runE3})
}

// runE1 exercises the model semantics on every topology family: LGG runs
// must keep queues non-negative, respect the one-packet-per-link rule
// (zero violations/collisions under truthful declarations) and conserve
// packets exactly.
func runE1(cfg Config) *Table {
	t := &Table{
		ID:    "E1",
		Title: "model construction and step invariants",
		Claim: "the synchronous semantics of Section II hold on every topology family",
		Columns: []string{"network", "n", "m", "Δ", "rate", "class",
			"violations", "collisions", "conserved"},
	}
	ws := append(unsaturatedSuite(cfg), saturatedSuite(cfg)...)
	ws = append(ws, workload{"random(12)", randomSpec(12, 20, 2, 3, rng.New(cfg.Seed))})
	rows := make([][]string, len(ws))
	sim.ForEach(len(ws), func(i int) {
		w := ws[i]
		a := w.spec.Analyze(flow.NewPushRelabel())
		e := core.NewEngine(w.spec, core.NewLGG())
		r := sim.Run(e, sim.Options{Horizon: cfg.horizon()})
		conserved := r.Totals.Injected == r.Totals.Extracted+r.Totals.FinalQueued+r.Totals.Lost
		rows[i] = []string{
			w.name, fmtI(int64(w.spec.N())), fmtI(int64(w.spec.G.NumEdges())),
			fmtI(int64(w.spec.Delta())), fmtI(w.spec.ArrivalRate()),
			a.Feasibility.String(),
			fmtI(r.Totals.Violations), fmtI(r.Totals.Collisions),
			fmt.Sprintf("%v", conserved),
		}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// runE2 sweeps random networks, classifies each with all three max-flow
// solvers and reports agreement plus the class census — the G*
// construction of Fig. 2 exercised end to end.
func runE2(cfg Config) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "feasibility classification across solvers",
		Claim:   "push-relabel, Dinic and Edmonds–Karp agree on value, f* and class",
		Columns: []string{"family", "instances", "agree", "infeasible", "saturated", "unsaturated"},
	}
	families := []struct {
		name string
		gen  func(r *rng.Source) *core.Spec
	}{
		{"random(10,n+6)", func(r *rng.Source) *core.Spec {
			return randomSpec(10, 16, 1+r.Int64N(3), 1+r.Int64N(4), r)
		}},
		{"random(16,2n)", func(r *rng.Source) *core.Spec {
			return randomSpec(16, 32, 1+r.Int64N(4), 1+r.Int64N(4), r)
		}},
		{"thick-star", func(r *rng.Source) *core.Spec {
			g := graph.Thicken(graph.Star(6), 5, r)
			s := core.NewSpec(g).SetSink(0, 2+r.Int64N(4))
			for i := 1; i < 6; i++ {
				s.SetSource(graph.NodeID(i), 1)
			}
			return s
		}},
	}
	instances := 20
	if cfg.Quick {
		instances = 6
	}
	for fi, f := range families {
		agree := 0
		census := map[flow.Feasibility]int{}
		for i := 0; i < instances; i++ {
			r := rng.New(cfg.Seed).Split(uint64(fi*1000 + i))
			spec := f.gen(r)
			var first *flow.Analysis
			ok := true
			for _, s := range flow.Solvers() {
				a := spec.Analyze(s)
				if first == nil {
					first = a
				} else if a.Feasibility != first.Feasibility ||
					a.MaxFlow.Value != first.MaxFlow.Value || a.FStar != first.FStar {
					ok = false
				}
			}
			if ok {
				agree++
			}
			census[first.Feasibility]++
		}
		t.AddRow(f.name, fmtI(int64(instances)), fmtI(int64(agree)),
			fmtI(int64(census[flow.Infeasible])), fmtI(int64(census[flow.Saturated])),
			fmtI(int64(census[flow.Unsaturated])))
	}
	return t
}

// runE3 runs the same unsaturated workloads under the three tie-breaking
// rules; the paper says the choice "has no impact on the system
// stability".
func runE3(cfg Config) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "tie-breaking variants of Algorithm 1",
		Claim:   "every tie-breaking rule keeps LGG stable with comparable backlog",
		Columns: []string{"network", "tie-rule", "stable-share", "peak-P", "mean-backlog"},
	}
	type cell struct{ w, rule string }
	type out struct {
		share, peak, backlog float64
	}
	ws := unsaturatedSuite(cfg)
	rules := []core.TieBreak{core.TieEdgeOrder, core.TiePeerOrder, core.TieRandom}
	results := make(map[cell]out)
	type job struct {
		w    workload
		rule core.TieBreak
	}
	var jobs []job
	for _, w := range ws {
		for _, rule := range rules {
			jobs = append(jobs, job{w, rule})
		}
	}
	mu := make([]out, len(jobs))
	sim.ForEach(len(jobs), func(i int) {
		j := jobs[i]
		rs := sim.RunSeeds(func(seed uint64) *core.Engine {
			var l *core.LGG
			if j.rule == core.TieRandom {
				l = core.NewLGGRandomTies(rng.New(seed).Split(7))
			} else {
				l = &core.LGG{Tie: j.rule}
			}
			return core.NewEngine(j.w.spec, l)
		}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
		var peak float64
		for _, p := range sim.PeakPotentials(rs) {
			if p > peak {
				peak = p
			}
		}
		var back float64
		for _, b := range sim.MeanBacklogs(rs) {
			back += b
		}
		mu[i] = out{share: sim.StableShare(rs), peak: peak, backlog: back / float64(len(rs))}
	})
	for i, j := range jobs {
		results[cell{j.w.name, j.rule.String()}] = mu[i]
	}
	for _, w := range ws {
		for _, rule := range rules {
			o := results[cell{w.name, rule.String()}]
			t.AddRow(w.name, rule.String(), fmtF(o.share), fmtF(o.peak), fmtF(o.backlog))
		}
	}
	return t
}
