package experiments

import (
	"fmt"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/interference"
	"repro/internal/loss"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "E11", Title: "Domination: fewer packets never destabilize (Conjecture 1)",
		Paper: "Conjecture 1", Run: runE11})
	register(Experiment{ID: "E12", Title: "Bursts with compensation (Conjecture 2)",
		Paper: "Conjecture 2", Run: runE12})
	register(Experiment{ID: "E13", Title: "Uniform random arrivals below the min cut (Conjecture 3)",
		Paper: "Conjecture 3", Run: runE13})
	register(Experiment{ID: "E14", Title: "Dynamic topologies preserving feasibility (Conjecture 4)",
		Paper: "Conjecture 4", Run: runE14})
	register(Experiment{ID: "E15", Title: "Interference with compatible-set scheduling (Conjecture 5)",
		Paper: "Conjecture 5", Run: runE15})
}

// runE11 is the counterexample search for Conjecture 1: on saturated
// networks where the full-injection/no-loss run is stable, every
// dominated variant (thinned arrivals and/or random losses) must remain
// stable. A dominated run that diverges while its reference is stable
// would refute the conjecture — the paper's missing lemma.
func runE11(cfg Config) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "domination search (coupled runs)",
		Claim:   "if the exact/no-loss run is stable, every dominated run is stable",
		Columns: []string{"network", "variant", "ref-verdict", "dom-verdict", "peak-ratio", "counterexample"},
	}
	type variant struct {
		name  string
		build func(seed uint64, e *core.Engine)
	}
	variants := []variant{
		{"thinned p=0.9", func(seed uint64, e *core.Engine) {
			e.Arrivals = &arrivals.Thinned{P: 0.9, R: rng.New(seed).Split(11)}
		}},
		{"thinned p=0.5", func(seed uint64, e *core.Engine) {
			e.Arrivals = &arrivals.Thinned{P: 0.5, R: rng.New(seed).Split(12)}
		}},
		{"loss p=0.1", func(seed uint64, e *core.Engine) {
			e.Loss = &loss.Bernoulli{P: 0.1, R: rng.New(seed).Split(13)}
		}},
		{"loss p=0.3", func(seed uint64, e *core.Engine) {
			e.Loss = &loss.Bernoulli{P: 0.3, R: rng.New(seed).Split(14)}
		}},
		{"thinned+loss", func(seed uint64, e *core.Engine) {
			e.Arrivals = &arrivals.Thinned{P: 0.8, R: rng.New(seed).Split(15)}
			e.Loss = &loss.Bernoulli{P: 0.2, R: rng.New(seed).Split(16)}
		}},
	}
	// One reference run plus len(variants) dominated cells per workload,
	// all flattened into a single sweep.
	ws := saturatedSuite(cfg)
	var jobs []sweep.Job
	for _, w := range ws {
		w := w
		jobs = append(jobs, sweep.Job{
			Desc: sweep.Desc{Index: len(jobs), Grid: "E11", Network: w.name,
				Variant: "reference", Seed: cfg.Seed, Horizon: cfg.horizon()},
			Build: func(uint64) *core.Engine { return core.NewEngine(w.spec, core.NewLGG()) },
		})
		for _, v := range variants {
			v := v
			for rep := 0; rep < cfg.seeds(); rep++ {
				jobs = append(jobs, sweep.Job{
					Desc: sweep.Desc{Index: len(jobs), Grid: "E11", Network: w.name,
						Variant: v.name, Replica: rep, Seed: cfg.Seed + uint64(rep),
						Horizon: cfg.horizon()},
					Build: func(seed uint64) *core.Engine {
						e := core.NewEngine(w.spec, core.NewLGG())
						v.build(seed, e)
						return e
					},
				})
			}
		}
	}
	rs, _ := (&sweep.Runner{}).Run(jobs)
	counterexamples := 0
	perWorkload := 1 + len(variants)*cfg.seeds()
	for wi, w := range ws {
		block := rs[wi*perWorkload : (wi+1)*perWorkload]
		ref := block[0]
		refPeak := float64(ref.PeakPotential)
		for vi, v := range variants {
			cell := block[1+vi*cfg.seeds() : 1+(vi+1)*cfg.seeds()]
			worst := sweep.WorstVerdict(cell)
			peak := float64(sweep.PeakPotential(cell))
			ce := ref.Verdict == sim.Stable && worst == sim.Diverging
			if ce {
				counterexamples++
			}
			ratio := 0.0
			if refPeak > 0 {
				ratio = peak / refPeak
			}
			t.AddRow(w.name, v.name, ref.Verdict.String(), worst.String(),
				fmtF(ratio), fmt.Sprintf("%v", ce))
		}
	}
	t.Note("counterexamples found: %d (the conjecture survives this search iff 0)", counterexamples)
	return t
}

// runE12 exercises Conjecture 2: arrival bursts that exceed f* are
// harmless when quiet periods compensate, and fatal when they do not.
func runE12(cfg Config) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "bursty arrivals with and without compensation",
		Claim:   "average rate ≤ f* ⇒ stable even when bursts exceed f*; average > f* ⇒ diverging",
		Columns: []string{"network", "burst", "avg/f*", "burst-rate>f*", "stable-share", "verdict"},
	}
	spec := thetaSpec(3, 2, 2, 3) // rate 2, f* = 3
	a := spec.Analyze(flow.NewPushRelabel())
	bursts := []*arrivals.Bursty{
		{Period: 20, BurstLen: 5, BurstFactor: 3, QuietFactor: 0},  // avg 0.75×in (1.5/step < f*)
		{Period: 20, BurstLen: 10, BurstFactor: 2, QuietFactor: 0}, // avg 1.0×in (2/step < f*)
		{Period: 4, BurstLen: 1, BurstFactor: 4, QuietFactor: 0},   // avg 1.0×in, tight cadence
		{Period: 20, BurstLen: 10, BurstFactor: 3, QuietFactor: 0}, // avg 1.5×in (3/step = f*: frontier)
		{Period: 20, BurstLen: 10, BurstFactor: 4, QuietFactor: 0}, // avg 2.0×in (4/step > f*: diverges)
	}
	var jobs []sweep.Job
	for _, b := range bursts {
		b := b
		for rep := 0; rep < cfg.seeds(); rep++ {
			jobs = append(jobs, sweep.Job{
				Desc: sweep.Desc{Index: len(jobs), Grid: "E12", Network: spec.String(),
					Variant: b.Name(), Replica: rep, Seed: cfg.Seed + uint64(rep),
					Horizon: cfg.horizon()},
				Build: func(uint64) *core.Engine {
					e := core.NewEngine(spec, core.NewLGG())
					e.Arrivals = b
					return e
				},
			})
		}
	}
	rs, _ := (&sweep.Runner{}).Run(jobs)
	for i, cell := range fullCells(rs, cfg.seeds()) {
		b := bursts[i]
		burstRate := spec.ArrivalRate() * b.BurstFactor
		avgPerStep := b.AverageFactor() * float64(spec.ArrivalRate())
		t.AddRow(spec.String(), b.Name(), fmtF(avgPerStep/float64(a.FStar)),
			fmt.Sprintf("%v", burstRate > a.FStar), fmtF(sweep.StableShare(cell)),
			cell[0].Verdict.String())
	}
	return t
}

// runE13 exercises Conjecture 3: per-step injections uniform on [0, Hi]
// with mean Hi/2 relative to the min S-D-cut (= f* here).
func runE13(cfg Config) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "uniform random arrivals vs the minimum cut",
		Claim:   "mean < min-cut ⇒ stable w.h.p.; mean > min-cut ⇒ diverging",
		Columns: []string{"network", "mean/cut", "stable-share", "mean-backlog"},
	}
	spec := thetaSpec(3, 2, 1, 3) // f* = 3; In=1 marks node 0 a source
	a := spec.Analyze(flow.NewPushRelabel())
	cut := float64(a.FStar)
	his := []int64{3, 5, 7} // means 1.5, 2.5, 3.5
	var jobs []sweep.Job
	for _, hi := range his {
		hi := hi
		for rep := 0; rep < cfg.seeds(); rep++ {
			jobs = append(jobs, sweep.Job{
				Desc: sweep.Desc{Index: len(jobs), Grid: "E13", Network: spec.String(),
					Variant: fmt.Sprintf("hi=%d", hi), Replica: rep,
					Seed: cfg.Seed + uint64(rep), Horizon: cfg.horizon()},
				Build: func(seed uint64) *core.Engine {
					e := core.NewEngine(spec, core.NewLGG())
					h := make([]int64, spec.N())
					h[0] = hi
					e.Arrivals = &arrivals.Uniform{Hi: h, R: rng.New(seed).Split(21)}
					return e
				},
			})
		}
	}
	rs, _ := (&sweep.Runner{}).Run(jobs)
	for i, cell := range fullCells(rs, cfg.seeds()) {
		mean := float64(his[i]) / 2
		t.AddRow(spec.String(), fmtF(mean/cut), fmtF(sweep.StableShare(cell)),
			fmtF(sweep.MeanBacklog(cell)))
	}
	return t
}

// runE14 exercises Conjecture 4 on dynamic topologies: as long as the
// live sub-network stays feasible at every step, LGG stays stable;
// when churn destroys feasibility on average, it diverges.
func runE14(cfg Config) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "dynamic topologies",
		Claim:   "feasibility of the live subgraph at every step ⇒ stable",
		Columns: []string{"network", "dynamics", "live-feasible", "stable-share", "verdict"},
	}
	// theta(4,3) rate 2, f* = 4: with one path blinking dead at a time,
	// the live network always carries 3 ≥ 2.
	spec := thetaSpec(4, 3, 2, 4)
	lastPath := []graph.EdgeID{9, 10, 11} // edges of path 4 (ids 3·3…)
	cases := []struct {
		name     string
		mk       func(seed uint64) core.TopologyProcess // fresh per run: processes are stateful
		feasible string
	}{
		{"blink one path", func(uint64) core.TopologyProcess {
			return &dynamic.RoundRobinBlink{Victims: lastPath, Period: 7}
		}, "yes"},
		{"flaky p=0.7 (3 paths protected)", func(seed uint64) core.TopologyProcess {
			prot := map[graph.EdgeID]bool{}
			for e := 0; e < 9; e++ { // paths 1–3 always alive
				prot[graph.EdgeID(e)] = true
			}
			return &dynamic.Flaky{PUp: 0.7, Protected: prot, R: rng.New(seed).Split(31)}
		}, "yes"},
	}
	// control: a saturated line whose only edge blinks dead every other
	// period — average capacity ½ < rate ⇒ divergence.
	line := core.NewSpec(graph.Line(2)).SetSource(0, 1).SetSink(1, 1)
	maskOn := []bool{true}
	maskOff := []bool{false}
	churn := &dynamic.Churn{MaskA: maskOn, MaskB: maskOff, Period: 1}
	var jobs []sweep.Job
	for _, c := range cases {
		c := c
		for rep := 0; rep < cfg.seeds(); rep++ {
			jobs = append(jobs, sweep.Job{
				Desc: sweep.Desc{Index: len(jobs), Grid: "E14", Network: spec.String(),
					Variant: c.name, Replica: rep, Seed: cfg.Seed + uint64(rep),
					Horizon: cfg.horizon()},
				Build: func(seed uint64) *core.Engine {
					e := core.NewEngine(spec, core.NewLGG())
					e.Topology = c.mk(seed)
					return e
				},
			})
		}
	}
	for rep := 0; rep < cfg.seeds(); rep++ {
		jobs = append(jobs, sweep.Job{
			Desc: sweep.Desc{Index: len(jobs), Grid: "E14", Network: line.String(),
				Variant: churn.Name(), Replica: rep, Seed: cfg.Seed + uint64(rep),
				Horizon: cfg.horizon()},
			Build: func(uint64) *core.Engine {
				e := core.NewEngine(line, core.NewLGG())
				e.Topology = churn
				return e
			},
		})
	}
	rs, _ := (&sweep.Runner{}).Run(jobs)
	cells := fullCells(rs, cfg.seeds())
	for i, c := range cases {
		cell := cells[i]
		t.AddRow(spec.String(), c.mk(0).Name(), c.feasible,
			fmtF(sweep.StableShare(cell)), cell[0].Verdict.String())
	}
	control := cells[len(cases)]
	t.AddRow(line.String(), churn.Name(), "no (½ capacity)",
		fmtF(sweep.StableShare(control)), control[0].Verdict.String())
	return t
}

// runE15 exercises Conjecture 5: under node-exclusive interference with a
// compatible-set scheduler, LGG remains stable once the load respects the
// scheduler's capacity. Greedy-maximal and gradient-weighted ("oracle")
// schedulers are compared.
func runE15(cfg Config) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "interference-constrained LGG",
		Claim:   "with a compatible E_t each step, LGG stays stable at scheduler-feasible load",
		Columns: []string{"network", "scheduler", "load(×in)", "stable-share", "mean-backlog"},
	}
	spec := gridSpec(3, 4, 2, 1, 3)
	if !cfg.Quick {
		spec = gridSpec(4, 6, 3, 1, 3)
	}
	schedulers := []struct {
		name string
		mk   func() core.Interference
	}{
		{"none", func() core.Interference { return nil }},
		{"greedy", func() core.Interference { return interference.NewGreedy(interference.NodeExclusive) }},
		{"oracle", func() core.Interference { return interference.NewOracle(interference.NodeExclusive) }},
	}
	loads := []struct {
		name     string
		num, den int64
	}{{"1/3", 1, 3}, {"2/3", 2, 3}}
	type e15cell struct {
		sch  string
		load string
	}
	var cells []e15cell
	var jobs []sweep.Job
	for _, sch := range schedulers {
		sch := sch
		for _, ld := range loads {
			ld := ld
			cells = append(cells, e15cell{sch.name, ld.name})
			for rep := 0; rep < cfg.seeds(); rep++ {
				jobs = append(jobs, sweep.Job{
					Desc: sweep.Desc{Index: len(jobs), Grid: "E15", Network: spec.String(),
						Router: sch.name, Variant: "load=" + ld.name, Replica: rep,
						Seed: cfg.Seed + uint64(rep), Horizon: cfg.horizon()},
					Build: func(uint64) *core.Engine {
						e := core.NewEngine(spec, core.NewLGG())
						e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: ld.num, Den: ld.den}
						e.Interference = sch.mk()
						return e
					},
				})
			}
		}
	}
	rs, _ := (&sweep.Runner{}).Run(jobs)
	for i, cell := range fullCells(rs, cfg.seeds()) {
		t.AddRow(spec.String(), cells[i].sch, cells[i].load,
			fmtF(sweep.StableShare(cell)), fmtF(sweep.MeanBacklog(cell)))
	}
	return t
}
