package experiments

import (
	"fmt"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/interference"
	"repro/internal/loss"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "E11", Title: "Domination: fewer packets never destabilize (Conjecture 1)",
		Paper: "Conjecture 1", Run: runE11})
	register(Experiment{ID: "E12", Title: "Bursts with compensation (Conjecture 2)",
		Paper: "Conjecture 2", Run: runE12})
	register(Experiment{ID: "E13", Title: "Uniform random arrivals below the min cut (Conjecture 3)",
		Paper: "Conjecture 3", Run: runE13})
	register(Experiment{ID: "E14", Title: "Dynamic topologies preserving feasibility (Conjecture 4)",
		Paper: "Conjecture 4", Run: runE14})
	register(Experiment{ID: "E15", Title: "Interference with compatible-set scheduling (Conjecture 5)",
		Paper: "Conjecture 5", Run: runE15})
}

// runE11 is the counterexample search for Conjecture 1: on saturated
// networks where the full-injection/no-loss run is stable, every
// dominated variant (thinned arrivals and/or random losses) must remain
// stable. A dominated run that diverges while its reference is stable
// would refute the conjecture — the paper's missing lemma.
func runE11(cfg Config) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "domination search (coupled runs)",
		Claim:   "if the exact/no-loss run is stable, every dominated run is stable",
		Columns: []string{"network", "variant", "ref-verdict", "dom-verdict", "peak-ratio", "counterexample"},
	}
	type variant struct {
		name  string
		build func(seed uint64, e *core.Engine)
	}
	variants := []variant{
		{"thinned p=0.9", func(seed uint64, e *core.Engine) {
			e.Arrivals = &arrivals.Thinned{P: 0.9, R: rng.New(seed).Split(11)}
		}},
		{"thinned p=0.5", func(seed uint64, e *core.Engine) {
			e.Arrivals = &arrivals.Thinned{P: 0.5, R: rng.New(seed).Split(12)}
		}},
		{"loss p=0.1", func(seed uint64, e *core.Engine) {
			e.Loss = &loss.Bernoulli{P: 0.1, R: rng.New(seed).Split(13)}
		}},
		{"loss p=0.3", func(seed uint64, e *core.Engine) {
			e.Loss = &loss.Bernoulli{P: 0.3, R: rng.New(seed).Split(14)}
		}},
		{"thinned+loss", func(seed uint64, e *core.Engine) {
			e.Arrivals = &arrivals.Thinned{P: 0.8, R: rng.New(seed).Split(15)}
			e.Loss = &loss.Bernoulli{P: 0.2, R: rng.New(seed).Split(16)}
		}},
	}
	counterexamples := 0
	ws := saturatedSuite(cfg)
	for _, w := range ws {
		ref := sim.RunSeeds(func(seed uint64) *core.Engine {
			return core.NewEngine(w.spec, core.NewLGG())
		}, sim.Seeds(cfg.Seed, 1), sim.Options{Horizon: cfg.horizon()})[0]
		refPeak := float64(ref.Totals.PeakPotential)
		for _, v := range variants {
			rs := sim.RunSeeds(func(seed uint64) *core.Engine {
				e := core.NewEngine(w.spec, core.NewLGG())
				v.build(seed, e)
				return e
			}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
			worst := sim.Stable
			var peak float64
			for _, r := range rs {
				if r.Diagnosis.Verdict == sim.Diverging {
					worst = sim.Diverging
				} else if r.Diagnosis.Verdict == sim.Inconclusive && worst == sim.Stable {
					worst = sim.Inconclusive
				}
				if p := float64(r.Totals.PeakPotential); p > peak {
					peak = p
				}
			}
			ce := ref.Diagnosis.Verdict == sim.Stable && worst == sim.Diverging
			if ce {
				counterexamples++
			}
			ratio := 0.0
			if refPeak > 0 {
				ratio = peak / refPeak
			}
			t.AddRow(w.name, v.name, ref.Diagnosis.Verdict.String(), worst.String(),
				fmtF(ratio), fmt.Sprintf("%v", ce))
		}
	}
	t.Note("counterexamples found: %d (the conjecture survives this search iff 0)", counterexamples)
	return t
}

// runE12 exercises Conjecture 2: arrival bursts that exceed f* are
// harmless when quiet periods compensate, and fatal when they do not.
func runE12(cfg Config) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "bursty arrivals with and without compensation",
		Claim:   "average rate ≤ f* ⇒ stable even when bursts exceed f*; average > f* ⇒ diverging",
		Columns: []string{"network", "burst", "avg/f*", "burst-rate>f*", "stable-share", "verdict"},
	}
	spec := thetaSpec(3, 2, 2, 3) // rate 2, f* = 3
	a := spec.Analyze(flow.NewPushRelabel())
	bursts := []*arrivals.Bursty{
		{Period: 20, BurstLen: 5, BurstFactor: 3, QuietFactor: 0},  // avg 0.75×in (1.5/step < f*)
		{Period: 20, BurstLen: 10, BurstFactor: 2, QuietFactor: 0}, // avg 1.0×in (2/step < f*)
		{Period: 4, BurstLen: 1, BurstFactor: 4, QuietFactor: 0},   // avg 1.0×in, tight cadence
		{Period: 20, BurstLen: 10, BurstFactor: 3, QuietFactor: 0}, // avg 1.5×in (3/step = f*: frontier)
		{Period: 20, BurstLen: 10, BurstFactor: 4, QuietFactor: 0}, // avg 2.0×in (4/step > f*: diverges)
	}
	for _, b := range bursts {
		burstRate := spec.ArrivalRate() * b.BurstFactor
		rs := sim.RunSeeds(func(seed uint64) *core.Engine {
			e := core.NewEngine(spec, core.NewLGG())
			e.Arrivals = b
			return e
		}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
		share := sim.StableShare(rs)
		verdict := rs[0].Diagnosis.Verdict.String()
		avgPerStep := b.AverageFactor() * float64(spec.ArrivalRate())
		t.AddRow(spec.String(), b.Name(), fmtF(avgPerStep/float64(a.FStar)),
			fmt.Sprintf("%v", burstRate > a.FStar), fmtF(share), verdict)
	}
	return t
}

// runE13 exercises Conjecture 3: per-step injections uniform on [0, Hi]
// with mean Hi/2 relative to the min S-D-cut (= f* here).
func runE13(cfg Config) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "uniform random arrivals vs the minimum cut",
		Claim:   "mean < min-cut ⇒ stable w.h.p.; mean > min-cut ⇒ diverging",
		Columns: []string{"network", "mean/cut", "stable-share", "mean-backlog"},
	}
	spec := thetaSpec(3, 2, 1, 3) // f* = 3; In=1 marks node 0 a source
	a := spec.Analyze(flow.NewPushRelabel())
	cut := float64(a.FStar)
	for _, hi := range []int64{3, 5, 7} { // means 1.5, 2.5, 3.5
		mean := float64(hi) / 2
		rs := sim.RunSeeds(func(seed uint64) *core.Engine {
			e := core.NewEngine(spec, core.NewLGG())
			his := make([]int64, spec.N())
			his[0] = hi
			e.Arrivals = &arrivals.Uniform{Hi: his, R: rng.New(seed).Split(21)}
			return e
		}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
		t.AddRow(spec.String(), fmtF(mean/cut), fmtF(sim.StableShare(rs)),
			fmtF(stats.Mean(sim.MeanBacklogs(rs))))
	}
	return t
}

// runE14 exercises Conjecture 4 on dynamic topologies: as long as the
// live sub-network stays feasible at every step, LGG stays stable;
// when churn destroys feasibility on average, it diverges.
func runE14(cfg Config) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "dynamic topologies",
		Claim:   "feasibility of the live subgraph at every step ⇒ stable",
		Columns: []string{"network", "dynamics", "live-feasible", "stable-share", "verdict"},
	}
	// theta(4,3) rate 2, f* = 4: with one path blinking dead at a time,
	// the live network always carries 3 ≥ 2.
	spec := thetaSpec(4, 3, 2, 4)
	lastPath := []graph.EdgeID{9, 10, 11} // edges of path 4 (ids 3·3…)
	cases := []struct {
		name     string
		mk       func(seed uint64) core.TopologyProcess // fresh per run: processes are stateful
		feasible string
	}{
		{"blink one path", func(uint64) core.TopologyProcess {
			return &dynamic.RoundRobinBlink{Victims: lastPath, Period: 7}
		}, "yes"},
		{"flaky p=0.7 (3 paths protected)", func(seed uint64) core.TopologyProcess {
			prot := map[graph.EdgeID]bool{}
			for e := 0; e < 9; e++ { // paths 1–3 always alive
				prot[graph.EdgeID(e)] = true
			}
			return &dynamic.Flaky{PUp: 0.7, Protected: prot, R: rng.New(seed).Split(31)}
		}, "yes"},
	}
	for _, c := range cases {
		rs := sim.RunSeeds(func(seed uint64) *core.Engine {
			e := core.NewEngine(spec, core.NewLGG())
			e.Topology = c.mk(seed)
			return e
		}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
		t.AddRow(spec.String(), c.mk(0).Name(), c.feasible,
			fmtF(sim.StableShare(rs)), rs[0].Diagnosis.Verdict.String())
	}
	// control: a saturated line whose only edge blinks dead every other
	// period — average capacity ½ < rate ⇒ divergence.
	line := core.NewSpec(graph.Line(2)).SetSource(0, 1).SetSink(1, 1)
	maskOn := []bool{true}
	maskOff := []bool{false}
	churn := &dynamic.Churn{MaskA: maskOn, MaskB: maskOff, Period: 1}
	rs := sim.RunSeeds(func(seed uint64) *core.Engine {
		e := core.NewEngine(line, core.NewLGG())
		e.Topology = churn
		return e
	}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
	t.AddRow(line.String(), churn.Name(), "no (½ capacity)",
		fmtF(sim.StableShare(rs)), rs[0].Diagnosis.Verdict.String())
	return t
}

// runE15 exercises Conjecture 5: under node-exclusive interference with a
// compatible-set scheduler, LGG remains stable once the load respects the
// scheduler's capacity. Greedy-maximal and gradient-weighted ("oracle")
// schedulers are compared.
func runE15(cfg Config) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "interference-constrained LGG",
		Claim:   "with a compatible E_t each step, LGG stays stable at scheduler-feasible load",
		Columns: []string{"network", "scheduler", "load(×in)", "stable-share", "mean-backlog"},
	}
	spec := gridSpec(3, 4, 2, 1, 3)
	if !cfg.Quick {
		spec = gridSpec(4, 6, 3, 1, 3)
	}
	schedulers := []struct {
		name string
		mk   func() core.Interference
	}{
		{"none", func() core.Interference { return nil }},
		{"greedy", func() core.Interference { return interference.NewGreedy(interference.NodeExclusive) }},
		{"oracle", func() core.Interference { return interference.NewOracle(interference.NodeExclusive) }},
	}
	loads := []struct {
		name     string
		num, den int64
	}{{"1/3", 1, 3}, {"2/3", 2, 3}}
	for _, sch := range schedulers {
		for _, ld := range loads {
			rs := sim.RunSeeds(func(seed uint64) *core.Engine {
				e := core.NewEngine(spec, core.NewLGG())
				e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: ld.num, Den: ld.den}
				e.Interference = sch.mk()
				return e
			}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
			t.AddRow(spec.String(), sch.name, ld.name,
				fmtF(sim.StableShare(rs)), fmtF(stats.Mean(sim.MeanBacklogs(rs))))
		}
	}
	return t
}
