package experiments

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sweep"
)

// streamFaults namespaces the per-run fault-injection randomness (burst
// chains, random lies) off the run seed.
const streamFaults = 0xFA017001

// faultVariant is one fault regime of the faults grid: a name plus the
// schedule builder (the schedule may depend on the workload's graph —
// crash targets a relay, partition cuts the source off).
type faultVariant struct {
	name  string
	sched func(w workload, cfg Config) faults.Schedule
}

// relayNode returns the first node that is neither source nor sink — the
// crash target that hurts without silencing arrivals entirely.
func relayNode(s *core.Spec) graph.NodeID {
	for v := range s.In {
		if s.In[v] == 0 && s.Out[v] == 0 {
			return graph.NodeID(v)
		}
	}
	return 0
}

// sourceCut returns the edges incident to the first source — downing them
// partitions the source side from the rest, the min-cut split shape of
// Theorem 2.
func sourceCut(s *core.Spec) []graph.EdgeID {
	for v := range s.In {
		if s.In[v] > 0 {
			var cut []graph.EdgeID
			for _, in := range s.G.Incident(graph.NodeID(v)) {
				cut = append(cut, in.Edge)
			}
			return cut
		}
	}
	return nil
}

// faultVariants enumerates the fault regimes. Every window sits inside
// the first half of the horizon so the recovery observer always sees a
// post-fault tail long enough for a verdict.
func faultVariants(cfg Config) []faultVariant {
	h := cfg.horizon()
	onset, clear := h/5, 2*h/5
	return []faultVariant{
		{"none", func(workload, Config) faults.Schedule { return faults.Schedule{} }},
		{"burst-loss", func(workload, Config) faults.Schedule {
			return faults.Schedule{Events: []faults.Event{{
				Kind: faults.Burst, From: onset, To: clear,
				PGood: 0.05, PBad: 0.7, GtoB: 0.1, BtoG: 0.3,
			}}}
		}},
		{"loss-ramp", func(workload, Config) faults.Schedule {
			return faults.Schedule{Events: []faults.Event{{
				Kind: faults.Ramp, From: onset, To: clear, P0: 0, P1: 0.6,
			}}}
		}},
		{"link-churn", func(w workload, cfg Config) faults.Schedule {
			// The churn schedule is part of the cell definition: generated
			// once from the root seed, identical for every replica.
			s, err := faults.Generate(faults.GenConfig{
				MTBF: float64(h) / 4, MTTR: float64(h) / 20, Horizon: clear,
			}, w.spec.G, rng.New(cfg.Seed).Split(streamFaults))
			if err != nil {
				panic(err)
			}
			return s
		}},
		{"crash-drop", func(w workload, _ Config) faults.Schedule {
			return faults.Schedule{Events: []faults.Event{{
				Kind: faults.Crash, From: onset, To: clear,
				Nodes: []graph.NodeID{relayNode(w.spec)}, Drop: true,
			}}}
		}},
		{"partition-heal", func(w workload, _ Config) faults.Schedule {
			return faults.Schedule{Events: []faults.Event{{
				Kind: faults.Partition, From: onset, To: clear,
				Edges: sourceCut(w.spec),
			}}}
		}},
	}
}

// FaultsSpace crosses the unsaturated suite with the fault regimes as a
// typed-axis space: LGG is expected to recover after every transient
// fault (Conjecture 4's dynamic-topology regime, probed empirically).
// Each faulty run carries a RecoveryObserver, so the sweep results
// surface recovery verdicts, time-to-drain and fault-era peaks. The
// schedules stay part of the cell definition — built once per
// (network, regime), identical for every replica.
func FaultsSpace(cfg Config) *sweep.Space {
	ws := unsaturatedSuite(cfg)
	fvs := faultVariants(cfg)
	names := make([]string, len(ws))
	specs := make([]*core.Spec, len(ws))
	scheds := make([][]faults.Schedule, len(ws))
	for i, w := range ws {
		names[i] = w.name
		specs[i] = w.spec
		scheds[i] = make([]faults.Schedule, len(fvs))
		for j, fv := range fvs {
			scheds[i][j] = fv.sched(w, cfg)
		}
	}
	variants := make([]string, len(fvs))
	for j, fv := range fvs {
		variants[j] = fv.name
	}
	return &sweep.Space{
		Name:     "faults",
		BaseSeed: cfg.Seed,
		Replicas: cfg.seeds(),
		Horizon:  cfg.horizon(),
		Axes: []sweep.Axis{
			{Name: "network", Labels: names},
			{Name: "router", Labels: []string{"lgg"}},
			{Name: "variant", Labels: variants},
		},
		SeedFn: func(_ sweep.Point, rep int) uint64 { return cfg.Seed + uint64(rep) },
		Build: func(p sweep.Probe) *core.Engine {
			ni, vi := int(p.Point[0].Value), int(p.Point[2].Value)
			sched := scheds[ni][vi]
			e := core.NewEngine(specs[ni], core.NewLGG())
			if !sched.Empty() {
				if _, err := faults.Inject(e, sched, rng.New(p.Seed).Split(streamFaults)); err != nil {
					panic(err)
				}
				e.AddObserver(faults.NewRecoveryObserver(sched))
			}
			return e
		},
	}
}

// FaultsGrid returns the exhaustive enumeration of the faults space.
func FaultsGrid(cfg Config) []sweep.Job {
	return mustJobs(FaultsSpace(cfg))
}
