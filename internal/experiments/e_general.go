package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cutsplit"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "E8", Title: "R-generalized networks: lying and retention",
		Paper: "Section IV, Defs 5–8, Properties 3–6", Run: runE8})
	register(Experiment{ID: "E9", Title: "Saturated networks with exact arrivals (proved sub-case)",
		Paper: "Section V-B", Run: runE9})
	register(Experiment{ID: "E10", Title: "Induction decomposition at an interior minimum cut",
		Paper: "Section V-C, Remark 2", Run: runE10})
}

// e8cell is one (network, R/declare/extract variant) cell of the E8 grid,
// with its retention-patched spec and Property 3 bound precomputed.
type e8cell struct {
	w       workload
	r       int64
	declare core.DeclarePolicy
	extract core.ExtractPolicy
	spec    *core.Spec
	bound   float64
}

// generalizedCells enumerates the E8 grid: unsaturated workloads crossed
// with retention constants, declaration (lying) and extraction policies.
func generalizedCells(cfg Config) []e8cell {
	type variant struct {
		r       int64
		declare core.DeclarePolicy
		extract core.ExtractPolicy
	}
	variants := []variant{
		{0, core.DeclareTruth{}, core.ExtractMax{}},
		{4, core.DeclareTruth{}, core.ExtractMax{}},
		{4, core.DeclareZero{}, core.ExtractMax{}},
		{4, core.DeclareR{}, core.ExtractMin{}},
		{16, core.DeclareZero{}, core.ExtractMin{}},
	}
	if !cfg.Quick {
		variants = append(variants,
			variant{16, core.DeclareR{}, core.ExtractMax{}},
			variant{64, core.DeclareZero{}, core.ExtractMin{}},
		)
	}
	var cells []e8cell
	for _, w := range unsaturatedSuite(cfg) {
		for _, v := range variants {
			// retention applies to all terminals (the paper's R is global)
			spec := core.NewSpec(w.spec.G)
			copy(spec.In, w.spec.In)
			copy(spec.Out, w.spec.Out)
			for n := range spec.R {
				if spec.In[n] > 0 || spec.Out[n] > 0 {
					spec.R[n] = v.r
				}
			}
			cells = append(cells, e8cell{w: w, r: v.r, declare: v.declare,
				extract: v.extract, spec: spec, bound: core.GeneralizedGrowthBound(spec)})
		}
	}
	return cells
}

// GeneralizedSpace is the E8 grid as a typed-axis space: network ×
// curated policy variant. The variant axis is categorical — the paper's
// (R, declare, extract) triples are hand-picked, not a cartesian product
// — so its labels are the cells' historical "R=…/…/…" names and its
// ordinals index the precomputed retention-patched specs.
func GeneralizedSpace(cfg Config) *sweep.Space {
	cells := generalizedCells(cfg)
	networks := unsaturatedSuite(cfg)
	names := make([]string, len(networks))
	for i, w := range networks {
		names[i] = w.name
	}
	perNetwork := len(cells) / len(networks)
	variants := make([]string, perNetwork)
	for i, c := range cells[:perNetwork] {
		variants[i] = fmt.Sprintf("R=%d/%s/%s", c.r, c.declare.Name(), c.extract.Name())
	}
	return &sweep.Space{
		Name:     "generalized",
		BaseSeed: cfg.Seed,
		Replicas: cfg.seeds(),
		Horizon:  cfg.horizon(),
		Axes: []sweep.Axis{
			{Name: "network", Labels: names},
			{Name: "variant", Labels: variants},
		},
		Options: sim.Options{Horizon: cfg.horizon(), RecordDeltas: true},
		SeedFn:  func(_ sweep.Point, rep int) uint64 { return cfg.Seed + uint64(rep) },
		Build: func(p sweep.Probe) *core.Engine {
			c := cells[int(p.Point[0].Value)*perNetwork+int(p.Point[1].Value)]
			e := core.NewEngine(c.spec, core.NewLGG())
			e.Declare = c.declare
			e.Extract = c.extract
			return e
		},
	}
}

// GeneralizedGrid returns the E8 R-generalized job list (lying and
// retention policies across the unsaturated suite) for sweep-based
// execution.
func GeneralizedGrid(cfg Config) []sweep.Job {
	return mustJobs(GeneralizedSpace(cfg))
}

// runE8 runs unsaturated workloads as R-generalized networks across
// retention constants, declaration (lying) policies and extraction
// policies; Theorem 2 (under Conjecture 1) predicts stability for all of
// them, and Property 3's growth bound must hold throughout.
func runE8(cfg Config) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "R-generalized stability across lying/extraction policies",
		Claim:   "LGG is stable for every R, declaration and extraction policy; ΔP ≤ Property-3 bound",
		Columns: []string{"network", "R", "declare", "extract", "stable-share", "peak-P", "growth≤P3-bound"},
	}
	cells := generalizedCells(cfg)
	rs, _ := (&sweep.Runner{}).Run(GeneralizedGrid(cfg))
	for i, cell := range fullCells(rs, cfg.seeds()) {
		c := cells[i]
		okBound := true
		for _, r := range cell {
			if r.MaxDelta > c.bound {
				okBound = false
			}
		}
		t.AddRow(c.w.name, fmtI(c.r), c.declare.Name(), c.extract.Name(),
			fmtF(sweep.StableShare(cell)), fmtF(float64(sweep.PeakPotential(cell))),
			fmt.Sprintf("%v", okBound))
	}
	return t
}

// runE9 exercises the sub-case the paper actually proves in Section V-B:
// saturated networks, exact arrivals (in_t(v) = in(v)), no packet losses.
// The backlog must stay bounded.
func runE9(cfg Config) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "saturated networks, exact arrivals, no loss",
		Claim:   "the number of stored packets remains bounded (Section V-B, proved)",
		Columns: []string{"network", "class", "rate=f(Φ)", "stable-share", "peak-backlog", "final-backlog"},
	}
	ws := saturatedSuite(cfg)
	jobs := make([]sweep.Job, 0, len(ws)*cfg.seeds())
	for _, w := range ws {
		w := w
		for rep := 0; rep < cfg.seeds(); rep++ {
			jobs = append(jobs, sweep.Job{
				Desc: sweep.Desc{Index: len(jobs), Grid: "E9", Network: w.name,
					Replica: rep, Seed: cfg.Seed + uint64(rep), Horizon: cfg.horizon()},
				Build: func(uint64) *core.Engine { return core.NewEngine(w.spec, core.NewLGG()) },
			})
		}
	}
	rs, _ := (&sweep.Runner{}).Run(jobs)
	for i, cell := range fullCells(rs, cfg.seeds()) {
		w := ws[i]
		a := w.spec.Analyze(flow.NewPushRelabel())
		var peak, final int64
		for _, r := range cell {
			if r.PeakQueued > peak {
				peak = r.PeakQueued
			}
			if r.FinalQueued > final {
				final = r.FinalQueued
			}
		}
		t.AddRow(w.name, a.Feasibility.String(), fmtI(a.MaxFlow.Value),
			fmtF(sweep.StableShare(cell)), fmtI(peak), fmtI(final))
	}
	return t
}

// runE10 verifies the Section V-C machinery: on networks with an interior
// minimum cut, the decomposition yields feasible parts (with D″ ≠ ∅,
// Remark 2), both of which remain stable under LGG; and it reports the
// induction-case census over random feasible networks.
func runE10(cfg Config) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "cut-split decomposition of saturated networks",
		Claim:   "both parts of the split are feasible and stable; D″ is never empty",
		Columns: []string{"network", "case", "|A|", "|B|", "cut-edges", "parts-feasible", "A'-verdict", "B'-verdict"},
	}
	ws := []workload{
		{"barbell(3,2)", barbellSpec(3, 2)},
		{"barbell(4,3)", barbellSpec(4, 3)},
	}
	if !cfg.Quick {
		ws = append(ws, workload{"2-bridge", twoBridgeSpec()})
	}
	for _, w := range ws {
		a := w.spec.Analyze(flow.NewPushRelabel())
		cse := cutsplit.InductionCase(a)
		if cse != 3 {
			t.AddRow(w.name, fmtI(int64(cse)), "-", "-", "-", "base case", "-", "-")
			continue
		}
		s, err := cutsplit.FromAnalysis(w.spec, a, 32)
		if err != nil {
			t.AddRow(w.name, fmtI(int64(cse)), "-", "-", "-", err.Error(), "-", "-")
			continue
		}
		_, _, err = s.Check(flow.NewPushRelabel())
		feas := "yes"
		if err != nil {
			feas = err.Error()
		}
		verdict := func(spec *core.Spec) string {
			e := core.NewEngine(spec, core.NewLGG())
			r := sim.Run(e, sim.Options{Horizon: cfg.horizon()})
			return r.Diagnosis.Verdict.String()
		}
		t.AddRow(w.name, fmtI(int64(cse)), fmtI(int64(s.A.Spec.N())), fmtI(int64(s.B.Spec.N())),
			fmtI(int64(len(s.CutEdges))), feas, verdict(s.A.Spec), verdict(s.B.Spec))
	}
	// census of induction cases over random feasible networks, classified
	// both by the two extreme cuts and by exhaustive min-cut enumeration
	// (the latter catches interior cuts hiding between trivial extremes)
	var extreme, exact [4]int
	instances := 30
	if cfg.Quick {
		instances = 8
	}
	feasibleSeen := 0
	for i := 0; i < instances; i++ {
		r := rng.New(cfg.Seed).Split(uint64(9000 + i))
		spec := randomSpec(10, 14, 1+r.Int64N(2), 1+r.Int64N(3), r)
		a := spec.Analyze(flow.NewPushRelabel())
		if a.Feasibility == flow.Infeasible {
			continue
		}
		feasibleSeen++
		extreme[cutsplit.InductionCase(a)]++
		k, _ := cutsplit.InductionCaseExact(a, 256)
		exact[k]++
	}
	t.Note("induction-case census over %d random feasible networks (extreme cuts): case1=%d case2=%d case3=%d",
		feasibleSeen, extreme[1], extreme[2], extreme[3])
	t.Note("same census with exhaustive min-cut enumeration:               case1=%d case2=%d case3=%d",
		exact[1], exact[2], exact[3])
	return t
}

// twoBridgeSpec: two cliques joined by two parallel bridge paths — an
// interior min cut of capacity 2.
func twoBridgeSpec() *core.Spec {
	g := graph.New(0)
	// left clique 0..3
	g.AddNodes(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	// right clique 4..7
	for i := 4; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	// two bridges
	g.AddEdge(2, 4)
	g.AddEdge(3, 5)
	return core.NewSpec(g).SetSource(0, 2).SetSink(7, 3)
}
