package experiments

import (
	"time"

	"repro/internal/arrivals"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "E22", Title: "Asynchronous (duty-cycled) LGG",
		Paper: "open relaxation alongside Conjecture 4", Run: runE22})
	register(Experiment{ID: "P3", Title: "Distributed message-passing engine overhead",
		Paper: "the 'distributed and localized' claim, executed literally", Run: runP3})
}

// runE22 duty-cycles the nodes: each is awake with probability p per
// step. Sleeping halves capacity roughly proportionally, so load ρ·f*
// should remain stable while ρ stays under the awake fraction and break
// above it — a sharp empirical threshold in p.
func runE22(cfg Config) *Table {
	t := &Table{
		ID:      "E22",
		Title:   "asynchronous node participation",
		Claim:   "stability survives desynchronization while load < awake capacity",
		Columns: []string{"network", "awake-p", "load(×f*)", "stable-share", "mean-backlog"},
	}
	spec := thetaSpec(4, 2, 4, 4) // rate 4 = f*, scaled below
	type cellJob struct {
		p        float64
		name     string
		num, den int64
	}
	var jobs []cellJob
	for _, p := range []float64{1.0, 0.8, 0.5, 0.3} {
		for _, ld := range []struct {
			name     string
			num, den int64
		}{{"0.25", 1, 4}, {"0.50", 1, 2}, {"0.75", 3, 4}} {
			jobs = append(jobs, cellJob{p, ld.name, ld.num, ld.den})
		}
	}
	rows := make([][]string, len(jobs))
	sim.ForEach(len(jobs), func(i int) {
		j := jobs[i]
		rs := sim.RunSeeds(func(seed uint64) *core.Engine {
			router := &baseline.Sleepy{Inner: core.NewLGG(), P: j.p, Seed: seed}
			e := core.NewEngine(spec, router)
			e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: j.num, Den: j.den}
			return e
		}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
		rows[i] = []string{spec.String(), fmtF(j.p), j.name,
			fmtF(sim.StableShare(rs)), fmtF(stats.Mean(sim.MeanBacklogs(rs)))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Note("the stability frontier tracks load ≲ awake-p: sleeping nodes shrink every cut proportionally")
	return t
}

// runP3 measures the cost of running LGG as real message-passing
// goroutines (internal/distsim) against the central simulation, per
// synchronous round, and confirms the two engines agree on the final
// state.
func runP3(cfg Config) *Table {
	t := &Table{
		ID:      "P3",
		Title:   "distributed engine vs central simulation",
		Claim:   "identical dynamics; barrier-synchronized goroutines cost ~100× per round",
		Columns: []string{"network", "engine", "rounds", "wall", "rounds/s", "final-backlog"},
	}
	ws := []workload{
		{"theta(4,3)", thetaSpec(4, 3, 2, 4)},
		{"grid(4x6)", gridSpec(4, 6, 2, 1, 3)},
	}
	rounds := cfg.horizon()
	if rounds > 2000 {
		rounds = 2000
	}
	for _, w := range ws {
		// central
		ce := core.NewEngine(w.spec, core.NewLGG())
		start := time.Now()
		tot := ce.Run(rounds)
		cwall := time.Since(start)
		t.AddRow(w.name, "central", fmtI(rounds), cwall.Round(time.Microsecond).String(),
			fmtF(float64(rounds)/cwall.Seconds()), fmtI(tot.FinalQueued))
		// distributed
		de := distsim.New(w.spec, nil)
		start = time.Now()
		q := de.Run(rounds)
		dwall := time.Since(start)
		de.Close()
		var stored int64
		for _, x := range q {
			stored += x
		}
		t.AddRow(w.name, "distributed", fmtI(rounds), dwall.Round(time.Microsecond).String(),
			fmtF(float64(rounds)/dwall.Seconds()), fmtI(stored))
	}
	return t
}
