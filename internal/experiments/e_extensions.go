package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/loss"
	"repro/internal/lyapunov"
	"repro/internal/packetsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "E17", Title: "Exact Lyapunov decomposition audit (Eq. 1–3)",
		Paper: "Equations 1–3, Section III", Run: runE17})
	register(Experiment{ID: "E18", Title: "Packet-level latency and delivery (count-model extension)",
		Paper: "model extension (Definition 2 is about backlog, not delivery)", Run: runE18})
	register(Experiment{ID: "E19", Title: "Adversarial window-budget arrivals",
		Paper: "refs [4],[5] context; Conjecture 2 condition", Run: runE19})
}

// runE17 audits the potential-function identities the proofs manipulate:
// P_{t+1} − P_t = Σ(Δq)² + 2δ_t and the component decomposition of δ_t
// (Eq. 3 with the loss correction), verified exactly at every step, under
// every combination of losses, lying and router.
func runE17(cfg Config) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Lyapunov identity audit",
		Claim:   "Eq. 1–3 hold exactly (integer arithmetic) at every step of every run",
		Columns: []string{"network", "variant", "steps-verified", "max-δt", "max-ΔP", "identities"},
	}
	type variant struct {
		name string
		mk   func(spec *core.Spec, seed uint64) *core.Engine
	}
	variants := []variant{
		{"lgg lossless", func(s *core.Spec, _ uint64) *core.Engine {
			return core.NewEngine(s, core.NewLGG())
		}},
		{"lgg loss p=0.25", func(s *core.Spec, seed uint64) *core.Engine {
			e := core.NewEngine(s, core.NewLGG())
			e.Loss = &loss.Bernoulli{P: 0.25, R: rng.New(seed).Split(51)}
			return e
		}},
		{"lgg lying R=8", func(s *core.Spec, _ uint64) *core.Engine {
			s2 := core.NewSpec(s.G)
			copy(s2.In, s.In)
			copy(s2.Out, s.Out)
			for v := range s2.R {
				if s2.In[v] > 0 || s2.Out[v] > 0 {
					s2.R[v] = 8
				}
			}
			e := core.NewEngine(s2, core.NewLGG())
			e.Declare = core.DeclareZero{}
			return e
		}},
		{"full-gradient", func(s *core.Spec, _ uint64) *core.Engine {
			return core.NewEngine(s, baseline.NewFullGradient())
		}},
		{"random-forward", func(s *core.Spec, seed uint64) *core.Engine {
			return core.NewEngine(s, baseline.NewRandomForward(rng.New(seed).Split(52)))
		}},
	}
	ws := unsaturatedSuite(cfg)
	type job struct {
		w workload
		v variant
	}
	var jobs []job
	for _, w := range ws {
		for _, v := range variants {
			jobs = append(jobs, job{w, v})
		}
	}
	rows := make([][]string, len(jobs))
	sim.ForEach(len(jobs), func(i int) {
		j := jobs[i]
		e := j.v.mk(j.w.spec, cfg.Seed)
		maxDelta, maxDeltaP, verified, err := lyapunov.Audit(e, cfg.horizon())
		status := "exact"
		if err != nil {
			status = err.Error()
		}
		rows[i] = []string{j.w.name, j.v.name, fmtI(verified),
			fmtI(maxDelta), fmtI(maxDeltaP), status}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// runE18 measures what the count model cannot: end-to-end latency and
// delivery ratio, per router, on the packet-identity twin engine. The
// shape: the clairvoyant flow router delivers everything with pipeline
// latency ≈ path length; LGG trades some latency for locality; random
// forwarding has heavy-tailed latency.
func runE18(cfg Config) *Table {
	t := &Table{
		ID:      "E18",
		Title:   "packet-level latency and delivery",
		Claim:   "stability (bounded backlog) does not by itself bound latency — routers differ sharply",
		Columns: []string{"network", "router", "delivered", "delivery-%", "mean-lat", "p95-lat", "mean-hops", "L/λW"},
	}
	spec := thetaSpec(3, 3, 2, 3)
	fr, _ := baseline.NewFlowRouter(spec, flow.NewPushRelabel())
	routers := []struct {
		name string
		mk   func(seed uint64) core.Router
	}{
		{"lgg", func(uint64) core.Router { return core.NewLGG() }},
		{"lgg/random-ties", func(seed uint64) core.Router {
			return core.NewLGGRandomTies(rng.New(seed).Split(61))
		}},
		{"flow-paths", func(uint64) core.Router { return fr }},
		{"shortest-path", func(uint64) core.Router { return baseline.NewShortestPath(spec) }},
		{"random-forward", func(seed uint64) core.Router {
			return baseline.NewRandomForward(rng.New(seed).Split(62))
		}},
	}
	rows := make([][]string, len(routers))
	sim.ForEach(len(routers), func(i int) {
		pe := packetsim.New(spec, routers[i].mk(cfg.Seed))
		pe.Run(cfg.horizon())
		lats := stats.Ints(pe.Latencies())
		p95 := 0.0
		if len(lats) > 0 {
			p95 = stats.Quantile(lats, 0.95)
		}
		l, lw := pe.LittleLawGap()
		ratio := 0.0
		if lw > 0 {
			ratio = l / lw
		}
		rows[i] = []string{spec.String(), routers[i].name,
			fmtI(pe.Delivered), fmtF(100 * float64(pe.Delivered) / float64(pe.Injected)),
			fmtF(pe.MeanLatency()), fmtF(p95), fmtF(pe.MeanHops()), fmtF(ratio)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Note("delivery below 100%% is packets still queued (or walking flat gradients) at the horizon, not losses")
	return t
}

// runE19 subjects LGG to window-budget adversaries: any injection pattern
// with at most B packets per W-step window is admissible; with B ≤ W·f*
// the Conjecture 2 condition holds and LGG should remain stable for every
// within-window pattern; with B > W·f* divergence is forced.
func runE19(cfg Config) *Table {
	t := &Table{
		ID:      "E19",
		Title:   "window-budget adversaries",
		Claim:   "budget ≤ W·f* ⇒ stable for every within-window pattern; budget > W·f* ⇒ diverging",
		Columns: []string{"network", "adversary", "budget/W·f*", "condition-holds", "stable-share", "verdict"},
	}
	spec := thetaSpec(4, 2, 2, 4) // f* = 4
	a := spec.Analyze(flow.NewPushRelabel())
	w := int64(8)
	cases := []struct {
		budget int64
		mode   adversary.Mode
	}{
		{3 * w * a.FStar / 4, adversary.FrontLoad},
		{3 * w * a.FStar / 4, adversary.BackLoad},
		{3 * w * a.FStar / 4, adversary.RandomSplit},
		{w * a.FStar, adversary.FrontLoad},     // exactly at capacity
		{w*a.FStar + w, adversary.RandomSplit}, // over budget
	}
	for _, c := range cases {
		sched := adversary.ScheduleOf(&adversary.WindowBudget{W: w, Budget: c.budget, Mode: c.mode,
			R: rng.New(cfg.Seed)}, spec, 40*w)
		_, repaid := adversary.Compensated(append(sched, make([]int64, w)...), a.FStar)
		rs := sim.RunSeeds(func(seed uint64) *core.Engine {
			e := core.NewEngine(spec, core.NewLGG())
			e.Arrivals = &adversary.WindowBudget{W: w, Budget: c.budget, Mode: c.mode,
				R: rng.New(seed).Split(71)}
			return e
		}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
		t.AddRow(spec.String(),
			fmt.Sprintf("W=%d B=%d %s", w, c.budget, c.mode),
			fmtF(float64(c.budget)/float64(w*a.FStar)),
			fmt.Sprintf("%v", repaid),
			fmtF(sim.StableShare(rs)), rs[0].Diagnosis.Verdict.String())
	}
	return t
}
