package experiments

import (
	"fmt"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/loss"
	"repro/internal/rng"
	"repro/internal/sweep"
)

// ApplyShards sets the sharded execution knobs on every job. Because the
// sharded step path is byte-identical to the serial one, applying shards
// never changes a sweep's JSONL output — only its execution strategy.
// The shard-determinism CI job runs the same grid at shard counts 1, 2
// and 8 and cmps the outputs to hold that promise.
func ApplyShards(jobs []sweep.Job, shards, workers int) error {
	if shards < 0 || workers < 0 {
		return fmt.Errorf("experiments: negative shard configuration (%d shards, %d workers)", shards, workers)
	}
	for i := range jobs {
		jobs[i].Options.Shards = shards
		jobs[i].Options.ShardWorkers = workers
	}
	return nil
}

// ShardSpace is the workload behind the shard-determinism CI gate: LGG
// on localized topologies crossed with the stochastic machinery whose
// call order the sharded engine must preserve exactly — Bernoulli losses
// (one RNG draw per attempted transmission, in global send order),
// thinned and bursty arrivals, and a lying retention band that forces
// collisions. If the sharded path reorders anything, these runs change
// byte-for-byte.
func ShardSpace(cfg Config) *sweep.Space {
	type cell struct {
		name  string
		spec  *core.Spec
		build func(spec *core.Spec, seed uint64) *core.Engine
	}
	lgg := func(spec *core.Spec, seed uint64) *core.Engine {
		e := core.NewEngine(spec, core.NewLGG())
		e.Arrivals = &arrivals.Thinned{P: 0.85, R: rng.New(seed).Split(0x5A1)}
		e.Loss = &loss.Bernoulli{P: 0.1, R: rng.New(seed).Split(0x5A2)}
		return e
	}
	lying := func(spec *core.Spec, seed uint64) *core.Engine {
		e := lgg(spec, seed)
		e.Declare = core.DeclareZero{}
		return e
	}
	bursty := func(spec *core.Spec, seed uint64) *core.Engine {
		e := core.NewEngine(spec, core.NewLGG())
		e.Arrivals = &arrivals.Bursty{Period: 16, BurstLen: 4, BurstFactor: 3, QuietFactor: 0}
		e.Loss = &loss.Bernoulli{P: 0.05, R: rng.New(seed).Split(0x5A3)}
		return e
	}

	lineLen, gridC := 256, 12
	if cfg.Quick {
		lineLen, gridC = 64, 6
	}
	lineSpec := core.NewSpec(graph.Line(lineLen)).SetSource(0, 1).SetSink(graph.NodeID(lineLen-1), 2)
	gs := gridSpec(4, gridC, 2, 1, 3)
	retSpec := gridSpec(4, gridC, 2, 1, 3)
	for c := 1; c < gridC-1; c++ {
		retSpec.SetRetention(graph.NodeID(1*gridC+c), 2)
	}
	cells := []cell{
		{"line/thinned+loss", lineSpec, lgg},
		{"grid/thinned+loss", gs, lgg},
		{"grid/lying-retention", retSpec, lying},
		{"grid/bursty", gs, bursty},
	}

	names := make([]string, len(cells))
	for i, c := range cells {
		names[i] = c.name
	}
	return &sweep.Space{
		Name:     "shard",
		BaseSeed: cfg.Seed,
		Replicas: cfg.seeds(),
		Horizon:  cfg.horizon(),
		Axes: []sweep.Axis{
			{Name: "network", Labels: names},
			{Name: "router", Labels: []string{"lgg"}},
		},
		SeedFn: func(_ sweep.Point, rep int) uint64 { return cfg.Seed + uint64(rep) },
		Build: func(p sweep.Probe) *core.Engine {
			c := cells[int(p.Point[0].Value)]
			return c.build(c.spec, p.Seed)
		},
	}
}

// ShardGrid returns the exhaustive enumeration of the shard space.
func ShardGrid(cfg Config) []sweep.Job {
	return mustJobs(ShardSpace(cfg))
}
