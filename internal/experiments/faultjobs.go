package experiments

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/sweep"
)

// ApplyFaults compiles the schedule argument (text, JSON, or @file — see
// faults.Load) once and wraps every job's engine factory to inject it,
// with a recovery observer reporting the post-fault verdict into the
// sweep results. Per-run fault randomness derives from the run's own
// seed, preserving the determinism contract. Shared by cmd/lggsweep and
// the lggd daemon so local and remote sweeps build identical engines.
func ApplyFaults(jobs []sweep.Job, arg string) error {
	sched, err := faults.Load(arg)
	if err != nil {
		return err
	}
	for i := range jobs {
		inner := jobs[i].Build
		jobs[i].Build = func(seed uint64) *core.Engine {
			e := inner(seed)
			if _, err := faults.Inject(e, sched, rng.New(seed).Split(0xFA)); err != nil {
				panic(err)
			}
			e.AddObserver(faults.NewRecoveryObserver(sched))
			return e
		}
	}
	return nil
}
