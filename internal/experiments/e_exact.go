package experiments

import (
	"fmt"

	"repro/internal/arrivals"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "E24", Title: "Exact Markov-chain validation of the simulator",
		Paper: "Definition 2 certified by state-space exhaustion", Run: runE24})
}

// runE24 enumerates the exact reachable queue space of small instances
// under LGG, certifies boundedness by exhaustion, computes the exact
// stationary backlog/potential, and cross-validates the simulator's
// long-run averages against the exact values.
func runE24(cfg Config) *Table {
	t := &Table{
		ID:      "E24",
		Title:   "exact chain vs simulation",
		Claim:   "the simulator's long-run averages match the exact stationary values",
		Columns: []string{"network", "arrivals", "states", "max-N(exact)", "E[N] exact", "E[N] simulated (±95%)", "exact∈CI"},
	}
	type inst struct {
		name string
		spec *core.Spec
		dist func(*core.Spec) chain.IIDArrivals
		sim  func(seed uint64) core.ArrivalProcess
	}
	mk := func(p float64) (func(*core.Spec) chain.IIDArrivals, func(seed uint64) core.ArrivalProcess) {
		return func(s *core.Spec) chain.IIDArrivals { return chain.ThinnedBinomial(s, p) },
			func(seed uint64) core.ArrivalProcess {
				return &arrivals.Thinned{P: p, R: rng.New(seed).Split(91)}
			}
	}
	t60, s60 := mk(0.6)
	t85, s85 := mk(0.85)
	insts := []inst{
		{"theta(2,2) in=2", thetaSpec(2, 2, 2, 2), t60, s60},
		{"theta(2,2) in=2", thetaSpec(2, 2, 2, 2), t85, s85},
		{"line(4) in=1", core.NewSpec(graph.Line(4)).SetSource(0, 1).SetSink(3, 1), t85, s85},
	}
	if !cfg.Quick {
		t50, s50 := mk(0.5)
		insts = append(insts,
			inst{"theta(3,2) in=3", thetaSpec(3, 2, 3, 3), t50, s50},
			inst{"line(5) in=1", core.NewSpec(graph.Line(5)).SetSource(0, 1).SetSink(4, 1), t85, s85},
		)
	}
	for _, in := range insts {
		dist := in.dist(in.spec)
		c, err := chain.Build(in.spec, dist, chain.Options{MaxStates: 500000, CapPerNode: 64})
		if err != nil {
			t.AddRow(in.name, arrName(dist), "-", "-", "-", "-", err.Error())
			continue
		}
		pi, err := c.Stationary(200000, 1e-12)
		if err != nil {
			t.AddRow(in.name, arrName(dist), fmtI(int64(c.NumStates())), "-", "-", "-", err.Error())
			continue
		}
		exactN := c.ExpectedBacklog(pi)
		// simulate the same process
		horizon := cfg.horizon() * 20
		rs := sim.RunSeeds(func(seed uint64) *core.Engine {
			e := core.NewEngine(in.spec, core.NewLGG())
			e.Arrivals = in.sim(seed)
			return e
		}, sim.Seeds(cfg.Seed, min(cfg.seeds(), 4)), sim.Options{Horizon: horizon, Stride: 4})
		// pool the trailing 3/4 of every seed's series; batch-means CI
		// handles the autocorrelation within each run
		var pooled []float64
		for _, r := range rs {
			pooled = append(pooled, r.Series.Queued[len(r.Series.Queued)/4:]...)
		}
		simN, half := stats.BatchMeansCI(pooled, 32, 1.96)
		inCI := exactN >= simN-half && exactN <= simN+half
		t.AddRow(in.name, arrName(dist), fmtI(int64(c.NumStates())),
			fmtI(c.MaxBacklog()), fmt.Sprintf("%.4f", exactN),
			fmt.Sprintf("%.4f ± %.4f", simN, half), fmt.Sprintf("%v", inCI))
	}
	t.Note("enumeration completing under the cap is a proof by exhaustion that the instance is stable (Definition 2)")
	return t
}

func arrName(d chain.IIDArrivals) string {
	return fmt.Sprintf("iid(%d outcomes)", len(d))
}
