package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sweep"
)

// FrontierSpace is the critical-load frontier grid: the unsaturated
// suite crossed with a dense rho axis bracketing f* (0.50×…1.50× in
// steps of 0.05). It exists for the adaptive driver — `lggsweep -grid
// frontier -adaptive -axis rho` bisects each network's rho axis for the
// load where the stable share crosses 1/2, Theorem 1's empirical
// frontier — but enumerates exhaustively too, which is what the
// adaptive-vs-exhaustive acceptance check runs against.
//
// Unlike the migrated grids it uses the default coordinate-keyed seed
// derivation, so a probe at an arbitrary rho draws a well-defined stream
// that agrees with the enumerated point whenever the bisection lands on
// one.
func FrontierSpace(cfg Config) *sweep.Space {
	names, infos := loadInfos(unsaturatedSuite(cfg))
	const steps = 20
	points := make([]float64, steps+1)
	labels := make([]string, steps+1)
	for i := range points {
		// Integer construction keeps the grid points exact binary-adjacent
		// rationals (1.00 is exactly 1.0, not 0.5+10×0.05's rounding).
		points[i] = float64(50+5*i) / 100
		labels[i] = fmt.Sprintf("%.2f", points[i])
	}
	return &sweep.Space{
		Name:     "frontier",
		BaseSeed: cfg.Seed,
		Replicas: cfg.seeds(),
		Horizon:  cfg.horizon(),
		Axes: []sweep.Axis{
			{Name: "network", Labels: names},
			{Name: "rho", Unit: "×f*", Points: points, Labels: labels},
		},
		Build: func(p sweep.Probe) *core.Engine {
			info := infos[int(p.Point[0].Value)]
			rho, _ := p.Point.Value("rho")
			num, den := rhoScale(info, rho)
			return scaledEngine(info.spec, num, den)
		},
	}
}

// FrontierGrid returns the exhaustive enumeration of the frontier space.
func FrontierGrid(cfg Config) []sweep.Job {
	return mustJobs(FrontierSpace(cfg))
}
