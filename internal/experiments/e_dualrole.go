package experiments

import (
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "E27", Title: "Dual-role generalized nodes (Fig. 4)",
		Paper: "Definition 7 / Fig. 4: nodes with in(v) > 0 AND out(v) > 0", Run: runE27})
}

// runE27 exercises the fully generalized network of Fig. 4, where single
// nodes both inject and extract (the paper classifies them by the sign of
// in(v) − out(v)). These configurations arise naturally inside the
// Section V-C induction (border nodes acquire the second role); here they
// are exercised directly: classification, stability under LGG, and the
// Lyapunov identities all must hold.
func runE27(cfg Config) *Table {
	t := &Table{
		ID:      "E27",
		Title:   "networks with dual-role nodes",
		Claim:   "feasible Fig. 4 networks are stable; dual roles break nothing",
		Columns: []string{"network", "dual-role nodes", "class", "stable-share", "peak-backlog", "violations"},
	}
	ws := []workload{
		{"ring alternating", ringAlternating(8)},
		{"ring self-serving", ringSelfServing(6)},
		{"relay chain", relayChain()},
	}
	if !cfg.Quick {
		ws = append(ws, workload{"ring alternating (12)", ringAlternating(12)})
	}
	for _, w := range ws {
		a := w.spec.Analyze(flow.NewPushRelabel())
		dual := 0
		for v := 0; v < w.spec.N(); v++ {
			if w.spec.In[v] > 0 && w.spec.Out[v] > 0 {
				dual++
			}
		}
		rs := sim.RunSeeds(func(seed uint64) *core.Engine {
			return core.NewEngine(w.spec, core.NewLGG())
		}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
		var peak, viol int64
		for _, r := range rs {
			if r.Totals.PeakQueued > peak {
				peak = r.Totals.PeakQueued
			}
			viol += r.Totals.Violations
		}
		t.AddRow(w.name, fmtI(int64(dual)), a.Feasibility.String(),
			fmtF(sim.StableShare(rs)), fmtI(peak), fmtI(viol))
	}
	return t
}

// ringAlternating: a cycle where even nodes inject 1 and odd nodes
// extract 2; node 0 additionally extracts (dual role, in > 0 and out > 0).
func ringAlternating(n int) *core.Spec {
	s := core.NewSpec(graph.Cycle(n))
	for v := 0; v < n; v++ {
		if v%2 == 0 {
			s.SetSource(graph.NodeID(v), 1)
		} else {
			s.SetSink(graph.NodeID(v), 2)
		}
	}
	s.SetSink(0, 1) // node 0 both injects 1 and extracts up to 1
	return s
}

// ringSelfServing: every node injects 1 and extracts 1 — all dual-role;
// the feasible flow is the trivial s*→v→d* at every node.
func ringSelfServing(n int) *core.Spec {
	s := core.NewSpec(graph.Cycle(n))
	for v := 0; v < n; v++ {
		s.SetSource(graph.NodeID(v), 1)
		s.SetSink(graph.NodeID(v), 1)
	}
	return s
}

// relayChain: a 5-node line whose middle node is a generalized relay
// (injects 1 of its own, extracts 1) between an end source and an end
// sink.
func relayChain() *core.Spec {
	s := core.NewSpec(graph.Line(5))
	s.SetSource(0, 1)
	s.SetSource(2, 1)
	s.SetSink(2, 1)
	s.SetSink(4, 2)
	return s
}
