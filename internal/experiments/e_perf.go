package experiments

import (
	"time"

	"repro/internal/arrivals"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "E16", Title: "Router duel: LGG vs baselines",
		Paper: "Section I framing (localized vs optimal)", Run: runE16})
	register(Experiment{ID: "P1", Title: "Simulator scaling (steps/s vs n)",
		Paper: "—", Run: runP1})
	register(Experiment{ID: "P2", Title: "Max-flow solver throughput",
		Paper: "—", Run: runP2})
}

// duelCell is one (network, router, load) cell of the E16 router duel.
type duelCell struct {
	w        workload
	router   string
	load     string
	num, den int64
	mk       func(spec *core.Spec, seed uint64) core.Router
}

// duelWorkloads is the E16 workload suite.
func duelWorkloads(cfg Config) []workload {
	ws := []workload{
		{"theta(3,2)", thetaSpec(3, 2, 2, 3)},
		{"grid(3x4)", gridSpec(3, 4, 2, 1, 3)},
	}
	if !cfg.Quick {
		ws = append(ws, workload{"theta(4,3)", thetaSpec(4, 3, 2, 4)})
	}
	return ws
}

// duelCells enumerates the E16 grid: workloads crossed with every router
// and two sub-critical load points.
func duelCells(cfg Config) []duelCell {
	ws := duelWorkloads(cfg)
	loads := []struct {
		name     string
		num, den int64
	}{{"0.60", 3, 5}, {"0.90", 9, 10}}
	type routerCase struct {
		name string
		mk   func(spec *core.Spec, seed uint64) core.Router
	}
	routers := []routerCase{
		{"lgg", func(*core.Spec, uint64) core.Router { return core.NewLGG() }},
		{"flow-paths", func(spec *core.Spec, _ uint64) core.Router {
			fr, err := baseline.NewFlowRouter(spec, flow.NewPushRelabel())
			if err != nil {
				return baseline.Null{}
			}
			return fr
		}},
		{"full-gradient", func(*core.Spec, uint64) core.Router { return baseline.NewFullGradient() }},
		{"shortest-path", func(spec *core.Spec, _ uint64) core.Router { return baseline.NewShortestPath(spec) }},
		{"random-forward", func(_ *core.Spec, seed uint64) core.Router {
			return baseline.NewRandomForward(rng.New(seed).Split(41))
		}},
	}
	var cells []duelCell
	for _, w := range ws {
		a := w.spec.Analyze(flow.NewPushRelabel())
		rate := w.spec.ArrivalRate()
		for _, rc := range routers {
			for _, ld := range loads {
				cells = append(cells, duelCell{w: w, router: rc.name, load: ld.name,
					num: a.FStar * ld.num, den: rate * ld.den, mk: rc.mk})
			}
		}
	}
	return cells
}

// RouterDuelSpace is the E16 grid as a typed-axis space: network ×
// router × a numeric sub-critical load axis in units of f*. The load
// axis makes the duel adaptively searchable per (network, router) pair —
// each router's own stability frontier, not just the two declared
// points.
func RouterDuelSpace(cfg Config) *sweep.Space {
	cells := duelCells(cfg)
	names, infos := loadInfos(duelWorkloads(cfg))
	const loadsPerRouter = 2
	perNetwork := len(cells) / len(names)
	routers := make([]string, perNetwork/loadsPerRouter)
	mks := make([]func(spec *core.Spec, seed uint64) core.Router, len(routers))
	for i := range routers {
		routers[i] = cells[i*loadsPerRouter].router
		mks[i] = cells[i*loadsPerRouter].mk
	}
	return &sweep.Space{
		Name:     "duel",
		BaseSeed: cfg.Seed,
		Replicas: cfg.seeds(),
		Horizon:  cfg.horizon(),
		Axes: []sweep.Axis{
			{Name: "network", Labels: names},
			{Name: "router", Labels: routers},
			{Name: "load", Unit: "×f*", Points: []float64{0.6, 0.9},
				Labels: []string{"0.60", "0.90"}},
		},
		SeedFn: func(_ sweep.Point, rep int) uint64 { return cfg.Seed + uint64(rep) },
		Build: func(p sweep.Probe) *core.Engine {
			info := infos[int(p.Point[0].Value)]
			mk := mks[int(p.Point[1].Value)]
			x, _ := p.Point.Value("load")
			num, den := rhoScale(info, x)
			e := core.NewEngine(info.spec, mk(info.spec, p.Seed))
			e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: num, Den: den}
			return e
		},
	}
}

// RouterDuelGrid returns the E16 router-duel job list (every router across
// the load grid) for sweep-based execution.
func RouterDuelGrid(cfg Config) []sweep.Job {
	return mustJobs(RouterDuelSpace(cfg))
}

// runE16 pits LGG against all baselines over a load grid. The expected
// shape: LGG matches the clairvoyant flow router's stability region (the
// whole feasible region) while knowing nothing but neighbour queues;
// shortest-path survives moderate load; random forwarding collapses early.
func runE16(cfg Config) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "who wins: stability region and backlog per router",
		Claim:   "LGG is stable wherever the max-flow router is; oblivious baselines are not",
		Columns: []string{"network", "router", "load(×f*)", "stable-share", "mean-backlog"},
	}
	cells := duelCells(cfg)
	rs, _ := (&sweep.Runner{}).Run(RouterDuelGrid(cfg))
	for i, cell := range fullCells(rs, cfg.seeds()) {
		c := cells[i]
		t.AddRow(c.w.name, c.router, c.load,
			fmtF(sweep.StableShare(cell)), fmtF(sweep.MeanBacklog(cell)))
	}
	return t
}

// runP1 measures raw simulator throughput (LGG steps per second) as the
// network grows.
func runP1(cfg Config) *Table {
	t := &Table{
		ID:      "P1",
		Title:   "simulator scaling",
		Claim:   "step cost grows near-linearly in network size",
		Columns: []string{"network", "n", "m", "steps", "wall", "steps/s", "node-steps/s"},
	}
	sizes := [][2]int{{5, 5}, {10, 10}, {20, 20}}
	if cfg.Quick {
		sizes = [][2]int{{5, 5}, {10, 10}}
	}
	for _, sz := range sizes {
		spec := gridSpec(sz[0], sz[1], sz[0], 1, 2)
		e := core.NewEngine(spec, core.NewLGG())
		steps := cfg.horizon()
		start := time.Now()
		for i := int64(0); i < steps; i++ {
			e.Step()
		}
		wall := time.Since(start)
		sps := float64(steps) / wall.Seconds()
		t.AddRow(spec.String(), fmtI(int64(spec.N())), fmtI(int64(spec.G.NumEdges())),
			fmtI(steps), wall.Round(time.Microsecond).String(), fmtF(sps),
			fmtF(sps*float64(spec.N())))
	}
	return t
}

// runP2 measures max-flow solver throughput on G* instances.
func runP2(cfg Config) *Table {
	t := &Table{
		ID:      "P2",
		Title:   "max-flow solver throughput",
		Claim:   "push-relabel and Dinic dominate Edmonds–Karp as instances grow",
		Columns: []string{"instance", "solver", "flow", "solves", "wall", "solves/s"},
	}
	r := rng.New(cfg.Seed).Split(99)
	sizes := []struct {
		name string
		n, m int
	}{{"random(40,120)", 40, 120}, {"random(120,400)", 120, 400}}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	for _, sz := range sizes {
		g := graph.RandomMultigraph(sz.n, sz.m, r.Split(uint64(sz.n)))
		in := make([]int64, sz.n)
		out := make([]int64, sz.n)
		in[0] = 4
		out[sz.n-1] = 4
		ext := flow.Extend(g, in, out, nil)
		reps := 50
		if cfg.Quick {
			reps = 10
		}
		for _, s := range flow.Solvers() {
			start := time.Now()
			var value int64
			for i := 0; i < reps; i++ {
				value = s.MaxFlow(ext.P).Value
			}
			wall := time.Since(start)
			t.AddRow(sz.name, s.Name(), fmtI(value), fmtI(int64(reps)),
				wall.Round(time.Microsecond).String(),
				fmtF(float64(reps)/wall.Seconds()))
		}
	}
	return t
}
