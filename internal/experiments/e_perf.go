package experiments

import (
	"time"

	"repro/internal/arrivals"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{ID: "E16", Title: "Router duel: LGG vs baselines",
		Paper: "Section I framing (localized vs optimal)", Run: runE16})
	register(Experiment{ID: "P1", Title: "Simulator scaling (steps/s vs n)",
		Paper: "—", Run: runP1})
	register(Experiment{ID: "P2", Title: "Max-flow solver throughput",
		Paper: "—", Run: runP2})
}

// duelCell is one (network, router, load) cell of the E16 router duel.
type duelCell struct {
	w        workload
	router   string
	load     string
	num, den int64
	mk       func(spec *core.Spec, seed uint64) core.Router
}

// duelCells enumerates the E16 grid: workloads crossed with every router
// and two sub-critical load points.
func duelCells(cfg Config) []duelCell {
	ws := []workload{
		{"theta(3,2)", thetaSpec(3, 2, 2, 3)},
		{"grid(3x4)", gridSpec(3, 4, 2, 1, 3)},
	}
	if !cfg.Quick {
		ws = append(ws, workload{"theta(4,3)", thetaSpec(4, 3, 2, 4)})
	}
	loads := []struct {
		name     string
		num, den int64
	}{{"0.60", 3, 5}, {"0.90", 9, 10}}
	type routerCase struct {
		name string
		mk   func(spec *core.Spec, seed uint64) core.Router
	}
	routers := []routerCase{
		{"lgg", func(*core.Spec, uint64) core.Router { return core.NewLGG() }},
		{"flow-paths", func(spec *core.Spec, _ uint64) core.Router {
			fr, err := baseline.NewFlowRouter(spec, flow.NewPushRelabel())
			if err != nil {
				return baseline.Null{}
			}
			return fr
		}},
		{"full-gradient", func(*core.Spec, uint64) core.Router { return baseline.NewFullGradient() }},
		{"shortest-path", func(spec *core.Spec, _ uint64) core.Router { return baseline.NewShortestPath(spec) }},
		{"random-forward", func(_ *core.Spec, seed uint64) core.Router {
			return baseline.NewRandomForward(rng.New(seed).Split(41))
		}},
	}
	var cells []duelCell
	for _, w := range ws {
		a := w.spec.Analyze(flow.NewPushRelabel())
		rate := w.spec.ArrivalRate()
		for _, rc := range routers {
			for _, ld := range loads {
				cells = append(cells, duelCell{w: w, router: rc.name, load: ld.name,
					num: a.FStar * ld.num, den: rate * ld.den, mk: rc.mk})
			}
		}
	}
	return cells
}

// duelJobs flattens the E16 grid into sweep jobs, replicas contiguous per
// cell.
func duelJobs(cfg Config, cells []duelCell) []sweep.Job {
	jobs := make([]sweep.Job, 0, len(cells)*cfg.seeds())
	for _, c := range cells {
		c := c
		for rep := 0; rep < cfg.seeds(); rep++ {
			jobs = append(jobs, sweep.Job{
				Desc: sweep.Desc{Index: len(jobs), Grid: "duel", Network: c.w.name,
					Router: c.router, Variant: "load=" + c.load, Replica: rep,
					Seed: cfg.Seed + uint64(rep), Horizon: cfg.horizon()},
				Build: func(seed uint64) *core.Engine {
					e := core.NewEngine(c.w.spec, c.mk(c.w.spec, seed))
					e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: c.num, Den: c.den}
					return e
				},
			})
		}
	}
	return jobs
}

// RouterDuelGrid returns the E16 router-duel job list (every router across
// the load grid) for sweep-based execution.
func RouterDuelGrid(cfg Config) []sweep.Job {
	return duelJobs(cfg, duelCells(cfg))
}

// runE16 pits LGG against all baselines over a load grid. The expected
// shape: LGG matches the clairvoyant flow router's stability region (the
// whole feasible region) while knowing nothing but neighbour queues;
// shortest-path survives moderate load; random forwarding collapses early.
func runE16(cfg Config) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "who wins: stability region and backlog per router",
		Claim:   "LGG is stable wherever the max-flow router is; oblivious baselines are not",
		Columns: []string{"network", "router", "load(×f*)", "stable-share", "mean-backlog"},
	}
	cells := duelCells(cfg)
	rs, _ := (&sweep.Runner{}).Run(duelJobs(cfg, cells))
	for i, cell := range fullCells(rs, cfg.seeds()) {
		c := cells[i]
		t.AddRow(c.w.name, c.router, c.load,
			fmtF(sweep.StableShare(cell)), fmtF(sweep.MeanBacklog(cell)))
	}
	return t
}

// runP1 measures raw simulator throughput (LGG steps per second) as the
// network grows.
func runP1(cfg Config) *Table {
	t := &Table{
		ID:      "P1",
		Title:   "simulator scaling",
		Claim:   "step cost grows near-linearly in network size",
		Columns: []string{"network", "n", "m", "steps", "wall", "steps/s", "node-steps/s"},
	}
	sizes := [][2]int{{5, 5}, {10, 10}, {20, 20}}
	if cfg.Quick {
		sizes = [][2]int{{5, 5}, {10, 10}}
	}
	for _, sz := range sizes {
		spec := gridSpec(sz[0], sz[1], sz[0], 1, 2)
		e := core.NewEngine(spec, core.NewLGG())
		steps := cfg.horizon()
		start := time.Now()
		for i := int64(0); i < steps; i++ {
			e.Step()
		}
		wall := time.Since(start)
		sps := float64(steps) / wall.Seconds()
		t.AddRow(spec.String(), fmtI(int64(spec.N())), fmtI(int64(spec.G.NumEdges())),
			fmtI(steps), wall.Round(time.Microsecond).String(), fmtF(sps),
			fmtF(sps*float64(spec.N())))
	}
	return t
}

// runP2 measures max-flow solver throughput on G* instances.
func runP2(cfg Config) *Table {
	t := &Table{
		ID:      "P2",
		Title:   "max-flow solver throughput",
		Claim:   "push-relabel and Dinic dominate Edmonds–Karp as instances grow",
		Columns: []string{"instance", "solver", "flow", "solves", "wall", "solves/s"},
	}
	r := rng.New(cfg.Seed).Split(99)
	sizes := []struct {
		name string
		n, m int
	}{{"random(40,120)", 40, 120}, {"random(120,400)", 120, 400}}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	for _, sz := range sizes {
		g := graph.RandomMultigraph(sz.n, sz.m, r.Split(uint64(sz.n)))
		in := make([]int64, sz.n)
		out := make([]int64, sz.n)
		in[0] = 4
		out[sz.n-1] = 4
		ext := flow.Extend(g, in, out, nil)
		reps := 50
		if cfg.Quick {
			reps = 10
		}
		for _, s := range flow.Solvers() {
			start := time.Now()
			var value int64
			for i := 0; i < reps; i++ {
				value = s.MaxFlow(ext.P).Value
			}
			wall := time.Since(start)
			t.AddRow(sz.name, s.Name(), fmtI(value), fmtI(int64(reps)),
				wall.Round(time.Microsecond).String(),
				fmtF(float64(reps)/wall.Seconds()))
		}
	}
	return t
}
