// Package experiments implements the reproduction harness: one experiment
// per theorem, property, figure and conjecture of the paper, each
// producing a table of claimed-vs-measured results. The experiment index
// lives in DESIGN.md; EXPERIMENTS.md records the outcomes.
//
// Experiments are pure functions of a Config (root seed, seed count,
// horizon), so runs are reproducible; seeds fan out on a worker pool.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sweep"
)

// fullCells slices an in-order result list into cells of k replicas,
// trimming any trailing partial cell instead of erroring. Experiments run
// their sweeps to completion, so the trim only matters when a run was
// interrupted — the tables then render the complete cells.
func fullCells(rs []sweep.Result, k int) [][]sweep.Result {
	if k > 0 {
		rs = rs[:len(rs)-len(rs)%k]
	}
	cells, _ := sweep.Cells(rs, k)
	return cells
}

// Config tunes the harness.
type Config struct {
	// Seed is the root seed; all randomness derives from it.
	Seed uint64
	// Seeds is the number of independent runs per table cell.
	Seeds int
	// Horizon is the number of simulated steps per run.
	Horizon int64
	// Quick shrinks workloads for CI/tests.
	Quick bool
}

// Defaults returns the standard configuration used for EXPERIMENTS.md.
func Defaults() Config {
	return Config{Seed: 1, Seeds: 8, Horizon: 3000}
}

// QuickConfig returns a reduced configuration for tests.
func QuickConfig() Config {
	return Config{Seed: 1, Seeds: 3, Horizon: 400, Quick: true}
}

func (c Config) seeds() int {
	if c.Seeds <= 0 {
		return 1
	}
	return c.Seeds
}

func (c Config) horizon() int64 {
	if c.Horizon <= 0 {
		return 1000
	}
	return c.Horizon
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // what the paper asserts (or conjectures)
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; cell counts must match Columns.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d cells, table %q has %d columns",
			len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form note rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	header := line(t.Columns)
	b.WriteString(header + "\n")
	b.WriteString(strings.Repeat("-", len(header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString(line(row) + "\n")
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quotes on demand).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	// Paper points at the artefact being reproduced (theorem, property,
	// figure, conjecture).
	Paper string
	Run   func(cfg Config) *Table
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every registered experiment sorted by id (E… first, then
// P…).
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID[0] != out[j].ID[0] {
			return out[i].ID[0] < out[j].ID[0]
		}
		// numeric suffix ordering (E2 < E10)
		return idNum(out[i].ID) < idNum(out[j].ID)
	})
	return out
}

func idNum(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// fmtF renders a float compactly for table cells.
func fmtF(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1e6 || x < 1e-3:
		return fmt.Sprintf("%.3g", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// fmtI renders an int64 cell.
func fmtI(x int64) string { return fmt.Sprintf("%d", x) }
