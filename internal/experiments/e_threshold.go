package experiments

import (
	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "E26", Title: "Gradient-threshold ablation of Algorithm 1",
		Paper: "design choice: strict inequality q(u) > q(v)", Run: runE26})
}

// runE26 ablates the protocol's comparison threshold θ (send iff
// q(u) − q'(v) ≥ θ; the paper's Algorithm 1 is θ = 1). Larger thresholds
// freeze the last-packet ping-pong (E20) but retain ≈(θ−1) packets per
// link and raise the steady backlog; at high load the retention eats the
// stability margin.
func runE26(cfg Config) *Table {
	t := &Table{
		ID:      "E26",
		Title:   "LGG gradient threshold θ",
		Claim:   "θ=1 (the paper's choice) maximizes the stability region; θ>1 trades capacity for quietness",
		Columns: []string{"network", "θ", "load(×f*)", "stable-share", "mean-backlog", "sends/step"},
	}
	ws := []workload{
		{"theta(3,2)", thetaSpec(3, 2, 2, 3)},
		{"grid(3x4)", gridSpec(3, 4, 2, 1, 3)},
	}
	loads := []struct {
		name     string
		num, den int64
	}{{"0.50", 1, 2}, {"0.90", 9, 10}}
	type job struct {
		w     workload
		theta int64
		li    int
	}
	var jobs []job
	for _, w := range ws {
		for _, theta := range []int64{1, 2, 4} {
			for li := range loads {
				jobs = append(jobs, job{w, theta, li})
			}
		}
	}
	rows := make([][]string, len(jobs))
	sim.ForEach(len(jobs), func(i int) {
		j := jobs[i]
		a := j.w.spec.Analyze(flow.NewPushRelabel())
		ld := loads[j.li]
		num := a.FStar * ld.num
		den := j.w.spec.ArrivalRate() * ld.den
		var sends int64
		rs := sim.RunSeeds(func(seed uint64) *core.Engine {
			e := core.NewEngine(j.w.spec, &core.LGG{MinGradient: j.theta})
			e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: num, Den: den}
			return e
		}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
		for _, r := range rs {
			sends += r.Totals.Sent
		}
		perStep := float64(sends) / float64(int64(len(rs))*cfg.horizon())
		rows[i] = []string{j.w.name, fmtI(j.theta), ld.name,
			fmtF(sim.StableShare(rs)), fmtF(stats.Mean(sim.MeanBacklogs(rs))), fmtF(perStep)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}
