package experiments

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// workload is a named S-D-network used across experiments.
type workload struct {
	name string
	spec *core.Spec
}

// thetaSpec builds the disjoint-paths network: source node 0, sink node 1.
func thetaSpec(paths, length int, in, out int64) *core.Spec {
	g := graph.ThetaGraph(paths, length)
	return core.NewSpec(g).SetSource(0, in).SetSink(1, out)
}

// gridSpec builds a rows×cols grid with sources on the left ends of the
// first srcRows rows and sinks on the whole right column. With srcRows <
// rows the horizontal cut into the sink column (capacity `rows`) has
// slack over the arrival rate, keeping the network unsaturated; with
// srcRows == rows and in == 1 that cut is tight (saturated).
func gridSpec(rows, cols, srcRows int, in, out int64) *core.Spec {
	g := graph.Grid(rows, cols)
	s := core.NewSpec(g)
	for r := 0; r < srcRows; r++ {
		s.SetSource(graph.NodeID(r*cols), in)
	}
	for r := 0; r < rows; r++ {
		s.SetSink(graph.NodeID(r*cols+cols-1), out)
	}
	return s
}

// barbellSpec: source at the left end, generous sink at the right; the
// unit bridge is the bottleneck.
func barbellSpec(k, bridge int) *core.Spec {
	g := graph.Barbell(k, bridge)
	return core.NewSpec(g).SetSource(0, 1).SetSink(graph.NodeID(g.NumNodes()-1), 2)
}

// randomSpec: connected random multigraph with corner roles; in is the
// per-source rate. Verified feasible by construction? No — callers that
// need a class must check.
func randomSpec(n, m int, in, out int64, r *rng.Source) *core.Spec {
	g := graph.RandomMultigraph(n, m, r)
	return core.NewSpec(g).SetSource(0, in).SetSink(graph.NodeID(n-1), out)
}

// unsaturatedSuite returns the standard unsaturated workloads (slack in
// every cut) used by the stability experiments.
func unsaturatedSuite(cfg Config) []workload {
	if cfg.Quick {
		return []workload{
			{"theta(3,2)", thetaSpec(3, 2, 2, 3)},
			{"grid(3x4)", gridSpec(3, 4, 2, 1, 3)},
		}
	}
	return []workload{
		{"theta(4,3)", thetaSpec(4, 3, 2, 4)},
		{"theta(3,2)", thetaSpec(3, 2, 2, 3)},
		{"grid(4x6)", gridSpec(4, 6, 2, 1, 3)},
		{"grid(5x5)", gridSpec(5, 5, 3, 1, 3)},
	}
}

// saturatedSuite returns workloads whose arrival rate equals a non-trivial
// minimum cut (the Section V-B/V-C regimes).
func saturatedSuite(cfg Config) []workload {
	ws := []workload{
		{"line(5)", core.NewSpec(graph.Line(5)).SetSource(0, 1).SetSink(4, 1)},
		{"theta(3,2)@cap", thetaSpec(3, 2, 3, 3)},
		{"barbell(3,2)", barbellSpec(3, 2)},
	}
	if !cfg.Quick {
		ws = append(ws,
			workload{"theta(4,3)@cap", thetaSpec(4, 3, 4, 4)},
			workload{"line(9)", core.NewSpec(graph.Line(9)).SetSource(0, 1).SetSink(8, 1)},
		)
	}
	return ws
}
