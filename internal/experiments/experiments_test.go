package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/sweep"
)

func tinyConfig() Config {
	return Config{Seed: 1, Seeds: 2, Horizon: 250, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19",
		"E20", "E21", "E22", "E23", "E24", "E25", "E26", "E27", "P1", "P2", "P3"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("ordering: All()[%d] = %s, want %s", i, all[i].ID, id)
		}
	}
	for _, e := range all {
		if e.Title == "" || e.Run == nil {
			t.Fatalf("%s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E4"); !ok {
		t.Fatal("E4 missing")
	}
	if _, ok := ByID("e4"); !ok {
		t.Fatal("lookup should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("bogus id found")
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	cfg := tinyConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tab := e.Run(cfg)
			if tab == nil || tab.ID != e.ID {
				t.Fatalf("table id mismatch: %+v", tab)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("empty table")
			}
			var txt, csv bytes.Buffer
			if err := tab.Render(&txt); err != nil {
				t.Fatal(err)
			}
			if err := tab.CSV(&csv); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(txt.String(), e.ID) {
				t.Fatal("render lacks experiment id")
			}
			if strings.Count(csv.String(), "\n") != len(tab.Rows)+1 {
				t.Fatal("csv row count mismatch")
			}
		})
	}
}

// column returns the index of a named column.
func column(tab *Table, name string) int {
	for i, c := range tab.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

func TestE4Shape(t *testing.T) {
	tab, _ := ByID("E4")
	out := tab.Run(tinyConfig())
	iRho := column(out, "ρ(×f*)")
	iVerdict := column(out, "verdict")
	iShare := column(out, "stable-share")
	for _, row := range out.Rows {
		switch row[iRho] {
		case "0.50", "0.80":
			if row[iShare] != "1.000" {
				t.Errorf("%s at ρ=%s: stable-share %s", row[0], row[iRho], row[iShare])
			}
		case "1.25":
			if row[iVerdict] != "diverging" {
				t.Errorf("%s at ρ=1.25: verdict %s, want diverging", row[0], row[iVerdict])
			}
		}
	}
}

func TestE5AllRoutersDiverge(t *testing.T) {
	tab, _ := ByID("E5")
	out := tab.Run(tinyConfig())
	iVerdict := column(out, "verdict")
	for _, row := range out.Rows {
		if row[iVerdict] != "diverging" {
			t.Errorf("router %s did not diverge beyond f*", row[1])
		}
	}
}

func TestE6BoundHolds(t *testing.T) {
	tab, _ := ByID("E6")
	out := tab.Run(tinyConfig())
	iHolds := column(out, "holds")
	for _, row := range out.Rows {
		if row[iHolds] != "true" {
			t.Errorf("Property 1 bound violated on %s", row[0])
		}
	}
}

func TestE11NoCounterexamples(t *testing.T) {
	tab, _ := ByID("E11")
	out := tab.Run(tinyConfig())
	found := false
	for _, n := range out.Notes {
		if strings.Contains(n, "counterexamples found: 0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("domination search reported counterexamples: %v", out.Notes)
	}
}

func TestTableAddRowPanicsOnArity(t *testing.T) {
	tab := &Table{ID: "X", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("short row accepted")
		}
	}()
	tab.AddRow("only-one")
}

func TestTableCSVQuoting(t *testing.T) {
	tab := &Table{ID: "X", Columns: []string{"a"}}
	tab.AddRow(`with "quote", comma`)
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"with ""quote"", comma"`) {
		t.Fatalf("csv quoting wrong: %q", buf.String())
	}
}

func TestConfigs(t *testing.T) {
	d := Defaults()
	if d.Seeds <= 0 || d.Horizon <= 0 {
		t.Fatal("bad defaults")
	}
	q := QuickConfig()
	if !q.Quick || q.Horizon >= d.Horizon {
		t.Fatal("quick config not quick")
	}
	var zero Config
	if zero.seeds() != 1 || zero.horizon() != 1000 {
		t.Fatal("zero config fallbacks wrong")
	}
}

func TestFaultsGridRunsAndReportsRecovery(t *testing.T) {
	cfg := tinyConfig()
	jobs := FaultsGrid(cfg)
	if len(jobs) == 0 {
		t.Fatal("faults grid is empty")
	}
	rs, err := (&sweep.Runner{}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := 0
	for _, r := range rs {
		if r.Failed {
			t.Fatalf("run %d (%s/%s) failed: %s", r.Index, r.Network, r.Variant, r.Error)
		}
		if r.Variant == "none" {
			if r.Recovery != "" {
				t.Fatalf("fault-free run %d carries recovery %q", r.Index, r.Recovery)
			}
			continue
		}
		if r.Recovery != "" {
			verdicts++
		}
	}
	if verdicts == 0 {
		t.Fatal("no faulty run surfaced a recovery verdict")
	}
	if _, err := FindGrid("faults"); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveMatchesExhaustive is the adaptive acceptance gate: on the
// frontier grid, bisection must land on the same critical load the
// exhaustive enumeration brackets — within one grid spacing plus the
// bisection tolerance — while spending at most half the runs.
func TestAdaptiveMatchesExhaustive(t *testing.T) {
	cfg := tinyConfig()
	space := FrontierSpace(cfg)
	jobs := FrontierGrid(cfg)
	rs, err := (&sweep.Runner{Workers: 4}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := sweep.AggregateCells(rs, cfg.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	rho, _ := space.Axis("rho")
	points := rho.Points
	perNetwork := len(points)
	if len(cells) != 2*perNetwork {
		t.Fatalf("exhaustive frontier grid has %d cells, want %d", len(cells), 2*perNetwork)
	}
	// Exhaustive estimate: the midpoint between the last stable grid
	// point and the first unstable one, per network.
	exhaustive := make(map[string]float64)
	for n := 0; n < 2; n++ {
		group := cells[n*perNetwork : (n+1)*perNetwork]
		last := -1
		for i, c := range group {
			if c.StableShare >= 0.5 {
				last = i
			}
		}
		if last < 0 || last == perNetwork-1 {
			t.Fatalf("network %s has no frontier inside the rho axis (last stable index %d)", group[0].Network, last)
		}
		exhaustive[group[0].Network] = (points[last] + points[last+1]) / 2
	}

	const tol = 0.025
	rep, err := sweep.RunFrontier(t.Context(), FrontierSpace(cfg),
		sweep.FrontierConfig{Axis: "rho", Tol: tol, MinSeeds: cfg.Seeds, MaxSeeds: cfg.Seeds},
		&sweep.Runner{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("adaptive produced %d group results, want 2", len(rep.Results))
	}
	spacing := points[1] - points[0]
	for _, fr := range rep.Results {
		network := fr.Coords[0].Label
		want, ok := exhaustive[network]
		if !ok {
			t.Fatalf("adaptive group %q has no exhaustive counterpart", network)
		}
		if !fr.Found {
			t.Fatalf("adaptive did not find the %s frontier: %+v", network, fr)
		}
		if diff := math.Abs(fr.Critical - want); diff > spacing/2+tol {
			t.Errorf("%s: adaptive critical %.4f vs exhaustive %.4f (diff %.4f > %.4f)",
				network, fr.Critical, want, diff, spacing/2+tol)
		}
	}
	if rep.TotalRuns*2 > len(jobs) {
		t.Errorf("adaptive spent %d runs, more than half the exhaustive %d", rep.TotalRuns, len(jobs))
	}
}
