package experiments

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/region"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "E23", Title: "Critical load ρ* per router (bisection)",
		Paper: "Theorem 1 quantified: ρ*(LGG) = 1", Run: runE23})
}

// runE23 bisects each router's stability frontier as a fraction of f*.
// Theorem 1 predicts LGG's frontier sits exactly at 1; the clairvoyant
// flow router matches it by construction; queue-oblivious heuristics fall
// short on asymmetric topologies; duty-cycled LGG loses capacity roughly
// proportional to its sleep fraction.
func runE23(cfg Config) *Table {
	t := &Table{
		ID:      "E23",
		Title:   "empirical stability frontier",
		Claim:   "ρ*(LGG) = ρ*(flow-paths) = 1·f*; oblivious and sleepy routers sit lower",
		Columns: []string{"network", "router", "stable-up-to(×f*)", "unstable-from(×f*)"},
	}
	ws := []workload{
		{"theta(3,2)", thetaSpec(3, 2, 3, 3)},
		{"grid(3x4)", gridSpec(3, 4, 2, 1, 3)},
	}
	if !cfg.Quick {
		ws = append(ws, workload{"grid(4x6)", gridSpec(4, 6, 2, 1, 3)})
	}
	routers := []struct {
		name string
		mk   func(spec *core.Spec) func(seed uint64) core.Router
	}{
		{"lgg", func(*core.Spec) func(uint64) core.Router {
			return func(uint64) core.Router { return core.NewLGG() }
		}},
		{"flow-paths", func(spec *core.Spec) func(uint64) core.Router {
			return func(uint64) core.Router {
				fr, err := baseline.NewFlowRouter(spec, flow.NewPushRelabel())
				if err != nil {
					return baseline.Null{}
				}
				return fr
			}
		}},
		{"shortest-path", func(spec *core.Spec) func(uint64) core.Router {
			return func(uint64) core.Router { return baseline.NewShortestPath(spec) }
		}},
		{"random-forward", func(*core.Spec) func(uint64) core.Router {
			return func(seed uint64) core.Router {
				return baseline.NewRandomForward(rng.New(seed).Split(81))
			}
		}},
		{"sleepy-lgg p=0.5", func(*core.Spec) func(uint64) core.Router {
			return func(seed uint64) core.Router {
				return &baseline.Sleepy{Inner: core.NewLGG(), P: 0.5, Seed: seed}
			}
		}},
	}
	resolution := int64(16)
	if cfg.Quick {
		resolution = 8
	}
	type job struct {
		w  workload
		ri int
	}
	var jobs []job
	for _, w := range ws {
		for ri := range routers {
			jobs = append(jobs, job{w, ri})
		}
	}
	rows := make([][]string, len(jobs))
	// Probers run their own seed pools; parallelize across (network,
	// router) cells only to keep engine counts sane.
	sim.ForEach(len(jobs), func(i int) {
		j := jobs[i]
		p := &region.Prober{
			Spec:       j.w.spec,
			Router:     routers[j.ri].mk(j.w.spec),
			Seeds:      sim.Seeds(cfg.Seed, min(cfg.seeds(), 4)),
			Horizon:    cfg.horizon(),
			Resolution: resolution,
		}
		lo, hi := p.Critical()
		rows[i] = []string{j.w.name, routers[j.ri].name, fmtF(lo), fmtF(hi)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Note("bisection at resolution 1/%d of f*, %d seeds per probe; frontier = [stable-up-to, unstable-from)", resolution, min(cfg.seeds(), 4))
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
