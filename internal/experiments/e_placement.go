package experiments

import (
	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "E25", Title: "Source/sink placement vs capacity (Gomory–Hu)",
		Paper: "Section II-B applied: f* is the placement's min cut", Run: runE25})
}

// runE25 fixes one topology (a 4×6 grid) and varies only the source/sink
// placement: the Gomory–Hu tree predicts each placement's capacity (the
// pairwise min cut), the extended-graph analysis confirms it as f*, and
// LGG is stable at 90% of whatever that capacity is — the feasibility
// theory localizes the "how much can I inject" question to a single
// all-pairs min-cut lookup.
func runE25(cfg Config) *Table {
	t := &Table{
		ID:      "E25",
		Title:   "placement determines capacity",
		Claim:   "f* equals the placement's pairwise min cut; LGG is stable at 0.9·f* everywhere",
		Columns: []string{"placement", "gomory-hu cut", "f*", "agree", "stable@0.9f*", "mean-backlog"},
	}
	rows, cols := 4, 6
	g := graph.Grid(rows, cols)
	tree := flow.GomoryHu(g, flow.NewPushRelabel())
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	placements := []struct {
		name     string
		src, dst graph.NodeID
	}{
		{"corner→far corner", id(0, 0), id(rows-1, cols-1)},
		{"corner→centre", id(0, 0), id(1, 2)},
		{"centre→centre", id(1, 1), id(2, 4)},
		{"edge→edge (same row)", id(0, 2), id(0, 4)},
	}
	for _, p := range placements {
		cut := tree.MinCut(p.src, p.dst)
		spec := core.NewSpec(g).SetSource(p.src, 1).SetSink(p.dst, int64(g.Degree(p.dst)))
		a := spec.Analyze(flow.NewPushRelabel())
		agree := a.FStar == cut
		// load 0.9·f*: scale the unit source by 9·f*/10.
		rs := sim.RunSeeds(func(seed uint64) *core.Engine {
			e := core.NewEngine(spec, core.NewLGG())
			e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: 9 * a.FStar, Den: 10}
			return e
		}, sim.Seeds(cfg.Seed, cfg.seeds()), sim.Options{Horizon: cfg.horizon()})
		var back float64
		for _, b := range sim.MeanBacklogs(rs) {
			back += b
		}
		t.AddRow(p.name, fmtI(cut), fmtI(a.FStar), boolCell(agree),
			fmtF(sim.StableShare(rs)), fmtF(back/float64(len(rs))))
	}
	t.Note("sink capacity set to its degree so the graph, not the virtual sink link, is the binding constraint")
	return t
}

func boolCell(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
