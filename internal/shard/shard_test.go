package shard

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// line builds a path graph 0-1-…-(n-1).
func line(n int) *graph.Multigraph {
	g := graph.New(n)
	for v := 0; v < n-1; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	return g
}

// grid builds a w×h grid labeled row-major.
func grid(w, h int) *graph.Multigraph {
	g := graph.New(w * h)
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return g
}

func mustValidate(t *testing.T, p *Partition, g *graph.Multigraph) {
	t.Helper()
	if err := p.Validate(g); err != nil {
		t.Fatalf("%v: %v", p, err)
	}
}

// Every partitioner must cover each node exactly once and classify each
// edge exactly once (interior xor boundary). Validate checks both.
func TestCoverage(t *testing.T) {
	graphs := map[string]*graph.Multigraph{
		"line40":  line(40),
		"grid8x8": grid(8, 8),
		"empty":   graph.New(7), // nodes, no edges
	}
	for name, g := range graphs {
		for _, k := range []int{1, 2, 3, 8} {
			mustValidate(t, ByRange(g, k), g)
			mustValidate(t, ByBFS(g, k), g)
			_ = name
		}
	}
}

// The same graph and shard count must produce the same partition on
// every call — the whole replay contract stands on this.
func TestDeterminism(t *testing.T) {
	build := func() *graph.Multigraph {
		g := grid(6, 6)
		// A few multi-edges so incidence order matters.
		g.AddEdges(3, 4, 2)
		g.AddEdge(10, 20)
		return g
	}
	for _, k := range []int{1, 2, 5, 8} {
		a, b := ByBFS(build(), k), ByBFS(build(), k)
		if !reflect.DeepEqual(a.Owner, b.Owner) {
			t.Fatalf("k=%d: ByBFS owner vectors differ across calls", k)
		}
		if !reflect.DeepEqual(a.Boundary(), b.Boundary()) {
			t.Fatalf("k=%d: ByBFS boundary sets differ across calls", k)
		}
		r1, r2 := ByRange(build(), k), ByRange(build(), k)
		if !reflect.DeepEqual(r1.Owner, r2.Owner) {
			t.Fatalf("k=%d: ByRange owner vectors differ across calls", k)
		}
	}
}

// Disconnected components: BFS must visit every component (in order of
// smallest node id) and still cover all nodes and edges.
func TestDisconnectedComponents(t *testing.T) {
	g := graph.New(12)
	// Component A: 0-1-2; component B: 5-6, 6-7, 7-5 (cycle);
	// isolated nodes 3, 4, 8..11.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(5, 6)
	g.AddEdge(6, 7)
	g.AddEdge(7, 5)
	for _, k := range []int{1, 2, 3, 4} {
		p := ByBFS(g, k)
		mustValidate(t, p, g)
		total := 0
		for s := 0; s < k; s++ {
			total += len(p.Nodes(s))
		}
		if total != 12 {
			t.Fatalf("k=%d: %d nodes covered, want 12", k, total)
		}
	}
	// k=1 puts everything in one shard: no boundary whatever the layout.
	if b := ByBFS(g, 1).Boundary(); len(b) != 0 {
		t.Fatalf("single shard has %d boundary edges, want 0", len(b))
	}
}

// Multi-edges crossing a shard boundary: all parallel copies must appear
// in the boundary set individually, in ascending edge-id order.
// (Self-loops cannot occur: graph.AddEdge rejects them by construction,
// so a loop can never cross — or sit on — a boundary.)
func TestMultiEdgeBoundary(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)              // edge 0, interior to shard 0 under k=2 ranges
	first := g.AddEdges(1, 2, 3) // edges 1,2,3 all cross the 0..1 | 2..3 cut
	g.AddEdge(2, 3)              // edge 4, interior to shard 1
	p := ByRange(g, 2)
	mustValidate(t, p, g)
	want := []graph.EdgeID{first, first + 1, first + 2}
	if !reflect.DeepEqual(p.Boundary(), want) {
		t.Fatalf("boundary = %v, want %v", p.Boundary(), want)
	}
}

// Single-node shards: k = n gives every node its own shard and makes
// every edge a boundary edge.
func TestSingleNodeShards(t *testing.T) {
	g := line(6)
	p := ByRange(g, 6)
	mustValidate(t, p, g)
	for s := 0; s < 6; s++ {
		if len(p.Nodes(s)) != 1 {
			t.Fatalf("shard %d holds %d nodes, want 1", s, len(p.Nodes(s)))
		}
	}
	if len(p.Boundary()) != g.NumEdges() {
		t.Fatalf("%d boundary edges, want all %d", len(p.Boundary()), g.NumEdges())
	}
}

// Shard count > node count: the extra shards are empty, coverage still
// holds, and Span reports empty shards as such.
func TestMoreShardsThanNodes(t *testing.T) {
	g := line(3)
	for _, build := range []func(*graph.Multigraph, int) *Partition{ByRange, ByBFS} {
		p := build(g, 10)
		mustValidate(t, p, g)
		nonEmpty := 0
		for s := 0; s < 10; s++ {
			if n := len(p.Nodes(s)); n > 0 {
				nonEmpty++
				if n != 1 {
					t.Fatalf("shard %d holds %d nodes, want ≤1 when k>n", s, n)
				}
			} else if _, hi, contig := p.Span(s); hi != -1 || contig {
				t.Fatalf("empty shard %d: Span reports hi=%d contig=%v", s, hi, contig)
			}
		}
		if nonEmpty != 3 {
			t.Fatalf("%d non-empty shards, want 3", nonEmpty)
		}
	}
}

// ByBFS on a row-major grid keeps blocks contiguous in BFS order and
// keeps the partition ordered when BFS order coincides with id order
// (a line graph). On general graphs ordered may be false — that is fine,
// the engine just merges instead of concatenating.
func TestOrderedFlag(t *testing.T) {
	if p := ByRange(grid(8, 8), 4); !p.Ordered() {
		t.Fatal("ByRange must always be ordered")
	}
	if p := ByBFS(line(64), 4); !p.Ordered() {
		t.Fatal("ByBFS on a line visits nodes in id order; partition should be ordered")
	}
	// Owner-built interleaved partition: legal but unordered.
	g := line(4)
	p, err := FromOwners(g, []int32{0, 1, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, p, g)
	if p.Ordered() {
		t.Fatal("interleaved owners reported as ordered")
	}
	if len(p.Boundary()) != 3 {
		t.Fatalf("interleaved line: %d boundary edges, want 3", len(p.Boundary()))
	}
}

// Span detects contiguous shards so the engine can use slice spans.
func TestSpan(t *testing.T) {
	p := ByRange(line(10), 3)
	lo, hi, contig := p.Span(0)
	if lo != 0 || hi != 2 || !contig {
		t.Fatalf("shard 0 span = [%d,%d] contig=%v, want [0,2] contiguous", lo, hi, contig)
	}
	g := line(4)
	q, _ := FromOwners(g, []int32{0, 1, 0, 1}, 2)
	if _, _, contig := q.Span(0); contig {
		t.Fatal("interleaved shard reported contiguous")
	}
}

func TestFromOwnersRejects(t *testing.T) {
	g := line(4)
	if _, err := FromOwners(g, []int32{0, 0, 0}, 2); err == nil {
		t.Fatal("short owner vector accepted")
	}
	if _, err := FromOwners(g, []int32{0, 0, 0, 5}, 2); err == nil {
		t.Fatal("out-of-range owner accepted")
	}
	if _, err := FromOwners(g, []int32{0, 0, 0, 0}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestNonPositiveKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ByRange(g, 0) did not panic")
		}
	}()
	ByRange(line(3), 0)
}

func TestStats(t *testing.T) {
	p := ByRange(grid(8, 8), 4)
	st := p.Stats(grid(8, 8))
	if st.Shards != 4 || st.Nodes != 64 || st.MaxShardNodes != 16 || st.MinShardNodes != 16 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BoundaryEdges == 0 || st.BoundaryShare <= 0 {
		t.Fatalf("grid cut has no boundary: %+v", st)
	}
}
