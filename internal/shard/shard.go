// Package shard partitions a multigraph into per-shard node regions for
// partition-parallel execution of the step loop.
//
// LGG is a localized protocol: a node's plan depends only on its own true
// queue and the declared queues at the far ends of its incident edges
// (Algorithm 1). That locality is exactly what makes sharding sound — a
// shard can plan all of its nodes against a common snapshot without
// seeing any state the serial engine would not also expose — and the only
// cross-shard traffic a step generates is the set of sends over boundary
// edges (edges whose endpoints live in different shards).
//
// Partitions here are *deterministic*: the same graph and shard count
// always produce the same Partition, whatever the worker count or
// scheduler interleaving. The engine's replay contract (byte-identical
// output at any shard count) starts from that property and is enforced
// end to end by the shard-determinism CI job.
package shard

import (
	"fmt"

	"repro/internal/graph"
)

// Partition assigns every node of a multigraph to exactly one of K
// shards. Edges with both endpoints in one shard are interior to it;
// edges whose endpoints disagree form the boundary set, the only edges
// whose sends cross shards during a parallel step.
//
// A Partition is immutable after construction and safe for concurrent
// readers.
type Partition struct {
	// K is the shard count. Shards may be empty when K exceeds the node
	// count.
	K int
	// Owner maps every node to its shard in [0, K).
	Owner []int32
	// Method names the partitioner that produced this partition
	// ("range", "bfs", "owners").
	Method string

	nodes    [][]graph.NodeID // per shard, strictly ascending
	boundary []graph.EdgeID   // ascending edge ids crossing shards
	ordered  bool             // shard node ranges are disjoint ascending intervals
}

// Nodes returns shard s's node set in strictly ascending order. The slice
// is shared; callers must not modify it.
func (p *Partition) Nodes(s int) []graph.NodeID { return p.nodes[s] }

// Boundary returns the edges whose endpoints live in different shards, in
// ascending edge-id order. The slice is shared; callers must not modify
// it.
func (p *Partition) Boundary() []graph.EdgeID { return p.boundary }

// Ordered reports whether shard node sets occupy disjoint ascending
// intervals of the node-id space (every node of shard s is smaller than
// every node of shard s+1, skipping empty shards). An ordered partition
// lets the engine rebuild the serial plan order by concatenating shard
// send batches in shard order; unordered partitions need a merge by node
// id. Both are deterministic.
func (p *Partition) Ordered() bool { return p.ordered }

// NumNodes returns the number of partitioned nodes.
func (p *Partition) NumNodes() int { return len(p.Owner) }

// Span returns the [lo, hi] node-id interval of shard s and whether the
// shard is exactly that contiguous interval (every id in [lo, hi] is
// owned by s). Empty shards return (0, -1, false). Contiguous shards let
// hot loops use slice spans instead of per-node indexing.
func (p *Partition) Span(s int) (lo, hi graph.NodeID, contiguous bool) {
	ns := p.nodes[s]
	if len(ns) == 0 {
		return 0, -1, false
	}
	lo, hi = ns[0], ns[len(ns)-1]
	return lo, hi, int(hi-lo)+1 == len(ns)
}

// Stats summarizes a partition's quality.
type Stats struct {
	Shards        int
	Nodes         int
	Edges         int
	BoundaryEdges int
	// BoundaryShare is BoundaryEdges / Edges (0 for an edgeless graph).
	BoundaryShare float64
	// MaxShardNodes and MinShardNodes measure balance.
	MaxShardNodes, MinShardNodes int
}

// Stats computes summary statistics against the graph the partition was
// built from.
func (p *Partition) Stats(g *graph.Multigraph) Stats {
	st := Stats{Shards: p.K, Nodes: len(p.Owner), Edges: g.NumEdges(),
		BoundaryEdges: len(p.boundary), MinShardNodes: len(p.Owner)}
	for s := 0; s < p.K; s++ {
		n := len(p.nodes[s])
		if n > st.MaxShardNodes {
			st.MaxShardNodes = n
		}
		if n < st.MinShardNodes {
			st.MinShardNodes = n
		}
	}
	if st.Edges > 0 {
		st.BoundaryShare = float64(st.BoundaryEdges) / float64(st.Edges)
	}
	return st
}

// Validate checks internal consistency against g: owner vector length,
// owners in range, per-shard lists ascending and consistent with Owner,
// every node covered exactly once, and the boundary set containing
// exactly the owner-crossing edges. It exists for tests and for
// partitions built by external tooling via FromOwners.
func (p *Partition) Validate(g *graph.Multigraph) error {
	n := g.NumNodes()
	if len(p.Owner) != n {
		return fmt.Errorf("shard: owner vector has %d entries for %d nodes", len(p.Owner), n)
	}
	if p.K <= 0 {
		return fmt.Errorf("shard: non-positive shard count %d", p.K)
	}
	if len(p.nodes) != p.K {
		return fmt.Errorf("shard: %d node lists for %d shards", len(p.nodes), p.K)
	}
	seen := 0
	for s := 0; s < p.K; s++ {
		prev := graph.NodeID(-1)
		for _, v := range p.nodes[s] {
			if v <= prev {
				return fmt.Errorf("shard: shard %d node list not strictly ascending at %d", s, v)
			}
			prev = v
			if int(v) >= n || p.Owner[v] != int32(s) {
				return fmt.Errorf("shard: node %d listed in shard %d but owned by %d", v, s, p.Owner[v])
			}
			seen++
		}
	}
	if seen != n {
		return fmt.Errorf("shard: node lists cover %d of %d nodes", seen, n)
	}
	want := 0
	for id, e := range g.Edges() {
		if p.Owner[e.U] != p.Owner[e.V] {
			if want >= len(p.boundary) || p.boundary[want] != graph.EdgeID(id) {
				return fmt.Errorf("shard: boundary set disagrees with owners at edge %d", id)
			}
			want++
		}
	}
	if want != len(p.boundary) {
		return fmt.Errorf("shard: boundary set has %d extra edges", len(p.boundary)-want)
	}
	return nil
}

// ByRange partitions nodes into K contiguous id ranges of near-equal
// size (shard s owns [s·n/K, (s+1)·n/K)). It ignores topology — the
// cheapest partitioner, and already optimal for generators that label
// nodes in spatial order (lines, grids). Panics if k <= 0.
func ByRange(g *graph.Multigraph, k int) *Partition {
	if k <= 0 {
		panic(fmt.Sprintf("shard: non-positive shard count %d", k))
	}
	n := g.NumNodes()
	order := make([]graph.NodeID, n)
	for v := range order {
		order[v] = graph.NodeID(v)
	}
	return fromOrder(g, order, k, "range")
}

// ByBFS partitions nodes into K near-equal blocks of a deterministic BFS
// traversal: components are visited in order of their smallest node id,
// each explored breadth-first from that node with neighbours expanded in
// incidence (edge-insertion) order. Consecutive BFS blocks are
// topologically close, so boundary edge counts stay low on mesh-like
// graphs without any flow computation. Panics if k <= 0.
func ByBFS(g *graph.Multigraph, k int) *Partition {
	if k <= 0 {
		panic(fmt.Sprintf("shard: non-positive shard count %d", k))
	}
	n := g.NumNodes()
	order := make([]graph.NodeID, 0, n)
	visited := make([]bool, n)
	queue := make([]graph.NodeID, 0, n)
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		queue = append(queue[:0], graph.NodeID(root))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, in := range g.Incident(v) {
				if !visited[in.Peer] {
					visited[in.Peer] = true
					queue = append(queue, in.Peer)
				}
			}
		}
	}
	return fromOrder(g, order, k, "bfs")
}

// FromOwners builds a partition from an explicit owner vector (for
// example one derived from internal/flow min-cuts). The vector must
// assign every node an owner in [0, k).
func FromOwners(g *graph.Multigraph, owner []int32, k int) (*Partition, error) {
	if k <= 0 {
		return nil, fmt.Errorf("shard: non-positive shard count %d", k)
	}
	if len(owner) != g.NumNodes() {
		return nil, fmt.Errorf("shard: owner vector has %d entries for %d nodes", len(owner), g.NumNodes())
	}
	p := &Partition{K: k, Owner: append([]int32(nil), owner...), Method: "owners",
		nodes: make([][]graph.NodeID, k)}
	for v, s := range owner {
		if s < 0 || int(s) >= k {
			return nil, fmt.Errorf("shard: node %d owned by %d, want [0,%d)", v, s, k)
		}
		p.nodes[s] = append(p.nodes[s], graph.NodeID(v))
	}
	p.finish(g)
	return p, nil
}

// fromOrder cuts a node ordering into k near-equal consecutive blocks and
// assigns block s to shard s.
func fromOrder(g *graph.Multigraph, order []graph.NodeID, k int, method string) *Partition {
	n := len(order)
	p := &Partition{K: k, Owner: make([]int32, n), Method: method,
		nodes: make([][]graph.NodeID, k)}
	for s := 0; s < k; s++ {
		block := order[s*n/k : (s+1)*n/k]
		ns := make([]graph.NodeID, len(block))
		copy(ns, block)
		sortNodes(ns)
		p.nodes[s] = ns
		for _, v := range ns {
			p.Owner[v] = int32(s)
		}
	}
	p.finish(g)
	return p
}

// finish derives the boundary set and the ordered flag from Owner.
func (p *Partition) finish(g *graph.Multigraph) {
	for id, e := range g.Edges() {
		if p.Owner[e.U] != p.Owner[e.V] {
			p.boundary = append(p.boundary, graph.EdgeID(id))
		}
	}
	p.ordered = true
	prev := graph.NodeID(-1)
	for s := 0; s < p.K; s++ {
		ns := p.nodes[s]
		if len(ns) == 0 {
			continue
		}
		if ns[0] <= prev {
			p.ordered = false
			return
		}
		prev = ns[len(ns)-1]
	}
}

// sortNodes sorts a node list ascending (insertion sort for the short
// blocks BFS partitioning produces near-sorted, library sort otherwise).
func sortNodes(ns []graph.NodeID) {
	for i := 1; i < len(ns); i++ {
		v := ns[i]
		j := i - 1
		for j >= 0 && ns[j] > v {
			ns[j+1] = ns[j]
			j--
		}
		ns[j+1] = v
	}
}

// String describes the partition compactly.
func (p *Partition) String() string {
	return fmt.Sprintf("partition(%s, k=%d, n=%d, boundary=%d)", p.Method, p.K, len(p.Owner), len(p.boundary))
}
