// Package server is the resilient simulation service behind cmd/lggd: an
// HTTP/JSON daemon that admits run and sweep jobs, executes them on a
// bounded worker pool built from internal/sweep's panic-isolated retrying
// runner, and survives overload, deadlines, cancellation, crashes and
// restarts without losing or corrupting work.
//
// Robustness is applied at every layer, mirroring the paper's saturation
// semantics (Section III): a network fed past its service rate must shed
// at the edge, not grow an unbounded backlog. Concretely:
//
//   - Admission is a bounded queue. A full queue sheds with HTTP 429 and
//     a Retry-After derived from the queue depth and the measured mean
//     job duration — the service-side analogue of the paper's saturated
//     regime, where bounded state is bought by refusing excess arrivals.
//   - Deadlines propagate: a job's timeout_ms flows through the sweep
//     runner into sim.RunContext, so even a single enormous run is
//     cancelled mid-flight instead of wedging a worker.
//   - Idempotency keys deduplicate client retries, so an at-least-once
//     client (the companion client package) never double-submits.
//   - Jobs are durable: every state transition appends to a fsynced
//     JSONL ledger, and every finished run is checkpointed to the PR-4
//     sweep journal. A killed daemon resumes unfinished jobs on restart,
//     and — by the sweep determinism contract — the resumed results are
//     byte-identical to an uninterrupted execution.
//   - Drain is graceful: Drain stops admission (readyz goes 503), lets
//     in-flight jobs finish within the caller's grace, then cancels
//     them so their journals hold the finished prefix, flushes, and
//     returns. Nothing is lost; the next start picks the work back up.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Config tunes a Server. The zero value is usable apart from StateDir,
// which is required.
type Config struct {
	// StateDir holds the job ledger and per-job sweep journals.
	StateDir string
	// Jobs is the number of concurrent job executors (default 2).
	Jobs int
	// QueueDepth bounds the admission queue; arrivals beyond it are shed
	// with 429 + Retry-After (default 16).
	QueueDepth int
	// SweepWorkers is the per-sweep worker pool (default GOMAXPROCS).
	SweepWorkers int
	// Retries is the per-run panic retry budget (sweep.Runner.Retries).
	Retries int
	// FindGrid resolves grid names (default experiments.FindGrid).
	FindGrid GridResolver
	// Registry receives the daemon's metrics (default: a fresh registry,
	// exposed at /metrics).
	Registry *metrics.Registry
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// Daemon metric names.
const (
	MetricQueueDepth   = "lggd_queue_depth"
	MetricInflight     = "lggd_inflight_jobs"
	MetricDraining     = "lggd_draining"
	MetricShed         = "lggd_jobs_shed_total"
	MetricAdmitted     = "lggd_jobs_admitted_total"
	MetricDeduped      = "lggd_jobs_deduplicated_total"
	MetricJobsDone     = "lggd_jobs_done_total"
	MetricJobsFailed   = "lggd_jobs_failed_total"
	MetricJobsCancel   = "lggd_jobs_cancelled_total"
	MetricJobsResumed  = "lggd_jobs_resumed_total"
	MetricRunsFinished = "lggd_runs_finished_total"
	MetricHTTPRequests = "lggd_http_requests_total"
)

// errDrain marks a cancellation caused by a graceful drain: the job is
// checkpointed and left resumable, unlike a client cancel.
var errDrain = errors.New("server: draining")

// errClientCancel marks a client-requested cancellation (terminal).
var errClientCancel = errors.New("server: cancelled by client")

// job is the in-memory state of one job. Lock order: Server.mu before
// job.mu; never the reverse.
type job struct {
	mu              sync.Mutex
	st              JobState
	cancel          context.CancelCauseFunc // non-nil while running
	cancelRequested bool
	doneCh          chan struct{} // closed when the job reaches a terminal status
}

// state returns a consistent snapshot.
func (j *job) state() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Status.Terminal()
}

// Server executes sweep jobs from a bounded queue with durable state.
// Construct with New, serve its Handler, and stop with Drain.
type Server struct {
	cfg   Config
	store *store
	reg   *metrics.Registry

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	keys     map[string]string // idempotency key → job id
	fifo     []*job
	nextID   int
	draining bool

	wake  chan struct{} // buffered(1): work-available signal
	stopc chan struct{} // closed when draining starts
	wg    sync.WaitGroup

	gQueue, gInflight, gDraining                *metrics.Gauge
	cShed, cAdmitted, cDeduped                  *metrics.Counter
	cDone, cFailed, cCancelled, cResumed, cRuns *metrics.Counter
	cHTTP                                       *metrics.Counter
	ewmaMu                                      sync.Mutex
	jobSecs                                     float64
}

// New opens the state directory, replays the job ledger, re-queues every
// unfinished job (oldest first) and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("server: Config.StateDir is required")
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.FindGrid == nil {
		cfg.FindGrid = experiments.FindGrid
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	st, replay, err := openStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		store: st,
		reg:   cfg.Registry,
		jobs:  make(map[string]*job),
		keys:  make(map[string]string),
		wake:  make(chan struct{}, 1),
		stopc: make(chan struct{}),
	}
	s.gQueue = s.reg.Gauge(MetricQueueDepth, "Jobs waiting in the admission queue.")
	s.gInflight = s.reg.Gauge(MetricInflight, "Jobs currently executing.")
	s.gDraining = s.reg.Gauge(MetricDraining, "1 while the daemon drains (admission closed).")
	s.cShed = s.reg.Counter(MetricShed, "Submissions shed with 429 because the queue was full.")
	s.cAdmitted = s.reg.Counter(MetricAdmitted, "Jobs admitted to the queue.")
	s.cDeduped = s.reg.Counter(MetricDeduped, "Submissions answered by an existing job via idempotency key.")
	s.cDone = s.reg.Counter(MetricJobsDone, "Jobs that completed every run.")
	s.cFailed = s.reg.Counter(MetricJobsFailed, "Jobs that ended in a terminal error.")
	s.cCancelled = s.reg.Counter(MetricJobsCancel, "Jobs cancelled by clients.")
	s.cResumed = s.reg.Counter(MetricJobsResumed, "Unfinished jobs re-queued at startup.")
	s.cRuns = s.reg.Counter(MetricRunsFinished, "Individual sweep runs finished across all jobs.")
	s.cHTTP = s.reg.Counter(MetricHTTPRequests, "HTTP requests served.")

	for _, rec := range replay {
		rec := rec
		jb := &job{st: rec, doneCh: make(chan struct{})}
		if n, ok := idNumber(rec.ID); ok && n >= s.nextID {
			s.nextID = n + 1
		}
		if rec.Spec.IdempotencyKey != "" {
			s.keys[rec.Spec.IdempotencyKey] = rec.ID
		}
		s.jobs[rec.ID] = jb
		s.order = append(s.order, rec.ID)
		if rec.Status.Terminal() {
			close(jb.doneCh)
			continue
		}
		// Unfinished (queued or running at the crash/drain): back on the
		// queue; its sweep journal makes the re-run skip finished work.
		jb.st.Status = StatusQueued
		s.fifo = append(s.fifo, jb)
		s.cResumed.Inc()
		cfg.Logf("lggd: resuming %s (%s, %d/%d runs done)", rec.ID, rec.Spec.Grid, rec.Done, rec.Total)
	}
	s.gQueue.Set(int64(len(s.fifo)))

	s.wg.Add(cfg.Jobs)
	for w := 0; w < cfg.Jobs; w++ {
		go s.worker()
	}
	return s, nil
}

// idNumber parses the numeric suffix of "job-%08d".
func idNumber(id string) (int, bool) {
	const p = "job-"
	if len(id) <= len(p) || id[:len(p)] != p {
		return 0, false
	}
	n, err := strconv.Atoi(id[len(p):])
	return n, err == nil
}

// Admit validates and enqueues a job. It returns the job's state and
// whether it was newly created (false = deduplicated by idempotency
// key). Shed and drain conditions return ErrOverloaded / ErrDraining
// with a Retry-After hint attached.
func (s *Server) Admit(spec JobSpec, key string) (JobState, bool, error) {
	spec = spec.WithDefaults()
	if key != "" {
		spec.IdempotencyKey = key
	}
	if err := spec.Validate(s.cfg.FindGrid); err != nil {
		return JobState{}, false, err
	}
	s.mu.Lock()
	if s.draining {
		ra := s.retryAfterLocked()
		s.mu.Unlock()
		return JobState{}, false, &Unavailable{Draining: true, RetryAfter: ra}
	}
	if spec.IdempotencyKey != "" {
		if id, ok := s.keys[spec.IdempotencyKey]; ok {
			jb := s.jobs[id]
			s.mu.Unlock()
			s.cDeduped.Inc()
			return jb.state(), false, nil
		}
	}
	if len(s.fifo) >= s.cfg.QueueDepth {
		ra := s.retryAfterLocked()
		s.mu.Unlock()
		s.cShed.Inc()
		return JobState{}, false, &Unavailable{RetryAfter: ra}
	}
	id := fmt.Sprintf("job-%08d", s.nextID)
	s.nextID++
	jb := &job{st: JobState{ID: id, Spec: spec, Status: StatusQueued}, doneCh: make(chan struct{})}
	if err := s.store.append(jb.st); err != nil {
		s.nextID-- // nothing was admitted
		s.mu.Unlock()
		return JobState{}, false, err
	}
	s.jobs[id] = jb
	s.order = append(s.order, id)
	if spec.IdempotencyKey != "" {
		s.keys[spec.IdempotencyKey] = id
	}
	s.fifo = append(s.fifo, jb)
	s.gQueue.Set(int64(len(s.fifo)))
	s.mu.Unlock()
	s.cAdmitted.Inc()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return jb.state(), true, nil
}

// Unavailable is the shed/drain/standby admission refusal; RetryAfter
// is the server's backoff hint in seconds.
type Unavailable struct {
	Draining bool
	// Standby marks a federation coordinator that is mirroring a live
	// primary: it refuses admission (503 + Retry-After) until a missed
	// heartbeat window promotes it. A client that keeps retrying against
	// a standby is therefore admitted the moment failover completes.
	Standby    bool
	RetryAfter int
}

func (u *Unavailable) Error() string {
	switch {
	case u.Draining:
		return "server draining, not admitting jobs"
	case u.Standby:
		return "coordinator is a standby; submit to the primary (or retry after failover)"
	default:
		return "admission queue full, job shed"
	}
}

// retryAfterLocked derives the Retry-After hint from the queue depth and
// the measured mean job duration: the expected time until a queue slot
// frees for a new arrival. Requires s.mu.
func (s *Server) retryAfterLocked() int {
	s.ewmaMu.Lock()
	mean := s.jobSecs
	s.ewmaMu.Unlock()
	if mean <= 0 {
		mean = 1
	}
	secs := int(math.Ceil(mean * float64(len(s.fifo)+1) / float64(s.cfg.Jobs)))
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

// observeJobSeconds feeds the duration EWMA behind Retry-After.
func (s *Server) observeJobSeconds(secs float64) {
	s.ewmaMu.Lock()
	if s.jobSecs == 0 {
		s.jobSecs = secs
	} else {
		s.jobSecs = 0.7*s.jobSecs + 0.3*secs
	}
	s.ewmaMu.Unlock()
}

// Job returns a job's state by id.
func (s *Server) Job(id string) (JobState, bool) {
	s.mu.Lock()
	jb, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobState{}, false
	}
	return jb.state(), true
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []JobState {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	m := s.jobs
	s.mu.Unlock()
	out := make([]JobState, 0, len(ids))
	for _, id := range ids {
		out = append(out, m[id].state())
	}
	return out
}

// Cancel requests cancellation of a job. Terminal jobs are left alone
// (the current state is returned); queued jobs become cancelled
// immediately; running jobs are cancelled mid-sweep, their journal
// keeping the finished prefix.
func (s *Server) Cancel(id string) (JobState, bool) {
	s.mu.Lock()
	jb, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobState{}, false
	}
	jb.mu.Lock()
	switch {
	case jb.st.Status.Terminal():
		jb.mu.Unlock()
	case jb.st.Status == StatusQueued:
		jb.cancelRequested = true
		jb.st.Status = StatusCancelled
		jb.st.Error = errClientCancel.Error()
		st := jb.st
		close(jb.doneCh)
		jb.mu.Unlock()
		s.cCancelled.Inc()
		s.persistState(st)
	default: // running
		jb.cancelRequested = true
		cancel := jb.cancel
		jb.mu.Unlock()
		if cancel != nil {
			cancel(errClientCancel)
		}
	}
	return jb.state(), true
}

// persistState appends a snapshot to the ledger, logging (not
// propagating) failures — an unwritable ledger must not wedge the
// daemon's control plane.
func (s *Server) persistState(st JobState) {
	if err := s.store.append(st); err != nil {
		s.cfg.Logf("lggd: ledger append for %s: %v", st.ID, err)
	}
}

// worker pops queued jobs and executes them until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		jb := s.pop()
		if jb == nil {
			return
		}
		s.execute(jb)
	}
}

// pop blocks until a job is available or the server drains. Draining
// stops dispatch even with a non-empty queue: queued jobs stay persisted
// and resume on the next start.
func (s *Server) pop() *job {
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return nil
		}
		if len(s.fifo) > 0 {
			jb := s.fifo[0]
			s.fifo = s.fifo[1:]
			s.gQueue.Set(int64(len(s.fifo)))
			s.mu.Unlock()
			return jb
		}
		s.mu.Unlock()
		select {
		case <-s.wake:
		case <-s.stopc:
			return nil
		}
	}
}

// execute runs one job to a terminal state (or to a drain checkpoint).
func (s *Server) execute(jb *job) {
	jb.mu.Lock()
	if jb.st.Status.Terminal() { // cancelled while queued
		jb.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	jb.cancel = cancel
	jb.st.Status = StatusRunning
	jb.st.Done, jb.st.Recovered, jb.st.Degraded, jb.st.Indeterminate = 0, 0, 0, 0
	spec := jb.st.Spec
	id := jb.st.ID
	st := jb.st
	jb.mu.Unlock()
	defer cancel(nil)
	s.persistState(st)
	s.gInflight.Add(1)
	defer s.gInflight.Add(-1)
	start := time.Now()

	g, err := s.cfg.FindGrid(spec.Grid)
	if err != nil {
		s.finish(jb, StatusFailed, err.Error())
		return
	}
	runs := g.Jobs(spec.Config())
	if spec.Faults != "" {
		if err := experiments.ApplyFaults(runs, spec.Faults); err != nil {
			s.finish(jb, StatusFailed, err.Error())
			return
		}
	}
	if spec.RunCount > 0 {
		// Range job (federation shard): execute only the requested
		// index window. Desc.Index stays global, so the results are the
		// exact lines an unsharded sweep would emit for these indices.
		if spec.RunStart+spec.RunCount > len(runs) {
			s.finish(jb, StatusFailed, fmt.Sprintf(
				"run range %d+%d exceeds the grid's %d runs", spec.RunStart, spec.RunCount, len(runs)))
			return
		}
		runs = runs[spec.RunStart : spec.RunStart+spec.RunCount]
	}
	journal, prefix, err := sweep.OpenJournalResume(s.store.journalPath(id), len(runs))
	if err != nil {
		s.finish(jb, StatusFailed, err.Error())
		return
	}
	jb.mu.Lock()
	jb.st.Total = len(runs)
	jb.mu.Unlock()

	runCtx := ctx
	if spec.TimeoutMS > 0 {
		var cancelT context.CancelFunc
		runCtx, cancelT = context.WithTimeout(ctx, time.Duration(spec.TimeoutMS)*time.Millisecond)
		defer cancelT()
	}
	runner := &sweep.Runner{
		Workers: s.cfg.SweepWorkers,
		Retries: s.cfg.Retries,
		Journal: journal,
		Resume:  prefix,
		OnResult: func(_ sweep.Job, res sweep.Result, _ *sim.Result) {
			jb.mu.Lock()
			jb.st.Done++
			switch res.Recovery {
			case "Recovered":
				jb.st.Recovered++
			case "Degraded":
				jb.st.Degraded++
			case "Indeterminate":
				jb.st.Indeterminate++
			}
			jb.mu.Unlock()
			s.cRuns.Inc()
		},
	}
	_, runErr := runner.RunWithContext(runCtx, runs)
	if cerr := journal.Close(); cerr != nil && runErr == nil {
		runErr = fmt.Errorf("journal close: %w", cerr)
	}
	s.observeJobSeconds(time.Since(start).Seconds())

	switch {
	case runErr == nil:
		s.finish(jb, StatusDone, "")
	case errors.Is(runErr, context.Canceled):
		if errors.Is(context.Cause(ctx), errDrain) {
			// Drain checkpoint: journal holds the finished prefix; the
			// job goes back to queued so the next start resumes it.
			jb.mu.Lock()
			jb.st.Status = StatusQueued
			st := jb.st
			jb.mu.Unlock()
			s.persistState(st)
			s.cfg.Logf("lggd: %s checkpointed at %d/%d runs for drain", id, st.Done, st.Total)
			return
		}
		s.finish(jb, StatusCancelled, errClientCancel.Error())
	case errors.Is(runErr, sweep.ErrTimeout) || errors.Is(runErr, context.DeadlineExceeded):
		s.finish(jb, StatusFailed, fmt.Sprintf("deadline exceeded after %dms", spec.TimeoutMS))
	default:
		s.finish(jb, StatusFailed, runErr.Error())
	}
}

// finish moves a job to a terminal state, persists it and wakes waiters.
func (s *Server) finish(jb *job, status JobStatus, errMsg string) {
	jb.mu.Lock()
	if jb.st.Status.Terminal() {
		jb.mu.Unlock()
		return
	}
	jb.st.Status = status
	jb.st.Error = errMsg
	st := jb.st
	close(jb.doneCh)
	jb.mu.Unlock()
	switch status {
	case StatusDone:
		s.cDone.Inc()
	case StatusFailed:
		s.cFailed.Inc()
	case StatusCancelled:
		s.cCancelled.Inc()
	}
	s.persistState(st)
	s.cfg.Logf("lggd: %s → %s (%d/%d runs)", st.ID, status, st.Done, st.Total)
}

// JournalPath reports where a job's sweep journal lives on disk (the
// federation byte-identity tests compare these files directly).
func (s *Server) JournalPath(id string) string {
	return s.store.journalPath(id)
}

// Draining reports whether admission is closed.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops the server: admission closes immediately
// (readyz → 503, submissions refused), queued jobs stay durably queued,
// and in-flight jobs get until ctx's deadline to finish. Jobs still
// running when the grace expires are cancelled mid-sweep — their
// journals keep every finished run — and left queued for the next
// start. Drain returns once every worker has flushed and the ledger is
// closed; it is safe to call once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("server: already draining")
	}
	s.draining = true
	s.mu.Unlock()
	s.gDraining.Set(1)
	close(s.stopc)

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
	case <-ctx.Done():
		// Grace expired: checkpoint in-flight jobs.
		s.mu.Lock()
		running := make([]*job, 0, len(s.order))
		for _, id := range s.order {
			running = append(running, s.jobs[id])
		}
		s.mu.Unlock()
		for _, jb := range running {
			jb.mu.Lock()
			cancel := jb.cancel
			active := jb.st.Status == StatusRunning
			jb.mu.Unlock()
			if active && cancel != nil {
				cancel(errDrain)
			}
		}
		<-workersDone
	}
	return s.store.close()
}
