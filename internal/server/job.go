package server

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/faults"
)

// JobSpec is the client-supplied description of a sweep job: which named
// grid to run and with what configuration. It is the JSON body of
// POST /v1/jobs and the durable identity of a job across daemon
// restarts — a resumed job re-derives its exact job list from the spec,
// which (by the sweep determinism contract) re-produces byte-identical
// results for the runs the journal has not yet recorded.
type JobSpec struct {
	// Grid names a registered sweep grid (experiments.SweepGrids).
	Grid string `json:"grid"`
	// Seed, Seeds, Horizon and Quick mirror experiments.Config; zero
	// values take the experiments defaults (seed 1, 8 replicas, horizon
	// 3000).
	Seed    uint64 `json:"seed,omitempty"`
	Seeds   int    `json:"seeds,omitempty"`
	Horizon int64  `json:"horizon,omitempty"`
	Quick   bool   `json:"quick,omitempty"`
	// Faults optionally injects a fault schedule into every run (text or
	// JSON form; @file is rejected — the daemon does not read client
	// paths).
	Faults string `json:"faults,omitempty"`
	// TimeoutMS, when positive, is the job's execution deadline in
	// milliseconds per attempt. The deadline propagates through the
	// sweep runner into sim.RunContext, so even a single enormous run is
	// cancelled mid-flight. A job killed by its deadline is terminal
	// (failed), not resumed.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IdempotencyKey deduplicates client retries: a second POST with the
	// same key returns the first job instead of admitting a new one. The
	// Idempotency-Key HTTP header takes precedence when both are set.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Tenant names the submitting tenant for admission accounting. A
	// single daemon records it but does not discriminate; the federation
	// coordinator enforces per-tenant quotas and fair-share dispatch on
	// it. Empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// RunStart / RunCount restrict the job to the contiguous run-index
	// range [RunStart, RunStart+RunCount) of the grid enumeration — the
	// unit of federation sharding. RunCount 0 means the whole grid.
	// Because every run's RNG stream derives only from the root seed and
	// its global index, a range job's results are byte-identical to the
	// same indices of an unsharded sweep, which is what makes the
	// coordinator's k-way merge byte-stable.
	RunStart int `json:"run_start,omitempty"`
	RunCount int `json:"run_count,omitempty"`
}

// WithDefaults fills unset fields from the experiments defaults.
// Exported because the federation coordinator normalizes a spec the
// same way the daemon's admission does, so the two agree on the grid
// enumeration a job shards over.
func (s JobSpec) WithDefaults() JobSpec {
	d := experiments.Defaults()
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	if s.Seeds <= 0 {
		s.Seeds = d.Seeds
	}
	if s.Horizon <= 0 {
		s.Horizon = d.Horizon
	}
	return s
}

// Config converts the spec to the experiments configuration it runs as.
func (s JobSpec) Config() experiments.Config {
	return experiments.Config{Seed: s.Seed, Seeds: s.Seeds, Horizon: s.Horizon, Quick: s.Quick}
}

// Validate rejects specs the daemon could never execute, before they
// are admitted (and persisted).
func (s JobSpec) Validate(find GridResolver) error {
	if s.Grid == "" {
		return fmt.Errorf("spec: grid is required")
	}
	if _, err := find(s.Grid); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if s.Seeds < 0 || s.Horizon < 0 || s.TimeoutMS < 0 {
		return fmt.Errorf("spec: negative seeds/horizon/timeout_ms")
	}
	if s.RunStart < 0 || s.RunCount < 0 {
		return fmt.Errorf("spec: negative run_start/run_count")
	}
	if s.RunStart > 0 && s.RunCount == 0 {
		return fmt.Errorf("spec: run_start without run_count (use run_count for a bounded range)")
	}
	if s.Faults != "" {
		if len(s.Faults) > 0 && s.Faults[0] == '@' {
			return fmt.Errorf("spec: @file fault schedules are not accepted over the API; inline the schedule")
		}
		if _, err := faults.Load(s.Faults); err != nil {
			return fmt.Errorf("spec: faults: %w", err)
		}
	}
	return nil
}

// GridResolver maps a grid name to its registered definition. The
// default is experiments.FindGrid; tests inject synthetic grids.
type GridResolver func(name string) (experiments.NamedGrid, error)

// JobStatus is the lifecycle state of a job.
type JobStatus string

const (
	// StatusQueued: admitted, waiting for a worker (also the state a
	// drained-but-unfinished job re-enters on restart).
	StatusQueued JobStatus = "queued"
	// StatusRunning: a worker is executing the sweep.
	StatusRunning JobStatus = "running"
	// StatusDone: every run finished; results are complete.
	StatusDone JobStatus = "done"
	// StatusFailed: the job hit a terminal error (bad spec at execution
	// time, journal write failure, or its deadline).
	StatusFailed JobStatus = "failed"
	// StatusCancelled: the client cancelled the job.
	StatusCancelled JobStatus = "cancelled"
)

// Terminal reports whether the status is final — terminal jobs are never
// resumed on restart and their results are immutable.
func (s JobStatus) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// JobState is the wire representation of a job, returned by every job
// endpoint.
type JobState struct {
	ID     string    `json:"id"`
	Spec   JobSpec   `json:"spec"`
	Status JobStatus `json:"status"`
	Error  string    `json:"error,omitempty"`
	// Done / Total count finished runs out of the job's sweep size
	// (Total is 0 until the job first starts and enumerates its grid).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Recovered / Degraded / Indeterminate aggregate the fault-recovery
	// verdicts of finished runs (zero for fault-free jobs).
	Recovered     int `json:"recovered,omitempty"`
	Degraded      int `json:"degraded,omitempty"`
	Indeterminate int `json:"indeterminate,omitempty"`
}
