package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// virtualClock drives the client's Now/Sleep/Rand hooks so backoff tests
// assert exact durations without real sleeping.
type virtualClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newClock() *virtualClock {
	return &virtualClock{now: time.Unix(1_000_000, 0)}
}

func (c *virtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return ctx.Err()
}

func (c *virtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *virtualClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

func newTestClient(t *testing.T, url string, clk *virtualClock, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		BaseURL: url,
		Now:     clk.Now,
		Sleep:   clk.Sleep,
		Rand:    func() float64 { return 1 }, // deterministic: full ceiling
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRetriesTransientFailuresWithBackoff(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"id":"job-00000000","status":"queued"}`))
	}))
	defer ts.Close()
	clk := newClock()
	c := newTestClient(t, ts.URL, clk, nil)

	st, err := c.Job(context.Background(), "job-00000000")
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-00000000" || calls != 3 {
		t.Fatalf("state %+v after %d calls", st, calls)
	}
	// With Rand=1 the full-jitter draw hits the ceiling: 100ms then 200ms.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	got := clk.Sleeps()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("backoff sleeps %v, want %v", got, want)
	}
}

func TestHonoursRetryAfterOnShed(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"id":"job-00000001","status":"queued"}`))
	}))
	defer ts.Close()
	clk := newClock()
	c := newTestClient(t, ts.URL, clk, nil)

	st, err := c.Submit(context.Background(), server.JobSpec{Grid: "unit"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-00000001" {
		t.Fatalf("state %+v", st)
	}
	got := clk.Sleeps()
	if len(got) != 1 || got[0] != 7*time.Second {
		t.Fatalf("sleeps %v, want exactly the server's 7s Retry-After", got)
	}
}

func TestSubmitRetriesCarryOneIdempotencyKey(t *testing.T) {
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		if len(keys) == 1 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"id":"job-00000002","status":"queued"}`))
	}))
	defer ts.Close()
	c := newTestClient(t, ts.URL, newClock(), nil)

	if _, err := c.Submit(context.Background(), server.JobSpec{Grid: "unit"}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("idempotency keys across retries: %q", keys)
	}
}

func TestDefinitive4xxDoesNotRetry(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer ts.Close()
	c := newTestClient(t, ts.URL, newClock(), nil)

	_, err := c.Job(context.Background(), "job-x")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err %v, want StatusError 404", err)
	}
	if calls != 1 {
		t.Fatalf("404 retried %d times", calls)
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	healthy := false
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if !healthy {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"id":"job-00000003","status":"done"}`))
	}))
	defer ts.Close()
	clk := newClock()
	c := newTestClient(t, ts.URL, clk, func(cfg *Config) {
		cfg.MaxAttempts = 3
		cfg.BreakerThreshold = 3
		cfg.BreakerCooldown = 10 * time.Second
	})

	// Three failed attempts trip the breaker mid-request.
	if _, err := c.Job(context.Background(), "job-00000003"); err == nil {
		t.Fatal("want error from failing daemon")
	}
	if calls != 3 {
		t.Fatalf("first request used %d attempts, want 3", calls)
	}
	// While open: fail fast, no network traffic.
	if _, err := c.Job(context.Background(), "job-00000003"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err %v, want ErrCircuitOpen", err)
	}
	if calls != 3 {
		t.Fatalf("open breaker still hit the network (%d calls)", calls)
	}
	// After the cooldown the half-open trial goes through and, with the
	// daemon healthy again, closes the circuit.
	healthy = true
	clk.Advance(11 * time.Second)
	st, err := c.Job(context.Background(), "job-00000003")
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != server.StatusDone || calls != 4 {
		t.Fatalf("post-recovery: %+v after %d calls", st, calls)
	}
	// And stays closed for the next call.
	if _, err := c.Job(context.Background(), "job-00000003"); err != nil {
		t.Fatal(err)
	}
}

func TestBackpressureDoesNotTripBreaker(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	clk := newClock()
	c := newTestClient(t, ts.URL, clk, func(cfg *Config) {
		cfg.MaxAttempts = 4
		cfg.BreakerThreshold = 2
	})

	_, err := c.Job(context.Background(), "job-x")
	if err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err %v: shedding must exhaust retries, not open the circuit", err)
	}
	if calls != 4 {
		t.Fatalf("shed request stopped after %d attempts, want all 4", calls)
	}
}

func TestBreakerCheckedBeforeBackoffSleep(t *testing.T) {
	// Regression: the breaker used to be checked AFTER the pre-retry
	// sleep, so a caller could sleep a full backoff (or a whole
	// Retry-After hint) and then fail with ErrCircuitOpen without ever
	// making the attempt. With the threshold at 1, the first failed
	// attempt opens the circuit; the retry loop must now fail fast with
	// zero sleeps, not sleep first and refuse after.
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	clk := newClock()
	c := newTestClient(t, ts.URL, clk, func(cfg *Config) {
		cfg.MaxAttempts = 3
		cfg.BreakerThreshold = 1
	})

	_, err := c.Job(context.Background(), "job-x")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err %v, want ErrCircuitOpen once the first failure trips the breaker", err)
	}
	if calls != 1 {
		t.Fatalf("open breaker still attempted (%d calls, want 1)", calls)
	}
	if got := clk.Sleeps(); len(got) != 0 {
		t.Fatalf("slept %v before refusing with an open circuit; the breaker must be checked before the backoff sleep", got)
	}
	// The refusal still names what the last attempt hit.
	if !strings.Contains(err.Error(), "500") {
		t.Fatalf("ErrCircuitOpen hides the last attempt's error: %v", err)
	}
}

func TestRetryAfterHTTPDateIsHonoured(t *testing.T) {
	// Regression: strconv.Atoi-only parsing silently degraded an RFC
	// 9110 HTTP-date Retry-After to "no hint" (jittered backoff). The
	// date form must be honoured exactly, relative to the client clock.
	clk := newClock()
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", clk.Now().Add(9*time.Second).UTC().Format(http.TimeFormat))
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"id":"job-00000009","status":"queued"}`))
	}))
	defer ts.Close()
	c := newTestClient(t, ts.URL, clk, nil)

	if _, err := c.Submit(context.Background(), server.JobSpec{Grid: "unit"}); err != nil {
		t.Fatal(err)
	}
	got := clk.Sleeps()
	if len(got) != 1 || got[0] != 9*time.Second {
		t.Fatalf("sleeps %v, want exactly the 9s until the Retry-After HTTP-date", got)
	}
}

func TestRetryAfterNegativeClampsToZero(t *testing.T) {
	// A negative delta-seconds (or a past HTTP-date) means "retry now";
	// it must clamp to a zero sleep, not fall back to jittered backoff.
	for name, header := range map[string]func(clk *virtualClock) string{
		"negative-delta": func(*virtualClock) string { return "-5" },
		"past-http-date": func(clk *virtualClock) string {
			return clk.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
		},
	} {
		t.Run(name, func(t *testing.T) {
			clk := newClock()
			var calls int
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls++
				if calls == 1 {
					w.Header().Set("Retry-After", header(clk))
					http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
					return
				}
				w.Write([]byte(`{"id":"job-00000010","status":"queued"}`))
			}))
			defer ts.Close()
			c := newTestClient(t, ts.URL, clk, nil)

			if _, err := c.Submit(context.Background(), server.JobSpec{Grid: "unit"}); err != nil {
				t.Fatal(err)
			}
			got := clk.Sleeps()
			if len(got) != 1 || got[0] != 0 {
				t.Fatalf("sleeps %v, want a single zero sleep (clamped hint), not jittered backoff", got)
			}
		})
	}
}

// roundTripFunc adapts a function to http.RoundTripper for fully
// deterministic transport-level tests.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestContextCancelKeepsAttemptError(t *testing.T) {
	// Regression: when ctx was cancelled after a failed attempt, do()
	// returned bare ctx.Err(), dropping what the attempt actually hit.
	// Both must surface: errors.Is sees the cancellation, the message
	// names the 500.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt := roundTripFunc(func(*http.Request) (*http.Response, error) {
		cancel() // the caller gives up while the attempt is in flight
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Body:       io.NopCloser(strings.NewReader(`{"error":"disk on fire"}`)),
			Header:     http.Header{},
		}, nil
	})
	clk := newClock()
	c := newTestClient(t, "http://lggd.invalid", clk, func(cfg *Config) {
		cfg.HTTP = &http.Client{Transport: rt}
	})

	_, err := c.Job(ctx, "job-x")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want a context.Canceled in the chain", err)
	}
	if !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("cancellation shadowed the attempt error: %v", err)
	}
}

func TestEndToEndAgainstRealServer(t *testing.T) {
	// The client against the real daemon handler: submit, wait, results.
	srv, err := server.New(server.Config{
		StateDir: t.TempDir(), Jobs: 1, SweepWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		srv.Drain(ctx)
	}()

	c, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, server.JobSpec{Grid: "faults", Quick: true, Seeds: 2, Horizon: 150, Faults: "down@40-80:e=1"})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != server.StatusDone || fin.Done != fin.Total || fin.Total == 0 {
		t.Fatalf("final state %+v", fin)
	}
	rs, err := c.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != fin.Total {
		t.Fatalf("results %d, want %d", len(rs), fin.Total)
	}
	verdicts := 0
	for _, r := range rs {
		if r.Recovery != "" {
			verdicts++
		}
	}
	if verdicts != len(rs) {
		t.Fatalf("only %d/%d results carry a recovery verdict", verdicts, len(rs))
	}
}

func TestRetryBudgetCapsBrownedOutPolling(t *testing.T) {
	// A browned-out coordinator answers every request with a 30s
	// Retry-After. Per-call backoff alone would burn
	// MaxAttempts×30s = 150s per logical request; the deadline-aware
	// budget must stop after the attempts that fit in 45s.
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"browned out"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	clk := newClock()
	c := newTestClient(t, ts.URL, clk, func(cfg *Config) {
		cfg.RetryBudget = 45 * time.Second
	})

	start := clk.Now()
	_, err := c.Job(context.Background(), "job-00000000")
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	// Attempt 1 at t=0, sleep 30s, attempt 2 at t=30s; the next 30s
	// sleep would end at t=60s > 45s, so exactly 2 attempts are made
	// and only the first sleep happens.
	if calls != 2 {
		t.Fatalf("server saw %d attempts, want 2 within the 45s budget", calls)
	}
	if got := clk.Sleeps(); len(got) != 1 || got[0] != 30*time.Second {
		t.Fatalf("sleeps %v, want exactly one 30s Retry-After sleep", got)
	}
	if elapsed := clk.Now().Sub(start); elapsed > 45*time.Second {
		t.Fatalf("logical request consumed %v, beyond its 45s budget", elapsed)
	}
}

func TestRetryBudgetZeroMeansUnbounded(t *testing.T) {
	// Without a budget the old contract holds: MaxAttempts bounds the
	// retries even when each one sleeps a long Retry-After.
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"browned out"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	clk := newClock()
	c := newTestClient(t, ts.URL, clk, func(cfg *Config) { cfg.MaxAttempts = 3 })

	_, err := c.Job(context.Background(), "job-00000000")
	if err == nil || errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want attempts-exhausted error", err)
	}
	if calls != 3 {
		t.Fatalf("server saw %d attempts, want MaxAttempts=3", calls)
	}
}
