// Package client is the Go client for the lggd daemon: a thin HTTP/JSON
// wrapper hardened the way the server expects its callers to behave.
// Every request retries transient failures with exponential backoff and
// full jitter, honours the server's Retry-After backpressure hint (the
// 429 shed and the 503 drain refusal), auto-generates idempotency keys
// so retried submissions never duplicate a job, and trips a
// consecutive-failure circuit breaker so a dead daemon fails fast
// instead of stacking timed-out connections.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/sweep"
)

// ErrCircuitOpen is returned without touching the network while the
// breaker cools down after too many consecutive failures.
var ErrCircuitOpen = errors.New("client: circuit open, daemon failing")

// ErrRetryBudget is returned when a logical request gives up because
// its next retry would overrun the configured RetryBudget.
var ErrRetryBudget = errors.New("client: retry budget exhausted")

// StatusError is a non-retryable HTTP error response (4xx other than
// 429).
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("lggd: %d: %s", e.Code, e.Msg)
}

// Config tunes a Client; only BaseURL is required.
type Config struct {
	// BaseURL is the daemon address, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds tries per request, first included (default 5).
	MaxAttempts int
	// BaseBackoff / MaxBackoff shape the exponential backoff: attempt n
	// sleeps rand[0, min(MaxBackoff, BaseBackoff·2ⁿ)) — full jitter —
	// unless the server sent Retry-After, which is honoured exactly
	// (capped at MaxRetryAfter). Defaults 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxRetryAfter caps how long a Retry-After hint is obeyed
	// (default 30s).
	MaxRetryAfter time.Duration
	// BreakerThreshold consecutive failures (network errors or 5xx
	// without Retry-After) open the circuit for BreakerCooldown, after
	// which one trial request half-opens it. Defaults 5 / 10s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RetryBudget, when positive, deadline-caps each logical request:
	// all attempts and backoff sleeps of one call must fit inside the
	// budget, and a retry whose sleep would overrun it is not made
	// (ErrRetryBudget instead). MaxAttempts bounds the count; the
	// budget bounds the wall clock, so a browned-out server answering
	// every attempt with a long Retry-After costs at most RetryBudget,
	// not MaxAttempts·MaxRetryAfter. Zero disables the cap.
	RetryBudget time.Duration

	// Test hooks: virtual time and deterministic jitter. Production
	// leaves them nil.
	Now   func() time.Time
	Sleep func(context.Context, time.Duration) error
	Rand  func() float64
}

// Client talks to one lggd daemon. Safe for concurrent use.
type Client struct {
	cfg Config

	mu        sync.Mutex
	failures  int       // consecutive failures
	openUntil time.Time // breaker closed when zero / in the past
}

// New builds a client with defaults filled in.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: BaseURL is required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if !strings.Contains(cfg.BaseURL, "://") {
		cfg.BaseURL = "http://" + cfg.BaseURL
	}
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 30 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	if cfg.Rand == nil {
		cfg.Rand = mrand.Float64
	}
	return &Client{cfg: cfg}, nil
}

// breakerAllow reports whether a request may proceed. A cooled-down open
// breaker lets exactly one trial through (half-open) by moving openUntil
// forward; its outcome closes or re-opens the circuit.
func (c *Client) breakerAllow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openUntil.IsZero() || c.cfg.Now().After(c.openUntil) {
		if !c.openUntil.IsZero() {
			// Half-open: block other callers until this trial resolves.
			c.openUntil = c.cfg.Now().Add(c.cfg.BreakerCooldown)
		}
		return true
	}
	return false
}

func (c *Client) breakerRecord(failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !failed {
		c.failures = 0
		c.openUntil = time.Time{}
		return
	}
	c.failures++
	if c.failures >= c.cfg.BreakerThreshold {
		c.openUntil = c.cfg.Now().Add(c.cfg.BreakerCooldown)
	}
}

// backoff returns the pre-retry sleep for attempt (0-based) given the
// server's Retry-After hint in seconds (-1 = none).
func (c *Client) backoff(attempt, retryAfter int) time.Duration {
	if retryAfter >= 0 {
		d := time.Duration(retryAfter) * time.Second
		if d > c.cfg.MaxRetryAfter {
			d = c.cfg.MaxRetryAfter
		}
		return d
	}
	ceil := float64(c.cfg.BaseBackoff) * math.Pow(2, float64(attempt))
	if m := float64(c.cfg.MaxBackoff); ceil > m {
		ceil = m
	}
	return time.Duration(c.cfg.Rand() * ceil)
}

// do runs one request with retries. The body factory rebuilds the body
// per attempt. On success the response body bytes are returned.
func (c *Client) do(ctx context.Context, method, path string, body []byte, hdr http.Header) ([]byte, error) {
	var lastErr error
	var budgetEnd time.Time // zero = no budget
	if c.cfg.RetryBudget > 0 {
		budgetEnd = c.cfg.Now().Add(c.cfg.RetryBudget)
	}
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		// The breaker gates the attempt BEFORE any backoff sleep: a
		// circuit opened by the previous attempt (or a concurrent
		// request) must fail fast, not after the caller has honoured a
		// full Retry-After hint only to be refused without a request.
		if !c.breakerAllow() {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last attempt: %w)", ErrCircuitOpen, lastErr)
			}
			return nil, ErrCircuitOpen
		}
		if attempt > 0 {
			retryAfter := -1
			var bp *backpressureError
			if errors.As(lastErr, &bp) {
				retryAfter = bp.retryAfter
			}
			d := c.backoff(attempt-1, retryAfter)
			// Deadline-aware budget: a retry that cannot complete its
			// sleep before the budget ends is not worth starting — give
			// up now instead of sleeping into an overrun.
			if !budgetEnd.IsZero() && c.cfg.Now().Add(d).After(budgetEnd) {
				return nil, fmt.Errorf("client: %s %s: %w after %d attempts in %v (last attempt: %w)",
					method, path, ErrRetryBudget, attempt, c.cfg.RetryBudget, lastErr)
			}
			if err := c.cfg.Sleep(ctx, d); err != nil {
				return nil, fmt.Errorf("client: %s %s: %w (last attempt: %w)", method, path, err, lastErr)
			}
		}
		raw, err := c.attempt(ctx, method, path, body, hdr)
		if err == nil {
			c.breakerRecord(false)
			return raw, nil
		}
		var se *StatusError
		var bp *backpressureError
		switch {
		case errors.As(err, &se):
			// Definitive 4xx: the server is healthy and said no.
			c.breakerRecord(false)
			return nil, err
		case errors.As(err, &bp):
			// Backpressure (429/503 + Retry-After): the server is alive
			// and shedding by design — retry later, don't count it
			// against the breaker.
			c.breakerRecord(false)
		default:
			c.breakerRecord(true)
		}
		if ctx.Err() != nil {
			// Keep the attempt error visible next to the cancellation:
			// "context deadline exceeded" alone tells an operator nothing
			// about what the last request actually hit.
			return nil, fmt.Errorf("client: %s %s: %w (last attempt: %w)", method, path, ctx.Err(), err)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("client: %s %s failed after %d attempts: %w",
		method, path, c.cfg.MaxAttempts, lastErr)
}

// backpressureError is a retryable shed/drain refusal.
type backpressureError struct {
	code       int
	retryAfter int
}

func (e *backpressureError) Error() string {
	return fmt.Sprintf("lggd: %d (retry after %ds)", e.code, e.retryAfter)
}

// parseRetryAfter decodes a Retry-After header into whole seconds.
// RFC 9110 allows both delta-seconds and an HTTP-date; a negative delta
// (or a date already in the past) means "retry now", not "no hint" —
// degrading either form to jittered backoff would wait longer than the
// server asked. Returns -1 only for a missing or unparseable header.
func (c *Client) parseRetryAfter(h string) int {
	h = strings.TrimSpace(h)
	if h == "" {
		return -1
	}
	if n, err := strconv.Atoi(h); err == nil {
		if n < 0 {
			return 0
		}
		return n
	}
	if t, err := http.ParseTime(h); err == nil {
		d := t.Sub(c.cfg.Now())
		if d <= 0 {
			return 0
		}
		return int(math.Ceil(d.Seconds()))
	}
	return -1
}

func (c *Client) attempt(ctx context.Context, method, path string, body []byte, hdr http.Header) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch {
	case resp.StatusCode < 300:
		return raw, nil
	case resp.StatusCode == http.StatusTooManyRequests ||
		(resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != ""):
		return nil, &backpressureError{
			code:       resp.StatusCode,
			retryAfter: c.parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	case resp.StatusCode >= 500:
		return nil, fmt.Errorf("lggd: %d: %s", resp.StatusCode, errBody(raw))
	default:
		return nil, &StatusError{Code: resp.StatusCode, Msg: errBody(raw)}
	}
}

func errBody(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// Submit admits a job. A missing idempotency key is generated, so the
// at-least-once retry loop can never double-submit.
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (server.JobState, error) {
	if spec.IdempotencyKey == "" {
		spec.IdempotencyKey = newKey()
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return server.JobState{}, err
	}
	hdr := http.Header{"Idempotency-Key": {spec.IdempotencyKey}}
	raw, err := c.do(ctx, "POST", "/v1/jobs", body, hdr)
	if err != nil {
		return server.JobState{}, err
	}
	var st server.JobState
	if err := json.Unmarshal(raw, &st); err != nil {
		return server.JobState{}, fmt.Errorf("client: decode job state: %w", err)
	}
	return st, nil
}

func newKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Never expected; a weak key only weakens dedup, not correctness.
		return fmt.Sprintf("k-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Ping checks the daemon's liveness endpoint, with the usual retry
// policy. Coordinators use it to validate a worker before admitting it
// to a fleet.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.do(ctx, "GET", "/healthz", nil, nil)
	return err
}

// Job fetches a job's state.
func (c *Client) Job(ctx context.Context, id string) (server.JobState, error) {
	raw, err := c.do(ctx, "GET", "/v1/jobs/"+id, nil, nil)
	if err != nil {
		return server.JobState{}, err
	}
	var st server.JobState
	if err := json.Unmarshal(raw, &st); err != nil {
		return server.JobState{}, fmt.Errorf("client: decode job state: %w", err)
	}
	return st, nil
}

// Cancel requests cancellation and returns the resulting state.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobState, error) {
	raw, err := c.do(ctx, "DELETE", "/v1/jobs/"+id, nil, nil)
	if err != nil {
		return server.JobState{}, err
	}
	var st server.JobState
	if err := json.Unmarshal(raw, &st); err != nil {
		return server.JobState{}, fmt.Errorf("client: decode job state: %w", err)
	}
	return st, nil
}

// Fleet fetches a coordinator's live-worker view: each member's URL,
// liveness state, age since last contact, and scheduling health.
func (c *Client) Fleet(ctx context.Context) ([]server.FleetMember, error) {
	raw, err := c.do(ctx, "GET", "/v1/fleet", nil, nil)
	if err != nil {
		return nil, err
	}
	var ms []server.FleetMember
	if err := json.Unmarshal(raw, &ms); err != nil {
		return nil, fmt.Errorf("client: decode fleet: %w", err)
	}
	return ms, nil
}

// CoordinatorStatus fetches a coordinator's heartbeat payload: epoch,
// role, fleet view and full job list. Standby coordinators poll it to
// mirror the primary and to detect its death.
func (c *Client) CoordinatorStatus(ctx context.Context) (server.CoordStatus, error) {
	raw, err := c.do(ctx, "GET", "/v1/coordinator/status", nil, nil)
	if err != nil {
		return server.CoordStatus{}, err
	}
	var st server.CoordStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return server.CoordStatus{}, fmt.Errorf("client: decode coordinator status: %w", err)
	}
	return st, nil
}

// Wait polls until the job is terminal (the poll cadence rides the same
// injectable Sleep as the retry loop).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (server.JobState, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Status.Terminal() {
			return st, nil
		}
		if err := c.cfg.Sleep(ctx, poll); err != nil {
			return st, err
		}
	}
}

// Results fetches a terminal job's results as decoded sweep results.
// (Calling it on a live job streams until the job finishes.)
func (c *Client) Results(ctx context.Context, id string) ([]sweep.Result, error) {
	raw, err := c.do(ctx, "GET", "/v1/jobs/"+id+"/results", nil, nil)
	if err != nil {
		return nil, err
	}
	var rs []sweep.Result
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var r sweep.Result
		if err := dec.Decode(&r); err != nil {
			if errors.Is(err, io.EOF) {
				return rs, nil
			}
			return nil, fmt.Errorf("client: decode results: %w", err)
		}
		rs = append(rs, r)
	}
}
