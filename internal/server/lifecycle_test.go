package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitDone polls a server until the job is terminal.
func waitDone(t *testing.T, s *Server, id string) JobState {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.Status.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never finished")
	return JobState{}
}

// TestDrainRestartByteIdentical is the daemon's end-to-end durability
// contract: a job interrupted mid-sweep by a drain (the SIGTERM path in
// cmd/lggd) and finished by a fresh daemon on the same state directory
// produces byte-for-byte the results an uninterrupted daemon produces.
func TestDrainRestartByteIdentical(t *testing.T) {
	spec := JobSpec{Grid: "unit", Seeds: 6, Horizon: 400_000}
	dirA := t.TempDir()
	dirB := t.TempDir()

	// Reference: uninterrupted execution on state dir B.
	ref, _ := newTestServer(t, Config{Jobs: 1, StateDir: dirB})
	refSt, _, err := ref.Admit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	refDone := waitDone(t, ref, refSt.ID)
	if refDone.Status != StatusDone {
		t.Fatalf("reference job: %+v", refDone)
	}
	drain(t, ref)
	refBytes, err := os.ReadFile(filepath.Join(dirB, "results", refSt.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted execution on state dir A: drain after the first run
	// lands, while the sweep is still mid-flight.
	s1, _ := newTestServer(t, Config{Jobs: 1, StateDir: dirA})
	st, _, err := s1.Admit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, _ := s1.Job(st.ID)
		if got.Done >= 1 && got.Status == StatusRunning {
			break
		}
		if got.Status.Terminal() {
			t.Fatalf("job finished before the drain could interrupt it: %+v — grow Horizon", got)
		}
		if time.Now().After(deadline) {
			t.Fatal("first run never landed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	drain(t, s1) // immediate grace expiry → checkpoint-cancel

	// The interrupted job is durably queued with a partial journal.
	mid, err := os.ReadFile(filepath.Join(dirA, "results", st.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	midLines := strings.Count(string(mid), "\n") - 1 // minus header
	if midLines < 1 || midLines >= 6 {
		t.Fatalf("checkpoint has %d result lines, want mid-flight (1..5)", midLines)
	}

	// Restart on the same state directory: the job resumes and finishes.
	s2, err := New(Config{Jobs: 1, StateDir: dirA, SweepWorkers: 2, FindGrid: unitResolver()})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.cResumed.Value(); got != 1 {
		t.Fatalf("%s = %d after restart, want 1", MetricJobsResumed, got)
	}
	fin := waitDone(t, s2, st.ID)
	if fin.Status != StatusDone || fin.Done != 6 || fin.Total != 6 {
		t.Fatalf("resumed job: %+v", fin)
	}
	drain(t, s2)

	gotBytes, err := os.ReadFile(filepath.Join(dirA, "results", st.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(refBytes) {
		t.Fatalf("resumed results differ from uninterrupted results:\n--- resumed (%d bytes)\n%s\n--- reference (%d bytes)\n%s",
			len(gotBytes), gotBytes, len(refBytes), refBytes)
	}
}

// TestRestartResumesQueuedJobs: jobs still queued at the drain (never
// started) survive the restart too, in submission order.
func TestRestartResumesQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	s1, _ := newTestServer(t, Config{Jobs: 1, QueueDepth: 8, StateDir: dir})
	// Worker pinned by an unbounded job; two more queue behind it.
	blocker, _, err := s1.Admit(JobSpec{Grid: "unit", Seeds: 1, Horizon: 1 << 40}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s1, blocker.ID, StatusRunning)
	var queued []string
	for i := 0; i < 2; i++ {
		st, _, err := s1.Admit(JobSpec{Grid: "unit", Seeds: 2, Horizon: 150}, fmt.Sprintf("q%d", i))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, st.ID)
	}
	drain(t, s1)

	s2, err := New(Config{Jobs: 1, StateDir: dir, SweepWorkers: 2, FindGrid: unitResolver()})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.cResumed.Value(); got != 3 {
		t.Fatalf("resumed %d jobs, want 3 (1 interrupted + 2 queued)", got)
	}
	// Cancel the unbounded blocker so the queued jobs get the worker.
	if _, ok := s2.Cancel(blocker.ID); !ok {
		t.Fatal("blocker vanished across restart")
	}
	for _, id := range queued {
		if st := waitDone(t, s2, id); st.Status != StatusDone {
			t.Fatalf("queued job %s after restart: %+v", id, st)
		}
	}
	// Idempotency keys survive restart: re-submitting q0 dedups.
	st, created, err := s2.Admit(JobSpec{Grid: "unit", Seeds: 2, Horizon: 150}, "q0")
	if err != nil {
		t.Fatal(err)
	}
	if created || st.ID != queued[0] {
		t.Fatalf("key q0 after restart: created=%v id=%s, want dedup to %s", created, st.ID, queued[0])
	}
	drain(t, s2)
}

// TestLedgerTornTailTolerated: a crash mid-append leaves a torn final
// line; the restart truncates it and every whole-line snapshot stands.
func TestLedgerTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s1, _ := newTestServer(t, Config{Jobs: 1, StateDir: dir})
	st, _, err := s1.Admit(JobSpec{Grid: "unit", Seeds: 2, Horizon: 150}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s1, st.ID)
	drain(t, s1)

	ledger := filepath.Join(dir, "jobs.jsonl")
	f, err := os.OpenFile(ledger, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"job-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := New(Config{Jobs: 1, StateDir: dir, SweepWorkers: 2, FindGrid: unitResolver()})
	if err != nil {
		t.Fatalf("torn ledger tail rejected: %v", err)
	}
	got, ok := s2.Job(st.ID)
	if !ok || got.Status != StatusDone {
		t.Fatalf("job after torn-tail restart: %+v (ok=%v)", got, ok)
	}
	// The truncated ledger accepts appends again: submit another job.
	st2, _, err := s2.Admit(JobSpec{Grid: "unit", Seeds: 1, Horizon: 100}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s2, st2.ID)
	drain(t, s2)

	// And the final ledger replays clean.
	raw, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("ledger line %d invalid after recovery: %q", i, line)
		}
	}
}
