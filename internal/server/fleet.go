package server

// Wire types for the federation control plane. They live in this
// package — not internal/server/federation — because they are shared
// vocabulary: the coordinator serves them, the client package decodes
// them, and a standby coordinator mirrors them from its primary. Keeping
// them next to JobSpec/JobState means every party that can already talk
// the job API can talk the fleet API without importing the federation
// implementation.

// WorkerHealth is one worker's scheduling health as scored by a
// coordinator: an EWMA of observed service rate, the attempt
// success/failure tallies, and the adaptive straggler lease the
// coordinator would grant the worker's next range. Exported at
// GET /v1/fleet so brown-outs are observable, and mirrored by standby
// coordinators so a freshly promoted primary starts with a warm view.
type WorkerHealth struct {
	// EWMARunsPerSec is the smoothed observed service rate across the
	// worker's completed ranges (0 until the first completion).
	EWMARunsPerSec float64 `json:"ewma_runs_per_sec"`
	// ErrShare is the smoothed share of attempts that failed (0..1).
	ErrShare float64 `json:"err_share"`
	// DeclaredRunsPerSec is the capacity hint the worker self-reported
	// when joining the fleet (0 when none was declared). Dispatch weights
	// a worker by max(declared, observed EWMA), so a declared capacity
	// shapes placement before the first range completes.
	DeclaredRunsPerSec float64 `json:"declared_runs_per_sec,omitempty"`
	// Successes / Failures count completed and failed range attempts.
	Successes int64 `json:"successes"`
	Failures  int64 `json:"failures"`
	// BrownedOut reports that the coordinator has stopped dispatching to
	// this worker because its error share crossed the brown-out
	// threshold; it drains and is re-probed after a cooldown.
	BrownedOut bool `json:"browned_out,omitempty"`
	// LeaseMS is the adaptive straggler lease, in milliseconds, the
	// coordinator would grant this worker for a default-sized range.
	LeaseMS int64 `json:"lease_ms"`
}

// FleetMember is one entry of a coordinator's live-worker view, served
// at GET /v1/fleet. AgeMS (time since the worker was last heard from)
// rather than an absolute timestamp is exchanged between coordinators'
// anti-entropy rounds, so their clocks never need to agree.
type FleetMember struct {
	URL string `json:"url"`
	// State is "alive" or "suspect" (past the suspicion threshold
	// without contact; next stop is removal from the fleet).
	State string `json:"state"`
	AgeMS int64  `json:"age_ms"`
	// Health is the coordinator's scheduling score for this worker.
	Health WorkerHealth `json:"health"`
}

// CoordStatus is the coordinator heartbeat payload at
// GET /v1/coordinator/status: the leadership epoch, the role, the fleet
// view and every known job's state. A standby coordinator polls it to
// mirror the primary's ledger and detect its death; operators read it
// for a one-call picture of the federation.
type CoordStatus struct {
	// Epoch increments at every leadership change (a standby promoting
	// itself), so two coordinators' histories are totally ordered.
	Epoch int64 `json:"epoch"`
	// Role is "primary" (dispatching) or "standby" (mirroring).
	Role string `json:"role"`
	// Rank is the coordinator's fixed position in the failover order:
	// 0 for the configured primary, 1 for the first standby, and so on.
	// Rank never changes at runtime — it breaks ties when two
	// coordinators claim the same epoch after a healed partition (the
	// lower rank wins and the higher demotes itself).
	Rank int `json:"rank"`
	// Fleet is the live-worker view (same payload as GET /v1/fleet).
	Fleet []FleetMember `json:"fleet"`
	// Jobs lists every known job in submission order.
	Jobs []JobState `json:"jobs"`
}

// Coordinator role names used in CoordStatus.Role.
const (
	RolePrimary = "primary"
	RoleStandby = "standby"
)
