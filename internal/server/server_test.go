package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// unitResolver serves a single synthetic grid ("unit") whose size and run
// length come entirely from the spec, so tests dial jobs from
// milliseconds to effectively unbounded via seeds/horizon.
func unitResolver() GridResolver {
	ng := experiments.NamedGrid{
		Name: "unit",
		Desc: "synthetic test grid",
		Jobs: func(cfg experiments.Config) []sweep.Job {
			g := &sweep.Grid{
				Name: "unit", BaseSeed: cfg.Seed, Replicas: cfg.Seeds, Horizon: cfg.Horizon,
				Networks: []sweep.Network{{Name: "line(5)", New: func() *core.Spec {
					return core.NewSpec(graph.Line(5)).SetSource(0, 1).SetSink(4, 1)
				}}},
			}
			return g.Jobs()
		},
	}
	return func(name string) (experiments.NamedGrid, error) {
		if name == "unit" {
			return ng, nil
		}
		return experiments.NamedGrid{}, fmt.Errorf("unknown grid %q", name)
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	if cfg.FindGrid == nil {
		cfg.FindGrid = unitResolver()
	}
	if cfg.SweepWorkers == 0 {
		cfg.SweepWorkers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// expiredContext returns an already-cancelled context: Drain with it
// skips the grace period and checkpoints immediately.
func expiredContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx, cancel
}

// drain shuts a test server down with an immediate checkpoint-cancel.
func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := expiredContext()
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec, key string) (*http.Response, JobState) {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobState
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &st)
	return resp, st
}

func waitStatus(t *testing.T, s *Server, id string, want JobStatus) JobState {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.Status == want {
			return st
		}
		if st.Status.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.Status, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobState{}
}

func TestSubmitRunResults(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	defer drain(t, s)

	resp, st := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 3, Horizon: 150}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.Status != StatusQueued {
		t.Fatalf("submit state: %+v", st)
	}
	done := waitStatus(t, s, st.ID, StatusDone)
	if done.Total != 3 || done.Done != 3 {
		t.Fatalf("done counts: %+v", done)
	}

	// Status over HTTP.
	hr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobState
	if err := json.NewDecoder(hr.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if got.Status != StatusDone {
		t.Fatalf("HTTP status: %+v", got)
	}

	// Results stream: one JSONL line per run, in index order.
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("results: %d lines, want 3:\n%s", len(lines), raw)
	}
	for i, ln := range lines {
		var res sweep.Result
		if err := json.Unmarshal([]byte(ln), &res); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if res.Index != i {
			t.Fatalf("line %d carries index %d", i, res.Index)
		}
	}

	// Unknown job → 404.
	nr, _ := http.Get(ts.URL + "/v1/jobs/job-99999999")
	nr.Body.Close()
	if nr.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: got %d, want 404", nr.StatusCode)
	}
}

func TestResultsStreamFollowsLiveJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	defer drain(t, s)

	// Long enough that the stream attaches while the sweep is running.
	_, st := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 4, Horizon: 300_000}, "")
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(rr.Body) // blocks until the job is terminal
	rr.Body.Close()
	if n := strings.Count(string(raw), "\n"); n != 4 {
		t.Fatalf("followed stream has %d lines, want 4", n)
	}
	if st, _ := s.Job(st.ID); st.Status != StatusDone {
		t.Fatalf("job after stream: %+v", st)
	}
}

func TestIdempotencyKeyDeduplicates(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	defer drain(t, s)

	r1, st1 := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 2, Horizon: 100}, "retry-123")
	r2, st2 := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 2, Horizon: 100}, "retry-123")
	if r1.StatusCode != http.StatusAccepted || r2.StatusCode != http.StatusOK {
		t.Fatalf("codes: %d then %d, want 202 then 200", r1.StatusCode, r2.StatusCode)
	}
	if st1.ID != st2.ID {
		t.Fatalf("idempotent retry created a second job: %s vs %s", st1.ID, st2.ID)
	}
	// A different key is a different job.
	_, st3 := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 2, Horizon: 100}, "retry-456")
	if st3.ID == st1.ID {
		t.Fatal("distinct keys shared a job")
	}
	waitStatus(t, s, st1.ID, StatusDone)
	waitStatus(t, s, st3.ID, StatusDone)
}

func TestOverloadShedsWithRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1, QueueDepth: 1})
	defer drain(t, s)

	// Occupy the single worker with an effectively unbounded job...
	_, running := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 1, Horizon: 1 << 40}, "")
	waitStatus(t, s, running.ID, StatusRunning)
	// ...fill the queue...
	r2, queued := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 1, Horizon: 100}, "fill")
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("queue fill: got %d, want 202", r2.StatusCode)
	}
	// ...and the next arrival is shed with a backoff hint.
	r3, _ := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 1, Horizon: 100}, "")
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: got %d, want 429", r3.StatusCode)
	}
	ra, err := strconv.Atoi(r3.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", r3.Header.Get("Retry-After"))
	}
	if got := s.cShed.Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricShed, got)
	}
	// An idempotent retry of an already-admitted job is NOT shed even at
	// full queue — the dedup hit answers before the depth check.
	r4, dup := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 1, Horizon: 100}, "fill")
	if r4.StatusCode != http.StatusOK || dup.ID != queued.ID {
		t.Fatalf("dedup at full queue: got %d / %s, want 200 / %s", r4.StatusCode, dup.ID, queued.ID)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1, QueueDepth: 4})
	defer drain(t, s)

	_, running := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 1, Horizon: 1 << 40}, "")
	waitStatus(t, s, running.ID, StatusRunning)
	_, queued := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 1, Horizon: 100}, "")

	// Cancel the queued job: immediate, terminal, never runs.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobState
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Status != StatusCancelled {
		t.Fatalf("queued cancel: %+v", st)
	}

	// Cancel the running job: the sweep stops mid-run.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, _ := s.Job(running.ID)
		if st.Status == StatusCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("running job never cancelled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Cancelling a terminal job is a no-op that reports the final state.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Status != StatusCancelled {
		t.Fatalf("re-cancel: %+v", st)
	}
}

func TestDeadlinePropagatesIntoRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	defer drain(t, s)

	// A single run far too large to finish: only mid-run cancellation via
	// sim.RunContext can stop it.
	_, st := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 1, Horizon: 1 << 40, TimeoutMS: 100}, "")
	deadline := time.Now().Add(15 * time.Second)
	for {
		got, _ := s.Job(st.ID)
		if got.Status == StatusFailed {
			if !strings.Contains(got.Error, "deadline") {
				t.Fatalf("failed without a deadline error: %q", got.Error)
			}
			break
		}
		if got.Status.Terminal() {
			t.Fatalf("unexpected terminal state: %+v", got)
		}
		if time.Now().After(deadline) {
			t.Fatalf("deadline never fired: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBadSpecsRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	defer drain(t, s)
	for name, spec := range map[string]JobSpec{
		"missing grid":  {},
		"unknown grid":  {Grid: "nope"},
		"at-file fault": {Grid: "unit", Faults: "@/etc/passwd"},
		"bad fault":     {Grid: "unit", Faults: "???"},
		"negative":      {Grid: "unit", TimeoutMS: -1},
	} {
		resp, _ := postJob(t, ts, spec, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", name, resp.StatusCode)
		}
	}
	// Unknown JSON fields are rejected, catching client typos.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"grid":"unit","sedes":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: got %d, want 400", resp.StatusCode)
	}
}

func TestHealthReadyMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: got %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, m := range []string{MetricQueueDepth, MetricInflight, MetricShed, MetricDraining} {
		if !strings.Contains(string(raw), m) {
			t.Errorf("metrics scrape missing %s", m)
		}
	}

	// Draining flips readyz to 503 and refuses submissions with 503 +
	// Retry-After, distinct from the 429 shed.
	drain(t, s)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: got %d, want 503", resp.StatusCode)
	}
	sr, _ := postJob(t, ts, JobSpec{Grid: "unit", Seeds: 1, Horizon: 100}, "")
	if sr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: got %d, want 503", sr.StatusCode)
	}
	if sr.Header.Get("Retry-After") == "" {
		t.Fatal("draining refusal carries no Retry-After")
	}
}
