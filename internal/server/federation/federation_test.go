package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/sweep"
)

// unitResolver mirrors the server package's synthetic grid: a "unit"
// grid whose run count is seeds (one line(5) network), so tests size
// jobs precisely. perRun, when non-zero, is injected into every Build —
// the hook that makes one worker a straggler without changing a single
// result byte.
func unitResolver(perRun func()) server.GridResolver {
	ng := experiments.NamedGrid{
		Name: "unit",
		Desc: "synthetic test grid",
		Jobs: func(cfg experiments.Config) []sweep.Job {
			g := &sweep.Grid{
				Name: "unit", BaseSeed: cfg.Seed, Replicas: cfg.Seeds, Horizon: cfg.Horizon,
				Networks: []sweep.Network{{Name: "line(5)", New: func() *core.Spec {
					return core.NewSpec(graph.Line(5)).SetSource(0, 1).SetSink(4, 1)
				}}},
			}
			jobs := g.Jobs()
			if perRun != nil {
				for i := range jobs {
					build := jobs[i].Build
					jobs[i].Build = func(seed uint64) *core.Engine {
						perRun()
						return build(seed)
					}
				}
			}
			return jobs
		},
	}
	return func(name string) (experiments.NamedGrid, error) {
		if name == "unit" {
			return ng, nil
		}
		return experiments.NamedGrid{}, fmt.Errorf("unknown grid %q", name)
	}
}

// newWorker starts one lggd daemon and returns its base URL.
func newWorker(t *testing.T, perRun func()) (*server.Server, string) {
	t.Helper()
	s, err := server.New(server.Config{
		StateDir:     t.TempDir(),
		Jobs:         2,
		SweepWorkers: 2,
		FindGrid:     unitResolver(perRun),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = s.Drain(ctx)
	})
	return s, ts.URL
}

// newCoordinator starts a coordinator over the given worker URLs.
func newCoordinator(t *testing.T, cfg Config, workers ...string) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	cfg.Workers = append(cfg.Workers, workers...)
	if cfg.FindGrid == nil {
		cfg.FindGrid = unitResolver(nil)
	}
	if cfg.Poll == 0 {
		cfg.Poll = 20 * time.Millisecond
	}
	if cfg.Client.MaxAttempts == 0 {
		cfg.Client.MaxAttempts = 2
	}
	if cfg.Client.BaseBackoff == 0 {
		cfg.Client.BaseBackoff = 10 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = c.Drain(ctx)
	})
	return c, ts
}

func waitTerminal(t *testing.T, c *Coordinator, id string, timeout time.Duration) server.JobState {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, ok := c.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.Status.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never went terminal within %v", id, timeout)
	return server.JobState{}
}

// singleDaemonJournal runs spec on a standalone daemon and returns the
// raw journal bytes — the byte-identity reference for every federated
// variant.
func singleDaemonJournal(t *testing.T, spec server.JobSpec) []byte {
	t.Helper()
	s, url := newWorker(t, nil)
	cli, err := client.New(client.Config{BaseURL: url})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := cli.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cli.Wait(ctx, st.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if st.Status != server.StatusDone {
		t.Fatalf("reference job ended %s: %s", st.Status, st.Error)
	}
	raw, err := os.ReadFile(s.JournalPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func testSpec(seeds int) server.JobSpec {
	return server.JobSpec{Grid: "unit", Seeds: seeds, Horizon: 150}
}

func TestFederatedSweepMatchesSingleDaemonBytes(t *testing.T) {
	spec := testSpec(13) // deliberately not a multiple of RangeRuns
	ref := singleDaemonJournal(t, spec)

	var urls []string
	for i := 0; i < 3; i++ {
		_, url := newWorker(t, nil)
		urls = append(urls, url)
	}
	c, _ := newCoordinator(t, Config{RangeRuns: 4}, urls...)
	st, created, err := c.Admit(spec, "")
	if err != nil || !created {
		t.Fatalf("admit: created=%v err=%v", created, err)
	}
	final := waitTerminal(t, c, st.ID, 60*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("federated job ended %s: %s", final.Status, final.Error)
	}
	if final.Done != 13 || final.Total != 13 {
		t.Fatalf("done %d/%d, want 13/13", final.Done, final.Total)
	}
	got, err := os.ReadFile(c.JournalPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("merged journal differs from the single-daemon journal")
	}
}

func TestStragglerRangeIsStolenAndBytesStillMatch(t *testing.T) {
	spec := testSpec(8)
	ref := singleDaemonJournal(t, spec)

	// Worker A stalls indefinitely per run — far past the lease — while
	// worker B is healthy. Every range leased to A must be stolen by B
	// before A finishes anything, and the merged bytes must not care.
	// The stall is released at cleanup (registered after the daemons, so
	// it runs first) to keep teardown instant.
	stall := make(chan struct{})
	slow := func() { <-stall }
	_, slowURL := newWorker(t, slow)
	_, fastURL := newWorker(t, nil)
	reg := metrics.NewRegistry()
	c, _ := newCoordinator(t, Config{
		RangeRuns: 4,
		Lease:     150 * time.Millisecond,
		StealMax:  2,
		Registry:  reg,
	}, slowURL, fastURL)
	t.Cleanup(func() { close(stall) })

	st, _, err := c.Admit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, c, st.ID, 60*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	got, err := os.ReadFile(c.JournalPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("merged journal with a stolen range differs from the single-daemon bytes")
	}
	if stolen := reg.Counter(MetricRangesStolen, "").Value(); stolen == 0 {
		t.Fatal("no range was stolen despite a wedged worker")
	}
}

func TestRangesRerouteAroundDeadWorker(t *testing.T) {
	spec := testSpec(8)
	ref := singleDaemonJournal(t, spec)

	// One fleet member is a black hole (nothing listens there). Attempts
	// routed to it fail fast and relaunch on the live workers.
	dead := "http://127.0.0.1:1" // reserved port: connection refused
	_, liveURL := newWorker(t, nil)
	c, _ := newCoordinator(t, Config{RangeRuns: 4, Lease: 2 * time.Second}, dead, liveURL)

	st, _, err := c.Admit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, c, st.ID, 60*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	got, err := os.ReadFile(c.JournalPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("merged journal differs after rerouting around a dead worker")
	}
}

func TestTenantQueueFairShareAndQuota(t *testing.T) {
	q := newTenantQueue(2, 10)
	mk := func(id string) *cjob { return &cjob{st: server.JobState{ID: id}} }

	// Tenant a floods first; b submits one job later. Fair-share pops
	// must alternate a, b rather than draining a's backlog first.
	a1, a2, b1 := mk("a1"), mk("a2"), mk("b1")
	q.push("a", a1)
	q.push("a", a2)
	q.push("b", b1)

	if got := q.pop(); got != a1 {
		t.Fatalf("pop 1: got %s, want a1", got.st.ID)
	}
	if got := q.pop(); got != b1 {
		t.Fatalf("pop 2: got %s, want b1 (fair share)", got.st.ID)
	}
	if got := q.pop(); got != a2 {
		t.Fatalf("pop 3: got %s, want a2", got.st.ID)
	}
	if q.pop() != nil {
		t.Fatal("pop 4: queue should be empty")
	}

	// a still holds 2 live jobs (popped but not released) → over quota;
	// b holds 1 → admissible.
	if over, _ := q.admissible("a"); !over {
		t.Fatal("tenant a should be over its quota of 2")
	}
	if over, _ := q.admissible("b"); over {
		t.Fatal("tenant b should be under quota")
	}
	q.release("a")
	if over, _ := q.admissible("a"); over {
		t.Fatal("tenant a should be admissible after a release")
	}

	// Shared depth bound.
	q2 := newTenantQueue(0, 1)
	q2.push("x", mk("x1"))
	if _, full := q2.admissible("y"); !full {
		t.Fatal("queue of depth 1 with 1 queued should be full")
	}
}

func TestTenantQuotaRefusesWithRetryAfterHTTP(t *testing.T) {
	// A worker that naps per run keeps jobs live long enough for the
	// quota to bite.
	_, url := newWorker(t, func() { time.Sleep(50 * time.Millisecond) })
	_, ts := newCoordinator(t, Config{TenantQuota: 2, Jobs: 1}, url)

	submit := func(tenant string) *http.Response {
		spec := testSpec(4)
		spec.Tenant = tenant
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := submit("acme"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: %d", resp.StatusCode)
	}
	if resp := submit("acme"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: %d", resp.StatusCode)
	}
	resp := submit("acme")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3: got %d, want 429 (quota)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota refusal carried no Retry-After")
	}
	// Another tenant is unaffected by acme's quota exhaustion.
	if resp := submit("globex"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant: got %d, want 202", resp.StatusCode)
	}
}

func TestResultsEndpointServesCompactedSummaries(t *testing.T) {
	spec := testSpec(6)
	_, url := newWorker(t, nil)
	c, ts := newCoordinator(t, Config{RangeRuns: 3}, url)
	st, _, err := c.Admit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, c, st.ID, 60*time.Second); final.Status != server.StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/results?job=" + st.ID + "&router=lgg")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cells []CellSummary
	if err := json.NewDecoder(resp.Body).Decode(&cells); err != nil {
		t.Fatal(err)
	}
	// unit grid: one network × one router × one variant = one cell of 6
	// replicas.
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	if cells[0].Replicas != 6 || cells[0].Job != st.ID || cells[0].Network != "line(5)" {
		t.Fatalf("unexpected summary %+v", cells[0])
	}
	// A filter that matches nothing returns empty, not an error.
	resp2, err := http.Get(ts.URL + "/v1/results?router=nosuch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var none []CellSummary
	if err := json.NewDecoder(resp2.Body).Decode(&none); err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("filter miss returned %d cells", len(none))
	}
}

func TestKeepJournalsEvictsCompactedJournals(t *testing.T) {
	_, url := newWorker(t, nil)
	c, _ := newCoordinator(t, Config{RangeRuns: 4, KeepJournals: 1}, url)
	var ids []string
	for i := 0; i < 2; i++ {
		spec := testSpec(4)
		spec.Seed = uint64(i + 1) // distinct jobs
		st, _, err := c.Admit(spec, "")
		if err != nil {
			t.Fatal(err)
		}
		if final := waitTerminal(t, c, st.ID, 60*time.Second); final.Status != server.StatusDone {
			t.Fatalf("job %d ended %s: %s", i, final.Status, final.Error)
		}
		ids = append(ids, st.ID)
	}
	if _, err := os.Stat(c.JournalPath(ids[0])); !os.IsNotExist(err) {
		t.Fatalf("journal of evicted job %s still on disk (err %v)", ids[0], err)
	}
	if _, err := os.Stat(c.JournalPath(ids[1])); err != nil {
		t.Fatalf("journal of most recent job should be kept: %v", err)
	}
	// Evicted jobs stay queryable through the compacted index.
	if cells := c.rstore.query(ResultFilter{Job: ids[0]}); len(cells) != 1 {
		t.Fatalf("evicted job has %d summaries, want 1", len(cells))
	}
}

func TestFleetJoinValidatesWorker(t *testing.T) {
	_, ts := newCoordinator(t, Config{})
	join := func(url string) *http.Response {
		body, _ := json.Marshal(joinRequest{URL: url})
		resp, err := http.Post(ts.URL+"/v1/fleet/join", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := join("http://127.0.0.1:1"); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead worker join: got %d, want 502", resp.StatusCode)
	}
	_, url := newWorker(t, nil)
	if resp := join(url); resp.StatusCode != http.StatusOK {
		t.Fatalf("live worker join: got %d, want 200", resp.StatusCode)
	}
	// Re-registration is idempotent.
	if resp := join(url); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-join: got %d, want 200", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fleet []server.FleetMember
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 1 || fleet[0].URL != url {
		t.Fatalf("fleet %+v, want exactly one member %s", fleet, url)
	}
	if fleet[0].State != stateAlive {
		t.Fatalf("freshly joined worker is %q, want %q", fleet[0].State, stateAlive)
	}
}

func TestAdmitRejectsRangeSpecs(t *testing.T) {
	_, url := newWorker(t, nil)
	c, _ := newCoordinator(t, Config{}, url)
	spec := testSpec(4)
	spec.RunCount = 2
	if _, _, err := c.Admit(spec, ""); err == nil {
		t.Fatal("coordinator accepted a pre-sharded range spec")
	}
}
