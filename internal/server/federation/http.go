package federation

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/server"
)

// Handler returns the coordinator's HTTP API. The job surface is
// deliberately identical to a single daemon's (same paths, same
// request/response bodies, same 429/503 + Retry-After backpressure), so
// any lggd client — including cmd/lggsweep -remote — can point at a
// coordinator unchanged. On top:
//
//	POST /v1/fleet/join          a worker registers itself ({"url": ...},
//	                             optionally with a capacity_runs_per_sec
//	                             hint); the coordinator liveness-checks it
//	                             (with a bounded timeout) before admission
//	GET  /v1/fleet               the current fleet in join order, each
//	                             member with liveness state, age and
//	                             scheduling health ([]server.FleetMember)
//	GET  /v1/coordinator/status  the heartbeat payload: epoch, role, fleet
//	                             and full job list (server.CoordStatus);
//	                             standbys poll it to mirror the primary
//	GET  /v1/results             compacted per-cell summaries of finished
//	                             jobs, filterable by
//	                             ?job=&tenant=&grid=&network=&router=
//
// A standby coordinator serves the same surface read-only: submissions
// are refused with 503 + Retry-After until a failover promotes it, and
// /readyz reports unready.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := c.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := c.Cancel(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/results", c.handleResults)
	mux.HandleFunc("POST /v1/fleet/join", c.handleJoin)
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.FleetMembers())
	})
	mux.HandleFunc("GET /v1/coordinator/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("GET /v1/results", c.handleSummaries)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch {
		case c.Draining():
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
		case c.Standby():
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "standby")
		default:
			fmt.Fprintln(w, "ready")
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := c.reg.WriteProm(w); err != nil {
			c.cfg.Logf("lggfed: metrics write: %v", err)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "decode spec: %v", err)
			return
		}
	}
	st, created, err := c.Admit(spec, r.Header.Get("Idempotency-Key"))
	if err != nil {
		var u *server.Unavailable
		if errors.As(err, &u) {
			w.Header().Set("Retry-After", strconv.Itoa(u.RetryAfter))
			code := http.StatusTooManyRequests
			if u.Draining || u.Standby {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, "%s", u.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if !created {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleResults streams the job's merged journal with the exact framing
// a single daemon uses (server.StreamJournal), following live merges
// until the job is terminal. A follower therefore reads results in
// global index order as the contiguous merged prefix grows, no matter
// which workers produced them or in what order.
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	jb, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	server.StreamJournal(w, r, c.ledger.JournalPath(id), jb.terminal, jb.doneCh, c.stopc)
}

// joinRequest is the body of POST /v1/fleet/join. Workers re-POST it
// periodically as a heartbeat, so a capacity hint refreshes on every
// beat.
type joinRequest struct {
	URL string `json:"url"`
	// Capacity is the worker's self-declared service rate in runs per
	// second (optional; 0 = undeclared). Dispatch weights the worker by
	// max(declared, observed EWMA), so the hint shapes placement before
	// the first range completes but never overrides observation
	// downward.
	Capacity float64 `json:"capacity_runs_per_sec,omitempty"`
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode join: %v", err)
		return
	}
	if req.URL == "" {
		writeError(w, http.StatusBadRequest, "join: url is required")
		return
	}
	if c.Draining() {
		writeError(w, http.StatusServiceUnavailable, "coordinator draining")
		return
	}
	if req.Capacity < 0 {
		writeError(w, http.StatusBadRequest, "join: capacity_runs_per_sec must be non-negative")
		return
	}
	if err := c.addWorker(req.URL, true); err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	c.health.declare(req.URL, req.Capacity)
	writeJSON(w, http.StatusOK, struct {
		Workers int `json:"workers"`
	}{len(c.Fleet())})
}

// handleSummaries serves the compacted result index.
func (c *Coordinator) handleSummaries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	out := c.rstore.query(ResultFilter{
		Job:     q.Get("job"),
		Tenant:  q.Get("tenant"),
		Grid:    q.Get("grid"),
		Network: q.Get("network"),
		Router:  q.Get("router"),
	})
	writeJSON(w, http.StatusOK, out)
}
