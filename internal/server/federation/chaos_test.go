package federation

import (
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
	"repro/internal/sweep"
)

// TestShippedChaosSchedulesHoldInvariants runs a federated sweep under
// every shipped chaos schedule, with the injector spliced into the
// coordinator's worker-facing HTTP transport, and asserts the four
// serving-plane invariants:
//
//  1. the merged journal is byte-identical to an unfaulted run;
//  2. every run index appears exactly once (no duplicated effects);
//  3. no admitted job is lost — every one reaches a terminal state;
//  4. retry amplification is bounded: total submission attempts stay
//     within a small factor of the run count.
//
// The partition schedule addresses coordinator-to-coordinator routes
// (rank1>primary), so against worker traffic it injects nothing — the
// invariants then assert the trivially healthy case, and the rank
// failover tests plus the chaos smoke script cover the partition
// topology itself.
func TestShippedChaosSchedulesHoldInvariants(t *testing.T) {
	spec := server.JobSpec{Grid: "unit", Seeds: 12, Horizon: 150}
	ref := singleDaemonJournal(t, spec)

	for name, sched := range chaos.Shipped() {
		t.Run(name, func(t *testing.T) {
			in := chaos.MustInjector(sched, 42)
			var urls []string
			for i := 0; i < 2; i++ {
				_, u := newWorker(t, nil)
				urls = append(urls, u)
				pu, err := url.Parse(u)
				if err != nil {
					t.Fatal(err)
				}
				in.Register(fmt.Sprintf("worker%d", i+1), pu.Host)
			}
			cfg := Config{RangeRuns: 3}
			// The chaos suite exercises the dispatch plane, not the
			// client breaker: give each worker client enough attempts to
			// outlast a fault window and keep the breaker out of the way.
			cfg.Client.MaxAttempts = 4
			cfg.Client.BreakerThreshold = 100
			cfg.Client.HTTP = &http.Client{Transport: in.Transport("coordinator", nil)}
			c, _ := newCoordinator(t, cfg, urls...)

			st, created, err := c.Admit(spec, "")
			if err != nil || !created {
				t.Fatalf("admit: created=%v err=%v", created, err)
			}
			final := waitTerminal(t, c, st.ID, 120*time.Second)

			var rep chaos.Report
			if final.Status != server.StatusDone {
				rep.Violationf("job ended %s under %s: %s", final.Status, name, final.Error)
			}
			got, err := os.ReadFile(c.JournalPath(st.ID))
			if err != nil {
				t.Fatal(err)
			}
			rep.Check(chaos.ByteIdentical("merged journal", got, ref))

			rs, err := sweep.ReadJournalResults(c.JournalPath(st.ID), spec.Seeds)
			if err != nil {
				t.Fatalf("read merged journal: %v", err)
			}
			indices := make([]int, len(rs))
			for i, r := range rs {
				indices[i] = r.Index
			}
			rep.Check(chaos.CompleteOnce(indices, spec.Seeds))

			rep.Check(chaos.NoJobLost([]string{st.ID},
				func(id string) (string, bool) {
					js, ok := c.Job(id)
					return string(js.Status), ok
				},
				func(s string) bool { return server.JobStatus(s).Terminal() }))

			rep.Check(chaos.BoundedRetries(in.RequestsMatching("POST /v1/jobs"), spec.Seeds, 4))

			if err := rep.Err(); err != nil {
				var b strings.Builder
				_ = in.WriteTranscript(&b)
				t.Fatalf("invariants violated under %q:\n%v\ninjected events:\n%s", name, err, b.String())
			}
			if name != "partition-each-rank" && len(in.Transcript()) == 0 {
				t.Errorf("schedule %q injected nothing into the worker plane", name)
			}
		})
	}
}
