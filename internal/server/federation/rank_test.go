package federation

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
)

// TestRankOrderedFailover is the multi-standby tentpole scenario: a
// primary and two standbys ranked 1 and 2. When the primary dies
// mid-sweep, rank 1 promotes while rank 2 — which watches BOTH the
// primary and rank 1 — keeps following and starts mirroring rank 1's
// reign. When rank 1 then dies too, rank 2 promotes past every epoch it
// observed and finishes the job byte-identical to an unfailed run.
func TestRankOrderedFailover(t *testing.T) {
	spec := server.JobSpec{Grid: "unit", Seeds: 24, Horizon: 150}
	ref := singleDaemonJournal(t, spec)

	// Slow the runs down so the job outlives two failover windows.
	var urls []string
	for i := 0; i < 2; i++ {
		_, url := newWorker(t, func() { time.Sleep(100 * time.Millisecond) })
		urls = append(urls, url)
	}
	primary, primaryTS := newCoordinator(t, Config{RangeRuns: 2}, urls...)

	rank1, rank1TS := newCoordinator(t, Config{
		Standby:       true,
		Primary:       primaryTS.URL,
		Rank:          1,
		Heartbeat:     40 * time.Millisecond,
		FailoverAfter: 300 * time.Millisecond,
		RangeRuns:     2,
	})
	reg2 := metrics.NewRegistry()
	rank2, _ := newCoordinator(t, Config{
		Standby:       true,
		Primary:       primaryTS.URL,
		Watch:         []string{rank1TS.URL},
		Rank:          2,
		Heartbeat:     40 * time.Millisecond,
		FailoverAfter: 300 * time.Millisecond,
		RangeRuns:     2,
		Registry:      reg2,
	})
	if got := rank2.Status().Rank; got != 2 {
		t.Fatalf("rank 2 coordinator reports rank %d", got)
	}

	st, created, err := primary.Admit(spec, "")
	if err != nil || !created {
		t.Fatalf("admit: created=%v err=%v", created, err)
	}

	// Wait until the sweep is in flight AND both standbys have mirrored
	// the job non-terminal from the primary's heartbeats.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("standbys never mirrored the in-flight job")
		}
		pst, _ := primary.Job(st.ID)
		s1, ok1 := rank1.Job(st.ID)
		s2, ok2 := rank2.Job(st.ID)
		if pst.Done > 0 && !pst.Status.Terminal() &&
			ok1 && !s1.Status.Terminal() && ok2 && !s2.Status.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the primary's frontend. Rank 1 must promote; rank 2 must NOT
	// (rank 1 is alive in its upstream chain).
	primaryTS.Close()
	promoted := time.Now().Add(20 * time.Second)
	for rank1.Standby() {
		if time.Now().After(promoted) {
			t.Fatal("rank 1 never promoted itself")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Rank 2 proves it retargeted mirroring onto rank 1 by observing
	// rank 1's epoch (≥ 2); only then is killing rank 1 meaningful.
	mirrored := time.Now().Add(20 * time.Second)
	for {
		rank2.mu.Lock()
		me := rank2.mirrorEpoch
		rank2.mu.Unlock()
		if me >= 2 {
			break
		}
		if time.Now().After(mirrored) {
			t.Fatal("rank 2 never mirrored rank 1's reign")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !rank2.Standby() {
		t.Fatal("rank 2 promoted itself while rank 1 was alive")
	}
	if jst, _ := rank1.Job(st.ID); jst.Status.Terminal() {
		t.Fatal("job finished before rank 1 could be killed; slow the runs down")
	}

	// Kill rank 1 too: with the whole upstream chain silent, rank 2
	// assumes leadership past every epoch it has seen.
	rank1TS.Close()
	promoted = time.Now().Add(20 * time.Second)
	for rank2.Standby() {
		if time.Now().After(promoted) {
			t.Fatal("rank 2 never promoted itself after rank 1 died")
		}
		time.Sleep(5 * time.Millisecond)
	}

	final := waitTerminal(t, rank2, st.ID, 60*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("resumed job ended %s: %s", final.Status, final.Error)
	}
	got, err := os.ReadFile(rank2.JournalPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("post-double-failover merged journal differs from the unfailed run")
	}
	if v := reg2.Gauge(MetricEpoch, "").Value(); v < 3 {
		t.Fatalf("rank 2 epoch = %d, want ≥ 3 (it observed rank 1's reign)", v)
	}
	if cs := rank2.Status(); cs.Role != server.RolePrimary || cs.Rank != 2 {
		t.Fatalf("rank 2 status = role %q rank %d, want primary/2", cs.Role, cs.Rank)
	}
}

// TestPromotedPrimaryDemotesToHigherAuthority is the split-brain
// regression test: an acting primary that sees a watched coordinator
// claim the primary role at a higher epoch must step down — refuse
// admission as a standby, checkpoint (not lose) its running jobs,
// re-mirror from the winner — and, if the winner later dies, promote
// again past the winner's epoch and finish the job byte-identically.
func TestPromotedPrimaryDemotesToHigherAuthority(t *testing.T) {
	spec := server.JobSpec{Grid: "unit", Seeds: 24, Horizon: 150}
	ref := singleDaemonJournal(t, spec)

	var authoritative atomic.Bool
	winner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/coordinator/status" || !authoritative.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(server.CoordStatus{
			Epoch: 5,
			Role:  server.RolePrimary,
			Rank:  0,
			Jobs: []server.JobState{{
				ID:     "job-00000777",
				Spec:   server.JobSpec{Grid: "unit", Seeds: 1},
				Status: server.StatusDone,
			}},
		})
	}))
	defer winner.Close()

	var urls []string
	for i := 0; i < 2; i++ {
		_, url := newWorker(t, func() { time.Sleep(100 * time.Millisecond) })
		urls = append(urls, url)
	}
	reg := metrics.NewRegistry()
	c, _ := newCoordinator(t, Config{
		Rank:          1,
		Watch:         []string{winner.URL},
		Heartbeat:     30 * time.Millisecond,
		FailoverAfter: 300 * time.Millisecond,
		RangeRuns:     2,
		Registry:      reg,
	}, urls...)

	st, created, err := c.Admit(spec, "")
	if err != nil || !created {
		t.Fatalf("admit: created=%v err=%v", created, err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never got in flight")
		}
		jst, _ := c.Job(st.ID)
		if jst.Done > 0 && !jst.Status.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The watched coordinator starts claiming primacy at epoch 5 > 1:
	// the guard loop must demote us.
	authoritative.Store(true)
	demoted := time.Now().Add(20 * time.Second)
	for !c.Standby() {
		if time.Now().After(demoted) {
			t.Fatal("acting primary never demoted itself")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := reg.Counter(MetricDemotions, "").Value(); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricDemotions, v)
	}

	// No split-brain dispatch: admission now refuses as a standby.
	_, _, err = c.Admit(server.JobSpec{Grid: "unit", Seeds: 1, Horizon: 150}, "")
	var u *server.Unavailable
	if !errors.As(err, &u) || !u.Standby {
		t.Fatalf("demoted coordinator admitted a job (err=%v), want standby refusal", err)
	}

	// The running job was checkpointed back to queued, not lost or
	// failed — its merged prefix stays durable for the next promotion.
	checkpointed := time.Now().Add(20 * time.Second)
	for {
		jst, ok := c.Job(st.ID)
		if !ok {
			t.Fatal("job vanished across the demotion")
		}
		if jst.Status == server.StatusQueued {
			break
		}
		if jst.Status.Terminal() {
			t.Fatalf("job ended %s across the demotion, want queued checkpoint", jst.Status)
		}
		if time.Now().After(checkpointed) {
			t.Fatalf("job stuck in %s after demotion, want queued", jst.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Re-mirror: the winner's job ledger folds into ours while we follow.
	remirrored := time.Now().Add(20 * time.Second)
	for {
		if _, ok := c.Job("job-00000777"); ok {
			break
		}
		if time.Now().After(remirrored) {
			t.Fatal("demoted coordinator never mirrored the winner's ledger")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The winner dies; we must promote again PAST its epoch and finish
	// the checkpointed job with byte-identical output.
	winner.Close()
	repromoted := time.Now().Add(20 * time.Second)
	for c.Standby() {
		if time.Now().After(repromoted) {
			t.Fatal("demoted coordinator never re-promoted after the winner died")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := reg.Gauge(MetricEpoch, "").Value(); v < 6 {
		t.Fatalf("re-promoted epoch = %d, want ≥ 6 (the winner held epoch 5)", v)
	}
	final := waitTerminal(t, c, st.ID, 60*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("checkpointed job ended %s: %s", final.Status, final.Error)
	}
	got, err := os.ReadFile(c.JournalPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("post-demotion merged journal differs from the unfailed run")
	}
}

// TestCapacityWeightedDispatch: with declared capacities 4:1, five
// consecutive placements (none released) land 4:1 — each worker absorbs
// outstanding ranges in proportion to its effective rate.
func TestCapacityWeightedDispatch(t *testing.T) {
	w1, w2 := "http://192.0.2.1:1", "http://192.0.2.2:1"
	c, _ := newCoordinator(t, Config{}, w1, w2)
	c.health.declare(w1, 4)
	c.health.declare(w2, 1)
	counts := map[string]int{}
	for i := 0; i < 5; i++ {
		w := c.nextWorker(nil)
		if w == nil {
			t.Fatal("nextWorker returned nil with two live workers")
		}
		counts[w.url]++
	}
	if counts[w1] != 4 || counts[w2] != 1 {
		t.Fatalf("placement = %v, want 4:1 by declared capacity", counts)
	}
	c.releaseWorker(w1)
	c.mu.Lock()
	out := c.outstanding[w1]
	c.mu.Unlock()
	if out != 3 {
		t.Fatalf("outstanding after release = %d, want 3", out)
	}
}

// TestJoinDeclaresCapacity: the join payload's capacity hint lands in
// the health board and the fleet export; negative hints are rejected.
func TestJoinDeclaresCapacity(t *testing.T) {
	_, wurl := newWorker(t, nil)
	c, ts := newCoordinator(t, Config{})

	body := fmt.Sprintf(`{"url":%q,"capacity_runs_per_sec":12.5}`, wurl)
	resp, err := http.Post(ts.URL+"/v1/fleet/join", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join with capacity answered %d, want 200", resp.StatusCode)
	}
	if r := c.health.effectiveRate(wurl); r != 12.5 {
		t.Fatalf("effectiveRate = %v, want declared 12.5", r)
	}
	found := false
	for _, m := range c.FleetMembers() {
		if m.URL == wurl && m.Health.DeclaredRunsPerSec == 12.5 {
			found = true
		}
	}
	if !found {
		t.Fatal("declared capacity missing from the fleet export")
	}

	bad := fmt.Sprintf(`{"url":%q,"capacity_runs_per_sec":-1}`, wurl)
	resp, err = http.Post(ts.URL+"/v1/fleet/join", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative capacity answered %d, want 400", resp.StatusCode)
	}
}

// TestDeclaredCapacityFeedsLeases: a declared capacity replaces the
// cold-start lease ceiling, and observation above the declaration wins.
func TestDeclaredCapacityFeedsLeases(t *testing.T) {
	h := newHealthBoard(HealthConfig{}, time.Minute, nil)
	if got := h.lease("w", 8); got != time.Minute {
		t.Fatalf("cold-start lease = %v, want the 1m ceiling", got)
	}
	h.declare("w", 4)
	if got := h.lease("w", 8); got != 6*time.Second {
		t.Fatalf("declared-capacity lease = %v, want 3·8/4 = 6s", got)
	}
	if r := h.effectiveRate("w"); r != 4 {
		t.Fatalf("effectiveRate = %v, want declared 4", r)
	}
	h.success("w", 80, time.Second) // observed 80 runs/sec > declared
	if r := h.effectiveRate("w"); r != 80 {
		t.Fatalf("effectiveRate = %v, want observed 80", r)
	}
}
