package federation

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// vclock is the injectable clock for membership/health tests: time only
// moves when the test says so, so suspicion and brown-out windows are
// exact instead of sleep-raced.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVClock() *vclock { return &vclock{t: time.Unix(1000, 0)} }

func (c *vclock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// fleetWire renders a membership view as the gossip wire payload.
func fleetWire(m *membership) []server.FleetMember {
	rows := m.view()
	out := make([]server.FleetMember, 0, len(rows))
	for _, r := range rows {
		out = append(out, server.FleetMember{URL: r.url, State: r.state, AgeMS: r.age.Milliseconds()})
	}
	return out
}

func TestMembershipSuspicionAndAgeOut(t *testing.T) {
	clk := newVClock()
	m := newMembership(75*time.Second, 150*time.Second, clk.now)
	if !m.observe("http://w1") {
		t.Fatal("first observe did not report a new member")
	}
	if m.observe("http://w1") {
		t.Fatal("re-observe reported the member as new")
	}

	clk.advance(60 * time.Second)
	if v := m.view(); v[0].state != stateAlive {
		t.Fatalf("at 60s the member is %q, want alive until 75s", v[0].state)
	}
	if m.suspected("http://w1") {
		t.Fatal("suspected before the threshold")
	}

	clk.advance(20 * time.Second) // 80s without contact
	if v := m.view(); v[0].state != stateSuspect {
		t.Fatalf("at 80s the member is %q, want suspect", v[0].state)
	}
	if !m.suspected("http://w1") {
		t.Fatal("not suspected past the threshold")
	}
	if dead := m.sweepDead(); len(dead) != 0 {
		t.Fatalf("swept %v before the death threshold", dead)
	}

	// Contact clears suspicion.
	m.observe("http://w1")
	if v := m.view(); v[0].state != stateAlive {
		t.Fatalf("after fresh contact the member is %q, want alive", v[0].state)
	}

	clk.advance(150 * time.Second)
	if dead := m.sweepDead(); len(dead) != 1 || dead[0] != "http://w1" {
		t.Fatalf("sweepDead = %v, want [http://w1]", dead)
	}
	if m.size() != 0 {
		t.Fatalf("member survived its own death: size %d", m.size())
	}
}

// TestMembershipGossipConvergesAndAgesOut drives two membership tables
// with no seed overlap through gossip exchanges on a virtual clock:
// they converge on the union, gossip keeps a live worker fresh on the
// coordinator that never talks to it directly, and a departed worker
// ages out of BOTH views within the suspicion→death window — without
// being resurrected by continued gossip.
func TestMembershipGossipConvergesAndAgesOut(t *testing.T) {
	clk := newVClock()
	a := newMembership(75*time.Second, 150*time.Second, clk.now)
	b := newMembership(75*time.Second, 150*time.Second, clk.now)
	a.observe("http://w1")
	b.observe("http://w2")

	exchange := func() {
		av, bv := fleetWire(a), fleetWire(b)
		a.merge(bv)
		b.merge(av)
	}
	exchange()
	if a.size() != 2 || b.size() != 2 {
		t.Fatalf("after one exchange sizes are %d/%d, want 2/2", a.size(), b.size())
	}
	for _, m := range []*membership{a, b} {
		urls := map[string]bool{}
		for _, row := range m.view() {
			urls[row.url] = true
		}
		if !urls["http://w1"] || !urls["http://w2"] {
			t.Fatalf("view did not converge on the union: %v", urls)
		}
	}

	// Only w1 stays in contact, and only with a; w2 departs.
	clk.advance(80 * time.Second)
	a.observe("http://w1")
	exchange()
	if b.suspected("http://w1") {
		t.Fatal("gossip failed to relay w1's freshness to b")
	}
	if !a.suspected("http://w2") || !b.suspected("http://w2") {
		t.Fatal("departed w2 should be suspect on both views")
	}

	clk.advance(80 * time.Second) // w2 at 160s ≥ 150s death threshold
	a.observe("http://w1")
	if dead := a.sweepDead(); len(dead) != 1 || dead[0] != "http://w2" {
		t.Fatalf("a swept %v, want [http://w2]", dead)
	}
	if dead := b.sweepDead(); len(dead) != 1 || dead[0] != "http://w2" {
		t.Fatalf("b swept %v, want [http://w2]", dead)
	}
	// b still remembers w2 is gone even as a's next gossip arrives late —
	// and a peer claiming a member at/past the death threshold never
	// resurrects it.
	b.merge([]server.FleetMember{{URL: "http://w2", State: stateSuspect, AgeMS: (160 * time.Second).Milliseconds()}})
	if b.size() != 1 {
		t.Fatalf("dead member resurrected by gossip: size %d", b.size())
	}
	exchange()
	if a.size() != 1 || b.size() != 1 {
		t.Fatalf("post-death exchange sizes are %d/%d, want 1/1", a.size(), b.size())
	}
}

func TestMembershipMergeNeverRegressesFreshness(t *testing.T) {
	clk := newVClock()
	m := newMembership(75*time.Second, 150*time.Second, clk.now)
	m.observe("http://w1")
	// A peer with an older view (bigger age) must not make w1 look stale.
	m.merge([]server.FleetMember{{URL: "http://w1", State: stateSuspect, AgeMS: (100 * time.Second).Milliseconds()}})
	if m.view()[0].age != 0 {
		t.Fatalf("stale gossip regressed freshness: age %v", m.view()[0].age)
	}
}

// deferredServer starts an httptest server whose handler is installed
// later — two coordinators can then be constructed with each other's
// URLs as gossip peers before either handler exists.
func deferredServer(t *testing.T) (*httptest.Server, func(http.Handler)) {
	t.Helper()
	var h atomic.Pointer[http.Handler]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hp := h.Load()
		if hp == nil {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		(*hp).ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, func(handler http.Handler) { h.Store(&handler) }
}

// TestGossipConvergesCoordinatorsWithoutSeedOverlap is the end-to-end
// version: coordinator A is seeded only with w1, B only with w2, and
// jittered anti-entropy rounds converge both on {w1, w2}.
func TestGossipConvergesCoordinatorsWithoutSeedOverlap(t *testing.T) {
	_, w1 := newWorker(t, nil)
	_, w2 := newWorker(t, nil)
	tsA, setA := deferredServer(t)
	tsB, setB := deferredServer(t)

	mk := func(seed, peer string) *Coordinator {
		c, err := New(Config{
			StateDir:    t.TempDir(),
			Workers:     []string{seed},
			Peers:       []string{peer},
			AntiEntropy: 20 * time.Millisecond,
			FindGrid:    unitResolver(nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_ = c.Drain(ctx)
		})
		return c
	}
	a := mk(w1, tsB.URL)
	setA(a.Handler())
	b := mk(w2, tsA.URL)
	setB(b.Handler())

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.Fleet()) == 2 && len(b.Fleet()) == 2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("gossip never converged: a=%v b=%v", a.Fleet(), b.Fleet())
}
