// Package federation scales the lggd daemon horizontally without
// touching its determinism contract. A coordinator accepts the same
// sweep jobs as a single daemon (same JobSpec, same HTTP API), splits
// each job into contiguous run-index ranges, executes the ranges on a
// fleet of ordinary lggd workers, and k-way merges the returned results
// into one journal that is byte-identical to a single-daemon run of the
// same spec.
//
// Byte-stability falls out of the sweep determinism contract: every
// run's RNG stream derives only from the root seed and the run's global
// index, so a worker handed [start, start+count) produces exactly the
// result lines an unsharded sweep would for those indices, and merging
// by index reconstitutes the unsharded byte stream (internal/sweep's
// Merger).
//
// The same contract pays for fault tolerance. A range whose worker goes
// quiet past its lease is re-leased to another worker — work stealing —
// and if both eventually finish, the duplicate runs are byte-identical
// by construction, so merge dedup-by-index loses nothing. Worker jobs
// are submitted with deterministic idempotency keys derived from the
// coordinator job and range, so a restarted coordinator re-attaches to
// in-flight worker jobs instead of duplicating them.
//
// The coordinator itself is no longer a single point of failure. A
// standby coordinator (Config.Standby) tails the primary's
// /v1/coordinator/status heartbeat, mirroring its job ledger and fleet
// view, and promotes itself after a missed-heartbeat window — re-queueing
// every non-terminal job, whose merged output stays byte-identical to an
// unfailed run because the worker-side idempotency keys are derived from
// the job, not the coordinator. Fleet membership is gossip-maintained:
// every worker contact refreshes a liveness age, coordinators anti-entropy
// their views as age vectors (membership.go), and departed workers age
// out through suspicion instead of holding leases. Dispatch is
// health-aware: per-worker EWMA service rates drive adaptive straggler
// leases, and a worker whose error share crosses a threshold is browned
// out and drained instead of fed more ranges (health.go).
//
// On top, the coordinator adds the multi-tenant control the single
// daemon deliberately lacks: per-tenant admission quotas and fair-share
// dispatch (queue.go), and a compacting result store that distils
// finished jobs into per-cell summaries queryable without replaying
// journals (store.go).
package federation

import (
	"context"
	"errors"
	"fmt"
	"math"
	mrand "math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/sweep"
)

// Config tunes a Coordinator; only StateDir is required.
type Config struct {
	// StateDir holds the coordinator's job ledger, merged per-job
	// journals (results/) and the compacted summary index. The layout
	// matches a single daemon's state directory.
	StateDir string
	// Workers seeds the fleet with lggd base URLs; more join at runtime
	// via POST /v1/fleet/join or peer gossip.
	Workers []string
	// Jobs is the number of coordinator jobs sharded concurrently
	// (default 2) — each one fans out to the whole fleet.
	Jobs int
	// QueueDepth bounds total queued jobs across tenants (default 16).
	QueueDepth int
	// TenantQuota caps one tenant's live (queued+running) jobs
	// (default 4; <=0 only via an explicit negative = unlimited).
	TenantQuota int
	// RangeRuns is the target shard size in runs (default 8). Smaller
	// ranges steal and rebalance faster; larger ones amortise per-job
	// HTTP overhead.
	RangeRuns int
	// Lease is the straggler-lease ceiling and cold-start value
	// (default 60s). Once a worker has observed throughput, its actual
	// lease adapts: Health.LeaseFactor times the expected range
	// duration at max(its own EWMA rate, the fleet mean), clamped to
	// [Health.MinLease, Lease] — so a worker that falls behind the
	// fleet is stolen from sooner, without any fixed -lease tuning.
	Lease time.Duration
	// StealMax caps concurrent attempts per range, the original lease
	// included (default 2). Attempts stuck on suspect or browned-out
	// workers don't count against the cap, so a dying worker can't pin
	// a range to its own corpse.
	StealMax int
	// Poll is the worker job poll cadence (default 200ms).
	Poll time.Duration
	// KeepJournals, when positive, bounds merged journals kept on disk:
	// after a job is compacted into the summary index, only the most
	// recent KeepJournals journals survive (0 keeps all).
	KeepJournals int
	// FindGrid resolves grid names (default experiments.FindGrid). The
	// coordinator and its workers must resolve identically or range
	// bounds will not line up.
	FindGrid server.GridResolver

	// Standby starts the coordinator as a warm standby: admission is
	// refused (503 + Retry-After) and nothing is dispatched; instead the
	// coordinator tails Primary's /v1/coordinator/status, mirroring its
	// job ledger and fleet view. After FailoverAfter without a
	// successful heartbeat it promotes itself, re-queues every
	// non-terminal job and starts dispatching. Requires Primary.
	Standby bool
	// Primary is the primary coordinator's base URL (standby mode only).
	Primary string
	// Rank is this coordinator's fixed position in the failover order:
	// 0 for the configured primary, 1 for the first standby, 2 for the
	// second, and so on (defaults to 1 in standby mode). Rank is
	// identity, not state — it never changes at runtime. It orders
	// promotions (a standby waits until EVERY better-ranked coordinator
	// has been silent for FailoverAfter, so rank 2 defers to a live
	// rank 1 even with the primary dead) and breaks the epoch tie two
	// coordinators can reach across a healed partition: equal epochs,
	// lower rank wins.
	Rank int
	// Watch lists the other coordinators in the failover chain this one
	// must monitor, besides Primary. A standby ranked r watches Primary
	// plus the standbys ranked 1..r-1; promotion requires them ALL
	// silent for FailoverAfter. An acting primary with a non-empty
	// watch set runs a guard loop over it: a watched coordinator
	// claiming the primary role with a higher epoch — or the same epoch
	// and a lower rank — demotes this one back to standby (no
	// consensus; the rank order is the arbiter).
	Watch []string
	// Peers lists other coordinators to exchange fleet views with in
	// jittered anti-entropy rounds every AntiEntropy, so coordinators
	// converge on the same live-worker set without a shared seed list.
	Peers []string
	// Heartbeat is the standby's primary-poll cadence (default 1s).
	Heartbeat time.Duration
	// FailoverAfter is how long a standby tolerates failed heartbeats
	// before assuming leadership (default 5s).
	FailoverAfter time.Duration
	// SuspectAfter marks a worker suspect after this long without
	// contact (default 75s). Suspect workers are dispatched to only
	// when no alive worker is eligible.
	SuspectAfter time.Duration
	// DeadAfter removes a worker unheard from for this long
	// (default 2×SuspectAfter).
	DeadAfter time.Duration
	// AntiEntropy is the peer-gossip cadence (default 2s).
	AntiEntropy time.Duration
	// JoinPingTimeout bounds the liveness probe run against a joining
	// worker before it is admitted to the fleet, so a hung peer cannot
	// block the join handler (default 2s). Also bounds the periodic
	// liveness probes of stale members and peer gossip fetches.
	JoinPingTimeout time.Duration
	// Health tunes worker health scoring (EWMA rates, adaptive leases,
	// brown-out); zero values take HealthConfig defaults.
	Health HealthConfig
	// ReapAttempts / ReapBackoff shape the retry loop that cancels
	// abandoned worker-side jobs after a steal won or a client
	// cancelled (defaults 4 / 250ms, doubling).
	ReapAttempts int
	ReapBackoff  time.Duration

	// Client tunes the per-worker HTTP clients; BaseURL is overwritten
	// per worker.
	Client client.Config
	// Registry receives coordinator metrics (default: fresh registry).
	Registry *metrics.Registry
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
	// Now and Rand are injectable for tests (defaults time.Now and
	// math/rand.Float64). Rand jitters the gossip, heartbeat and
	// membership cadences.
	Now  func() time.Time
	Rand func() float64
}

// Coordinator metric names.
const (
	MetricQueued           = "lggfed_queue_depth"
	MetricInflight         = "lggfed_inflight_jobs"
	MetricFleet            = "lggfed_fleet_size"
	MetricShed             = "lggfed_jobs_shed_total"
	MetricQuotaRefused     = "lggfed_jobs_quota_refused_total"
	MetricJobsDone         = "lggfed_jobs_done_total"
	MetricJobsFailed       = "lggfed_jobs_failed_total"
	MetricRangesDone       = "lggfed_ranges_done_total"
	MetricRangesStolen     = "lggfed_ranges_stolen_total"
	MetricRangesRetried    = "lggfed_ranges_retried_total"
	MetricCellsCompacted   = "lggfed_cells_compacted_total"
	MetricEpoch            = "lggfed_epoch"
	MetricStandby          = "lggfed_standby"
	MetricRank             = "lggfed_rank"
	MetricFailovers        = "lggfed_failovers_total"
	MetricDemotions        = "lggfed_demotions_total"
	MetricHeartbeatsMissed = "lggfed_heartbeats_missed_total"
	MetricMembersSuspect   = "lggfed_members_suspect"
	MetricBrownedOut       = "lggfed_workers_browned_out"
	MetricReapFailures     = "lggfed_reap_failures_total"
)

var (
	errDrain        = errors.New("federation: draining")
	errDemote       = errors.New("federation: demoted to standby")
	errClientCancel = errors.New("federation: cancelled by client")
)

// cjob is the in-memory state of one coordinator job.
type cjob struct {
	mu              sync.Mutex
	st              server.JobState
	cancel          context.CancelCauseFunc // non-nil while running
	cancelRequested bool
	doneCh          chan struct{} // closed at a terminal status
}

func (j *cjob) state() server.JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st
}

func (j *cjob) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Status.Terminal()
}

// worker is one fleet member's client handle. Liveness lives in the
// membership table, scheduling health in the health board — both keyed
// by URL.
type worker struct {
	url string
	cli *client.Client
}

// Coordinator shards sweep jobs across a fleet of lggd daemons.
// Construct with New, serve its Handler, stop with Drain.
type Coordinator struct {
	cfg     Config
	ledger  *server.Ledger
	reg     *metrics.Registry
	rstore  *resultStore
	members *membership
	health  *healthBoard

	upstreams []*upstream // the failover chain this coordinator monitors

	mu           sync.Mutex
	jobs         map[string]*cjob
	order        []string
	keys         map[string]string // idempotency key → job id
	queue        *tenantQueue
	workers      map[string]*worker
	outstanding  map[string]int  // live range attempts per worker URL
	probing      map[string]bool // urls with an in-flight liveness probe
	rrWorker     int             // round-robin cursor for range placement
	nextID       int
	draining     bool
	standby      bool
	epoch        int64
	mirrorEpoch  int64         // primary's epoch as last mirrored by a standby
	maxSeenEpoch int64         // highest epoch observed from any coordinator
	reignc       chan struct{} // closed when this primary's reign ends (demotion)

	wake  chan struct{}
	stopc chan struct{}
	wg    sync.WaitGroup

	gQueue, gInflight, gFleet, gEpoch   *metrics.Gauge
	gStandby, gRank, gSuspect, gBrowned *metrics.Gauge
	cShed, cQuota, cDone, cFailed       *metrics.Counter
	cRanges, cStolen, cRetried, cCells  *metrics.Counter
	cFailovers, cDemotions              *metrics.Counter
	cBeatsMissed, cReapFail             *metrics.Counter
	ewmaMu                              sync.Mutex
	jobSecs                             float64
}

// upstream is one coordinator in the failover chain that this one
// monitors: the primary and every better-ranked standby for a follower,
// or the configured watch set for an acting primary's guard loop. The
// client is single-attempt — the follow and guard loops are the retry
// policy.
type upstream struct {
	url string
	cli *client.Client
}

// New opens the state directory, replays the ledger (re-queueing
// unfinished jobs), connects the seed fleet and starts the dispatchers —
// or, in standby mode, the primary-tailing follow loop.
func New(cfg Config) (*Coordinator, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("federation: Config.StateDir is required")
	}
	if cfg.Standby && cfg.Primary == "" {
		return nil, fmt.Errorf("federation: standby mode requires Config.Primary")
	}
	if cfg.Rank < 0 {
		return nil, fmt.Errorf("federation: Config.Rank must be non-negative")
	}
	if cfg.Standby && cfg.Rank == 0 {
		cfg.Rank = 1
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.TenantQuota == 0 {
		cfg.TenantQuota = 4
	}
	if cfg.RangeRuns <= 0 {
		cfg.RangeRuns = 8
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 60 * time.Second
	}
	if cfg.StealMax <= 0 {
		cfg.StealMax = 2
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.FailoverAfter <= 0 {
		cfg.FailoverAfter = 5 * time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 75 * time.Second
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 2 * cfg.SuspectAfter
	}
	if cfg.AntiEntropy <= 0 {
		cfg.AntiEntropy = 2 * time.Second
	}
	if cfg.JoinPingTimeout <= 0 {
		cfg.JoinPingTimeout = 2 * time.Second
	}
	if cfg.ReapAttempts <= 0 {
		cfg.ReapAttempts = 4
	}
	if cfg.ReapBackoff <= 0 {
		cfg.ReapBackoff = 250 * time.Millisecond
	}
	if cfg.FindGrid == nil {
		cfg.FindGrid = experiments.FindGrid
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Rand == nil {
		cfg.Rand = mrand.Float64
	}
	ledger, replay, err := server.OpenLedger(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	rstore, err := openResultStore(cfg.StateDir)
	if err != nil {
		ledger.Close()
		return nil, err
	}
	c := &Coordinator{
		cfg:         cfg,
		ledger:      ledger,
		reg:         cfg.Registry,
		rstore:      rstore,
		members:     newMembership(cfg.SuspectAfter, cfg.DeadAfter, cfg.Now),
		health:      newHealthBoard(cfg.Health, cfg.Lease, cfg.Now),
		jobs:        make(map[string]*cjob),
		keys:        make(map[string]string),
		queue:       newTenantQueue(cfg.TenantQuota, cfg.QueueDepth),
		workers:     make(map[string]*worker),
		outstanding: make(map[string]int),
		probing:     make(map[string]bool),
		wake:        make(chan struct{}, 1),
		stopc:       make(chan struct{}),
	}
	c.gQueue = c.reg.Gauge(MetricQueued, "Jobs waiting in the coordinator queue.")
	c.gInflight = c.reg.Gauge(MetricInflight, "Coordinator jobs currently sharded across the fleet.")
	c.gFleet = c.reg.Gauge(MetricFleet, "Workers in the fleet.")
	c.gEpoch = c.reg.Gauge(MetricEpoch, "Leadership epoch (increments at every failover).")
	c.gStandby = c.reg.Gauge(MetricStandby, "1 while this coordinator is a standby.")
	c.gRank = c.reg.Gauge(MetricRank, "This coordinator's fixed failover rank (0 = configured primary).")
	c.gSuspect = c.reg.Gauge(MetricMembersSuspect, "Fleet members past the suspicion threshold.")
	c.gBrowned = c.reg.Gauge(MetricBrownedOut, "Workers browned out by error rate.")
	c.cShed = c.reg.Counter(MetricShed, "Submissions shed because the shared queue was full.")
	c.cQuota = c.reg.Counter(MetricQuotaRefused, "Submissions refused by a tenant's quota.")
	c.cDone = c.reg.Counter(MetricJobsDone, "Coordinator jobs merged to completion.")
	c.cFailed = c.reg.Counter(MetricJobsFailed, "Coordinator jobs that failed.")
	c.cRanges = c.reg.Counter(MetricRangesDone, "Ranges completed by the fleet.")
	c.cStolen = c.reg.Counter(MetricRangesStolen, "Ranges re-leased past their straggler deadline.")
	c.cRetried = c.reg.Counter(MetricRangesRetried, "Range attempts retried after a worker failure.")
	c.cCells = c.reg.Counter(MetricCellsCompacted, "Per-cell summaries written to the result index.")
	c.cFailovers = c.reg.Counter(MetricFailovers, "Standby promotions to primary.")
	c.cDemotions = c.reg.Counter(MetricDemotions, "Acting primaries that stepped back down to standby.")
	c.cBeatsMissed = c.reg.Counter(MetricHeartbeatsMissed, "Failed heartbeat polls of the primary.")
	c.cReapFail = c.reg.Counter(MetricReapFailures, "Abandoned worker jobs the reaper gave up cancelling.")

	for _, url := range cfg.Workers {
		if err := c.addWorker(url, false); err != nil {
			ledger.Close()
			return nil, err
		}
	}

	for _, rec := range replay {
		jb := &cjob{st: rec, doneCh: make(chan struct{})}
		if n, ok := jobIDNumber(rec.ID); ok && n >= c.nextID {
			c.nextID = n + 1
		}
		if rec.Spec.IdempotencyKey != "" {
			c.keys[rec.Spec.IdempotencyKey] = rec.ID
		}
		c.jobs[rec.ID] = jb
		c.order = append(c.order, rec.ID)
		if rec.Status.Terminal() {
			close(jb.doneCh)
			continue
		}
		if cfg.Standby {
			// A restarted standby keeps mirrored jobs as recorded; the
			// follow loop refreshes them from the primary (and a
			// promotion re-queues whatever is still live).
			continue
		}
		jb.st.Status = server.StatusQueued
		c.queue.push(rec.Spec.Tenant, jb)
		cfg.Logf("lggfed: resuming %s (%s, %d/%d runs merged)", rec.ID, rec.Spec.Grid, rec.Done, rec.Total)
	}
	// Replay rebuilt the tenant ring in first-submission order; re-seat
	// the fair-share cursor past the tenant dispatched last before the
	// restart so it is not served first again.
	c.queue.alignAfter(ledger.LastDispatchedTenant())
	c.gQueue.Set(int64(c.queue.pending()))

	// The failover chain: a standby monitors the primary plus every
	// better-ranked standby; an acting primary guards against the URLs
	// in its watch set.
	chain := cfg.Watch
	if cfg.Standby {
		chain = append([]string{cfg.Primary}, cfg.Watch...)
	}
	for _, url := range chain {
		ucfg := cfg.Client
		ucfg.BaseURL = url
		ucfg.MaxAttempts = 1 // the follow/guard loop is the retry policy
		ucli, err := client.New(ucfg)
		if err != nil {
			rstore.close()
			ledger.Close()
			return nil, fmt.Errorf("federation: upstream %s: %w", url, err)
		}
		c.upstreams = append(c.upstreams, &upstream{url: url, cli: ucli})
	}
	c.gRank.Set(int64(cfg.Rank))
	if cfg.Standby {
		c.standby = true
		c.gStandby.Set(1)
		c.wg.Add(1)
		go c.followLoop()
	} else {
		c.epoch = 1
		c.gEpoch.Set(1)
		c.reignc = make(chan struct{})
		c.wg.Add(cfg.Jobs)
		for i := 0; i < cfg.Jobs; i++ {
			go c.dispatcher()
		}
		if len(c.upstreams) > 0 {
			c.wg.Add(1)
			go c.guardLoop()
		}
	}
	c.wg.Add(1)
	go c.membershipLoop()
	if len(cfg.Peers) > 0 {
		peers := make([]*client.Client, 0, len(cfg.Peers))
		for _, url := range cfg.Peers {
			pcfg := cfg.Client
			pcfg.BaseURL = url
			pcfg.MaxAttempts = 1 // anti-entropy rounds are the retry policy
			pcli, err := client.New(pcfg)
			if err != nil {
				rstore.close()
				ledger.Close()
				return nil, fmt.Errorf("federation: peer %s: %w", url, err)
			}
			peers = append(peers, pcli)
		}
		c.wg.Add(1)
		go c.gossipLoop(peers)
	}
	return c, nil
}

// jobIDNumber parses the numeric suffix of "job-%08d".
func jobIDNumber(id string) (int, bool) {
	const p = "job-"
	if !strings.HasPrefix(id, p) || len(id) == len(p) {
		return 0, false
	}
	n, err := strconv.Atoi(id[len(p):])
	return n, err == nil
}

// jitter spreads a cadence across [d/2, 3d/2) so restarted fleet
// members desynchronise instead of thundering in lockstep.
func (c *Coordinator) jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(c.cfg.Rand()*float64(d))
}

// addWorker connects a worker URL to the fleet and refreshes its
// membership age. ping validates the worker's liveness first — through
// a single-attempt client bounded by JoinPingTimeout, so a hung peer
// cannot block the join handler (seed workers are added unpinged so the
// coordinator can start ahead of its fleet).
func (c *Coordinator) addWorker(url string, ping bool) error {
	ccfg := c.cfg.Client
	ccfg.BaseURL = url
	cli, err := client.New(ccfg)
	if err != nil {
		return fmt.Errorf("federation: worker %s: %w", url, err)
	}
	if ping {
		pcfg := c.cfg.Client
		pcfg.BaseURL = url
		pcfg.MaxAttempts = 1
		if pcfg.HTTP == nil {
			pcfg.HTTP = &http.Client{Timeout: c.cfg.JoinPingTimeout}
		}
		pcli, err := client.New(pcfg)
		if err != nil {
			return fmt.Errorf("federation: worker %s: %w", url, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.JoinPingTimeout)
		defer cancel()
		if err := pcli.Ping(ctx); err != nil {
			return fmt.Errorf("federation: worker %s failed liveness: %w", url, err)
		}
	}
	c.mu.Lock()
	_, known := c.workers[url]
	if !known {
		c.workers[url] = &worker{url: url, cli: cli}
	}
	c.mu.Unlock()
	if c.members.observe(url) {
		c.cfg.Logf("lggfed: worker %s joined (fleet size %d)", url, c.members.size())
	}
	c.gFleet.Set(int64(c.members.size()))
	return nil
}

// ensureWorker builds a client handle for a gossip-learned URL without
// refreshing its membership age (the caller already merged the peer's
// age claim; claiming direct contact would forge freshness).
func (c *Coordinator) ensureWorker(url string) {
	ccfg := c.cfg.Client
	ccfg.BaseURL = url
	cli, err := client.New(ccfg)
	if err != nil {
		c.cfg.Logf("lggfed: gossip worker %s: %v", url, err)
		return
	}
	c.mu.Lock()
	if _, ok := c.workers[url]; !ok {
		c.workers[url] = &worker{url: url, cli: cli}
		c.cfg.Logf("lggfed: worker %s joined via gossip (fleet size %d)", url, c.members.size())
	}
	c.mu.Unlock()
	c.gFleet.Set(int64(c.members.size()))
}

// Fleet lists the current worker URLs in join order.
func (c *Coordinator) Fleet() []string {
	rows := c.members.view()
	out := make([]string, len(rows))
	for i, row := range rows {
		out[i] = row.url
	}
	return out
}

// FleetMembers is the live-worker view served at GET /v1/fleet: each
// member's liveness state, age since last contact, and scheduling
// health.
func (c *Coordinator) FleetMembers() []server.FleetMember {
	rows := c.members.view()
	out := make([]server.FleetMember, 0, len(rows))
	for _, row := range rows {
		out = append(out, server.FleetMember{
			URL:    row.url,
			State:  row.state,
			AgeMS:  row.age.Milliseconds(),
			Health: c.health.snapshot(row.url, c.cfg.RangeRuns),
		})
	}
	return out
}

// Status is the heartbeat payload served at GET /v1/coordinator/status.
func (c *Coordinator) Status() server.CoordStatus {
	c.mu.Lock()
	epoch := c.epoch
	standby := c.standby
	c.mu.Unlock()
	role := server.RolePrimary
	if standby {
		role = server.RoleStandby
	}
	return server.CoordStatus{Epoch: epoch, Role: role, Rank: c.cfg.Rank, Fleet: c.FleetMembers(), Jobs: c.Jobs()}
}

// Standby reports whether this coordinator is (still) a standby.
func (c *Coordinator) Standby() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.standby
}

// nextWorker picks a worker for one range attempt, preferring — in
// order — an alive, healthy worker not in exclude; then any non-excluded
// worker; then anyone at all (a degraded fleet still beats abandoning
// the range). Among the healthy (first-pass) candidates placement is
// capacity-weighted least-loaded: each candidate is scored by its live
// attempt count divided by its effective service rate
// (max of declared capacity and observed EWMA), so a worker that
// declares — or demonstrates — twice the throughput absorbs twice the
// outstanding ranges before a peer is preferred. Rate-less fleets
// degenerate to the plain least-loaded round-robin. The chosen worker's
// outstanding count is incremented here; the caller releases it via
// releaseWorker when the attempt resolves.
func (c *Coordinator) nextWorker(exclude map[string]bool) *worker {
	rows := c.members.view()
	n := len(rows)
	if n == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Pass 0: alive, non-excluded workers ordered by load per unit of
	// capacity (round-robin position breaks ties, preserving rotation).
	type candidate struct {
		w    *worker
		url  string
		load float64
		ord  int
	}
	var cands []candidate
	for i := 0; i < n; i++ {
		row := rows[(c.rrWorker+i)%n]
		w := c.workers[row.url]
		if w == nil || exclude[row.url] || row.state != stateAlive {
			continue
		}
		weight := c.health.effectiveRate(row.url)
		if weight <= 0 {
			weight = 1
		}
		cands = append(cands, candidate{w: w, url: row.url, load: float64(c.outstanding[row.url]) / weight, ord: i})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].load != cands[b].load {
			return cands[a].load < cands[b].load
		}
		return cands[a].ord < cands[b].ord
	})
	for _, cd := range cands {
		// health.available claims the half-open probe slot of a
		// cooled-down brown-out, so it must run only on a worker we
		// will actually use — it is the last check.
		if c.health.available(cd.url) {
			c.rrWorker = (c.rrWorker + cd.ord + 1) % n
			c.outstanding[cd.url]++
			return cd.w
		}
	}
	for pass := 1; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			row := rows[(c.rrWorker+i)%n]
			w := c.workers[row.url]
			if w == nil {
				continue
			}
			if pass < 2 && exclude[row.url] {
				continue
			}
			c.rrWorker = (c.rrWorker + i + 1) % n
			c.outstanding[row.url]++
			return w
		}
	}
	return nil
}

// releaseWorker retires one live range attempt from url's outstanding
// count (the capacity-weighted dispatch denominator).
func (c *Coordinator) releaseWorker(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.outstanding[url] <= 1 {
		delete(c.outstanding, url)
	} else {
		c.outstanding[url]--
	}
}

// Admit validates and enqueues a job, mirroring the single daemon's
// semantics plus the tenant layer: quota exhaustion and a full shared
// queue both shed with Unavailable (HTTP 429 + Retry-After); drain and
// standby mode refuse with the 503 variant.
func (c *Coordinator) Admit(spec server.JobSpec, key string) (server.JobState, bool, error) {
	spec = spec.WithDefaults()
	if key != "" {
		spec.IdempotencyKey = key
	}
	if err := spec.Validate(c.cfg.FindGrid); err != nil {
		return server.JobState{}, false, err
	}
	if spec.RunCount > 0 || spec.RunStart > 0 {
		return server.JobState{}, false, fmt.Errorf("federation: run_start/run_count are reserved for the coordinator's own sharding")
	}
	c.mu.Lock()
	if c.draining {
		ra := c.retryAfterLocked()
		c.mu.Unlock()
		return server.JobState{}, false, &server.Unavailable{Draining: true, RetryAfter: ra}
	}
	if c.standby {
		// A standby owns no fleet leases; the client should submit to
		// the primary — or retry here after a failover promotes us.
		ra := int(c.cfg.FailoverAfter / time.Second)
		if ra < 1 {
			ra = 1
		}
		c.mu.Unlock()
		return server.JobState{}, false, &server.Unavailable{Standby: true, RetryAfter: ra}
	}
	if spec.IdempotencyKey != "" {
		if id, ok := c.keys[spec.IdempotencyKey]; ok {
			jb := c.jobs[id]
			c.mu.Unlock()
			return jb.state(), false, nil
		}
	}
	overQuota, full := c.queue.admissible(spec.Tenant)
	if overQuota || full {
		ra := c.retryAfterLocked()
		c.mu.Unlock()
		if overQuota {
			c.cQuota.Inc()
			return server.JobState{}, false, &server.Unavailable{RetryAfter: ra}
		}
		c.cShed.Inc()
		return server.JobState{}, false, &server.Unavailable{RetryAfter: ra}
	}
	id := fmt.Sprintf("job-%08d", c.nextID)
	c.nextID++
	jb := &cjob{st: server.JobState{ID: id, Spec: spec, Status: server.StatusQueued}, doneCh: make(chan struct{})}
	if err := c.ledger.Append(jb.st); err != nil {
		c.nextID--
		c.mu.Unlock()
		return server.JobState{}, false, err
	}
	c.jobs[id] = jb
	c.order = append(c.order, id)
	if spec.IdempotencyKey != "" {
		c.keys[spec.IdempotencyKey] = id
	}
	c.queue.push(spec.Tenant, jb)
	c.gQueue.Set(int64(c.queue.pending()))
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return jb.state(), true, nil
}

// retryAfterLocked derives the Retry-After hint from queue pressure and
// the measured mean job duration. Requires c.mu.
func (c *Coordinator) retryAfterLocked() int {
	c.ewmaMu.Lock()
	mean := c.jobSecs
	c.ewmaMu.Unlock()
	if mean <= 0 {
		mean = 1
	}
	secs := int(math.Ceil(mean * float64(c.queue.pending()+1) / float64(c.cfg.Jobs)))
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

func (c *Coordinator) observeJobSeconds(secs float64) {
	c.ewmaMu.Lock()
	if c.jobSecs == 0 {
		c.jobSecs = secs
	} else {
		c.jobSecs = 0.7*c.jobSecs + 0.3*secs
	}
	c.ewmaMu.Unlock()
}

// Job returns a job's state by id.
func (c *Coordinator) Job(id string) (server.JobState, bool) {
	c.mu.Lock()
	jb, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return server.JobState{}, false
	}
	return jb.state(), true
}

// Jobs lists every known job in submission order.
func (c *Coordinator) Jobs() []server.JobState {
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	m := c.jobs
	c.mu.Unlock()
	out := make([]server.JobState, 0, len(ids))
	for _, id := range ids {
		out = append(out, m[id].state())
	}
	return out
}

// Cancel requests cancellation. Queued jobs cancel immediately (and
// refund their tenant's quota); running jobs cancel mid-merge, keeping
// the merged prefix; terminal jobs are left alone.
func (c *Coordinator) Cancel(id string) (server.JobState, bool) {
	c.mu.Lock()
	jb, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return server.JobState{}, false
	}
	jb.mu.Lock()
	switch {
	case jb.st.Status.Terminal():
		jb.mu.Unlock()
	case jb.st.Status == server.StatusQueued:
		tenant := jb.st.Spec.Tenant
		jb.cancelRequested = true
		jb.st.Status = server.StatusCancelled
		jb.st.Error = errClientCancel.Error()
		st := jb.st
		close(jb.doneCh)
		jb.mu.Unlock()
		c.mu.Lock()
		if c.queue.remove(tenant, jb) {
			c.gQueue.Set(int64(c.queue.pending()))
		} else {
			c.queue.release(tenant)
		}
		c.mu.Unlock()
		c.persist(st)
	default: // running
		jb.cancelRequested = true
		cancel := jb.cancel
		jb.mu.Unlock()
		if cancel != nil {
			cancel(errClientCancel)
		}
	}
	return jb.state(), true
}

func (c *Coordinator) persist(st server.JobState) {
	if err := c.ledger.Append(st); err != nil {
		c.cfg.Logf("lggfed: ledger append for %s: %v", st.ID, err)
	}
}

// JournalPath exposes where a job's merged journal lives (the results
// stream and the fleet smoke test read it).
func (c *Coordinator) JournalPath(id string) string { return c.ledger.JournalPath(id) }

// dispatcher pops queued jobs fair-share and shards them until drain.
func (c *Coordinator) dispatcher() {
	defer c.wg.Done()
	for {
		jb := c.pop()
		if jb == nil {
			return
		}
		c.executeJob(jb)
	}
}

func (c *Coordinator) pop() *cjob {
	for {
		c.mu.Lock()
		if c.draining || c.standby {
			// A demoted coordinator's dispatchers retire; a later
			// promotion starts fresh ones.
			c.mu.Unlock()
			return nil
		}
		reign := c.reignc
		if jb := c.queue.pop(); jb != nil {
			c.gQueue.Set(int64(c.queue.pending()))
			c.mu.Unlock()
			return jb
		}
		c.mu.Unlock()
		select {
		case <-c.wake:
		case <-reign:
			return nil
		case <-c.stopc:
			return nil
		}
	}
}

// finish moves a job terminal, refunds its quota and persists.
func (c *Coordinator) finish(jb *cjob, status server.JobStatus, errMsg string) {
	jb.mu.Lock()
	if jb.st.Status.Terminal() {
		jb.mu.Unlock()
		return
	}
	jb.st.Status = status
	jb.st.Error = errMsg
	st := jb.st
	close(jb.doneCh)
	jb.mu.Unlock()
	c.mu.Lock()
	c.queue.release(st.Spec.Tenant)
	c.mu.Unlock()
	switch status {
	case server.StatusDone:
		c.cDone.Inc()
	case server.StatusFailed:
		c.cFailed.Inc()
	}
	c.persist(st)
	c.cfg.Logf("lggfed: %s → %s (%d/%d runs)", st.ID, status, st.Done, st.Total)
}

// runRange is one contiguous shard of a job.
type runRange struct {
	start, count int
}

// executeJob shards one job across the fleet, merges the returned
// ranges into the job's journal in global index order, and compacts the
// finished job into the result index.
func (c *Coordinator) executeJob(jb *cjob) {
	jb.mu.Lock()
	if jb.st.Status.Terminal() { // cancelled while queued
		jb.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	jb.cancel = cancel
	jb.st.Status = server.StatusRunning
	spec := jb.st.Spec
	id := jb.st.ID
	st := jb.st
	jb.mu.Unlock()
	defer cancel(nil)
	c.persist(st)
	c.gInflight.Add(1)
	defer c.gInflight.Add(-1)
	start := time.Now()

	g, err := c.cfg.FindGrid(spec.Grid)
	if err != nil {
		c.finish(jb, server.StatusFailed, err.Error())
		return
	}
	total := len(g.Jobs(spec.Config()))
	if total == 0 {
		c.finish(jb, server.StatusFailed, "grid enumerates zero runs")
		return
	}

	journal, prefix, err := sweep.OpenJournalResume(c.ledger.JournalPath(id), total)
	if err != nil {
		c.finish(jb, server.StatusFailed, err.Error())
		return
	}

	var (
		mergeMu sync.Mutex
		merged  = make([]sweep.Result, 0, total)
	)
	merged = append(merged, prefix...)
	merger := sweep.NewMerger(total, func(r sweep.Result) error {
		merged = append(merged, r)
		if err := journal.Append(r); err != nil {
			return err
		}
		jb.mu.Lock()
		jb.st.Done++
		countRecovery(&jb.st, r.Recovery, +1)
		jb.mu.Unlock()
		return nil
	})
	merger.Resume(len(prefix))

	jb.mu.Lock()
	jb.st.Total = total
	jb.st.Done = len(prefix)
	jb.st.Recovered, jb.st.Degraded, jb.st.Indeterminate = 0, 0, 0
	for _, r := range prefix {
		countRecovery(&jb.st, r.Recovery, +1)
	}
	jb.mu.Unlock()

	// The merged prefix is already durable; shard only what remains.
	var ranges []runRange
	for s := len(prefix); s < total; s += c.cfg.RangeRuns {
		n := c.cfg.RangeRuns
		if s+n > total {
			n = total - s
		}
		ranges = append(ranges, runRange{start: s, count: n})
	}

	// jobKey makes worker-side idempotency keys deterministic per
	// coordinator job, so a restarted (or freshly promoted) coordinator
	// with the same job id re-attaches to worker jobs it — or its failed
	// predecessor — already submitted instead of re-running them.
	jobKey := id
	if spec.IdempotencyKey != "" {
		jobKey = spec.IdempotencyKey
	}

	width := c.members.size()
	if width < 1 {
		width = 1
	}
	sem := make(chan struct{}, width)
	var (
		wg       sync.WaitGroup
		failMu   sync.Mutex
		firstErr error
	)
	for _, rg := range ranges {
		rg := rg
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rs, err := c.runRange(ctx, spec, jobKey, rg)
			if err != nil {
				failMu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel(err) // one lost range fails the job; stop the rest
				}
				failMu.Unlock()
				return
			}
			mergeMu.Lock()
			err = merger.Add(rs)
			mergeMu.Unlock()
			if err != nil {
				failMu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel(err)
				}
				failMu.Unlock()
				return
			}
			c.cRanges.Inc()
		}()
	}
	wg.Wait()

	runErr := firstErr
	if runErr == nil {
		mergeMu.Lock()
		runErr = merger.Close()
		mergeMu.Unlock()
	}
	if cerr := journal.Close(); cerr != nil && runErr == nil {
		runErr = fmt.Errorf("journal close: %w", cerr)
	}
	c.observeJobSeconds(time.Since(start).Seconds())

	switch cause := context.Cause(ctx); {
	case runErr == nil:
		c.compact(jb, spec, merged)
		c.finish(jb, server.StatusDone, "")
	case errors.Is(cause, errClientCancel):
		c.finish(jb, server.StatusCancelled, errClientCancel.Error())
	case errors.Is(cause, errDrain):
		// Drain checkpoint: the journal holds the merged prefix; back to
		// queued for the next start (idempotency keys re-attach worker
		// jobs that kept running).
		jb.mu.Lock()
		jb.st.Status = server.StatusQueued
		st := jb.st
		jb.mu.Unlock()
		c.persist(st)
		c.cfg.Logf("lggfed: %s checkpointed at %d/%d runs for drain", id, st.Done, st.Total)
	case errors.Is(cause, errDemote):
		// Demotion checkpoint: like a drain, the merged prefix stays
		// durable and worker-side range jobs keep running — the winning
		// primary (which mirrored this job's state) re-attaches to them
		// by idempotency key, and so do we if a later failover promotes
		// us again.
		jb.mu.Lock()
		jb.st.Status = server.StatusQueued
		st := jb.st
		jb.mu.Unlock()
		c.persist(st)
		c.cfg.Logf("lggfed: %s checkpointed at %d/%d runs for demotion", id, st.Done, st.Total)
	default:
		c.finish(jb, server.StatusFailed, runErr.Error())
	}
}

// countRecovery adjusts a job state's recovery tallies.
func countRecovery(st *server.JobState, verdict string, delta int) {
	switch verdict {
	case "Recovered":
		st.Recovered += delta
	case "Degraded":
		st.Degraded += delta
	case "Indeterminate":
		st.Indeterminate += delta
	}
}

// rangeOutcome is one attempt's verdict.
type rangeOutcome struct {
	rs  []sweep.Result
	err error
	url string
	dur time.Duration
}

// runRange executes one shard with straggler work-stealing: the first
// attempt gets its worker's adaptive lease to finish; each lease expiry
// launches another attempt on a different worker and the first success
// wins. Failed attempts relaunch immediately on the next worker. The
// live-attempt cap is StealMax, widened by any attempts stuck on
// suspect or browned-out workers (a dying worker must not pin the range
// to itself); the total attempt budget is maxAttempts, and exhausting
// it fails the range (and hence the job).
func (c *Coordinator) runRange(ctx context.Context, spec server.JobSpec, jobKey string, rg runRange) ([]sweep.Result, error) {
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel() // losers stop polling once a winner returns

	fleetSize := c.members.size()
	if fleetSize == 0 {
		return nil, fmt.Errorf("federation: no workers in the fleet")
	}
	maxAttempts := 2 * fleetSize
	if maxAttempts < 3 {
		maxAttempts = 3
	}
	// Buffered to the attempt budget: an abandoned attempt's send never
	// blocks, so no goroutine outlives the range by more than its own
	// HTTP teardown.
	outcome := make(chan rangeOutcome, maxAttempts)
	tried := make(map[string]bool)
	liveOn := make(map[string]int)
	attempts, live := 0, 0
	var lastErr error

	// launch starts one more attempt and returns the chosen worker's
	// adaptive lease (0 when no worker was found).
	launch := func() time.Duration {
		w := c.nextWorker(tried)
		if w == nil {
			return 0
		}
		tried[w.url] = true
		attempts++
		live++
		liveOn[w.url]++
		go func() {
			began := time.Now()
			rs, err := c.attemptRange(rctx, w, spec, jobKey, rg)
			// Released here, not in the channel reader: an abandoned
			// attempt's goroutine outlives the range, and its slot must
			// count against the worker's capacity until it resolves.
			c.releaseWorker(w.url)
			outcome <- rangeOutcome{rs: rs, err: err, url: w.url, dur: time.Since(began)}
		}()
		return c.health.lease(w.url, rg.count)
	}
	leaseDur := launch()
	if leaseDur <= 0 {
		leaseDur = c.cfg.Lease
	}
	lease := time.NewTimer(leaseDur)
	defer lease.Stop()

	for {
		select {
		case o := <-outcome:
			live--
			liveOn[o.url]--
			if o.err == nil {
				c.health.success(o.url, rg.count, o.dur)
				c.members.observe(o.url)
				return o.rs, nil
			}
			lastErr = fmt.Errorf("range %d+%d on %s: %w", rg.start, rg.count, o.url, o.err)
			if rctx.Err() != nil {
				return nil, lastErr
			}
			c.health.failure(o.url)
			c.cfg.Logf("lggfed: %v", lastErr)
			if attempts >= maxAttempts {
				if live == 0 {
					return nil, fmt.Errorf("federation: range abandoned after %d attempts: %w", attempts, lastErr)
				}
				continue // a steal is still in flight; it may yet win
			}
			c.cRetried.Inc()
			if d := launch(); d > 0 {
				lease.Stop()
				lease.Reset(d)
			}
		case <-lease.C:
			next := c.cfg.Lease
			if live < c.cfg.StealMax+c.stuckAttempts(liveOn) && attempts < maxAttempts {
				c.cStolen.Inc()
				c.cfg.Logf("lggfed: range %d+%d past its lease, re-leasing", rg.start, rg.count)
				if d := launch(); d > 0 {
					next = d
				}
			}
			lease.Reset(next)
		case <-rctx.Done():
			return nil, rctx.Err()
		}
	}
}

// stuckAttempts counts live attempts held by workers that are currently
// suspect or browned out; runRange widens the steal budget by this much
// so a dying worker's lease cannot exclude healthy replacements.
func (c *Coordinator) stuckAttempts(liveOn map[string]int) int {
	extra := 0
	for url, n := range liveOn {
		if n > 0 && (c.members.suspected(url) || c.health.unhealthyNow(url)) {
			extra += n
		}
	}
	return extra
}

// attemptRange runs one shard on one worker: submit the range job
// (deterministic idempotency key → retries, coordinator restarts and
// failovers re-attach, never duplicate), poll to terminal, fetch and
// sanity-check the results. A context cancelled mid-wait (a steal won,
// or the job was cancelled) hands the abandoned worker-side job to the
// retrying reaper — except on drain, where worker jobs survive by
// design so the next coordinator re-attaches to them.
func (c *Coordinator) attemptRange(ctx context.Context, w *worker, spec server.JobSpec, jobKey string, rg runRange) ([]sweep.Result, error) {
	spec.RunStart, spec.RunCount = rg.start, rg.count
	spec.IdempotencyKey = fmt.Sprintf("%s/%d+%d", jobKey, rg.start, rg.count)
	st, err := w.cli.Submit(ctx, spec)
	if err != nil {
		return nil, fmt.Errorf("submit: %w", err)
	}
	workerJob := st.ID
	st, err = w.cli.Wait(ctx, workerJob, c.cfg.Poll)
	if err != nil {
		if ctx.Err() != nil && !errors.Is(context.Cause(ctx), errDrain) {
			go c.reap(w, workerJob)
		}
		return nil, fmt.Errorf("wait: %w", err)
	}
	if st.Status != server.StatusDone {
		return nil, fmt.Errorf("worker job %s ended %s: %s", workerJob, st.Status, st.Error)
	}
	rs, err := w.cli.Results(ctx, workerJob)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	if len(rs) != rg.count {
		return nil, fmt.Errorf("worker returned %d results for a %d-run range", len(rs), rg.count)
	}
	for i, r := range rs {
		if r.Index != rg.start+i {
			return nil, fmt.Errorf("worker result %d has index %d, want %d (determinism contract violated)", i, r.Index, rg.start+i)
		}
	}
	return rs, nil
}

// reap cancels an abandoned worker-side job (its attempt lost a steal
// race or the client cancelled the coordinator job) with retries and
// doubling backoff; a job the reaper finally gives up on is surfaced on
// lggfed_reap_failures_total instead of silently leaking worker
// capacity. A coordinator drain aborts the loop: worker jobs survive a
// drain on purpose, so the restarted coordinator re-attaches to them by
// idempotency key.
func (c *Coordinator) reap(w *worker, workerJob string) {
	backoff := c.cfg.ReapBackoff
	var lastErr error
	for attempt := 0; attempt < c.cfg.ReapAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-c.stopc:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		_, err := w.cli.Cancel(ctx, workerJob)
		cancel()
		if err == nil {
			return
		}
		var se *client.StatusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			return // already gone — reaped is reaped
		}
		lastErr = err
	}
	c.cReapFail.Inc()
	c.cfg.Logf("lggfed: reap of worker job %s on %s failed after %d attempts: %v",
		workerJob, w.url, c.cfg.ReapAttempts, lastErr)
}

// membershipLoop ages the fleet: stale members get an active liveness
// probe (statically seeded workers never re-join, so without probing a
// healthy fleet would silently age out), members past DeadAfter are
// removed, and the fleet gauges — including the per-worker health
// export — are refreshed.
func (c *Coordinator) membershipLoop() {
	defer c.wg.Done()
	tick := c.cfg.SuspectAfter / 8
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	if tick > 10*time.Second {
		tick = 10 * time.Second
	}
	for {
		select {
		case <-c.stopc:
			return
		case <-time.After(c.jitter(tick)):
		}
		c.membershipRound()
	}
}

func (c *Coordinator) membershipRound() {
	for _, url := range c.members.stale(c.cfg.SuspectAfter / 2) {
		c.mu.Lock()
		w := c.workers[url]
		busy := c.probing[url]
		if w != nil && !busy {
			c.probing[url] = true
		}
		c.mu.Unlock()
		if w == nil || busy {
			continue
		}
		go func(url string, w *worker) {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.JoinPingTimeout)
			err := w.cli.Ping(ctx)
			cancel()
			if err == nil {
				c.members.observe(url)
			}
			c.mu.Lock()
			delete(c.probing, url)
			c.mu.Unlock()
		}(url, w)
	}
	for _, url := range c.members.sweepDead() {
		c.mu.Lock()
		delete(c.workers, url)
		c.mu.Unlock()
		c.health.forget(url)
		c.cfg.Logf("lggfed: worker %s unheard from for %v, aged out of the fleet", url, c.cfg.DeadAfter)
	}
	c.updateFleetMetrics()
}

// gossipLoop anti-entropies fleet views with peer coordinators: each
// jittered round fetches every peer's /v1/fleet and merges it (ages
// only ever advance freshness, and peer-dead members are not
// resurrected), so coordinators converge on the same worker set without
// a shared seed list.
func (c *Coordinator) gossipLoop(peers []*client.Client) {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopc:
			return
		case <-time.After(c.jitter(c.cfg.AntiEntropy)):
		}
		for _, p := range peers {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.JoinPingTimeout)
			ms, err := p.Fleet(ctx)
			cancel()
			if err != nil {
				continue // peer down or not yet up; next round
			}
			for _, url := range c.members.merge(ms) {
				c.ensureWorker(url)
			}
		}
		c.updateFleetMetrics()
	}
}

// updateFleetMetrics refreshes the fleet gauges, including one gauge
// set per worker (suffixed with the sanitised worker address) so
// brown-outs and adaptive leases are observable per worker.
func (c *Coordinator) updateFleetMetrics() {
	rows := c.members.view()
	c.gFleet.Set(int64(len(rows)))
	suspect := 0
	for _, row := range rows {
		if row.state == stateSuspect {
			suspect++
		}
		h := c.health.snapshot(row.url, c.cfg.RangeRuns)
		sfx := metricSuffix(row.url)
		state := int64(1)
		if row.state != stateAlive {
			state = 0
		}
		c.reg.Gauge("lggfed_worker_state_"+sfx, "Worker liveness (1 alive, 0 suspect).").Set(state)
		brown := int64(0)
		if h.BrownedOut {
			brown = 1
		}
		c.reg.Gauge("lggfed_worker_browned_out_"+sfx, "Worker brown-out (1 browned out).").Set(brown)
		c.reg.Gauge("lggfed_worker_milli_runs_per_sec_"+sfx, "EWMA service rate in milli-runs per second.").Set(int64(h.EWMARunsPerSec * 1000))
		c.reg.Gauge("lggfed_worker_failures_"+sfx, "Failed range attempts on this worker.").Set(h.Failures)
		c.reg.Gauge("lggfed_worker_lease_ms_"+sfx, "Adaptive straggler lease in milliseconds.").Set(h.LeaseMS)
	}
	c.gSuspect.Set(int64(suspect))
	c.gBrowned.Set(int64(c.health.brownedOut()))
}

// metricSuffix folds a worker URL into the Prometheus name charset:
// the scheme is dropped and every rune outside [a-zA-Z0-9_:] maps
// to '_'.
func metricSuffix(url string) string {
	if i := strings.Index(url, "://"); i >= 0 {
		url = url[i+3:]
	}
	var b strings.Builder
	for _, r := range url {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteRune('_')
		}
	}
	return b.String()
}

// compact distils a finished job into per-cell summaries in the result
// index. Compaction failures are logged, not fatal — the merged journal
// remains the source of truth.
func (c *Coordinator) compact(jb *cjob, spec server.JobSpec, merged []sweep.Result) {
	st := jb.state()
	n, err := c.rstore.compact(st.ID, spec, merged, c.cfg.KeepJournals, c.ledger.RemoveJournal)
	if err != nil {
		c.cfg.Logf("lggfed: compact %s: %v", st.ID, err)
		return
	}
	c.cCells.Add(int64(n))
}

// Draining reports whether admission is closed.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Drain gracefully stops the coordinator: admission closes immediately,
// queued jobs stay durably queued, in-flight jobs get until ctx's
// deadline before being checkpointed mid-merge (their journals keep the
// merged prefix; worker-side range jobs keep running and are re-attached
// by idempotency key on the next start). A standby's follow loop stops
// the same way.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return fmt.Errorf("federation: already draining")
	}
	c.draining = true
	c.mu.Unlock()
	close(c.stopc)

	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		c.mu.Lock()
		running := make([]*cjob, 0, len(c.order))
		for _, id := range c.order {
			running = append(running, c.jobs[id])
		}
		c.mu.Unlock()
		for _, jb := range running {
			jb.mu.Lock()
			cancel := jb.cancel
			active := jb.st.Status == server.StatusRunning
			jb.mu.Unlock()
			if active && cancel != nil {
				cancel(errDrain)
			}
		}
		<-done
	}
	if err := c.rstore.close(); err != nil {
		c.ledger.Close()
		return err
	}
	return c.ledger.Close()
}
