// Package federation scales the lggd daemon horizontally without
// touching its determinism contract. A coordinator accepts the same
// sweep jobs as a single daemon (same JobSpec, same HTTP API), splits
// each job into contiguous run-index ranges, executes the ranges on a
// fleet of ordinary lggd workers, and k-way merges the returned results
// into one journal that is byte-identical to a single-daemon run of the
// same spec.
//
// Byte-stability falls out of the sweep determinism contract: every
// run's RNG stream derives only from the root seed and the run's global
// index, so a worker handed [start, start+count) produces exactly the
// result lines an unsharded sweep would for those indices, and merging
// by index reconstitutes the unsharded byte stream (internal/sweep's
// Merger).
//
// The same contract pays for fault tolerance. A range whose worker goes
// quiet past its lease is re-leased to another worker — work stealing —
// and if both eventually finish, the duplicate runs are byte-identical
// by construction, so merge dedup-by-index loses nothing. Worker jobs
// are submitted with deterministic idempotency keys derived from the
// coordinator job and range, so a restarted coordinator re-attaches to
// in-flight worker jobs instead of duplicating them.
//
// On top, the coordinator adds the multi-tenant control the single
// daemon deliberately lacks: per-tenant admission quotas and fair-share
// dispatch (queue.go), and a compacting result store that distils
// finished jobs into per-cell summaries queryable without replaying
// journals (store.go).
package federation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/sweep"
)

// Config tunes a Coordinator; only StateDir is required.
type Config struct {
	// StateDir holds the coordinator's job ledger, merged per-job
	// journals (results/) and the compacted summary index. The layout
	// matches a single daemon's state directory.
	StateDir string
	// Workers seeds the fleet with lggd base URLs; more join at runtime
	// via POST /v1/fleet/join.
	Workers []string
	// Jobs is the number of coordinator jobs sharded concurrently
	// (default 2) — each one fans out to the whole fleet.
	Jobs int
	// QueueDepth bounds total queued jobs across tenants (default 16).
	QueueDepth int
	// TenantQuota caps one tenant's live (queued+running) jobs
	// (default 4; <=0 only via an explicit negative = unlimited).
	TenantQuota int
	// RangeRuns is the target shard size in runs (default 8). Smaller
	// ranges steal and rebalance faster; larger ones amortise per-job
	// HTTP overhead.
	RangeRuns int
	// Lease is how long a dispatched range may go unfinished before the
	// coordinator re-leases it to another worker (default 60s).
	Lease time.Duration
	// StealMax caps concurrent attempts per range, the original lease
	// included (default 2).
	StealMax int
	// Poll is the worker job poll cadence (default 200ms).
	Poll time.Duration
	// KeepJournals, when positive, bounds merged journals kept on disk:
	// after a job is compacted into the summary index, only the most
	// recent KeepJournals journals survive (0 keeps all).
	KeepJournals int
	// FindGrid resolves grid names (default experiments.FindGrid). The
	// coordinator and its workers must resolve identically or range
	// bounds will not line up.
	FindGrid server.GridResolver
	// Client tunes the per-worker HTTP clients; BaseURL is overwritten
	// per worker.
	Client client.Config
	// Registry receives coordinator metrics (default: fresh registry).
	Registry *metrics.Registry
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// Coordinator metric names.
const (
	MetricQueued         = "lggfed_queue_depth"
	MetricInflight       = "lggfed_inflight_jobs"
	MetricFleet          = "lggfed_fleet_size"
	MetricShed           = "lggfed_jobs_shed_total"
	MetricQuotaRefused   = "lggfed_jobs_quota_refused_total"
	MetricJobsDone       = "lggfed_jobs_done_total"
	MetricJobsFailed     = "lggfed_jobs_failed_total"
	MetricRangesDone     = "lggfed_ranges_done_total"
	MetricRangesStolen   = "lggfed_ranges_stolen_total"
	MetricRangesRetried  = "lggfed_ranges_retried_total"
	MetricCellsCompacted = "lggfed_cells_compacted_total"
)

var (
	errDrain        = errors.New("federation: draining")
	errClientCancel = errors.New("federation: cancelled by client")
)

// cjob is the in-memory state of one coordinator job.
type cjob struct {
	mu              sync.Mutex
	st              server.JobState
	cancel          context.CancelCauseFunc // non-nil while running
	cancelRequested bool
	doneCh          chan struct{} // closed at a terminal status
}

func (j *cjob) state() server.JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st
}

func (j *cjob) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Status.Terminal()
}

// worker is one fleet member.
type worker struct {
	url string
	cli *client.Client
}

// Coordinator shards sweep jobs across a fleet of lggd daemons.
// Construct with New, serve its Handler, stop with Drain.
type Coordinator struct {
	cfg    Config
	ledger *server.Ledger
	reg    *metrics.Registry
	rstore *resultStore

	mu       sync.Mutex
	jobs     map[string]*cjob
	order    []string
	keys     map[string]string // idempotency key → job id
	queue    *tenantQueue
	fleet    []*worker
	rrWorker int // round-robin cursor for range placement
	nextID   int
	draining bool

	wake  chan struct{}
	stopc chan struct{}
	wg    sync.WaitGroup

	gQueue, gInflight, gFleet          *metrics.Gauge
	cShed, cQuota, cDone, cFailed      *metrics.Counter
	cRanges, cStolen, cRetried, cCells *metrics.Counter
	ewmaMu                             sync.Mutex
	jobSecs                            float64
}

// New opens the state directory, replays the ledger (re-queueing
// unfinished jobs), connects the seed fleet and starts the dispatchers.
func New(cfg Config) (*Coordinator, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("federation: Config.StateDir is required")
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.TenantQuota == 0 {
		cfg.TenantQuota = 4
	}
	if cfg.RangeRuns <= 0 {
		cfg.RangeRuns = 8
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 60 * time.Second
	}
	if cfg.StealMax <= 0 {
		cfg.StealMax = 2
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.FindGrid == nil {
		cfg.FindGrid = experiments.FindGrid
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ledger, replay, err := server.OpenLedger(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	rstore, err := openResultStore(cfg.StateDir)
	if err != nil {
		ledger.Close()
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		ledger: ledger,
		reg:    cfg.Registry,
		rstore: rstore,
		jobs:   make(map[string]*cjob),
		keys:   make(map[string]string),
		queue:  newTenantQueue(cfg.TenantQuota, cfg.QueueDepth),
		wake:   make(chan struct{}, 1),
		stopc:  make(chan struct{}),
	}
	c.gQueue = c.reg.Gauge(MetricQueued, "Jobs waiting in the coordinator queue.")
	c.gInflight = c.reg.Gauge(MetricInflight, "Coordinator jobs currently sharded across the fleet.")
	c.gFleet = c.reg.Gauge(MetricFleet, "Workers in the fleet.")
	c.cShed = c.reg.Counter(MetricShed, "Submissions shed because the shared queue was full.")
	c.cQuota = c.reg.Counter(MetricQuotaRefused, "Submissions refused by a tenant's quota.")
	c.cDone = c.reg.Counter(MetricJobsDone, "Coordinator jobs merged to completion.")
	c.cFailed = c.reg.Counter(MetricJobsFailed, "Coordinator jobs that failed.")
	c.cRanges = c.reg.Counter(MetricRangesDone, "Ranges completed by the fleet.")
	c.cStolen = c.reg.Counter(MetricRangesStolen, "Ranges re-leased past their straggler deadline.")
	c.cRetried = c.reg.Counter(MetricRangesRetried, "Range attempts retried after a worker failure.")
	c.cCells = c.reg.Counter(MetricCellsCompacted, "Per-cell summaries written to the result index.")

	for _, url := range cfg.Workers {
		if err := c.addWorker(url, false); err != nil {
			ledger.Close()
			return nil, err
		}
	}

	for _, rec := range replay {
		jb := &cjob{st: rec, doneCh: make(chan struct{})}
		if n, ok := jobIDNumber(rec.ID); ok && n >= c.nextID {
			c.nextID = n + 1
		}
		if rec.Spec.IdempotencyKey != "" {
			c.keys[rec.Spec.IdempotencyKey] = rec.ID
		}
		c.jobs[rec.ID] = jb
		c.order = append(c.order, rec.ID)
		if rec.Status.Terminal() {
			close(jb.doneCh)
			continue
		}
		jb.st.Status = server.StatusQueued
		c.queue.push(rec.Spec.Tenant, jb)
		cfg.Logf("lggfed: resuming %s (%s, %d/%d runs merged)", rec.ID, rec.Spec.Grid, rec.Done, rec.Total)
	}
	c.gQueue.Set(int64(c.queue.pending()))

	c.wg.Add(cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		go c.dispatcher()
	}
	return c, nil
}

// jobIDNumber parses the numeric suffix of "job-%08d".
func jobIDNumber(id string) (int, bool) {
	const p = "job-"
	if !strings.HasPrefix(id, p) || len(id) == len(p) {
		return 0, false
	}
	n, err := strconv.Atoi(id[len(p):])
	return n, err == nil
}

// addWorker connects a worker URL to the fleet. ping validates the
// worker's liveness first (used by the join endpoint; seed workers are
// added unpinged so the coordinator can start ahead of its fleet).
func (c *Coordinator) addWorker(url string, ping bool) error {
	ccfg := c.cfg.Client
	ccfg.BaseURL = url
	cli, err := client.New(ccfg)
	if err != nil {
		return fmt.Errorf("federation: worker %s: %w", url, err)
	}
	if ping {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := cli.Ping(ctx); err != nil {
			return fmt.Errorf("federation: worker %s failed liveness: %w", url, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.fleet {
		if w.url == url {
			return nil // already joined; re-registration is a no-op
		}
	}
	c.fleet = append(c.fleet, &worker{url: url, cli: cli})
	c.gFleet.Set(int64(len(c.fleet)))
	c.cfg.Logf("lggfed: worker %s joined (fleet size %d)", url, len(c.fleet))
	return nil
}

// Fleet lists the current worker URLs in join order.
func (c *Coordinator) Fleet() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.fleet))
	for i, w := range c.fleet {
		out[i] = w.url
	}
	return out
}

// fleetSnapshot returns the workers and advances nothing.
func (c *Coordinator) fleetSnapshot() []*worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*worker(nil), c.fleet...)
}

// nextWorker picks the next worker round-robin, preferring one whose
// URL is not in exclude (a steal must land somewhere new when the fleet
// allows it).
func (c *Coordinator) nextWorker(exclude map[string]bool) *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.fleet)
	if n == 0 {
		return nil
	}
	for i := 0; i < n; i++ {
		w := c.fleet[(c.rrWorker+i)%n]
		if !exclude[w.url] {
			c.rrWorker = (c.rrWorker + i + 1) % n
			return w
		}
	}
	w := c.fleet[c.rrWorker%n]
	c.rrWorker = (c.rrWorker + 1) % n
	return w
}

// Admit validates and enqueues a job, mirroring the single daemon's
// semantics plus the tenant layer: quota exhaustion and a full shared
// queue both shed with Unavailable (HTTP 429 + Retry-After), drain
// refuses with the 503 variant.
func (c *Coordinator) Admit(spec server.JobSpec, key string) (server.JobState, bool, error) {
	spec = spec.WithDefaults()
	if key != "" {
		spec.IdempotencyKey = key
	}
	if err := spec.Validate(c.cfg.FindGrid); err != nil {
		return server.JobState{}, false, err
	}
	if spec.RunCount > 0 || spec.RunStart > 0 {
		return server.JobState{}, false, fmt.Errorf("federation: run_start/run_count are reserved for the coordinator's own sharding")
	}
	c.mu.Lock()
	if c.draining {
		ra := c.retryAfterLocked()
		c.mu.Unlock()
		return server.JobState{}, false, &server.Unavailable{Draining: true, RetryAfter: ra}
	}
	if spec.IdempotencyKey != "" {
		if id, ok := c.keys[spec.IdempotencyKey]; ok {
			jb := c.jobs[id]
			c.mu.Unlock()
			return jb.state(), false, nil
		}
	}
	overQuota, full := c.queue.admissible(spec.Tenant)
	if overQuota || full {
		ra := c.retryAfterLocked()
		c.mu.Unlock()
		if overQuota {
			c.cQuota.Inc()
			return server.JobState{}, false, &server.Unavailable{RetryAfter: ra}
		}
		c.cShed.Inc()
		return server.JobState{}, false, &server.Unavailable{RetryAfter: ra}
	}
	id := fmt.Sprintf("job-%08d", c.nextID)
	c.nextID++
	jb := &cjob{st: server.JobState{ID: id, Spec: spec, Status: server.StatusQueued}, doneCh: make(chan struct{})}
	if err := c.ledger.Append(jb.st); err != nil {
		c.nextID--
		c.mu.Unlock()
		return server.JobState{}, false, err
	}
	c.jobs[id] = jb
	c.order = append(c.order, id)
	if spec.IdempotencyKey != "" {
		c.keys[spec.IdempotencyKey] = id
	}
	c.queue.push(spec.Tenant, jb)
	c.gQueue.Set(int64(c.queue.pending()))
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return jb.state(), true, nil
}

// retryAfterLocked derives the Retry-After hint from queue pressure and
// the measured mean job duration. Requires c.mu.
func (c *Coordinator) retryAfterLocked() int {
	c.ewmaMu.Lock()
	mean := c.jobSecs
	c.ewmaMu.Unlock()
	if mean <= 0 {
		mean = 1
	}
	secs := int(math.Ceil(mean * float64(c.queue.pending()+1) / float64(c.cfg.Jobs)))
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

func (c *Coordinator) observeJobSeconds(secs float64) {
	c.ewmaMu.Lock()
	if c.jobSecs == 0 {
		c.jobSecs = secs
	} else {
		c.jobSecs = 0.7*c.jobSecs + 0.3*secs
	}
	c.ewmaMu.Unlock()
}

// Job returns a job's state by id.
func (c *Coordinator) Job(id string) (server.JobState, bool) {
	c.mu.Lock()
	jb, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return server.JobState{}, false
	}
	return jb.state(), true
}

// Jobs lists every known job in submission order.
func (c *Coordinator) Jobs() []server.JobState {
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	m := c.jobs
	c.mu.Unlock()
	out := make([]server.JobState, 0, len(ids))
	for _, id := range ids {
		out = append(out, m[id].state())
	}
	return out
}

// Cancel requests cancellation. Queued jobs cancel immediately (and
// refund their tenant's quota); running jobs cancel mid-merge, keeping
// the merged prefix; terminal jobs are left alone.
func (c *Coordinator) Cancel(id string) (server.JobState, bool) {
	c.mu.Lock()
	jb, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return server.JobState{}, false
	}
	jb.mu.Lock()
	switch {
	case jb.st.Status.Terminal():
		jb.mu.Unlock()
	case jb.st.Status == server.StatusQueued:
		tenant := jb.st.Spec.Tenant
		jb.cancelRequested = true
		jb.st.Status = server.StatusCancelled
		jb.st.Error = errClientCancel.Error()
		st := jb.st
		close(jb.doneCh)
		jb.mu.Unlock()
		c.mu.Lock()
		if c.queue.remove(tenant, jb) {
			c.gQueue.Set(int64(c.queue.pending()))
		} else {
			c.queue.release(tenant)
		}
		c.mu.Unlock()
		c.persist(st)
	default: // running
		jb.cancelRequested = true
		cancel := jb.cancel
		jb.mu.Unlock()
		if cancel != nil {
			cancel(errClientCancel)
		}
	}
	return jb.state(), true
}

func (c *Coordinator) persist(st server.JobState) {
	if err := c.ledger.Append(st); err != nil {
		c.cfg.Logf("lggfed: ledger append for %s: %v", st.ID, err)
	}
}

// JournalPath exposes where a job's merged journal lives (the results
// stream and the fleet smoke test read it).
func (c *Coordinator) JournalPath(id string) string { return c.ledger.JournalPath(id) }

// dispatcher pops queued jobs fair-share and shards them until drain.
func (c *Coordinator) dispatcher() {
	defer c.wg.Done()
	for {
		jb := c.pop()
		if jb == nil {
			return
		}
		c.executeJob(jb)
	}
}

func (c *Coordinator) pop() *cjob {
	for {
		c.mu.Lock()
		if c.draining {
			c.mu.Unlock()
			return nil
		}
		if jb := c.queue.pop(); jb != nil {
			c.gQueue.Set(int64(c.queue.pending()))
			c.mu.Unlock()
			return jb
		}
		c.mu.Unlock()
		select {
		case <-c.wake:
		case <-c.stopc:
			return nil
		}
	}
}

// finish moves a job terminal, refunds its quota and persists.
func (c *Coordinator) finish(jb *cjob, status server.JobStatus, errMsg string) {
	jb.mu.Lock()
	if jb.st.Status.Terminal() {
		jb.mu.Unlock()
		return
	}
	jb.st.Status = status
	jb.st.Error = errMsg
	st := jb.st
	close(jb.doneCh)
	jb.mu.Unlock()
	c.mu.Lock()
	c.queue.release(st.Spec.Tenant)
	c.mu.Unlock()
	switch status {
	case server.StatusDone:
		c.cDone.Inc()
	case server.StatusFailed:
		c.cFailed.Inc()
	}
	c.persist(st)
	c.cfg.Logf("lggfed: %s → %s (%d/%d runs)", st.ID, status, st.Done, st.Total)
}

// runRange is one contiguous shard of a job.
type runRange struct {
	start, count int
}

// executeJob shards one job across the fleet, merges the returned
// ranges into the job's journal in global index order, and compacts the
// finished job into the result index.
func (c *Coordinator) executeJob(jb *cjob) {
	jb.mu.Lock()
	if jb.st.Status.Terminal() { // cancelled while queued
		jb.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	jb.cancel = cancel
	jb.st.Status = server.StatusRunning
	spec := jb.st.Spec
	id := jb.st.ID
	st := jb.st
	jb.mu.Unlock()
	defer cancel(nil)
	c.persist(st)
	c.gInflight.Add(1)
	defer c.gInflight.Add(-1)
	start := time.Now()

	g, err := c.cfg.FindGrid(spec.Grid)
	if err != nil {
		c.finish(jb, server.StatusFailed, err.Error())
		return
	}
	total := len(g.Jobs(spec.Config()))
	if total == 0 {
		c.finish(jb, server.StatusFailed, "grid enumerates zero runs")
		return
	}

	journal, prefix, err := sweep.OpenJournalResume(c.ledger.JournalPath(id), total)
	if err != nil {
		c.finish(jb, server.StatusFailed, err.Error())
		return
	}

	var (
		mergeMu sync.Mutex
		merged  = make([]sweep.Result, 0, total)
	)
	merged = append(merged, prefix...)
	merger := sweep.NewMerger(total, func(r sweep.Result) error {
		merged = append(merged, r)
		if err := journal.Append(r); err != nil {
			return err
		}
		jb.mu.Lock()
		jb.st.Done++
		countRecovery(&jb.st, r.Recovery, +1)
		jb.mu.Unlock()
		return nil
	})
	merger.Resume(len(prefix))

	jb.mu.Lock()
	jb.st.Total = total
	jb.st.Done = len(prefix)
	jb.st.Recovered, jb.st.Degraded, jb.st.Indeterminate = 0, 0, 0
	for _, r := range prefix {
		countRecovery(&jb.st, r.Recovery, +1)
	}
	jb.mu.Unlock()

	// The merged prefix is already durable; shard only what remains.
	var ranges []runRange
	for s := len(prefix); s < total; s += c.cfg.RangeRuns {
		n := c.cfg.RangeRuns
		if s+n > total {
			n = total - s
		}
		ranges = append(ranges, runRange{start: s, count: n})
	}

	// jobKey makes worker-side idempotency keys deterministic per
	// coordinator job, so a restarted coordinator (same ledger, same
	// job id) re-attaches to worker jobs it already submitted instead
	// of re-running them.
	jobKey := id
	if spec.IdempotencyKey != "" {
		jobKey = spec.IdempotencyKey
	}

	width := len(c.fleetSnapshot())
	if width < 1 {
		width = 1
	}
	sem := make(chan struct{}, width)
	var (
		wg       sync.WaitGroup
		failMu   sync.Mutex
		firstErr error
	)
	for _, rg := range ranges {
		rg := rg
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rs, err := c.runRange(ctx, spec, jobKey, rg)
			if err != nil {
				failMu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel(err) // one lost range fails the job; stop the rest
				}
				failMu.Unlock()
				return
			}
			mergeMu.Lock()
			err = merger.Add(rs)
			mergeMu.Unlock()
			if err != nil {
				failMu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel(err)
				}
				failMu.Unlock()
				return
			}
			c.cRanges.Inc()
		}()
	}
	wg.Wait()

	runErr := firstErr
	if runErr == nil {
		mergeMu.Lock()
		runErr = merger.Close()
		mergeMu.Unlock()
	}
	if cerr := journal.Close(); cerr != nil && runErr == nil {
		runErr = fmt.Errorf("journal close: %w", cerr)
	}
	c.observeJobSeconds(time.Since(start).Seconds())

	switch cause := context.Cause(ctx); {
	case runErr == nil:
		c.compact(jb, spec, merged)
		c.finish(jb, server.StatusDone, "")
	case errors.Is(cause, errClientCancel):
		c.finish(jb, server.StatusCancelled, errClientCancel.Error())
	case errors.Is(cause, errDrain):
		// Drain checkpoint: the journal holds the merged prefix; back to
		// queued for the next start (idempotency keys re-attach worker
		// jobs that kept running).
		jb.mu.Lock()
		jb.st.Status = server.StatusQueued
		st := jb.st
		jb.mu.Unlock()
		c.persist(st)
		c.cfg.Logf("lggfed: %s checkpointed at %d/%d runs for drain", id, st.Done, st.Total)
	default:
		c.finish(jb, server.StatusFailed, runErr.Error())
	}
}

// countRecovery adjusts a job state's recovery tallies.
func countRecovery(st *server.JobState, verdict string, delta int) {
	switch verdict {
	case "Recovered":
		st.Recovered += delta
	case "Degraded":
		st.Degraded += delta
	case "Indeterminate":
		st.Indeterminate += delta
	}
}

// rangeOutcome is one attempt's verdict.
type rangeOutcome struct {
	rs  []sweep.Result
	err error
	url string
}

// runRange executes one shard with straggler work-stealing: the first
// attempt gets Lease to finish; each lease expiry launches another
// attempt on a different worker (up to StealMax live attempts) and the
// first success wins. Failed attempts relaunch immediately on the next
// worker. The attempt budget is maxAttempts; exhausting it fails the
// range (and hence the job).
func (c *Coordinator) runRange(ctx context.Context, spec server.JobSpec, jobKey string, rg runRange) ([]sweep.Result, error) {
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel() // losers stop polling once a winner returns

	fleetSize := len(c.fleetSnapshot())
	if fleetSize == 0 {
		return nil, fmt.Errorf("federation: no workers in the fleet")
	}
	maxAttempts := 2 * fleetSize
	if maxAttempts < 3 {
		maxAttempts = 3
	}
	// Buffered to the attempt budget: an abandoned attempt's send never
	// blocks, so no goroutine outlives the range by more than its own
	// HTTP teardown.
	outcome := make(chan rangeOutcome, maxAttempts)
	tried := make(map[string]bool)
	attempts, live := 0, 0
	var lastErr error

	launch := func() {
		w := c.nextWorker(tried)
		if w == nil {
			return
		}
		tried[w.url] = true
		attempts++
		live++
		go func() {
			rs, err := c.attemptRange(rctx, w, spec, jobKey, rg)
			outcome <- rangeOutcome{rs: rs, err: err, url: w.url}
		}()
	}
	launch()
	lease := time.NewTimer(c.cfg.Lease)
	defer lease.Stop()

	for {
		select {
		case o := <-outcome:
			live--
			if o.err == nil {
				return o.rs, nil
			}
			lastErr = fmt.Errorf("range %d+%d on %s: %w", rg.start, rg.count, o.url, o.err)
			if rctx.Err() != nil {
				return nil, lastErr
			}
			c.cfg.Logf("lggfed: %v", lastErr)
			if attempts >= maxAttempts {
				if live == 0 {
					return nil, fmt.Errorf("federation: range abandoned after %d attempts: %w", attempts, lastErr)
				}
				continue // a steal is still in flight; it may yet win
			}
			c.cRetried.Inc()
			launch()
		case <-lease.C:
			if live < c.cfg.StealMax && attempts < maxAttempts {
				c.cStolen.Inc()
				c.cfg.Logf("lggfed: range %d+%d past its %v lease, re-leasing", rg.start, rg.count, c.cfg.Lease)
				launch()
			}
			lease.Reset(c.cfg.Lease)
		case <-rctx.Done():
			return nil, rctx.Err()
		}
	}
}

// attemptRange runs one shard on one worker: submit the range job
// (deterministic idempotency key → retries and coordinator restarts
// re-attach, never duplicate), poll to terminal, fetch and sanity-check
// the results. A context cancelled mid-wait (a steal won, or the job
// was cancelled) reaps the worker-side job best-effort.
func (c *Coordinator) attemptRange(ctx context.Context, w *worker, spec server.JobSpec, jobKey string, rg runRange) ([]sweep.Result, error) {
	spec.RunStart, spec.RunCount = rg.start, rg.count
	spec.IdempotencyKey = fmt.Sprintf("%s/%d+%d", jobKey, rg.start, rg.count)
	st, err := w.cli.Submit(ctx, spec)
	if err != nil {
		return nil, fmt.Errorf("submit: %w", err)
	}
	workerJob := st.ID
	st, err = w.cli.Wait(ctx, workerJob, c.cfg.Poll)
	if err != nil {
		if ctx.Err() != nil {
			reap, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, _ = w.cli.Cancel(reap, workerJob)
			cancel()
		}
		return nil, fmt.Errorf("wait: %w", err)
	}
	if st.Status != server.StatusDone {
		return nil, fmt.Errorf("worker job %s ended %s: %s", workerJob, st.Status, st.Error)
	}
	rs, err := w.cli.Results(ctx, workerJob)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	if len(rs) != rg.count {
		return nil, fmt.Errorf("worker returned %d results for a %d-run range", len(rs), rg.count)
	}
	for i, r := range rs {
		if r.Index != rg.start+i {
			return nil, fmt.Errorf("worker result %d has index %d, want %d (determinism contract violated)", i, r.Index, rg.start+i)
		}
	}
	return rs, nil
}

// compact distils a finished job into per-cell summaries in the result
// index. Compaction failures are logged, not fatal — the merged journal
// remains the source of truth.
func (c *Coordinator) compact(jb *cjob, spec server.JobSpec, merged []sweep.Result) {
	st := jb.state()
	n, err := c.rstore.compact(st.ID, spec, merged, c.cfg.KeepJournals, c.ledger.RemoveJournal)
	if err != nil {
		c.cfg.Logf("lggfed: compact %s: %v", st.ID, err)
		return
	}
	c.cCells.Add(int64(n))
}

// Draining reports whether admission is closed.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Drain gracefully stops the coordinator: admission closes immediately,
// queued jobs stay durably queued, in-flight jobs get until ctx's
// deadline before being checkpointed mid-merge (their journals keep the
// merged prefix; worker-side range jobs keep running and are re-attached
// by idempotency key on the next start).
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return fmt.Errorf("federation: already draining")
	}
	c.draining = true
	c.mu.Unlock()
	close(c.stopc)

	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		c.mu.Lock()
		running := make([]*cjob, 0, len(c.order))
		for _, id := range c.order {
			running = append(running, c.jobs[id])
		}
		c.mu.Unlock()
		for _, jb := range running {
			jb.mu.Lock()
			cancel := jb.cancel
			active := jb.st.Status == server.StatusRunning
			jb.mu.Unlock()
			if active && cancel != nil {
				cancel(errDrain)
			}
		}
		<-done
	}
	if err := c.rstore.close(); err != nil {
		c.ledger.Close()
		return err
	}
	return c.ledger.Close()
}
