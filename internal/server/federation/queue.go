package federation

// The tenant queue is the coordinator's admission layer: a bounded
// multi-tenant queue that (a) caps each tenant's live jobs — queued plus
// running — at a quota, and (b) dispatches round-robin across tenants
// with pending work, so a tenant that bulk-submits cannot starve the
// others however deep its backlog. Both refusals surface through the
// daemon's existing backpressure vocabulary (HTTP 429 + Retry-After),
// so the hardened client's retry/breaker machinery needs no changes to
// talk to a coordinator.

// tenantQueue implements per-tenant quotas with fair-share dispatch.
// Not safe for concurrent use; the Coordinator serializes access under
// its own mutex.
type tenantQueue struct {
	quota  int // max live (queued+running) jobs per tenant; <=0 = unlimited
	depth  int // max total queued jobs across tenants
	queued int // current total queued

	tenants map[string]*tenantState
	rr      []string // tenant names in first-seen order, the round-robin ring
	rrNext  int      // ring position of the next dispatch scan
}

type tenantState struct {
	fifo []*cjob // queued jobs, submission order
	live int     // queued + running jobs counted against the quota
}

func newTenantQueue(quota, depth int) *tenantQueue {
	return &tenantQueue{quota: quota, depth: depth, tenants: make(map[string]*tenantState)}
}

// state returns (creating if needed) the tenant's bookkeeping and its
// ring slot.
func (q *tenantQueue) state(tenant string) *tenantState {
	ts, ok := q.tenants[tenant]
	if !ok {
		ts = &tenantState{}
		q.tenants[tenant] = ts
		q.rr = append(q.rr, tenant)
	}
	return ts
}

// admissible reports whether the tenant may enqueue one more job:
// overQuota means its live-job quota is exhausted; full means the
// shared queue bound is hit. Admission is refused for either.
func (q *tenantQueue) admissible(tenant string) (overQuota, full bool) {
	if q.quota > 0 {
		if ts, ok := q.tenants[tenant]; ok && ts.live >= q.quota {
			overQuota = true
		}
	}
	return overQuota, q.depth > 0 && q.queued >= q.depth
}

// push enqueues an admitted job and charges the tenant's quota.
func (q *tenantQueue) push(tenant string, jb *cjob) {
	ts := q.state(tenant)
	ts.fifo = append(ts.fifo, jb)
	ts.live++
	q.queued++
}

// pop dequeues the next job fair-share: the scan starts one past the
// tenant served last time and takes the first tenant with pending work,
// so each tenant in the ring gets one job per round regardless of
// backlog depth. The popped job stays live (running) until release.
func (q *tenantQueue) pop() *cjob {
	n := len(q.rr)
	for i := 0; i < n; i++ {
		name := q.rr[(q.rrNext+i)%n]
		ts := q.tenants[name]
		if len(ts.fifo) == 0 {
			continue
		}
		jb := ts.fifo[0]
		ts.fifo = ts.fifo[1:]
		q.queued--
		q.rrNext = (q.rrNext + i + 1) % n
		return jb
	}
	return nil
}

// remove drops a specific queued job (client cancel before dispatch)
// and refunds its quota charge. Reports whether it was found queued.
func (q *tenantQueue) remove(tenant string, jb *cjob) bool {
	ts, ok := q.tenants[tenant]
	if !ok {
		return false
	}
	for i, cand := range ts.fifo {
		if cand == jb {
			ts.fifo = append(ts.fifo[:i], ts.fifo[i+1:]...)
			ts.live--
			q.queued--
			return true
		}
	}
	return false
}

// release uncharges a tenant's quota when one of its jobs reaches a
// terminal state (done, failed, or cancelled while running).
func (q *tenantQueue) release(tenant string) {
	if ts, ok := q.tenants[tenant]; ok && ts.live > 0 {
		ts.live--
	}
}

// setQuota changes the per-tenant live-job cap. Lowering it below a
// tenant's current live count evicts nothing — the tenant simply admits
// no new jobs until completions bring it back under the cap.
func (q *tenantQueue) setQuota(quota int) { q.quota = quota }

// alignAfter re-seats the round-robin scan to start just past tenant.
// A restarted coordinator rebuilds the ring from its ledger replay and
// calls this with the last tenant dispatched before the crash, so the
// tenant served last is not served first again. An unknown (or empty)
// tenant leaves the cursor alone.
func (q *tenantQueue) alignAfter(tenant string) {
	for i, name := range q.rr {
		if name == tenant {
			q.rrNext = (i + 1) % len(q.rr)
			return
		}
	}
}

// pending reports the total queued jobs.
func (q *tenantQueue) pending() int { return q.queued }
