package federation

import (
	"testing"

	"repro/internal/server"
)

// TestTenantQueueFairShareUnderChurn exercises the round-robin ring
// while tenants join and leave mid-dispatch: a newcomer slots into the
// scan immediately, departures leave the survivors' ordering intact.
func TestTenantQueueFairShareUnderChurn(t *testing.T) {
	q := newTenantQueue(4, 16)
	ja1, ja2, ja3 := &cjob{}, &cjob{}, &cjob{}
	jb1, jc1 := &cjob{}, &cjob{}

	q.push("a", ja1)
	q.push("a", ja2)
	q.push("b", jb1)
	if got := q.pop(); got != ja1 {
		t.Fatal("first pop should serve tenant a's first job")
	}
	// Tenant c joins mid-dispatch: the scan reaches it this round,
	// after b but before a comes around again.
	q.push("c", jc1)
	if got := q.pop(); got != jb1 {
		t.Fatal("second pop should serve b")
	}
	if got := q.pop(); got != jc1 {
		t.Fatal("third pop should serve the newly joined c")
	}
	if got := q.pop(); got != ja2 {
		t.Fatal("fourth pop should wrap back to a's backlog")
	}

	// b and c finish everything and leave; a's quota accounting and ring
	// position survive the churn.
	q.release("b")
	q.release("c")
	q.release("a")
	q.release("a")
	q.push("a", ja3)
	if got := q.pop(); got != ja3 {
		t.Fatal("post-churn pop should serve a's new job")
	}
	if got := q.pop(); got != nil {
		t.Fatal("empty queue popped a job")
	}
}

// TestTenantQueueQuotaLoweredBelowLive: shrinking the quota under a
// tenant's live count evicts nothing — admission is simply refused
// until completions bring the tenant back under the new cap.
func TestTenantQueueQuotaLoweredBelowLive(t *testing.T) {
	q := newTenantQueue(4, 16)
	for i := 0; i < 3; i++ {
		q.push("a", &cjob{})
	}
	if q.pop() == nil || q.pop() == nil {
		t.Fatal("setup pops failed")
	}
	// live = 3 (1 queued + 2 running); the cap drops to 1.
	q.setQuota(1)
	if over, _ := q.admissible("a"); !over {
		t.Fatal("tenant above the lowered quota was admissible")
	}
	// The already-queued job still dispatches: lowering the quota does
	// not evict.
	if q.pop() == nil {
		t.Fatal("queued job was evicted by the quota change")
	}
	q.release("a") // live 2
	if over, _ := q.admissible("a"); !over {
		t.Fatal("tenant still above quota was admissible")
	}
	q.release("a") // live 1 == quota: still refused
	if over, _ := q.admissible("a"); !over {
		t.Fatal("tenant at quota was admissible")
	}
	q.release("a") // live 0
	if over, _ := q.admissible("a"); over {
		t.Fatal("tenant under quota was refused")
	}
}

// TestRoundRobinAlignsAcrossRestart replays a ledger whose last
// dispatch went to tenant a, rebuilds the queue the way the coordinator
// does on restart, and checks the round-robin cursor resumes one past a
// — the tenant served last before the crash is not served first again.
func TestRoundRobinAlignsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ledger, _, err := server.OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := func(id, tenant string, status server.JobStatus) server.JobState {
		return server.JobState{ID: id, Spec: server.JobSpec{Tenant: tenant}, Status: status}
	}
	for _, js := range []server.JobState{
		job("job-00000000", "a", server.StatusQueued),
		job("job-00000001", "b", server.StatusQueued),
		job("job-00000002", "a", server.StatusQueued),
		job("job-00000000", "a", server.StatusRunning), // the pre-crash dispatch
	} {
		if err := ledger.Append(js); err != nil {
			t.Fatal(err)
		}
	}
	if err := ledger.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, replay, err := server.OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.LastDispatchedTenant(); got != "a" {
		t.Fatalf("LastDispatchedTenant = %q, want a", got)
	}

	// Rebuild the queue exactly as the coordinator's replay does: every
	// non-terminal job re-queued in ledger order, then the cursor
	// re-seated past the last dispatched tenant.
	q := newTenantQueue(4, 16)
	for _, js := range replay {
		if !js.Status.Terminal() {
			q.push(js.Spec.Tenant, &cjob{st: js})
		}
	}
	q.alignAfter(reopened.LastDispatchedTenant())

	var order []string
	for jb := q.pop(); jb != nil; jb = q.pop() {
		order = append(order, jb.st.ID)
	}
	want := []string{"job-00000001", "job-00000000", "job-00000002"}
	if len(order) != len(want) {
		t.Fatalf("popped %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("restart dispatch order %v, want %v (b first: a was served last before the crash)", order, want)
		}
	}
}
