package federation

import (
	"math"
	"sync"
	"time"

	"repro/internal/server"
)

// Worker health scoring. The coordinator keeps, per worker, an EWMA of
// the observed service rate (runs per second across completed ranges)
// and of the attempt error share. Two scheduling decisions ride on it:
//
//   - Adaptive leases. Instead of a fixed -lease, a worker's straggler
//     lease is LeaseFactor times the time the fleet should need for the
//     range: lease = LeaseFactor · runs / max(workerRate, fleetMean).
//     Using the fleet mean as a floor matters — a slow worker scored by
//     its own rate would earn a LONGER lease, exactly backwards; the
//     floor means a worker materially slower than its peers gets stolen
//     from sooner. With no observations yet the configured Lease acts
//     as the cold-start ceiling, so the old fixed behaviour is the
//     degenerate case.
//
//   - Brown-out. When a worker's error share crosses
//     BrownoutErrRate (with at least BrownoutMinEvents observations),
//     the coordinator stops dispatching to it. In-flight ranges drain
//     normally — idempotent re-attach makes their completions free.
//     After BrownoutCooldown one half-open probe range is allowed
//     through; success restores the worker, failure re-browns it.
//
// Like membership, time is injectable for virtual-clock tests.

// HealthConfig tunes the health board. Zero values take defaults.
type HealthConfig struct {
	// Alpha is the EWMA smoothing factor in (0,1]; default 0.3.
	Alpha float64
	// BrownoutErrRate is the smoothed error share that browns a worker
	// out; default 0.5.
	BrownoutErrRate float64
	// BrownoutMinEvents is the observation floor before brown-out can
	// trigger (one flaky first attempt must not bench a worker);
	// default 3.
	BrownoutMinEvents int
	// BrownoutCooldown is how long a browned-out worker sits before a
	// half-open probe; default 20s.
	BrownoutCooldown time.Duration
	// LeaseFactor multiplies the expected range duration into a lease;
	// default 3.
	LeaseFactor float64
	// MinLease floors the adaptive lease; default 1s.
	MinLease time.Duration
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.BrownoutErrRate <= 0 {
		c.BrownoutErrRate = 0.5
	}
	if c.BrownoutMinEvents <= 0 {
		c.BrownoutMinEvents = 3
	}
	if c.BrownoutCooldown <= 0 {
		c.BrownoutCooldown = 20 * time.Second
	}
	if c.LeaseFactor <= 0 {
		c.LeaseFactor = 3
	}
	if c.MinLease <= 0 {
		c.MinLease = time.Second
	}
	return c
}

// workerHealth is one worker's running score.
type workerHealth struct {
	rate      float64 // EWMA runs/sec, 0 until first success
	declared  float64 // self-reported capacity hint (runs/sec), 0 = none
	errShare  float64 // EWMA of attempt failures in [0,1]
	events    int     // total observations
	successes int64
	failures  int64

	brownedUntil time.Time // zero = not browned out
	probing      bool      // half-open probe in flight
}

// healthBoard scores every worker the coordinator knows.
type healthBoard struct {
	cfg      HealthConfig
	maxLease time.Duration // configured Lease: cold-start value and ceiling
	now      func() time.Time

	mu sync.Mutex
	w  map[string]*workerHealth
}

func newHealthBoard(cfg HealthConfig, maxLease time.Duration, now func() time.Time) *healthBoard {
	if now == nil {
		now = time.Now
	}
	return &healthBoard{
		cfg:      cfg.withDefaults(),
		maxLease: maxLease,
		now:      now,
		w:        make(map[string]*workerHealth),
	}
}

func (h *healthBoard) get(url string) *workerHealth {
	wh, ok := h.w[url]
	if !ok {
		wh = &workerHealth{}
		h.w[url] = wh
	}
	return wh
}

// success records a completed range of runs taking dur. It clears any
// brown-out: the worker just proved itself.
func (h *healthBoard) success(url string, runs int, dur time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	wh := h.get(url)
	a := h.cfg.Alpha
	if secs := dur.Seconds(); secs > 0 && runs > 0 {
		obs := float64(runs) / secs
		if wh.rate == 0 {
			wh.rate = obs
		} else {
			wh.rate = (1-a)*wh.rate + a*obs
		}
	}
	wh.errShare = (1 - a) * wh.errShare
	wh.events++
	wh.successes++
	wh.brownedUntil = time.Time{}
	wh.probing = false
}

// declare records a worker's self-reported capacity hint (runs per
// second), refreshed on every join/heartbeat POST. Declared capacity
// never replaces observation — effectiveRate takes the max of the two —
// so an optimistic worker is corrected by its own EWMA, while a declared
// capacity shapes dispatch before the first range completes.
func (h *healthBoard) declare(url string, runsPerSec float64) {
	if runsPerSec <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.get(url).declared = runsPerSec
}

// effectiveRate is the service rate dispatch should weight url by:
// max(declared capacity, observed EWMA). 0 means the worker has neither
// declared nor demonstrated anything yet.
func (h *healthBoard) effectiveRate(url string) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	wh, ok := h.w[url]
	if !ok {
		return 0
	}
	return math.Max(wh.declared, wh.rate)
}

// failure records a failed attempt and browns the worker out if its
// smoothed error share crosses the threshold (or if it failed its
// half-open probe).
func (h *healthBoard) failure(url string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	wh := h.get(url)
	a := h.cfg.Alpha
	wh.errShare = (1-a)*wh.errShare + a
	wh.events++
	wh.failures++
	failedProbe := wh.probing
	wh.probing = false
	if failedProbe ||
		(wh.events >= h.cfg.BrownoutMinEvents && wh.errShare >= h.cfg.BrownoutErrRate) {
		wh.brownedUntil = h.now().Add(h.cfg.BrownoutCooldown)
	}
}

// available reports whether url may be dispatched to. A browned-out
// worker whose cooldown elapsed gets exactly one half-open probe: the
// first caller claims it, concurrent callers are refused until the
// probe resolves.
func (h *healthBoard) available(url string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	wh, ok := h.w[url]
	if !ok || wh.brownedUntil.IsZero() {
		return true
	}
	if h.now().Before(wh.brownedUntil) {
		return false
	}
	if wh.probing {
		return false
	}
	wh.probing = true
	return true
}

// unhealthyNow reports whether url is browned out right now, without
// claiming the half-open probe slot the way available does — for
// callers that only want to look (the steal-budget widening).
func (h *healthBoard) unhealthyNow(url string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	wh, ok := h.w[url]
	return ok && !wh.brownedUntil.IsZero() && h.now().Before(wh.brownedUntil)
}

// lease is the adaptive straggler lease for a range of runs on url.
func (h *healthBoard) lease(url string, runs int) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	rate := 0.0
	if wh, ok := h.w[url]; ok {
		rate = math.Max(wh.rate, wh.declared)
	}
	// Floor a slow worker's rate at the fleet mean so falling behind the
	// fleet SHRINKS the lease rather than inflating it.
	var sum float64
	var n int
	for _, wh := range h.w {
		if r := math.Max(wh.rate, wh.declared); r > 0 {
			sum += r
			n++
		}
	}
	if n > 0 {
		if mean := sum / float64(n); mean > rate {
			rate = mean
		}
	}
	if rate <= 0 || runs <= 0 {
		return h.maxLease // cold start: the configured lease is the ceiling
	}
	lease := time.Duration(h.cfg.LeaseFactor * float64(runs) / rate * float64(time.Second))
	if lease < h.cfg.MinLease {
		lease = h.cfg.MinLease
	}
	if lease > h.maxLease {
		lease = h.maxLease
	}
	return lease
}

// snapshot exports url's health in wire form; rangeRuns sizes the
// advertised lease.
func (h *healthBoard) snapshot(url string, rangeRuns int) server.WorkerHealth {
	lease := h.lease(url, rangeRuns)
	h.mu.Lock()
	defer h.mu.Unlock()
	out := server.WorkerHealth{LeaseMS: lease.Milliseconds()}
	wh, ok := h.w[url]
	if !ok {
		return out
	}
	out.EWMARunsPerSec = wh.rate
	out.DeclaredRunsPerSec = wh.declared
	out.ErrShare = wh.errShare
	out.Successes = wh.successes
	out.Failures = wh.failures
	out.BrownedOut = !wh.brownedUntil.IsZero() && h.now().Before(wh.brownedUntil)
	return out
}

// forget drops url's score (the member aged out of the fleet).
func (h *healthBoard) forget(url string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.w, url)
}

// brownedOut counts currently browned-out workers.
func (h *healthBoard) brownedOut() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, wh := range h.w {
		if !wh.brownedUntil.IsZero() && h.now().Before(wh.brownedUntil) {
			n++
		}
	}
	return n
}
