package federation

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/server"
	"repro/internal/sweep"
)

// The result store is the coordinator's compaction layer. A finished
// job's merged journal is a full per-run JSONL — large, and mostly
// redundant once the job is done. Compaction distils it into per-cell
// summaries (sweep.AggregateCells, one line per network × router ×
// variant cell) appended to an indexed JSONL the GET /v1/results
// endpoint queries without ever replaying a journal. Optionally the
// store then bounds journal disk usage: with KeepJournals > 0 only the
// most recent merged journals survive compaction; evicted jobs remain
// fully queryable through their summaries.
//
// The index file follows the repo's ledger discipline — header line,
// whole-line fsynced appends, torn tail ignored on replay — so a
// killed coordinator loses at most the summaries of the job it was
// compacting, and that job's journal (still on disk, by eviction
// ordering) re-compacts on the next completion-path touch or is simply
// re-queryable as a stream.

// indexVersion tags the summary index format.
const indexVersion = "lggfed-results-v1"

type indexHeader struct {
	Index string `json:"index"`
}

// CellSummary is one compacted grid cell of one finished job — the unit
// GET /v1/results returns.
type CellSummary struct {
	// Job is the coordinator job the cell came from; Tenant is the
	// submitting tenant recorded at admission.
	Job    string `json:"job"`
	Tenant string `json:"tenant,omitempty"`
	// Seed is the job's root seed: together with the cell coordinates it
	// identifies the exact runs aggregated here.
	Seed uint64 `json:"seed"`
	sweep.CellStats
}

// resultStore owns the summary index and the compacted-journal
// retention bookkeeping.
type resultStore struct {
	mu        sync.Mutex
	f         *os.File
	enc       *json.Encoder
	cells     []CellSummary
	compacted []string // job ids in compaction order, for retention
}

// openResultStore opens (or initialises) the summary index in dir and
// replays it into memory.
func openResultStore(dir string) (*resultStore, error) {
	path := filepath.Join(dir, "results-index.jsonl")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("federation: result index: %w", err)
	}
	rs := &resultStore{f: f}
	br := bufio.NewReader(f)
	head, err := br.ReadBytes('\n')
	if err != nil {
		if len(head) > 0 && !errors.Is(err, io.EOF) {
			f.Close()
			return nil, fmt.Errorf("federation: result index: %w", err)
		}
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("federation: result index: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("federation: result index: %w", err)
		}
		rs.enc = json.NewEncoder(f)
		if err := rs.enc.Encode(indexHeader{Index: indexVersion}); err != nil {
			f.Close()
			return nil, fmt.Errorf("federation: result index header: %w", err)
		}
		return rs, f.Sync()
	}
	var hdr indexHeader
	if json.Unmarshal(head, &hdr) != nil || hdr.Index != indexVersion {
		f.Close()
		return nil, fmt.Errorf("federation: %s is not a %s index", path, indexVersion)
	}
	offset := int64(len(head))
	lastJob := ""
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			break // EOF or torn tail: everything before it stands
		}
		var cs CellSummary
		if json.Unmarshal(line, &cs) != nil || cs.Job == "" {
			break
		}
		rs.cells = append(rs.cells, cs)
		if cs.Job != lastJob {
			rs.compacted = append(rs.compacted, cs.Job)
			lastJob = cs.Job
		}
		offset += int64(len(line))
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, fmt.Errorf("federation: result index truncate: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("federation: result index seek: %w", err)
	}
	rs.enc = json.NewEncoder(f)
	return rs, nil
}

// compact aggregates a finished job's merged results into per-cell
// summaries, appends them durably to the index, and — when keep > 0 —
// evicts the oldest compacted journals beyond keep via removeJournal.
// Returns the number of cells written.
func (rs *resultStore) compact(jobID string, spec server.JobSpec, merged []sweep.Result, keep int, removeJournal func(id string)) (int, error) {
	cells, err := sweep.AggregateCells(merged, spec.Seeds)
	if err != nil {
		return 0, fmt.Errorf("aggregate: %w", err)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for i := range cells {
		cs := CellSummary{Job: jobID, Tenant: spec.Tenant, Seed: spec.Seed, CellStats: cells[i]}
		if err := rs.enc.Encode(&cs); err != nil {
			return 0, fmt.Errorf("index append: %w", err)
		}
		rs.cells = append(rs.cells, cs)
	}
	if err := rs.f.Sync(); err != nil {
		return 0, fmt.Errorf("index sync: %w", err)
	}
	rs.compacted = append(rs.compacted, jobID)
	if keep > 0 && removeJournal != nil {
		for len(rs.compacted) > keep {
			evict := rs.compacted[0]
			rs.compacted = rs.compacted[1:]
			removeJournal(evict)
		}
	}
	return len(cells), nil
}

// ResultFilter narrows a summary query; zero-value fields match
// everything.
type ResultFilter struct {
	Job     string
	Tenant  string
	Grid    string
	Network string
	Router  string
}

func (f ResultFilter) matches(cs CellSummary) bool {
	return (f.Job == "" || f.Job == cs.Job) &&
		(f.Tenant == "" || f.Tenant == cs.Tenant) &&
		(f.Grid == "" || f.Grid == cs.Grid) &&
		(f.Network == "" || f.Network == cs.Network) &&
		(f.Router == "" || f.Router == cs.Router)
}

// query returns the matching summaries in compaction order.
func (rs *resultStore) query(f ResultFilter) []CellSummary {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]CellSummary, 0, len(rs.cells))
	for _, cs := range rs.cells {
		if f.matches(cs) {
			out = append(out, cs)
		}
	}
	return out
}

// close flushes and closes the index.
func (rs *resultStore) close() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.f.Sync(); err != nil {
		rs.f.Close()
		return err
	}
	return rs.f.Close()
}
