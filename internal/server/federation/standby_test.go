package federation

import (
	"bytes"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
)

// TestStandbyFailoverKeepsBytesIdentical is the tentpole scenario: a
// standby tails the primary, the primary dies mid-sweep (its HTTP
// frontend goes away), the standby promotes itself and resumes the
// in-flight job — and the merged journal it produces is byte-identical
// to an unfailed single-daemon run. The standby is seeded with NO
// workers: its whole fleet view arrives by mirroring the primary.
func TestStandbyFailoverKeepsBytesIdentical(t *testing.T) {
	spec := server.JobSpec{Grid: "unit", Seeds: 20, Horizon: 150}
	ref := singleDaemonJournal(t, spec)

	// Slow the runs down so the primary dies mid-sweep, not after it.
	var urls []string
	for i := 0; i < 2; i++ {
		_, url := newWorker(t, func() { time.Sleep(50 * time.Millisecond) })
		urls = append(urls, url)
	}
	primary, primaryTS := newCoordinator(t, Config{RangeRuns: 2}, urls...)

	reg := metrics.NewRegistry()
	standby, _ := newCoordinator(t, Config{
		Standby:       true,
		Primary:       primaryTS.URL,
		Heartbeat:     40 * time.Millisecond,
		FailoverAfter: 300 * time.Millisecond,
		RangeRuns:     2,
		Registry:      reg,
	})
	if !standby.Standby() {
		t.Fatal("standby did not start in standby role")
	}

	st, created, err := primary.Admit(spec, "")
	if err != nil || !created {
		t.Fatalf("admit: created=%v err=%v", created, err)
	}

	// Wait until the sweep is demonstrably in flight on the primary AND
	// the standby has mirrored the job in a non-terminal state (plus the
	// fleet, which it can only have learned from heartbeats).
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("standby never mirrored the in-flight job")
		}
		pst, _ := primary.Job(st.ID)
		sst, mirrored := standby.Job(st.ID)
		if pst.Done > 0 && !pst.Status.Terminal() &&
			mirrored && !sst.Status.Terminal() && len(standby.Fleet()) == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the primary's frontend: heartbeats start failing now.
	primaryTS.Close()

	promoted := time.Now().Add(20 * time.Second)
	for standby.Standby() {
		if time.Now().After(promoted) {
			t.Fatal("standby never promoted itself")
		}
		time.Sleep(5 * time.Millisecond)
	}

	final := waitTerminal(t, standby, st.ID, 60*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("resumed job ended %s: %s", final.Status, final.Error)
	}
	if final.Done != 20 || final.Total != 20 {
		t.Fatalf("resumed job done %d/%d, want 20/20", final.Done, final.Total)
	}
	got, err := os.ReadFile(standby.JournalPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("post-failover merged journal differs from the unfailed run")
	}

	if v := reg.Counter(MetricFailovers, "").Value(); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricFailovers, v)
	}
	if v := reg.Gauge(MetricEpoch, "").Value(); v < 2 {
		t.Fatalf("%s = %d, want ≥ 2 (primary was epoch 1)", MetricEpoch, v)
	}
	if v := reg.Gauge(MetricStandby, "").Value(); v != 0 {
		t.Fatalf("%s = %d after promotion, want 0", MetricStandby, v)
	}
	if st := standby.Status(); st.Role != server.RolePrimary {
		t.Fatalf("promoted coordinator reports role %q, want %q", st.Role, server.RolePrimary)
	}
}

// TestStandbyRefusesSubmissions: before promotion a standby answers
// submissions with 503 + Retry-After so clients fail over by retrying,
// and reports unready on /readyz.
func TestStandbyRefusesSubmissions(t *testing.T) {
	// The primary is unreachable, but a huge FailoverAfter keeps the
	// standby in its standby role for the whole test.
	standby, ts := newCoordinator(t, Config{
		Standby:       true,
		Primary:       "http://127.0.0.1:1",
		FailoverAfter: time.Hour,
	})

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"grid":"unit","seeds":4,"horizon":150}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby answered %d to a submission, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("standby 503 carries no Retry-After")
	}

	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby /readyz answered %d, want 503", ready.StatusCode)
	}

	if standby.Standby() != true {
		t.Fatal("standby lost its role without a failover")
	}
}
