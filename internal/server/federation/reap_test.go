package federation

import (
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
)

// TestReapFailureIsRetriedAndCounted rigs a worker whose DELETE
// endpoint always 500s: when a client cancel abandons the in-flight
// worker job, the reaper must retry with backoff and — once it gives up
// — surface the leak on lggfed_reap_failures_total instead of silently
// dropping it.
func TestReapFailureIsRetriedAndCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	_, workerURL := newWorker(t, func() { time.Sleep(20 * time.Millisecond) })
	target, err := url.Parse(workerURL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(target)
	var polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete {
			http.Error(w, `{"error":"no deletes today"}`, http.StatusInternalServerError)
			return
		}
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			polls.Add(1)
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	c, _ := newCoordinator(t, Config{
		Registry:     reg,
		RangeRuns:    4,
		ReapAttempts: 2,
		ReapBackoff:  5 * time.Millisecond,
	}, ts.URL)

	st, created, err := c.Admit(testSpec(8), "")
	if err != nil || !created {
		t.Fatalf("admit: created=%v err=%v", created, err)
	}

	// Cancel only once the coordinator is demonstrably polling the
	// worker-side job — a cancel racing the submit response would find
	// no job handle to reap. The first status poll through the proxy
	// proves the attempt holds one.
	deadline := time.Now().Add(10 * time.Second)
	for polls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never polled the range job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := c.Cancel(st.ID); !ok {
		t.Fatal("cancel: job vanished")
	}
	final := waitTerminal(t, c, st.ID, 20*time.Second)
	if final.Status != server.StatusCancelled {
		t.Fatalf("job ended %s, want cancelled", final.Status)
	}

	ctr := reg.Counter(MetricReapFailures, "")
	deadline = time.Now().Add(10 * time.Second)
	for ctr.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%s stayed 0: the failed reap was never surfaced", MetricReapFailures)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
