package federation

import (
	"sort"
	"sync"
	"time"

	"repro/internal/server"
)

// Fleet membership with gossip-friendly ageing. The coordinator no
// longer trusts a static -fleet list: every worker contact (a join, a
// completed range, a probe) refreshes that member's lastSeen, members
// past the suspicion threshold are dispatched to only as a last resort,
// and members past the death threshold are dropped so their leases stop
// being renewed. Coordinators exchange views as []server.FleetMember
// carrying AGES, not timestamps — receiver-side ages are reconstructed
// as now−AgeMS, so two coordinators' clocks never need to agree, only
// tick at the same rate (which wall clocks do).

// Member liveness states served at GET /v1/fleet.
const (
	stateAlive   = "alive"
	stateSuspect = "suspect"
)

// member is one tracked worker.
type member struct {
	url      string
	lastSeen time.Time
	joined   int // join order, for a stable round-robin iteration order
}

// memberView is an immutable snapshot row of the membership table.
type memberView struct {
	url   string
	age   time.Duration
	state string
}

// membership is the coordinator's live-worker table. Safe for
// concurrent use; time is injectable for virtual-clock tests.
type membership struct {
	suspectAfter time.Duration
	deadAfter    time.Duration
	now          func() time.Time

	mu      sync.Mutex
	members map[string]*member
	nextOrd int
}

func newMembership(suspectAfter, deadAfter time.Duration, now func() time.Time) *membership {
	if now == nil {
		now = time.Now
	}
	return &membership{
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		now:          now,
		members:      make(map[string]*member),
	}
}

// observe records contact with url (joining it if unknown) and reports
// whether the member is new.
func (m *membership) observe(url string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mb, ok := m.members[url]; ok {
		mb.lastSeen = m.now()
		return false
	}
	m.members[url] = &member{url: url, lastSeen: m.now(), joined: m.nextOrd}
	m.nextOrd++
	return true
}

// merge folds a peer coordinator's fleet view into this one and returns
// the URLs that were previously unknown (so the coordinator can build
// clients for them). A peer's claim only ever advances freshness: a
// member is adopted or refreshed when the peer heard from it more
// recently (smaller age) than we did. Members the peer itself already
// considers dead are not resurrected.
func (m *membership) merge(peers []server.FleetMember) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	var added []string
	for _, p := range peers {
		if p.URL == "" {
			continue
		}
		age := time.Duration(p.AgeMS) * time.Millisecond
		if age < 0 {
			age = 0
		}
		if age >= m.deadAfter {
			continue // the peer is about to reap it; don't resurrect
		}
		seen := now.Add(-age)
		if mb, ok := m.members[p.URL]; ok {
			if seen.After(mb.lastSeen) {
				mb.lastSeen = seen
			}
			continue
		}
		m.members[p.URL] = &member{url: p.URL, lastSeen: seen, joined: m.nextOrd}
		m.nextOrd++
		added = append(added, p.URL)
	}
	return added
}

// sweepDead removes members unheard from for deadAfter and returns
// their URLs, sorted for deterministic logs.
func (m *membership) sweepDead() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	var dead []string
	for url, mb := range m.members {
		if now.Sub(mb.lastSeen) >= m.deadAfter {
			delete(m.members, url)
			dead = append(dead, url)
		}
	}
	sort.Strings(dead)
	return dead
}

// stale returns members unheard from for at least olderThan — the
// active-probe candidates. Statically seeded workers never re-join, so
// without probing they would silently age out of a healthy fleet.
func (m *membership) stale(olderThan time.Duration) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	var urls []string
	for url, mb := range m.members {
		if now.Sub(mb.lastSeen) >= olderThan {
			urls = append(urls, url)
		}
	}
	sort.Strings(urls)
	return urls
}

// suspected reports whether url is currently past the suspicion
// threshold (unknown members are not suspected — they are gone).
func (m *membership) suspected(url string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb, ok := m.members[url]
	return ok && m.now().Sub(mb.lastSeen) >= m.suspectAfter
}

// view snapshots the table in join order (the round-robin order).
func (m *membership) view() []memberView {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	rows := make([]memberView, 0, len(m.members))
	for _, mb := range m.members {
		age := now.Sub(mb.lastSeen)
		if age < 0 {
			age = 0
		}
		state := stateAlive
		if age >= m.suspectAfter {
			state = stateSuspect
		}
		rows = append(rows, memberView{url: mb.url, age: age, state: state})
	}
	sort.Slice(rows, func(i, j int) bool {
		return m.members[rows[i].url].joined < m.members[rows[j].url].joined
	})
	return rows
}

// size reports the member count.
func (m *membership) size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.members)
}
