package federation

import (
	"context"
	"sync"
	"time"

	"repro/internal/server"
)

// Standby mode: warm coordinators that tail the primary and take over —
// in a fixed rank order — when it dies.
//
// Every coordinator has a fixed Rank (0 = the configured primary) and a
// standby monitors its whole upstream chain: the primary plus every
// standby ranked ahead of it. The follow loop polls each upstream's
// /v1/coordinator/status at a jittered Heartbeat cadence. Any upstream
// currently claiming the primary role is mirrored: its job list folds
// into the standby's own fsynced ledger (so a promotion — or a standby
// restart — starts from a durable copy) and its fleet view merges into
// the standby's membership table. A standby promotes itself only when
// EVERY upstream has been silent for FailoverAfter — so with the
// primary dead but rank 1 alive, rank 2 keeps following (and starts
// mirroring rank 1 the moment it claims the role) instead of racing it
// for leadership. No consensus protocol: the rank order is the arbiter.
//
// Promotion preserves the byte-identity contract without copying any
// journal bytes. The standby re-merges each resumed job from its own
// (empty) journal prefix, re-submitting every range with the same
// deterministic idempotency keys the primary used — `jobKey/start+count`
// with the same job IDs, mirrored from the primary. Ranges the fleet
// already finished for the dead primary return their recorded results
// instantly via idempotent re-attach; ranges still running are joined,
// not duplicated; ranges never submitted run fresh. The k-way merge by
// global run index then reconstitutes exactly the byte stream an
// unfailed run would have produced.
//
// A healed partition can leave two coordinators acting primary. The
// guard loop resolves it: an acting primary keeps polling its upstream
// chain, and on seeing another coordinator claim the role with a higher
// epoch — or the same epoch and a lower rank — it demotes itself back
// to standby (demote), checkpointing running jobs exactly as a drain
// would and re-entering the follow loop. Worker-side range jobs keep
// running through the demotion; the surviving primary re-attaches to
// them by idempotency key, so no admitted work is lost and the merged
// bytes stay identical.

// followLoop is a standby's main loop: poll every upstream, mirror the
// live primary claimant, and promote only when the whole upstream chain
// has gone quiet. Runs until promotion or drain.
func (c *Coordinator) followLoop() {
	defer c.wg.Done()
	last := make([]time.Time, len(c.upstreams))
	now := c.cfg.Now()
	for i := range last {
		last[i] = now
	}
	type beat struct {
		st server.CoordStatus
		ok bool
	}
	for {
		select {
		case <-c.stopc:
			return
		case <-time.After(c.jitter(c.cfg.Heartbeat)):
		}
		// Upstreams are polled concurrently — a chain of hung
		// coordinators must cost one failover window, not one per rank.
		// A poll outstanding longer than the window is a miss by
		// definition, so the window doubles as the request timeout.
		beats := make([]beat, len(c.upstreams))
		var wg sync.WaitGroup
		for i, up := range c.upstreams {
			wg.Add(1)
			go func(i int, up *upstream) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), c.cfg.FailoverAfter)
				st, err := up.cli.CoordinatorStatus(ctx)
				cancel()
				beats[i] = beat{st: st, ok: err == nil}
			}(i, up)
		}
		wg.Wait()

		mirrored := false
		allSilent := true
		for i := range beats {
			if !beats[i].ok {
				c.cBeatsMissed.Inc()
				if c.cfg.Now().Sub(last[i]) < c.cfg.FailoverAfter {
					allSilent = false
				}
				continue
			}
			last[i] = c.cfg.Now()
			allSilent = false
			c.noteEpoch(beats[i].st.Epoch)
			// Mirror the best-ranked upstream currently claiming the
			// primary role; a live upstream still in standby proves
			// liveness but carries no ledger of record.
			if !mirrored && beats[i].st.Role == server.RolePrimary {
				c.mirror(beats[i].st)
				mirrored = true
			}
		}
		if allSilent {
			c.promote()
			return
		}
	}
}

// noteEpoch tracks the highest leadership epoch observed anywhere in
// the chain, so a promotion always advances past every reign this
// coordinator has ever seen — not just the one it last mirrored.
func (c *Coordinator) noteEpoch(epoch int64) {
	c.mu.Lock()
	if epoch > c.maxSeenEpoch {
		c.maxSeenEpoch = epoch
	}
	c.mu.Unlock()
}

// mirror folds one primary heartbeat into the standby: the fleet view
// into membership (ensuring client handles for new workers) and every
// job into the standby's own ledger. In-memory state tracks every
// change; the ledger is appended only on Status/Error/Total
// transitions — not per-run Done increments — so mirroring a busy
// primary does not fsync per result line.
func (c *Coordinator) mirror(st server.CoordStatus) {
	for _, url := range c.members.merge(st.Fleet) {
		c.ensureWorker(url)
	}
	c.mu.Lock()
	c.mirrorEpoch = st.Epoch
	c.mu.Unlock()
	for _, js := range st.Jobs {
		c.mirrorJob(js)
	}
}

func (c *Coordinator) mirrorJob(js server.JobState) {
	c.mu.Lock()
	jb, known := c.jobs[js.ID]
	if !known {
		jb = &cjob{st: js, doneCh: make(chan struct{})}
		if js.Status.Terminal() {
			close(jb.doneCh)
		}
		if n, ok := jobIDNumber(js.ID); ok && n >= c.nextID {
			c.nextID = n + 1
		}
		if js.Spec.IdempotencyKey != "" {
			c.keys[js.Spec.IdempotencyKey] = js.ID
		}
		c.jobs[js.ID] = jb
		c.order = append(c.order, js.ID)
		c.mu.Unlock()
		c.persist(js)
		return
	}
	c.mu.Unlock()
	jb.mu.Lock()
	transition := jb.st.Status != js.Status || jb.st.Error != js.Error || jb.st.Total != js.Total
	wasTerminal := jb.st.Status.Terminal()
	changed := transition || jb.st.Done != js.Done ||
		jb.st.Recovered != js.Recovered || jb.st.Degraded != js.Degraded ||
		jb.st.Indeterminate != js.Indeterminate
	if changed {
		jb.st = js
	}
	if !wasTerminal && js.Status.Terminal() {
		close(jb.doneCh)
	}
	jb.mu.Unlock()
	if transition {
		c.persist(js)
	}
}

// promote flips a standby into the primary role: the epoch advances
// past every one this coordinator has seen (mirrored or merely
// observed), every non-terminal job is re-queued, the dispatchers
// start, and — when there is an upstream chain to defer to — so does
// the guard loop that will demote us if a better claimant reappears.
// Draining or already-promoted coordinators ignore the call.
func (c *Coordinator) promote() {
	c.mu.Lock()
	if c.draining || !c.standby {
		c.mu.Unlock()
		return
	}
	c.standby = false
	base := c.mirrorEpoch
	if c.maxSeenEpoch > base {
		base = c.maxSeenEpoch
	}
	c.epoch = base + 1
	epoch := c.epoch
	c.reignc = make(chan struct{})
	var requeued []server.JobState
	for _, id := range c.order {
		jb := c.jobs[id]
		jb.mu.Lock()
		if !jb.st.Status.Terminal() {
			jb.st.Status = server.StatusQueued
			c.queue.push(jb.st.Spec.Tenant, jb)
			requeued = append(requeued, jb.st)
		}
		jb.mu.Unlock()
	}
	c.gQueue.Set(int64(c.queue.pending()))
	c.mu.Unlock()

	for _, st := range requeued {
		c.persist(st)
	}
	c.gEpoch.Set(epoch)
	c.gStandby.Set(0)
	c.cFailovers.Inc()
	c.wg.Add(c.cfg.Jobs)
	for i := 0; i < c.cfg.Jobs; i++ {
		go c.dispatcher()
	}
	if len(c.upstreams) > 0 {
		c.wg.Add(1)
		go c.guardLoop()
	}
	select {
	case c.wake <- struct{}{}:
	default:
	}
	c.cfg.Logf("lggfed: upstream chain unresponsive for %v; rank %d assuming leadership at epoch %d (%d jobs resumed)",
		c.cfg.FailoverAfter, c.cfg.Rank, epoch, len(requeued))
}

// guardLoop runs while this coordinator is acting primary, polling the
// upstream chain for a better claimant. Another coordinator reporting
// the primary role with a strictly higher epoch — or the same epoch and
// a lower rank (the tie two sides of a healed partition can reach) —
// wins, and this coordinator demotes itself. The loop exits on drain or
// after one demotion (demote restarts the follow loop, and a later
// promotion starts a fresh guard).
func (c *Coordinator) guardLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopc:
			return
		case <-time.After(c.jitter(c.cfg.Heartbeat)):
		}
		if c.Standby() {
			return
		}
		for _, up := range c.upstreams {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.JoinPingTimeout)
			st, err := up.cli.CoordinatorStatus(ctx)
			cancel()
			if err != nil {
				continue
			}
			c.noteEpoch(st.Epoch)
			if st.Role != server.RolePrimary {
				continue
			}
			c.mu.Lock()
			mine := c.epoch
			c.mu.Unlock()
			if st.Epoch > mine || (st.Epoch == mine && st.Rank < c.cfg.Rank) {
				c.demote(up.url, st)
				return
			}
		}
	}
}

// demote steps an acting primary back down to standby after the guard
// loop found a better claimant: admission flips to the standby refusal,
// the dispatchers retire (reignc), the dispatch queue is rebuilt empty,
// and every running job is checkpointed with errDemote — journals keep
// their merged prefix and worker-side range jobs keep running, to be
// re-attached by idempotency key (by the winner now, by us if we are
// ever promoted again). The follow loop restarts, mirroring the winner.
func (c *Coordinator) demote(winner string, st server.CoordStatus) {
	c.mu.Lock()
	if c.draining || c.standby {
		c.mu.Unlock()
		return
	}
	c.standby = true
	if st.Epoch > c.maxSeenEpoch {
		c.maxSeenEpoch = st.Epoch
	}
	myEpoch := c.epoch
	close(c.reignc)
	// A fresh queue, not a drained one: every queued job's state is
	// already durable and mirrored by the winner; local dispatch simply
	// stops claiming it. release() guards against underflow, so quota
	// refunds from still-finishing jobs stay safe against the rebuild.
	c.queue = newTenantQueue(c.cfg.TenantQuota, c.cfg.QueueDepth)
	c.gQueue.Set(0)
	running := make([]*cjob, 0, len(c.order))
	for _, id := range c.order {
		running = append(running, c.jobs[id])
	}
	c.mu.Unlock()

	for _, jb := range running {
		jb.mu.Lock()
		cancel := jb.cancel
		active := jb.st.Status == server.StatusRunning
		jb.mu.Unlock()
		if active && cancel != nil {
			cancel(errDemote)
		}
	}
	c.gStandby.Set(1)
	c.cDemotions.Inc()
	c.cfg.Logf("lggfed: %s claims primary at epoch %d rank %d, ahead of our epoch %d rank %d; stepping down to standby",
		winner, st.Epoch, st.Rank, myEpoch, c.cfg.Rank)
	c.wg.Add(1)
	go c.followLoop()
}
