package federation

import (
	"context"
	"time"

	"repro/internal/server"
)

// Standby mode: a second coordinator that tails the primary and takes
// over when it dies.
//
// The follow loop polls the primary's /v1/coordinator/status at a
// jittered Heartbeat cadence. Every successful poll mirrors the
// primary's job list into the standby's own fsynced ledger (so a
// promotion — or a standby restart — starts from a durable copy) and
// merges the primary's fleet view into the standby's membership table.
// After FailoverAfter without a successful poll the standby promotes
// itself: every non-terminal job is re-queued and dispatched as if the
// standby had just restarted with the primary's ledger.
//
// Promotion preserves the byte-identity contract without copying any
// journal bytes. The standby re-merges each resumed job from its own
// (empty) journal prefix, re-submitting every range with the same
// deterministic idempotency keys the primary used — `jobKey/start+count`
// with the same job IDs, mirrored from the primary. Ranges the fleet
// already finished for the dead primary return their recorded results
// instantly via idempotent re-attach; ranges still running are joined,
// not duplicated; ranges never submitted run fresh. The k-way merge by
// global run index then reconstitutes exactly the byte stream an
// unfailed run would have produced.

// followLoop is the standby's main loop: poll, mirror, and promote when
// the primary goes quiet. Runs until promotion or drain.
func (c *Coordinator) followLoop() {
	defer c.wg.Done()
	lastBeat := c.cfg.Now()
	for {
		select {
		case <-c.stopc:
			return
		case <-time.After(c.jitter(c.cfg.Heartbeat)):
		}
		// A poll outstanding longer than the failover window is a miss
		// by definition, so the window doubles as the request timeout.
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.FailoverAfter)
		st, err := c.primaryCli.CoordinatorStatus(ctx)
		cancel()
		if err != nil {
			c.cBeatsMissed.Inc()
			if c.cfg.Now().Sub(lastBeat) >= c.cfg.FailoverAfter {
				c.promote()
				return
			}
			continue
		}
		lastBeat = c.cfg.Now()
		c.mirror(st)
	}
}

// mirror folds one primary heartbeat into the standby: the fleet view
// into membership (ensuring client handles for new workers) and every
// job into the standby's own ledger. In-memory state tracks every
// change; the ledger is appended only on Status/Error/Total
// transitions — not per-run Done increments — so mirroring a busy
// primary does not fsync per result line.
func (c *Coordinator) mirror(st server.CoordStatus) {
	for _, url := range c.members.merge(st.Fleet) {
		c.ensureWorker(url)
	}
	c.mu.Lock()
	c.mirrorEpoch = st.Epoch
	c.mu.Unlock()
	for _, js := range st.Jobs {
		c.mirrorJob(js)
	}
}

func (c *Coordinator) mirrorJob(js server.JobState) {
	c.mu.Lock()
	jb, known := c.jobs[js.ID]
	if !known {
		jb = &cjob{st: js, doneCh: make(chan struct{})}
		if js.Status.Terminal() {
			close(jb.doneCh)
		}
		if n, ok := jobIDNumber(js.ID); ok && n >= c.nextID {
			c.nextID = n + 1
		}
		if js.Spec.IdempotencyKey != "" {
			c.keys[js.Spec.IdempotencyKey] = js.ID
		}
		c.jobs[js.ID] = jb
		c.order = append(c.order, js.ID)
		c.mu.Unlock()
		c.persist(js)
		return
	}
	c.mu.Unlock()
	jb.mu.Lock()
	transition := jb.st.Status != js.Status || jb.st.Error != js.Error || jb.st.Total != js.Total
	wasTerminal := jb.st.Status.Terminal()
	changed := transition || jb.st.Done != js.Done ||
		jb.st.Recovered != js.Recovered || jb.st.Degraded != js.Degraded ||
		jb.st.Indeterminate != js.Indeterminate
	if changed {
		jb.st = js
	}
	if !wasTerminal && js.Status.Terminal() {
		close(jb.doneCh)
	}
	jb.mu.Unlock()
	if transition {
		c.persist(js)
	}
}

// promote flips a standby into the primary role: the epoch advances
// past the last one mirrored, every non-terminal job is re-queued, and
// the dispatchers start. Draining or already-promoted coordinators
// ignore the call.
func (c *Coordinator) promote() {
	c.mu.Lock()
	if c.draining || !c.standby {
		c.mu.Unlock()
		return
	}
	c.standby = false
	c.epoch = c.mirrorEpoch + 1
	epoch := c.epoch
	var requeued []server.JobState
	for _, id := range c.order {
		jb := c.jobs[id]
		jb.mu.Lock()
		if !jb.st.Status.Terminal() {
			jb.st.Status = server.StatusQueued
			c.queue.push(jb.st.Spec.Tenant, jb)
			requeued = append(requeued, jb.st)
		}
		jb.mu.Unlock()
	}
	c.gQueue.Set(int64(c.queue.pending()))
	c.mu.Unlock()

	for _, st := range requeued {
		c.persist(st)
	}
	c.gEpoch.Set(epoch)
	c.gStandby.Set(0)
	c.cFailovers.Inc()
	c.wg.Add(c.cfg.Jobs)
	for i := 0; i < c.cfg.Jobs; i++ {
		go c.dispatcher()
	}
	select {
	case c.wake <- struct{}{}:
	default:
	}
	c.cfg.Logf("lggfed: primary %s unresponsive for %v; assuming leadership at epoch %d (%d jobs resumed)",
		c.cfg.Primary, c.cfg.FailoverAfter, epoch, len(requeued))
}
