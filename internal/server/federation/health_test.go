package federation

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestHealthAdaptiveLeaseUsesFleetMeanFloor(t *testing.T) {
	clk := newVClock()
	// Alpha 1 makes the EWMA equal the last observation, so the
	// arithmetic below is exact.
	h := newHealthBoard(HealthConfig{Alpha: 1}, 60*time.Second, clk.now)

	// Cold start: no observations anywhere → the configured lease.
	if got := h.lease("http://w1", 8); got != 60*time.Second {
		t.Fatalf("cold-start lease %v, want the 60s ceiling", got)
	}

	// One worker at 4 runs/sec: lease = LeaseFactor(3) · 8 / 4 = 6s.
	h.success("http://w1", 8, 2*time.Second)
	if got := h.lease("http://w1", 8); got != 6*time.Second {
		t.Fatalf("lease %v, want 6s at 4 runs/sec", got)
	}

	// A worker 40× slower is floored at the fleet mean: its own rate
	// (0.1 runs/sec) would grant 240s — capped at the 60s ceiling — but
	// the mean (2.05 runs/sec) shrinks it to ~11.7s, so the fleet steals
	// from it sooner, not later.
	h.success("http://w2", 8, 80*time.Second)
	mean := (4.0 + 0.1) / 2
	want := time.Duration(3 * 8 / mean * float64(time.Second))
	got := h.lease("http://w2", 8)
	if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("slow worker lease %v, want ~%v (fleet-mean floor)", got, want)
	}
	if got >= 60*time.Second {
		t.Fatalf("slow worker lease %v did not shrink below the ceiling", got)
	}

	// The lease never drops below MinLease.
	h.success("http://w3", 800, time.Millisecond)
	if got := h.lease("http://w3", 1); got != time.Second {
		t.Fatalf("lease %v, want the 1s MinLease floor", got)
	}
}

func TestHealthBrownoutAndHalfOpenProbe(t *testing.T) {
	clk := newVClock()
	h := newHealthBoard(HealthConfig{
		Alpha:             0.5,
		BrownoutMinEvents: 2,
		BrownoutCooldown:  10 * time.Second,
	}, time.Minute, clk.now)
	const w = "http://w"

	if !h.available(w) {
		t.Fatal("unknown worker should be available")
	}
	h.failure(w) // errShare 0.5 but only 1 event: below the floor
	if !h.available(w) {
		t.Fatal("a single failure must not bench a worker")
	}
	h.failure(w) // errShare 0.75, 2 events → browned out
	if h.available(w) {
		t.Fatal("browned-out worker still dispatchable")
	}
	if !h.unhealthyNow(w) {
		t.Fatal("unhealthyNow disagrees with brown-out")
	}
	if !h.snapshot(w, 8).BrownedOut {
		t.Fatal("snapshot does not report the brown-out")
	}

	// Cooldown elapses: exactly one half-open probe goes through.
	clk.advance(10 * time.Second)
	if !h.available(w) {
		t.Fatal("cooled-down worker refused its half-open probe")
	}
	if h.available(w) {
		t.Fatal("second concurrent probe allowed")
	}

	// The probe fails → immediately re-browned, no event-count grace.
	h.failure(w)
	if h.available(w) {
		t.Fatal("worker available right after failing its probe")
	}

	// Next probe succeeds → fully restored.
	clk.advance(10 * time.Second)
	if !h.available(w) {
		t.Fatal("second probe refused")
	}
	h.success(w, 4, time.Second)
	if !h.available(w) || h.unhealthyNow(w) {
		t.Fatal("successful probe did not clear the brown-out")
	}
	if h.snapshot(w, 8).BrownedOut {
		t.Fatal("snapshot still reports a brown-out after recovery")
	}
}

// TestErroringWorkerBrownsOutWithoutFailingSweep rigs one worker to 500
// every job submission. The sweep must complete byte-identical to a
// single-daemon run on the healthy worker alone, while the erroring
// worker is browned out of dispatch and visibly so in the fleet export.
func TestErroringWorkerBrownsOutWithoutFailingSweep(t *testing.T) {
	spec := testSpec(12)
	ref := singleDaemonJournal(t, spec)

	_, good := newWorker(t, nil)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/jobs") {
			http.Error(w, `{"error":"disk on fire"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	}))
	t.Cleanup(bad.Close)

	c, _ := newCoordinator(t, Config{
		RangeRuns: 2,
		// Two failures suffice (errShare 1−0.7² = 0.51 ≥ 0.5) and a long
		// cooldown keeps the brown-out observable after the sweep.
		Health: HealthConfig{BrownoutMinEvents: 2, BrownoutCooldown: time.Minute},
	}, good, bad.URL)

	st, created, err := c.Admit(spec, "")
	if err != nil || !created {
		t.Fatalf("admit: created=%v err=%v", created, err)
	}
	final := waitTerminal(t, c, st.ID, 60*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("sweep ended %s with a half-broken fleet: %s", final.Status, final.Error)
	}
	got, err := os.ReadFile(c.JournalPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("merged journal differs from the single-daemon journal")
	}

	var badH, goodH server.WorkerHealth
	var sawBad, sawGood bool
	for _, m := range c.FleetMembers() {
		switch m.URL {
		case bad.URL:
			badH, sawBad = m.Health, true
		case good:
			goodH, sawGood = m.Health, true
		}
	}
	if !sawBad || !sawGood {
		t.Fatalf("fleet export lost a member: bad=%v good=%v", sawBad, sawGood)
	}
	if badH.Failures < 2 {
		t.Fatalf("erroring worker recorded %d failures, want ≥ 2", badH.Failures)
	}
	if !badH.BrownedOut {
		t.Fatal("erroring worker not browned out after the sweep")
	}
	if goodH.Successes == 0 || goodH.EWMARunsPerSec <= 0 {
		t.Fatalf("healthy worker earned no rate score: %+v", goodH)
	}
	// The healthy worker's lease adapted below the 60s ceiling — no
	// fixed -lease tuning involved.
	if goodH.LeaseMS <= 0 || goodH.LeaseMS >= (60*time.Second).Milliseconds() {
		t.Fatalf("healthy worker lease %dms, want adaptive below the 60s ceiling", goodH.LeaseMS)
	}
}
