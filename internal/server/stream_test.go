package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// lineWriter is a ResponseWriter whose Write calls (one per emitted
// journal line) land on a channel, so a test observes exactly what the
// stream relays and when.
type lineWriter struct {
	header http.Header
	lines  chan string
}

func newLineWriter() *lineWriter {
	return &lineWriter{header: make(http.Header), lines: make(chan string, 64)}
}

func (w *lineWriter) Header() http.Header { return w.header }
func (w *lineWriter) WriteHeader(int)     {}
func (w *lineWriter) Write(p []byte) (int, error) {
	w.lines <- string(p)
	return len(p), nil
}

// expectLine waits for the next relayed line.
func expectLine(t *testing.T, w *lineWriter, want string) {
	t.Helper()
	select {
	case got := <-w.lines:
		if got != want {
			t.Fatalf("streamed line %q, want %q", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("stream never relayed %q", want)
	}
}

// expectQuiet asserts nothing is relayed for the given window.
func expectQuiet(t *testing.T, w *lineWriter, d time.Duration) {
	t.Helper()
	select {
	case got := <-w.lines:
		t.Fatalf("stream relayed %q while the tail was still torn", got)
	case <-time.After(d):
	}
}

// TestStreamJournalHoldsTornTailUntilCompleted is the follow-mode race
// the journal's whole-line append discipline does not protect against:
// the follower's read can land between the writer's two halves of a
// line (or mid-write at the OS level), leaving a torn, newline-less
// tail. The stream must hold the fragment in its pending buffer —
// relaying nothing — and emit the completed line exactly once after the
// terminating newline arrives.
func TestStreamJournalHoldsTornTailUntilCompleted(t *testing.T) {
	const (
		header = "{\"journal\":\"v1\",\"jobs\":2}\n"
		line0  = "{\"index\":0,\"delivered\":7}\n"
		line1  = "{\"index\":1,\"delivered\":9}\n"
	)
	path := filepath.Join(t.TempDir(), "job.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// The writer has finished run 0 and is midway through appending run
	// 1 when the follower attaches: the journal ends in a torn tail.
	torn := len(line1) / 2
	if _, err := f.WriteString(header + line0 + line1[:torn]); err != nil {
		t.Fatal(err)
	}

	var terminal atomic.Bool
	done := make(chan struct{})
	stop := make(chan struct{})
	w := newLineWriter()
	req := httptest.NewRequest("GET", "/v1/jobs/job-00000000/results", nil)
	streamed := make(chan struct{})
	go func() {
		defer close(streamed)
		StreamJournal(w, req, path, terminal.Load, done, stop)
	}()

	// The complete line is relayed (header stripped); the torn tail is
	// held, not leaked, across several poll intervals.
	expectLine(t, w, line0)
	expectQuiet(t, w, 200*time.Millisecond)

	// The writer finishes the line and the job completes.
	if _, err := f.WriteString(line1[torn:]); err != nil {
		t.Fatal(err)
	}
	terminal.Store(true)
	close(done)

	// The held line arrives exactly once, whole, and the stream ends.
	expectLine(t, w, line1)
	select {
	case <-streamed:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after the job went terminal")
	}
	select {
	case got := <-w.lines:
		t.Fatalf("stream relayed extra line %q after completion", got)
	default:
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
}

// TestLineFramerEmitsOncePerLineAcrossChunkBoundaries drives the framer
// with every possible split point of a two-line journal and asserts the
// reassembled emission is identical regardless of where reads tore the
// stream.
func TestLineFramerEmitsOncePerLineAcrossChunkBoundaries(t *testing.T) {
	const header = "{\"journal\":\"v1\",\"jobs\":2}\n"
	const body = "{\"index\":0}\n{\"index\":1}\n"
	full := header + body
	for split := 0; split <= len(full); split++ {
		var fr lineFramer
		var got []string
		emit := func(line []byte) error {
			got = append(got, string(line))
			return nil
		}
		if _, err := fr.feed([]byte(full[:split]), emit); err != nil {
			t.Fatal(err)
		}
		if _, err := fr.feed([]byte(full[split:]), emit); err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0] != "{\"index\":0}\n" || got[1] != "{\"index\":1}\n" {
			t.Fatalf("split %d: emitted %q", split, got)
		}
	}
}

// TestStreamJournalWaitsForJournalCreation covers the follower that
// attaches before the job's first run lands: the stream must wait for
// the journal, then relay it, rather than 404ing a live job.
func TestStreamJournalWaitsForJournalCreation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.jsonl")
	var terminal atomic.Bool
	done := make(chan struct{})
	stop := make(chan struct{})
	w := newLineWriter()
	req := httptest.NewRequest("GET", "/v1/jobs/job-00000000/results", nil)
	streamed := make(chan struct{})
	go func() {
		defer close(streamed)
		StreamJournal(w, req, path, terminal.Load, done, stop)
	}()

	expectQuiet(t, w, 100*time.Millisecond)
	const header = "{\"journal\":\"v1\",\"jobs\":1}\n"
	const line0 = "{\"index\":0}\n"
	if err := os.WriteFile(path, []byte(header+line0), 0o644); err != nil {
		t.Fatal(err)
	}
	expectLine(t, w, line0)
	terminal.Store(true)
	close(done)
	select {
	case <-streamed:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after the job went terminal")
	}
}
