package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs              submit a job (JobSpec body); 202 on
//	                             admission, 200 when an Idempotency-Key
//	                             matches an existing job, 429 + Retry-After
//	                             when the queue sheds, 503 + Retry-After
//	                             while draining
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         one job's state
//	DELETE /v1/jobs/{id}         cancel (queued: immediate; running:
//	                             mid-sweep; terminal: no-op)
//	GET    /v1/jobs/{id}/results stream the job's results as JSONL,
//	                             following live output until the job is
//	                             terminal
//	GET    /healthz              process liveness (always 200)
//	GET    /readyz               admission readiness (503 while draining)
//	GET    /metrics              Prometheus text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		s.cHTTP.Inc()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		s.cHTTP.Inc()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.cHTTP.Inc()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := s.reg.WriteProm(w); err != nil {
			s.cfg.Logf("lggd: metrics write: %v", err)
		}
	})
	return mux
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.cHTTP.Inc()
	var spec JobSpec
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "decode spec: %v", err)
			return
		}
	}
	st, created, err := s.Admit(spec, r.Header.Get("Idempotency-Key"))
	if err != nil {
		var u *Unavailable
		if errors.As(err, &u) {
			w.Header().Set("Retry-After", strconv.Itoa(u.RetryAfter))
			code := http.StatusTooManyRequests
			if u.Draining || u.Standby {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, "%s", u.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if !created {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.cHTTP.Inc()
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.cHTTP.Inc()
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.cHTTP.Inc()
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResults streams a job's sweep journal as JSONL (the header line
// is stripped; each line is one sweep.Result). For a live job the stream
// follows the journal — results appear as runs finish — and ends when
// the job reaches a terminal state. The stream also ends, possibly
// mid-job, if the client disconnects or the daemon drains.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.cHTTP.Inc()
	id := r.PathValue("id")
	s.mu.Lock()
	jb, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	StreamJournal(w, r, s.store.journalPath(id), jb.terminal, jb.doneCh, s.stopc)
}

// lineFramer reassembles whole journal lines from arbitrary read
// chunks. The journal writer appends whole lines, but a follower's
// reads race the writer, so a chunk can end mid-line — a torn tail.
// The framer holds the newline-less fragment in pending and emits the
// line exactly once, when its terminating newline arrives; the journal
// header (first line) is swallowed.
type lineFramer struct {
	pending       []byte
	headerSkipped bool
}

// feed appends chunk and invokes emit once per completed line (newline
// included). It reports whether any line was emitted, so callers know
// when to flush.
func (l *lineFramer) feed(chunk []byte, emit func(line []byte) error) (wrote bool, err error) {
	l.pending = append(l.pending, chunk...)
	for {
		i := bytes.IndexByte(l.pending, '\n')
		if i < 0 {
			return wrote, nil
		}
		line := l.pending[:i+1]
		l.pending = l.pending[i+1:]
		if !l.headerSkipped {
			l.headerSkipped = true
			continue
		}
		if err := emit(line); err != nil {
			return wrote, err
		}
		wrote = true
	}
}

// StreamJournal serves the sweep journal at path as a follow-mode
// application/x-ndjson response: the header line is stripped, each
// remaining line is relayed verbatim as it lands on disk, and the
// stream ends once terminal() reports true and the file is drained.
// done wakes the follower when the job completes (so the final lines
// are relayed without waiting out a poll interval); stop aborts the
// stream mid-job (daemon drain), as does the client disconnecting.
// A missing journal is waited for while the job is live and served as
// an empty complete stream if the job went terminal without producing
// one. Both the single daemon and the federation coordinator serve
// results through this path, so a follower sees identical framing
// either way.
func StreamJournal(w http.ResponseWriter, r *http.Request, path string, terminal func() bool, done, stop <-chan struct{}) {
	f, err := waitForJournal(r, path, terminal, done, stop)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if f == nil {
		// Terminal with no journal (e.g. cancelled while queued, or failed
		// before the first run): an empty, complete stream.
		return
	}
	defer f.Close()

	flusher, _ := w.(http.Flusher)
	var framer lineFramer
	chunk := make([]byte, 32*1024)
	for {
		wasTerminal := terminal()
		n, rerr := f.Read(chunk)
		if n > 0 {
			wrote, err := framer.feed(chunk[:n], func(line []byte) error {
				_, werr := w.Write(line)
				return werr
			})
			if err != nil {
				return
			}
			if wrote && flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return
		}
		if rerr != nil || n == 0 {
			// Caught up with the journal. A snapshot taken before the read
			// says whether more could still arrive.
			if wasTerminal {
				return
			}
			select {
			case <-done:
				// Loop once more to drain anything the final flush wrote.
			case <-stop:
				return
			case <-r.Context().Done():
				return
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
}

// waitForJournal opens the journal, waiting for a queued job to start
// writing it. Returns (nil, nil) if the job went terminal without ever
// producing a journal.
func waitForJournal(r *http.Request, path string, terminal func() bool, done, stop <-chan struct{}) (*os.File, error) {
	for {
		f, err := os.Open(path)
		if err == nil {
			return f, nil
		}
		if !os.IsNotExist(err) {
			return nil, err
		}
		if terminal() {
			return nil, nil
		}
		select {
		case <-done:
		case <-stop:
			return nil, errors.New("server draining before the job produced results")
		case <-r.Context().Done():
			return nil, r.Context().Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
