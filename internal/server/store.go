package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// The store is the daemon's durable job ledger: one append-only JSONL
// file (jobs.jsonl) holding a full JobState snapshot per transition, plus
// one PR-4 sweep journal per job under results/. The ledger follows the
// sweep journal's crash discipline — whole-line appends, fsync per
// append, torn tails truncated on open — so whatever a killed daemon
// left on disk is a consistent prefix of its history. Replaying the
// ledger (last snapshot per job wins) reconstructs every job; the ones
// that are not terminal go back on the admission queue, and their sweep
// journals let the runner skip every run already recorded.

// storeVersion tags the ledger format in its header line.
const storeVersion = "lggd-jobs-v1"

type storeHeader struct {
	Store string `json:"store"`
}

// store owns the state directory.
type store struct {
	dir string
	// lastDispatched is the tenant of the most recent queued→running
	// transition found while replaying the ledger. The federation
	// coordinator uses it to re-seat its round-robin fair-share cursor
	// after a restart, so the tenant that was served last does not get
	// served first again.
	lastDispatched string

	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// openStore opens (or initialises) the state directory and replays the
// job ledger. Jobs come back in first-submission order.
func openStore(dir string) (*store, []JobState, error) {
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: state dir: %w", err)
	}
	path := filepath.Join(dir, "jobs.jsonl")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: job ledger: %w", err)
	}
	br := bufio.NewReader(f)
	head, err := br.ReadBytes('\n')
	offset := int64(len(head))
	if err != nil {
		// Empty (or torn-at-birth) ledger: claim it with a fresh header.
		if len(head) > 0 && !errors.Is(err, io.EOF) {
			f.Close()
			return nil, nil, fmt.Errorf("server: job ledger: %w", err)
		}
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: job ledger: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: job ledger: %w", err)
		}
		s := &store{dir: dir, f: f, enc: json.NewEncoder(f)}
		if err := s.enc.Encode(storeHeader{Store: storeVersion}); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: job ledger header: %w", err)
		}
		return s, nil, f.Sync()
	}
	var hdr storeHeader
	if json.Unmarshal(head, &hdr) != nil || hdr.Store != storeVersion {
		f.Close()
		return nil, nil, fmt.Errorf("server: %s is not a %s ledger", path, storeVersion)
	}

	latest := make(map[string]*JobState)
	var order []string
	lastDispatched := ""
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			break // EOF or torn tail: everything before it stands
		}
		var js JobState
		if json.Unmarshal(line, &js) != nil || js.ID == "" {
			break // malformed line: truncate it and everything after
		}
		if _, seen := latest[js.ID]; !seen {
			order = append(order, js.ID)
		}
		if js.Status == StatusRunning {
			lastDispatched = js.Spec.Tenant
		}
		latest[js.ID] = &js
		offset += int64(len(line))
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: job ledger truncate: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: job ledger seek: %w", err)
	}
	jobs := make([]JobState, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, *latest[id])
	}
	return &store{dir: dir, lastDispatched: lastDispatched, f: f, enc: json.NewEncoder(f)}, jobs, nil
}

// append durably records a job snapshot: one whole-line write, then
// fsync. Transitions are rare (a handful per job), so the fsync cost is
// irrelevant next to a sweep.
func (s *store) append(js JobState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(&js); err != nil {
		return fmt.Errorf("server: job ledger: %w", err)
	}
	return s.f.Sync()
}

// journalPath is where a job's sweep journal lives.
func (s *store) journalPath(id string) string {
	return filepath.Join(s.dir, "results", id+".jsonl")
}

// removeJournal deletes a job's sweep journal (used when a cancelled
// queued job never produced one — ignore absence).
func (s *store) removeJournal(id string) {
	err := os.Remove(s.journalPath(id))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		// Best-effort cleanup; the journal is harmless if left behind.
		_ = err
	}
}

// Ledger is the exported face of the store for the federation
// coordinator, which persists its own jobs with the same crash
// discipline (and the same JobState records) as a single daemon but
// lives in a separate package. The coordinator's state directory is
// therefore readable by the same tooling as a daemon's.
type Ledger struct {
	s *store
}

// OpenLedger opens (or initialises) dir as a job ledger and replays it;
// jobs come back in first-submission order.
func OpenLedger(dir string) (*Ledger, []JobState, error) {
	s, jobs, err := openStore(dir)
	if err != nil {
		return nil, nil, err
	}
	return &Ledger{s: s}, jobs, nil
}

// Append durably records a job snapshot (whole-line write + fsync).
func (l *Ledger) Append(js JobState) error { return l.s.append(js) }

// JournalPath is where the job's (merged) sweep journal lives.
func (l *Ledger) JournalPath(id string) string { return l.s.journalPath(id) }

// RemoveJournal deletes a job's sweep journal, ignoring absence.
func (l *Ledger) RemoveJournal(id string) { l.s.removeJournal(id) }

// LastDispatchedTenant reports the tenant of the most recent
// queued→running transition in the replayed ledger (empty if none).
// The federation coordinator re-seats its round-robin fair-share cursor
// just past this tenant on restart, preserving dispatch fairness across
// a crash or failover.
func (l *Ledger) LastDispatchedTenant() string { return l.s.lastDispatched }

// Close flushes and closes the ledger.
func (l *Ledger) Close() error { return l.s.close() }

// close closes the ledger.
func (s *store) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
