// Package lyapunov instruments a running engine with the potential-
// function accounting at the heart of the paper's proofs. For the network
// state P_t = Σ_v q_t(v)² (Definition 1), the paper decomposes
//
//	P_{t+1} = P_t + Σ_v (q_{t+1}(v) − q_t(v))² + 2·δ_t            (Eq. 1)
//	δ_t     = Σ_v q_t(v)·(q_{t+1}(v) − q_t(v))                    (Eq. 2 form)
//	        = Σ_s q_t(s)·in(s) + Σ_{(u,v)∈E_t}(q_t(v) − q_t(u))
//	          − Σ_d q_t(d)·min{out(d), q_t(d)}                     (Eq. 3, lossless)
//
// where q_t is the queue vector right after the injections of step t. The
// Recorder reconstructs every term from the engine's step trace —
// including the loss correction the paper's Eq. 3 elides (a packet lost on
// (u,v) contributes −q_t(u) but no +q_t(v)) — and verifies the identities
// *exactly* (integer arithmetic, no tolerance) at every step. Experiment
// E17 runs it across the whole workload suite.
package lyapunov

import (
	"fmt"

	"repro/internal/core"
)

// Terms is the exact decomposition of one step's potential change.
type Terms struct {
	// T is the step the terms describe (the transition q_T → q_{T+1}).
	T int64
	// DeltaP = P_{T+1} − P_T.
	DeltaP int64
	// SecondOrder = Σ_v (q_{T+1}(v) − q_T(v))².
	SecondOrder int64
	// Delta is δ_T = Σ_v q_T(v)·(q_{T+1}(v) − q_T(v)).
	Delta int64

	// Component split of δ_T (Eq. 3 generalized to losses):
	// InjectionTerm = Σ_v q_T(v)·in_{T+1}(v) — next step's injections land
	// before the snapshot q_{T+1} is taken.
	InjectionTerm int64
	// GradientTerm = Σ over delivered sends of (q_T(to) − q_T(from)); LGG
	// guarantees every summand over truthful links is negative.
	GradientTerm int64
	// LossTerm = −Σ over lost sends of q_T(from).
	LossTerm int64
	// ExtractionTerm = −Σ_v q_T(v)·extracted_T(v).
	ExtractionTerm int64
}

// Check verifies both identities exactly; nil means they hold.
func (t *Terms) Check() error {
	if got := t.InjectionTerm + t.GradientTerm + t.LossTerm + t.ExtractionTerm; got != t.Delta {
		return fmt.Errorf("lyapunov: component sum %d ≠ δ_t %d at t=%d", got, t.Delta, t.T)
	}
	if got := 2*t.Delta + t.SecondOrder; got != t.DeltaP {
		return fmt.Errorf("lyapunov: 2δ+second-order %d ≠ ΔP %d at t=%d", got, t.DeltaP, t.T)
	}
	return nil
}

// Recorder steps an engine while reconstructing the per-step
// decomposition. It owns the engine's trace buffer; do not enable tracing
// separately.
type Recorder struct {
	eng   *core.Engine
	trace *core.StepTrace

	havePrev  bool
	prevQ     []int64 // snapshot q_T
	prevSends []core.Send
	prevLost  []bool
	prevExtr  []int64
}

// NewRecorder wraps an engine (before any instrumented steps).
func NewRecorder(e *core.Engine) *Recorder {
	n := e.Spec.N()
	return &Recorder{
		eng:      e,
		trace:    e.EnableTrace(),
		prevQ:    make([]int64, n),
		prevExtr: make([]int64, n),
	}
}

// Step advances the engine one step. Once two snapshots are available it
// returns the Terms of the transition between them (nil on the very first
// call).
func (r *Recorder) Step() (core.StepStats, *Terms) {
	st := r.eng.Step()
	snap := r.eng.Snapshot() // q of the step just executed (post-injection)

	var terms *Terms
	if r.havePrev {
		terms = r.compute(snap.Q, st.T)
	}

	// Stash this step's snapshot and events for the next transition.
	copy(r.prevQ, snap.Q)
	r.prevSends = append(r.prevSends[:0], r.trace.Sends...)
	r.prevLost = append(r.prevLost[:0], r.trace.Lost...)
	copy(r.prevExtr, r.trace.Extracted)
	r.havePrev = true
	return st, terms
}

// compute builds the Terms for the transition prevQ → curQ, where curQ is
// the snapshot of the step whose injections are r.trace.Injected.
func (r *Recorder) compute(curQ []int64, prevT int64) *Terms {
	g := r.eng.Spec.G
	t := &Terms{T: prevT}
	for v := range curQ {
		d := curQ[v] - r.prevQ[v]
		t.DeltaP += curQ[v]*curQ[v] - r.prevQ[v]*r.prevQ[v]
		t.SecondOrder += d * d
		t.Delta += r.prevQ[v] * d
		t.InjectionTerm += r.prevQ[v] * r.trace.Injected[v]
		t.ExtractionTerm -= r.prevQ[v] * r.prevExtr[v]
	}
	for i, s := range r.prevSends {
		from := s.From
		to := s.To(g)
		if r.prevLost[i] {
			t.LossTerm -= r.prevQ[from]
		} else {
			t.GradientTerm += r.prevQ[to] - r.prevQ[from]
		}
	}
	return t
}

// Audit runs the engine for `steps` steps, checking every transition and
// returning the worst (largest) δ_t and ΔP seen along with the number of
// transitions verified. It fails fast on the first identity violation.
func Audit(e *core.Engine, steps int64) (maxDelta, maxDeltaP int64, verified int64, err error) {
	r := NewRecorder(e)
	first := true
	for i := int64(0); i < steps; i++ {
		_, terms := r.Step()
		if terms == nil {
			continue
		}
		if err := terms.Check(); err != nil {
			return maxDelta, maxDeltaP, verified, err
		}
		if first || terms.Delta > maxDelta {
			maxDelta = terms.Delta
		}
		if first || terms.DeltaP > maxDeltaP {
			maxDeltaP = terms.DeltaP
		}
		first = false
		verified++
	}
	return maxDelta, maxDeltaP, verified, nil
}
