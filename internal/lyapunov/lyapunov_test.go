package lyapunov

import (
	"testing"
	"testing/quick"

	"repro/internal/arrivals"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/loss"
	"repro/internal/rng"
)

func thetaSpec() *core.Spec {
	return core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
}

func TestIdentityLossless(t *testing.T) {
	e := core.NewEngine(thetaSpec(), core.NewLGG())
	maxDelta, maxDeltaP, verified, err := Audit(e, 500)
	if err != nil {
		t.Fatal(err)
	}
	if verified != 499 {
		t.Fatalf("verified %d transitions, want 499", verified)
	}
	// The unsaturated network drains: δ_t cannot stay hugely positive.
	bound := int64(5 * 5 * 9) // 5nΔ²
	if maxDeltaP > bound {
		t.Fatalf("max ΔP %d exceeds Property 1 bound %d", maxDeltaP, bound)
	}
	_ = maxDelta
}

func TestIdentityWithLosses(t *testing.T) {
	e := core.NewEngine(thetaSpec(), core.NewLGG())
	e.Loss = &loss.Bernoulli{P: 0.3, R: rng.New(5)}
	if _, _, _, err := Audit(e, 500); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityGeneralizedLying(t *testing.T) {
	s := thetaSpec()
	for v := range s.R {
		if s.In[v] > 0 || s.Out[v] > 0 {
			s.R[v] = 8
		}
	}
	e := core.NewEngine(s, core.NewLGG())
	e.Declare = core.DeclareZero{}
	e.Extract = core.ExtractMin{}
	if _, _, _, err := Audit(e, 500); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityOtherRouters(t *testing.T) {
	s := thetaSpec()
	for _, r := range []core.Router{
		baseline.NewFullGradient(),
		baseline.NewShortestPath(s),
		baseline.NewRandomForward(rng.New(6)),
	} {
		e := core.NewEngine(s, r)
		if _, _, _, err := Audit(e, 300); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
	}
}

func TestGradientTermNegativeForTruthfulLGG(t *testing.T) {
	// LGG only ships strictly downhill on truthful declarations, so every
	// delivered send contributes negatively to the gradient term.
	e := core.NewEngine(thetaSpec(), core.NewLGG())
	r := NewRecorder(e)
	for i := 0; i < 300; i++ {
		_, terms := r.Step()
		if terms == nil {
			continue
		}
		if terms.GradientTerm > 0 {
			t.Fatalf("t=%d: positive gradient term %d under truthful LGG", terms.T, terms.GradientTerm)
		}
	}
}

func TestFirstStepHasNoTerms(t *testing.T) {
	r := NewRecorder(core.NewEngine(thetaSpec(), core.NewLGG()))
	if _, terms := r.Step(); terms != nil {
		t.Fatal("first transition should not produce terms")
	}
	if _, terms := r.Step(); terms == nil {
		t.Fatal("second step should produce terms")
	}
}

func TestTermsCheckDetectsCorruption(t *testing.T) {
	terms := &Terms{DeltaP: 10, SecondOrder: 2, Delta: 4,
		InjectionTerm: 4, GradientTerm: 0, LossTerm: 0, ExtractionTerm: 0}
	if err := terms.Check(); err != nil {
		t.Fatalf("consistent terms rejected: %v", err)
	}
	bad := *terms
	bad.Delta = 5
	if bad.Check() == nil {
		t.Fatal("component mismatch accepted")
	}
	bad2 := *terms
	bad2.DeltaP = 11
	if bad2.Check() == nil {
		t.Fatal("ΔP mismatch accepted")
	}
}

// Property: the identities hold exactly on random networks with random
// load, losses and thinning.
func TestQuickIdentityUniversal(t *testing.T) {
	f := func(seed uint64, nRaw uint8, lossPct, thinPct uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%8) + 3
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		s := core.NewSpec(g).SetSource(0, 1+r.Int64N(3)).SetSink(graph.NodeID(n-1), 1+r.Int64N(3))
		e := core.NewEngine(s, core.NewLGG())
		e.Loss = &loss.Bernoulli{P: float64(lossPct%100) / 100, R: r.Split(1)}
		e.Arrivals = &arrivals.Thinned{P: float64(thinPct%101) / 100, R: r.Split(2)}
		_, _, verified, err := Audit(e, 60)
		return err == nil && verified == 59
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
