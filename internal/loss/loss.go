// Package loss implements the transmission-loss models of the network
// semantics ("each link can transmit at most 1 packet, and this packet
// can be lost without any notification", Section II). The stability
// theorems must hold under arbitrary losses; experiment E11 couples runs
// with and without them.
package loss

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Bernoulli loses every transmitted packet independently with probability
// P.
type Bernoulli struct {
	P float64
	R *rng.Source
}

// Name implements core.LossModel.
func (l *Bernoulli) Name() string { return fmt.Sprintf("bernoulli(p=%g)", l.P) }

// Lost implements core.LossModel.
func (l *Bernoulli) Lost(_ int64, _ graph.EdgeID, _ graph.NodeID) bool {
	return l.R.Bool(l.P)
}

// EdgeTargeted loses packets on a designated edge set with probability P
// (1 for a hard cut) and never elsewhere — an adversary attacking
// specific links.
type EdgeTargeted struct {
	Edges map[graph.EdgeID]bool
	P     float64
	R     *rng.Source
}

// Name implements core.LossModel.
func (l *EdgeTargeted) Name() string {
	return fmt.Sprintf("edge-targeted(%d edges, p=%g)", len(l.Edges), l.P)
}

// Lost implements core.LossModel.
func (l *EdgeTargeted) Lost(_ int64, e graph.EdgeID, _ graph.NodeID) bool {
	if !l.Edges[e] {
		return false
	}
	if l.P >= 1 {
		return true
	}
	return l.R.Bool(l.P)
}

// Windowed applies loss probability PIn during recurring windows and POut
// otherwise: steps t with t mod Period < WindowLen are "in the window".
// It models bursty channel outages.
type Windowed struct {
	Period    int64
	WindowLen int64
	PIn       float64
	POut      float64
	R         *rng.Source
}

// Name implements core.LossModel.
func (l *Windowed) Name() string {
	return fmt.Sprintf("windowed(%d/%d, %g/%g)", l.WindowLen, l.Period, l.PIn, l.POut)
}

// Lost implements core.LossModel.
func (l *Windowed) Lost(t int64, _ graph.EdgeID, _ graph.NodeID) bool {
	if l.Period <= 0 {
		panic("loss: Windowed needs a positive period")
	}
	p := l.POut
	if t%l.Period < l.WindowLen {
		p = l.PIn
	}
	return l.R.Bool(p)
}

// Deterministic loses exactly the (step, edge) pairs in its set — the
// fully scripted adversary used by the domination counterexample search.
type Deterministic struct {
	Drops map[[2]int64]bool // key: {t, edge}
}

// Name implements core.LossModel.
func (l *Deterministic) Name() string { return fmt.Sprintf("deterministic(%d)", len(l.Drops)) }

// Lost implements core.LossModel.
func (l *Deterministic) Lost(t int64, e graph.EdgeID, _ graph.NodeID) bool {
	return l.Drops[[2]int64{t, int64(e)}]
}
