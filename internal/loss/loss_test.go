package loss

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestBernoulliRate(t *testing.T) {
	l := &Bernoulli{P: 0.3, R: rng.New(1)}
	lost := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if l.Lost(int64(i), 0, 0) {
			lost++
		}
	}
	if f := float64(lost) / n; math.Abs(f-0.3) > 0.02 {
		t.Fatalf("loss rate %v, want ~0.3", f)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	l := &Bernoulli{P: 0, R: rng.New(1)}
	if l.Lost(0, 0, 0) {
		t.Fatal("p=0 lost a packet")
	}
	l = &Bernoulli{P: 1, R: rng.New(1)}
	if !l.Lost(0, 0, 0) {
		t.Fatal("p=1 delivered a packet")
	}
}

func TestEdgeTargeted(t *testing.T) {
	l := &EdgeTargeted{Edges: map[graph.EdgeID]bool{3: true}, P: 1}
	if l.Lost(0, 2, 0) {
		t.Fatal("untargeted edge lost")
	}
	if !l.Lost(0, 3, 0) {
		t.Fatal("targeted edge delivered")
	}
	// Probabilistic targeting.
	lp := &EdgeTargeted{Edges: map[graph.EdgeID]bool{1: true}, P: 0.5, R: rng.New(2)}
	lost := 0
	for i := 0; i < 2000; i++ {
		if lp.Lost(int64(i), 1, 0) {
			lost++
		}
	}
	if lost < 800 || lost > 1200 {
		t.Fatalf("targeted p=0.5 lost %d/2000", lost)
	}
}

func TestWindowed(t *testing.T) {
	l := &Windowed{Period: 10, WindowLen: 3, PIn: 1, POut: 0, R: rng.New(3)}
	for tm := int64(0); tm < 40; tm++ {
		want := tm%10 < 3
		if got := l.Lost(tm, 0, 0); got != want {
			t.Fatalf("t=%d: lost=%v, want %v", tm, got, want)
		}
	}
}

func TestWindowedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad Windowed accepted")
		}
	}()
	(&Windowed{Period: 0}).Lost(0, 0, 0)
}

func TestDeterministic(t *testing.T) {
	l := &Deterministic{Drops: map[[2]int64]bool{{5, 2}: true}}
	if l.Lost(5, 1, 0) || l.Lost(4, 2, 0) {
		t.Fatal("wrong drop fired")
	}
	if !l.Lost(5, 2, 0) {
		t.Fatal("scripted drop missed")
	}
}

func TestNames(t *testing.T) {
	models := []interface{ Name() string }{
		&Bernoulli{P: 0.1, R: rng.New(1)},
		&EdgeTargeted{},
		&Windowed{Period: 5},
		&Deterministic{},
	}
	for _, m := range models {
		if m.Name() == "" {
			t.Fatalf("%T has empty name", m)
		}
	}
}
