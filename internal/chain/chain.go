// Package chain performs exact Markov-chain analysis of small
// S-D-networks under LGG. The queue vector q_t is a Markov chain when
// arrivals are i.i.d. across steps (the protocol itself is deterministic
// given the injections); for networks whose reachable state space is
// small, the package enumerates it exactly, builds the transition kernel,
// and computes the stationary distribution by power iteration.
//
// This closes the loop on the stability experiments from the other side:
// instead of observing a long simulated run, one obtains the *exact*
// steady-state backlog and potential, and a proof (by exhaustion) that
// the reachable state space is finite — the strongest possible form of
// Definition 2's "remains bounded" for a given instance. The test suite
// and experiment E24 cross-validate simulated long-run averages against
// the exact values.
package chain

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Outcome is one possible injection vector with its probability.
type Outcome struct {
	Inj []int64
	P   float64
}

// IIDArrivals describes an arrival process that draws one Outcome
// independently each step.
type IIDArrivals []Outcome

// Validate checks the distribution sums to 1 and is non-negative.
func (a IIDArrivals) Validate(n int) error {
	var sum float64
	for i, o := range a {
		if len(o.Inj) != n {
			return fmt.Errorf("chain: outcome %d has %d entries, want %d", i, len(o.Inj), n)
		}
		if o.P < 0 {
			return fmt.Errorf("chain: outcome %d has negative probability", i)
		}
		for _, x := range o.Inj {
			if x < 0 {
				return fmt.Errorf("chain: outcome %d has negative injection", i)
			}
		}
		sum += o.P
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("chain: probabilities sum to %v, want 1", sum)
	}
	return nil
}

// Exact arrivals: always inject spec.In.
func Exact(spec *core.Spec) IIDArrivals {
	return IIDArrivals{{Inj: append([]int64(nil), spec.In...), P: 1}}
}

// ThinnedBinomial returns the distribution of independent per-packet
// thinning with probability p at every source (the product of binomials,
// enumerated exactly). Sources with large in(v) explode combinatorially;
// intended for the small instances this package targets.
func ThinnedBinomial(spec *core.Spec, p float64) IIDArrivals {
	outcomes := IIDArrivals{{Inj: make([]int64, spec.N()), P: 1}}
	for v := 0; v < spec.N(); v++ {
		in := spec.In[v]
		if in == 0 {
			continue
		}
		var next IIDArrivals
		for k := int64(0); k <= in; k++ {
			pk := binomPMF(in, k, p)
			for _, o := range outcomes {
				inj := append([]int64(nil), o.Inj...)
				inj[v] = k
				next = append(next, Outcome{Inj: inj, P: o.P * pk})
			}
		}
		outcomes = next
	}
	return outcomes
}

func binomPMF(n, k int64, p float64) float64 {
	c := 1.0
	for i := int64(0); i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

// Chain is the enumerated Markov chain.
type Chain struct {
	Spec   *core.Spec
	States [][]int64 // reachable queue vectors, index = state id
	// Trans[s] lists (state, probability) successors of state s.
	Trans [][]Succ

	index map[string]int
}

// Succ is one weighted transition.
type Succ struct {
	To int
	P  float64
}

// Options bounds the enumeration.
type Options struct {
	// MaxStates aborts enumeration beyond this many reachable states
	// (default 200000).
	MaxStates int
	// CapPerNode aborts if any reachable queue exceeds it (default 1<<30;
	// set it to certify boundedness: enumeration completing under a cap
	// proves every reachable state respects it).
	CapPerNode int64
}

// Build enumerates the reachable state space of LGG under the given
// arrival distribution, starting from the all-empty state. The router is
// the canonical LGG (deterministic edge-order ties), so given the
// injections each transition is deterministic; stochasticity comes only
// from arrivals.
func Build(spec *core.Spec, arrivals IIDArrivals, opts Options) (*Chain, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := arrivals.Validate(spec.N()); err != nil {
		return nil, err
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 200000
	}
	if opts.CapPerNode <= 0 {
		opts.CapPerNode = 1 << 30
	}

	eng := core.NewEngine(spec, core.NewLGG())
	fixed := &fixedArrivals{}
	eng.Arrivals = fixed

	c := &Chain{Spec: spec, index: map[string]int{}}
	add := func(q []int64) (int, error) {
		k := key(q)
		if id, ok := c.index[k]; ok {
			return id, nil
		}
		for _, x := range q {
			if x > opts.CapPerNode {
				return 0, fmt.Errorf("chain: queue %d exceeds cap %d — instance looks unbounded", x, opts.CapPerNode)
			}
		}
		id := len(c.States)
		if id >= opts.MaxStates {
			return 0, fmt.Errorf("chain: more than %d reachable states", opts.MaxStates)
		}
		c.States = append(c.States, append([]int64(nil), q...))
		c.Trans = append(c.Trans, nil)
		c.index[k] = id
		return id, nil
	}

	zero := make([]int64, spec.N())
	if _, err := add(zero); err != nil {
		return nil, err
	}
	for frontier := 0; frontier < len(c.States); frontier++ {
		from := c.States[frontier]
		// merge duplicate successors
		probs := map[int]float64{}
		for _, o := range arrivals {
			eng.SetQueues(from)
			fixed.inj = o.Inj
			eng.Step()
			to, err := add(eng.Q)
			if err != nil {
				return nil, err
			}
			probs[to] += o.P
		}
		succ := make([]Succ, 0, len(probs))
		for to, p := range probs {
			succ = append(succ, Succ{To: to, P: p})
		}
		sort.Slice(succ, func(i, j int) bool { return succ[i].To < succ[j].To })
		c.Trans[frontier] = succ
	}
	return c, nil
}

type fixedArrivals struct{ inj []int64 }

func (f *fixedArrivals) Name() string { return "fixed" }
func (f *fixedArrivals) Injections(_ int64, _ *core.Spec, inj []int64) {
	copy(inj, f.inj)
}

func key(q []int64) string {
	b := make([]byte, 0, len(q)*3)
	for _, x := range q {
		for x >= 0x80 {
			b = append(b, byte(x)|0x80)
			x >>= 7
		}
		b = append(b, byte(x))
	}
	return string(b)
}

// NumStates returns the size of the reachable state space.
func (c *Chain) NumStates() int { return len(c.States) }

// MaxBacklog returns the largest total backlog over reachable states —
// an exact upper bound certificate for Definition 2.
func (c *Chain) MaxBacklog() int64 {
	var m int64
	for _, q := range c.States {
		if b := core.TotalQueued(q); b > m {
			m = b
		}
	}
	return m
}

// Stationary computes the stationary distribution by power iteration on
// the lazy kernel (P+I)/2, which has the same stationary distribution as
// P but is aperiodic, so the iteration converges geometrically even for
// the periodic chains deterministic arrivals produce. Convergence is the
// L1 distance between successive iterates falling below tol.
func (c *Chain) Stationary(maxIters int, tol float64) ([]float64, error) {
	n := len(c.States)
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[0] = 1
	for it := 1; it <= maxIters; it++ {
		for i := range next {
			next[i] = cur[i] / 2 // lazy self-loop
		}
		for s, succ := range c.Trans {
			if cur[s] == 0 {
				continue
			}
			half := cur[s] / 2
			for _, t := range succ {
				next[t.To] += half * t.P
			}
		}
		var d float64
		for i := range next {
			d += math.Abs(next[i] - cur[i])
		}
		cur, next = next, cur
		if d < tol {
			return normalize(cur), nil
		}
	}
	return normalize(cur), fmt.Errorf("chain: stationary iteration did not reach tol %v in %d sweeps", tol, maxIters)
}

func normalize(pi []float64) []float64 {
	var sum float64
	for _, p := range pi {
		sum += p
	}
	out := make([]float64, len(pi))
	if sum > 0 {
		for i, p := range pi {
			out[i] = p / sum
		}
	}
	return out
}

// ExpectedBacklog returns E_π[N] under the distribution pi.
func (c *Chain) ExpectedBacklog(pi []float64) float64 {
	var e float64
	for s, p := range pi {
		e += p * float64(core.TotalQueued(c.States[s]))
	}
	return e
}

// ExpectedPotential returns E_π[P] under the distribution pi.
func (c *Chain) ExpectedPotential(pi []float64) float64 {
	var e float64
	for s, p := range pi {
		e += p * float64(core.Potential(c.States[s]))
	}
	return e
}

// BacklogTail returns the exact stationary tail P[N ≥ k] for
// k = 0 … MaxBacklog(). Stability proofs bound E[N]; the tail shows the
// full distribution (typically geometric away from capacity).
func (c *Chain) BacklogTail(pi []float64) []float64 {
	maxN := c.MaxBacklog()
	pmf := make([]float64, maxN+1)
	for s, p := range pi {
		pmf[core.TotalQueued(c.States[s])] += p
	}
	tail := make([]float64, maxN+1)
	acc := 0.0
	for k := maxN; k >= 0; k-- {
		acc += pmf[k]
		tail[k] = acc
	}
	return tail
}
