package chain

import (
	"math"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
)

func line2Spec() *core.Spec {
	return core.NewSpec(graph.Line(2)).SetSource(0, 1).SetSink(1, 1)
}

func thetaSpec() *core.Spec {
	return core.NewSpec(graph.ThetaGraph(2, 2)).SetSource(0, 2).SetSink(1, 2)
}

func TestBuildDeterministicLine(t *testing.T) {
	// Exact arrivals on the 2-node line: the chain settles into a cycle;
	// the reachable space is tiny.
	c, err := Build(line2Spec(), Exact(line2Spec()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() > 6 {
		t.Fatalf("line(2) reachable states = %d, expected a handful", c.NumStates())
	}
	// Every state's transitions sum to 1.
	for s, succ := range c.Trans {
		var sum float64
		for _, x := range succ {
			sum += x.P
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("state %d transitions sum to %v", s, sum)
		}
	}
	if c.MaxBacklog() > 3 {
		t.Fatalf("max backlog = %d", c.MaxBacklog())
	}
}

func TestBoundednessCertificate(t *testing.T) {
	// Enumeration completing under a cap is a PROOF that every reachable
	// state respects it — Definition 2 by exhaustion.
	spec := thetaSpec()
	c, err := Build(spec, Exact(spec), Options{CapPerNode: 16})
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxBacklog() == 0 {
		t.Fatal("degenerate chain")
	}
	t.Logf("theta(2,2) exact: %d reachable states, max backlog %d", c.NumStates(), c.MaxBacklog())
}

func TestUnboundedDetection(t *testing.T) {
	// Infeasible line: the enumeration must hit the cap.
	spec := core.NewSpec(graph.Line(3)).SetSource(0, 2).SetSink(2, 2)
	if _, err := Build(spec, Exact(spec), Options{CapPerNode: 30, MaxStates: 5000}); err == nil {
		t.Fatal("infeasible instance enumerated a finite space")
	}
}

func TestThinnedBinomialDistribution(t *testing.T) {
	spec := line2Spec() // in = 1: outcomes 0 and 1
	d := ThinnedBinomial(spec, 0.25)
	if err := d.Validate(spec.N()); err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 {
		t.Fatalf("outcomes = %d", len(d))
	}
	var p1 float64
	for _, o := range d {
		if o.Inj[0] == 1 {
			p1 = o.P
		}
	}
	if math.Abs(p1-0.25) > 1e-12 {
		t.Fatalf("P[inj=1] = %v", p1)
	}
	// in = 2: three outcomes with binomial(2, p) masses
	ts := thetaSpec()
	d2 := ThinnedBinomial(ts, 0.5)
	if len(d2) != 3 {
		t.Fatalf("binomial(2) outcomes = %d", len(d2))
	}
	if err := d2.Validate(ts.N()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadDistributions(t *testing.T) {
	spec := line2Spec()
	bad := IIDArrivals{{Inj: []int64{1, 0}, P: 0.7}}
	if bad.Validate(spec.N()) == nil {
		t.Fatal("non-normalized distribution accepted")
	}
	neg := IIDArrivals{{Inj: []int64{-1, 0}, P: 1}}
	if neg.Validate(spec.N()) == nil {
		t.Fatal("negative injection accepted")
	}
	short := IIDArrivals{{Inj: []int64{1}, P: 1}}
	if short.Validate(spec.N()) == nil {
		t.Fatal("short vector accepted")
	}
}

func TestStationaryMatchesSimulationThinned(t *testing.T) {
	// The headline cross-validation: exact stationary backlog vs a long
	// simulated average under the same thinned arrivals.
	spec := thetaSpec()
	p := 0.6
	c, err := Build(spec, ThinnedBinomial(spec, p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Stationary(100000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	exactN := c.ExpectedBacklog(pi)

	// simulate
	e := core.NewEngine(spec, core.NewLGG())
	e.Arrivals = &arrivals.Thinned{P: p, R: rng.New(42)}
	r := sim.Run(e, sim.Options{Horizon: 200000})
	tail := r.Series.Queued[len(r.Series.Queued)/4:]
	var simN float64
	for _, x := range tail {
		simN += x
	}
	simN /= float64(len(tail))

	if math.Abs(simN-exactN) > 0.05*math.Max(1, exactN) {
		t.Fatalf("simulated backlog %.4f vs exact %.4f", simN, exactN)
	}
	t.Logf("theta(2,2) thinned p=%.1f: exact E[N]=%.4f simulated=%.4f (%d states)",
		p, exactN, simN, c.NumStates())
}

func TestStationaryDeterministicCycle(t *testing.T) {
	// Deterministic arrivals on a 3-node line: the steady cycle holds a
	// packet in transit at every step boundary; the lazy power iteration
	// must converge despite the underlying periodicity.
	spec := core.NewSpec(graph.Line(3)).SetSource(0, 1).SetSink(2, 1)
	c, err := Build(spec, Exact(spec), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Stationary(20000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stationary mass = %v", sum)
	}
	if c.ExpectedBacklog(pi) <= 0 {
		t.Fatal("steady cycle should hold packets at step boundaries")
	}
}

func TestLine2EmptiesEveryStep(t *testing.T) {
	// The 2-node line drains within each step: its only recurrent state
	// is the empty vector — a nice exact fact in itself.
	spec := line2Spec()
	c, err := Build(spec, Exact(spec), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 1 || core.TotalQueued(c.States[0]) != 0 {
		t.Fatalf("line(2) states = %v", c.States)
	}
}

func TestExpectedPotential(t *testing.T) {
	spec := line2Spec()
	c, _ := Build(spec, Exact(spec), Options{})
	pi, _ := c.Stationary(5000, 1e-10)
	if c.ExpectedPotential(pi) < c.ExpectedBacklog(pi) {
		// P = Σq² ≥ Σq when queues are integers ≥ 0 with at least one ≥1
		t.Fatal("E[P] < E[N] is impossible for integer queues")
	}
}

func TestBacklogTail(t *testing.T) {
	spec := thetaSpec()
	c, err := Build(spec, ThinnedBinomial(spec, 0.6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Stationary(100000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	tail := c.BacklogTail(pi)
	if math.Abs(tail[0]-1) > 1e-9 {
		t.Fatalf("P[N≥0] = %v, want 1", tail[0])
	}
	for k := 1; k < len(tail); k++ {
		if tail[k] > tail[k-1]+1e-12 {
			t.Fatalf("tail not monotone at %d: %v > %v", k, tail[k], tail[k-1])
		}
	}
	// E[N] = Σ_{k≥1} P[N≥k] must agree with ExpectedBacklog.
	var e float64
	for k := 1; k < len(tail); k++ {
		e += tail[k]
	}
	if math.Abs(e-c.ExpectedBacklog(pi)) > 1e-9 {
		t.Fatalf("tail-sum E[N] %v vs direct %v", e, c.ExpectedBacklog(pi))
	}
}

func TestMaxStatesGuard(t *testing.T) {
	spec := thetaSpec()
	if _, err := Build(spec, ThinnedBinomial(spec, 0.5), Options{MaxStates: 2}); err == nil {
		t.Fatal("state cap ignored")
	}
}
