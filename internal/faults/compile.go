package faults

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Stream labels for the sub-sources Compile derives, one namespace per
// stochastic component so adding events never perturbs unrelated streams.
const (
	streamBurstChain = 0xB0057C4A // per-event, per-edge state chain
	streamBurstLoss  = 0xB0057105 // per-event, per-edge loss draws
	streamRamp       = 0x4A3B9001 // per-event ramp draws
	streamLie        = 0x11E00001 // per-event random-lie draws
)

// window is a half-open down interval [from, to).
type window struct{ from, to int64 }

func (w window) contains(t int64) bool { return t >= w.from && t < w.to }

// Injector is a compiled Schedule bound to one concrete multigraph: a
// bundle of TopologyProcess / LossModel / DeclarePolicy wrappers plus the
// crash observer, ready to hang on an engine. Compile once per run; an
// Injector carries mutable chain state and must not be shared between
// engines or goroutines.
type Injector struct {
	Schedule Schedule

	g        *graph.Multigraph
	topology *faultTopology // nil when no event touches edges
	loss     *faultLoss     // nil when no event touches losses
	declare  *faultDeclare  // nil when no lie windows
	crashes  []crashDrop
}

// Compile validates s against g and builds the injector. src seeds every
// stochastic component; pass a dedicated Split of the run stream so fault
// randomness never perturbs arrivals or routing tie-breaks.
func Compile(s Schedule, g *graph.Multigraph, src *rng.Source) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m, n := g.NumEdges(), g.NumNodes()
	inj := &Injector{Schedule: s, g: g}
	for i, ev := range s.Events {
		for _, e := range ev.Edges {
			if int(e) >= m {
				return nil, fmt.Errorf("faults: event %d (%s): edge %d out of range (graph has %d edges)", i, ev.Kind, e, m)
			}
		}
		for _, v := range ev.Nodes {
			if int(v) >= n {
				return nil, fmt.Errorf("faults: event %d (%s): node %d out of range (graph has %d nodes)", i, ev.Kind, v, n)
			}
		}
		switch ev.Kind {
		case LinkDown, Partition:
			inj.topo(m).add(ev.Edges, window{ev.From, ev.To})
		case Crash:
			for _, v := range ev.Nodes {
				for _, in := range g.Incident(v) {
					inj.topo(m).add([]graph.EdgeID{in.Edge}, window{ev.From, ev.To})
				}
			}
			if ev.Drop {
				inj.crashes = append(inj.crashes, crashDrop{at: ev.From, nodes: ev.Nodes})
			}
		case Burst:
			inj.lossM().bursts = append(inj.lossM().bursts, &burstSet{
				ev:    ev,
				chain: src.Split(streamBurstChain).Split(uint64(i)),
				loss:  src.Split(streamBurstLoss).Split(uint64(i)),
				edges: edgeSet(ev.Edges),
			})
		case Ramp:
			inj.lossM().ramps = append(inj.lossM().ramps, &rampSet{
				ev:    ev,
				src:   src.Split(streamRamp).Split(uint64(i)),
				edges: edgeSet(ev.Edges),
			})
		case Lie:
			inj.decl().lies = append(inj.decl().lies, &lieSet{
				ev:    ev,
				src:   src.Split(streamLie).Split(uint64(i)),
				nodes: nodeSet(ev.Nodes),
			})
		}
	}
	return inj, nil
}

// Inject compiles s against e's network and applies it — the one-call
// path used by the CLIs and the sweep fault axis.
func Inject(e *core.Engine, s Schedule, src *rng.Source) (*Injector, error) {
	inj, err := Compile(s, e.Spec.G, src)
	if err != nil {
		return nil, err
	}
	inj.Apply(e)
	return inj, nil
}

// Apply hangs the compiled faults on e, wrapping whatever Topology / Loss
// / Declare hooks are already installed (base behaviour applies first:
// an edge a base TopologyProcess killed stays dead, a packet the base
// LossModel lost stays lost). The engine's network must be the graph the
// schedule was compiled against. Crash-with-drop events register a
// StepObserver that zeroes the crashed queues at crash onset.
func (inj *Injector) Apply(e *core.Engine) {
	if e.Spec.G != inj.g {
		panic("faults: Apply on an engine with a different graph than Compile saw")
	}
	if inj.topology != nil {
		inj.topology.base = e.Topology
		e.Topology = inj.topology
	}
	if inj.loss != nil {
		inj.loss.base = e.Loss
		e.Loss = inj.loss
	}
	if inj.declare != nil {
		inj.declare.base = e.Declare
		e.Declare = inj.declare
	}
	for _, c := range inj.crashes {
		if c.at <= e.T {
			// Crash onset at or before the current step: drop now, before
			// the next Step runs (covers From == 0 schedules).
			dropQueues(e, c.nodes)
			continue
		}
		e.AddObserver(&crashObserver{drop: c, eng: e})
	}
}

func (inj *Injector) topo(m int) *faultTopology {
	if inj.topology == nil {
		inj.topology = &faultTopology{perEdge: make([][]window, m)}
	}
	return inj.topology
}

func (inj *Injector) lossM() *faultLoss {
	if inj.loss == nil {
		inj.loss = &faultLoss{}
	}
	return inj.loss
}

func (inj *Injector) decl() *faultDeclare {
	if inj.declare == nil {
		inj.declare = &faultDeclare{}
	}
	return inj.declare
}

func edgeSet(es []graph.EdgeID) map[graph.EdgeID]bool {
	if es == nil {
		return nil // nil set = every edge
	}
	s := make(map[graph.EdgeID]bool, len(es))
	for _, e := range es {
		s[e] = true
	}
	return s
}

func nodeSet(vs []graph.NodeID) map[graph.NodeID]bool {
	if vs == nil {
		return nil // nil set = every node
	}
	s := make(map[graph.NodeID]bool, len(vs))
	for _, v := range vs {
		s[v] = true
	}
	return s
}

// faultTopology kills edges during their down windows, on top of a base
// TopologyProcess. all holds windows that black out every edge; perEdge
// is indexed by edge id. Window lists stay short (one entry per event
// touching the edge), so containment is a linear scan.
type faultTopology struct {
	base    core.TopologyProcess
	all     []window
	perEdge [][]window
}

func (ft *faultTopology) add(edges []graph.EdgeID, w window) {
	if edges == nil {
		ft.all = append(ft.all, w)
		return
	}
	for _, e := range edges {
		ft.perEdge[e] = append(ft.perEdge[e], w)
	}
}

func (ft *faultTopology) Name() string { return "faults" }

func (ft *faultTopology) EdgeAlive(t int64, e graph.EdgeID) bool {
	if ft.base != nil && !ft.base.EdgeAlive(t, e) {
		return false
	}
	for _, w := range ft.all {
		if w.contains(t) {
			return false
		}
	}
	for _, w := range ft.perEdge[e] {
		if w.contains(t) {
			return false
		}
	}
	return true
}

// geChain is one edge's Gilbert–Elliott two-state Markov chain. The chain
// advances one transition per simulated step inside the event window,
// lazily caught up from the last query time; transitions draw from a
// stream separate from the loss draws, so the state trajectory depends
// only on (seed, event, edge, t) and never on how often the edge actually
// carried a packet.
type geChain struct {
	chain *rng.Source
	bad   bool
	t     int64 // time the current state is valid for
}

// burstSet is one Burst event's lazily-populated per-edge chain table.
type burstSet struct {
	ev     Event
	chain  *rng.Source // parent; split per edge on first touch
	loss   *rng.Source
	edges  map[graph.EdgeID]bool // nil = all
	chains map[graph.EdgeID]*geChain
	losses map[graph.EdgeID]*rng.Source
}

func (b *burstSet) lost(t int64, e graph.EdgeID) bool {
	if !b.ev.Active(t) || (b.edges != nil && !b.edges[e]) {
		return false
	}
	if b.chains == nil {
		b.chains = make(map[graph.EdgeID]*geChain)
		b.losses = make(map[graph.EdgeID]*rng.Source)
	}
	c := b.chains[e]
	if c == nil {
		// Split is a pure derivation from (seed, path), so creating
		// chains lazily in whatever order edges are first queried yields
		// the same streams as creating them all upfront.
		c = &geChain{chain: b.chain.Split(uint64(e)), t: b.ev.From}
		b.chains[e] = c
		b.losses[e] = b.loss.Split(uint64(e))
	}
	for c.t < t {
		p := c.chain.Float64()
		if c.bad {
			c.bad = p >= b.ev.BtoG
		} else {
			c.bad = p < b.ev.GtoB
		}
		c.t++
	}
	pr := b.ev.PGood
	if c.bad {
		pr = b.ev.PBad
	}
	return b.losses[e].Bool(pr)
}

// rampSet is one Ramp event: loss probability interpolated linearly from
// P0 at From to P1 approaching To.
type rampSet struct {
	ev    Event
	src   *rng.Source
	edges map[graph.EdgeID]bool // nil = all
}

func (r *rampSet) lost(t int64, e graph.EdgeID) bool {
	if !r.ev.Active(t) || (r.edges != nil && !r.edges[e]) {
		return false
	}
	frac := float64(t-r.ev.From) / float64(r.ev.To-r.ev.From)
	return r.src.Bool(r.ev.P0 + (r.ev.P1-r.ev.P0)*frac)
}

// faultLoss ORs the schedule's loss components over the base model. Every
// active component is consulted even after one reports a loss, so each
// component's stream advances at a rate independent of the others.
type faultLoss struct {
	base   core.LossModel
	bursts []*burstSet
	ramps  []*rampSet
}

func (fl *faultLoss) Name() string { return "faults" }

func (fl *faultLoss) Lost(t int64, e graph.EdgeID, from graph.NodeID) bool {
	lost := fl.base != nil && fl.base.Lost(t, e, from)
	for _, b := range fl.bursts {
		if b.lost(t, e) {
			lost = true
		}
	}
	for _, r := range fl.ramps {
		if r.lost(t, e) {
			lost = true
		}
	}
	return lost
}

// lieSet is one Lie event: during the window the targeted nodes declare
// per Mode instead of consulting the base policy.
type lieSet struct {
	ev    Event
	src   *rng.Source
	nodes map[graph.NodeID]bool // nil = all
}

// faultDeclare overrides declarations inside lie windows; the last
// matching event in schedule order wins when windows overlap. Note the
// engine consults DeclarePolicy only for nodes with R(v) > 0 and true
// queue ≤ R(v) — lying is an R-generalized capability (Definition 6(ii)),
// so a Lie window on a classical network is a no-op by construction.
type faultDeclare struct {
	base core.DeclarePolicy
	lies []*lieSet
}

func (fd *faultDeclare) Name() string { return "faults" }

func (fd *faultDeclare) Declare(t int64, v graph.NodeID, q, r int64) int64 {
	var hit *lieSet
	for _, l := range fd.lies {
		if l.ev.Active(t) && (l.nodes == nil || l.nodes[v]) {
			hit = l
		}
	}
	if hit == nil {
		if fd.base != nil {
			return fd.base.Declare(t, v, q, r)
		}
		return q
	}
	switch hit.ev.Mode {
	case ModeZero:
		return 0
	case ModeMax:
		return r
	default: // ModeRandom
		return hit.src.Int64N(r + 1)
	}
}

// crashDrop schedules the queue-destruction side of a Crash event.
type crashDrop struct {
	at    int64 // crash onset: queues are dropped before step `at` runs
	nodes []graph.NodeID
}

// crashObserver zeroes the crashed nodes' queues after step at−1, i.e.
// immediately before the crash window opens. Zeroing Q between steps is
// safe: the engine's active-list compaction handles positive→0
// transitions at the next planning point. The dropped packets simply
// vanish — the preceding step's stats still show them (stats are taken
// before observers run), and the next step's Queued reflects the drop.
type crashObserver struct {
	drop crashDrop
	eng  *core.Engine
	done bool
}

func (c *crashObserver) OnStep(t int64, sn *core.Snapshot, st *core.StepStats) {
	if c.done || t+1 != c.drop.at {
		return
	}
	c.done = true
	dropQueues(c.eng, c.drop.nodes)
}

func dropQueues(e *core.Engine, nodes []graph.NodeID) {
	for _, v := range nodes {
		e.Q[v] = 0
	}
}
