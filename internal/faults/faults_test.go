package faults

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func lineEngine(n int) *core.Engine {
	g := graph.Line(n)
	s := core.NewSpec(g).SetSource(0, 1).SetSink(graph.NodeID(n-1), 1)
	return core.NewEngine(s, core.NewLGG())
}

func TestValidateRejectsBadEvents(t *testing.T) {
	bad := []Schedule{
		{Events: []Event{{Kind: LinkDown, From: 5, To: 5}}},
		{Events: []Event{{Kind: LinkDown, From: -1, To: 5}}},
		{Events: []Event{{Kind: Kind("meteor"), From: 0, To: 5}}},
		{Events: []Event{{Kind: Burst, From: 0, To: 5, PBad: 1.5}}},
		{Events: []Event{{Kind: Ramp, From: 0, To: 5, P1: -0.1}}},
		{Events: []Event{{Kind: Crash, From: 0, To: 5}}},
		{Events: []Event{{Kind: Lie, From: 0, To: 5, Mode: "plausible"}}},
		{Events: []Event{{Kind: LinkDown, From: 0, To: 5, Edges: []graph.EdgeID{-2}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s.Events[0])
		}
	}
	ok := Schedule{Events: []Event{
		{Kind: LinkDown, From: 0, To: 5},
		{Kind: Burst, From: 2, To: 9, PGood: 0.01, PBad: 0.7, GtoB: 0.1, BtoG: 0.3},
		{Kind: Crash, From: 1, To: 4, Nodes: []graph.NodeID{2}, Drop: true},
		{Kind: Lie, From: 0, To: 3, Mode: ModeRandom},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate rejected a good schedule: %v", err)
	}
}

func TestScheduleWindows(t *testing.T) {
	s := Schedule{Events: []Event{
		{Kind: LinkDown, From: 10, To: 20},
		{Kind: Ramp, From: 5, To: 12, P1: 0.5},
	}}
	if on := s.Onset(); on != 5 {
		t.Fatalf("Onset = %d, want 5", on)
	}
	if cl := s.ClearTime(); cl != 20 {
		t.Fatalf("ClearTime = %d, want 20", cl)
	}
	for _, c := range []struct {
		t    int64
		want bool
	}{{4, false}, {5, true}, {12, true}, {19, true}, {20, false}} {
		if got := s.Active(c.t); got != c.want {
			t.Errorf("Active(%d) = %v, want %v", c.t, got, c.want)
		}
	}
	if (Schedule{}).Active(0) || (Schedule{}).ClearTime() != 0 {
		t.Fatal("empty schedule must be inert")
	}
}

func TestCompileBoundsChecks(t *testing.T) {
	g := graph.Line(3) // 2 edges, 3 nodes
	src := rng.New(1)
	if _, err := Compile(Schedule{Events: []Event{{Kind: LinkDown, From: 0, To: 5, Edges: []graph.EdgeID{2}}}}, g, src); err == nil {
		t.Fatal("Compile accepted an out-of-range edge")
	}
	if _, err := Compile(Schedule{Events: []Event{{Kind: Crash, From: 0, To: 5, Nodes: []graph.NodeID{3}}}}, g, src); err == nil {
		t.Fatal("Compile accepted an out-of-range node")
	}
}

func TestLinkDownWindowOnEngine(t *testing.T) {
	e := lineEngine(3)
	sched := Schedule{Events: []Event{{Kind: LinkDown, From: 2, To: 6, Edges: []graph.EdgeID{0}}}}
	if _, err := Inject(e, sched, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	for tt := int64(0); tt < 10; tt++ {
		alive := e.Topology.EdgeAlive(tt, 0)
		want := !(tt >= 2 && tt < 6)
		if alive != want {
			t.Errorf("EdgeAlive(%d, 0) = %v, want %v", tt, alive, want)
		}
		if !e.Topology.EdgeAlive(tt, 1) {
			t.Errorf("edge 1 must stay alive at t=%d", tt)
		}
	}
	// LGG is alive-aware: the down window stalls packets at the source but
	// produces no Filtered drops and no violations.
	tot := e.Run(40)
	if tot.Violations != 0 {
		t.Fatalf("violations = %d, want 0", tot.Violations)
	}
	if tot.Extracted == 0 {
		t.Fatal("network never delivered after the window cleared")
	}
}

// maskTopo is a base TopologyProcess that permanently kills one edge.
type maskTopo struct{ dead graph.EdgeID }

func (m maskTopo) Name() string                           { return "mask" }
func (m maskTopo) EdgeAlive(t int64, e graph.EdgeID) bool { return e != m.dead }

func TestApplyComposesWithBaseTopology(t *testing.T) {
	e := lineEngine(4)
	e.Topology = maskTopo{dead: 2}
	sched := Schedule{Events: []Event{{Kind: LinkDown, From: 0, To: 5, Edges: []graph.EdgeID{0}}}}
	if _, err := Inject(e, sched, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	if e.Topology.EdgeAlive(1, 2) {
		t.Fatal("base topology's dead edge came back to life")
	}
	if e.Topology.EdgeAlive(1, 0) {
		t.Fatal("scheduled down window not applied")
	}
	if !e.Topology.EdgeAlive(6, 0) {
		t.Fatal("edge 0 must heal after the window")
	}
}

func TestCrashKillsIncidentEdgesAndDropsQueue(t *testing.T) {
	e := lineEngine(3) // edges: 0=(0,1), 1=(1,2)
	sched := Schedule{Events: []Event{{Kind: Crash, From: 2, To: 5, Nodes: []graph.NodeID{1}, Drop: true}}}
	if _, err := Inject(e, sched, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	e.SetQueues([]int64{0, 5, 0})
	e.Step() // step 0
	e.Step() // step 1; observer fires after it: crash onset at 2
	if e.Q[1] != 0 {
		t.Fatalf("q(1) = %d after crash onset, want 0 (dropped)", e.Q[1])
	}
	for _, ed := range []graph.EdgeID{0, 1} {
		if e.Topology.EdgeAlive(3, ed) {
			t.Fatalf("edge %d alive during crash window", ed)
		}
	}
	if !e.Topology.EdgeAlive(5, 0) {
		t.Fatal("edges must revive when the crash window closes")
	}
}

func TestCrashRetentionKeepsQueue(t *testing.T) {
	e := lineEngine(3)
	sched := Schedule{Events: []Event{{Kind: Crash, From: 1, To: 4, Nodes: []graph.NodeID{1}}}}
	if _, err := Inject(e, sched, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	e.SetQueues([]int64{0, 5, 0})
	e.Step() // step 0: node 1 may send over both incident edges
	e.Step() // step 1: crashed, edges dead, queue retained
	if e.Q[1] < 3 {
		t.Fatalf("q(1) = %d, want ≥ 3 (retention crash must not drop packets)", e.Q[1])
	}
}

func TestCrashAtZeroDropsOnApply(t *testing.T) {
	e := lineEngine(3)
	e.Q[1] = 9 // engine not yet stepped; Apply must drop immediately
	sched := Schedule{Events: []Event{{Kind: Crash, From: 0, To: 3, Nodes: []graph.NodeID{1}, Drop: true}}}
	if _, err := Inject(e, sched, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	if e.Q[1] != 0 {
		t.Fatalf("q(1) = %d, want 0: From=0 crash drops at Apply", e.Q[1])
	}
}

func TestLieWindowOverridesDeclarations(t *testing.T) {
	g := graph.Line(3)
	spec := core.NewSpec(g).SetSource(0, 1).SetSink(2, 1).SetRetention(1, 5)
	e := core.NewEngine(spec, core.NewLGG())
	sched := Schedule{Events: []Event{{Kind: Lie, From: 3, To: 8, Mode: ModeZero, Nodes: []graph.NodeID{1}}}}
	if _, err := Inject(e, sched, rng.New(11)); err != nil {
		t.Fatal(err)
	}
	if got := e.Declare.Declare(5, 1, 4, 5); got != 0 {
		t.Fatalf("declare in lie window = %d, want 0", got)
	}
	if got := e.Declare.Declare(9, 1, 4, 5); got != 4 {
		t.Fatalf("declare after lie window = %d, want truth 4", got)
	}
	if got := e.Declare.Declare(5, 0, 4, 5); got != 4 {
		t.Fatalf("untargeted node declared %d, want truth 4", got)
	}
}

func TestLieModes(t *testing.T) {
	g := graph.Line(2)
	mk := func(mode string) core.DeclarePolicy {
		e := core.NewEngine(core.NewSpec(g).SetSource(0, 1).SetSink(1, 1), core.NewLGG())
		sched := Schedule{Events: []Event{{Kind: Lie, From: 0, To: 100, Mode: mode}}}
		if _, err := Inject(e, sched, rng.New(5)); err != nil {
			t.Fatal(err)
		}
		return e.Declare
	}
	if got := mk(ModeMax).Declare(1, 0, 2, 7); got != 7 {
		t.Fatalf("mode=max declared %d, want 7", got)
	}
	rand := mk(ModeRandom)
	for i := 0; i < 50; i++ {
		if got := rand.Declare(int64(i), 0, 2, 7); got < 0 || got > 7 {
			t.Fatalf("mode=random declared %d, want within [0,7]", got)
		}
	}
}

// TestBurstChainQueryPatternIndependence pins the determinism property
// the two-stream design buys: the Gilbert–Elliott state trajectory
// depends only on (seed, event, edge, t), not on how often the edge was
// queried for a loss draw.
func TestBurstChainQueryPatternIndependence(t *testing.T) {
	ev := Event{Kind: Burst, From: 0, To: 1000, PGood: 0.01, PBad: 0.9, GtoB: 0.2, BtoG: 0.3}
	mk := func() *burstSet {
		src := rng.New(42)
		return &burstSet{ev: ev, chain: src.Split(streamBurstChain).Split(0), loss: src.Split(streamBurstLoss).Split(0)}
	}
	dense, sparse := mk(), mk()
	for tt := int64(0); tt < 500; tt++ {
		dense.lost(tt, 3)
	}
	sparse.lost(499, 3) // single query must land in the same chain state
	if dense.chains[3].bad != sparse.chains[3].bad {
		t.Fatal("burst chain state depends on the query pattern")
	}
}

func TestFaultRunDeterminism(t *testing.T) {
	sched := Schedule{Events: []Event{
		{Kind: Burst, From: 10, To: 60, PGood: 0.02, PBad: 0.6, GtoB: 0.1, BtoG: 0.25},
		{Kind: LinkDown, From: 30, To: 45, Edges: []graph.EdgeID{1}},
		{Kind: Crash, From: 50, To: 70, Nodes: []graph.NodeID{2}, Drop: true},
	}}
	run := func() ([]core.StepStats, []int64) {
		r := rng.New(99)
		g := graph.Grid(3, 3)
		s := core.NewSpec(g).SetSource(0, 2).SetSink(8, 2)
		e := core.NewEngine(s, core.NewLGG())
		if _, err := Inject(e, sched, r.Split(77)); err != nil {
			t.Fatal(err)
		}
		var stats []core.StepStats
		for i := 0; i < 120; i++ {
			stats = append(stats, e.Step())
		}
		return stats, append([]int64(nil), e.Q...)
	}
	s1, q1 := run()
	s2, q2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("fault-injected runs diverged between identical replays")
	}
	if !reflect.DeepEqual(q1, q2) {
		t.Fatal("final queues diverged between identical replays")
	}
}

func TestGenerateChurn(t *testing.T) {
	g := graph.Line(5) // 4 edges
	cfg := GenConfig{MTBF: 20, MTTR: 4, Horizon: 300}
	s1, err := Generate(cfg, g, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := Generate(cfg, g, rng.New(13))
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("Generate is not deterministic in the seed")
	}
	if s1.Empty() {
		t.Fatal("horizon 300 with MTBF 20 generated no churn")
	}
	last := make(map[graph.EdgeID]int64)
	for _, ev := range s1.Events {
		if ev.Kind != LinkDown || len(ev.Edges) != 1 {
			t.Fatalf("generator emitted %+v, want single-edge LinkDown", ev)
		}
		if ev.From < 0 || ev.To > cfg.Horizon {
			t.Fatalf("window [%d,%d) escapes the horizon", ev.From, ev.To)
		}
		e := ev.Edges[0]
		if ev.From <= last[e] {
			t.Fatalf("edge %d windows overlap or touch: from %d after to %d", e, ev.From, last[e])
		}
		last[e] = ev.To
	}
	// A generated schedule must compile and run.
	eng := lineEngine(5)
	if _, err := Inject(eng, s1, rng.New(14)); err != nil {
		t.Fatal(err)
	}
	if tot := eng.Run(300); tot.Violations != 0 {
		t.Fatalf("churn run produced %d violations", tot.Violations)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	g := graph.Line(3)
	if _, err := Generate(GenConfig{MTBF: 0.5, MTTR: 2, Horizon: 10}, g, rng.New(1)); err == nil {
		t.Fatal("accepted MTBF < 1")
	}
	if _, err := Generate(GenConfig{MTBF: 2, MTTR: 2, Horizon: 0}, g, rng.New(1)); err == nil {
		t.Fatal("accepted horizon 0")
	}
	if _, err := Generate(GenConfig{MTBF: 2, MTTR: 2, Horizon: 10, Edges: []graph.EdgeID{9}}, g, rng.New(1)); err == nil {
		t.Fatal("accepted out-of-range edge")
	}
}
