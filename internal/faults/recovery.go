package faults

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// RecoveryVerdict classifies a run's behaviour after its last fault
// clears.
type RecoveryVerdict int

const (
	// RecoveryUnknown: the schedule is empty or no steps were observed,
	// so there is nothing to judge.
	RecoveryUnknown RecoveryVerdict = iota
	// Recovered: the post-fault backlog drained back to its pre-fault
	// level (within slack) and the post-fault trajectory is not
	// diverging.
	Recovered
	// Degraded: the fault cleared but the backlog either never drained
	// to the pre-fault level or kept growing afterwards.
	Degraded
	// Indeterminate: the fault window extends past (or ends too close
	// to) the run horizon, so the drain was never meaningfully observed.
	// Calling such a run Recovered or Degraded would be a guess.
	Indeterminate
)

// String returns the verdict name ("Unknown", "Recovered", "Degraded",
// "Indeterminate").
func (v RecoveryVerdict) String() string {
	switch v {
	case Recovered:
		return "Recovered"
	case Degraded:
		return "Degraded"
	case Indeterminate:
		return "Indeterminate"
	default:
		return "Unknown"
	}
}

// Recovery is the report of one run's fault response.
type Recovery struct {
	// Onset and Clear delimit the schedule's overall fault activity:
	// first step any fault is active, first step from which none is.
	Onset int64 `json:"onset"`
	Clear int64 `json:"clear"`
	// PeakPotential and PeakBacklog are the worst P_t and total queued
	// observed while any fault was active.
	PeakPotential int64 `json:"peak_potential"`
	PeakBacklog   int64 `json:"peak_backlog"`
	// DrainStep is the first step ≥ Clear whose backlog returned to the
	// pre-fault level plus Slack (-1 if it never did); TimeToDrain is
	// DrainStep − Clear + 1, or 0 when the backlog never drained.
	DrainStep   int64 `json:"drain_step"`
	TimeToDrain int64 `json:"time_to_drain"`
	// Verdict is the post-fault re-convergence call; PostDiagnosis is the
	// sim stability diagnosis of the post-clear trajectory it rests on.
	Verdict       RecoveryVerdict `json:"verdict"`
	PostDiagnosis sim.Diagnosis   `json:"post_diagnosis"`
}

// RecoveryObserver watches a run executing a fault schedule and judges
// recovery once the last fault clears: it records the pre-fault backlog
// baseline, tracks peak P_t / backlog while any fault is active, and
// after the clear point looks for the backlog to drain back to baseline.
// Register on the engine (AddObserver) or via sim Options.Observers; call
// Report after the run. Not safe for concurrent use; one observer per
// engine.
type RecoveryObserver struct {
	// Slack is the drain tolerance in packets over the pre-fault
	// baseline backlog (default 10 when zero).
	Slack int64

	sched   Schedule
	onset   int64
	clear   int64
	prePeak int64 // max backlog seen before onset: the baseline
	peakP   int64
	peakN   int64
	drainAt int64
	lastT   int64
	started bool
	post    []float64 // post-clear backlog trajectory for sim.Detect
}

// NewRecoveryObserver builds the observer for a schedule. The schedule's
// Onset/ClearTime define the fault window; an empty schedule yields
// RecoveryUnknown forever.
func NewRecoveryObserver(s Schedule) *RecoveryObserver {
	return &RecoveryObserver{
		sched:   s,
		onset:   s.Onset(),
		clear:   s.ClearTime(),
		drainAt: -1,
	}
}

// OnStep implements core.StepObserver.
func (r *RecoveryObserver) OnStep(t int64, sn *core.Snapshot, st *core.StepStats) {
	r.lastT = t
	r.started = true
	if r.sched.Empty() {
		return
	}
	if t < r.onset && st.Queued > r.prePeak {
		r.prePeak = st.Queued
	}
	if r.sched.Active(t) {
		if st.Potential > r.peakP {
			r.peakP = st.Potential
		}
		if st.Queued > r.peakN {
			r.peakN = st.Queued
		}
	}
	if t >= r.clear {
		r.post = append(r.post, float64(st.Queued))
		if r.drainAt < 0 && st.Queued <= r.prePeak+r.slack() {
			r.drainAt = t
		}
	}
}

func (r *RecoveryObserver) slack() int64 {
	if r.Slack > 0 {
		return r.Slack
	}
	return 10
}

// minPostWindow is the fewest post-clear steps Report needs before it is
// willing to call Recovered or Degraded. A fault window that ends at (or
// runs past) the horizon leaves essentially no post-fault trajectory: a
// single transiently low sample would otherwise count as a full drain.
const minPostWindow = 8

// Report judges the run seen so far. Call it after the run completes; it
// may be called repeatedly (e.g. from a streaming exporter) and always
// reflects the steps observed up to that point.
//
// A schedule whose fault window extends past the observed horizon — or
// clears with fewer than minPostWindow steps left — yields an explicit
// Indeterminate verdict: the drain was never observed, so neither
// Recovered nor Degraded would be honest.
func (r *RecoveryObserver) Report() Recovery {
	rec := Recovery{
		Onset:         r.onset,
		Clear:         r.clear,
		PeakPotential: r.peakP,
		PeakBacklog:   r.peakN,
		DrainStep:     r.drainAt,
	}
	if r.drainAt >= 0 {
		rec.TimeToDrain = r.drainAt - r.clear + 1
	}
	if r.sched.Empty() || !r.started {
		return rec // nothing scheduled or nothing observed: Unknown
	}
	if r.lastT < r.clear || len(r.post) < minPostWindow {
		rec.Verdict = Indeterminate // drain never (meaningfully) observed
		return rec
	}
	rec.PostDiagnosis = sim.Detect(r.post)
	if r.drainAt >= 0 && rec.PostDiagnosis.Verdict != sim.Diverging {
		rec.Verdict = Recovered
	} else {
		rec.Verdict = Degraded
	}
	return rec
}

// RecoveryReport exposes the verdict in plain types — the structural
// method the sweep runner discovers via interface assertion, so sweep
// does not import faults.
func (r *RecoveryObserver) RecoveryReport() (verdict string, timeToDrain, peakPotential, peakBacklog int64) {
	rec := r.Report()
	return rec.Verdict.String(), rec.TimeToDrain, rec.PeakPotential, rec.PeakBacklog
}

// Fault-recovery metric names registered by Record.
const (
	MetricFaultOnset     = "lgg_fault_onset_step"
	MetricFaultClear     = "lgg_fault_clear_step"
	MetricFaultPeakP     = "lgg_fault_peak_potential"
	MetricFaultPeakQ     = "lgg_fault_peak_backlog"
	MetricFaultDrainTime = "lgg_fault_time_to_drain_steps"
	MetricFaultRecovered = "lgg_fault_recovered"
)

// Record publishes the current recovery report as gauges on reg:
// lgg_fault_onset_step, lgg_fault_clear_step, lgg_fault_peak_potential,
// lgg_fault_peak_backlog, lgg_fault_time_to_drain_steps and
// lgg_fault_recovered (1 Recovered, 0 Degraded, -1 Unknown,
// -2 Indeterminate).
func (r *RecoveryObserver) Record(reg *metrics.Registry) {
	rec := r.Report()
	reg.Gauge(MetricFaultOnset, "First step any scheduled fault is active.").Set(rec.Onset)
	reg.Gauge(MetricFaultClear, "First step from which no fault is active.").Set(rec.Clear)
	reg.Gauge(MetricFaultPeakP, "Peak potential P_t while a fault was active.").Set(rec.PeakPotential)
	reg.Gauge(MetricFaultPeakQ, "Peak total backlog while a fault was active.").Set(rec.PeakBacklog)
	reg.Gauge(MetricFaultDrainTime, "Steps from fault clear to backlog back at baseline (0 = never).").Set(rec.TimeToDrain)
	var verdict int64
	switch rec.Verdict {
	case Recovered:
		verdict = 1
	case Degraded:
		verdict = 0
	case Indeterminate:
		verdict = -2
	default:
		verdict = -1
	}
	reg.Gauge(MetricFaultRecovered, "Recovery verdict: 1 recovered, 0 degraded, -1 unknown, -2 indeterminate.").Set(verdict)
}
