package faults

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestFormatTextGolden(t *testing.T) {
	s := Schedule{Events: []Event{
		{Kind: Crash, From: 250, To: 300, Nodes: []graph.NodeID{7}, Drop: true},
		{Kind: Burst, From: 0, To: 500, PGood: 0.01, PBad: 0.6, GtoB: 0.05, BtoG: 0.2},
		{Kind: LinkDown, From: 100, To: 200, Edges: []graph.EdgeID{3, 4}},
		{Kind: Lie, From: 50, To: 150, Mode: ModeZero, Nodes: []graph.NodeID{0, 2}},
		{Kind: Ramp, From: 0, To: 400, P0: 0, P1: 0.5},
	}}
	want := "ramp@0-400:p0=0,p1=0.5" +
		";burst@0-500:pg=0.01,pb=0.6,gb=0.05,bg=0.2" +
		";lie@50-150:mode=zero,v=0+2" +
		";down@100-200:e=3+4" +
		";crash@250-300:v=7,drop"
	if got := FormatText(s); got != want {
		t.Fatalf("FormatText:\n got %q\nwant %q", got, want)
	}
	back, err := ParseText(want)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatText(back); got != want {
		t.Fatalf("parse→format not stable:\n got %q\nwant %q", got, want)
	}
}

func TestParseTextErrors(t *testing.T) {
	bad := []string{
		"down",                    // no window
		"down@5",                  // no to
		"down@5-2",                // empty window (Validate)
		"down@a-b",                // non-numeric
		"warp@0-5",                // unknown kind
		"down@0-5:x=1",            // unknown param
		"burst@0-5:pg=nope",       // bad float
		"crash@0-5:v=1,mode",      // bare param that is not drop
		"down@0-5:e=1+z",          // bad edge id
		"crash@0-5",               // crash without nodes (Validate)
		"lie@0-5:mode=convincing", // unknown mode (Validate)
	}
	for _, in := range bad {
		if _, err := ParseText(in); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", in)
		}
	}
}

func TestParseWildcardAndSpacing(t *testing.T) {
	s, err := ParseText(" ramp@0-40:p0=0.1,p1=0.9,e=* ; ; down@5-9 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(s.Events))
	}
	if s.Events[0].Edges != nil || s.Events[1].Edges != nil {
		t.Fatal("wildcard / omitted edge lists must parse to nil (all edges)")
	}
}

func TestParseJSONForms(t *testing.T) {
	obj := `{"events":[{"kind":"down","from":3,"to":9,"edges":[1]}]}`
	arr := `[{"kind":"down","from":3,"to":9,"edges":[1]}]`
	want := Schedule{Events: []Event{{Kind: LinkDown, From: 3, To: 9, Edges: []graph.EdgeID{1}}}}
	for _, in := range []string{obj, arr} {
		got, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Parse(%q) = %+v, want %+v", in, got, want)
		}
	}
	if _, err := Parse(`{"events":[{"kind":"crash","from":0,"to":5}]}`); err == nil {
		t.Fatal("JSON parse skipped validation")
	}
}

func TestJSONNormalizesForeignFields(t *testing.T) {
	// A down event carrying burst parameters must shed them, so JSON and
	// text inputs describing the same faults compare equal.
	s, err := Parse(`[{"kind":"down","from":0,"to":5,"p_bad":0.9}]`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Events[0].PBad != 0 {
		t.Fatal("normalization kept a field LinkDown does not use")
	}
}

func TestFormatJSONRoundTrip(t *testing.T) {
	s := Schedule{Events: []Event{
		{Kind: Burst, From: 5, To: 50, PGood: 0.125, PBad: 0.75, GtoB: 0.0625, BtoG: 0.5, Edges: []graph.EdgeID{2}},
	}}
	back, err := Parse(FormatJSON(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("JSON round-trip: got %+v, want %+v", back, s)
	}
}

func TestLoadFileIndirection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.txt")
	if err := os.WriteFile(path, []byte("down@2-8:e=0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 1 || s.Events[0].Kind != LinkDown {
		t.Fatalf("loaded %+v", s.Events)
	}
	if _, err := Load("@" + path + ".missing"); err == nil {
		t.Fatal("Load of a missing file must error")
	}
	inline, err := Load("down@2-8:e=0")
	if err != nil || !reflect.DeepEqual(inline, s) {
		t.Fatalf("inline Load mismatch: %+v vs %+v (err %v)", inline, s, err)
	}
}

// FuzzScheduleRoundTrip feeds arbitrary strings through the decoder and
// requires that anything it accepts survives format→parse→format without
// change: the canonical text form is a fixed point, and the reparsed
// schedule is structurally identical.
func FuzzScheduleRoundTrip(f *testing.F) {
	f.Add("down@100-200:e=3+4")
	f.Add("burst@0-500:pg=0.01,pb=0.6,gb=0.05,bg=0.2;crash@250-300:v=7,drop")
	f.Add("ramp@0-400:p0=0,p1=0.5,e=*;lie@50-150:mode=random,v=0+2")
	f.Add(`{"events":[{"kind":"down","from":3,"to":9,"edges":[1]}]}`)
	f.Add(`[{"kind":"lie","from":0,"to":5,"mode":"max"}]`)
	f.Add("partition@7-11:e=0+1+2")
	f.Fuzz(func(t *testing.T, input string) {
		s1, err := Parse(input)
		if err != nil {
			return // rejected inputs are fine; we fuzz the accepted set
		}
		text := FormatText(s1)
		s2, err := ParseText(text)
		if err != nil {
			t.Fatalf("formatted schedule does not reparse: %q: %v", text, err)
		}
		if got := FormatText(s2); got != text {
			t.Fatalf("format not a fixed point:\n first %q\nsecond %q", text, got)
		}
		if !reflect.DeepEqual(Schedule{Events: s1.sortedCopy()}, Schedule{Events: s2.sortedCopy()}) {
			t.Fatalf("round-trip changed the schedule:\n in  %+v\n out %+v", s1, s2)
		}
		s3, err := Parse(FormatJSON(s1))
		if err != nil {
			t.Fatalf("JSON form does not reparse: %v", err)
		}
		if !reflect.DeepEqual(Schedule{Events: s1.sortedCopy()}, Schedule{Events: s3.sortedCopy()}) {
			t.Fatal("JSON round-trip changed the schedule")
		}
	})
}
