package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// The codec gives schedules a compact single-line text form for CLI flags
// and a JSON form for experiment files. Text grammar, events joined by
// ';':
//
//	kind@from-to[:param,param,...]
//
// with per-kind params:
//
//	down@100-200:e=3+4          edges 3 and 4 down for [100,200)
//	partition@100-200:e=0+5     same, reads as a cut split
//	burst@0-500:pg=0.01,pb=0.6,gb=0.05,bg=0.2[,e=1+2]
//	ramp@0-400:p0=0,p1=0.5[,e=*]
//	crash@250-300:v=7,drop      node 7 down, queue destroyed at onset
//	lie@50-150:mode=zero[,v=0+2]
//
// 'e=*' / 'v=*' (or omitting the list) target every edge / node. JSON is
// either {"events":[...]} or a bare event array; Parse auto-detects the
// form, Load additionally resolves '@path' to the file's contents.

// FormatText renders s in the canonical text form: events sorted by
// (From, To, Kind), floats in shortest-exact notation, only the fields
// the event's kind uses. ParseText(FormatText(s)) reproduces s up to
// event order and normalization.
func FormatText(s Schedule) string {
	var b strings.Builder
	for i, ev := range s.sortedCopy() {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s@%d-%d", ev.Kind, ev.From, ev.To)
		var ps []string
		addF := func(k string, v float64) { ps = append(ps, k+"="+strconv.FormatFloat(v, 'g', -1, 64)) }
		switch ev.Kind {
		case LinkDown, Partition:
			if ev.Edges != nil {
				ps = append(ps, "e="+joinEdges(ev.Edges))
			}
		case Burst:
			addF("pg", ev.PGood)
			addF("pb", ev.PBad)
			addF("gb", ev.GtoB)
			addF("bg", ev.BtoG)
			if ev.Edges != nil {
				ps = append(ps, "e="+joinEdges(ev.Edges))
			}
		case Ramp:
			addF("p0", ev.P0)
			addF("p1", ev.P1)
			if ev.Edges != nil {
				ps = append(ps, "e="+joinEdges(ev.Edges))
			}
		case Crash:
			ps = append(ps, "v="+joinNodes(ev.Nodes))
			if ev.Drop {
				ps = append(ps, "drop")
			}
		case Lie:
			ps = append(ps, "mode="+ev.Mode)
			if ev.Nodes != nil {
				ps = append(ps, "v="+joinNodes(ev.Nodes))
			}
		}
		if len(ps) > 0 {
			b.WriteByte(':')
			b.WriteString(strings.Join(ps, ","))
		}
	}
	return b.String()
}

// FormatJSON renders s as indented JSON ({"events":[...]}).
func FormatJSON(s Schedule) string {
	s.Events = s.sortedCopy()
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // Schedule holds only marshalable fields
		panic(err)
	}
	return string(out)
}

// Parse decodes a schedule from either form: inputs starting with '{' or
// '[' are JSON, everything else is the text grammar. The result is
// validated and normalized (fields a kind does not use are zeroed, so
// parse→format→parse is the identity).
func Parse(input string) (Schedule, error) {
	input = strings.TrimSpace(input)
	if input == "" {
		return Schedule{}, nil
	}
	if input[0] == '{' || input[0] == '[' {
		return parseJSON(input)
	}
	return ParseText(input)
}

// Load is Parse plus '@path' indirection: an argument of the form
// "@schedule.json" reads the schedule from that file.
func Load(arg string) (Schedule, error) {
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(strings.TrimPrefix(arg, "@"))
		if err != nil {
			return Schedule{}, fmt.Errorf("faults: %w", err)
		}
		return Parse(string(data))
	}
	return Parse(arg)
}

func parseJSON(input string) (Schedule, error) {
	var s Schedule
	if input[0] == '[' {
		if err := json.Unmarshal([]byte(input), &s.Events); err != nil {
			return Schedule{}, fmt.Errorf("faults: bad JSON schedule: %w", err)
		}
	} else if err := json.Unmarshal([]byte(input), &s); err != nil {
		return Schedule{}, fmt.Errorf("faults: bad JSON schedule: %w", err)
	}
	return finish(s)
}

// ParseText decodes the text grammar.
func ParseText(input string) (Schedule, error) {
	var s Schedule
	for _, seg := range strings.Split(input, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		ev, err := parseEvent(seg)
		if err != nil {
			return Schedule{}, err
		}
		s.Events = append(s.Events, ev)
	}
	return finish(s)
}

func finish(s Schedule) (Schedule, error) {
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	for i := range s.Events {
		s.Events[i] = normalizeEvent(s.Events[i])
	}
	return s, nil
}

func parseEvent(seg string) (Event, error) {
	head, params, hasParams := strings.Cut(seg, ":")
	kind, win, ok := strings.Cut(head, "@")
	if !ok {
		return Event{}, fmt.Errorf("faults: event %q: want kind@from-to", seg)
	}
	fromS, toS, ok := strings.Cut(win, "-")
	if !ok {
		return Event{}, fmt.Errorf("faults: event %q: want kind@from-to", seg)
	}
	from, err1 := strconv.ParseInt(fromS, 10, 64)
	to, err2 := strconv.ParseInt(toS, 10, 64)
	if err1 != nil || err2 != nil || from < 0 || to < 0 {
		return Event{}, fmt.Errorf("faults: event %q: bad window %q", seg, win)
	}
	ev := Event{Kind: Kind(strings.TrimSpace(kind)), From: from, To: to}
	if !hasParams {
		return ev, nil
	}
	for _, p := range strings.Split(params, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if p == "drop" {
			ev.Drop = true
			continue
		}
		key, val, ok := strings.Cut(p, "=")
		if !ok {
			return Event{}, fmt.Errorf("faults: event %q: bad param %q", seg, p)
		}
		switch key {
		case "e":
			es, err := parseEdgeList(val)
			if err != nil {
				return Event{}, fmt.Errorf("faults: event %q: %w", seg, err)
			}
			ev.Edges = es
		case "v":
			vs, err := parseNodeList(val)
			if err != nil {
				return Event{}, fmt.Errorf("faults: event %q: %w", seg, err)
			}
			ev.Nodes = vs
		case "mode":
			ev.Mode = val
		case "pg", "pb", "gb", "bg", "p0", "p1":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Event{}, fmt.Errorf("faults: event %q: bad %s=%q", seg, key, val)
			}
			switch key {
			case "pg":
				ev.PGood = f
			case "pb":
				ev.PBad = f
			case "gb":
				ev.GtoB = f
			case "bg":
				ev.BtoG = f
			case "p0":
				ev.P0 = f
			case "p1":
				ev.P1 = f
			}
		default:
			return Event{}, fmt.Errorf("faults: event %q: unknown param %q", seg, key)
		}
	}
	return ev, nil
}

func parseEdgeList(val string) ([]graph.EdgeID, error) {
	if val == "*" {
		return nil, nil
	}
	var out []graph.EdgeID
	for _, x := range strings.Split(val, "+") {
		id, err := strconv.ParseInt(x, 10, 32)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad edge id %q", x)
		}
		out = append(out, graph.EdgeID(id))
	}
	return out, nil
}

func parseNodeList(val string) ([]graph.NodeID, error) {
	if val == "*" {
		return nil, nil
	}
	var out []graph.NodeID
	for _, x := range strings.Split(val, "+") {
		id, err := strconv.ParseInt(x, 10, 32)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad node id %q", x)
		}
		out = append(out, graph.NodeID(id))
	}
	return out, nil
}

// normalizeEvent zeroes every field the event's kind does not use, so
// schedules arriving via permissive JSON format identically to their
// text-parsed equivalents.
func normalizeEvent(ev Event) Event {
	n := Event{Kind: ev.Kind, From: ev.From, To: ev.To}
	switch ev.Kind {
	case LinkDown, Partition:
		n.Edges = ev.Edges
	case Burst:
		n.Edges = ev.Edges
		n.PGood, n.PBad, n.GtoB, n.BtoG = ev.PGood, ev.PBad, ev.GtoB, ev.BtoG
	case Ramp:
		n.Edges = ev.Edges
		n.P0, n.P1 = ev.P0, ev.P1
	case Crash:
		n.Nodes = ev.Nodes
		n.Drop = ev.Drop
	case Lie:
		n.Nodes = ev.Nodes
		n.Mode = ev.Mode
	}
	if len(n.Edges) == 0 {
		n.Edges = nil
	}
	if len(n.Nodes) == 0 {
		n.Nodes = nil
	}
	return n
}

func joinEdges(es []graph.EdgeID) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = strconv.FormatInt(int64(e), 10)
	}
	return strings.Join(parts, "+")
}

func joinNodes(vs []graph.NodeID) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatInt(int64(v), 10)
	}
	return strings.Join(parts, "+")
}
