// Package faults is the deterministic fault-injection subsystem: a
// Schedule of typed fault events — link down/up windows, Gilbert–Elliott
// bursty loss, loss-rate ramps, node crashes (with queue drop or
// retention), declared-queue lying windows and partition/heal of an edge
// cut — compiled into composable core.TopologyProcess / core.LossModel /
// core.DeclarePolicy implementations.
//
// The paper's central claim is robustness: LGG stays stable despite lossy
// links (Lemma 1) and nodes that lie about their queues (Section IV,
// R-generalized networks). A Schedule scripts exactly those adversities —
// and, unlike the theorems, gives them an *end*, so the recovery layer
// (RecoveryObserver) can measure how the network behaves once a fault
// clears: peak state under fault, time to drain the accumulated backlog,
// and a Recovered/Degraded verdict.
//
// Determinism is inherited from internal/rng: Compile consumes a Source,
// every stochastic component (burst chains, ramps, random lies) derives
// its own sub-stream from it, and no global state is touched — so a sweep
// over a fault schedule replays byte-identically at any worker count.
// Schedules have a text and a JSON form (see codec.go) so they can live
// in experiment files and CLI flags.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Kind names a fault type. The string values are the codec's wire format.
type Kind string

const (
	// LinkDown takes the listed edges (nil = all) down for the window —
	// the adversarial topology of Conjecture 4.
	LinkDown Kind = "down"
	// Burst runs a Gilbert–Elliott two-state loss chain on the listed
	// edges (nil = all) during the window: per step each edge flips
	// between a Good state (loss probability PGood) and a Bad state
	// (PBad) with transition probabilities GtoB / BtoG. The bursty-loss
	// regime Lemma 1 must survive.
	Burst Kind = "burst"
	// Ramp raises the loss probability linearly from P0 at From to P1
	// approaching To on the listed edges (nil = all).
	Ramp Kind = "ramp"
	// Crash kills the listed nodes for the window: every incident edge is
	// dead, and with Drop the queue content is destroyed at crash onset
	// (otherwise the node retains its packets and resumes with them).
	Crash Kind = "crash"
	// Lie makes the listed nodes (nil = all) use the given declaration
	// Mode while the window is active — the Section IV lying regime,
	// scoped in time.
	Lie Kind = "lie"
	// Partition takes an edge cut down for the window and heals it after
	// — semantically LinkDown, kept distinct so schedules read like the
	// min-cut split of Theorem 2.
	Partition Kind = "partition"
)

// Declaration modes for Lie events.
const (
	ModeZero   = "zero"   // declare 0 (the most attractive lie)
	ModeMax    = "max"    // declare R (the most repellent lie)
	ModeRandom = "random" // declare uniform in [0, R]
)

// Event is one typed fault with a half-open activity window [From, To).
// Fields beyond the window apply only to the kinds that document them;
// the codec round-trips exactly the fields each kind uses.
type Event struct {
	Kind Kind  `json:"kind"`
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// Edges targets LinkDown/Partition/Burst/Ramp; nil means every edge.
	Edges []graph.EdgeID `json:"edges,omitempty"`
	// Nodes targets Crash/Lie; nil means every node (Lie only).
	Nodes []graph.NodeID `json:"nodes,omitempty"`
	// Gilbert–Elliott parameters (Burst).
	PGood float64 `json:"p_good,omitempty"`
	PBad  float64 `json:"p_bad,omitempty"`
	GtoB  float64 `json:"g_to_b,omitempty"`
	BtoG  float64 `json:"b_to_g,omitempty"`
	// Ramp endpoints.
	P0 float64 `json:"p0,omitempty"`
	P1 float64 `json:"p1,omitempty"`
	// Drop discards the queue at crash onset (Crash only).
	Drop bool `json:"drop,omitempty"`
	// Mode is the declaration policy during a Lie window.
	Mode string `json:"mode,omitempty"`
}

// Active reports whether the event's window contains t.
func (ev Event) Active(t int64) bool { return t >= ev.From && t < ev.To }

// Schedule is an ordered list of fault events. The zero value is the
// empty schedule (no faults).
type Schedule struct {
	Events []Event `json:"events"`
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// Active reports whether any fault is active at step t.
func (s Schedule) Active(t int64) bool {
	for _, ev := range s.Events {
		if ev.Active(t) {
			return true
		}
	}
	return false
}

// Onset returns the first step at which any fault is active (0 for an
// empty schedule).
func (s Schedule) Onset() int64 {
	var on int64
	for i, ev := range s.Events {
		if i == 0 || ev.From < on {
			on = ev.From
		}
	}
	return on
}

// ClearTime returns the first step from which no fault is ever active
// again (0 for an empty schedule): max over events of To.
func (s Schedule) ClearTime() int64 {
	var clear int64
	for _, ev := range s.Events {
		if ev.To > clear {
			clear = ev.To
		}
	}
	return clear
}

// prob01 reports p ∈ [0, 1].
func prob01(p float64) bool { return p >= 0 && p <= 1 }

// Validate checks spec-independent consistency: sane windows, known
// kinds and modes, probabilities in [0,1], non-negative ids. Edge/node
// ids are bounds-checked against a concrete network by Compile.
func (s Schedule) Validate() error {
	for i, ev := range s.Events {
		if ev.From < 0 || ev.To <= ev.From {
			return fmt.Errorf("faults: event %d (%s): window [%d,%d) is empty or negative", i, ev.Kind, ev.From, ev.To)
		}
		for _, e := range ev.Edges {
			if e < 0 {
				return fmt.Errorf("faults: event %d (%s): negative edge id %d", i, ev.Kind, e)
			}
		}
		for _, v := range ev.Nodes {
			if v < 0 {
				return fmt.Errorf("faults: event %d (%s): negative node id %d", i, ev.Kind, v)
			}
		}
		switch ev.Kind {
		case LinkDown, Partition:
			// Edges nil = all is legal (a full blackout window).
		case Burst:
			if !prob01(ev.PGood) || !prob01(ev.PBad) || !prob01(ev.GtoB) || !prob01(ev.BtoG) {
				return fmt.Errorf("faults: event %d (burst): probabilities must be in [0,1]", i)
			}
		case Ramp:
			if !prob01(ev.P0) || !prob01(ev.P1) {
				return fmt.Errorf("faults: event %d (ramp): endpoints must be in [0,1]", i)
			}
		case Crash:
			if len(ev.Nodes) == 0 {
				return fmt.Errorf("faults: event %d (crash): needs explicit nodes", i)
			}
		case Lie:
			switch ev.Mode {
			case ModeZero, ModeMax, ModeRandom:
			default:
				return fmt.Errorf("faults: event %d (lie): unknown mode %q", i, ev.Mode)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// sortedCopy returns the events ordered by (From, To, Kind) — the
// canonical order used by the codec so formatting is stable.
func (s Schedule) sortedCopy() []Event {
	evs := append([]Event(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].From != evs[j].From {
			return evs[i].From < evs[j].From
		}
		if evs[i].To != evs[j].To {
			return evs[i].To < evs[j].To
		}
		return evs[i].Kind < evs[j].Kind
	})
	return evs
}
