package faults

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// streamGen is the label namespace for the churn generator's per-edge
// streams.
const streamGen = 0x6E347001

// GenConfig parameterizes the stochastic link-churn generator: each
// listed edge alternates up and down phases with geometrically
// distributed durations of mean MTBF (up) and MTTR (down) steps — the
// discrete-time analogue of an exponential failure/repair process.
type GenConfig struct {
	// MTBF is the mean number of steps an edge stays up between failures
	// (must be ≥ 1).
	MTBF float64
	// MTTR is the mean number of steps a failed edge stays down
	// (must be ≥ 1).
	MTTR float64
	// Horizon bounds the generated windows: no event extends past it.
	Horizon int64
	// Edges lists the churned edges; nil means every edge of the graph.
	Edges []graph.EdgeID
}

// geometric samples a duration ≥ 1 with mean m (inverse-transform of the
// geometric distribution with success probability 1/m).
func geometric(src *rng.Source, m float64) int64 {
	if m <= 1 {
		return 1
	}
	d := int64(1)
	p := 1 / m
	for src.Float64() >= p {
		d++
	}
	return d
}

// Generate produces a LinkDown schedule by simulating each edge's
// up/down alternation independently on its own Split stream, so the
// schedule for edge e depends only on (seed, e) — adding edges to the
// config never changes the windows of the others.
func Generate(cfg GenConfig, g *graph.Multigraph, src *rng.Source) (Schedule, error) {
	if cfg.MTBF < 1 || cfg.MTTR < 1 {
		return Schedule{}, fmt.Errorf("faults: MTBF and MTTR must be ≥ 1 step (got %g, %g)", cfg.MTBF, cfg.MTTR)
	}
	if cfg.Horizon <= 0 {
		return Schedule{}, fmt.Errorf("faults: generator horizon must be positive (got %d)", cfg.Horizon)
	}
	edges := cfg.Edges
	if edges == nil {
		for e := 0; e < g.NumEdges(); e++ {
			edges = append(edges, graph.EdgeID(e))
		}
	}
	var s Schedule
	for _, e := range edges {
		if int(e) >= g.NumEdges() || e < 0 {
			return Schedule{}, fmt.Errorf("faults: generator edge %d out of range (graph has %d edges)", e, g.NumEdges())
		}
		es := src.Split(streamGen).Split(uint64(e))
		t := geometric(es, cfg.MTBF) // first up phase
		for t < cfg.Horizon {
			down := geometric(es, cfg.MTTR)
			to := t + down
			if to > cfg.Horizon {
				to = cfg.Horizon
			}
			s.Events = append(s.Events, Event{
				Kind:  LinkDown,
				From:  t,
				To:    to,
				Edges: []graph.EdgeID{e},
			})
			t = to + geometric(es, cfg.MTBF)
		}
	}
	s.Events = Schedule{Events: s.Events}.sortedCopy()
	return s, nil
}
