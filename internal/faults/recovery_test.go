package faults

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
)

// feed drives the observer with a synthetic backlog trajectory: step t
// has total backlog q[t] (potential mirrors it so peaks are checkable).
func feed(r *RecoveryObserver, q []int64) {
	for t, n := range q {
		st := core.StepStats{T: int64(t), Queued: n, Potential: n * n}
		r.OnStep(int64(t), nil, &st)
	}
}

func rampSeries(from, to int64, start, step int64) []int64 {
	var out []int64
	v := start
	for t := from; t < to; t++ {
		out = append(out, v)
		v += step
	}
	return out
}

func TestRecoveryRecovered(t *testing.T) {
	sched := Schedule{Events: []Event{{Kind: LinkDown, From: 10, To: 30}}}
	r := NewRecoveryObserver(sched)
	var traj []int64
	traj = append(traj, rampSeries(0, 10, 5, 0)...)    // baseline 5
	traj = append(traj, rampSeries(10, 30, 10, 10)...) // fault: grows to 200
	for i := 0; i < 100; i++ {                         // post: drains back
		q := int64(200 - i*5)
		if q < 5 {
			q = 5
		}
		traj = append(traj, q)
	}
	feed(r, traj)
	rec := r.Report()
	if rec.Verdict != Recovered {
		t.Fatalf("verdict = %v (%+v), want Recovered", rec.Verdict, rec)
	}
	if rec.Onset != 10 || rec.Clear != 30 {
		t.Fatalf("window = [%d,%d), want [10,30)", rec.Onset, rec.Clear)
	}
	if rec.PeakBacklog != 200 {
		t.Fatalf("peak backlog = %d, want 200", rec.PeakBacklog)
	}
	if rec.PeakPotential != 200*200 {
		t.Fatalf("peak potential = %d, want %d", rec.PeakPotential, 200*200)
	}
	// Backlog hits baseline+slack (≤15) at 200−5i ≤ 15 → i = 37 → t = 67.
	if rec.DrainStep != 67 {
		t.Fatalf("drain step = %d, want 67", rec.DrainStep)
	}
	if rec.TimeToDrain != 67-30+1 {
		t.Fatalf("time to drain = %d, want %d", rec.TimeToDrain, 67-30+1)
	}
}

func TestRecoveryDegraded(t *testing.T) {
	sched := Schedule{Events: []Event{{Kind: LinkDown, From: 10, To: 30}}}
	r := NewRecoveryObserver(sched)
	var traj []int64
	traj = append(traj, rampSeries(0, 10, 5, 0)...)
	traj = append(traj, rampSeries(10, 30, 10, 10)...)
	traj = append(traj, rampSeries(30, 130, 210, 10)...) // keeps growing
	feed(r, traj)
	rec := r.Report()
	if rec.Verdict != Degraded {
		t.Fatalf("verdict = %v (%+v), want Degraded", rec.Verdict, rec)
	}
	if rec.DrainStep != -1 || rec.TimeToDrain != 0 {
		t.Fatalf("drain = (%d, %d), want never (-1, 0)", rec.DrainStep, rec.TimeToDrain)
	}
	if rec.PostDiagnosis.Verdict != sim.Diverging {
		t.Fatalf("post diagnosis = %v, want Diverging", rec.PostDiagnosis.Verdict)
	}
}

// TestRecoveryIndeterminateWhenFaultNeverClears: a fault window extending
// past the horizon means the drain was never observed — the verdict must
// be the explicit Indeterminate, never a guess (and never the misleading
// Recovered the pre-fix code could produce when the window cleared with a
// single transiently low sample left).
func TestRecoveryIndeterminateWhenFaultNeverClears(t *testing.T) {
	sched := Schedule{Events: []Event{{Kind: LinkDown, From: 10, To: 1000}}}
	r := NewRecoveryObserver(sched)
	feed(r, rampSeries(0, 50, 5, 1)) // run ends mid-fault
	if rec := r.Report(); rec.Verdict != Indeterminate {
		t.Fatalf("verdict = %v, want Indeterminate", rec.Verdict)
	}
	if got := r.Report().Verdict.String(); got != "Indeterminate" {
		t.Fatalf("verdict string = %q, want Indeterminate", got)
	}
}

// TestRecoveryIndeterminateAtHorizonEdge is the regression for the
// misleading-Recovered bug: the window clears one step before the run
// ends, the single post-clear sample happens to sit at the baseline, and
// the old code called that a full recovery.
func TestRecoveryIndeterminateAtHorizonEdge(t *testing.T) {
	sched := Schedule{Events: []Event{{Kind: LinkDown, From: 10, To: 49}}}
	r := NewRecoveryObserver(sched)
	var traj []int64
	traj = append(traj, rampSeries(0, 10, 5, 0)...)    // baseline 5
	traj = append(traj, rampSeries(10, 49, 10, 10)...) // fault: grows
	traj = append(traj, 5)                             // one low sample at t=49
	feed(r, traj)
	rec := r.Report()
	if rec.Verdict != Indeterminate {
		t.Fatalf("verdict = %v (%+v), want Indeterminate (1 post sample is not a drain)", rec.Verdict, rec)
	}
}

func TestRecoveryUnknownOnEmptyOrUnobserved(t *testing.T) {
	empty := NewRecoveryObserver(Schedule{})
	feed(empty, rampSeries(0, 50, 5, 0))
	if rec := empty.Report(); rec.Verdict != RecoveryUnknown {
		t.Fatalf("empty schedule verdict = %v, want Unknown", rec.Verdict)
	}
	unfed := NewRecoveryObserver(Schedule{Events: []Event{{Kind: LinkDown, From: 1, To: 2}}})
	if rec := unfed.Report(); rec.Verdict != RecoveryUnknown {
		t.Fatalf("no-steps verdict = %v, want Unknown", rec.Verdict)
	}
}

// TestRecoveryIndeterminateRecord: the -2 gauge encoding of Indeterminate.
func TestRecoveryIndeterminateRecord(t *testing.T) {
	sched := Schedule{Events: []Event{{Kind: LinkDown, From: 10, To: 1000}}}
	r := NewRecoveryObserver(sched)
	feed(r, rampSeries(0, 50, 5, 1))
	reg := metrics.NewRegistry()
	r.Record(reg)
	if got := reg.Gauge(MetricFaultRecovered, "").Value(); got != -2 {
		t.Fatalf("%s = %d, want -2 (indeterminate)", MetricFaultRecovered, got)
	}
}

// TestRecoveryEndToEnd runs a real engine through a link-down window and
// expects the structural report the sweep runner consumes.
func TestRecoveryEndToEnd(t *testing.T) {
	// A cycle gives the source two disjoint paths to the sink, so the
	// network has spare capacity to drain the fault-era pile-up (a bare
	// line has none: service rate = arrival rate, backlog never shrinks).
	g := graph.Cycle(4)
	s := core.NewSpec(g).SetSource(0, 1).SetSink(2, 2)
	e := core.NewEngine(s, core.NewLGG())
	sched := Schedule{Events: []Event{{Kind: LinkDown, From: 50, To: 80, Edges: []graph.EdgeID{0, 3}}}}
	if _, err := Inject(e, sched, rng.New(21)); err != nil {
		t.Fatal(err)
	}
	obs := NewRecoveryObserver(sched)
	e.AddObserver(obs)
	e.Run(400)
	verdict, ttd, peakP, peakN := obs.RecoveryReport()
	if verdict != "Recovered" {
		t.Fatalf("verdict = %q (report %+v), want Recovered", verdict, obs.Report())
	}
	if ttd <= 0 {
		t.Fatalf("time to drain = %d, want positive", ttd)
	}
	// The window stalls ~30 injected packets at the source.
	if peakN < 20 {
		t.Fatalf("peak backlog = %d, want the fault to visibly pile up", peakN)
	}
	if peakP < peakN {
		t.Fatalf("peak potential %d below peak backlog %d", peakP, peakN)
	}
}

func TestRecoveryRecord(t *testing.T) {
	sched := Schedule{Events: []Event{{Kind: LinkDown, From: 5, To: 10}}}
	r := NewRecoveryObserver(sched)
	var traj []int64
	traj = append(traj, rampSeries(0, 5, 2, 0)...)
	traj = append(traj, rampSeries(5, 10, 20, 0)...)
	traj = append(traj, rampSeries(10, 60, 2, 0)...)
	feed(r, traj)
	reg := metrics.NewRegistry()
	r.Record(reg)
	if got := reg.Gauge(MetricFaultPeakQ, "").Value(); got != 20 {
		t.Fatalf("%s = %d, want 20", MetricFaultPeakQ, got)
	}
	if got := reg.Gauge(MetricFaultRecovered, "").Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricFaultRecovered, got)
	}
	if got := reg.Gauge(MetricFaultDrainTime, "").Value(); got != 1 {
		t.Fatalf("%s = %d, want 1 (drained immediately at clear)", MetricFaultDrainTime, got)
	}
}
