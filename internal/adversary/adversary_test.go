package adversary

import (
	"testing"
	"testing/quick"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
)

func spec2src() *core.Spec {
	g := graph.ThetaGraph(4, 2)
	s := core.NewSpec(g).SetSource(0, 1).SetSink(1, 4)
	// a second source in the middle of path 1 (node 2)
	s.SetSource(2, 1)
	return s
}

func TestFrontLoadPattern(t *testing.T) {
	a := &WindowBudget{W: 5, Budget: 10, Mode: FrontLoad}
	spec := spec2src()
	sched := ScheduleOf(a, spec, 15)
	want := []int64{10, 0, 0, 0, 0, 10, 0, 0, 0, 0, 10, 0, 0, 0, 0}
	for i := range want {
		if sched[i] != want[i] {
			t.Fatalf("sched[%d] = %d, want %d (%v)", i, sched[i], want[i], sched)
		}
	}
}

func TestBackLoadPattern(t *testing.T) {
	a := &WindowBudget{W: 4, Budget: 6, Mode: BackLoad}
	sched := ScheduleOf(a, spec2src(), 8)
	want := []int64{0, 0, 0, 6, 0, 0, 0, 6}
	for i := range want {
		if sched[i] != want[i] {
			t.Fatalf("sched = %v", sched)
		}
	}
}

func TestRandomSplitConservesBudget(t *testing.T) {
	a := &WindowBudget{W: 7, Budget: 13, Mode: RandomSplit, R: rng.New(3)}
	sched := ScheduleOf(a, spec2src(), 70)
	for w := 0; w < 10; w++ {
		var sum int64
		for i := 0; i < 7; i++ {
			sum += sched[w*7+i]
		}
		if sum != 13 {
			t.Fatalf("window %d spent %d, want 13", w, sum)
		}
	}
}

func TestRoundRobinAcrossSources(t *testing.T) {
	a := &WindowBudget{W: 1, Budget: 3, Mode: FrontLoad}
	spec := spec2src()
	inj := make([]int64, spec.N())
	a.Injections(0, spec, inj)
	// two sources: 3 packets split 2/1
	if inj[0]+inj[2] != 3 || inj[0] != 2 || inj[2] != 1 {
		t.Fatalf("inj = %v", inj)
	}
}

func TestWindowBudgetPanics(t *testing.T) {
	spec := spec2src()
	inj := make([]int64, spec.N())
	for i, a := range []*WindowBudget{
		{W: 0, Budget: 1},
		{W: 2, Budget: -1},
		{W: 2, Budget: 1, Mode: RandomSplit}, // nil rng
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			a.Injections(0, spec, inj)
		}()
	}
}

func TestCompensated(t *testing.T) {
	// capacity 2/step
	peak, repaid := Compensated([]int64{5, 0, 0, 2, 2}, 2)
	if peak != 3 || !repaid {
		t.Fatalf("peak=%d repaid=%v, want 3/true", peak, repaid)
	}
	peak, repaid = Compensated([]int64{5, 5, 5}, 2)
	if repaid {
		t.Fatal("sustained overload reported repaid")
	}
	if peak != 9 {
		t.Fatalf("peak = %d, want 9", peak)
	}
	if p, r := Compensated(nil, 1); p != 0 || !r {
		t.Fatal("empty schedule")
	}
}

func TestCompensatedMatchesBursty(t *testing.T) {
	// A compensating bursty process passes the condition; a sustained
	// overload fails it.
	spec := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
	ok := &arrivals.Bursty{Period: 10, BurstLen: 2, BurstFactor: 3, QuietFactor: 0}
	sched := ScheduleOf(ok, spec, 100)
	if _, repaid := Compensated(sched, 3); !repaid {
		t.Fatal("compensating bursts failed the condition")
	}
	bad := &arrivals.Bursty{Period: 10, BurstLen: 10, BurstFactor: 2, QuietFactor: 0}
	sched = ScheduleOf(bad, spec, 100)
	if _, repaid := Compensated(sched, 3); repaid {
		t.Fatal("sustained overload passed the condition")
	}
}

func TestAdversaryStabilityUnderBudget(t *testing.T) {
	// Budget = W·f*·(3/4): within the conjectured stability region; all
	// three modes should keep LGG stable on the theta network.
	spec := core.NewSpec(graph.ThetaGraph(4, 2)).SetSource(0, 2).SetSink(1, 4)
	for _, mode := range []Mode{FrontLoad, BackLoad, RandomSplit} {
		rs := sim.RunSeeds(func(seed uint64) *core.Engine {
			e := core.NewEngine(spec, core.NewLGG())
			e.Arrivals = &WindowBudget{W: 8, Budget: 24, Mode: mode, R: rng.New(seed)}
			return e
		}, sim.Seeds(1, 3), sim.Options{Horizon: 1500})
		if !sim.AllVerdict(rs, sim.Stable) {
			t.Fatalf("mode %v destabilized a feasible-budget adversary", mode)
		}
	}
}

func TestModeString(t *testing.T) {
	if FrontLoad.String() != "front-load" || BackLoad.String() != "back-load" ||
		RandomSplit.String() != "random-split" {
		t.Fatal("mode strings")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode")
	}
	if (&WindowBudget{W: 2, Budget: 1}).Name() == "" {
		t.Fatal("name")
	}
}

// Property: any WindowBudget schedule satisfies its own window bound and,
// when Budget ≤ W·f*, passes the compensation condition.
func TestQuickWindowBudgetSound(t *testing.T) {
	f := func(seed uint64, wRaw, bRaw uint8, modeRaw uint8) bool {
		w := int64(wRaw%10) + 1
		fstar := int64(4)
		budget := int64(bRaw) % (w*fstar + 1) // ≤ W·f*
		mode := Mode(modeRaw % 3)
		a := &WindowBudget{W: w, Budget: budget, Mode: mode, R: rng.New(seed)}
		spec := core.NewSpec(graph.ThetaGraph(4, 2)).SetSource(0, 2).SetSink(1, 4)
		sched := ScheduleOf(a, spec, 20*w)
		// window sums exact
		for base := int64(0); base+w <= int64(len(sched)); base += w {
			var sum int64
			for i := int64(0); i < w; i++ {
				sum += sched[base+i]
			}
			if sum != budget {
				return false
			}
		}
		// A back-loaded final window leaves its excess outstanding at the
		// horizon; a drain tail of one window is always enough to repay it
		// when Budget ≤ W·f*.
		sched = append(sched, make([]int64, w)...)
		_, repaid := Compensated(sched, fstar)
		return repaid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
