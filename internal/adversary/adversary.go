// Package adversary implements arrival adversaries in the spirit of
// adversarial queueing theory (the paper's references [4] and [5]): an
// adversary injects packets under a window budget — at most budget
// packets in any window of W consecutive steps — but is otherwise free to
// concentrate its injections as maliciously as it likes.
//
// It also implements the compensation condition of Conjecture 2: whenever
// the injections of some interval exceed the interval's capacity dt·f*,
// a later instant must exist by which the cumulative excess has been
// repaid. Compensated decides that condition for a concrete schedule.
package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
)

// Mode selects how a window adversary spends its budget.
type Mode int

const (
	// FrontLoad dumps the whole window budget on the window's first step.
	FrontLoad Mode = iota
	// BackLoad dumps it on the window's last step.
	BackLoad
	// RandomSplit spreads it over uniformly chosen steps of the window.
	RandomSplit
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case FrontLoad:
		return "front-load"
	case BackLoad:
		return "back-load"
	case RandomSplit:
		return "random-split"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// WindowBudget is a (W, budget) adversary on the network's sources: in
// every aligned window of W steps it injects exactly Budget packets in
// total, distributed over the window according to Mode and over the
// sources round-robin. With Budget ≤ W·f* the long-run rate is feasible
// no matter how vicious the within-window pattern is.
type WindowBudget struct {
	W      int64
	Budget int64
	Mode   Mode
	R      *rng.Source // required for RandomSplit

	plan     []int64 // per-step totals for the current window
	planBase int64   // first step covered by plan
}

// Name implements core.ArrivalProcess.
func (a *WindowBudget) Name() string {
	return fmt.Sprintf("adversary(W=%d,B=%d,%s)", a.W, a.Budget, a.Mode)
}

// Injections implements core.ArrivalProcess.
func (a *WindowBudget) Injections(t int64, spec *core.Spec, inj []int64) {
	if a.W <= 0 || a.Budget < 0 {
		panic("adversary: inconsistent WindowBudget parameters")
	}
	base := t - t%a.W
	if a.plan == nil || base != a.planBase {
		a.replan(base)
	}
	total := a.plan[t-base]
	if total == 0 {
		return
	}
	// Distribute the step total round-robin over the sources.
	srcs := spec.Sources()
	if len(srcs) == 0 {
		return
	}
	each := total / int64(len(srcs))
	rem := total % int64(len(srcs))
	for i, s := range srcs {
		inj[s] = each
		if int64(i) < rem {
			inj[s]++
		}
	}
}

func (a *WindowBudget) replan(base int64) {
	if a.plan == nil {
		a.plan = make([]int64, a.W)
	}
	for i := range a.plan {
		a.plan[i] = 0
	}
	a.planBase = base
	switch a.Mode {
	case FrontLoad:
		a.plan[0] = a.Budget
	case BackLoad:
		a.plan[a.W-1] = a.Budget
	case RandomSplit:
		if a.R == nil {
			panic("adversary: RandomSplit needs a rng source")
		}
		for k := int64(0); k < a.Budget; k++ {
			a.plan[a.R.Int64N(a.W)]++
		}
	}
}

// Compensated analyses a per-step total-injection schedule against a
// capacity of fstar packets per step (the Conjecture 2 premise). It
// tracks the running excess E(t) = Σ_{k≤t} sched(k) − (t+1)·fstar clamped
// at 0 (packets cannot be "pre-drained") and returns:
//
//   - peak: the largest excess ever outstanding — the least backlog any
//     algorithm must tolerate;
//   - repaid: whether the excess returns to zero after its last positive
//     stretch, i.e. every overload interval is eventually compensated.
func Compensated(sched []int64, fstar int64) (peak int64, repaid bool) {
	var excess int64
	for _, x := range sched {
		excess += x - fstar
		if excess < 0 {
			excess = 0
		}
		if excess > peak {
			peak = excess
		}
	}
	return peak, excess == 0
}

// ScheduleOf materializes the per-step total injections an arrival
// process would produce on spec over the given horizon. Useful to audit a
// stochastic process against the Conjecture 2 condition before running
// it. The process is consumed (stateful processes advance).
func ScheduleOf(p core.ArrivalProcess, spec *core.Spec, horizon int64) []int64 {
	inj := make([]int64, spec.N())
	out := make([]int64, horizon)
	for t := int64(0); t < horizon; t++ {
		for i := range inj {
			inj[i] = 0
		}
		p.Injections(t, spec, inj)
		var total int64
		for _, x := range inj {
			total += x
		}
		out[t] = total
	}
	return out
}
