package flow

// Dinic implements Dinic's blocking-flow maximum-flow algorithm: repeat
// { build BFS level graph; find a blocking flow by DFS with current-arc
// pointers } until the sink is unreachable. O(V²E) in general, much faster
// on the unit-capacity networks the S-D model produces (O(E·√E)).
type Dinic struct{}

// NewDinic returns a Dinic solver.
func NewDinic() *Dinic { return &Dinic{} }

// Name implements Solver.
func (*Dinic) Name() string { return "dinic" }

// MaxFlow implements Solver.
func (*Dinic) MaxFlow(p *Problem) *Result {
	res := make([]int64, len(p.Arcs))
	for i, a := range p.Arcs {
		res[i] = a.Cap
	}
	level := make([]int, p.N)
	iter := make([]int, p.N)
	queue := make([]int32, 0, p.N)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[p.S] = 0
		queue = queue[:0]
		queue = append(queue, p.S)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, ai := range p.Head[v] {
				to := p.Arcs[ai].To
				if res[ai] > 0 && level[to] == -1 {
					level[to] = level[v] + 1
					queue = append(queue, to)
				}
			}
		}
		return level[p.T] != -1
	}

	var dfs func(v int32, limit int64) int64
	dfs = func(v int32, limit int64) int64 {
		if v == p.T {
			return limit
		}
		for ; iter[v] < len(p.Head[v]); iter[v]++ {
			ai := p.Head[v][iter[v]]
			to := p.Arcs[ai].To
			if res[ai] <= 0 || level[to] != level[v]+1 {
				continue
			}
			f := limit
			if res[ai] < f {
				f = res[ai]
			}
			if got := dfs(to, f); got > 0 {
				res[ai] -= got
				res[p.Rev(ai)] += got
				return got
			}
		}
		level[v] = -1 // dead end: prune
		return 0
	}

	var value int64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(p.S, CapInf*4)
			if f == 0 {
				break
			}
			value += f
		}
	}
	return &Result{P: p, Value: value, Res: res, Solver: "dinic"}
}
