package flow

import (
	"sort"

	"repro/internal/graph"
)

// GomoryHuTree represents all-pairs minimum cuts of an undirected
// multigraph in n−1 numbers: the minimum cut between any two nodes equals
// the smallest edge weight on their tree path. Built with Gusfield's
// simplification of the Gomory–Hu construction (n−1 max-flow calls, no
// node contraction).
//
// The experiments use it to audit where a topology's bottlenecks are —
// e.g. why a grid's feasible region collapses for a particular
// source/sink placement.
type GomoryHuTree struct {
	// Parent[v] is v's neighbour toward node 0 (Parent[0] = 0).
	Parent []int32
	// Weight[v] is the minimum-cut value between v and Parent[v].
	Weight []int64
}

// GomoryHu builds the tree for g (each parallel edge contributing unit
// capacity) using the given solver.
func GomoryHu(g *graph.Multigraph, solver Solver) *GomoryHuTree {
	n := g.NumNodes()
	t := &GomoryHuTree{
		Parent: make([]int32, n),
		Weight: make([]int64, n),
	}
	if n <= 1 {
		return t
	}
	for i := 1; i < n; i++ {
		// max flow between i and Parent[i] on the original graph
		b := NewBuilder(n)
		for _, e := range g.Edges() {
			b.AddUndirected(int(e.U), int(e.V), 1, Tag{})
		}
		p := b.Build(i, int(t.Parent[i]))
		res := solver.MaxFlow(p)
		t.Weight[i] = res.Value
		side := res.ReachableFromS() // nodes on i's side of the min cut
		for j := i + 1; j < n; j++ {
			if side[j] && t.Parent[j] == t.Parent[i] {
				t.Parent[j] = int32(i)
			}
		}
	}
	return t
}

// MinCut returns the minimum-cut value between u and v: the smallest
// weight on the tree path connecting them.
func (t *GomoryHuTree) MinCut(u, v graph.NodeID) int64 {
	if u == v {
		return 0
	}
	// Walk both nodes toward the root, recording path weights.
	du, dv := t.depth(u), t.depth(v)
	var best int64 = -1
	take := func(w int64) {
		if best < 0 || w < best {
			best = w
		}
	}
	a, b := u, v
	for du > dv {
		take(t.Weight[a])
		a = graph.NodeID(t.Parent[a])
		du--
	}
	for dv > du {
		take(t.Weight[b])
		b = graph.NodeID(t.Parent[b])
		dv--
	}
	for a != b {
		take(t.Weight[a])
		take(t.Weight[b])
		a = graph.NodeID(t.Parent[a])
		b = graph.NodeID(t.Parent[b])
	}
	return best
}

func (t *GomoryHuTree) depth(v graph.NodeID) int {
	d := 0
	for t.Parent[v] != int32(v) && v != 0 {
		v = graph.NodeID(t.Parent[v])
		d++
	}
	return d
}

// WeakestPairs returns up to k node pairs with the globally smallest
// pairwise min cut — the network's structural bottlenecks. Ties are
// resolved toward smaller node ids. O(n²) tree-path queries.
func (t *GomoryHuTree) WeakestPairs(k int) []BottleneckPair {
	n := len(t.Parent)
	var out []BottleneckPair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			out = append(out, BottleneckPair{
				U: graph.NodeID(u), V: graph.NodeID(v),
				Cut: t.MinCut(graph.NodeID(u), graph.NodeID(v)),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cut != out[j].Cut {
			return out[i].Cut < out[j].Cut
		}
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// BottleneckPair is a node pair with its minimum-cut value.
type BottleneckPair struct {
	U, V graph.NodeID
	Cut  int64
}
