package flow

// Path is one path of a flow decomposition, from Problem.S to Problem.T,
// carrying Amount units of flow. Nodes includes both terminals; Arcs[i]
// is the arc from Nodes[i] to Nodes[i+1].
type Path struct {
	Nodes  []int32
	Arcs   []int32
	Amount int64
}

// Decompose splits the net flow of r into source-to-sink paths. Flow on
// cycles (which can appear in net flows without affecting the value) is
// cancelled and discarded. The sum of path amounts equals r.Value.
//
// The decomposition is deterministic: at every node the lowest-index
// positive-flow arc is followed first.
func Decompose(r *Result) []Path {
	p := r.P
	// Positive net flow per arc (only one direction of each pair).
	f := make([]int64, len(p.Arcs))
	for i := range p.Arcs {
		nf := r.NetFlow(int32(i))
		if nf > 0 {
			f[i] = nf
		}
	}
	cur := make([]int, p.N) // current-arc pointer: arcs below it are drained
	var paths []Path

	// onPath[v] is the position of v in the current walk, or -1.
	onPath := make([]int, p.N)
	for i := range onPath {
		onPath[i] = -1
	}

	for {
		// Start a new walk if S still has outgoing flow.
		var nodes []int32
		var arcs []int32
		v := p.S
		nodes = append(nodes, v)
		onPath[v] = 0
		reachedT := false
		for {
			if v == p.T {
				reachedT = true
				break
			}
			// Advance the current-arc pointer past drained arcs.
			found := int32(-1)
			for cur[v] < len(p.Head[v]) {
				ai := p.Head[v][cur[v]]
				if f[ai] > 0 {
					found = ai
					break
				}
				cur[v]++
			}
			if found == -1 {
				break // no outgoing flow: walk is stuck (S exhausted)
			}
			to := p.Arcs[found].To
			if onPath[to] >= 0 {
				// Cycle detected: cancel it by its bottleneck and retract
				// the walk to `to`.
				start := onPath[to]
				bottleneck := f[found]
				for i := start; i < len(arcs); i++ {
					if f[arcs[i]] < bottleneck {
						bottleneck = f[arcs[i]]
					}
				}
				f[found] -= bottleneck
				for i := start; i < len(arcs); i++ {
					f[arcs[i]] -= bottleneck
				}
				for i := start + 1; i < len(nodes); i++ {
					onPath[nodes[i]] = -1
					// Reset pointers: arcs may have become drained or not.
					cur[nodes[i]] = 0
				}
				cur[to] = 0
				nodes = nodes[:start+1]
				arcs = arcs[:start]
				v = to
				continue
			}
			arcs = append(arcs, found)
			nodes = append(nodes, to)
			onPath[to] = len(nodes) - 1
			v = to
		}
		// Clear path markers.
		for _, u := range nodes {
			onPath[u] = -1
		}
		if !reachedT {
			break // no more S→T flow
		}
		bottleneck := f[arcs[0]]
		for _, ai := range arcs[1:] {
			if f[ai] < bottleneck {
				bottleneck = f[ai]
			}
		}
		for _, ai := range arcs {
			f[ai] -= bottleneck
		}
		paths = append(paths, Path{
			Nodes:  append([]int32(nil), nodes...),
			Arcs:   append([]int32(nil), arcs...),
			Amount: bottleneck,
		})
		// Pointers may point at arcs we just drained partially; reset the
		// ones on this path so residual flow is still discoverable.
		for _, u := range nodes {
			cur[u] = 0
		}
	}
	return paths
}
