package flow

// This file enumerates ALL minimum s-t cuts of a solved flow problem
// using the Picard–Queyranne correspondence: the source sides of minimum
// cuts are exactly the closed sets (no outgoing residual arcs) of the
// residual graph that contain S and exclude T — equivalently, the closed
// sets of the DAG obtained by condensing the residual graph's strongly
// connected components.
//
// The paper's induction (Section V) needs more than the two extreme cuts:
// case 2 vs case 3 depends on whether *some* minimum cut crosses the
// interior of G, and the extreme cuts can both be trivial while an
// interior one exists. EnumerateMinCuts provides the ground truth (with a
// configurable cap, since the number of min cuts can be exponential).

// sccCondense returns, for the subgraph of residual-positive arcs, the
// SCC id of every node (ids in reverse topological order of the
// condensation: Tarjan numbering) and the number of SCCs.
func sccCondense(p *Problem, res []int64) (comp []int32, ncomp int32) {
	n := p.N
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	var next int32
	// iterative Tarjan
	type frame struct {
		v  int32
		ai int // position in Head[v]
	}
	var call []frame
	for s := 0; s < n; s++ {
		if index[s] != -1 {
			continue
		}
		call = append(call[:0], frame{v: int32(s)})
		index[s] = next
		low[s] = next
		next++
		stack = append(stack, int32(s))
		onStack[s] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			advanced := false
			for ; f.ai < len(p.Head[f.v]); f.ai++ {
				arc := p.Head[f.v][f.ai]
				if res[arc] <= 0 {
					continue
				}
				w := p.Arcs[arc].To
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					f.ai++
					call = append(call, frame{v: w})
					advanced = true
					break
				} else if onStack[w] && low[f.v] > index[w] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// finish v
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if low[parent] > low[v] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// EnumerateMinCuts returns the source sides (as node masks over p's
// nodes) of up to limit distinct minimum cuts of the solved result r. The
// first entry is always the minimal cut (reachable-from-S); enumeration
// explores closed supersets. For a result of a *maximum* flow every
// returned mask is a minimum cut; the count is capped, not sampled, so a
// short list is exhaustive.
func EnumerateMinCuts(r *Result, limit int) [][]bool {
	if limit <= 0 {
		limit = 64
	}
	p := r.P
	comp, ncomp := sccCondense(p, r.Res)

	// Condensation adjacency: compEdges[c] = set of SCCs reachable from c
	// by one residual arc.
	succ := make([]map[int32]bool, ncomp)
	for i := range succ {
		succ[i] = map[int32]bool{}
	}
	for ai, a := range p.Arcs {
		if r.Res[ai] > 0 && comp[a.From] != comp[a.To] {
			succ[comp[a.From]][comp[a.To]] = true
		}
	}
	cs, ct := comp[p.S], comp[p.T]
	if cs == ct {
		return nil // S and T residually connected: not a max flow
	}

	// A source side is a closed set of SCCs (contains all residual
	// successors of its members) containing cs, excluding ct. Start from
	// the closure of {cs} and grow by adding one admissible SCC at a
	// time (DFS over antichains with dedup).
	closure := func(base map[int32]bool) (map[int32]bool, bool) {
		work := make([]int32, 0, len(base))
		set := map[int32]bool{}
		for c := range base {
			set[c] = true
			work = append(work, c)
		}
		for len(work) > 0 {
			c := work[len(work)-1]
			work = work[:len(work)-1]
			for d := range succ[c] {
				if d == ct {
					return nil, false
				}
				if !set[d] {
					set[d] = true
					work = append(work, d)
				}
			}
		}
		return set, true
	}

	seen := map[string]bool{}
	var out [][]bool
	key := func(set map[int32]bool) string {
		b := make([]byte, ncomp)
		for c := range set {
			b[c] = 1
		}
		return string(b)
	}
	toMask := func(set map[int32]bool) []bool {
		mask := make([]bool, p.N)
		for v := 0; v < p.N; v++ {
			mask[v] = set[comp[v]]
		}
		return mask
	}

	base, ok := closure(map[int32]bool{cs: true})
	if !ok {
		return nil
	}
	type state struct{ set map[int32]bool }
	queue := []state{{base}}
	seen[key(base)] = true
	for len(queue) > 0 && len(out) < limit {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, toMask(cur.set))
		// grow: try adding each absent SCC
		for c := int32(0); c < ncomp; c++ {
			if cur.set[c] || c == ct {
				continue
			}
			grown := map[int32]bool{c: true}
			for d := range cur.set {
				grown[d] = true
			}
			closed, ok := closure(grown)
			if !ok {
				continue
			}
			k := key(closed)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, state{closed})
			}
		}
	}
	return out
}

// HasInteriorMinCut reports whether some minimum cut of the extended
// network puts at least one real node on each side (the Section V case-3
// condition), searching up to limit cuts. It is exact whenever the
// enumeration did not hit the cap (second return value true).
func (e *Extended) HasInteriorMinCut(r *Result, limit int) (found, exhaustive bool) {
	cuts := EnumerateMinCuts(r, limit)
	n := e.G.NumNodes()
	for _, mask := range cuts {
		real := 0
		for v := 0; v < n; v++ {
			if mask[v] {
				real++
			}
		}
		if real > 0 && real < n {
			return true, true
		}
	}
	return false, len(cuts) < limit
}
