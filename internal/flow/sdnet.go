package flow

import (
	"fmt"

	"repro/internal/graph"
)

// This file builds the extended graph G* of Section II-B and classifies
// S-D-networks as infeasible / saturated / unsaturated (Definitions 3, 4).
//
// The classification rests on a fact the paper uses in Section V-A: with
// integer capacities, a feasible network is unsaturated if and only if the
// trivial cut ({s*}, V ∪ {d*} ∖ {s*}) is the *unique* minimum cut of G*.
// (If every non-trivial cut has value ≥ Σin(s)+1, scaling every source
// link to (1+ε)·in(s) with ε ≤ 1/Σin(s) keeps all non-trivial cuts at
// least as large as the scaled trivial cut, so the scaled demand is
// feasible; conversely a second minimum cut pins the flow at Σin(s).)
// Uniqueness is decided from the residual graph: the trivial cut is unique
// iff every node other than s* can reach d* in the residual network of a
// maximum flow.

// Feasibility classifies an S-D-network per Definitions 3 and 4.
type Feasibility int

const (
	// Infeasible: no s*-d*-flow saturates all source links; the arrival
	// rate exceeds the network's capacity and every protocol diverges
	// (Theorem 1, second part).
	Infeasible Feasibility = iota
	// Saturated: feasible, but no ε > 0 slack exists (a non-trivial
	// minimum cut pins the flow at the arrival rate).
	Saturated
	// Unsaturated: feasible with strictly positive slack (Definition 4);
	// the regime of Lemma 1.
	Unsaturated
)

// String implements fmt.Stringer.
func (f Feasibility) String() string {
	switch f {
	case Infeasible:
		return "infeasible"
	case Saturated:
		return "saturated"
	case Unsaturated:
		return "unsaturated"
	}
	return fmt.Sprintf("Feasibility(%d)", int(f))
}

// Extended is the graph G*: G plus a virtual source s* with arcs (s*, v)
// of capacity in(v) and a virtual sink d* with arcs (v, d*) of capacity
// out(v) (Fig. 2; Fig. 4 for the generalized version where a node may
// have both).
type Extended struct {
	P            *Problem
	G            *graph.Multigraph
	SStar, DStar int32
	// SourceArc[v] is the arc index of (s*, v), or -1 if in(v) == 0.
	SourceArc []int32
	// SinkArc[v] is the arc index of (v, d*), or -1 if out(v) == 0.
	SinkArc []int32
	// EdgeArc[e] is the index of the "forward" arc (EdgeByID(e).U → .V) of
	// edge e; its reverse is EdgeArc[e]^1.
	EdgeArc []int32
}

// Extend builds G* for the network (g, in, out). srcCap overrides the
// capacity of source links when non-nil (used for the f* computation with
// unbounded capacities and for scaled-demand probes); it receives the node
// and its nominal in(v) > 0.
func Extend(g *graph.Multigraph, in, out []int64, srcCap func(v graph.NodeID, nominal int64) int64) *Extended {
	n := g.NumNodes()
	if len(in) != n || len(out) != n {
		panic("flow: in/out length mismatch with graph")
	}
	b := NewBuilder(n + 2)
	sStar, dStar := n, n+1
	ext := &Extended{
		G:         g,
		SStar:     int32(sStar),
		DStar:     int32(dStar),
		SourceArc: make([]int32, n),
		SinkArc:   make([]int32, n),
		EdgeArc:   make([]int32, g.NumEdges()),
	}
	for e, edge := range g.Edges() {
		ext.EdgeArc[e] = int32(len(b.arcs))
		b.AddUndirected(int(edge.U), int(edge.V), 1, Tag{Kind: TagEdge, ID: int32(e)})
	}
	for v := 0; v < n; v++ {
		ext.SourceArc[v] = -1
		ext.SinkArc[v] = -1
		if in[v] < 0 || out[v] < 0 {
			panic("flow: negative in/out")
		}
		if in[v] > 0 {
			c := in[v]
			if srcCap != nil {
				c = srcCap(graph.NodeID(v), in[v])
			}
			ext.SourceArc[v] = int32(len(b.arcs))
			b.AddArc(sStar, v, c, Tag{Kind: TagSourceLink, ID: int32(v)})
		}
		if out[v] > 0 {
			ext.SinkArc[v] = int32(len(b.arcs))
			b.AddArc(v, dStar, out[v], Tag{Kind: TagSinkLink, ID: int32(v)})
		}
	}
	ext.P = b.Build(sStar, dStar)
	return ext
}

// Analysis is the full feasibility analysis of an S-D-network.
type Analysis struct {
	Ext         *Extended
	MaxFlow     *Result // max flow with nominal source capacities in(v)
	ArrivalRate int64   // Σ_v in(v)
	Feasibility Feasibility
	// FStar is f*: the max-flow value with unbounded source links
	// (Section II-B). ArrivalRate ≤ FStar iff the network is feasible.
	FStar int64
	// MinimalCut is the source side (over G* node ids; s* = n, d* = n+1)
	// of the minimum cut nearest s*; MaximalCut is the one nearest d*.
	// The network is unsaturated iff MaximalCut contains only s*.
	MinimalCut, MaximalCut []bool
}

// CutInterior reports whether the maximal minimum cut separates the graph
// somewhere strictly inside G (both sides contain real nodes) — the
// situation of Section V-C where the induction splits the network.
func (a *Analysis) CutInterior() bool {
	n := a.Ext.G.NumNodes()
	real := 0
	for v := 0; v < n; v++ {
		if a.MaximalCut[v] {
			real++
		}
	}
	return real > 0 && real < n
}

// Analyze computes the feasibility classification of (g, in, out) using
// the given solver (use NewPushRelabel() unless cross-checking).
func Analyze(g *graph.Multigraph, in, out []int64, solver Solver) *Analysis {
	ext := Extend(g, in, out, nil)
	r := solver.MaxFlow(ext.P)
	var rate int64
	for _, x := range in {
		rate += x
	}
	extInf := Extend(g, in, out, func(graph.NodeID, int64) int64 { return CapInf })
	rInf := solver.MaxFlow(extInf.P)

	a := &Analysis{
		Ext:         ext,
		MaxFlow:     r,
		ArrivalRate: rate,
		FStar:       rInf.Value,
		MinimalCut:  r.ReachableFromS(),
	}
	reaches := r.ReachesT()
	a.MaximalCut = make([]bool, ext.P.N)
	for v := range a.MaximalCut {
		a.MaximalCut[v] = !reaches[v]
	}
	switch {
	case r.Value < rate:
		a.Feasibility = Infeasible
	case onlySStar(a.MaximalCut, int(ext.SStar)):
		a.Feasibility = Unsaturated
	default:
		a.Feasibility = Saturated
	}
	return a
}

func onlySStar(cut []bool, sStar int) bool {
	for v, in := range cut {
		if in != (v == sStar) {
			return false
		}
	}
	return true
}

// EdgeFlow returns Φ(e) for every edge of G, oriented positively from
// EdgeByID(e).U to .V, as carried by the given result on this extended
// network.
func (e *Extended) EdgeFlow(r *Result) []int64 {
	out := make([]int64, len(e.EdgeArc))
	for i, ai := range e.EdgeArc {
		out[i] = r.NetFlow(ai)
	}
	return out
}

// SourceFlow returns Φ(s*, v) per node (0 where no source link exists).
func (e *Extended) SourceFlow(r *Result) []int64 {
	out := make([]int64, e.G.NumNodes())
	for v, ai := range e.SourceArc {
		if ai >= 0 {
			out[v] = r.NetFlow(ai)
		}
	}
	return out
}

// SinkFlow returns Φ(v, d*) per node (0 where no sink link exists).
func (e *Extended) SinkFlow(r *Result) []int64 {
	out := make([]int64, e.G.NumNodes())
	for v, ai := range e.SinkArc {
		if ai >= 0 {
			out[v] = r.NetFlow(ai)
		}
	}
	return out
}

// SDPaths decomposes the result into source→destination paths expressed
// in G's node ids (the virtual terminals are stripped). A path may be a
// bare [v] when v is both a source and a destination and routes flow
// s*→v→d* directly.
func (e *Extended) SDPaths(r *Result) []Path {
	raw := Decompose(r)
	out := make([]Path, 0, len(raw))
	for _, p := range raw {
		if len(p.Nodes) < 3 {
			continue // degenerate; cannot happen with s*≠d*
		}
		q := Path{
			Nodes:  append([]int32(nil), p.Nodes[1:len(p.Nodes)-1]...),
			Arcs:   append([]int32(nil), p.Arcs[1:len(p.Arcs)-1]...),
			Amount: p.Amount,
		}
		out = append(out, q)
	}
	return out
}
