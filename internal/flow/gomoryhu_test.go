package flow

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func directMinCut(g *graph.Multigraph, u, v graph.NodeID) int64 {
	b := NewBuilder(g.NumNodes())
	for _, e := range g.Edges() {
		b.AddUndirected(int(e.U), int(e.V), 1, Tag{})
	}
	return NewPushRelabel().MaxFlow(b.Build(int(u), int(v))).Value
}

func TestGomoryHuLine(t *testing.T) {
	g := graph.Line(5)
	tree := GomoryHu(g, NewPushRelabel())
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if got := tree.MinCut(graph.NodeID(u), graph.NodeID(v)); got != 1 {
				t.Fatalf("line cut(%d,%d) = %d, want 1", u, v, got)
			}
		}
	}
	if tree.MinCut(2, 2) != 0 {
		t.Fatal("self cut should be 0")
	}
}

func TestGomoryHuTheta(t *testing.T) {
	g := graph.ThetaGraph(3, 2) // terminals joined by 3 disjoint paths
	tree := GomoryHu(g, NewPushRelabel())
	if got := tree.MinCut(0, 1); got != 3 {
		t.Fatalf("theta terminal cut = %d, want 3", got)
	}
	// interior path nodes have degree 2
	if got := tree.MinCut(0, 2); got != 2 {
		t.Fatalf("terminal-interior cut = %d, want 2", got)
	}
}

func TestGomoryHuBarbell(t *testing.T) {
	g := graph.Barbell(4, 2)
	tree := GomoryHu(g, NewPushRelabel())
	n := graph.NodeID(g.NumNodes() - 1)
	if got := tree.MinCut(0, n); got != 1 {
		t.Fatalf("cross-bridge cut = %d, want 1", got)
	}
	// within the left clique the cut is the clique connectivity (3 + the
	// bridge path alternative... verify against the direct computation)
	want := directMinCut(g, 0, 1)
	if got := tree.MinCut(0, 1); got != want {
		t.Fatalf("clique cut = %d, want %d", got, want)
	}
}

func TestWeakestPairs(t *testing.T) {
	g := graph.Barbell(3, 2)
	tree := GomoryHu(g, NewPushRelabel())
	pairs := tree.WeakestPairs(3)
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for _, p := range pairs {
		if p.Cut != 1 {
			t.Fatalf("weakest pair %v has cut %d, want 1 (bridge)", p, p.Cut)
		}
		// one endpoint each side of the bridge
		left := p.U <= 3
		right := p.V >= 3
		if !(left && right) {
			t.Fatalf("weakest pair %v does not straddle the bridge", p)
		}
	}
}

func TestGomoryHuTrivialSizes(t *testing.T) {
	if tr := GomoryHu(graph.New(1), NewPushRelabel()); len(tr.Parent) != 1 {
		t.Fatal("singleton tree")
	}
	if tr := GomoryHu(graph.New(0), NewPushRelabel()); len(tr.Parent) != 0 {
		t.Fatal("empty tree")
	}
}

// Property: the tree answers every pairwise min cut exactly (validated
// against direct max-flow computations).
func TestQuickGomoryHuAllPairs(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%6) + 3
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		tree := GomoryHu(g, NewPushRelabel())
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				want := directMinCut(g, graph.NodeID(u), graph.NodeID(v))
				got := tree.MinCut(graph.NodeID(u), graph.NodeID(v))
				if got != want {
					t.Logf("n=%d cut(%d,%d): tree %d direct %d", n, u, v, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
