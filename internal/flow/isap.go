package flow

// ISAP implements the Improved Shortest Augmenting Path max-flow
// algorithm: augment along shortest residual paths maintained with exact
// distance labels, retreating (relabelling) at dead ends, with the gap
// heuristic for early termination. It complements push-relabel (preflow
// based) and Dinic (phase based) with a third algorithmic family, giving
// the test suite an extra independent oracle.
type ISAP struct{}

// NewISAP returns an ISAP solver.
func NewISAP() *ISAP { return &ISAP{} }

// Name implements Solver.
func (*ISAP) Name() string { return "isap" }

// MaxFlow implements Solver.
func (*ISAP) MaxFlow(p *Problem) *Result {
	n := p.N
	res := make([]int64, len(p.Arcs))
	for i, a := range p.Arcs {
		res[i] = a.Cap
	}

	// Exact distance labels to T via backward BFS.
	dist := make([]int, n)
	for i := range dist {
		dist[i] = n
	}
	dist[p.T] = 0
	queue := []int32{p.T}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ai := range p.Head[v] {
			w := p.Arcs[ai].To
			if res[p.Rev(ai)] > 0 && dist[w] == n {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	if dist[p.S] >= n {
		return &Result{P: p, Value: 0, Res: res, Solver: "isap"}
	}

	gap := make([]int, 2*n+1)
	for v := 0; v < n; v++ {
		gap[dist[v]]++
	}
	cur := make([]int, n)
	// parent arc along the current partial path
	parent := make([]int32, n)

	var value int64
	v := p.S
	for dist[p.S] < n {
		if v == p.T {
			// Augment by the bottleneck along parent arcs.
			bottleneck := CapInf * 4
			for u := p.T; u != p.S; {
				ai := parent[u]
				if res[ai] < bottleneck {
					bottleneck = res[ai]
				}
				u = p.Arcs[ai].From
			}
			for u := p.T; u != p.S; {
				ai := parent[u]
				res[ai] -= bottleneck
				res[p.Rev(ai)] += bottleneck
				u = p.Arcs[ai].From
			}
			value += bottleneck
			v = p.S
			continue
		}
		// Advance along an admissible arc (res > 0, dist[v] = dist[w]+1).
		advanced := false
		for ; cur[v] < len(p.Head[v]); cur[v]++ {
			ai := p.Head[v][cur[v]]
			w := p.Arcs[ai].To
			if res[ai] > 0 && dist[v] == dist[w]+1 {
				parent[w] = ai
				v = w
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		// Retreat: relabel v to 1 + min over residual arcs.
		minD := 2 * n
		for _, ai := range p.Head[v] {
			if res[ai] > 0 {
				if d := dist[p.Arcs[ai].To]; d < minD {
					minD = d
				}
			}
		}
		gap[dist[v]]--
		if gap[dist[v]] == 0 && dist[v] < n {
			break // gap: S is disconnected from T
		}
		dist[v] = minD + 1
		if dist[v] > 2*n {
			dist[v] = 2 * n
		}
		gap[dist[v]]++
		cur[v] = 0
		if v != p.S {
			v = p.Arcs[parent[v]].From // back up one hop
		}
	}
	return &Result{P: p, Value: value, Res: res, Solver: "isap"}
}
