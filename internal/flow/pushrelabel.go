package flow

// PushRelabel implements the Goldberg–Tarjan preflow-push maximum-flow
// algorithm ("A new approach to the maximum-flow problem", JACM 1988 —
// the paper's reference [6], whose distributed flavour LGG is related to).
//
// This is the FIFO variant with the two standard accelerations:
//   - gap heuristic: when a height level empties, every node above it is
//     lifted over n (it can no longer reach the sink);
//   - periodic global relabelling: recompute exact heights by backward BFS
//     from the sink every N relabel operations.
type PushRelabel struct{}

// NewPushRelabel returns the Goldberg–Tarjan solver.
func NewPushRelabel() *PushRelabel { return &PushRelabel{} }

// Name implements Solver.
func (*PushRelabel) Name() string { return "push-relabel" }

// MaxFlow implements Solver.
func (*PushRelabel) MaxFlow(p *Problem) *Result {
	n := p.N
	res := make([]int64, len(p.Arcs))
	for i, a := range p.Arcs {
		res[i] = a.Cap
	}
	height := make([]int, n)
	excess := make([]int64, n)
	gapCount := make([]int, 2*n+1) // nodes per height level
	cur := make([]int, n)          // current-arc pointer per node

	// FIFO queue of active nodes (excess > 0, not s/t).
	queue := make([]int32, 0, n)
	inQueue := make([]bool, n)
	push := func(v int32) {
		if !inQueue[v] && v != p.S && v != p.T && excess[v] > 0 {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}

	// globalRelabel sets height[v] to the exact residual distance to T
	// (backward BFS), and n for nodes that cannot reach T.
	globalRelabel := func() {
		for i := range height {
			height[i] = n
		}
		for i := range gapCount {
			gapCount[i] = 0
		}
		height[p.T] = 0
		bfs := []int32{p.T}
		for len(bfs) > 0 {
			v := bfs[0]
			bfs = bfs[1:]
			for _, ai := range p.Head[v] {
				w := p.Arcs[ai].To
				// w can push to v iff residual on arc w→v (= reverse of ai) > 0
				if res[p.Rev(ai)] > 0 && height[w] == n && w != p.S {
					height[w] = height[v] + 1
					bfs = append(bfs, w)
				}
			}
		}
		height[p.S] = n
		for _, h := range height {
			gapCount[h]++
		}
		for i := range cur {
			cur[i] = 0
		}
	}

	globalRelabel()

	// Saturate all arcs out of S.
	for _, ai := range p.Head[p.S] {
		if res[ai] <= 0 {
			continue
		}
		f := res[ai]
		to := p.Arcs[ai].To
		res[ai] -= f
		res[p.Rev(ai)] += f
		excess[to] += f
		excess[p.S] -= f
		push(to)
	}

	relabels := 0
	relabelLimit := 2 * n // global relabel period

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false

		// Discharge v.
		for excess[v] > 0 {
			if cur[v] == len(p.Head[v]) {
				// Relabel: find the minimum admissible height.
				minH := 2 * n
				for _, ai := range p.Head[v] {
					if res[ai] > 0 {
						if h := height[p.Arcs[ai].To]; h < minH {
							minH = h
						}
					}
				}
				oldH := height[v]
				newH := minH + 1
				if newH > 2*n {
					newH = 2 * n
				}
				// Gap heuristic: if v was the last node at oldH and
				// oldH < n, every node with height in (oldH, n) is
				// disconnected from T; lift it above n.
				gapCount[oldH]--
				if gapCount[oldH] == 0 && oldH < n {
					for w := 0; w < n; w++ {
						if height[w] > oldH && height[w] < n {
							gapCount[height[w]]--
							height[w] = n + 1
							gapCount[n+1]++
						}
					}
					if newH < n+1 {
						newH = n + 1
					}
				}
				height[v] = newH
				gapCount[newH]++
				cur[v] = 0
				relabels++
				if relabels >= relabelLimit {
					relabels = 0
					globalRelabel()
					// Re-enqueue all nodes with excess (heights changed).
					for w := 0; w < n; w++ {
						push(int32(w))
					}
				}
				if height[v] >= 2*n {
					break // cannot push anywhere anymore
				}
				continue
			}
			ai := p.Head[v][cur[v]]
			to := p.Arcs[ai].To
			if res[ai] > 0 && height[v] == height[to]+1 {
				f := excess[v]
				if res[ai] < f {
					f = res[ai]
				}
				res[ai] -= f
				res[p.Rev(ai)] += f
				excess[v] -= f
				excess[to] += f
				push(to)
			} else {
				cur[v]++
			}
		}
	}

	return &Result{P: p, Value: excess[p.T], Res: res, Solver: "push-relabel"}
}
