package flow

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// Edge cases around "infinite" capacities and degenerate networks.

func TestCutValueWithInfiniteArc(t *testing.T) {
	b := NewBuilder(3)
	b.AddArc(0, 1, CapInf, Tag{})
	b.AddArc(1, 2, 3, Tag{})
	p := b.Build(0, 2)
	// A cut crossing the infinite arc reports MaxInt64.
	if got := p.CutValue([]bool{true, false, false}); got != math.MaxInt64 {
		t.Fatalf("infinite cut = %d", got)
	}
	// The finite cut is still exact.
	if got := p.CutValue([]bool{true, true, false}); got != 3 {
		t.Fatalf("finite cut = %d", got)
	}
}

func TestFStarWithUnboundedSources(t *testing.T) {
	// f* must be limited by the graph, never by the CapInf source links.
	g := graph.ThetaGraph(5, 2)
	in := make([]int64, g.NumNodes())
	out := make([]int64, g.NumNodes())
	in[0] = 1
	out[1] = 100
	a := Analyze(g, in, out, NewPushRelabel())
	if a.FStar != 5 {
		t.Fatalf("f* = %d, want 5 (the disjoint paths)", a.FStar)
	}
	if a.MaxFlow.Value != 1 {
		t.Fatalf("nominal flow = %d, want 1", a.MaxFlow.Value)
	}
	if a.Feasibility != Unsaturated {
		t.Fatalf("class = %v", a.Feasibility)
	}
}

func TestAnalyzeIsolatedSource(t *testing.T) {
	// Source disconnected from the sink: infeasible, f* = 0.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	in := []int64{1, 0, 0, 0}
	out := []int64{0, 0, 0, 1}
	a := Analyze(g, in, out, NewPushRelabel())
	if a.Feasibility != Infeasible || a.FStar != 0 {
		t.Fatalf("disconnected: %v f*=%d", a.Feasibility, a.FStar)
	}
}

func TestAnalyzeSourceAdjacentSink(t *testing.T) {
	// Source and sink adjacent with a thick bundle.
	g := graph.New(2)
	g.AddEdges(0, 1, 4)
	in := []int64{3, 0}
	out := []int64{0, 4}
	a := Analyze(g, in, out, NewPushRelabel())
	if a.Feasibility != Unsaturated {
		t.Fatalf("thick pair: %v", a.Feasibility)
	}
	if a.FStar != 4 {
		t.Fatalf("f* = %d", a.FStar)
	}
}

func TestEnumerateMinCutsOnStar(t *testing.T) {
	// Star with hub sink: each leaf-source's link is an independent
	// bottleneck; the number of min cuts is the product over leaves of
	// (positions per leaf) = 2^leaves for unit links... here 2 leaves.
	g := graph.Star(3)
	in := []int64{0, 1, 1}
	out := []int64{2, 0, 0}
	ext := Extend(g, in, out, nil)
	r := NewPushRelabel().MaxFlow(ext.P)
	if r.Value != 2 {
		t.Fatalf("flow = %d", r.Value)
	}
	cuts := EnumerateMinCuts(r, 100)
	// Each leaf independently: cut at its source link or at its edge; the
	// hub side fixed ⇒ 4 combinations, but the sink link (cap 2) is also
	// tight... enumerate and sanity check values only.
	if len(cuts) < 2 {
		t.Fatalf("star should have multiple min cuts, got %d", len(cuts))
	}
	for _, mask := range cuts {
		if ext.P.CutValue(mask) != 2 {
			t.Fatalf("cut value %d", ext.P.CutValue(mask))
		}
	}
}
