package flow

// EdmondsKarp implements the Edmonds–Karp algorithm (BFS shortest
// augmenting paths). It is the slowest solver here, kept as an oracle:
// its simplicity makes it the easiest to audit, and the test suite
// cross-checks the two fast solvers against it.
type EdmondsKarp struct{}

// NewEdmondsKarp returns an Edmonds–Karp solver.
func NewEdmondsKarp() *EdmondsKarp { return &EdmondsKarp{} }

// Name implements Solver.
func (*EdmondsKarp) Name() string { return "edmonds-karp" }

// MaxFlow implements Solver.
func (*EdmondsKarp) MaxFlow(p *Problem) *Result {
	res := make([]int64, len(p.Arcs))
	for i, a := range p.Arcs {
		res[i] = a.Cap
	}
	parentArc := make([]int32, p.N)
	queue := make([]int32, 0, p.N)

	var value int64
	for {
		// BFS for an augmenting path.
		for i := range parentArc {
			parentArc[i] = -1
		}
		parentArc[p.S] = -2
		queue = queue[:0]
		queue = append(queue, p.S)
		found := false
	bfs:
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, ai := range p.Head[v] {
				to := p.Arcs[ai].To
				if res[ai] > 0 && parentArc[to] == -1 {
					parentArc[to] = ai
					if to == p.T {
						found = true
						break bfs
					}
					queue = append(queue, to)
				}
			}
		}
		if !found {
			break
		}
		// Bottleneck along the path.
		bottleneck := CapInf * 4
		for v := p.T; v != p.S; {
			ai := parentArc[v]
			if res[ai] < bottleneck {
				bottleneck = res[ai]
			}
			v = p.Arcs[ai].From
		}
		// Augment.
		for v := p.T; v != p.S; {
			ai := parentArc[v]
			res[ai] -= bottleneck
			res[p.Rev(ai)] += bottleneck
			v = p.Arcs[ai].From
		}
		value += bottleneck
	}
	return &Result{P: p, Value: value, Res: res, Solver: "edmonds-karp"}
}
