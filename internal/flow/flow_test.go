package flow

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

// diamond builds the classic 4-node diamond with a cross edge:
// s→a (3), s→b (2), a→b (1), a→t (2), b→t (3); max flow = 5.
func diamond() *Problem {
	b := NewBuilder(4)
	b.AddArc(0, 1, 3, Tag{})
	b.AddArc(0, 2, 2, Tag{})
	b.AddArc(1, 2, 1, Tag{})
	b.AddArc(1, 3, 2, Tag{})
	b.AddArc(2, 3, 3, Tag{})
	return b.Build(0, 3)
}

func TestSolversOnDiamond(t *testing.T) {
	for _, s := range Solvers() {
		r := s.MaxFlow(diamond())
		if r.Value != 5 {
			t.Errorf("%s: value = %d, want 5", s.Name(), r.Value)
		}
		if err := r.CheckConservation(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestSolverOnDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddArc(0, 1, 5, Tag{})
	b.AddArc(2, 3, 5, Tag{})
	p := b.Build(0, 3)
	for _, s := range Solvers() {
		if r := s.MaxFlow(p); r.Value != 0 {
			t.Errorf("%s: disconnected flow = %d", s.Name(), r.Value)
		}
	}
}

func TestSolverDirectChain(t *testing.T) {
	b := NewBuilder(3)
	b.AddArc(0, 1, 7, Tag{})
	b.AddArc(1, 2, 4, Tag{})
	p := b.Build(0, 2)
	for _, s := range Solvers() {
		if r := s.MaxFlow(p); r.Value != 4 {
			t.Errorf("%s: chain flow = %d, want 4", s.Name(), r.Value)
		}
	}
}

func TestUndirectedEdgeBothWays(t *testing.T) {
	// s—a—t with undirected middle: flow must traverse a.
	b := NewBuilder(3)
	b.AddUndirected(0, 1, 2, Tag{})
	b.AddUndirected(1, 2, 2, Tag{})
	p := b.Build(0, 2)
	for _, s := range Solvers() {
		r := s.MaxFlow(p)
		if r.Value != 2 {
			t.Errorf("%s: undirected chain flow = %d, want 2", s.Name(), r.Value)
		}
		if err := r.CheckConservation(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestNetFlowAntisymmetric(t *testing.T) {
	p := diamond()
	r := NewPushRelabel().MaxFlow(p)
	for i := range p.Arcs {
		a := int32(i)
		if r.NetFlow(a) != -r.NetFlow(p.Rev(a)) {
			t.Fatalf("NetFlow not antisymmetric at arc %d", a)
		}
	}
}

func TestParallelArcs(t *testing.T) {
	b := NewBuilder(2)
	b.AddArc(0, 1, 1, Tag{})
	b.AddArc(0, 1, 1, Tag{})
	b.AddArc(0, 1, 1, Tag{})
	p := b.Build(0, 1)
	for _, s := range Solvers() {
		if r := s.MaxFlow(p); r.Value != 3 {
			t.Errorf("%s: parallel arcs flow = %d, want 3", s.Name(), r.Value)
		}
	}
}

func TestMinCutOnDiamond(t *testing.T) {
	p := diamond()
	r := NewPushRelabel().MaxFlow(p)
	min := r.ReachableFromS()
	if !min[0] {
		t.Fatal("S not in its own cut side")
	}
	if got := p.CutValue(min); got != r.Value {
		t.Fatalf("minimal cut value = %d, want %d", got, r.Value)
	}
	reaches := r.ReachesT()
	maxSide := make([]bool, p.N)
	for v := range maxSide {
		maxSide[v] = !reaches[v]
	}
	if got := p.CutValue(maxSide); got != r.Value {
		t.Fatalf("maximal cut value = %d, want %d", got, r.Value)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []func(){
		func() { NewBuilder(1) },
		func() { NewBuilder(3).AddArc(0, 0, 1, Tag{}) },
		func() { NewBuilder(3).AddArc(0, 5, 1, Tag{}) },
		func() { NewBuilder(3).AddArc(0, 1, -1, Tag{}) },
		func() { NewBuilder(3).Build(0, 0) },
		func() { NewBuilder(3).Build(-1, 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// randomProblem builds a random directed flow instance.
func randomProblem(r *rng.Source, n, m int, maxCap int64) *Problem {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u := r.IntN(n)
		v := r.IntN(n)
		for v == u {
			v = r.IntN(n)
		}
		if r.Bool(0.5) {
			b.AddArc(u, v, 1+r.Int64N(maxCap), Tag{})
		} else {
			b.AddUndirected(u, v, 1+r.Int64N(maxCap), Tag{})
		}
	}
	return b.Build(0, n-1)
}

// Property: all three solvers agree, satisfy conservation, and match the
// min-cut value, on random mixed directed/undirected instances.
func TestQuickSolversAgree(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%12) + 2
		m := int(mRaw%40) + 1
		p := randomProblem(r, n, m, 5)
		solvers := Solvers()
		results := make([]*Result, len(solvers))
		for i, s := range solvers {
			results[i] = s.MaxFlow(p)
			if err := results[i].CheckConservation(); err != nil {
				t.Logf("%s: %v", s.Name(), err)
				return false
			}
		}
		for i := 1; i < len(results); i++ {
			if results[i].Value != results[0].Value {
				t.Logf("disagreement: %s=%d %s=%d", solvers[0].Name(),
					results[0].Value, solvers[i].Name(), results[i].Value)
				return false
			}
		}
		// max-flow = min-cut on the minimal cut
		if cv := p.CutValue(results[0].ReachableFromS()); cv != results[0].Value {
			t.Logf("cut %d != flow %d", cv, results[0].Value)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: flow value never exceeds total capacity out of S nor into T.
func TestQuickValueBounds(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%10) + 2
		m := int(mRaw%30) + 1
		p := randomProblem(r, n, m, 4)
		res := NewDinic().MaxFlow(p)
		var outS, inT int64
		for _, a := range p.Arcs {
			if a.From == p.S {
				outS += a.Cap
			}
			if a.To == p.T {
				inT += a.Cap
			}
		}
		return res.Value >= 0 && res.Value <= outS && res.Value <= inT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeUnitNetworkAgreement(t *testing.T) {
	// A denser sanity case closer to G* instances: unit capacities.
	r := rng.New(99)
	g := graph.RandomMultigraph(40, 120, r)
	b := NewBuilder(40)
	for _, e := range g.Edges() {
		b.AddUndirected(int(e.U), int(e.V), 1, Tag{})
	}
	p := b.Build(0, 39)
	v0 := NewPushRelabel().MaxFlow(p).Value
	v1 := NewDinic().MaxFlow(p).Value
	v2 := NewEdmondsKarp().MaxFlow(p).Value
	if v0 != v1 || v1 != v2 {
		t.Fatalf("solver disagreement: %d %d %d", v0, v1, v2)
	}
	if v0 <= 0 {
		t.Fatalf("expected positive flow in a connected multigraph, got %d", v0)
	}
}

func TestFeasibilityString(t *testing.T) {
	if Infeasible.String() != "infeasible" || Saturated.String() != "saturated" ||
		Unsaturated.String() != "unsaturated" {
		t.Fatal("Feasibility.String wrong")
	}
	if Feasibility(9).String() == "" {
		t.Fatal("unknown feasibility stringer empty")
	}
}
