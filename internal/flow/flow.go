// Package flow implements the max-flow / min-cut machinery the paper's
// stability analysis is built on (Section II-B): the extended graph G*
// with a virtual source s* and sink d*, maximum s*-d*-flows, minimum cuts
// and their uniqueness (which decides saturated vs unsaturated networks,
// Definitions 3 and 4), and flow path decompositions (the packet routes of
// the "optimal method" LGG is compared against).
//
// Three solvers are provided: Goldberg–Tarjan push-relabel (the algorithm
// the paper cites as [6]), Dinic, and Edmonds–Karp. They are
// interchangeable behind the Solver interface and cross-checked in tests.
package flow

import (
	"fmt"
	"math"
)

// CapInf is the "infinite" capacity used for unbounded virtual links
// (e.g. when computing f*, the maximum flow with unbounded source links).
// It is large enough that no realistic network saturates it but small
// enough that sums of a few thousand of them do not overflow int64.
const CapInf = int64(1) << 48

// TagKind classifies an arc of an extended network.
type TagKind uint8

const (
	// TagNone marks arcs with no external meaning.
	TagNone TagKind = iota
	// TagEdge marks the arc pair representing a (multigraph) edge of G;
	// Tag.ID is the graph.EdgeID.
	TagEdge
	// TagSourceLink marks a virtual arc (s*, v); Tag.ID is the node v.
	TagSourceLink
	// TagSinkLink marks a virtual arc (v, d*); Tag.ID is the node v.
	TagSinkLink
)

// Tag attaches external identity to an arc so flows can be read back in
// terms of the original network.
type Tag struct {
	Kind TagKind
	ID   int32
}

// Arc is one directed arc of a flow problem. Arcs always come in pairs:
// arcs[i] and arcs[i^1] are mutual reverses (an undirected edge is a pair
// with equal capacities; a directed arc is a pair whose reverse has
// capacity 0).
type Arc struct {
	From, To int32
	Cap      int64
	Tag      Tag
}

// Problem is an s-t max-flow instance. Build one with a Builder; solve it
// with any Solver. A Problem is immutable after Build and may be solved
// concurrently by different solvers.
type Problem struct {
	N    int
	S, T int32
	Arcs []Arc
	Head [][]int32 // per node, indexes into Arcs
}

// Rev returns the index of the reverse arc of arc i.
func (p *Problem) Rev(i int32) int32 { return i ^ 1 }

// Builder accumulates arcs for a Problem.
type Builder struct {
	n    int
	arcs []Arc
}

// NewBuilder returns a builder for a flow network on n nodes.
func NewBuilder(n int) *Builder {
	if n < 2 {
		panic("flow: a problem needs at least 2 nodes")
	}
	return &Builder{n: n}
}

// NumNodes returns the node count of the network under construction.
func (b *Builder) NumNodes() int { return b.n }

// AddArc adds a directed arc u→v with the given capacity (its implicit
// reverse has capacity 0).
func (b *Builder) AddArc(u, v int, cap int64, tag Tag) {
	b.checkPair(u, v, cap)
	b.arcs = append(b.arcs,
		Arc{From: int32(u), To: int32(v), Cap: cap, Tag: tag},
		Arc{From: int32(v), To: int32(u), Cap: 0, Tag: tag},
	)
}

// AddUndirected adds an undirected edge {u, v} of the given capacity,
// modelled as a mutual-reverse arc pair each with capacity cap (pushing f
// one way yields residual cap+f the other way, which is exactly undirected
// behaviour).
func (b *Builder) AddUndirected(u, v int, cap int64, tag Tag) {
	b.checkPair(u, v, cap)
	b.arcs = append(b.arcs,
		Arc{From: int32(u), To: int32(v), Cap: cap, Tag: tag},
		Arc{From: int32(v), To: int32(u), Cap: cap, Tag: tag},
	)
}

func (b *Builder) checkPair(u, v int, cap int64) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("flow: arc endpoint out of range: %d-%d (n=%d)", u, v, b.n))
	}
	if u == v {
		panic("flow: self-loop arc")
	}
	if cap < 0 {
		panic("flow: negative capacity")
	}
}

// Build freezes the arcs into a Problem with source s and sink t.
func (b *Builder) Build(s, t int) *Problem {
	if s < 0 || s >= b.n || t < 0 || t >= b.n || s == t {
		panic(fmt.Sprintf("flow: bad terminals s=%d t=%d (n=%d)", s, t, b.n))
	}
	p := &Problem{
		N:    b.n,
		S:    int32(s),
		T:    int32(t),
		Arcs: append([]Arc(nil), b.arcs...),
		Head: make([][]int32, b.n),
	}
	for i, a := range p.Arcs {
		p.Head[a.From] = append(p.Head[a.From], int32(i))
	}
	return p
}

// Result is a solved max flow: the value and the residual capacities.
type Result struct {
	P      *Problem
	Value  int64
	Res    []int64 // residual capacity per arc, len == len(P.Arcs)
	Solver string
}

// ArcFlow returns Cap − Res for arc i (the raw amount pushed; can be
// negative on reverse arcs).
func (r *Result) ArcFlow(i int32) int64 { return r.P.Arcs[i].Cap - r.Res[i] }

// NetFlow returns the net flow along arc i, symmetric under reversal:
// NetFlow(i) == −NetFlow(rev i). For a directed arc it equals the pushed
// flow; for an undirected pair it is the signed net transfer.
func (r *Result) NetFlow(i int32) int64 {
	return (r.ArcFlow(i) - r.ArcFlow(r.P.Rev(i))) / 2
}

// CheckConservation verifies capacity and conservation constraints; it
// returns nil for a valid flow. Used by tests and by the classifier's
// paranoia mode.
func (r *Result) CheckConservation() error {
	p := r.P
	excess := make([]int64, p.N)
	for i := range p.Arcs {
		a := int32(i)
		if r.Res[a] < 0 {
			return fmt.Errorf("flow: arc %d residual %d < 0", a, r.Res[a])
		}
		f := r.NetFlow(a)
		if f > 0 {
			if f > p.Arcs[a].Cap {
				return fmt.Errorf("flow: arc %d net flow %d exceeds cap %d", a, f, p.Arcs[a].Cap)
			}
			excess[p.Arcs[a].To] += f
			excess[p.Arcs[a].From] -= f
		}
	}
	for v := 0; v < p.N; v++ {
		if int32(v) == p.S || int32(v) == p.T {
			continue
		}
		if excess[v] != 0 {
			return fmt.Errorf("flow: node %d violates conservation by %d", v, excess[v])
		}
	}
	if excess[p.T] != r.Value {
		return fmt.Errorf("flow: sink receives %d, value says %d", excess[p.T], r.Value)
	}
	return nil
}

// ReachableFromS returns the set of nodes reachable from S in the residual
// graph. This is the source side of the *minimal* minimum cut.
func (r *Result) ReachableFromS() []bool {
	p := r.P
	seen := make([]bool, p.N)
	stack := []int32{p.S}
	seen[p.S] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ai := range p.Head[v] {
			if r.Res[ai] > 0 && !seen[p.Arcs[ai].To] {
				seen[p.Arcs[ai].To] = true
				stack = append(stack, p.Arcs[ai].To)
			}
		}
	}
	return seen
}

// ReachesT returns the set of nodes that can reach T in the residual
// graph. The complement is the source side of the *maximal* minimum cut.
func (r *Result) ReachesT() []bool {
	p := r.P
	// Walk backwards: v reaches T iff some residual arc v→w with w reaching T.
	// Equivalently forward-search from T over arcs whose *reverse* has
	// residual capacity.
	seen := make([]bool, p.N)
	stack := []int32{p.T}
	seen[p.T] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ai := range p.Head[v] {
			// arc ai: v→w. Its reverse w→v has residual Res[rev]. If
			// Res[rev] > 0 then w can step to v, so w reaches T.
			w := p.Arcs[ai].To
			if r.Res[p.Rev(ai)] > 0 && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// CutValue returns the capacity of the cut whose source side is
// sourceSide: the sum of Cap over arcs leaving the set. For a valid flow
// result whose cut this is, CutValue equals Value.
func (p *Problem) CutValue(sourceSide []bool) int64 {
	var total int64
	for _, a := range p.Arcs {
		if sourceSide[a.From] && !sourceSide[a.To] {
			if a.Cap >= CapInf {
				return math.MaxInt64
			}
			total += a.Cap
		}
	}
	return total
}

// Solver is a max-flow algorithm.
type Solver interface {
	Name() string
	// MaxFlow solves p and returns the result. The problem is not
	// modified; concurrent calls with distinct Results are safe.
	MaxFlow(p *Problem) *Result
}

// Solvers returns one instance of every implemented solver, in a fixed
// order (push-relabel first: it is the reference implementation).
func Solvers() []Solver {
	return []Solver{NewPushRelabel(), NewDinic(), NewEdmondsKarp(), NewISAP()}
}
