package flow

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestISAPOnDiamond(t *testing.T) {
	r := NewISAP().MaxFlow(diamond())
	if r.Value != 5 {
		t.Fatalf("isap diamond = %d, want 5", r.Value)
	}
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if r.Solver != "isap" || NewISAP().Name() != "isap" {
		t.Fatal("solver label")
	}
}

func TestISAPDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddArc(0, 1, 3, Tag{})
	b.AddArc(2, 3, 3, Tag{})
	if r := NewISAP().MaxFlow(b.Build(0, 3)); r.Value != 0 {
		t.Fatalf("disconnected isap = %d", r.Value)
	}
}

func TestISAPZeroCapacitySource(t *testing.T) {
	b := NewBuilder(3)
	b.AddArc(0, 1, 0, Tag{})
	b.AddArc(1, 2, 5, Tag{})
	if r := NewISAP().MaxFlow(b.Build(0, 2)); r.Value != 0 {
		t.Fatalf("zero-cap isap = %d", r.Value)
	}
}

func TestISAPLargeUnitNetwork(t *testing.T) {
	g := graph.RandomMultigraph(80, 300, rng.New(17))
	b := NewBuilder(80)
	for _, e := range g.Edges() {
		b.AddUndirected(int(e.U), int(e.V), 1, Tag{})
	}
	p := b.Build(0, 79)
	want := NewPushRelabel().MaxFlow(p).Value
	got := NewISAP().MaxFlow(p).Value
	if got != want {
		t.Fatalf("isap = %d, push-relabel = %d", got, want)
	}
}
