package flow

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

// lineNet builds a path network: source at node 0 with in, sink at n-1
// with out.
func lineNet(n int, in, out int64) (*graph.Multigraph, []int64, []int64) {
	g := graph.Line(n)
	ins := make([]int64, n)
	outs := make([]int64, n)
	ins[0] = in
	outs[n-1] = out
	return g, ins, outs
}

func TestAnalyzeUnsaturatedLine(t *testing.T) {
	// A single path can carry 1 packet per step; demanding 1 with out 2
	// saturates the source link... in=1, out=1 over a path: the interior
	// edges also have capacity 1, so cuts across the path have value 1 =
	// arrival rate. Saturated.
	g, in, out := lineNet(4, 1, 1)
	a := Analyze(g, in, out, NewPushRelabel())
	if a.Feasibility != Saturated {
		t.Fatalf("line in=1: %v, want saturated", a.Feasibility)
	}
	if a.ArrivalRate != 1 || a.MaxFlow.Value != 1 || a.FStar != 1 {
		t.Fatalf("rate=%d flow=%d f*=%d", a.ArrivalRate, a.MaxFlow.Value, a.FStar)
	}
}

func TestAnalyzeInfeasibleLine(t *testing.T) {
	g, in, out := lineNet(4, 2, 2)
	a := Analyze(g, in, out, NewPushRelabel())
	if a.Feasibility != Infeasible {
		t.Fatalf("line in=2: %v, want infeasible (interior edges cap 1)", a.Feasibility)
	}
	if a.FStar != 1 {
		t.Fatalf("f* = %d, want 1", a.FStar)
	}
}

func TestAnalyzeUnsaturatedTheta(t *testing.T) {
	// 3 disjoint paths of length 2 between terminals: f* = 3. Demanding 2
	// leaves slack on the interior, and out=3 leaves slack at the sink:
	// the only min cut is the source links.
	g := graph.ThetaGraph(3, 2)
	n := g.NumNodes()
	in := make([]int64, n)
	out := make([]int64, n)
	in[0] = 2
	out[1] = 3
	a := Analyze(g, in, out, NewPushRelabel())
	if a.Feasibility != Unsaturated {
		t.Fatalf("theta in=2/f*=3: %v, want unsaturated", a.Feasibility)
	}
	if a.FStar != 3 {
		t.Fatalf("f* = %d, want 3", a.FStar)
	}
}

func TestAnalyzeSaturatedAtSink(t *testing.T) {
	// Section V-B situation: plenty of graph capacity, but out(d) equals
	// the arrival rate exactly → the cut at d* is also minimum.
	g := graph.ThetaGraph(3, 2)
	n := g.NumNodes()
	in := make([]int64, n)
	out := make([]int64, n)
	in[0] = 2
	out[1] = 2
	a := Analyze(g, in, out, NewPushRelabel())
	if a.Feasibility != Saturated {
		t.Fatalf("out=in: %v, want saturated", a.Feasibility)
	}
}

func TestAnalyzeMultiSource(t *testing.T) {
	// Star: leaves 1..4 are sources with in=1, hub 0 is the sink out=4.
	g := graph.Star(5)
	in := []int64{0, 1, 1, 1, 1}
	out := []int64{4, 0, 0, 0, 0}
	a := Analyze(g, in, out, NewPushRelabel())
	if a.Feasibility != Saturated { // each leaf edge is a tight cut component
		t.Fatalf("star: %v, want saturated", a.Feasibility)
	}
	if a.MaxFlow.Value != 4 {
		t.Fatalf("flow = %d", a.MaxFlow.Value)
	}
	// Now with out=5 and thicker edges it becomes unsaturated.
	g2 := graph.New(5)
	for i := 1; i < 5; i++ {
		g2.AddEdges(0, graph.NodeID(i), 2)
	}
	out2 := []int64{5, 0, 0, 0, 0}
	a2 := Analyze(g2, in, out2, NewPushRelabel())
	if a2.Feasibility != Unsaturated {
		t.Fatalf("thick star: %v, want unsaturated", a2.Feasibility)
	}
}

func TestCutInterior(t *testing.T) {
	// Barbell with sources in the left clique and sink on the right: the
	// bridge is the bottleneck, so the maximal min cut is interior.
	g := graph.Barbell(3, 2)
	n := g.NumNodes()
	in := make([]int64, n)
	out := make([]int64, n)
	in[0] = 1
	out[n-1] = 2 // slack at the sink so the bridge is the maximal min cut
	a := Analyze(g, in, out, NewPushRelabel())
	if a.Feasibility != Saturated {
		t.Fatalf("barbell: %v, want saturated (bridge capacity 1)", a.Feasibility)
	}
	if !a.CutInterior() {
		t.Fatal("expected an interior min cut across the bridge")
	}
	// The maximal cut's real-node side must contain the left clique and
	// the bridge interior but not the right clique.
	for v := 0; v < 4; v++ {
		if !a.MaximalCut[v] {
			t.Fatalf("node %d missing from the maximal cut side", v)
		}
	}
	for v := 4; v < n; v++ {
		if a.MaximalCut[v] {
			t.Fatalf("node %d unexpectedly on the source side", v)
		}
	}
}

func TestSourceSinkFlows(t *testing.T) {
	g := graph.ThetaGraph(2, 2)
	n := g.NumNodes()
	in := make([]int64, n)
	out := make([]int64, n)
	in[0] = 2
	out[1] = 2
	a := Analyze(g, in, out, NewPushRelabel())
	src := a.Ext.SourceFlow(a.MaxFlow)
	snk := a.Ext.SinkFlow(a.MaxFlow)
	if src[0] != 2 {
		t.Fatalf("Φ(s*,0) = %d", src[0])
	}
	if snk[1] != 2 {
		t.Fatalf("Φ(1,d*) = %d", snk[1])
	}
	ef := a.Ext.EdgeFlow(a.MaxFlow)
	var across int64
	for _, f := range ef {
		if f < -1 || f > 1 {
			t.Fatalf("edge flow %d out of [-1,1]", f)
		}
		if f != 0 {
			across++
		}
	}
	if across != 4 { // 2 paths × 2 edges
		t.Fatalf("flow uses %d edges, want 4", across)
	}
}

func TestSDPaths(t *testing.T) {
	g := graph.ThetaGraph(3, 3)
	n := g.NumNodes()
	in := make([]int64, n)
	out := make([]int64, n)
	in[0] = 3
	out[1] = 3
	a := Analyze(g, in, out, NewPushRelabel())
	paths := a.Ext.SDPaths(a.MaxFlow)
	var total int64
	for _, p := range paths {
		total += p.Amount
		if p.Nodes[0] != 0 {
			t.Fatalf("path does not start at the source: %v", p.Nodes)
		}
		if p.Nodes[len(p.Nodes)-1] != 1 {
			t.Fatalf("path does not end at the sink: %v", p.Nodes)
		}
		if len(p.Nodes) != 4 { // 0, two interior, 1
			t.Fatalf("path length %d, want 4: %v", len(p.Nodes), p.Nodes)
		}
	}
	if total != 3 {
		t.Fatalf("decomposed %d units, want 3", total)
	}
}

func TestSDPathsSourceIsSink(t *testing.T) {
	// A node that is both source and destination: flow s*→v→d*.
	g := graph.Line(2)
	in := []int64{3, 0}
	out := []int64{3, 0}
	a := Analyze(g, in, out, NewPushRelabel())
	if a.Feasibility == Infeasible {
		t.Fatalf("self-serving node should be feasible")
	}
	paths := a.Ext.SDPaths(a.MaxFlow)
	if len(paths) != 1 || paths[0].Amount != 3 || len(paths[0].Nodes) != 1 {
		t.Fatalf("paths = %+v", paths)
	}
}

func TestExtendPanics(t *testing.T) {
	g := graph.Line(3)
	for i, f := range []func(){
		func() { Extend(g, []int64{1, 0}, []int64{0, 0, 1}, nil) },
		func() { Extend(g, []int64{-1, 0, 0}, []int64{0, 0, 1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: classification is consistent across all three solvers on
// random networks with random roles.
func TestQuickClassifyAgreement(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%8) + 3
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		in := make([]int64, n)
		out := make([]int64, n)
		in[r.IntN(n)] = 1 + r.Int64N(3)
		d := r.IntN(n)
		out[d] = 1 + r.Int64N(3)
		var a0 *Analysis
		for _, s := range Solvers() {
			a := Analyze(g, in, out, s)
			if a0 == nil {
				a0 = a
			} else if a.Feasibility != a0.Feasibility ||
				a.MaxFlow.Value != a0.MaxFlow.Value || a.FStar != a0.FStar {
				t.Logf("solver %s disagrees: %v/%d/%d vs %v/%d/%d", s.Name(),
					a.Feasibility, a.MaxFlow.Value, a.FStar,
					a0.Feasibility, a0.MaxFlow.Value, a0.FStar)
				return false
			}
		}
		// Invariants: feasible ⇒ rate ≤ f*; infeasible ⇒ rate > flow.
		if a0.Feasibility != Infeasible && a0.ArrivalRate > a0.FStar {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: decomposition of the G* flow always accounts for the full
// value, and every path respects unit capacity on interior edges.
func TestQuickDecomposeAccounts(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%8) + 3
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		in := make([]int64, n)
		out := make([]int64, n)
		in[0] = 1 + r.Int64N(4)
		out[n-1] = 1 + r.Int64N(4)
		ext := Extend(g, in, out, nil)
		res := NewPushRelabel().MaxFlow(ext.P)
		paths := Decompose(res)
		var total int64
		for _, p := range paths {
			total += p.Amount
			if p.Nodes[0] != ext.P.S || p.Nodes[len(p.Nodes)-1] != ext.P.T {
				return false
			}
		}
		return total == res.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
