package flow

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestEnumerateMinCutsChain(t *testing.T) {
	// s→a→b→t, all capacity 1: three minimum cuts ({s}, {s,a}, {s,a,b}).
	b := NewBuilder(4)
	b.AddArc(0, 1, 1, Tag{})
	b.AddArc(1, 2, 1, Tag{})
	b.AddArc(2, 3, 1, Tag{})
	p := b.Build(0, 3)
	r := NewPushRelabel().MaxFlow(p)
	cuts := EnumerateMinCuts(r, 100)
	if len(cuts) != 3 {
		t.Fatalf("chain has %d min cuts, want 3", len(cuts))
	}
	for _, mask := range cuts {
		if !mask[0] || mask[3] {
			t.Fatalf("cut does not separate terminals: %v", mask)
		}
		if got := p.CutValue(mask); got != r.Value {
			t.Fatalf("enumerated cut has value %d, want %d", got, r.Value)
		}
	}
}

func TestEnumerateMinCutsUniqueCut(t *testing.T) {
	// s→t with one arc of capacity 1 next to a fat arc pair: unique cut.
	b := NewBuilder(3)
	b.AddArc(0, 1, 5, Tag{})
	b.AddArc(1, 2, 1, Tag{})
	p := b.Build(0, 2)
	r := NewDinic().MaxFlow(p)
	cuts := EnumerateMinCuts(r, 100)
	if len(cuts) != 1 {
		t.Fatalf("unique-cut network enumerated %d cuts", len(cuts))
	}
}

func TestEnumerateMinCutsDiamondParallel(t *testing.T) {
	// Two parallel unit paths s→a→t and s→b→t: min cut value 2; the cuts
	// are products of per-path choices: 4 in total.
	b := NewBuilder(4)
	b.AddArc(0, 1, 1, Tag{})
	b.AddArc(1, 3, 1, Tag{})
	b.AddArc(0, 2, 1, Tag{})
	b.AddArc(2, 3, 1, Tag{})
	p := b.Build(0, 3)
	r := NewPushRelabel().MaxFlow(p)
	cuts := EnumerateMinCuts(r, 100)
	if len(cuts) != 4 {
		t.Fatalf("parallel-paths network has %d min cuts, want 4", len(cuts))
	}
}

func TestEnumerateRespectsLimit(t *testing.T) {
	// Long chain: n-1 cuts, limit smaller.
	b := NewBuilder(10)
	for i := 0; i < 9; i++ {
		b.AddArc(i, i+1, 1, Tag{})
	}
	p := b.Build(0, 9)
	r := NewPushRelabel().MaxFlow(p)
	cuts := EnumerateMinCuts(r, 4)
	if len(cuts) != 4 {
		t.Fatalf("limit ignored: %d", len(cuts))
	}
}

func TestHasInteriorMinCutCaseTwoTrap(t *testing.T) {
	// A network whose minimal and maximal cuts are both trivial (source
	// links and sink links tight) but which ALSO has an interior min cut:
	// line s -- a -- b -- t with in=1, out=1; every cut has value 1,
	// including the two interior edge cuts.
	g := graph.Line(4)
	in := []int64{1, 0, 0, 0}
	out := []int64{0, 0, 0, 1}
	a := Analyze(g, in, out, NewPushRelabel())
	// The extremes: minimal = {s*}, maximal = all-but-d*. CutInterior
	// (extremes only) must say false is WRONG here — enumeration finds
	// the interior cuts.
	found, exhaustive := a.Ext.HasInteriorMinCut(a.MaxFlow, 64)
	if !found {
		t.Fatal("interior min cut exists (each line edge) but was not found")
	}
	if !exhaustive {
		t.Fatal("tiny network should enumerate exhaustively")
	}
}

func TestHasInteriorMinCutNone(t *testing.T) {
	// Unsaturated theta: the trivial source cut is the unique min cut.
	g := graph.ThetaGraph(3, 2)
	in := []int64{2, 0, 0, 0, 0}
	out := []int64{0, 3, 0, 0, 0}
	a := Analyze(g, in, out, NewPushRelabel())
	found, exhaustive := a.Ext.HasInteriorMinCut(a.MaxFlow, 64)
	if found {
		t.Fatal("unsaturated network reported an interior min cut")
	}
	if !exhaustive {
		t.Fatal("should be exhaustive")
	}
}

// Property: every enumerated mask is a genuine minimum cut (separates
// terminals, value equals the max flow), the minimal cut is included, and
// no duplicates appear.
func TestQuickEnumerateSound(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%8) + 3
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		in := make([]int64, n)
		out := make([]int64, n)
		in[0] = 1 + r.Int64N(3)
		out[n-1] = 1 + r.Int64N(3)
		ext := Extend(g, in, out, nil)
		res := NewPushRelabel().MaxFlow(ext.P)
		cuts := EnumerateMinCuts(res, 200)
		if len(cuts) == 0 {
			return false // at least the minimal cut must appear
		}
		seen := map[string]bool{}
		for _, mask := range cuts {
			if !mask[ext.SStar] || mask[ext.DStar] {
				return false
			}
			if ext.P.CutValue(mask) != res.Value {
				return false
			}
			k := ""
			for _, b := range mask {
				if b {
					k += "1"
				} else {
					k += "0"
				}
			}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		// first mask = minimal cut
		min := res.ReachableFromS()
		for v := range min {
			if min[v] != cuts[0][v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
