package core

import (
	"fmt"

	"repro/internal/flow"
)

// This file computes the explicit constants of the paper's stability
// proofs so experiments can compare measured behaviour against them:
//
//   Property 1:  P_{t+1} − P_t ≤ 5nΔ²
//   Property 2:  P_t > nY² ⇒ P_{t+1} − P_t < −5nΔ², Y = (5nf*/ε + 3n)Δ²
//   Lemma 1:     P_t ≤ nY² + 5nΔ²
//   Property 3:  P_{t+1} − P_t ≤ 2k(R+out_max)out_max + Δ²(3n−2k) + 4kΔR
//                with k = |S ∪ D| (R-generalized, unsaturated)
//
// and the slack ε = min_s (Φ(s*,s) − in(s)) certified by a maximum
// uniform scaling of the source capacities.

// Slack returns the largest rational λ = Num/Den such that the scaled
// demands (1+λ)·in(v) are still feasible in G*, certified by an exact
// integer max-flow on capacities multiplied by Den. Den is the arrival
// rate (the natural denominator: for integer capacities the critical λ of
// Definition 4 is at least 1/rate whenever it is positive). A saturated
// network returns 0/rate; an infeasible one returns a negative numerator.
func Slack(spec *Spec, solver flow.Solver) (num, den int64) {
	rate := spec.ArrivalRate()
	if rate == 0 {
		panic("core: Slack on a network with no arrivals")
	}
	den = rate
	feasibleAt := func(p int64) bool { return scaledFeasible(spec, den, p, solver) }
	if !feasibleAt(0) {
		return -1, den
	}
	// Exponential + binary search for the largest feasible p.
	lo, hi := int64(0), int64(1)
	for feasibleAt(hi) {
		lo = hi
		hi *= 2
		if hi > den*flow.CapInf/den/4 || hi > (int64(1)<<40) {
			break // effectively unbounded slack; cap the report
		}
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if feasibleAt(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, den
}

// scaledFeasible checks whether demands in(v)·(den+p)/den are feasible by
// scaling every capacity by den (graph edges den, sink links out·den,
// source links in·(den+p)) and asking for saturation of the source links.
func scaledFeasible(spec *Spec, den, p int64, solver flow.Solver) bool {
	n := spec.N()
	b := flow.NewBuilder(n + 2)
	sStar, dStar := n, n+1
	for e, edge := range spec.G.Edges() {
		b.AddUndirected(int(edge.U), int(edge.V), den, flow.Tag{Kind: flow.TagEdge, ID: int32(e)})
	}
	var want int64
	for v := 0; v < n; v++ {
		if spec.In[v] > 0 {
			c := spec.In[v] * (den + p)
			want += c
			b.AddArc(sStar, v, c, flow.Tag{Kind: flow.TagSourceLink, ID: int32(v)})
		}
		if spec.Out[v] > 0 {
			b.AddArc(v, dStar, spec.Out[v]*den, flow.Tag{Kind: flow.TagSinkLink, ID: int32(v)})
		}
	}
	res := solver.MaxFlow(b.Build(sStar, dStar))
	return res.Value == want
}

// Eps returns the paper's ε = min_s (Φ(s*,s) − in(s)) certified by the
// maximal uniform scaling: ε = λ*·min_s in(s). It is positive exactly for
// unsaturated networks.
func Eps(spec *Spec, solver flow.Solver) float64 {
	num, den := Slack(spec, solver)
	if num <= 0 {
		return 0
	}
	inMin := int64(0)
	for _, x := range spec.In {
		if x > 0 && (inMin == 0 || x < inMin) {
			inMin = x
		}
	}
	return float64(num) / float64(den) * float64(inMin)
}

// Bounds bundles the explicit constants of Lemma 1 for an unsaturated
// network.
type Bounds struct {
	N     int
	Delta int
	FStar int64
	Eps   float64
	// GrowthBound is Property 1's 5nΔ².
	GrowthBound float64
	// Y is Property 2's threshold constant (5nf*/ε + 3n)Δ².
	Y float64
	// StateBound is Lemma 1's nY² + 5nΔ².
	StateBound float64
}

// ComputeBounds evaluates the Lemma 1 constants. It fails unless the
// network is unsaturated (the regime where the constants are defined).
func ComputeBounds(spec *Spec, solver flow.Solver) (Bounds, error) {
	a := spec.Analyze(solver)
	if a.Feasibility != flow.Unsaturated {
		return Bounds{}, fmt.Errorf("core: bounds require an unsaturated network, have %v", a.Feasibility)
	}
	eps := Eps(spec, solver)
	if eps <= 0 {
		return Bounds{}, fmt.Errorf("core: unsaturated network reported zero slack")
	}
	n := float64(spec.N())
	d := float64(spec.Delta())
	fstar := float64(a.FStar)
	y := (5*n*fstar/eps + 3*n) * d * d
	return Bounds{
		N:           spec.N(),
		Delta:       spec.Delta(),
		FStar:       a.FStar,
		Eps:         eps,
		GrowthBound: 5 * n * d * d,
		Y:           y,
		StateBound:  n*y*y + 5*n*d*d,
	}, nil
}

// GeneralizedGrowthBound evaluates Property 3's bound on P_{t+1} − P_t
// for an unsaturated R-generalized network:
//
//	2k(R+out_max)out_max + Δ²(3n − 2k) + 4kΔR, k = |S ∪ D|.
func GeneralizedGrowthBound(spec *Spec) float64 {
	n := float64(spec.N())
	d := float64(spec.Delta())
	k := float64(spec.Terminals())
	r := float64(spec.MaxRetention())
	outMax := float64(spec.MaxOut())
	return 2*k*(r+outMax)*outMax + d*d*(3*n-2*k) + 4*k*d*r
}

// GeneralizedThreshold evaluates the terminal-queue threshold of
// Property 6's first case: once some generalized node x holds
//
//	q_t(x) > (Δ²(3n − 2k) + 7kRΔ)/ε + k(R + out_max)·out_max
//
// packets, the negative drift of δ_t kicks in (k = |S ∪ D|). eps must be
// the positive slack of an unsaturated network (see Eps).
func GeneralizedThreshold(spec *Spec, eps float64) float64 {
	if eps <= 0 {
		panic("core: GeneralizedThreshold needs positive slack")
	}
	n := float64(spec.N())
	d := float64(spec.Delta())
	k := float64(spec.Terminals())
	r := float64(spec.MaxRetention())
	outMax := float64(spec.MaxOut())
	return (d*d*(3*n-2*k)+7*k*r*d)/eps + k*(r+outMax)*outMax
}
