package core

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"repro/internal/graph"
	"repro/internal/shard"
)

// This file implements the partition-parallel step path. The contract is
// strict: a sharded engine produces *byte-identical* output to the serial
// Step at any shard and worker count. The discipline that buys this:
//
//   - Parallel phases only ever touch per-shard state: each shard writes
//     its own Q/snapQ/declared/activeMark spans and its own scratch, so
//     phases are race-free by ownership, not by locking.
//   - Everything order-sensitive stays serial, in the exact order the
//     serial engine uses: the ArrivalProcess call, Declare calls
//     (ascending node id), EdgeAlive calls (ascending edge id), the
//     validation/collision scan, every LossModel draw (serial send
//     order), and Extract calls (ascending sink id).
//   - Per-shard plan batches are merged back into the serial engine's
//     global send order — concatenation in shard order when the
//     partition is ordered, a k-way merge by sending node otherwise —
//     before any order-sensitive phase consumes them.
//
// Dirty-shard tracking is the other half of the design: a shard whose
// queues did not change since its last snapshot refresh keeps valid
// snapQ/declared mirrors and valid cached stats partials, so the per-step
// O(n) sweeps of the serial engine shrink to O(changed region). On
// localized workloads (traffic confined to a small part of a large
// topology — the regime the paper's locality argument is about) this is
// where the throughput comes from, independent of core count.
//
// stepSharded deliberately mirrors Step phase by phase instead of
// sharing its body; the replay-identity tests in sharded_test.go hold
// the two paths in lockstep.

// ShardableRouter is a Router that can plan on behalf of a single shard.
// Implementations must guarantee that, for a snapshot whose Active list
// is restricted to one shard's nodes, the clone emits exactly the sends
// the parent router would emit for those nodes — grouped per sending
// node, nodes in ascending order — so that merging per-shard batches by
// sending node reconstructs the serial plan. Localized protocols satisfy
// this for free; centralized routers (max-flow, global gradient) do not
// and should not implement the interface.
type ShardableRouter interface {
	Router
	// ShardClone returns an independent Router instance for shard s of k
	// (per-shard scratch, no shared mutable state). It returns nil when
	// this configuration cannot be sharded deterministically — e.g. LGG
	// with random tie-breaking, whose tie-key stream is consumed in
	// global plan order and so cannot be split.
	ShardClone(s, k int) Router
}

// ShardClone implements ShardableRouter. Each clone is a fresh LGG with
// its own scratch; TieRandom is refused (nil) because its key stream is
// drawn in global plan order.
func (l *LGG) ShardClone(int, int) Router {
	if l.Tie == TieRandom {
		return nil
	}
	return &LGG{Tie: l.Tie, MinGradient: l.MinGradient}
}

// SourceOnlyArrivals marks arrival processes whose injections land only
// on nodes with spec.In[v] > 0 (entries elsewhere stay zero). The sharded
// injection scan then visits each shard's source nodes instead of its
// whole node set — the difference between O(|S|) and O(n) per step on a
// million-node topology with a handful of sources.
type SourceOnlyArrivals interface {
	ArrivalProcess
	// SourcesOnly reports whether the guarantee holds for this instance
	// (wrappers delegate to their inner process).
	SourcesOnly() bool
}

// SourcesOnly implements SourceOnlyArrivals: classical sources inject
// exactly at the spec's source nodes.
func (ExactArrivals) SourcesOnly() bool { return true }

// Phase codes dispatched to shard workers.
const (
	phasePrep  = iota // apply injections, refresh snapshot mirrors
	phasePlan         // run the shard's router clone
	phaseStats        // recompute dirty stats partials
)

// shardState is one shard's slice of the engine: its node set, its
// router clone, its active-list bookkeeping, and the cached partials that
// let clean shards skip work. Only its owning worker touches it during
// parallel phases.
type shardState struct {
	id     int
	nodes  []graph.NodeID // ascending, shared with the Partition
	lo, hi graph.NodeID   // node-id span when contig
	contig bool
	// sources are the shard's nodes with In > 0, for SourceOnlyArrivals.
	sources []graph.NodeID
	router  Router
	snap    Snapshot // per-shard planning view, rebuilt each step

	// Per-shard mirror of the engine's active bookkeeping. active is
	// always non-nil: a nil Active in the per-shard snapshot would make
	// the router scan every node of the topology.
	active      []graph.NodeID
	activeSpare []graph.NodeID
	newly       []graph.NodeID

	injDirty []graph.NodeID // inj entries this shard made nonzero
	sends    []Send         // this step's plan batch

	// snapDirty: queues changed since the last snapQ/declared refresh.
	// statDirty: queues changed since the stats partials were computed.
	// Two flags because they are consumed in different phases of the
	// step (snapshot at phase prep, stats at phase stats).
	snapDirty bool
	statDirty bool

	// Cached stats partials, valid while statDirty is false.
	pot     int64
	potOver bool
	queued  int64
	maxq    int64
	// injected is this step's injection partial.
	injected int64

	// panicVal holds a panic recovered on a worker goroutine, re-raised
	// on the coordinator so sweep-level panic isolation keeps working.
	panicVal any
}

// sharding is the engine's shard-mode state.
type sharding struct {
	part      *shard.Partition
	states    []*shardState
	retention []graph.NodeID // nodes with R > 0, ascending
	srcOnly   bool
	workers   int
	cmds      []chan int // one per worker; empty means inline execution
	wg        sync.WaitGroup
	mergeIdx  []int
}

// EnableSharding switches the engine to the partition-parallel step path.
// The partition must cover the engine's topology and the router must
// implement ShardableRouter (and agree to be sharded). workers bounds
// intra-step parallelism: ≤ 0 means one worker per available CPU, 1 runs
// every shard inline on the calling goroutine (no goroutines are
// created — the right choice inside sweeps that already parallelize
// across runs). Callers that pass workers > 1 own the cleanup: call
// DisableSharding when done with the engine, or its worker goroutines
// outlive it.
//
// Enabling mid-run is legal; the first sharded step refreshes every
// mirror from the live queue vector.
func (e *Engine) EnableSharding(p *shard.Partition, workers int) error {
	if p == nil {
		return fmt.Errorf("core: nil partition")
	}
	if p.NumNodes() != e.Spec.N() {
		return fmt.Errorf("core: partition covers %d nodes, engine has %d", p.NumNodes(), e.Spec.N())
	}
	sr, ok := e.Router.(ShardableRouter)
	if !ok {
		return fmt.Errorf("core: router %s is not shardable", e.Router.Name())
	}
	e.DisableSharding()

	sh := &sharding{part: p, mergeIdx: make([]int, p.K)}
	if so, ok := e.Arrivals.(SourceOnlyArrivals); ok && so.SourcesOnly() {
		sh.srcOnly = true
	}
	for v, r := range e.Spec.R {
		if r > 0 {
			sh.retention = append(sh.retention, graph.NodeID(v))
		}
	}
	for s := 0; s < p.K; s++ {
		clone := sr.ShardClone(s, p.K)
		if clone == nil {
			return fmt.Errorf("core: router %s refuses to shard (non-splittable state)", e.Router.Name())
		}
		st := &shardState{id: s, nodes: p.Nodes(s), router: clone}
		st.lo, st.hi, st.contig = p.Span(s)
		st.active = make([]graph.NodeID, 0, len(st.nodes))
		st.activeSpare = make([]graph.NodeID, 0, len(st.nodes))
		for _, v := range st.nodes {
			if e.Spec.In[v] > 0 {
				st.sources = append(st.sources, v)
			}
			pos := e.Q[v] > 0
			e.activeMark[v] = pos
			if pos {
				st.active = append(st.active, v)
			}
		}
		st.snapDirty, st.statDirty = true, true
		sh.states = append(sh.states, st)
	}
	// Hand pending sparse-injection entries over to the sharded zeroing
	// path, and drop the serial active list (rebuilt on disable).
	for _, v := range e.injDirty {
		e.inj[v] = 0
	}
	e.injDirty = e.injDirty[:0]
	e.active = e.active[:0]
	e.newlyActive = e.newlyActive[:0]

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.K {
		workers = p.K
	}
	sh.workers = workers
	if workers > 1 {
		sh.cmds = make([]chan int, workers)
		for w := range sh.cmds {
			sh.cmds[w] = make(chan int)
			go sh.worker(e, w)
		}
	}
	e.sh = sh
	return nil
}

// DisableSharding returns the engine to the serial step path, stopping
// any worker goroutines and rebuilding the serial active list from the
// live queues. A no-op on a serial engine.
func (e *Engine) DisableSharding() {
	sh := e.sh
	if sh == nil {
		return
	}
	for _, c := range sh.cmds {
		close(c)
	}
	for _, s := range sh.states {
		for _, v := range s.injDirty {
			e.inj[v] = 0
		}
	}
	e.active = e.active[:0]
	e.newlyActive = e.newlyActive[:0]
	for v := range e.Q {
		pos := e.Q[v] > 0
		e.activeMark[v] = pos
		if pos {
			e.active = append(e.active, graph.NodeID(v))
		}
	}
	e.sh = nil
}

// Sharding reports the active shard and worker counts (0, 0 when serial).
func (e *Engine) Sharding() (shards, workers int) {
	if e.sh == nil {
		return 0, 0
	}
	return e.sh.part.K, e.sh.workers
}

// reset re-derives every per-shard mirror from the live queue vector
// (SetQueues already zeroed inj/sentBy and refreshed activeMark).
func (sh *sharding) reset(e *Engine) {
	for _, s := range sh.states {
		s.injDirty = s.injDirty[:0]
		s.newly = s.newly[:0]
		s.sends = s.sends[:0]
		s.injected = 0
		s.snapDirty, s.statDirty = true, true
		s.active = s.active[:0]
		for _, v := range s.nodes {
			if e.Q[v] > 0 {
				s.active = append(s.active, v)
			}
		}
	}
}

// worker is the body of one persistent shard worker: it owns shards
// w, w+workers, w+2·workers, … and executes the phase code sent on its
// channel, recovering panics into the shard so the coordinator can
// re-raise them on its own goroutine.
func (sh *sharding) worker(e *Engine, w int) {
	for code := range sh.cmds[w] {
		for si := w; si < len(sh.states); si += sh.workers {
			sh.runRecover(e, sh.states[si], code)
		}
		sh.wg.Done()
	}
}

func (sh *sharding) runRecover(e *Engine, s *shardState, code int) {
	defer func() {
		if r := recover(); r != nil {
			s.panicVal = r
		}
	}()
	sh.run(e, s, code)
}

func (sh *sharding) run(e *Engine, s *shardState, code int) {
	switch code {
	case phasePrep:
		e.shardPrep(s)
	case phasePlan:
		e.shardPlan(s)
	case phaseStats:
		e.shardStats(s)
	}
}

// runPhase executes one phase over every shard: inline on the calling
// goroutine with a single worker (panics propagate naturally), fanned
// out to the persistent workers otherwise (panics are re-raised here,
// lowest shard id first, after all workers finish the phase).
func (sh *sharding) runPhase(e *Engine, code int) {
	if len(sh.cmds) == 0 {
		for _, s := range sh.states {
			sh.run(e, s, code)
		}
		return
	}
	sh.wg.Add(len(sh.cmds))
	for _, c := range sh.cmds {
		c <- code
	}
	sh.wg.Wait()
	for _, s := range sh.states {
		if s.panicVal != nil {
			pv := s.panicVal
			for _, t := range sh.states {
				t.panicVal = nil
			}
			panic(pv)
		}
	}
}

// shardPrep applies this shard's injections and, if its queues changed
// since the last refresh, compacts the active list and re-copies the
// shard's snapQ/declared spans. Clean shards return after the source
// scan: their mirrors still equal the live queues by the dirty-flag
// invariant.
func (e *Engine) shardPrep(s *shardState) {
	s.injected = 0
	scan := s.nodes
	if e.sh.srcOnly {
		scan = s.sources
	}
	for _, v := range scan {
		x := e.inj[v]
		if x == 0 {
			continue
		}
		if x < 0 {
			panic(fmt.Sprintf("core: arrival process injected %d < 0 at node %d", x, v))
		}
		e.Q[v] += x
		s.injected += x
		s.injDirty = append(s.injDirty, v)
		if !e.activeMark[v] {
			e.activeMark[v] = true
			s.newly = append(s.newly, v)
		}
		s.snapDirty = true
		s.statDirty = true
	}
	if !s.snapDirty {
		return
	}
	s.compact(e.Q, e.activeMark)
	// Refresh the snapshot mirrors. declared gets the truthful value
	// here; the serial retention pass overwrites R-generalized nodes
	// before planning, every step, which is what keeps clean-shard
	// mirrors valid.
	if s.contig {
		span := e.Q[s.lo : s.hi+1]
		copy(e.snapQ[s.lo:s.hi+1], span)
		copy(e.declared[s.lo:s.hi+1], span)
	} else {
		for _, v := range s.nodes {
			q := e.Q[v]
			e.snapQ[v] = q
			e.declared[v] = q
		}
	}
	s.snapDirty = false
}

// compact is the per-shard twin of Engine.compactActive.
func (s *shardState) compact(q []int64, mark []bool) {
	if len(s.newly) > 1 {
		slices.Sort(s.newly)
	}
	dst := s.activeSpare[:0]
	a, b := s.active, s.newly
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v graph.NodeID
		if j >= len(b) || (i < len(a) && a[i] < b[j]) {
			v = a[i]
			i++
		} else {
			v = b[j]
			j++
		}
		if q[v] > 0 {
			dst = append(dst, v)
		} else {
			mark[v] = false
		}
	}
	s.activeSpare = s.active
	s.active = dst
	s.newly = s.newly[:0]
}

// shardPlan runs the shard's router clone over the shard's active nodes
// against the global snapshot.
func (e *Engine) shardPlan(s *shardState) {
	s.snap = Snapshot{Spec: e.Spec, T: e.T, Q: e.snapQ, Declared: e.declared,
		Alive: e.lastSnap.Alive, Active: s.active}
	s.sends = s.router.Plan(&s.snap, s.sends[:0])
}

// shardStats recomputes the shard's potential/backlog/max-queue partials
// when its queues changed; clean shards keep their cache.
func (e *Engine) shardStats(s *shardState) {
	if !s.statDirty {
		return
	}
	s.statDirty = false
	var pot, queued, maxq int64
	over := false
	add := func(x int64) {
		queued += x
		if x > maxq {
			maxq = x
		}
		if over {
			return
		}
		if x > maxExactSquare {
			over = true
			return
		}
		sq := x * x
		if pot > math.MaxInt64-sq {
			over = true
			return
		}
		pot += sq
	}
	if s.contig {
		for _, x := range e.Q[s.lo : s.hi+1] {
			add(x)
		}
	} else {
		for _, v := range s.nodes {
			add(e.Q[v])
		}
	}
	if over {
		pot = math.MaxInt64
	}
	s.pot, s.potOver, s.queued, s.maxq = pot, over, queued, maxq
}

// touchShard marks node v's owner dirty after a queue change in a serial
// phase (transmit, extract).
func (e *Engine) touchShard(v graph.NodeID) {
	s := e.sh.states[e.sh.part.Owner[v]]
	s.snapDirty = true
	s.statDirty = true
}

// markActiveShard records a 0→positive transition against the owner
// shard's pending list (the serial-phase twin of Engine.markActive).
func (e *Engine) markActiveShard(v graph.NodeID) {
	if !e.activeMark[v] {
		e.activeMark[v] = true
		s := e.sh.states[e.sh.part.Owner[v]]
		s.newly = append(s.newly, v)
	}
}

// mergeSends rebuilds the serial engine's global plan order from the
// per-shard batches: plain concatenation when the partition's shard node
// ranges ascend (shard order is node order), otherwise a k-way merge on
// the sending node. Each batch is grouped per sender with senders
// ascending (the ShardableRouter contract), and a node plans in exactly
// one shard, so the merge is a permutation-free reconstruction — the
// byte-identity of everything downstream (collision scan, loss draws)
// rides on it.
func (e *Engine) mergeSends() {
	sh := e.sh
	out := e.sends[:0]
	if sh.part.Ordered() {
		for _, s := range sh.states {
			out = append(out, s.sends...)
		}
		e.sends = out
		return
	}
	idx := sh.mergeIdx
	total := 0
	for si, s := range sh.states {
		idx[si] = 0
		total += len(s.sends)
	}
	for len(out) < total {
		best := -1
		var bestFrom graph.NodeID
		for si, s := range sh.states {
			if idx[si] < len(s.sends) {
				if f := s.sends[idx[si]].From; best == -1 || f < bestFrom {
					best, bestFrom = si, f
				}
			}
		}
		s := sh.states[best]
		i := idx[best]
		for i < len(s.sends) && s.sends[i].From == bestFrom {
			out = append(out, s.sends[i])
			i++
		}
		idx[best] = i
	}
	e.sends = out
}

// stepSharded is the partition-parallel twin of Step. Phase numbering
// matches Step's comments; the replay-identity tests assert the two
// paths agree byte for byte.
func (e *Engine) stepSharded() StepStats {
	sh := e.sh
	spec := e.Spec
	g := spec.G
	st := StepStats{T: e.T}

	// Phase 1: injection inputs (serial — the process may be stateful).
	for _, s := range sh.states {
		for _, v := range s.injDirty {
			e.inj[v] = 0
		}
		s.injDirty = s.injDirty[:0]
	}
	e.Arrivals.Injections(e.T, spec, e.inj)

	// Phase 1b/2 (parallel): apply injections, refresh dirty shards'
	// active lists and snapshot mirrors.
	sh.runPhase(e, phasePrep)
	for _, s := range sh.states {
		st.Injected += s.injected
	}

	// Retention declarations stay serial in ascending node order so a
	// stateful Declare policy sees the serial engine's call sequence.
	// Both branches write: that restores the declared mirror every step,
	// which is what lets clean shards skip their declared copy.
	for _, v := range sh.retention {
		q, r := e.snapQ[v], spec.R[v]
		if q <= r {
			d := e.Declare.Declare(e.T, v, q, r)
			if d < 0 {
				d = 0
			}
			if d > r {
				d = r
			}
			e.declared[v] = d
		} else {
			e.declared[v] = q
		}
	}
	var alive []bool
	if e.Topology != nil {
		if e.alive == nil {
			e.alive = make([]bool, g.NumEdges())
		}
		alive = e.alive
		for ed := range alive {
			alive[ed] = e.Topology.EdgeAlive(e.T, graph.EdgeID(ed))
		}
	}
	// Observers and interference filters get no active list: per-shard
	// lists are the truth in this mode, and nil is a legal "no
	// information" value by the Snapshot contract.
	e.lastSnap = Snapshot{Spec: spec, T: e.T, Q: e.snapQ, Declared: e.declared, Alive: alive}

	// Phase 3 (parallel): per-shard planning, then deterministic merge.
	sh.runPhase(e, phasePlan)
	e.mergeSends()
	st.Planned = int64(len(e.sends))

	// Phase 3b: interference filtering.
	if e.Interference != nil {
		kept := e.Interference.Filter(&e.lastSnap, e.sends)
		st.Filtered += int64(len(e.sends) - len(kept))
		e.sends = kept
	}

	// Phase 3c: physical validation, identical to Step.
	marker := e.T + 1
	for _, v := range e.sentDirty {
		e.sentBy[v] = 0
	}
	e.sentDirty = e.sentDirty[:0]
	valid := e.sends[:0]
	for _, s := range e.sends {
		if alive != nil && !alive[s.Edge] {
			st.Filtered++
			continue
		}
		if e.edgeUsed[s.Edge] == marker {
			st.Collisions++
			continue
		}
		if e.sentBy[s.From]+1 > e.snapQ[s.From] {
			st.Violations++
			continue
		}
		e.edgeUsed[s.Edge] = marker
		if e.sentBy[s.From] == 0 {
			e.sentDirty = append(e.sentDirty, s.From)
		}
		e.sentBy[s.From]++
		valid = append(valid, s)
	}
	e.sends = valid

	if e.trace != nil {
		e.trace.Sends = append(e.trace.Sends[:0], e.sends...)
		e.trace.Lost = e.trace.Lost[:0]
		copy(e.trace.Injected, e.inj)
		for v := range e.trace.Extracted {
			e.trace.Extracted[v] = 0
		}
	}

	// Phase 4: transmit (serial — every loss draw happens in serial send
	// order), marking touched shards dirty as queues change.
	for _, s := range e.sends {
		to := s.To(g)
		e.Q[s.From]--
		e.touchShard(s.From)
		st.Sent++
		lost := e.Loss.Lost(e.T, s.Edge, s.From)
		if lost {
			st.Lost++
		} else {
			e.Q[to]++
			e.markActiveShard(to)
			e.touchShard(to)
			st.Arrived++
		}
		if e.trace != nil {
			e.trace.Lost = append(e.trace.Lost, lost)
		}
	}

	// Phase 5: extraction (serial — Extract may be stateful).
	for _, v := range e.sinks {
		out := spec.Out[v]
		q := e.Q[v]
		hi := min64(out, q)
		var lo int64
		if r := spec.R[v]; q > r {
			lo = min64(out, q-r)
		}
		amt := e.Extract.Extract(e.T, v, lo, hi)
		if amt < lo {
			amt = lo
		}
		if amt > hi {
			amt = hi
		}
		if amt > 0 {
			e.Q[v] -= amt
			e.touchShard(v)
		}
		st.Extracted += amt
		if e.trace != nil {
			e.trace.Extracted[v] = amt
		}
	}

	e.T++
	// Phase 6 (parallel): per-shard stats partials, combined in shard
	// order. Sums of non-negative int64 partials are exact, so grouping
	// by shard cannot change the totals; saturation composes because a
	// saturated partial forces a saturated total either way.
	sh.runPhase(e, phaseStats)
	var pot, queued, maxq int64
	over := false
	for _, s := range sh.states {
		queued += s.queued
		if s.maxq > maxq {
			maxq = s.maxq
		}
		if s.potOver {
			over = true
		} else if !over {
			if pot > math.MaxInt64-s.pot {
				over = true
			} else {
				pot += s.pot
			}
		}
	}
	if over {
		pot = math.MaxInt64
	}
	st.Potential, st.Overflowed = pot, over
	st.Queued = queued
	st.MaxQueue = maxq
	if len(e.observers) > 0 {
		e.obsStats = st
		for _, o := range e.observers {
			o.OnStep(st.T, &e.lastSnap, &e.obsStats)
		}
		st = e.obsStats
	}
	return st
}
