package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// This file implements a text codec for whole network specs, extending
// the graph format of internal/graph with role directives:
//
//	# comment
//	nodes <n>
//	edge <u> <v> [count]
//	source <v> <in>
//	sink <v> <out>
//	retain <v> <R>
//
// cmd/lggflow and cmd/lggsim accept files in this format.
//
// The decoder enforces sanity limits (≤ 4M nodes, ≤ 1M copies per edge
// line) so hostile inputs cannot trigger unbounded allocation.

const (
	maxDecodeNodes = 1 << 22
	maxDecodeMulti = 1 << 20
)

// EncodeSpec writes s in the text format.
func EncodeSpec(w io.Writer, s *Spec) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "nodes %d\n", s.N())
	for _, e := range s.G.Edges() {
		fmt.Fprintf(bw, "edge %d %d\n", e.U, e.V)
	}
	for v := 0; v < s.N(); v++ {
		if s.In[v] > 0 {
			fmt.Fprintf(bw, "source %d %d\n", v, s.In[v])
		}
		if s.Out[v] > 0 {
			fmt.Fprintf(bw, "sink %d %d\n", v, s.Out[v])
		}
		if s.R[v] > 0 {
			fmt.Fprintf(bw, "retain %d %d\n", v, s.R[v])
		}
	}
	return bw.Flush()
}

// DecodeSpec parses the text format produced by EncodeSpec. The result is
// validated before being returned.
func DecodeSpec(r io.Reader) (*Spec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *graph.Multigraph
	var spec *Spec
	line := 0
	need := func(fields []string, want int) error {
		if len(fields) != want {
			return fmt.Errorf("core: line %d: %s wants %d arguments", line, fields[0], want-1)
		}
		return nil
	}
	parseInt := func(s string) (int64, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("core: line %d: bad number %q", line, s)
		}
		return v, nil
	}
	nodeOf := func(s string) (graph.NodeID, error) {
		v, err := parseInt(s)
		if err != nil {
			return 0, err
		}
		if g == nil {
			return 0, fmt.Errorf("core: line %d: directive before nodes", line)
		}
		if v < 0 || v >= int64(g.NumNodes()) {
			return 0, fmt.Errorf("core: line %d: node %d out of range", line, v)
		}
		return graph.NodeID(v), nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "nodes":
			if g != nil {
				return nil, fmt.Errorf("core: line %d: duplicate nodes directive", line)
			}
			if err := need(fields, 2); err != nil {
				return nil, err
			}
			n, err := parseInt(fields[1])
			if err != nil || n < 0 || n > maxDecodeNodes {
				return nil, fmt.Errorf("core: line %d: bad node count %q", line, fields[1])
			}
			g = graph.New(int(n))
			spec = NewSpec(g)
		case "edge":
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("core: line %d: edge wants 2 or 3 arguments", line)
			}
			u, err := nodeOf(fields[1])
			if err != nil {
				return nil, err
			}
			v, err := nodeOf(fields[2])
			if err != nil {
				return nil, err
			}
			if u == v {
				return nil, fmt.Errorf("core: line %d: self-loop at %d", line, u)
			}
			count := int64(1)
			if len(fields) == 4 {
				count, err = parseInt(fields[3])
				if err != nil || count < 1 || count > maxDecodeMulti {
					return nil, fmt.Errorf("core: line %d: bad count %q", line, fields[3])
				}
			}
			g.AddEdges(u, v, int(count))
		case "source", "sink", "retain":
			if err := need(fields, 3); err != nil {
				return nil, err
			}
			v, err := nodeOf(fields[1])
			if err != nil {
				return nil, err
			}
			x, err := parseInt(fields[2])
			if err != nil {
				return nil, err
			}
			switch fields[0] {
			case "source":
				if x <= 0 {
					return nil, fmt.Errorf("core: line %d: source capacity must be positive", line)
				}
				spec.In[v] = x
			case "sink":
				if x <= 0 {
					return nil, fmt.Errorf("core: line %d: sink capacity must be positive", line)
				}
				spec.Out[v] = x
			case "retain":
				if x < 0 {
					return nil, fmt.Errorf("core: line %d: retention must be non-negative", line)
				}
				spec.R[v] = x
			}
		default:
			return nil, fmt.Errorf("core: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if spec == nil {
		return nil, fmt.Errorf("core: missing nodes directive")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
