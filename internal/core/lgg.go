package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TieBreak selects how LGG orders incident edges whose far endpoints
// declare equal queue lengths. Algorithm 1 leaves the choice open and the
// paper remarks it "has no impact on the system stability"; experiment E3
// verifies that claim empirically.
type TieBreak int

const (
	// TieEdgeOrder breaks ties by ascending edge id (deterministic).
	TieEdgeOrder TieBreak = iota
	// TiePeerOrder breaks ties by ascending neighbour id, then edge id.
	TiePeerOrder
	// TieRandom shuffles tied candidates with a seeded stream.
	TieRandom
)

// String implements fmt.Stringer.
func (tb TieBreak) String() string {
	switch tb {
	case TieEdgeOrder:
		return "edge-order"
	case TiePeerOrder:
		return "peer-order"
	case TieRandom:
		return "random"
	}
	return "tie?"
}

// LGG is the Local Greedy Gradient protocol (Algorithm 1). At each step
// every node u orders its incident links by the neighbour's declared
// queue length, then transmits one packet over each link whose far end
// declares a strictly smaller queue than q_t(u), stopping after q_t(u)
// transmissions. The protocol is localized (each decision uses only the
// neighbours' declared queues) and greedy (no history).
//
// An LGG value is not safe for concurrent use; give each goroutine its
// own instance (they are cheap).
type LGG struct {
	Tie TieBreak
	// MinGradient is the smallest queue difference that triggers a send
	// (Algorithm 1's strict inequality is MinGradient = 1, the default;
	// 0 is normalized to 1). Larger thresholds are an ablation of the
	// paper's design choice: they damp the last-packet ping-pong between
	// near-equal queues at the cost of retaining MinGradient−1 packets
	// per downhill link (experiment E26).
	MinGradient int64

	// rnd feeds TieRandom keys. A literal LGG{Tie: TieRandom} has no
	// stream; Plan lazily seeds a deterministic fallback so such a value
	// is usable (and reproducible) instead of panicking. Use
	// NewLGGRandomTies to pick the seed explicitly.
	rnd *rng.Source
	// scratch, reused across steps so steady-state planning is
	// allocation-free.
	cand   []candidate
	sorter candSorter
}

// fallbackTieSeed seeds the lazily-created TieRandom stream of an LGG
// constructed literally without NewLGGRandomTies.
const fallbackTieSeed = 0x4c4747 // "LGG"

type candidate struct {
	edge graph.EdgeID
	peer graph.NodeID
	q    int64
	key  uint64 // random tie key when TieRandom
}

// candLess is the single ordering used by every tie rule: ascending
// declared queue first, then the rule's own keys. The trailing edge-id
// comparison makes the order total in all three modes, so every
// comparison sort produces the same (unique) sorted sequence — the
// byte-identical-output contract does not depend on the sort algorithm.
func candLess(a, b *candidate, tie TieBreak) bool {
	if a.q != b.q {
		return a.q < b.q
	}
	switch tie {
	case TiePeerOrder:
		if a.peer != b.peer {
			return a.peer < b.peer
		}
	case TieRandom:
		if a.key != b.key {
			return a.key < b.key
		}
	}
	return a.edge < b.edge
}

// candSorter is a pre-allocated sort.Interface over the candidate scratch,
// used as the fallback for degrees too large for insertion sort. It
// captures nothing, so sort.Sort(&l.sorter) does not allocate.
type candSorter struct {
	cand []candidate
	tie  TieBreak
}

func (s *candSorter) Len() int           { return len(s.cand) }
func (s *candSorter) Swap(i, j int)      { s.cand[i], s.cand[j] = s.cand[j], s.cand[i] }
func (s *candSorter) Less(i, j int) bool { return candLess(&s.cand[i], &s.cand[j], s.tie) }

// insertionSortMax is the largest candidate count sorted in place by
// insertion sort; beyond it Plan falls back to sort.Sort. Node degrees in
// the experiment topologies are far below it, so the fallback only runs
// on unusually dense nodes.
const insertionSortMax = 32

// sortCand orders the candidate scratch by candLess.
func (l *LGG) sortCand(cand []candidate) {
	if len(cand) <= insertionSortMax {
		for i := 1; i < len(cand); i++ {
			c := cand[i]
			j := i - 1
			for j >= 0 && candLess(&c, &cand[j], l.Tie) {
				cand[j+1] = cand[j]
				j--
			}
			cand[j+1] = c
		}
		return
	}
	l.sorter.cand = cand
	l.sorter.tie = l.Tie
	sort.Sort(&l.sorter)
	l.sorter.cand = nil
}

// NewLGG returns the canonical protocol with deterministic edge-order tie
// breaking.
func NewLGG() *LGG { return &LGG{Tie: TieEdgeOrder} }

// NewLGGRandomTies returns an LGG whose tie-breaking is randomized with
// the given stream.
func NewLGGRandomTies(r *rng.Source) *LGG { return &LGG{Tie: TieRandom, rnd: r} }

// Name implements Router.
func (l *LGG) Name() string {
	name := "lgg"
	if l.Tie != TieEdgeOrder {
		name += "/" + l.Tie.String()
	}
	if l.MinGradient > 1 {
		name += fmt.Sprintf("/θ=%d", l.MinGradient)
	}
	return name
}

// Plan implements Router. It is a faithful transcription of Algorithm 1
// run at every node on the common snapshot. When the snapshot carries an
// active-node list the scan is restricted to it (the list is sorted and
// contains every node with a positive queue, so the planned sends are
// identical to a full scan); steady-state planning performs no
// allocations once the scratch buffers have grown to the working size.
func (l *LGG) Plan(sn *Snapshot, buf []Send) []Send {
	g := sn.Spec.G
	theta := l.MinGradient
	if theta < 1 {
		theta = 1
	}
	if l.Tie == TieRandom && l.rnd == nil {
		l.rnd = rng.New(fallbackTieSeed)
	}
	off, flat := g.IncidenceCSR()
	if sn.Active != nil {
		for _, u := range sn.Active {
			buf = l.planNode(sn, u, flat[off[u]:off[u+1]], theta, buf)
		}
		return buf
	}
	for v := 0; v < g.NumNodes(); v++ {
		u := graph.NodeID(v)
		buf = l.planNode(sn, u, flat[off[v]:off[v+1]], theta, buf)
	}
	return buf
}

// planNode runs Algorithm 1 at a single node: filter the incident edges
// to downhill candidates (gradient ≥ θ), order them (list(u)), transmit
// along the first q_t(u) of them.
func (l *LGG) planNode(sn *Snapshot, u graph.NodeID, inc []graph.Incidence, theta int64, buf []Send) []Send {
	budget := sn.Q[u] // u knows its own true queue
	if budget <= 0 {
		return buf
	}
	declared := sn.Declared
	alive := sn.Alive
	cand := l.cand[:0]
	for i := range inc {
		in := &inc[i]
		if alive != nil && !alive[in.Edge] {
			continue
		}
		dq := declared[in.Peer]
		if budget-dq >= theta {
			c := candidate{edge: in.Edge, peer: in.Peer, q: dq}
			if l.Tie == TieRandom {
				c.key = l.rnd.Uint64()
			}
			cand = append(cand, c)
		}
	}
	l.cand = cand // retain grown capacity for the next node
	if len(cand) == 0 {
		return buf
	}
	l.sortCand(cand)
	if budget > int64(len(cand)) {
		budget = int64(len(cand))
	}
	for i := int64(0); i < budget; i++ {
		buf = append(buf, Send{Edge: cand[i].edge, From: u})
	}
	return buf
}
