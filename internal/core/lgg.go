package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TieBreak selects how LGG orders incident edges whose far endpoints
// declare equal queue lengths. Algorithm 1 leaves the choice open and the
// paper remarks it "has no impact on the system stability"; experiment E3
// verifies that claim empirically.
type TieBreak int

const (
	// TieEdgeOrder breaks ties by ascending edge id (deterministic).
	TieEdgeOrder TieBreak = iota
	// TiePeerOrder breaks ties by ascending neighbour id, then edge id.
	TiePeerOrder
	// TieRandom shuffles tied candidates with a seeded stream.
	TieRandom
)

// String implements fmt.Stringer.
func (tb TieBreak) String() string {
	switch tb {
	case TieEdgeOrder:
		return "edge-order"
	case TiePeerOrder:
		return "peer-order"
	case TieRandom:
		return "random"
	}
	return "tie?"
}

// LGG is the Local Greedy Gradient protocol (Algorithm 1). At each step
// every node u orders its incident links by the neighbour's declared
// queue length, then transmits one packet over each link whose far end
// declares a strictly smaller queue than q_t(u), stopping after q_t(u)
// transmissions. The protocol is localized (each decision uses only the
// neighbours' declared queues) and greedy (no history).
//
// An LGG value is not safe for concurrent use; give each goroutine its
// own instance (they are cheap).
type LGG struct {
	Tie TieBreak
	// MinGradient is the smallest queue difference that triggers a send
	// (Algorithm 1's strict inequality is MinGradient = 1, the default;
	// 0 is normalized to 1). Larger thresholds are an ablation of the
	// paper's design choice: they damp the last-packet ping-pong between
	// near-equal queues at the cost of retaining MinGradient−1 packets
	// per downhill link (experiment E26).
	MinGradient int64

	rnd *rng.Source
	// scratch, reused across steps to avoid per-step allocation
	cand []candidate
}

type candidate struct {
	edge graph.EdgeID
	peer graph.NodeID
	q    int64
	key  uint64 // random tie key when TieRandom
}

// NewLGG returns the canonical protocol with deterministic edge-order tie
// breaking.
func NewLGG() *LGG { return &LGG{Tie: TieEdgeOrder} }

// NewLGGRandomTies returns an LGG whose tie-breaking is randomized with
// the given stream.
func NewLGGRandomTies(r *rng.Source) *LGG { return &LGG{Tie: TieRandom, rnd: r} }

// Name implements Router.
func (l *LGG) Name() string {
	name := "lgg"
	if l.Tie != TieEdgeOrder {
		name += "/" + l.Tie.String()
	}
	if l.MinGradient > 1 {
		name += fmt.Sprintf("/θ=%d", l.MinGradient)
	}
	return name
}

// Plan implements Router. It is a faithful transcription of Algorithm 1
// run at every node on the common snapshot.
func (l *LGG) Plan(sn *Snapshot, buf []Send) []Send {
	g := sn.Spec.G
	for v := 0; v < g.NumNodes(); v++ {
		u := graph.NodeID(v)
		budget := sn.Q[u] // u knows its own true queue
		if budget <= 0 {
			continue
		}
		theta := l.MinGradient
		if theta < 1 {
			theta = 1
		}
		// list(u): incident edges ordered by the neighbour's declared
		// queue, filtered to downhill candidates (gradient ≥ θ).
		l.cand = l.cand[:0]
		for _, in := range g.Incident(u) {
			if !sn.EdgeAlive(in.Edge) {
				continue
			}
			dq := sn.Declared[in.Peer]
			if sn.Q[u]-dq >= theta {
				c := candidate{edge: in.Edge, peer: in.Peer, q: dq}
				if l.Tie == TieRandom {
					c.key = l.rnd.Uint64()
				}
				l.cand = append(l.cand, c)
			}
		}
		if len(l.cand) == 0 {
			continue
		}
		cand := l.cand
		switch l.Tie {
		case TieEdgeOrder:
			sort.Slice(cand, func(i, j int) bool {
				if cand[i].q != cand[j].q {
					return cand[i].q < cand[j].q
				}
				return cand[i].edge < cand[j].edge
			})
		case TiePeerOrder:
			sort.Slice(cand, func(i, j int) bool {
				if cand[i].q != cand[j].q {
					return cand[i].q < cand[j].q
				}
				if cand[i].peer != cand[j].peer {
					return cand[i].peer < cand[j].peer
				}
				return cand[i].edge < cand[j].edge
			})
		case TieRandom:
			sort.Slice(cand, func(i, j int) bool {
				if cand[i].q != cand[j].q {
					return cand[i].q < cand[j].q
				}
				return cand[i].key < cand[j].key
			})
		}
		for _, c := range cand {
			if budget == 0 {
				break
			}
			buf = append(buf, Send{Edge: c.edge, From: u})
			budget--
		}
	}
	return buf
}
