package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// These tests document WHY Conjecture 1 resists the obvious proof: the
// intuitive coupling argument would show that injecting fewer packets
// keeps every queue pointwise smaller forever. That pointwise domination
// is FALSE for LGG — removing a packet can redirect another packet and
// make some queue strictly larger than in the full run. The conjecture
// (bounded ⇒ bounded) may still hold (experiment E11 finds no
// counterexample), but not by naive monotonicity.

// stepPair advances two engines and reports whether q_B ≤ q_A pointwise.
func dominatedPointwise(qa, qb []int64) bool {
	for i := range qa {
		if qb[i] > qa[i] {
			return false
		}
	}
	return true
}

// TestPointwiseDominationFails searches small random networks for a step
// where the thinned run's queue exceeds the full run's queue at some
// node. Finding one is expected and demonstrates the non-monotonicity.
func TestPointwiseDominationFails(t *testing.T) {
	found := false
search:
	for seed := uint64(0); seed < 40 && !found; seed++ {
		r := rng.New(seed)
		n := 6
		g := graph.RandomMultigraph(n, n+4, r)
		spec := NewSpec(g).SetSource(0, 2).SetSink(graph.NodeID(n-1), 2)

		full := NewEngine(spec, NewLGG())
		thin := NewEngine(spec, NewLGG())
		// The dominated run drops the source's second packet on odd steps.
		thin.Arrivals = halfArrivals{}

		for step := 0; step < 200; step++ {
			full.Step()
			thin.Step()
			if !dominatedPointwise(full.Q, thin.Q) {
				found = true
				continue search
			}
		}
	}
	if !found {
		t.Fatal("expected to find a pointwise-domination violation — " +
			"if LGG were pointwise monotone, Conjecture 1 would be a one-line proof")
	}
}

// halfArrivals injects in(v) on even steps and in(v)−1 on odd steps — a
// strictly dominated arrival sequence.
type halfArrivals struct{}

func (halfArrivals) Name() string { return "half" }
func (halfArrivals) Injections(t int64, spec *Spec, inj []int64) {
	for v, in := range spec.In {
		if in > 0 {
			inj[v] = in
			if t%2 == 1 && inj[v] > 0 {
				inj[v]--
			}
		}
	}
}

// TestTotalBacklogCanAlsoCross shows the stronger fact that even the
// TOTAL backlog of a dominated run can exceed the full run's at some
// instant (extraction happens at min{out, q}: a fuller sink drains more).
func TestTotalBacklogCanAlsoCross(t *testing.T) {
	found := false
	for seed := uint64(0); seed < 60 && !found; seed++ {
		r := rng.New(seed)
		n := 6
		g := graph.RandomMultigraph(n, n+4, r)
		spec := NewSpec(g).SetSource(0, 2).SetSink(graph.NodeID(n-1), 1)
		full := NewEngine(spec, NewLGG())
		thin := NewEngine(spec, NewLGG())
		thin.Arrivals = halfArrivals{}
		var cumFull, cumThin int64
		for step := 0; step < 300; step++ {
			a := full.Step()
			b := thin.Step()
			cumFull += a.Injected
			cumThin += b.Injected
			if b.Queued > a.Queued {
				found = true
				break
			}
		}
		if cumThin >= cumFull {
			t.Fatal("thinned run injected at least as much — bad test setup")
		}
	}
	if !found {
		t.Skip("no total-backlog crossing found on this seed range (pointwise crossing is the load-bearing fact)")
	}
}

// TestDominatedRunStaysBoundedAnyway pairs with the above: despite the
// pointwise crossings, the dominated run's PEAK state stays within a
// small factor of the full run's — the form of the conjecture that
// matters. (A single workload here; E11 sweeps many.)
func TestDominatedRunStaysBoundedAnyway(t *testing.T) {
	spec := NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 3).SetSink(1, 3)
	full := NewEngine(spec, NewLGG())
	thin := NewEngine(spec, NewLGG())
	thin.Arrivals = halfArrivals{}
	fullTot := full.Run(3000)
	thinTot := thin.Run(3000)
	if thinTot.PeakPotential > 4*fullTot.PeakPotential+100 {
		t.Fatalf("dominated peak %d far exceeds full peak %d",
			thinTot.PeakPotential, fullTot.PeakPotential)
	}
}
