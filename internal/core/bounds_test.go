package core

import (
	"math"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
)

func thetaSpec(paths, length int, in, out int64) *Spec {
	g := graph.ThetaGraph(paths, length)
	return NewSpec(g).SetSource(0, in).SetSink(1, out)
}

func TestSlackTheta(t *testing.T) {
	// 3 disjoint length-2 paths, demand 2, sink 3: every non-trivial cut
	// has value ≥ 3, so the maximal uniform scaling is λ = 1/2.
	s := thetaSpec(3, 2, 2, 3)
	num, den := Slack(s, flow.NewPushRelabel())
	if den != 2 {
		t.Fatalf("den = %d, want arrival rate 2", den)
	}
	if num != 1 {
		t.Fatalf("num = %d, want 1 (λ = 1/2)", num)
	}
}

func TestSlackSaturated(t *testing.T) {
	s := lineSpec(4, 1, 1) // interior edges pin the flow at the rate
	num, _ := Slack(s, flow.NewPushRelabel())
	if num != 0 {
		t.Fatalf("saturated slack num = %d, want 0", num)
	}
}

func TestSlackInfeasible(t *testing.T) {
	s := lineSpec(4, 2, 2)
	num, _ := Slack(s, flow.NewPushRelabel())
	if num >= 0 {
		t.Fatalf("infeasible slack num = %d, want negative", num)
	}
}

func TestEps(t *testing.T) {
	s := thetaSpec(3, 2, 2, 3)
	eps := Eps(s, flow.NewPushRelabel())
	if math.Abs(eps-1.0) > 1e-9 { // λ·in_min = 0.5·2
		t.Fatalf("eps = %v, want 1.0", eps)
	}
	if Eps(lineSpec(4, 1, 1), flow.NewPushRelabel()) != 0 {
		t.Fatal("saturated eps should be 0")
	}
}

func TestComputeBounds(t *testing.T) {
	s := thetaSpec(3, 2, 2, 3) // n=5, Δ=3, f*=3, ε=1
	b, err := ComputeBounds(s, flow.NewPushRelabel())
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 5 || b.Delta != 3 || b.FStar != 3 {
		t.Fatalf("bounds = %+v", b)
	}
	if b.GrowthBound != 5*5*9 {
		t.Fatalf("growth bound = %v, want 225", b.GrowthBound)
	}
	wantY := (5*5*3/1.0 + 3*5) * 9
	if math.Abs(b.Y-wantY) > 1e-9 {
		t.Fatalf("Y = %v, want %v", b.Y, wantY)
	}
	wantState := 5*wantY*wantY + 225
	if math.Abs(b.StateBound-wantState) > 1e-6 {
		t.Fatalf("state bound = %v, want %v", b.StateBound, wantState)
	}
}

func TestComputeBoundsRejectsSaturated(t *testing.T) {
	if _, err := ComputeBounds(lineSpec(4, 1, 1), flow.NewPushRelabel()); err == nil {
		t.Fatal("saturated network accepted")
	}
	if _, err := ComputeBounds(lineSpec(4, 2, 2), flow.NewPushRelabel()); err == nil {
		t.Fatal("infeasible network accepted")
	}
}

func TestGeneralizedGrowthBound(t *testing.T) {
	s := thetaSpec(3, 2, 2, 3)
	s.SetRetention(1, 4)
	// n=5, Δ=3, k=|S∪D|=2, R=4, out_max=3:
	// 2·2·(4+3)·3 + 9·(15−4) + 4·2·3·4 = 84 + 99 + 96 = 279
	if got := GeneralizedGrowthBound(s); got != 279 {
		t.Fatalf("generalized growth bound = %v, want 279", got)
	}
	// With R=0 and distinct terminals it should still dominate 0.
	if GeneralizedGrowthBound(lineSpec(3, 1, 1)) <= 0 {
		t.Fatal("bound must be positive")
	}
}

func TestGeneralizedThreshold(t *testing.T) {
	s := thetaSpec(3, 2, 2, 3)
	s.SetRetention(1, 4)
	// n=5, Δ=3, k=2, R=4, out_max=3, ε=1:
	// (9·(15−4) + 7·2·4·3)/1 + 2·(4+3)·3 = (99+168) + 42 = 309
	if got := GeneralizedThreshold(s, 1); got != 309 {
		t.Fatalf("generalized threshold = %v, want 309", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero slack accepted")
		}
	}()
	GeneralizedThreshold(s, 0)
}

func TestGeneralizedBoundsObservedInRuns(t *testing.T) {
	// Run the lying R-generalized network and check Property 6's
	// threshold is an upper bound on any terminal queue observed in the
	// stable regime (the contrapositive of the decrease property: if
	// terminals exceeded it persistently, the state would be draining).
	s := thetaSpec(3, 2, 2, 3)
	for v := range s.R {
		if s.In[v] > 0 || s.Out[v] > 0 {
			s.R[v] = 4
		}
	}
	eps := Eps(s, flow.NewPushRelabel())
	if eps <= 0 {
		t.Fatal("expected slack")
	}
	threshold := GeneralizedThreshold(s, eps)
	e := NewEngine(s, NewLGG())
	e.Declare = DeclareZero{}
	e.Extract = ExtractMin{}
	var maxTerminal int64
	for i := 0; i < 3000; i++ {
		e.Step()
		for v := range s.In {
			if (s.In[v] > 0 || s.Out[v] > 0) && e.Q[v] > maxTerminal {
				maxTerminal = e.Q[v]
			}
		}
	}
	if float64(maxTerminal) > threshold {
		t.Fatalf("terminal queue %d exceeded the Property 6 threshold %v", maxTerminal, threshold)
	}
}

func TestSlackPanicsWithoutArrivals(t *testing.T) {
	s := NewSpec(graph.Line(2))
	s.SetSink(1, 1)
	s.In[0] = 0
	defer func() {
		if recover() == nil {
			t.Fatal("Slack accepted a rate-0 network")
		}
	}()
	Slack(s, flow.NewPushRelabel())
}

func TestBoundsAreRunUpperBounds(t *testing.T) {
	// Lemma 1 in action: run LGG on the unsaturated theta network and
	// check the measured state stays below the theoretical bound (which
	// is astronomically loose — the point is the direction).
	s := thetaSpec(3, 2, 2, 3)
	b, err := ComputeBounds(s, flow.NewPushRelabel())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(s, NewLGG())
	tot := e.Run(2000)
	if float64(tot.PeakPotential) > b.StateBound {
		t.Fatalf("P_t peak %d exceeded Lemma 1 bound %v", tot.PeakPotential, b.StateBound)
	}
	if tot.PeakPotential == 0 {
		t.Fatal("network never held a packet — degenerate run")
	}
}
