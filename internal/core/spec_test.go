package core

import (
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
)

func lineSpec(n int, in, out int64) *Spec {
	s := NewSpec(graph.Line(n))
	s.SetSource(0, in)
	s.SetSink(graph.NodeID(n-1), out)
	return s
}

func TestSpecBuilders(t *testing.T) {
	s := lineSpec(4, 2, 3)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 || s.Delta() != 2 {
		t.Fatalf("n=%d Δ=%d", s.N(), s.Delta())
	}
	if got := s.Sources(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("sources = %v", got)
	}
	if got := s.Sinks(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("sinks = %v", got)
	}
	if s.ArrivalRate() != 2 || s.MaxOut() != 3 || s.MaxRetention() != 0 {
		t.Fatal("rates wrong")
	}
	if s.Terminals() != 2 {
		t.Fatalf("terminals = %d", s.Terminals())
	}
	if !s.IsClassical() {
		t.Fatal("classical spec misreported")
	}
	if !strings.Contains(s.String(), "n=4") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSpecGeneralizedDetection(t *testing.T) {
	s := lineSpec(3, 1, 1)
	s.SetRetention(1, 5)
	if s.IsClassical() {
		t.Fatal("retention should make the spec non-classical")
	}
	s2 := lineSpec(3, 1, 1)
	s2.SetSink(0, 2) // node 0 is both source and sink
	if s2.IsClassical() {
		t.Fatal("dual-role node should make the spec non-classical")
	}
}

func TestSpecValidateErrors(t *testing.T) {
	s := NewSpec(graph.Line(3))
	if err := s.Validate(); err == nil {
		t.Fatal("no sources accepted")
	}
	s.SetSource(0, 1)
	if err := s.Validate(); err == nil {
		t.Fatal("no sinks accepted")
	}
	s.SetSink(2, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.In = s.In[:2]
	if err := s.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSpecSetterPanics(t *testing.T) {
	s := NewSpec(graph.Line(2))
	for i, f := range []func(){
		func() { s.SetSource(0, 0) },
		func() { s.SetSink(1, -1) },
		func() { s.SetRetention(0, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPotentialHelpers(t *testing.T) {
	q := []int64{0, 3, 1, 2}
	if Potential(q) != 14 {
		t.Fatalf("Potential = %d", Potential(q))
	}
	if TotalQueued(q) != 6 {
		t.Fatalf("TotalQueued = %d", TotalQueued(q))
	}
	if MaxQueue(q) != 3 {
		t.Fatalf("MaxQueue = %d", MaxQueue(q))
	}
	if Potential(nil) != 0 || TotalQueued(nil) != 0 || MaxQueue(nil) != 0 {
		t.Fatal("empty helpers nonzero")
	}
}

func TestSpecAnalyze(t *testing.T) {
	a := lineSpec(4, 1, 1).Analyze(flow.NewPushRelabel())
	if a.Feasibility != flow.Saturated {
		t.Fatalf("line(1,1): %v", a.Feasibility)
	}
	a2 := lineSpec(4, 2, 2).Analyze(flow.NewPushRelabel())
	if a2.Feasibility != flow.Infeasible {
		t.Fatalf("line(2,2): %v", a2.Feasibility)
	}
}

func TestSendTo(t *testing.T) {
	g := graph.Line(3)
	s := Send{Edge: 0, From: 0}
	if s.To(g) != 1 {
		t.Fatalf("To = %d", s.To(g))
	}
	s2 := Send{Edge: 0, From: 1}
	if s2.To(g) != 0 {
		t.Fatalf("To = %d", s2.To(g))
	}
}

func TestSnapshotEdgeAlive(t *testing.T) {
	sn := &Snapshot{}
	if !sn.EdgeAlive(0) {
		t.Fatal("nil Alive should mean alive")
	}
	sn.Alive = []bool{false, true}
	if sn.EdgeAlive(0) || !sn.EdgeAlive(1) {
		t.Fatal("alive mask ignored")
	}
}
