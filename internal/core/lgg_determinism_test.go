package core

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// goldenGraph builds a fixed topology whose edge insertion order
// deliberately disagrees with peer order, so the three tie-break modes
// produce three different plans. Edge ids:
//
//	e0 {0,4}  e1 {0,2}  e2,e3 {0,3} parallel  e4 {0,1}
//	e5 {1,2}  e6 {2,3}  e7 {3,4}  e8 {4,5}  e9 {1,5}
func goldenGraph() *graph.Multigraph {
	g := graph.New(6)
	g.AddEdge(0, 4)
	g.AddEdge(0, 2)
	g.AddEdges(0, 3, 2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(1, 5)
	return g
}

// TestLGGTieBreakGolden pins Plan's exact output for all three TieBreak
// modes against golden send sequences captured from the pre-CSR
// sort.Slice implementation. Any change to candidate ordering, tie
// semantics, or random-stream consumption shows up as a diff here — this
// is the byte-identical-output contract for the planning rewrite.
func TestLGGTieBreakGolden(t *testing.T) {
	g := goldenGraph()
	spec := NewSpec(g)
	spec.In[0] = 1
	spec.Out[5] = 1

	q := []int64{3, 1, 1, 1, 1, 0}
	sn := &Snapshot{Spec: spec, Q: q, Declared: q}
	golden := map[TieBreak][]Send{
		TieEdgeOrder: {{Edge: 0, From: 0}, {Edge: 1, From: 0}, {Edge: 2, From: 0}, {Edge: 9, From: 1}, {Edge: 8, From: 4}},
		TiePeerOrder: {{Edge: 4, From: 0}, {Edge: 1, From: 0}, {Edge: 2, From: 0}, {Edge: 9, From: 1}, {Edge: 8, From: 4}},
		TieRandom:    {{Edge: 4, From: 0}, {Edge: 0, From: 0}, {Edge: 1, From: 0}, {Edge: 9, From: 1}, {Edge: 8, From: 4}},
	}
	for tb, want := range golden {
		l := &LGG{Tie: tb}
		if tb == TieRandom {
			l = NewLGGRandomTies(rng.New(42))
		}
		got := l.Plan(sn, nil)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: plan = %v, want %v", tb, got, want)
		}
	}

	// Scenario 2: a dead edge, lying declarations and MinGradient 2.
	d := []int64{3, 0, 0, 2, 9, 0}
	alive := []bool{true, true, false, true, true, true, true, true, true, true}
	sn2 := &Snapshot{Spec: spec, Q: q, Declared: d, Alive: alive}
	golden2 := map[TieBreak][]Send{
		TieEdgeOrder: {{Edge: 1, From: 0}, {Edge: 4, From: 0}},
		TiePeerOrder: {{Edge: 4, From: 0}, {Edge: 1, From: 0}},
		TieRandom:    {{Edge: 4, From: 0}, {Edge: 1, From: 0}},
	}
	for tb, want := range golden2 {
		l := &LGG{Tie: tb, MinGradient: 2}
		if tb == TieRandom {
			l = NewLGGRandomTies(rng.New(7))
			l.MinGradient = 2
		}
		got := l.Plan(sn2, nil)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("scenario 2, %v: plan = %v, want %v", tb, got, want)
		}
	}
}

// referencePlan is a transcription of the pre-CSR Plan implementation:
// full node scan over Incident(u) with per-node sort.Slice closures and
// the original comparators (no edge-id fallback for TieRandom — random
// keys are unique with overwhelming probability, making the order total
// anyway). It exists solely to replay seeds through the old ordering
// semantics and assert the rewrite never reorders a decision.
func referencePlan(l *LGG, rnd *rng.Source, sn *Snapshot, buf []Send) []Send {
	g := sn.Spec.G
	for v := 0; v < g.NumNodes(); v++ {
		u := graph.NodeID(v)
		budget := sn.Q[u]
		if budget <= 0 {
			continue
		}
		theta := l.MinGradient
		if theta < 1 {
			theta = 1
		}
		var cand []candidate
		for _, in := range g.Incident(u) {
			if !sn.EdgeAlive(in.Edge) {
				continue
			}
			dq := sn.Declared[in.Peer]
			if sn.Q[u]-dq >= theta {
				c := candidate{edge: in.Edge, peer: in.Peer, q: dq}
				if l.Tie == TieRandom {
					c.key = rnd.Uint64()
				}
				cand = append(cand, c)
			}
		}
		if len(cand) == 0 {
			continue
		}
		switch l.Tie {
		case TieEdgeOrder:
			sort.Slice(cand, func(i, j int) bool {
				if cand[i].q != cand[j].q {
					return cand[i].q < cand[j].q
				}
				return cand[i].edge < cand[j].edge
			})
		case TiePeerOrder:
			sort.Slice(cand, func(i, j int) bool {
				if cand[i].q != cand[j].q {
					return cand[i].q < cand[j].q
				}
				if cand[i].peer != cand[j].peer {
					return cand[i].peer < cand[j].peer
				}
				return cand[i].edge < cand[j].edge
			})
		case TieRandom:
			sort.Slice(cand, func(i, j int) bool {
				if cand[i].q != cand[j].q {
					return cand[i].q < cand[j].q
				}
				return cand[i].key < cand[j].key
			})
		}
		for _, c := range cand {
			if budget == 0 {
				break
			}
			buf = append(buf, Send{Edge: c.edge, From: u})
			budget--
		}
	}
	return buf
}

// TestLGGMatchesReferenceOrdering replays many random snapshots — random
// multigraphs, queues, declarations, dead-edge masks, thresholds — through
// both the reference (old) planner and the rewritten one, for every tie
// mode, and requires identical send sequences. For TieRandom both sides
// consume the same derived stream, so the comparison also pins the
// random-key draw order.
func TestLGGMatchesReferenceOrdering(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		r := rng.New(seed)
		n := 2 + r.IntN(14)
		g := graph.RandomMultigraph(n, n+r.IntN(3*n), r)
		spec := NewSpec(g)
		spec.In[0] = 1
		spec.Out[n-1] = 1
		q := make([]int64, n)
		d := make([]int64, n)
		for i := range q {
			q[i] = r.Int64N(40)
			d[i] = q[i]
			if r.Bool(0.3) { // lying declarations
				d[i] = r.Int64N(40)
			}
		}
		var alive []bool
		if r.Bool(0.5) {
			alive = make([]bool, g.NumEdges())
			for i := range alive {
				alive[i] = !r.Bool(0.2)
			}
		}
		sn := &Snapshot{Spec: spec, Q: q, Declared: d, Alive: alive}
		theta := r.Int64N(3) // 0 normalizes to 1
		for _, tb := range []TieBreak{TieEdgeOrder, TiePeerOrder, TieRandom} {
			ref := &LGG{Tie: tb, MinGradient: theta}
			got := &LGG{Tie: tb, MinGradient: theta, rnd: rng.New(seed).Split(99)}
			want := referencePlan(ref, rng.New(seed).Split(99), sn, nil)
			have := got.Plan(sn, nil)
			if !reflect.DeepEqual(have, want) {
				t.Fatalf("seed %d, %v: plan diverged from reference\n got %v\nwant %v",
					seed, tb, have, want)
			}
		}
	}
}

// TestLGGMatchesReferenceWithActiveList is the same replay with the
// engine-style active list attached to the snapshot: restricting the scan
// to the (sorted, superset-of-positive) active nodes must not change a
// single send.
func TestLGGMatchesReferenceWithActiveList(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		r := rng.New(seed)
		n := 2 + r.IntN(14)
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		spec := NewSpec(g)
		spec.In[0] = 1
		spec.Out[n-1] = 1
		q := make([]int64, n)
		var active []graph.NodeID
		for i := range q {
			q[i] = r.Int64N(4) // plenty of zeros
			if q[i] > 0 || r.Bool(0.2) {
				// supersets are legal: drained nodes may linger
				active = append(active, graph.NodeID(i))
			}
		}
		full := &Snapshot{Spec: spec, Q: q, Declared: q}
		restricted := &Snapshot{Spec: spec, Q: q, Declared: q, Active: active}
		want := NewLGG().Plan(full, nil)
		got := NewLGG().Plan(restricted, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: active-list plan %v, full-scan plan %v", seed, got, want)
		}
	}
}

// TestLGGRandomTiesNilRNG is the regression test for the nil-stream
// panic: a literal LGG{Tie: TieRandom} (bypassing NewLGGRandomTies) must
// plan without panicking, deterministically, and work inside an engine.
func TestLGGRandomTiesNilRNG(t *testing.T) {
	g := graph.Star(5)
	spec := NewSpec(g)
	spec.In[0] = 1
	spec.Out[4] = 1
	q := []int64{3, 0, 0, 0, 0}
	sn := &Snapshot{Spec: spec, Q: q, Declared: q}

	a := (&LGG{Tie: TieRandom}).Plan(sn, nil)
	b := (&LGG{Tie: TieRandom}).Plan(sn, nil)
	if len(a) != 3 {
		t.Fatalf("nil-rnd plan = %v, want 3 sends", a)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fallback stream not deterministic: %v vs %v", a, b)
	}

	e := NewEngine(lineSpec(3, 1, 1), &LGG{Tie: TieRandom})
	tot := e.Run(50)
	if tot.Violations != 0 || tot.Sent == 0 {
		t.Fatalf("engine run with literal TieRandom LGG: %+v", tot)
	}
}

// TestLGGLargeDegreeSortFallback exercises the sort.Sort path (degree >
// insertionSortMax) and checks it agrees with the reference ordering.
func TestLGGLargeDegreeSortFallback(t *testing.T) {
	hub := graph.Star(insertionSortMax + 20)
	n := hub.NumNodes()
	spec := NewSpec(hub)
	spec.In[0] = 1
	spec.Out[1] = 1
	q := make([]int64, n)
	q[0] = int64(n) // every leaf is a candidate
	r := rng.New(11)
	d := make([]int64, n)
	for i := 1; i < n; i++ {
		d[i] = r.Int64N(3) // heavy ties
	}
	sn := &Snapshot{Spec: spec, Q: q, Declared: d}
	for _, tb := range []TieBreak{TieEdgeOrder, TiePeerOrder, TieRandom} {
		ref := &LGG{Tie: tb}
		got := &LGG{Tie: tb, rnd: rng.New(5)}
		want := referencePlan(ref, rng.New(5), sn, nil)
		have := got.Plan(sn, nil)
		if !reflect.DeepEqual(have, want) {
			t.Fatalf("%v: fallback sort diverged\n got %v\nwant %v", tb, have, want)
		}
	}
}

// TestLGGPlanZeroAlloc asserts the zero-alloc contract of the planning
// hot path once scratch buffers are warm.
func TestLGGPlanZeroAlloc(t *testing.T) {
	e := NewEngine(benchDenseSpec(), NewLGG())
	for i := 0; i < 100; i++ {
		e.Step()
	}
	l := NewLGG()
	sn := e.Snapshot()
	buf := l.Plan(sn, nil)
	allocs := testing.AllocsPerRun(200, func() {
		buf = l.Plan(sn, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("Plan allocates %.1f times per call in steady state, want 0", allocs)
	}
}

// TestStepZeroAlloc asserts the zero-alloc contract of the whole engine
// step in steady state (stable workload, warm buffers).
func TestStepZeroAlloc(t *testing.T) {
	e := NewEngine(benchDenseSpec(), NewLGG())
	for i := 0; i < 200; i++ {
		e.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("Step allocates %.1f times per call in steady state, want 0", allocs)
	}
}
