package core

// StepObserver receives every executed step as it happens: the snapshot
// the router planned on (queues after injection, before transmission) and
// the finished step's statistics. It is the streaming counterpart of
// post-hoc series inspection — metrics exporters, event streamers and
// drift trackers hang off this hook.
//
// Both Engine (via AddObserver) and sim.Run (via Options.Observers)
// invoke observers after each step, in registration order.
//
// Contract: sn and st share the engine's per-step buffers and are valid
// only for the duration of the call — observers must copy anything they
// keep. OnStep runs on the engine's goroutine; an observer shared by
// engines running concurrently (e.g. under sim.RunSeeds) must be safe
// for concurrent use.
type StepObserver interface {
	OnStep(t int64, sn *Snapshot, st *StepStats)
}

// AddObserver registers an observer invoked at the end of every Step.
// With no observers registered, the step path pays only a slice-length
// check, so instrumentation is free when disabled.
func (e *Engine) AddObserver(o StepObserver) {
	if o == nil {
		panic("core: AddObserver(nil)")
	}
	e.observers = append(e.observers, o)
}

// Observers returns the currently registered observers (shared slice;
// callers must not mutate it).
func (e *Engine) Observers() []StepObserver { return e.observers }

// ObserverFunc adapts a plain function to the StepObserver interface.
type ObserverFunc func(t int64, sn *Snapshot, st *StepStats)

// OnStep implements StepObserver.
func (f ObserverFunc) OnStep(t int64, sn *Snapshot, st *StepStats) { f(t, sn, st) }
