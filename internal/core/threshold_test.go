package core

import (
	"testing"

	"repro/internal/graph"
)

// Tests for the MinGradient (θ) ablation of Algorithm 1.

func TestThresholdFiltersShallowGradients(t *testing.T) {
	g := graph.Line(2)
	q := []int64{2, 1} // gradient 1
	strict := planOn(g, q, NewLGG())
	if len(strict) != 1 {
		t.Fatalf("θ=1 should send on gradient 1: %v", strict)
	}
	damped := planOn(g, q, &LGG{MinGradient: 2})
	if len(damped) != 0 {
		t.Fatalf("θ=2 must not send on gradient 1: %v", damped)
	}
	q = []int64{3, 1} // gradient 2
	damped = planOn(g, q, &LGG{MinGradient: 2})
	if len(damped) != 1 {
		t.Fatalf("θ=2 should send on gradient 2: %v", damped)
	}
}

func TestThresholdZeroNormalizedToOne(t *testing.T) {
	g := graph.Line(2)
	q := []int64{1, 1}
	if got := planOn(g, q, &LGG{MinGradient: 0}); len(got) != 0 {
		t.Fatalf("θ=0 must not send on equal queues: %v", got)
	}
	q = []int64{2, 1}
	if got := planOn(g, q, &LGG{MinGradient: 0}); len(got) != 1 {
		t.Fatal("θ=0 should behave like θ=1")
	}
}

func TestThresholdKillsPingPong(t *testing.T) {
	// A lone packet between two non-sink nodes ping-pongs forever under
	// θ=1 (E20's stranding) but freezes under θ=2: P_t constant, zero
	// sends after the first check.
	g := graph.Line(3)
	s := NewSpec(g).SetSource(0, 1).SetSink(2, 1)
	e := NewEngine(s, &LGG{MinGradient: 2})
	e.Arrivals = noArrivals{}
	e.SetQueues([]int64{1, 0, 0})
	tot := e.Run(50)
	if tot.Sent != 0 {
		t.Fatalf("θ=2 moved a lone packet on gradient 1: %d sends", tot.Sent)
	}
	if e.Q[0] != 1 {
		t.Fatal("packet should be frozen at its node")
	}
}

func TestThresholdStillStableWithHeadroom(t *testing.T) {
	// θ=2 retains up to one packet per downhill link but must still be
	// stable when the load leaves enough headroom.
	s := NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 1).SetSink(1, 3)
	e := NewEngine(s, &LGG{MinGradient: 2})
	tot := e.Run(2000)
	if tot.Violations != 0 {
		t.Fatal("violations")
	}
	if tot.PeakQueued > 60 {
		t.Fatalf("θ=2 at light load queued %d", tot.PeakQueued)
	}
	if tot.Extracted == 0 {
		t.Fatal("θ=2 delivered nothing at light load")
	}
}

func TestThresholdName(t *testing.T) {
	if (&LGG{MinGradient: 3}).Name() != "lgg/θ=3" {
		t.Fatal((&LGG{MinGradient: 3}).Name())
	}
	if (&LGG{Tie: TiePeerOrder, MinGradient: 2}).Name() != "lgg/peer-order/θ=2" {
		t.Fatal("combined name")
	}
	if NewLGG().Name() != "lgg" {
		t.Fatal("default name changed")
	}
}
