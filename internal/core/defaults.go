package core

import "repro/internal/graph"

// This file holds the default pluggable behaviours: exact arrivals, no
// loss, truthful declaration and maximal extraction — together they give
// exactly the classical S-D-network semantics of Section II. The richer
// implementations live in internal/arrivals, internal/loss and the
// declare/extract variants below.

// ExactArrivals injects exactly in(v) packets at every source each step —
// the classical source behaviour and the hypothesis of Conjecture 1
// ("sources inject exactly in(s) packets at each step").
type ExactArrivals struct{}

// Name implements ArrivalProcess.
func (ExactArrivals) Name() string { return "exact" }

// Injections implements ArrivalProcess.
func (ExactArrivals) Injections(_ int64, spec *Spec, inj []int64) {
	copy(inj, spec.In)
}

// NoLoss never loses a packet.
type NoLoss struct{}

// Name implements LossModel.
func (NoLoss) Name() string { return "none" }

// Lost implements LossModel.
func (NoLoss) Lost(int64, graph.EdgeID, graph.NodeID) bool { return false }

// DeclareTruth reveals the true queue length (always legal).
type DeclareTruth struct{}

// Name implements DeclarePolicy.
func (DeclareTruth) Name() string { return "truth" }

// Declare implements DeclarePolicy.
func (DeclareTruth) Declare(_ int64, _ graph.NodeID, q, _ int64) int64 { return q }

// DeclareZero always claims an empty queue while at or below R — the
// most attractive possible lie (neighbours will happily push downhill).
type DeclareZero struct{}

// Name implements DeclarePolicy.
func (DeclareZero) Name() string { return "zero" }

// Declare implements DeclarePolicy.
func (DeclareZero) Declare(int64, graph.NodeID, int64, int64) int64 { return 0 }

// DeclareR always claims exactly R while at or below R — the most
// repellent possible lie (neighbours see the largest legal value).
type DeclareR struct{}

// Name implements DeclarePolicy.
func (DeclareR) Name() string { return "max" }

// Declare implements DeclarePolicy.
func (DeclareR) Declare(_ int64, _ graph.NodeID, _, r int64) int64 { return r }

// ExtractMax removes the most packets allowed, hi = min(out(v), q). With
// R = 0 this is the classical sink: exactly min{out(d), q_t(d)}.
type ExtractMax struct{}

// Name implements ExtractPolicy.
func (ExtractMax) Name() string { return "max" }

// Extract implements ExtractPolicy.
func (ExtractMax) Extract(_ int64, _ graph.NodeID, _, hi int64) int64 { return hi }

// ExtractMin removes the fewest packets allowed — the laziest legal
// generalized destination (Definition 7(i) still forces min(out, q−R)
// once the queue exceeds R).
type ExtractMin struct{}

// Name implements ExtractPolicy.
func (ExtractMin) Name() string { return "min" }

// Extract implements ExtractPolicy.
func (ExtractMin) Extract(_ int64, _ graph.NodeID, lo, _ int64) int64 { return lo }
