package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Combination tests: the engine's optional hooks composed together.

// maskTopology kills a fixed edge set.
type maskTopology struct{ dead map[graph.EdgeID]bool }

func (m maskTopology) Name() string                           { return "mask" }
func (m maskTopology) EdgeAlive(_ int64, e graph.EdgeID) bool { return !m.dead[e] }

// firstK keeps at most k sends.
type firstK struct{ k int }

func (f firstK) Name() string { return "first-k" }
func (f firstK) Filter(_ *Snapshot, sends []Send) []Send {
	if len(sends) > f.k {
		return sends[:f.k]
	}
	return sends
}

func TestTopologyPlusInterference(t *testing.T) {
	// Both hooks active: sends must respect the dead-edge mask AND the
	// interference cap simultaneously.
	g := graph.Star(5)
	s := NewSpec(g).SetSource(0, 4)
	for i := 1; i < 5; i++ {
		s.SetSink(graph.NodeID(i), 1)
	}
	e := NewEngine(s, NewLGG())
	e.Topology = maskTopology{dead: map[graph.EdgeID]bool{0: true}}
	e.Interference = firstK{k: 2}
	st := e.Step()
	if st.Sent > 2 {
		t.Fatalf("interference cap ignored: sent %d", st.Sent)
	}
	if st.Violations != 0 {
		t.Fatalf("LGG should never plan dead edges: %d violations", st.Violations)
	}
	// Edge 0 dead: all sends on edges 1..3.
	// run longer to make sure the combination stays consistent
	tot := e.Run(200)
	if tot.Violations != 0 {
		t.Fatalf("violations over run: %d", tot.Violations)
	}
}

func TestLyingPlusLossesPlusRetention(t *testing.T) {
	// The full generalized stack at once: lying declarations, retention,
	// lazy extraction, random losses — invariants must hold throughout.
	r := rng.New(3)
	g := graph.RandomMultigraph(8, 16, r)
	s := NewSpec(g).SetSource(0, 2).SetSink(7, 3)
	s.SetRetention(7, 5)
	e := NewEngine(s, NewLGG())
	e.Declare = DeclareZero{}
	e.Extract = ExtractMin{}
	e.Loss = comboLoss{r: r.Split(1)}
	var tot Totals
	for i := 0; i < 500; i++ {
		st := e.Step()
		tot.Add(st)
		for v, q := range e.Q {
			if q < 0 {
				t.Fatalf("negative queue at %d", v)
			}
		}
		if st.Violations != 0 {
			t.Fatalf("step %d: %d violations", i, st.Violations)
		}
	}
	if tot.Injected != tot.Extracted+tot.FinalQueued+tot.Lost {
		t.Fatal("conservation broken under the combined stack")
	}
	// Retention semantics: the sink's queue above R+out must be impossible
	// at a step boundary (Definition 7(i) forces extraction down to R
	// whenever q-R ≤ out... here out=3, so post-extraction q ≤ max(R, q-out)).
	if e.Q[7] > 5+3 {
		t.Fatalf("sink queue %d exceeds R+out", e.Q[7])
	}
}

type comboLoss struct{ r *rng.Source }

func (c comboLoss) Name() string                                { return "combo" }
func (c comboLoss) Lost(int64, graph.EdgeID, graph.NodeID) bool { return c.r.Bool(0.15) }

func TestRetentionNeverForcedBelowR(t *testing.T) {
	// Definition 7(i) lower bound never forces the queue under R.
	g := graph.Line(2)
	s := NewSpec(g).SetSource(0, 1).SetSink(1, 4).SetRetention(1, 3)
	e := NewEngine(s, nullRouter{})
	e.Arrivals = noArrivals{}
	e.Extract = ExtractMin{}
	for _, q0 := range []int64{0, 1, 3, 4, 7, 20} {
		e.SetQueues([]int64{0, q0})
		e.Step()
		got := e.Q[1]
		// forced extraction: min(out, q−R) when q > R
		want := q0
		if q0 > 3 {
			forced := q0 - 3
			if forced > 4 {
				forced = 4
			}
			want = q0 - forced
		}
		if got != want {
			t.Fatalf("q0=%d: post-extraction %d, want %d", q0, got, want)
		}
		if q0 >= 3 && got < 3 {
			t.Fatalf("q0=%d: forced below R (%d)", q0, got)
		}
	}
}

func TestDeclareClampedToLegalRange(t *testing.T) {
	// A policy returning out-of-range values is clamped to [0, R].
	g := graph.Line(2)
	s := NewSpec(g).SetSource(0, 1).SetSink(1, 1).SetRetention(1, 4)
	e := NewEngine(s, NewLGG())
	e.Arrivals = noArrivals{}
	e.Declare = wildDeclare{}
	e.SetQueues([]int64{0, 2})
	e.Step()
	d := e.Snapshot().Declared[1]
	if d < 0 || d > 4 {
		t.Fatalf("declared %d escaped [0, R]", d)
	}
}

func TestDualRoleNodeInjectsAndExtracts(t *testing.T) {
	// A Fig. 4 node with in = out = 1 self-serves: injected at the start
	// of the step, extracted at its end, queue empty at every boundary.
	g := graph.Line(2)
	s := NewSpec(g).SetSource(0, 1).SetSink(0, 1).SetSink(1, 1)
	e := NewEngine(s, NewLGG())
	tot := e.Run(100)
	if tot.Injected != 100 || tot.Extracted != 100 {
		t.Fatalf("self-serving node: injected %d extracted %d", tot.Injected, tot.Extracted)
	}
	if tot.PeakQueued > 1 {
		t.Fatalf("peak backlog %d, want ≤ 1", tot.PeakQueued)
	}
}

func TestDualRoleRelayPassesThrough(t *testing.T) {
	// A relay (in=1, out=1) in the middle of a line with a pure source
	// upstream: the relay must extract at most out(v)=1 per step, so the
	// upstream's packets still flow past it to the far sink.
	g := graph.Line(3)
	s := NewSpec(g).SetSource(0, 1).SetSource(1, 1).SetSink(1, 1).SetSink(2, 2)
	e := NewEngine(s, NewLGG())
	tot := e.Run(2000)
	if tot.Violations != 0 {
		t.Fatal("violations")
	}
	// total service keeps up with total arrivals (rate 2, capacity 2)
	if tot.FinalQueued > 20 {
		t.Fatalf("relay chain accumulated %d packets", tot.FinalQueued)
	}
	if tot.Extracted < tot.Injected-20 {
		t.Fatalf("throughput gap: injected %d extracted %d", tot.Injected, tot.Extracted)
	}
}

type wildDeclare struct{}

func (wildDeclare) Name() string { return "wild" }
func (wildDeclare) Declare(t int64, _ graph.NodeID, _, _ int64) int64 {
	if t%2 == 0 {
		return -99
	}
	return 1 << 40
}
