// Package core implements the paper's primary contribution: the
// S-D-network model (Section II), its R-generalized extension
// (Section IV, Definitions 5–8), the LGG protocol (Algorithm 1), the
// synchronous network engine that executes a routing policy step by step,
// and the explicit stability bounds of Lemma 1 / Properties 1–6.
package core

import (
	"fmt"
	"math"

	"repro/internal/flow"
	"repro/internal/graph"
)

// Spec is an immutable description of an (R-generalized) S-D-network:
// the multigraph G together with, per node v, the injection capacity
// in(v), the extraction capacity out(v), and the retention constant R(v).
//
// A classical S-D-network (Section II) has R(v) == 0 everywhere, In > 0
// exactly on sources and Out > 0 exactly on destinations. A node with
// both In and Out positive is an R-generalized source if In > Out and an
// R-generalized destination otherwise (Definition 7).
type Spec struct {
	G   *graph.Multigraph
	In  []int64
	Out []int64
	R   []int64
}

// NewSpec returns a Spec over g with all-zero roles; use the setters to
// declare sources and destinations.
func NewSpec(g *graph.Multigraph) *Spec {
	n := g.NumNodes()
	return &Spec{
		G:   g,
		In:  make([]int64, n),
		Out: make([]int64, n),
		R:   make([]int64, n),
	}
}

// SetSource declares v a source with injection capacity in > 0 and
// returns the Spec for chaining.
func (s *Spec) SetSource(v graph.NodeID, in int64) *Spec {
	if in <= 0 {
		panic("core: source capacity must be positive")
	}
	s.In[v] = in
	return s
}

// SetSink declares v a destination with extraction capacity out > 0 and
// returns the Spec for chaining.
func (s *Spec) SetSink(v graph.NodeID, out int64) *Spec {
	if out <= 0 {
		panic("core: sink capacity must be positive")
	}
	s.Out[v] = out
	return s
}

// SetRetention sets the retention constant R(v) ≥ 0 of a generalized node
// (Definition 6) and returns the Spec for chaining.
func (s *Spec) SetRetention(v graph.NodeID, r int64) *Spec {
	if r < 0 {
		panic("core: retention must be non-negative")
	}
	s.R[v] = r
	return s
}

// Validate checks structural consistency: length agreement, no negative
// capacities, at least one source and one destination.
func (s *Spec) Validate() error {
	n := s.G.NumNodes()
	if len(s.In) != n || len(s.Out) != n || len(s.R) != n {
		return fmt.Errorf("core: role vectors disagree with graph size %d", n)
	}
	haveSrc, haveDst := false, false
	for v := 0; v < n; v++ {
		if s.In[v] < 0 || s.Out[v] < 0 || s.R[v] < 0 {
			return fmt.Errorf("core: node %d has negative capacity", v)
		}
		if s.In[v] > 0 {
			haveSrc = true
		}
		if s.Out[v] > 0 {
			haveDst = true
		}
	}
	if !haveSrc {
		return fmt.Errorf("core: network has no source")
	}
	if !haveDst {
		return fmt.Errorf("core: network has no destination")
	}
	return s.G.Validate()
}

// N returns the number of nodes (the paper's n).
func (s *Spec) N() int { return s.G.NumNodes() }

// Delta returns the maximum degree Δ of G.
func (s *Spec) Delta() int { return s.G.MaxDegree() }

// Sources returns the nodes with In > 0 in ascending order.
func (s *Spec) Sources() []graph.NodeID { return s.positive(s.In) }

// Sinks returns the nodes with Out > 0 in ascending order.
func (s *Spec) Sinks() []graph.NodeID { return s.positive(s.Out) }

// Terminals returns |S ∪ D|: the number of nodes that are a generalized
// source or destination.
func (s *Spec) Terminals() int {
	c := 0
	for v := range s.In {
		if s.In[v] > 0 || s.Out[v] > 0 {
			c++
		}
	}
	return c
}

func (s *Spec) positive(xs []int64) []graph.NodeID {
	var out []graph.NodeID
	for v, x := range xs {
		if x > 0 {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// ArrivalRate returns Σ_v in(v), the nominal arrival rate.
func (s *Spec) ArrivalRate() int64 {
	var t int64
	for _, x := range s.In {
		t += x
	}
	return t
}

// MaxOut returns out_max = max_v out(v) (0 when there are no sinks).
func (s *Spec) MaxOut() int64 {
	var m int64
	for _, x := range s.Out {
		if x > m {
			m = x
		}
	}
	return m
}

// MaxRetention returns max_v R(v).
func (s *Spec) MaxRetention() int64 {
	var m int64
	for _, x := range s.R {
		if x > m {
			m = x
		}
	}
	return m
}

// IsClassical reports whether the spec is a classical S-D-network: zero
// retention everywhere and no node acting as both source and sink.
func (s *Spec) IsClassical() bool {
	for v := range s.In {
		if s.R[v] != 0 {
			return false
		}
		if s.In[v] > 0 && s.Out[v] > 0 {
			return false
		}
	}
	return true
}

// Analyze runs the feasibility analysis of Section II-B on this network.
func (s *Spec) Analyze(solver flow.Solver) *flow.Analysis {
	return flow.Analyze(s.G, s.In, s.Out, solver)
}

// Potential returns the network state P = Σ_v q(v)² (Definition 1),
// saturating at math.MaxInt64 instead of silently wrapping negative when
// an unstable run grows queues past ≈2³¹ packets. Use PotentialSat to
// also learn whether saturation occurred.
func Potential(q []int64) int64 {
	p, _ := PotentialSat(q)
	return p
}

// maxExactSquare is the largest |q| whose square fits in an int64
// (⌊√(2⁶³−1)⌋).
const maxExactSquare = 3037000499

// PotentialSat returns the network state P = Σ_v q(v)² (Definition 1)
// together with an overflow flag. When the exact sum exceeds the int64
// range the returned potential is math.MaxInt64 and overflowed is true;
// a saturated potential is a lower bound, which preserves the sign and
// ordering properties the stability verdicts rely on (a diverging run
// stays "large" instead of wrapping negative and faking a drain).
func PotentialSat(q []int64) (p int64, overflowed bool) {
	for _, x := range q {
		if x < 0 {
			x = -x
		}
		if x > maxExactSquare {
			return math.MaxInt64, true
		}
		sq := x * x
		if p > math.MaxInt64-sq {
			return math.MaxInt64, true
		}
		p += sq
	}
	return p, false
}

// TotalQueued returns Σ_v q(v), the number of stored packets.
func TotalQueued(q []int64) int64 {
	var t int64
	for _, x := range q {
		t += x
	}
	return t
}

// MaxQueue returns max_v q(v).
func MaxQueue(q []int64) int64 {
	var m int64
	for _, x := range q {
		if x > m {
			m = x
		}
	}
	return m
}

// String describes the spec compactly.
func (s *Spec) String() string {
	return fmt.Sprintf("spec(n=%d, m=%d, |S|=%d, |D|=%d, rate=%d)",
		s.N(), s.G.NumEdges(), len(s.Sources()), len(s.Sinks()), s.ArrivalRate())
}
