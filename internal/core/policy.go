package core

import (
	"repro/internal/graph"
)

// Send is one planned transmission: 1 packet travels over Edge away from
// From (toward the opposite endpoint). Links are undirected; the
// orientation is given by From. At most one Send per edge per step is
// physical ("each link can transmit at most 1 packet", Section II).
type Send struct {
	Edge graph.EdgeID
	From graph.NodeID
}

// To returns the receiving endpoint of the send in g.
func (s Send) To(g *graph.Multigraph) graph.NodeID {
	return g.EdgeByID(s.Edge).Other(s.From)
}

// Snapshot is the observable network state at the planning point of a
// step: queues after injection, before any transmission. Routing policies
// read Declared (what nodes reveal, Definition 6(ii)); the engine and the
// metrics read Q (ground truth). Alive, when non-nil, masks edges removed
// by a dynamic-topology process (Conjecture 4 experiments).
type Snapshot struct {
	Spec     *Spec
	T        int64
	Q        []int64
	Declared []int64
	Alive    []bool // nil means every edge is alive
	// Active, when non-nil, is a strictly ascending node list guaranteed
	// to contain every node with Q > 0 (it may also contain nodes whose
	// queue just drained). Routers whose decisions only involve nodes
	// holding packets (LGG and the gradient baselines) may restrict
	// their scan to it instead of sweeping all n nodes; because the list
	// is sorted, doing so cannot reorder their output. nil means no
	// active-set information: scan everything.
	Active []graph.NodeID
}

// EdgeAlive reports whether edge e may transmit at this step.
func (sn *Snapshot) EdgeAlive(e graph.EdgeID) bool {
	return sn.Alive == nil || sn.Alive[e]
}

// Router plans the transmission set E_t of a step. Implementations append
// to buf and return the extended slice (allowing the engine to reuse the
// allocation).
//
// Localized protocols (LGG and its variants) must base each node's
// decision only on that node's true queue and its neighbours' *declared*
// queues; centralized baselines (e.g. the max-flow router) may read
// anything in the snapshot. The engine enforces the physical constraints
// regardless of what a Router returns: at most one packet per edge, at
// most q_t(u) packets leaving u, no sends on dead edges.
type Router interface {
	Name() string
	Plan(sn *Snapshot, buf []Send) []Send
}
