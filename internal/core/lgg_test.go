package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

// planOn builds a snapshot with the given queues over g (all truthful,
// all edges alive) and runs LGG on it.
func planOn(g *graph.Multigraph, q []int64, l *LGG) []Send {
	spec := NewSpec(g)
	// roles are irrelevant for planning; keep the spec valid anyway
	spec.In[0] = 1
	spec.Out[len(q)-1] = 1
	sn := &Snapshot{Spec: spec, Q: q, Declared: q}
	return l.Plan(sn, nil)
}

func TestLGGSendsDownhillOnly(t *testing.T) {
	g := graph.Line(3) // 0-1-2
	q := []int64{5, 3, 7}
	sends := planOn(g, q, NewLGG())
	// node 0 (q=5) sends to 1 (q=3); node 2 (q=7) sends to 1.
	if len(sends) != 2 {
		t.Fatalf("sends = %v", sends)
	}
	for _, s := range sends {
		to := s.To(g)
		if q[s.From] <= q[to] {
			t.Fatalf("uphill send %v (q=%d → q=%d)", s, q[s.From], q[to])
		}
	}
}

func TestLGGRespectsBudget(t *testing.T) {
	// Hub with queue 2 and 4 empty leaves: only 2 sends allowed.
	g := graph.Star(5)
	q := []int64{2, 0, 0, 0, 0}
	sends := planOn(g, q, NewLGG())
	if len(sends) != 2 {
		t.Fatalf("budget violated: %d sends", len(sends))
	}
	for _, s := range sends {
		if s.From != 0 {
			t.Fatalf("unexpected sender %d", s.From)
		}
	}
}

func TestLGGPrefersSmallestQueues(t *testing.T) {
	// Hub q=2; leaves with queues 1, 0, 1, 0: must pick the two zeros.
	g := graph.Star(5)
	q := []int64{2, 1, 0, 1, 0}
	sends := planOn(g, q, NewLGG())
	if len(sends) != 2 {
		t.Fatalf("sends = %v", sends)
	}
	for _, s := range sends {
		if to := s.To(g); q[to] != 0 {
			t.Fatalf("picked neighbour with q=%d instead of 0", q[to])
		}
	}
}

func TestLGGNoSendOnEqual(t *testing.T) {
	g := graph.Line(2)
	sends := planOn(g, []int64{4, 4}, NewLGG())
	if len(sends) != 0 {
		t.Fatalf("equal queues must not transmit: %v", sends)
	}
}

func TestLGGParallelEdges(t *testing.T) {
	// Two parallel edges and enough budget: both carry one packet.
	g := graph.New(2)
	g.AddEdges(0, 1, 2)
	sends := planOn(g, []int64{5, 0}, NewLGG())
	if len(sends) != 2 {
		t.Fatalf("parallel edges should both transmit: %v", sends)
	}
	if sends[0].Edge == sends[1].Edge {
		t.Fatal("same edge used twice")
	}
}

func TestLGGUsesDeclaredQueues(t *testing.T) {
	g := graph.Line(2)
	spec := NewSpec(g)
	spec.In[0] = 1
	spec.Out[1] = 1
	// True queue of node 1 is 3 (< 5, downhill), but it declares 6: node 0
	// must stay quiet if it honours the declaration; node 1 itself sees
	// declared[0] = 5 > 3 so it stays quiet too.
	sn := &Snapshot{Spec: spec, Q: []int64{5, 3}, Declared: []int64{5, 6}}
	sends := NewLGG().Plan(sn, nil)
	if len(sends) != 0 {
		t.Fatalf("declared queue ignored: %v", sends)
	}
	// Conversely, an under-declaration attracts traffic.
	sn = &Snapshot{Spec: spec, Q: []int64{5, 7}, Declared: []int64{5, 2}}
	sends = NewLGG().Plan(sn, nil)
	var from0 bool
	for _, s := range sends {
		if s.From == 0 {
			from0 = true
		}
	}
	if !from0 {
		t.Fatalf("under-declaration did not attract a send: %v", sends)
	}
}

func TestLGGRespectsDeadEdges(t *testing.T) {
	g := graph.Line(3)
	spec := NewSpec(g)
	spec.In[0] = 1
	spec.Out[2] = 1
	q := []int64{5, 0, 0}
	sn := &Snapshot{Spec: spec, Q: q, Declared: q, Alive: []bool{false, true}}
	sends := NewLGG().Plan(sn, nil)
	if len(sends) != 0 {
		t.Fatalf("dead edge used: %v", sends)
	}
}

func TestLGGTieBreakVariantsAgreeOnCount(t *testing.T) {
	g := graph.Star(6)
	q := []int64{3, 0, 0, 0, 0, 0}
	a := planOn(g, q, NewLGG())
	b := planOn(g, q, &LGG{Tie: TiePeerOrder})
	c := planOn(g, q, NewLGGRandomTies(rng.New(1)))
	if len(a) != 3 || len(b) != 3 || len(c) != 3 {
		t.Fatalf("tie variants disagree on count: %d %d %d", len(a), len(b), len(c))
	}
}

func TestLGGNames(t *testing.T) {
	if NewLGG().Name() != "lgg" {
		t.Fatal("name")
	}
	if (&LGG{Tie: TiePeerOrder}).Name() != "lgg/peer-order" {
		t.Fatal("variant name")
	}
	if TieBreak(42).String() != "tie?" {
		t.Fatal("unknown tiebreak stringer")
	}
}

// Property: LGG plans are always physical and greedy-consistent —
// per-edge uniqueness, per-node budget, strictly downhill on declared
// queues, and the chosen neighbour set is a smallest-declared-queue set.
func TestQuickLGGInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%10) + 2
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		q := make([]int64, n)
		for i := range q {
			q[i] = r.Int64N(8)
		}
		spec := NewSpec(g)
		spec.In[0] = 1
		spec.Out[n-1] = 1
		sn := &Snapshot{Spec: spec, Q: q, Declared: q}
		sends := NewLGG().Plan(sn, nil)

		edgeUsed := map[graph.EdgeID]bool{}
		sentBy := make([]int64, n)
		for _, s := range sends {
			if edgeUsed[s.Edge] {
				return false
			}
			edgeUsed[s.Edge] = true
			sentBy[s.From]++
			if q[s.From] <= q[s.To(g)] {
				return false
			}
		}
		for v := 0; v < n; v++ {
			if sentBy[v] > q[v] {
				return false
			}
			// Greedy completeness: if v sent fewer packets than its
			// budget, every unused downhill edge must not exist.
			if sentBy[v] < q[v] {
				for _, in := range g.Incident(graph.NodeID(v)) {
					if !edgeUsed[in.Edge] && q[in.Peer] < q[v] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
