package core

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestSpecCodecRoundTrip(t *testing.T) {
	g := graph.ThetaGraph(3, 2)
	s := NewSpec(g).SetSource(0, 2).SetSink(1, 3).SetRetention(1, 5)
	var buf bytes.Buffer
	if err := EncodeSpec(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != s.N() || back.G.NumEdges() != s.G.NumEdges() {
		t.Fatal("graph changed in round trip")
	}
	for v := 0; v < s.N(); v++ {
		if back.In[v] != s.In[v] || back.Out[v] != s.Out[v] || back.R[v] != s.R[v] {
			t.Fatalf("roles changed at node %d", v)
		}
	}
}

func TestDecodeSpecFull(t *testing.T) {
	in := `# a network
nodes 3
edge 0 1 2
edge 1 2
source 0 4
sink 2 1
retain 2 7
`
	s, err := DecodeSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.G.Multiplicity(0, 1) != 2 {
		t.Fatal("edge count lost")
	}
	if s.In[0] != 4 || s.Out[2] != 1 || s.R[2] != 7 {
		t.Fatalf("roles = in:%v out:%v r:%v", s.In, s.Out, s.R)
	}
}

func TestDecodeSpecErrors(t *testing.T) {
	cases := []string{
		"",                              // empty
		"nodes 2\nnodes 2",              // duplicate
		"edge 0 1",                      // before nodes
		"source 0 1",                    // before nodes
		"nodes x",                       // bad count
		"nodes 2\nedge 0 0",             // self loop
		"nodes 2\nedge 0 9",             // out of range
		"nodes 2\nedge 0 1 0",           // bad multiplicity
		"nodes 2\nsource 0 0",           // zero source
		"nodes 2\nsink 1 -2",            // negative sink
		"nodes 2\nretain 0 -1",          // negative retention
		"nodes 2\nbogus 0 1",            // unknown directive
		"nodes 2\nsource 0",             // arity
		"nodes 2\nedge 0 1\nsource 0 1", // validates: no sink
		"nodes 2\nedge 0 1\nsink 1 1",   // validates: no source
		"nodes 2\nsource 0 q",           // bad number
	}
	for _, in := range cases {
		if _, err := DecodeSpec(strings.NewReader(in)); err == nil {
			t.Errorf("DecodeSpec(%q) succeeded, want error", in)
		}
	}
}

// Property: random specs round-trip exactly.
func TestQuickSpecCodecRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%10) + 2
		g := graph.RandomMultigraph(n, n+r.IntN(n), r)
		s := NewSpec(g)
		s.SetSource(0, 1+r.Int64N(5))
		s.SetSink(graph.NodeID(n-1), 1+r.Int64N(5))
		if r.Bool(0.5) {
			s.SetRetention(graph.NodeID(n-1), r.Int64N(10)+1)
		}
		var buf bytes.Buffer
		if err := EncodeSpec(&buf, s); err != nil {
			return false
		}
		back, err := DecodeSpec(&buf)
		if err != nil {
			return false
		}
		if back.N() != s.N() || back.G.NumEdges() != s.G.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			if back.In[v] != s.In[v] || back.Out[v] != s.Out[v] || back.R[v] != s.R[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
