package core

import (
	"testing"

	"repro/internal/graph"
)

// benchDenseSpec is the dense-topology workload the zero-alloc gate runs
// on: an 8×8 grid with extra diagonal chords (degree up to 8), a column
// of sources and a column of sinks, so planning always has candidates and
// ties to order.
func benchDenseSpec() *Spec {
	const side = 8
	g := graph.Grid(side, side)
	for r := 0; r+1 < side; r++ {
		for c := 0; c+1 < side; c++ {
			g.AddEdge(graph.NodeID(r*side+c), graph.NodeID((r+1)*side+c+1))
			g.AddEdge(graph.NodeID(r*side+c+1), graph.NodeID((r+1)*side+c))
		}
	}
	s := NewSpec(g)
	for r := 0; r < side; r++ {
		s.SetSource(graph.NodeID(r*side), 1)
		s.SetSink(graph.NodeID(r*side+side-1), 2)
	}
	return s
}

// BenchmarkLGGPlan measures the planning hot path alone on a warm dense
// snapshot. CI gates on this benchmark reporting 0 allocs/op — the
// zero-allocation contract of the CSR + insertion-sort rewrite.
func BenchmarkLGGPlan(b *testing.B) {
	e := NewEngine(benchDenseSpec(), NewLGG())
	for i := 0; i < 200; i++ {
		e.Step()
	}
	l := NewLGG()
	sn := e.Snapshot()
	buf := l.Plan(sn, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = l.Plan(sn, buf[:0])
	}
}

// BenchmarkLGGPlanTies is BenchmarkLGGPlan per tie-break mode.
func BenchmarkLGGPlanTies(b *testing.B) {
	for _, tb := range []TieBreak{TieEdgeOrder, TiePeerOrder, TieRandom} {
		b.Run(tb.String(), func(b *testing.B) {
			e := NewEngine(benchDenseSpec(), NewLGG())
			for i := 0; i < 200; i++ {
				e.Step()
			}
			l := &LGG{Tie: tb} // TieRandom seeds its fallback stream lazily
			sn := e.Snapshot()
			buf := l.Plan(sn, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = l.Plan(sn, buf[:0])
			}
		})
	}
}

// BenchmarkStep measures the full synchronous step (inject → plan →
// validate → transmit → extract) on the dense topology in steady state.
// CI's bench-smoke job records it into BENCH_step.json.
func BenchmarkStep(b *testing.B) {
	e := NewEngine(benchDenseSpec(), NewLGG())
	for i := 0; i < 200; i++ {
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkStepSparseActivity measures the active-list payoff: a large
// line network where only a handful of nodes near the source ever hold
// packets, so a full-node scan would dominate the step cost.
func BenchmarkStepSparseActivity(b *testing.B) {
	spec := NewSpec(graph.Line(4096)).SetSource(0, 1).SetSink(8, 1)
	e := NewEngine(spec, NewLGG())
	for i := 0; i < 200; i++ {
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
