package core

import (
	"testing"

	"repro/internal/graph"
)

func TestEngineInvokesObserversInOrder(t *testing.T) {
	s := NewSpec(graph.Line(3)).SetSource(0, 1).SetSink(2, 2)
	e := NewEngine(s, NewLGG())
	var order []int
	var steps []int64
	e.AddObserver(ObserverFunc(func(tt int64, sn *Snapshot, st *StepStats) {
		order = append(order, 1)
		steps = append(steps, tt)
		if sn == nil || st == nil {
			t.Fatal("observer got nil snapshot or stats")
		}
		if st.T != tt {
			t.Fatalf("observer t=%d but stats.T=%d", tt, st.T)
		}
		if sn.T != tt {
			t.Fatalf("observer t=%d but snapshot.T=%d", tt, sn.T)
		}
	}))
	e.AddObserver(ObserverFunc(func(int64, *Snapshot, *StepStats) {
		order = append(order, 2)
	}))
	for i := 0; i < 3; i++ {
		e.Step()
	}
	if want := []int{1, 2, 1, 2, 1, 2}; len(order) != len(want) {
		t.Fatalf("observer calls = %v, want %v", order, want)
	} else {
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("observer calls = %v, want %v", order, want)
			}
		}
	}
	for i, tt := range steps {
		if tt != int64(i) {
			t.Fatalf("observer saw step %d at call %d", tt, i)
		}
	}
}

func TestEngineObserverSeesStepStats(t *testing.T) {
	s := NewSpec(graph.Line(2)).SetSource(0, 1).SetSink(1, 2)
	e := NewEngine(s, NewLGG())
	var viaObserver []StepStats
	e.AddObserver(ObserverFunc(func(_ int64, _ *Snapshot, st *StepStats) {
		viaObserver = append(viaObserver, *st)
	}))
	var returned []StepStats
	for i := 0; i < 5; i++ {
		returned = append(returned, e.Step())
	}
	for i := range returned {
		if viaObserver[i] != returned[i] {
			t.Fatalf("step %d: observer stats %+v != returned %+v", i, viaObserver[i], returned[i])
		}
	}
}

func TestAddObserverNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddObserver(nil) did not panic")
		}
	}()
	e := NewEngine(NewSpec(graph.Line(2)).SetSource(0, 1).SetSink(1, 1), NewLGG())
	e.AddObserver(nil)
}
