package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/shard"
)

// The sharded step path promises byte-identical output to the serial
// engine at any shard and worker count. These tests run both paths over
// adversarial dynamics — stochastic arrivals, Bernoulli losses, lying
// declarations that force collisions, retention extraction — and compare
// every per-step statistic and the full queue vector.

// testArrivals is a stateful, RNG-driven arrival process that sometimes
// bursts above In. It deliberately does NOT implement SourceOnlyArrivals
// so the sharded injection scan has to take the whole-shard path.
type testArrivals struct{ r *rng.Source }

func (testArrivals) Name() string { return "test-burst" }
func (a testArrivals) Injections(t int64, spec *Spec, inj []int64) {
	for v := range inj {
		if spec.In[v] == 0 {
			continue
		}
		x := spec.In[v]
		if a.r.Bool(0.2) {
			x += int64(a.r.IntN(3))
		}
		if a.r.Bool(0.1) {
			x = 0
		}
		inj[v] = x
	}
}

// testLoss draws one Bernoulli per attempted transmission, so its stream
// position depends on the exact global send order — the sharpest
// order-sensitivity the merge discipline has to preserve.
type testLoss struct{ r *rng.Source }

func (testLoss) Name() string                                  { return "test-bernoulli" }
func (l testLoss) Lost(int64, graph.EdgeID, graph.NodeID) bool { return l.r.Bool(0.15) }

// stressGrid builds a grid with parallel edges and a traffic pattern
// that keeps queues, collisions and losses all active: lying retention
// nodes in the middle make both endpoints of an edge claim it.
func stressSpec(w, h int) *Spec {
	g := graph.New(w * h)
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	g.AddEdges(id(1, 1), id(2, 1), 2) // parallel boundary-crossing edges
	spec := NewSpec(g)
	spec.SetSource(id(0, 0), 2)
	spec.SetSource(id(w-1, 0), 1)
	spec.SetSink(id(w-1, h-1), 2)
	spec.SetSink(id(0, h-1), 1)
	for x := 1; x < w-1; x++ {
		spec.SetRetention(id(x, h/2), 2) // lying band across every cut
	}
	return spec
}

func stressEngine(seed uint64) *Engine {
	spec := stressSpec(8, 6)
	e := NewEngine(spec, NewLGG())
	e.Arrivals = testArrivals{r: rng.New(seed).Split(1)}
	e.Loss = testLoss{r: rng.New(seed).Split(2)}
	e.Declare = DeclareZero{} // maximally attractive lie → collisions
	return e
}

// stepSig compares two engines step by step.
func runCompare(t *testing.T, label string, serial, sharded *Engine, steps int) Totals {
	t.Helper()
	var tot Totals
	for i := 0; i < steps; i++ {
		a, b := serial.Step(), sharded.Step()
		if a != b {
			t.Fatalf("%s: step %d stats diverge:\nserial:  %+v\nsharded: %+v", label, i, a, b)
		}
		tot.Add(a)
	}
	for v := range serial.Q {
		if serial.Q[v] != sharded.Q[v] {
			t.Fatalf("%s: Q[%d] = %d serial vs %d sharded", label, v, serial.Q[v], sharded.Q[v])
		}
	}
	return tot
}

// TestShardedReplayIdentity is the core contract: 60 seeds × shard
// counts {1, 2, 8} × worker counts {1, 2}, byte-identical stats and
// queues under losses, collisions and bursty arrivals.
func TestShardedReplayIdentity(t *testing.T) {
	const steps = 120
	var sawCollisions, sawLoss bool
	for seed := uint64(1); seed <= 60; seed++ {
		for _, k := range []int{1, 2, 8} {
			for _, workers := range []int{1, 2} {
				serial := stressEngine(seed)
				sharded := stressEngine(seed)
				p := shard.ByBFS(sharded.Spec.G, k)
				if err := sharded.EnableSharding(p, workers); err != nil {
					t.Fatalf("EnableSharding(k=%d): %v", k, err)
				}
				label := fmt.Sprintf("seed=%d k=%d w=%d", seed, k, workers)
				tot := runCompare(t, label, serial, sharded, steps)
				sharded.DisableSharding()
				if tot.Collisions > 0 {
					sawCollisions = true
				}
				if tot.Lost > 0 {
					sawLoss = true
				}
			}
		}
	}
	if !sawCollisions || !sawLoss {
		t.Fatalf("stress dynamics too tame: collisions=%v losses=%v — identity not meaningfully exercised",
			sawCollisions, sawLoss)
	}
}

// TestShardedUnorderedMerge drives the k-way merge branch with an
// interleaved owner vector (shard node ranges overlap, so concatenation
// would be wrong).
func TestShardedUnorderedMerge(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		serial := stressEngine(seed)
		sharded := stressEngine(seed)
		n := sharded.Spec.N()
		owner := make([]int32, n)
		for v := range owner {
			owner[v] = int32(v % 3) // round-robin: maximally interleaved
		}
		p, err := shard.FromOwners(sharded.Spec.G, owner, 3)
		if err != nil {
			t.Fatal(err)
		}
		if p.Ordered() {
			t.Fatal("round-robin partition unexpectedly ordered")
		}
		if err := sharded.EnableSharding(p, 2); err != nil {
			t.Fatal(err)
		}
		runCompare(t, fmt.Sprintf("interleaved seed=%d", seed), serial, sharded, 100)
		sharded.DisableSharding()
	}
}

// TestShardedObservers: observers see identical stats (and may rewrite
// them) on both paths.
func TestShardedObservers(t *testing.T) {
	serial := stressEngine(7)
	sharded := stressEngine(7)
	count := func(tally *int64) ObserverFunc {
		return func(_ int64, _ *Snapshot, st *StepStats) { *tally += st.Sent }
	}
	var a, b int64
	serial.AddObserver(count(&a))
	sharded.AddObserver(count(&b))
	if err := sharded.EnableSharding(shard.ByRange(sharded.Spec.G, 4), 1); err != nil {
		t.Fatal(err)
	}
	runCompare(t, "observers", serial, sharded, 80)
	if a != b || a == 0 {
		t.Fatalf("observer tallies: serial %d, sharded %d", a, b)
	}
}

// TestShardedTrace: the per-step trace buffers agree.
func TestShardedTrace(t *testing.T) {
	serial := stressEngine(11)
	sharded := stressEngine(11)
	ta, tb := serial.EnableTrace(), sharded.EnableTrace()
	if err := sharded.EnableSharding(shard.ByBFS(sharded.Spec.G, 8), 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		serial.Step()
		sharded.Step()
		if len(ta.Sends) != len(tb.Sends) {
			t.Fatalf("step %d: %d vs %d traced sends", i, len(ta.Sends), len(tb.Sends))
		}
		for j := range ta.Sends {
			if ta.Sends[j] != tb.Sends[j] || ta.Lost[j] != tb.Lost[j] {
				t.Fatalf("step %d send %d: %+v/%v vs %+v/%v", i, j,
					ta.Sends[j], ta.Lost[j], tb.Sends[j], tb.Lost[j])
			}
		}
	}
}

// TestShardedSetQueues: SetQueues mid-run resets the per-shard mirrors;
// the replay afterwards stays identical.
func TestShardedSetQueues(t *testing.T) {
	serial := stressEngine(3)
	sharded := stressEngine(3)
	if err := sharded.EnableSharding(shard.ByBFS(sharded.Spec.G, 4), 2); err != nil {
		t.Fatal(err)
	}
	runCompare(t, "pre-reset", serial, sharded, 50)
	q := make([]int64, len(serial.Q))
	for v := range q {
		q[v] = int64(v % 5)
	}
	serial.SetQueues(q)
	sharded.SetQueues(q)
	serial.T, sharded.T = 0, 0
	runCompare(t, "post-reset", serial, sharded, 50)
	sharded.DisableSharding()
}

// TestShardedEnableDisableMidRun: flipping modes mid-run never perturbs
// the trajectory.
func TestShardedEnableDisableMidRun(t *testing.T) {
	serial := stressEngine(5)
	flip := stressEngine(5)
	p := shard.ByBFS(flip.Spec.G, 8)
	runCompare(t, "phase serial", serial, flip, 40)
	if err := flip.EnableSharding(p, 2); err != nil {
		t.Fatal(err)
	}
	runCompare(t, "phase sharded", serial, flip, 40)
	flip.DisableSharding()
	runCompare(t, "phase serial again", serial, flip, 40)
}

// TestShardedSourceOnlyFastPath: with a SourceOnlyArrivals process the
// shard scan visits source lists only; output must not change.
func TestShardedSourceOnlyFastPath(t *testing.T) {
	build := func(shards int) *Engine {
		e := NewEngine(stressSpec(8, 6), NewLGG())
		e.Loss = testLoss{r: rng.New(9).Split(2)}
		if shards > 1 {
			if err := e.EnableSharding(shard.ByBFS(e.Spec.G, shards), 1); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	if _, ok := ArrivalProcess(ExactArrivals{}).(SourceOnlyArrivals); !ok {
		t.Fatal("ExactArrivals must advertise SourcesOnly")
	}
	runCompare(t, "source-only", build(1), build(8), 100)
}

// TestShardedRefusals: non-shardable configurations fail cleanly.
func TestShardedRefusals(t *testing.T) {
	e := stressEngine(1)
	if err := e.EnableSharding(nil, 1); err == nil {
		t.Fatal("nil partition accepted")
	}
	small := shard.ByRange(graph.New(3), 2)
	if err := e.EnableSharding(small, 1); err == nil {
		t.Fatal("mismatched partition accepted")
	}
	rnd := NewEngine(stressSpec(8, 6), NewLGGRandomTies(rng.New(1)))
	if err := rnd.EnableSharding(shard.ByBFS(rnd.Spec.G, 2), 1); err == nil {
		t.Fatal("TieRandom sharding accepted; its key stream is order-dependent")
	}
	if k, w := e.Sharding(); k != 0 || w != 0 {
		t.Fatalf("failed enables left sharding on: k=%d w=%d", k, w)
	}
}

// TestShardedPanicIsolation: a panic inside a parallel phase (here from
// a negative injection) must surface on the Step caller's goroutine, on
// any worker count, so sweep-level recovery still works.
func TestShardedPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 2} {
		e := NewEngine(stressSpec(8, 6), NewLGG())
		e.Arrivals = negArrivals{}
		if err := e.EnableSharding(shard.ByBFS(e.Spec.G, 4), workers); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: negative injection did not panic through Step", workers)
				}
			}()
			e.Step()
		}()
		e.DisableSharding()
	}
}

type negArrivals struct{}

func (negArrivals) Name() string { return "neg" }
func (negArrivals) Injections(_ int64, _ *Spec, inj []int64) {
	inj[len(inj)/2] = -1
}

// TestShardedStepAllocFree: the sharded hot path allocates nothing in
// steady state with inline workers — the budget the CI bench gate
// enforces.
func TestShardedStepAllocFree(t *testing.T) {
	e := stressEngine(2)
	if err := e.EnableSharding(shard.ByBFS(e.Spec.G, 8), 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ { // grow scratch to working size
		e.Step()
	}
	if avg := testing.AllocsPerRun(100, func() { e.Step() }); avg != 0 {
		t.Fatalf("sharded Step allocates %.1f times per step in steady state", avg)
	}
}
