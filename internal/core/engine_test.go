package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestEngineClassicalLineDrains(t *testing.T) {
	// line(2): source 0 injects 1, sink 1 extracts 1. LGG forwards along
	// the single edge; queues must stay tiny forever.
	s := lineSpec(2, 1, 1)
	e := NewEngine(s, NewLGG())
	tot := e.Run(500)
	if tot.Violations != 0 {
		t.Fatalf("violations = %d", tot.Violations)
	}
	if tot.PeakMaxQ > 3 {
		t.Fatalf("peak queue %d on a trivially stable line", tot.PeakMaxQ)
	}
	if tot.Injected != 500 {
		t.Fatalf("injected = %d", tot.Injected)
	}
	// Conservation: injected = extracted + stored + lost.
	if tot.Injected != tot.Extracted+tot.FinalQueued+tot.Lost {
		t.Fatalf("packet conservation: inj=%d extr=%d stored=%d lost=%d",
			tot.Injected, tot.Extracted, tot.FinalQueued, tot.Lost)
	}
}

func TestEngineInfeasibleDiverges(t *testing.T) {
	// line(4) with in=3: only 1 packet/step can leave the source's edge;
	// the source queue must grow without bound.
	s := lineSpec(4, 3, 3)
	e := NewEngine(s, NewLGG())
	tot := e.Run(300)
	if tot.FinalQueued < 300 { // at least 2 surplus packets/step stay behind
		t.Fatalf("overloaded network stored only %d packets", tot.FinalQueued)
	}
}

func TestEngineStepPhasesOrder(t *testing.T) {
	// One step on line(2): inject 1 at node 0; LGG sends it to node 1
	// (0 has q=1 > q=0); sink extracts it. Net state: empty.
	s := lineSpec(2, 1, 1)
	e := NewEngine(s, NewLGG())
	st := e.Step()
	if st.Injected != 1 || st.Sent != 1 || st.Arrived != 1 || st.Extracted != 1 {
		t.Fatalf("step = %+v", st)
	}
	if st.Queued != 0 || st.Potential != 0 {
		t.Fatalf("state after step = %+v", st)
	}
	if e.T != 1 {
		t.Fatalf("T = %d", e.T)
	}
}

func TestEngineExtractionWindow(t *testing.T) {
	// Generalized destination with R=2, out=3, queue loaded to 6:
	// lo = min(3, 6-2) = 3, hi = min(3,6) = 3 → must extract exactly 3
	// regardless of policy. With queue 4: lo = min(3,2)=2, hi=3.
	g := graph.Line(2)
	s := NewSpec(g).SetSource(0, 1).SetSink(1, 3).SetRetention(1, 2)
	e := NewEngine(s, nullRouter{})
	e.Arrivals = noArrivals{}
	e.Extract = ExtractMin{}
	e.SetQueues([]int64{0, 6})
	e.Step()
	if e.Q[1] != 3 {
		t.Fatalf("q=6,R=2,out=3: extracted to %d, want 3", e.Q[1])
	}
	e.SetQueues([]int64{0, 4})
	e.Step()
	if e.Q[1] != 2 {
		t.Fatalf("q=4,R=2,out=3 with min policy: extracted to %d, want 2", e.Q[1])
	}
	e.Extract = ExtractMax{}
	e.SetQueues([]int64{0, 4})
	e.Step()
	if e.Q[1] != 1 {
		t.Fatalf("q=4,out=3 with max policy: extracted to %d, want 1", e.Q[1])
	}
	// Below R, the min policy may hold everything.
	e.Extract = ExtractMin{}
	e.SetQueues([]int64{0, 2})
	e.Step()
	if e.Q[1] != 2 {
		t.Fatalf("q=2,R=2 with min policy: extracted to %d, want 2", e.Q[1])
	}
}

func TestEngineClassicalSinkExtractsExactly(t *testing.T) {
	// R=0 sink: both policies must extract min(out, q).
	for _, pol := range []ExtractPolicy{ExtractMax{}, ExtractMin{}} {
		g := graph.Line(2)
		s := NewSpec(g).SetSource(0, 1).SetSink(1, 2)
		e := NewEngine(s, nullRouter{})
		e.Arrivals = noArrivals{}
		e.Extract = pol
		e.SetQueues([]int64{0, 5})
		e.Step()
		if e.Q[1] != 3 {
			t.Fatalf("%s: classical sink extracted to %d, want 3", pol.Name(), e.Q[1])
		}
	}
}

func TestEngineDeclarePolicies(t *testing.T) {
	// Node 1 has R=4, queue 0 ≤ R (and no budget of its own). Under
	// DeclareZero node 0 (q=2) sees 0 and sends; under DeclareR it sees 4
	// and stays quiet.
	build := func(d DeclarePolicy) *Engine {
		g := graph.Line(2)
		s := NewSpec(g).SetSource(0, 1).SetSink(1, 1).SetRetention(1, 4)
		e := NewEngine(s, NewLGG())
		e.Arrivals = noArrivals{}
		e.Declare = d
		e.Extract = ExtractMin{}
		e.SetQueues([]int64{2, 0})
		return e
	}
	e := build(DeclareZero{})
	st := e.Step()
	if st.Sent != 1 {
		t.Fatalf("DeclareZero: sent = %d, want 1", st.Sent)
	}
	e = build(DeclareR{})
	st = e.Step()
	if st.Sent != 0 {
		t.Fatalf("DeclareR: sent = %d, want 0", st.Sent)
	}
	// Above R the node must tell the truth no matter the policy.
	e = build(DeclareZero{})
	e.SetQueues([]int64{2, 9})
	e.Step()
	if e.Snapshot().Declared[1] != 9 {
		t.Fatalf("above R, declared = %d, want truth 9", e.Snapshot().Declared[1])
	}
}

func TestEngineValidationRejectsBadSends(t *testing.T) {
	// A malicious router that duplicates an edge and overdraws a queue.
	g := graph.New(2)
	g.AddEdges(0, 1, 2) // two parallel edges
	s := NewSpec(g).SetSource(0, 1).SetSink(1, 2)
	e := NewEngine(s, badRouter{})
	e.Arrivals = noArrivals{}
	e.SetQueues([]int64{1, 0})
	st := e.Step()
	if st.Sent != 1 {
		t.Fatalf("sent = %d, want exactly 1 (edge used once, budget 1)", st.Sent)
	}
	if st.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1 (duplicate edge use)", st.Collisions)
	}
	if st.Violations != 1 {
		t.Fatalf("violations = %d, want 1 (overdraw on the parallel edge)", st.Violations)
	}
	if e.Q[0] != 0 || e.Q[1] != 0 { // arrived then extracted
		t.Fatalf("queues = %v", e.Q)
	}
}

func TestEngineLossModel(t *testing.T) {
	g := graph.Line(2)
	s := NewSpec(g).SetSource(0, 1).SetSink(1, 1)
	e := NewEngine(s, NewLGG())
	e.Loss = alwaysLose{}
	tot := e.Run(50)
	if tot.Arrived != 0 || tot.Lost != tot.Sent {
		t.Fatalf("always-lose: %+v", tot)
	}
	if tot.Extracted != 0 {
		t.Fatalf("nothing should reach the sink, extracted = %d", tot.Extracted)
	}
}

func TestEngineTopologyMask(t *testing.T) {
	g := graph.Line(2)
	s := NewSpec(g).SetSource(0, 1).SetSink(1, 1)
	e := NewEngine(s, NewLGG())
	e.Topology = deadTopology{}
	tot := e.Run(20)
	if tot.Sent != 0 {
		t.Fatalf("sends on dead edge: %+v", tot)
	}
	if tot.FinalQueued != 20 {
		t.Fatalf("stored = %d, want 20", tot.FinalQueued)
	}
}

func TestEngineInterferenceFilter(t *testing.T) {
	g := graph.Star(4)
	s := NewSpec(g).SetSource(0, 3)
	for i := 1; i < 4; i++ {
		s.SetSink(graph.NodeID(i), 1)
	}
	e := NewEngine(s, NewLGG())
	e.Interference = keepFirst{}
	st := e.Step()
	if st.Sent != 1 {
		t.Fatalf("interference filter ignored: sent = %d", st.Sent)
	}
	if st.Filtered != st.Planned-1 {
		t.Fatalf("filtered = %d, planned = %d", st.Filtered, st.Planned)
	}
}

func TestEnginePanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine accepted an invalid spec")
		}
	}()
	NewEngine(NewSpec(graph.Line(2)), NewLGG())
}

func TestEngineSetQueuesPanics(t *testing.T) {
	e := NewEngine(lineSpec(3, 1, 1), NewLGG())
	defer func() {
		if recover() == nil {
			t.Fatal("SetQueues accepted a wrong-length vector")
		}
	}()
	e.SetQueues([]int64{1})
}

func TestEngineNegativeArrivalPanics(t *testing.T) {
	e := NewEngine(lineSpec(2, 1, 1), NewLGG())
	e.Arrivals = negativeArrivals{}
	defer func() {
		if recover() == nil {
			t.Fatal("negative injection accepted")
		}
	}()
	e.Step()
}

// Property: queues never go negative and packets are conserved under any
// random feasible-or-not spec, loss probability, and horizon.
func TestQuickEngineConservation(t *testing.T) {
	f := func(seed uint64, nRaw, inRaw uint8, steps uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%8) + 2
		g := graph.RandomMultigraph(n, n+r.IntN(n), r)
		s := NewSpec(g)
		s.SetSource(0, 1+int64(inRaw%3))
		s.SetSink(graph.NodeID(n-1), 1+r.Int64N(3))
		e := NewEngine(s, NewLGG())
		e.Loss = coinLoss{r: r.Split(1), p: 0.2}
		var tot Totals
		for i := 0; i < int(steps%60)+5; i++ {
			st := e.Step()
			tot.Add(st)
			for v, q := range e.Q {
				if q < 0 {
					t.Logf("negative queue at node %d", v)
					return false
				}
			}
			if st.Violations != 0 {
				return false
			}
		}
		return tot.Injected == tot.Extracted+tot.FinalQueued+tot.Lost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// --- test doubles ---

type nullRouter struct{}

func (nullRouter) Name() string                      { return "null" }
func (nullRouter) Plan(_ *Snapshot, b []Send) []Send { return b }

type noArrivals struct{}

func (noArrivals) Name() string                     { return "none" }
func (noArrivals) Injections(int64, *Spec, []int64) {}

type negativeArrivals struct{}

func (negativeArrivals) Name() string { return "negative" }
func (negativeArrivals) Injections(_ int64, _ *Spec, inj []int64) {
	inj[0] = -1
}

type badRouter struct{}

func (badRouter) Name() string { return "bad" }
func (badRouter) Plan(sn *Snapshot, b []Send) []Send {
	// edge 0 twice (second is a collision) and edge 1 once (with q(0)=1
	// the budget is already spent: overdraw violation).
	return append(b, Send{Edge: 0, From: 0}, Send{Edge: 0, From: 0}, Send{Edge: 1, From: 0})
}

type alwaysLose struct{}

func (alwaysLose) Name() string                                { return "always" }
func (alwaysLose) Lost(int64, graph.EdgeID, graph.NodeID) bool { return true }

type coinLoss struct {
	r *rng.Source
	p float64
}

func (c coinLoss) Name() string                                { return "coin" }
func (c coinLoss) Lost(int64, graph.EdgeID, graph.NodeID) bool { return c.r.Bool(c.p) }

type deadTopology struct{}

func (deadTopology) Name() string                       { return "dead" }
func (deadTopology) EdgeAlive(int64, graph.EdgeID) bool { return false }

type keepFirst struct{}

func (keepFirst) Name() string { return "keep-first" }
func (keepFirst) Filter(_ *Snapshot, sends []Send) []Send {
	if len(sends) > 1 {
		return sends[:1]
	}
	return sends
}

func TestSetQueuesClearsEdgeUseScratch(t *testing.T) {
	// Regression: edgeUsed stores T+1 as its in-use marker. An engine
	// reused for a fresh run (SetQueues + T reset) must not mistake a
	// stale marker from the previous run for an edge already claimed in
	// the replayed step 0.
	s := lineSpec(2, 1, 1)
	e := NewEngine(s, NewLGG())
	if st := e.Step(); st.Sent != 1 { // edge 0 transmits, marker = 1
		t.Fatalf("warmup step sent %d packets", st.Sent)
	}
	e.SetQueues([]int64{0, 0})
	e.T = 0 // replay from the prepared state: T+1 == stale marker value
	st := e.Step()
	if st.Collisions != 0 {
		t.Fatalf("phantom collisions after SetQueues reset: %+v", st)
	}
	if st.Sent != 1 {
		t.Fatalf("replayed step 0 sent %d packets, want 1", st.Sent)
	}
}
