package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestSetQueuesMidRunReplay rewinds a warm engine (SetQueues + T reset)
// and requires the replay to match a fresh engine step for step: same
// stats, same queue trajectory. This covers the edge-use scratch reset,
// the sparse inj/sentBy bookkeeping and the active-node list rebuild — a
// stale entry in any of them shows up as a diverging trajectory.
func TestSetQueuesMidRunReplay(t *testing.T) {
	build := func() *Engine {
		r := rng.New(9)
		g := graph.RandomMultigraph(10, 24, r)
		s := NewSpec(g).SetSource(0, 2).SetSink(9, 3)
		return NewEngine(s, NewLGG())
	}
	prepared := []int64{5, 0, 3, 0, 0, 7, 0, 1, 0, 2}

	dirty := build()
	dirty.Run(137) // arbitrary warm-up leaves scratch in a used state
	dirty.SetQueues(prepared)
	dirty.T = 0

	fresh := build()
	fresh.SetQueues(prepared)

	for i := 0; i < 80; i++ {
		ds, fs := dirty.Step(), fresh.Step()
		if ds != fs {
			t.Fatalf("step %d: replayed stats %+v, fresh stats %+v", i, ds, fs)
		}
		if !reflect.DeepEqual(dirty.Q, fresh.Q) {
			t.Fatalf("step %d: replayed queues %v, fresh queues %v", i, dirty.Q, fresh.Q)
		}
	}
}

// TestActiveListInvariant white-boxes the engine's active-node list: after
// every step it must be strictly ascending and contain every node with a
// positive queue.
func TestActiveListInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		r := rng.New(seed)
		n := 3 + r.IntN(12)
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		s := NewSpec(g).SetSource(0, 1+r.Int64N(3)).SetSink(graph.NodeID(n-1), 1+r.Int64N(3))
		e := NewEngine(s, NewLGG())
		e.Loss = coinLoss{r: r.Split(2), p: 0.2}
		for i := 0; i < 60; i++ {
			e.Step()
			for j := 1; j < len(e.active); j++ {
				if e.active[j-1] >= e.active[j] {
					t.Fatalf("seed %d step %d: active list not ascending: %v", seed, i, e.active)
				}
			}
			inActive := make(map[graph.NodeID]bool, len(e.active)+len(e.newlyActive))
			for _, v := range e.active {
				inActive[v] = true
			}
			for _, v := range e.newlyActive {
				inActive[v] = true
			}
			// Compaction (merging newlyActive in, dropping drained nodes)
			// happens at the next step's planning point, so between steps
			// active may hold drained nodes and fresh arrivals still sit in
			// newlyActive — but no node that currently stores packets may be
			// missing from their union.
			for v, q := range e.Q {
				if q > 0 && !inActive[graph.NodeID(v)] {
					t.Fatalf("seed %d step %d: node %d has q=%d but is not active (%v)",
						seed, i, v, q, e.active)
				}
			}
		}
	}
}

// aliveBlindRouter plans over every incident edge of node 0, ignoring the
// snapshot's Alive mask — modelling a router that did not get the memo
// about a dynamic topology.
type aliveBlindRouter struct{}

func (aliveBlindRouter) Name() string { return "alive-blind" }
func (aliveBlindRouter) Plan(sn *Snapshot, buf []Send) []Send {
	for _, in := range sn.Spec.G.Incident(0) {
		buf = append(buf, Send{Edge: in.Edge, From: 0})
	}
	return buf
}

// TestDeadEdgeDropsCountAsFiltered pins the accounting contract: sends
// attempted over an edge the TopologyProcess took down are environment
// drops (Filtered), not router bugs (Violations) — the router cannot see
// through the engine's Alive mask, so a dynamic topology must not be able
// to produce violations on its own.
func TestDeadEdgeDropsCountAsFiltered(t *testing.T) {
	g := graph.Star(4) // edges 0,1,2 from hub 0
	s := NewSpec(g).SetSource(0, 3)
	for i := 1; i < 4; i++ {
		s.SetSink(graph.NodeID(i), 1)
	}
	e := NewEngine(s, aliveBlindRouter{})
	e.Topology = maskTopology{dead: map[graph.EdgeID]bool{1: true}}
	st := e.Step()
	if st.Planned != 3 {
		t.Fatalf("planned = %d, want 3", st.Planned)
	}
	if st.Filtered != 1 {
		t.Fatalf("filtered = %d, want 1 (the dead edge)", st.Filtered)
	}
	if st.Violations != 0 {
		t.Fatalf("violations = %d, want 0: topology drops are not router bugs", st.Violations)
	}
	if st.Sent != 2 {
		t.Fatalf("sent = %d, want 2", st.Sent)
	}
}

// TestOverdrawStillCountsAsViolation guards the other side of the
// accounting split: overdrawn queues remain Violations.
func TestOverdrawStillCountsAsViolation(t *testing.T) {
	g := graph.Star(4)
	s := NewSpec(g).SetSource(0, 1)
	for i := 1; i < 4; i++ {
		s.SetSink(graph.NodeID(i), 1)
	}
	e := NewEngine(s, aliveBlindRouter{})
	st := e.Step() // q(0)=1 but the router plans 3 sends
	if st.Violations != 2 {
		t.Fatalf("violations = %d, want 2 (two overdraws)", st.Violations)
	}
	if st.Filtered != 0 {
		t.Fatalf("filtered = %d, want 0", st.Filtered)
	}
}

// TestPotentialSaturates pins the int64 boundary behaviour of the
// potential: exact below the limit, saturated (not wrapped) above it.
func TestPotentialSaturates(t *testing.T) {
	const maxSq = 3037000499 // ⌊√(2⁶³−1)⌋
	cases := []struct {
		name string
		q    []int64
		want int64
		ovf  bool
	}{
		{"empty", nil, 0, false},
		{"small", []int64{3, 4}, 25, false},
		{"max-exact-square", []int64{maxSq}, maxSq * maxSq, false},
		{"one-past-square", []int64{maxSq + 1}, math.MaxInt64, true},
		{"sum-overflow", []int64{maxSq, maxSq, maxSq}, math.MaxInt64, true},
		{"huge", []int64{math.MaxInt64}, math.MaxInt64, true},
	}
	for _, c := range cases {
		p, ovf := PotentialSat(c.q)
		if p != c.want || ovf != c.ovf {
			t.Errorf("%s: PotentialSat = (%d, %v), want (%d, %v)", c.name, p, ovf, c.want, c.ovf)
		}
		if got := Potential(c.q); got != c.want {
			t.Errorf("%s: Potential = %d, want %d", c.name, got, c.want)
		}
		if p < 0 {
			t.Errorf("%s: potential wrapped negative", c.name)
		}
	}
}

// TestEngineOverflowFlag drives an engine into the saturation regime and
// checks the flag surfaces on StepStats and folds into Totals.
func TestEngineOverflowFlag(t *testing.T) {
	s := lineSpec(3, 1, 1)
	e := NewEngine(s, NewLGG())
	e.SetQueues([]int64{int64(1) << 33, 0, 0})
	st := e.Step()
	if !st.Overflowed {
		t.Fatalf("queue 2³³: Overflowed not set, potential = %d", st.Potential)
	}
	if st.Potential != math.MaxInt64 {
		t.Fatalf("potential = %d, want saturation at MaxInt64", st.Potential)
	}
	var tot Totals
	tot.Add(st)
	if !tot.Overflowed {
		t.Fatal("Totals.Add dropped the overflow flag")
	}
	if tot.PeakPotential != math.MaxInt64 {
		t.Fatalf("peak potential = %d, want MaxInt64", tot.PeakPotential)
	}
	// A later non-overflowing step must not clear the sticky flag.
	tot.Add(StepStats{Potential: 5})
	if !tot.Overflowed {
		t.Fatal("overflow flag must be sticky across Add")
	}
}

// churnTopology takes each listed edge down for its half-open window —
// the deterministic skeleton of a link-churn schedule, kept local because
// core cannot import the faults package built on top of it.
type churnTopology struct {
	windows map[graph.EdgeID][2]int64
}

func (c churnTopology) Name() string { return "churn" }
func (c churnTopology) EdgeAlive(t int64, e graph.EdgeID) bool {
	w, ok := c.windows[e]
	return !ok || t < w[0] || t >= w[1]
}

// TestChurnFilteredAcrossDrainedEndpoint pins the TopologyProcess ×
// active-list interplay: an edge dies while its receiving endpoint is a
// drained sink (absent from the active list), stays down for a window and
// revives. An alive-blind router keeps attempting it, so Filtered must
// count exactly one drop per down step — no residue after revival, and
// never a Violation.
func TestChurnFilteredAcrossDrainedEndpoint(t *testing.T) {
	g := graph.Star(4) // edges 0,1,2 from hub 0
	s := NewSpec(g).SetSource(0, 3)
	for i := 1; i < 4; i++ {
		s.SetSink(graph.NodeID(i), 1)
	}
	e := NewEngine(s, aliveBlindRouter{})
	e.Topology = churnTopology{windows: map[graph.EdgeID][2]int64{1: {5, 15}}}
	for i := int64(0); i < 25; i++ {
		st := e.Step()
		wantF, wantSent := int64(0), int64(3)
		if i >= 5 && i < 15 {
			wantF, wantSent = 1, 2
		}
		if st.Filtered != wantF {
			t.Fatalf("step %d: filtered = %d, want %d", i, st.Filtered, wantF)
		}
		if st.Sent != wantSent {
			t.Fatalf("step %d: sent = %d, want %d", i, st.Sent, wantSent)
		}
		if st.Violations != 0 {
			t.Fatalf("step %d: violations = %d, want 0 (churn is not a router bug)", i, st.Violations)
		}
	}
}

// TestChurnScheduleLGGRecovers runs alive-aware LGG through a window that
// cuts the source off (both incident edges down) on a cycle: LGG must
// never attempt a dead edge (Filtered == 0), pile up the backlog during
// the window, and visibly drain it after revival over the cycle's two
// disjoint paths.
func TestChurnScheduleLGGRecovers(t *testing.T) {
	g := graph.Cycle(4)
	s := NewSpec(g).SetSource(0, 1).SetSink(2, 2)
	e := NewEngine(s, NewLGG())
	e.Topology = churnTopology{windows: map[graph.EdgeID][2]int64{0: {10, 40}, 3: {10, 40}}}
	var peak int64
	for i := 0; i < 300; i++ {
		st := e.Step()
		if st.Filtered != 0 {
			t.Fatalf("step %d: alive-aware LGG filtered %d sends", i, st.Filtered)
		}
		if st.Violations != 0 {
			t.Fatalf("step %d: violations = %d", i, st.Violations)
		}
		if st.Queued > peak {
			peak = st.Queued
		}
	}
	if peak < 25 {
		t.Fatalf("peak backlog = %d, want the 30-step cut to pile up ≥ 25", peak)
	}
	var final int64
	for _, q := range e.Q {
		final += q
	}
	if final > peak/2 {
		t.Fatalf("final backlog %d did not drain from peak %d after revival", final, peak)
	}
}

// TestSetQueuesReplayUnderChurn extends the mid-run replay contract to a
// time-dependent topology: rewinding a warm engine (SetQueues + T reset)
// must replay the same trajectory as a fresh engine, including the alive
// mask's window edges and the revival of edges whose endpoints drained
// out of the active list mid-window.
func TestSetQueuesReplayUnderChurn(t *testing.T) {
	churn := churnTopology{windows: map[graph.EdgeID][2]int64{
		2: {7, 19}, 5: {0, 11}, 9: {23, 31}, 11: {13, 29},
	}}
	build := func() *Engine {
		r := rng.New(9)
		g := graph.RandomMultigraph(10, 24, r)
		s := NewSpec(g).SetSource(0, 2).SetSink(9, 3)
		e := NewEngine(s, NewLGG())
		e.Topology = churn
		return e
	}
	prepared := []int64{5, 0, 3, 0, 0, 7, 0, 1, 0, 2}

	dirty := build()
	dirty.Run(137) // warm-up leaves scratch (incl. the alive mask) used
	dirty.SetQueues(prepared)
	dirty.T = 0

	fresh := build()
	fresh.SetQueues(prepared)

	for i := 0; i < 80; i++ {
		ds, fs := dirty.Step(), fresh.Step()
		if ds != fs {
			t.Fatalf("step %d: replayed stats %+v, fresh stats %+v", i, ds, fs)
		}
		if !reflect.DeepEqual(dirty.Q, fresh.Q) {
			t.Fatalf("step %d: replayed queues %v, fresh queues %v", i, dirty.Q, fresh.Q)
		}
	}
}
