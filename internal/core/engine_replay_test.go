package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestSetQueuesMidRunReplay rewinds a warm engine (SetQueues + T reset)
// and requires the replay to match a fresh engine step for step: same
// stats, same queue trajectory. This covers the edge-use scratch reset,
// the sparse inj/sentBy bookkeeping and the active-node list rebuild — a
// stale entry in any of them shows up as a diverging trajectory.
func TestSetQueuesMidRunReplay(t *testing.T) {
	build := func() *Engine {
		r := rng.New(9)
		g := graph.RandomMultigraph(10, 24, r)
		s := NewSpec(g).SetSource(0, 2).SetSink(9, 3)
		return NewEngine(s, NewLGG())
	}
	prepared := []int64{5, 0, 3, 0, 0, 7, 0, 1, 0, 2}

	dirty := build()
	dirty.Run(137) // arbitrary warm-up leaves scratch in a used state
	dirty.SetQueues(prepared)
	dirty.T = 0

	fresh := build()
	fresh.SetQueues(prepared)

	for i := 0; i < 80; i++ {
		ds, fs := dirty.Step(), fresh.Step()
		if ds != fs {
			t.Fatalf("step %d: replayed stats %+v, fresh stats %+v", i, ds, fs)
		}
		if !reflect.DeepEqual(dirty.Q, fresh.Q) {
			t.Fatalf("step %d: replayed queues %v, fresh queues %v", i, dirty.Q, fresh.Q)
		}
	}
}

// TestActiveListInvariant white-boxes the engine's active-node list: after
// every step it must be strictly ascending and contain every node with a
// positive queue.
func TestActiveListInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		r := rng.New(seed)
		n := 3 + r.IntN(12)
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		s := NewSpec(g).SetSource(0, 1+r.Int64N(3)).SetSink(graph.NodeID(n-1), 1+r.Int64N(3))
		e := NewEngine(s, NewLGG())
		e.Loss = coinLoss{r: r.Split(2), p: 0.2}
		for i := 0; i < 60; i++ {
			e.Step()
			for j := 1; j < len(e.active); j++ {
				if e.active[j-1] >= e.active[j] {
					t.Fatalf("seed %d step %d: active list not ascending: %v", seed, i, e.active)
				}
			}
			inActive := make(map[graph.NodeID]bool, len(e.active)+len(e.newlyActive))
			for _, v := range e.active {
				inActive[v] = true
			}
			for _, v := range e.newlyActive {
				inActive[v] = true
			}
			// Compaction (merging newlyActive in, dropping drained nodes)
			// happens at the next step's planning point, so between steps
			// active may hold drained nodes and fresh arrivals still sit in
			// newlyActive — but no node that currently stores packets may be
			// missing from their union.
			for v, q := range e.Q {
				if q > 0 && !inActive[graph.NodeID(v)] {
					t.Fatalf("seed %d step %d: node %d has q=%d but is not active (%v)",
						seed, i, v, q, e.active)
				}
			}
		}
	}
}

// aliveBlindRouter plans over every incident edge of node 0, ignoring the
// snapshot's Alive mask — modelling a router that did not get the memo
// about a dynamic topology.
type aliveBlindRouter struct{}

func (aliveBlindRouter) Name() string { return "alive-blind" }
func (aliveBlindRouter) Plan(sn *Snapshot, buf []Send) []Send {
	for _, in := range sn.Spec.G.Incident(0) {
		buf = append(buf, Send{Edge: in.Edge, From: 0})
	}
	return buf
}

// TestDeadEdgeDropsCountAsFiltered pins the accounting contract: sends
// attempted over an edge the TopologyProcess took down are environment
// drops (Filtered), not router bugs (Violations) — the router cannot see
// through the engine's Alive mask, so a dynamic topology must not be able
// to produce violations on its own.
func TestDeadEdgeDropsCountAsFiltered(t *testing.T) {
	g := graph.Star(4) // edges 0,1,2 from hub 0
	s := NewSpec(g).SetSource(0, 3)
	for i := 1; i < 4; i++ {
		s.SetSink(graph.NodeID(i), 1)
	}
	e := NewEngine(s, aliveBlindRouter{})
	e.Topology = maskTopology{dead: map[graph.EdgeID]bool{1: true}}
	st := e.Step()
	if st.Planned != 3 {
		t.Fatalf("planned = %d, want 3", st.Planned)
	}
	if st.Filtered != 1 {
		t.Fatalf("filtered = %d, want 1 (the dead edge)", st.Filtered)
	}
	if st.Violations != 0 {
		t.Fatalf("violations = %d, want 0: topology drops are not router bugs", st.Violations)
	}
	if st.Sent != 2 {
		t.Fatalf("sent = %d, want 2", st.Sent)
	}
}

// TestOverdrawStillCountsAsViolation guards the other side of the
// accounting split: overdrawn queues remain Violations.
func TestOverdrawStillCountsAsViolation(t *testing.T) {
	g := graph.Star(4)
	s := NewSpec(g).SetSource(0, 1)
	for i := 1; i < 4; i++ {
		s.SetSink(graph.NodeID(i), 1)
	}
	e := NewEngine(s, aliveBlindRouter{})
	st := e.Step() // q(0)=1 but the router plans 3 sends
	if st.Violations != 2 {
		t.Fatalf("violations = %d, want 2 (two overdraws)", st.Violations)
	}
	if st.Filtered != 0 {
		t.Fatalf("filtered = %d, want 0", st.Filtered)
	}
}

// TestPotentialSaturates pins the int64 boundary behaviour of the
// potential: exact below the limit, saturated (not wrapped) above it.
func TestPotentialSaturates(t *testing.T) {
	const maxSq = 3037000499 // ⌊√(2⁶³−1)⌋
	cases := []struct {
		name string
		q    []int64
		want int64
		ovf  bool
	}{
		{"empty", nil, 0, false},
		{"small", []int64{3, 4}, 25, false},
		{"max-exact-square", []int64{maxSq}, maxSq * maxSq, false},
		{"one-past-square", []int64{maxSq + 1}, math.MaxInt64, true},
		{"sum-overflow", []int64{maxSq, maxSq, maxSq}, math.MaxInt64, true},
		{"huge", []int64{math.MaxInt64}, math.MaxInt64, true},
	}
	for _, c := range cases {
		p, ovf := PotentialSat(c.q)
		if p != c.want || ovf != c.ovf {
			t.Errorf("%s: PotentialSat = (%d, %v), want (%d, %v)", c.name, p, ovf, c.want, c.ovf)
		}
		if got := Potential(c.q); got != c.want {
			t.Errorf("%s: Potential = %d, want %d", c.name, got, c.want)
		}
		if p < 0 {
			t.Errorf("%s: potential wrapped negative", c.name)
		}
	}
}

// TestEngineOverflowFlag drives an engine into the saturation regime and
// checks the flag surfaces on StepStats and folds into Totals.
func TestEngineOverflowFlag(t *testing.T) {
	s := lineSpec(3, 1, 1)
	e := NewEngine(s, NewLGG())
	e.SetQueues([]int64{int64(1) << 33, 0, 0})
	st := e.Step()
	if !st.Overflowed {
		t.Fatalf("queue 2³³: Overflowed not set, potential = %d", st.Potential)
	}
	if st.Potential != math.MaxInt64 {
		t.Fatalf("potential = %d, want saturation at MaxInt64", st.Potential)
	}
	var tot Totals
	tot.Add(st)
	if !tot.Overflowed {
		t.Fatal("Totals.Add dropped the overflow flag")
	}
	if tot.PeakPotential != math.MaxInt64 {
		t.Fatalf("peak potential = %d, want MaxInt64", tot.PeakPotential)
	}
	// A later non-overflowing step must not clear the sticky flag.
	tot.Add(StepStats{Potential: 5})
	if !tot.Overflowed {
		t.Fatal("overflow flag must be sticky across Add")
	}
}
