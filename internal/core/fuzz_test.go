package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// FuzzLGGPlan feeds arbitrary queue and declaration bytes to the planner
// and checks the physical invariants always hold: at most one send per
// edge, per-node sends bounded by the true queue, and strictly-downhill
// sends with respect to the declared queues.
func FuzzLGGPlan(f *testing.F) {
	f.Add(uint64(1), []byte{1, 2, 3, 0, 5}, []byte{1, 2, 3, 0, 5})
	f.Add(uint64(7), []byte{0, 0, 0}, []byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, seed uint64, qBytes, dBytes []byte) {
		n := len(qBytes)
		if n < 2 || n > 24 {
			return
		}
		r := rng.New(seed)
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		spec := NewSpec(g)
		spec.In[0] = 1
		spec.Out[n-1] = 1
		q := make([]int64, n)
		d := make([]int64, n)
		for i := 0; i < n; i++ {
			q[i] = int64(qBytes[i])
			if i < len(dBytes) {
				d[i] = int64(dBytes[i])
			}
		}
		sn := &Snapshot{Spec: spec, Q: q, Declared: d}
		sends := NewLGG().Plan(sn, nil)
		// When declarations are inconsistent with true queues, both
		// endpoints may legitimately claim the same edge (the engine
		// arbitrates those collisions); a single node must still never
		// plan one edge twice, and with consistent declarations the edge
		// is claimed at most once globally.
		consistent := true
		for i := range q {
			if q[i] != d[i] {
				consistent = false
				break
			}
		}
		edgeSeen := map[graph.EdgeID]bool{}
		dirSeen := map[Send]bool{}
		perNode := make([]int64, n)
		for _, s := range sends {
			if dirSeen[s] {
				t.Fatalf("send %+v planned twice by the same node", s)
			}
			dirSeen[s] = true
			if consistent && edgeSeen[s.Edge] {
				t.Fatalf("edge %d planned twice despite consistent declarations", s.Edge)
			}
			edgeSeen[s.Edge] = true
			perNode[s.From]++
			if d[s.To(g)] >= q[s.From] {
				t.Fatalf("uphill send: q(from)=%d declared(to)=%d", q[s.From], d[s.To(g)])
			}
		}
		for v := 0; v < n; v++ {
			if perNode[v] > q[v] {
				t.Fatalf("node %d overdrew: %d sends with queue %d", v, perNode[v], q[v])
			}
		}
	})
}

// FuzzEngineStep drives a whole engine with fuzzed initial queues and a
// fuzzed loss pattern; queues must stay non-negative and conservation
// must hold.
func FuzzEngineStep(f *testing.F) {
	f.Add(uint64(3), []byte{4, 0, 2, 1}, uint8(30))
	f.Fuzz(func(t *testing.T, seed uint64, qBytes []byte, lossPct uint8) {
		n := len(qBytes)
		if n < 2 || n > 16 {
			return
		}
		r := rng.New(seed)
		g := graph.RandomMultigraph(n, n+r.IntN(n), r)
		spec := NewSpec(g).SetSource(0, 1+r.Int64N(3)).SetSink(graph.NodeID(n-1), 1+r.Int64N(3))
		e := NewEngine(spec, NewLGG())
		e.Loss = fuzzLoss{p: float64(lossPct%100) / 100, r: r.Split(1)}
		init := make([]int64, n)
		var initial int64
		for i := range init {
			init[i] = int64(qBytes[i] % 32)
			initial += init[i]
		}
		e.SetQueues(init)
		var tot Totals
		for i := 0; i < 40; i++ {
			st := e.Step()
			tot.Add(st)
			for v, q := range e.Q {
				if q < 0 {
					t.Fatalf("negative queue at node %d", v)
				}
			}
			if st.Violations != 0 {
				t.Fatalf("violations = %d", st.Violations)
			}
		}
		if initial+tot.Injected != tot.Extracted+tot.FinalQueued+tot.Lost {
			t.Fatalf("conservation broken: init=%d inj=%d extr=%d stored=%d lost=%d",
				initial, tot.Injected, tot.Extracted, tot.FinalQueued, tot.Lost)
		}
	})
}

type fuzzLoss struct {
	p float64
	r *rng.Source
}

func (f fuzzLoss) Name() string                                { return "fuzz" }
func (f fuzzLoss) Lost(int64, graph.EdgeID, graph.NodeID) bool { return f.r.Bool(f.p) }

// FuzzDecodeSpec hardens the spec codec: arbitrary input either fails
// cleanly or yields a validated spec that round-trips.
func FuzzDecodeSpec(f *testing.F) {
	f.Add("nodes 3\nedge 0 1\nedge 1 2\nsource 0 2\nsink 2 1\nretain 2 4\n")
	f.Add("nodes 2\nedge 0 1\nsource 0 1\nsink 1 1\n")
	f.Add("nodes 1\nsource 0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<15 {
			return
		}
		s, err := DecodeSpec(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("decoded spec fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := EncodeSpec(&buf, s); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := DecodeSpec(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if back.N() != s.N() || back.G.NumEdges() != s.G.NumEdges() {
			t.Fatal("round trip changed the network")
		}
		for v := 0; v < s.N(); v++ {
			if back.In[v] != s.In[v] || back.Out[v] != s.Out[v] || back.R[v] != s.R[v] {
				t.Fatal("round trip changed the roles")
			}
		}
	})
}
