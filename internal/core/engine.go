package core

import (
	"fmt"

	"repro/internal/graph"
)

// ArrivalProcess decides how many packets each source injects at each
// step. Classical sources inject exactly in(v) ("each source s ∈ S
// injects in(s) packets"); generalized sources inject *at most* in(v)
// (Definition 5), which also models losses at injection. The conjecture
// experiments use processes that occasionally exceed in(v) (bursts); the
// engine places no cap — feasibility analysis is a separate concern.
type ArrivalProcess interface {
	Name() string
	// Injections writes the number of packets injected at step t into
	// inj[v] for every node (the engine pre-zeroes inj). Entries must be
	// non-negative.
	Injections(t int64, spec *Spec, inj []int64)
}

// LossModel decides, per attempted transmission, whether the packet is
// lost in flight ("this packet can be lost without any notification").
type LossModel interface {
	Name() string
	Lost(t int64, e graph.EdgeID, from graph.NodeID) bool
}

// DeclarePolicy chooses the queue length an R-generalized node reveals to
// its neighbours when its true queue is at most R (Definition 6(ii): it
// may declare any value ≤ R). The engine only consults it in that case;
// above R nodes always tell the truth.
type DeclarePolicy interface {
	Name() string
	// Declare returns the revealed queue for node v with true queue q ≤ r.
	// The engine clamps the result to [0, r].
	Declare(t int64, v graph.NodeID, q, r int64) int64
}

// ExtractPolicy chooses how many packets a destination removes at the end
// of a step, within the legal window [lo, hi] derived from Definition 7:
// hi = min(out(v), q) and lo = min(out(v), q−R) when q > R (0 otherwise).
type ExtractPolicy interface {
	Name() string
	Extract(t int64, v graph.NodeID, lo, hi int64) int64
}

// Interference restricts a planned transmission set to a subset that is
// simultaneously schedulable under a wireless interference model
// (Conjecture 5). The returned slice may share storage with sends.
type Interference interface {
	Name() string
	Filter(sn *Snapshot, sends []Send) []Send
}

// TopologyProcess animates a dynamic network (Conjecture 4): edge e may
// transmit at step t only when EdgeAlive(t, e) is true.
type TopologyProcess interface {
	Name() string
	EdgeAlive(t int64, e graph.EdgeID) bool
}

// StepStats summarizes one engine step.
type StepStats struct {
	T         int64 // the step that was executed
	Injected  int64 // packets added by sources
	Planned   int64 // sends requested by the router
	Filtered  int64 // sends removed by interference/topology/validation
	Sent      int64 // packets that left their queue
	Lost      int64 // sent packets destroyed in flight
	Arrived   int64 // sent packets that reached the far queue
	Extracted int64 // packets removed by destinations
	// Collisions counts sends dropped because their edge was already used
	// this step. Two endpoints can legitimately claim the same link when
	// declared queues disagree with true queues (lying R-generalized
	// nodes); the engine keeps the first planned send, modelling a busy
	// link. Truthful networks always have 0 collisions.
	Collisions int64
	// Violations counts router outputs the engine had to reject as
	// unphysical: overdrawn queues and sends on dead edges. A correct
	// policy keeps this at 0; tests assert it.
	Violations int64
	Potential  int64 // P_{t+1}: network state after the step
	Queued     int64 // total packets stored after the step
	MaxQueue   int64
}

// Totals accumulates StepStats over a run.
type Totals struct {
	Steps                               int64
	Injected, Sent, Lost, Arrived       int64
	Extracted, Collisions, Violations   int64
	PeakPotential, PeakQueued, PeakMaxQ int64
	FinalPotential, FinalQueued         int64
}

// Add folds one step into the totals.
func (t *Totals) Add(s StepStats) {
	t.Steps++
	t.Injected += s.Injected
	t.Sent += s.Sent
	t.Lost += s.Lost
	t.Arrived += s.Arrived
	t.Extracted += s.Extracted
	t.Collisions += s.Collisions
	t.Violations += s.Violations
	if s.Potential > t.PeakPotential {
		t.PeakPotential = s.Potential
	}
	if s.Queued > t.PeakQueued {
		t.PeakQueued = s.Queued
	}
	if s.MaxQueue > t.PeakMaxQ {
		t.PeakMaxQ = s.MaxQueue
	}
	t.FinalPotential = s.Potential
	t.FinalQueued = s.Queued
}

// StepTrace exposes everything that happened during one step, for
// instruments that audit the dynamics (e.g. the Lyapunov decomposition of
// Equations 1–3). Enable with Engine.EnableTrace; the engine then refills
// the same buffers every step.
type StepTrace struct {
	// Sends are the validated transmissions actually applied; Lost[i]
	// reports whether Sends[i] was destroyed in flight.
	Sends []Send
	Lost  []bool
	// Injected and Extracted are per-node packet counts for this step.
	Injected  []int64
	Extracted []int64
}

// Engine executes the synchronous network semantics of Section II:
// inject → plan (on a common snapshot) → transmit with losses → extract.
// The zero value is not usable; construct with NewEngine and then
// optionally override the pluggable behaviours before the first Step.
type Engine struct {
	Spec     *Spec
	Router   Router
	Arrivals ArrivalProcess
	Loss     LossModel
	Declare  DeclarePolicy
	Extract  ExtractPolicy
	// Optional extensions; nil disables them.
	Interference Interference
	Topology     TopologyProcess

	// Q is the live queue vector; read it freely between steps.
	Q []int64
	// T is the next step to execute.
	T int64

	// scratch
	inj      []int64
	declared []int64
	snapQ    []int64
	alive    []bool
	sends    []Send
	edgeUsed []int64 // last step each edge transmitted, as T+1 marker
	sentBy   []int64
	lastSnap Snapshot
	trace    *StepTrace
	// observers registered with AddObserver, invoked after every step.
	observers []StepObserver
}

// EnableTrace switches on per-step tracing and returns the trace buffer,
// which the engine refills on every Step.
func (e *Engine) EnableTrace() *StepTrace {
	if e.trace == nil {
		n := e.Spec.N()
		e.trace = &StepTrace{
			Injected:  make([]int64, n),
			Extracted: make([]int64, n),
		}
	}
	return e.trace
}

// NewEngine builds an engine for spec running router, with classical
// defaults: exact arrivals (sources inject exactly in(v)), no losses,
// truthful declarations and maximal extraction. spec must validate.
func NewEngine(spec *Spec, router Router) *Engine {
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid spec: %v", err))
	}
	n := spec.N()
	return &Engine{
		Spec:     spec,
		Router:   router,
		Arrivals: ExactArrivals{},
		Loss:     NoLoss{},
		Declare:  DeclareTruth{},
		Extract:  ExtractMax{},
		Q:        make([]int64, n),
		inj:      make([]int64, n),
		declared: make([]int64, n),
		snapQ:    make([]int64, n),
		sentBy:   make([]int64, n),
		edgeUsed: make([]int64, spec.G.NumEdges()),
	}
}

// SetQueues overwrites the current queue vector (for experiments that
// start from a prepared state, e.g. Property 2 probes). It also clears the
// edge-use scratch: callers that reset T to replay from a prepared state
// would otherwise race stale T+1 markers from the previous run and count
// phantom collisions.
func (e *Engine) SetQueues(q []int64) {
	if len(q) != len(e.Q) {
		panic("core: queue vector length mismatch")
	}
	copy(e.Q, q)
	for i := range e.edgeUsed {
		e.edgeUsed[i] = 0
	}
}

// Snapshot returns the snapshot the router saw at the most recent step.
// Valid only after at least one Step; the backing arrays are reused.
func (e *Engine) Snapshot() *Snapshot { return &e.lastSnap }

// Step executes one synchronous time step and returns its statistics.
func (e *Engine) Step() StepStats {
	spec := e.Spec
	g := spec.G
	n := spec.N()
	st := StepStats{T: e.T}

	// Phase 1: injection.
	for v := range e.inj {
		e.inj[v] = 0
	}
	e.Arrivals.Injections(e.T, spec, e.inj)
	for v := 0; v < n; v++ {
		if e.inj[v] < 0 {
			panic(fmt.Sprintf("core: arrival process injected %d < 0 at node %d", e.inj[v], v))
		}
		e.Q[v] += e.inj[v]
		st.Injected += e.inj[v]
	}

	// Phase 2: snapshot and declared queues.
	copy(e.snapQ, e.Q)
	for v := 0; v < n; v++ {
		q, r := e.snapQ[v], spec.R[v]
		if r > 0 && q <= r {
			d := e.Declare.Declare(e.T, graph.NodeID(v), q, r)
			if d < 0 {
				d = 0
			}
			if d > r {
				d = r
			}
			e.declared[v] = d
		} else {
			e.declared[v] = q
		}
	}
	var alive []bool
	if e.Topology != nil {
		if e.alive == nil {
			e.alive = make([]bool, g.NumEdges())
		}
		alive = e.alive
		for ed := range alive {
			alive[ed] = e.Topology.EdgeAlive(e.T, graph.EdgeID(ed))
		}
	}
	e.lastSnap = Snapshot{Spec: spec, T: e.T, Q: e.snapQ, Declared: e.declared, Alive: alive}

	// Phase 3: plan.
	e.sends = e.Router.Plan(&e.lastSnap, e.sends[:0])
	st.Planned = int64(len(e.sends))

	// Phase 3b: interference filtering.
	if e.Interference != nil {
		kept := e.Interference.Filter(&e.lastSnap, e.sends)
		st.Filtered += int64(len(e.sends) - len(kept))
		e.sends = kept
	}

	// Phase 3c: physical validation. marker: edgeUsed[e] == T+1 means
	// edge e already transmits this step.
	marker := e.T + 1
	for v := range e.sentBy {
		e.sentBy[v] = 0
	}
	valid := e.sends[:0]
	for _, s := range e.sends {
		if alive != nil && !alive[s.Edge] {
			st.Violations++
			continue
		}
		if e.edgeUsed[s.Edge] == marker {
			st.Collisions++
			continue
		}
		if e.sentBy[s.From]+1 > e.snapQ[s.From] {
			st.Violations++
			continue
		}
		e.edgeUsed[s.Edge] = marker
		e.sentBy[s.From]++
		valid = append(valid, s)
	}
	e.sends = valid

	if e.trace != nil {
		e.trace.Sends = append(e.trace.Sends[:0], e.sends...)
		e.trace.Lost = e.trace.Lost[:0]
		copy(e.trace.Injected, e.inj)
		for v := range e.trace.Extracted {
			e.trace.Extracted[v] = 0
		}
	}

	// Phase 4: transmit.
	for _, s := range e.sends {
		to := s.To(g)
		e.Q[s.From]--
		st.Sent++
		lost := e.Loss.Lost(e.T, s.Edge, s.From)
		if lost {
			st.Lost++
		} else {
			e.Q[to]++
			st.Arrived++
		}
		if e.trace != nil {
			e.trace.Lost = append(e.trace.Lost, lost)
		}
	}

	// Phase 5: extraction (Definition 7(i)).
	for v := 0; v < n; v++ {
		out := spec.Out[v]
		if out == 0 {
			continue
		}
		q := e.Q[v]
		hi := min64(out, q)
		var lo int64
		if r := spec.R[v]; q > r {
			lo = min64(out, q-r)
		}
		amt := e.Extract.Extract(e.T, graph.NodeID(v), lo, hi)
		if amt < lo {
			amt = lo
		}
		if amt > hi {
			amt = hi
		}
		e.Q[v] -= amt
		st.Extracted += amt
		if e.trace != nil {
			e.trace.Extracted[v] = amt
		}
	}

	e.T++
	st.Potential = Potential(e.Q)
	st.Queued = TotalQueued(e.Q)
	st.MaxQueue = MaxQueue(e.Q)
	for _, o := range e.observers {
		o.OnStep(st.T, &e.lastSnap, &st)
	}
	return st
}

// Run executes steps time steps, folding stats into a Totals.
func (e *Engine) Run(steps int64) Totals {
	var t Totals
	for i := int64(0); i < steps; i++ {
		t.Add(e.Step())
	}
	return t
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
