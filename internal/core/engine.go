package core

import (
	"fmt"
	"slices"

	"repro/internal/graph"
)

// ArrivalProcess decides how many packets each source injects at each
// step. Classical sources inject exactly in(v) ("each source s ∈ S
// injects in(s) packets"); generalized sources inject *at most* in(v)
// (Definition 5), which also models losses at injection. The conjecture
// experiments use processes that occasionally exceed in(v) (bursts); the
// engine places no cap — feasibility analysis is a separate concern.
type ArrivalProcess interface {
	Name() string
	// Injections writes the number of packets injected at step t into
	// inj[v] for every node (the engine pre-zeroes inj). Entries must be
	// non-negative.
	Injections(t int64, spec *Spec, inj []int64)
}

// LossModel decides, per attempted transmission, whether the packet is
// lost in flight ("this packet can be lost without any notification").
type LossModel interface {
	Name() string
	Lost(t int64, e graph.EdgeID, from graph.NodeID) bool
}

// DeclarePolicy chooses the queue length an R-generalized node reveals to
// its neighbours when its true queue is at most R (Definition 6(ii): it
// may declare any value ≤ R). The engine only consults it in that case;
// above R nodes always tell the truth.
type DeclarePolicy interface {
	Name() string
	// Declare returns the revealed queue for node v with true queue q ≤ r.
	// The engine clamps the result to [0, r].
	Declare(t int64, v graph.NodeID, q, r int64) int64
}

// ExtractPolicy chooses how many packets a destination removes at the end
// of a step, within the legal window [lo, hi] derived from Definition 7:
// hi = min(out(v), q) and lo = min(out(v), q−R) when q > R (0 otherwise).
type ExtractPolicy interface {
	Name() string
	Extract(t int64, v graph.NodeID, lo, hi int64) int64
}

// Interference restricts a planned transmission set to a subset that is
// simultaneously schedulable under a wireless interference model
// (Conjecture 5). The returned slice may share storage with sends.
type Interference interface {
	Name() string
	Filter(sn *Snapshot, sends []Send) []Send
}

// TopologyProcess animates a dynamic network (Conjecture 4): edge e may
// transmit at step t only when EdgeAlive(t, e) is true.
type TopologyProcess interface {
	Name() string
	EdgeAlive(t int64, e graph.EdgeID) bool
}

// StepStats summarizes one engine step.
type StepStats struct {
	T        int64 // the step that was executed
	Injected int64 // packets added by sources
	Planned  int64 // sends requested by the router
	// Filtered counts planned sends removed by the environment before
	// transmission: the interference model's Filter plus sends attempted
	// over an edge the dynamic-topology process took down this step.
	// Environment drops are not router bugs — a correct router can still
	// see Filtered > 0 when a TopologyProcess kills an edge it was never
	// told about (routers only see the Alive mask the engine snapshots).
	Filtered  int64
	Sent      int64 // packets that left their queue
	Lost      int64 // sent packets destroyed in flight
	Arrived   int64 // sent packets that reached the far queue
	Extracted int64 // packets removed by destinations
	// Collisions counts sends dropped because their edge was already used
	// this step. Two endpoints can legitimately claim the same link when
	// declared queues disagree with true queues (lying R-generalized
	// nodes); the engine keeps the first planned send, modelling a busy
	// link. Truthful networks always have 0 collisions.
	Collisions int64
	// Violations counts router outputs the engine had to reject as
	// unphysical: overdrawn queues (more sends leaving a node than its
	// true queue holds). A correct policy keeps this at 0; tests assert
	// it. Dead-edge drops are environment effects and count in Filtered.
	Violations int64
	Potential  int64 // P_{t+1}: network state after the step
	Queued     int64 // total packets stored after the step
	MaxQueue   int64
	// Overflowed reports that Potential saturated at math.MaxInt64 this
	// step: some Σ q(v)² exceeded the int64 range (queues ≳ 2³¹ on an
	// unstable run). Peak/verdict logic that compares potentials should
	// treat a saturated run as divergent rather than trust the value.
	Overflowed bool
}

// Totals accumulates StepStats over a run.
type Totals struct {
	Steps                               int64
	Injected, Sent, Lost, Arrived       int64
	Extracted, Collisions, Violations   int64
	PeakPotential, PeakQueued, PeakMaxQ int64
	FinalPotential, FinalQueued         int64
	// Overflowed is true when any step's potential saturated; peak and
	// final potentials are then lower bounds, not exact values.
	Overflowed bool
}

// Add folds one step into the totals.
func (t *Totals) Add(s StepStats) {
	t.Steps++
	t.Injected += s.Injected
	t.Sent += s.Sent
	t.Lost += s.Lost
	t.Arrived += s.Arrived
	t.Extracted += s.Extracted
	t.Collisions += s.Collisions
	t.Violations += s.Violations
	if s.Potential > t.PeakPotential {
		t.PeakPotential = s.Potential
	}
	if s.Queued > t.PeakQueued {
		t.PeakQueued = s.Queued
	}
	if s.MaxQueue > t.PeakMaxQ {
		t.PeakMaxQ = s.MaxQueue
	}
	t.FinalPotential = s.Potential
	t.FinalQueued = s.Queued
	t.Overflowed = t.Overflowed || s.Overflowed
}

// StepTrace exposes everything that happened during one step, for
// instruments that audit the dynamics (e.g. the Lyapunov decomposition of
// Equations 1–3). Enable with Engine.EnableTrace; the engine then refills
// the same buffers every step.
type StepTrace struct {
	// Sends are the validated transmissions actually applied; Lost[i]
	// reports whether Sends[i] was destroyed in flight.
	Sends []Send
	Lost  []bool
	// Injected and Extracted are per-node packet counts for this step.
	Injected  []int64
	Extracted []int64
}

// Engine executes the synchronous network semantics of Section II:
// inject → plan (on a common snapshot) → transmit with losses → extract.
// The zero value is not usable; construct with NewEngine and then
// optionally override the pluggable behaviours before the first Step.
type Engine struct {
	Spec     *Spec
	Router   Router
	Arrivals ArrivalProcess
	Loss     LossModel
	Declare  DeclarePolicy
	Extract  ExtractPolicy
	// Optional extensions; nil disables them.
	Interference Interference
	Topology     TopologyProcess

	// Q is the live queue vector; read it freely between steps. Do not
	// write entries directly — use SetQueues, which also rebuilds the
	// engine's active-node bookkeeping.
	Q []int64
	// T is the next step to execute.
	T int64

	// scratch
	inj      []int64
	declared []int64
	snapQ    []int64
	alive    []bool
	sends    []Send
	edgeUsed []int64 // last step each edge transmitted, as T+1 marker
	sentBy   []int64
	lastSnap Snapshot
	trace    *StepTrace
	// observers registered with AddObserver, invoked after every step.
	observers []StepObserver
	// obsStats stages each step's stats for the observer callbacks:
	// handing observers a pointer into this persistent field (instead of
	// &st) keeps the per-step StepStats on the stack, which is what makes
	// Step allocation-free.
	obsStats StepStats

	// Active-node bookkeeping: active is the sorted node list handed to
	// routers via Snapshot.Active (invariant: it contains every node with
	// Q > 0); activeMark[v] reports membership in active ∪ newlyActive;
	// newlyActive collects 0→positive transitions since the last
	// compaction; activeSpare is the merge double-buffer. injDirty and
	// sentDirty record which inj/sentBy entries were made nonzero this
	// step, so the next step zeroes only those instead of sweeping all n.
	active      []graph.NodeID
	activeSpare []graph.NodeID
	newlyActive []graph.NodeID
	activeMark  []bool
	injDirty    []graph.NodeID
	sentDirty   []graph.NodeID
	// sinks lists the nodes with out(v) > 0 in ascending order, so the
	// extraction phase does not scan non-destination nodes.
	sinks []graph.NodeID
	// sh, when non-nil, switches Step to the partition-parallel path
	// (see sharded.go). Managed by EnableSharding/DisableSharding.
	sh *sharding
}

// EnableTrace switches on per-step tracing and returns the trace buffer,
// which the engine refills on every Step.
func (e *Engine) EnableTrace() *StepTrace {
	if e.trace == nil {
		n := e.Spec.N()
		e.trace = &StepTrace{
			Injected:  make([]int64, n),
			Extracted: make([]int64, n),
		}
	}
	return e.trace
}

// NewEngine builds an engine for spec running router, with classical
// defaults: exact arrivals (sources inject exactly in(v)), no losses,
// truthful declarations and maximal extraction. spec must validate.
func NewEngine(spec *Spec, router Router) *Engine {
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid spec: %v", err))
	}
	n := spec.N()
	e := &Engine{
		Spec:       spec,
		Router:     router,
		Arrivals:   ExactArrivals{},
		Loss:       NoLoss{},
		Declare:    DeclareTruth{},
		Extract:    ExtractMax{},
		Q:          make([]int64, n),
		inj:        make([]int64, n),
		declared:   make([]int64, n),
		snapQ:      make([]int64, n),
		sentBy:     make([]int64, n),
		edgeUsed:   make([]int64, spec.G.NumEdges()),
		activeMark: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		if spec.Out[v] > 0 {
			e.sinks = append(e.sinks, graph.NodeID(v))
		}
	}
	return e
}

// SetQueues overwrites the current queue vector (for experiments that
// start from a prepared state, e.g. Property 2 probes). It also resets the
// engine's step-scoped scratch: the edge-use markers (callers that reset T
// to replay from a prepared state would otherwise race stale T+1 markers
// from the previous run and count phantom collisions), the sparse
// injection/sends bookkeeping, and the active-node list, which is rebuilt
// from the new queue vector.
func (e *Engine) SetQueues(q []int64) {
	if len(q) != len(e.Q) {
		panic("core: queue vector length mismatch")
	}
	copy(e.Q, q)
	for i := range e.edgeUsed {
		e.edgeUsed[i] = 0
	}
	for i := range e.inj {
		e.inj[i] = 0
	}
	for i := range e.sentBy {
		e.sentBy[i] = 0
	}
	e.injDirty = e.injDirty[:0]
	e.sentDirty = e.sentDirty[:0]
	e.newlyActive = e.newlyActive[:0]
	e.active = e.active[:0]
	for v := range e.Q {
		pos := e.Q[v] > 0
		e.activeMark[v] = pos
		if pos {
			e.active = append(e.active, graph.NodeID(v))
		}
	}
	if e.sh != nil {
		e.sh.reset(e)
	}
}

// markActive records a 0→positive queue transition.
func (e *Engine) markActive(v graph.NodeID) {
	if !e.activeMark[v] {
		e.activeMark[v] = true
		e.newlyActive = append(e.newlyActive, v)
	}
}

// compactActive folds newlyActive into the sorted active list and drops
// nodes whose queue has drained, preserving the invariant that active is
// strictly ascending and contains every node with Q > 0. Amortized cost
// is O(|active| + |new|·log|new|) per step with no allocations in steady
// state.
func (e *Engine) compactActive() {
	if len(e.newlyActive) > 1 {
		slices.Sort(e.newlyActive)
	}
	dst := e.activeSpare[:0]
	a, b := e.active, e.newlyActive
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v graph.NodeID
		// activeMark guarantees a and b are disjoint, so plain min-merge
		// keeps the output strictly ascending.
		if j >= len(b) || (i < len(a) && a[i] < b[j]) {
			v = a[i]
			i++
		} else {
			v = b[j]
			j++
		}
		if e.Q[v] > 0 {
			dst = append(dst, v)
		} else {
			e.activeMark[v] = false
		}
	}
	e.activeSpare = e.active
	e.active = dst
	e.newlyActive = e.newlyActive[:0]
}

// Snapshot returns the snapshot the router saw at the most recent step.
// Valid only after at least one Step; the backing arrays are reused.
func (e *Engine) Snapshot() *Snapshot { return &e.lastSnap }

// Step executes one synchronous time step and returns its statistics.
func (e *Engine) Step() StepStats {
	if e.sh != nil {
		return e.stepSharded()
	}
	spec := e.Spec
	g := spec.G
	n := spec.N()
	st := StepStats{T: e.T}

	// Phase 1: injection. inj is zero except for last step's entries.
	for _, v := range e.injDirty {
		e.inj[v] = 0
	}
	e.injDirty = e.injDirty[:0]
	e.Arrivals.Injections(e.T, spec, e.inj)
	for v := 0; v < n; v++ {
		x := e.inj[v]
		if x == 0 {
			continue
		}
		if x < 0 {
			panic(fmt.Sprintf("core: arrival process injected %d < 0 at node %d", x, v))
		}
		e.Q[v] += x
		st.Injected += x
		e.injDirty = append(e.injDirty, graph.NodeID(v))
		e.markActive(graph.NodeID(v))
	}

	// Phase 2: snapshot and declared queues.
	e.compactActive()
	copy(e.snapQ, e.Q)
	for v := 0; v < n; v++ {
		q, r := e.snapQ[v], spec.R[v]
		if r > 0 && q <= r {
			d := e.Declare.Declare(e.T, graph.NodeID(v), q, r)
			if d < 0 {
				d = 0
			}
			if d > r {
				d = r
			}
			e.declared[v] = d
		} else {
			e.declared[v] = q
		}
	}
	var alive []bool
	if e.Topology != nil {
		if e.alive == nil {
			e.alive = make([]bool, g.NumEdges())
		}
		alive = e.alive
		for ed := range alive {
			alive[ed] = e.Topology.EdgeAlive(e.T, graph.EdgeID(ed))
		}
	}
	e.lastSnap = Snapshot{Spec: spec, T: e.T, Q: e.snapQ, Declared: e.declared, Alive: alive, Active: e.active}

	// Phase 3: plan.
	e.sends = e.Router.Plan(&e.lastSnap, e.sends[:0])
	st.Planned = int64(len(e.sends))

	// Phase 3b: interference filtering.
	if e.Interference != nil {
		kept := e.Interference.Filter(&e.lastSnap, e.sends)
		st.Filtered += int64(len(e.sends) - len(kept))
		e.sends = kept
	}

	// Phase 3c: physical validation. marker: edgeUsed[e] == T+1 means
	// edge e already transmits this step. sentBy is zero except for last
	// step's entries.
	marker := e.T + 1
	for _, v := range e.sentDirty {
		e.sentBy[v] = 0
	}
	e.sentDirty = e.sentDirty[:0]
	valid := e.sends[:0]
	for _, s := range e.sends {
		if alive != nil && !alive[s.Edge] {
			st.Filtered++ // topology drop: the environment, not the router
			continue
		}
		if e.edgeUsed[s.Edge] == marker {
			st.Collisions++
			continue
		}
		if e.sentBy[s.From]+1 > e.snapQ[s.From] {
			st.Violations++
			continue
		}
		e.edgeUsed[s.Edge] = marker
		if e.sentBy[s.From] == 0 {
			e.sentDirty = append(e.sentDirty, s.From)
		}
		e.sentBy[s.From]++
		valid = append(valid, s)
	}
	e.sends = valid

	if e.trace != nil {
		e.trace.Sends = append(e.trace.Sends[:0], e.sends...)
		e.trace.Lost = e.trace.Lost[:0]
		copy(e.trace.Injected, e.inj)
		for v := range e.trace.Extracted {
			e.trace.Extracted[v] = 0
		}
	}

	// Phase 4: transmit.
	for _, s := range e.sends {
		to := s.To(g)
		e.Q[s.From]--
		st.Sent++
		lost := e.Loss.Lost(e.T, s.Edge, s.From)
		if lost {
			st.Lost++
		} else {
			e.Q[to]++
			e.markActive(to)
			st.Arrived++
		}
		if e.trace != nil {
			e.trace.Lost = append(e.trace.Lost, lost)
		}
	}

	// Phase 5: extraction (Definition 7(i)), destinations only.
	for _, v := range e.sinks {
		out := spec.Out[v]
		q := e.Q[v]
		hi := min64(out, q)
		var lo int64
		if r := spec.R[v]; q > r {
			lo = min64(out, q-r)
		}
		amt := e.Extract.Extract(e.T, v, lo, hi)
		if amt < lo {
			amt = lo
		}
		if amt > hi {
			amt = hi
		}
		e.Q[v] -= amt
		st.Extracted += amt
		if e.trace != nil {
			e.trace.Extracted[v] = amt
		}
	}

	e.T++
	st.Potential, st.Overflowed = PotentialSat(e.Q)
	st.Queued = TotalQueued(e.Q)
	st.MaxQueue = MaxQueue(e.Q)
	if len(e.observers) > 0 {
		e.obsStats = st
		for _, o := range e.observers {
			o.OnStep(st.T, &e.lastSnap, &e.obsStats)
		}
		st = e.obsStats
	}
	return st
}

// Run executes steps time steps, folding stats into a Totals.
func (e *Engine) Run(steps int64) Totals {
	var t Totals
	for i := int64(0); i < steps; i++ {
		t.Add(e.Step())
	}
	return t
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
