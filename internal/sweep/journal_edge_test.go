package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// brokenDisk is a write-error double: it accepts the first budget bytes
// and then fails every write with ENOSPC-flavoured errors, the way a
// filling disk does.
type brokenDisk struct {
	budget  int
	written bytes.Buffer
}

var errNoSpace = errors.New("write: no space left on device")

func (d *brokenDisk) Write(p []byte) (int, error) {
	if d.written.Len()+len(p) > d.budget {
		return 0, errNoSpace
	}
	return d.written.Write(p)
}

// TestJournalDiskFullSurfacedNotFatal is the disk-full path the daemon
// depends on: when the journal's disk fills mid-sweep, the sweep itself
// must still complete and return every computed result — the write error
// is reported once, after the results, never by killing runs.
func TestJournalDiskFullSurfacedNotFatal(t *testing.T) {
	jobs := testGrid(2, 150).Jobs()
	want, err := (&Runner{Workers: 4}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	disk := &brokenDisk{budget: 600} // room for the header + a few lines
	j, err := NewJournal(disk, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := (&Runner{Workers: 4, Journal: j}).Run(jobs)
	if err == nil {
		t.Fatal("disk-full journal error not surfaced")
	}
	if !errors.Is(err, errNoSpace) || !strings.Contains(err.Error(), "journal write") {
		t.Fatalf("error does not wrap the write failure: %v", err)
	}
	if !reflect.DeepEqual(rs, want) {
		t.Fatalf("disk-full sweep dropped results: got %d, want %d", len(rs), len(want))
	}
	// Whatever made it to "disk" before the error is a valid prefix: a
	// header plus complete result lines only.
	lines := bytes.Split(bytes.TrimSuffix(disk.written.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("journal wrote %d lines before filling, want header + >=1 result", len(lines))
	}
	var got Result
	if err := json.Unmarshal(lines[1], &got); err != nil || got.Index != 0 {
		t.Fatalf("first journalled line is not result 0: %v %+v", err, got)
	}
}

// TestJournalHeaderWriteError: a disk already full at creation fails
// fast, before any run executes.
func TestJournalHeaderWriteError(t *testing.T) {
	if _, err := NewJournal(&brokenDisk{budget: 3}, 4); err == nil {
		t.Fatal("header write error not surfaced")
	}
}

// TestJournalDeletedMidRun pins the deleted-checkpoint semantics: on
// POSIX the unlinked file keeps accepting writes through the open fd, so
// the sweep finishes cleanly — but the checkpoint is gone, and a resume
// against the missing path must start a fresh journal from run zero and
// still reproduce the uninterrupted bytes.
func TestJournalDeletedMidRun(t *testing.T) {
	jobs := testGrid(2, 150).Jobs()
	want, err := (&Runner{Workers: 4}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "doomed.jsonl")
	j, err := CreateJournal(path, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	deleted := false
	rs, err := (&Runner{Workers: 4, Journal: j,
		OnResult: func(_ Job, res Result, _ *sim.Result) {
			if !deleted && res.Index == 2 {
				if err := os.Remove(path); err != nil {
					t.Errorf("remove: %v", err)
				}
				deleted = true
			}
		}}).Run(jobs)
	if err != nil {
		t.Fatalf("deleting the journal must not fail the sweep: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("closing an unlinked journal: %v", err)
	}
	if !reflect.DeepEqual(rs, want) {
		t.Fatal("sweep results disturbed by journal deletion")
	}

	// The checkpoint is gone; resuming recreates it from scratch.
	j2, prefix, err := OpenJournalResume(path, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if len(prefix) != 0 {
		t.Fatalf("resume of a deleted journal returned %d results", len(prefix))
	}
	got, err := (&Runner{Workers: 4, Journal: j2}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-deletion rerun differs from uninterrupted sweep")
	}
}

// TestResumePartialJSONTails extends the torn-tail contract to every
// shape a crash can leave the final record in: torn mid-object without a
// newline, a complete line that is not valid JSON, and a complete line
// holding a syntactically valid but truncated record of a *later* crash
// artefact. Each must resume from the preceding good line and reproduce
// the uninterrupted bytes.
func TestResumePartialJSONTails(t *testing.T) {
	jobs := testGrid(2, 150).Jobs()
	want, err := (&Runner{Workers: 4}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "full.jsonl")
	j, err := CreateJournal(base, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Workers: 4, Journal: j}).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))

	cases := []struct {
		name string
		tail []byte
		keep int // journal lines kept before the tail (after the header)
		want int // resume prefix length
	}{
		{"torn-mid-object", []byte(`{"index":4,"seed":1,"hor`), 4, 4},
		{"complete-but-malformed", []byte("{\"index\":4,!!}\n"), 4, 4},
		{"partial-object-valid-json", []byte("{\"index\":4}\n"), 4, 5},
		{"torn-after-newline", []byte("{\n"), 3, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "torn.jsonl")
			body := append(bytes.Join(lines[:1+tc.keep], nil), tc.tail...)
			if err := os.WriteFile(path, body, 0o644); err != nil {
				t.Fatal(err)
			}
			j2, prefix, err := OpenJournalResume(path, len(jobs))
			if err != nil {
				t.Fatal(err)
			}
			if len(prefix) != tc.want {
				t.Fatalf("resume prefix = %d results, want %d", len(prefix), tc.want)
			}
			// A syntactically valid partial record decodes to a result
			// whose Desc does not match the job list — the runner's
			// prefix validation must refuse it rather than run with it.
			r := &Runner{Workers: 4, Journal: j2, Resume: prefix}
			got, err := r.Run(jobs)
			if tc.name == "partial-object-valid-json" {
				if err == nil {
					t.Fatal("runner accepted a resume prefix holding a partial record")
				}
				j2.Close()
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("resumed sweep differs from uninterrupted sweep")
			}
			after, err := ReadJournalResults(path, len(jobs))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(after, want) {
				t.Fatal("journal after resume does not hold the full sweep")
			}
		})
	}
}

// TestReadJournalResults covers the read-only journal view the daemon
// serves results from: full file, torn tail, and header validation.
func TestReadJournalResults(t *testing.T) {
	jobs := testGrid(1, 100).Jobs()
	want, err := (&Runner{Workers: 2}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "read.jsonl")
	j, err := CreateJournal(path, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Workers: 2, Journal: j}).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournalResults(path, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("read-only view differs from the sweep")
	}
	if _, err := ReadJournalResults(path, len(jobs)+1); err == nil {
		t.Fatal("job-count mismatch accepted")
	}
	if got, err := ReadJournalResults(path, 0); err != nil || len(got) != len(want) {
		t.Fatalf("jobs<=0 must skip the count check: %v (%d results)", err, len(got))
	}
	// Torn tail: the partial line is invisible to readers.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"index":99,"to`)
	f.Close()
	got, err = ReadJournalResults(path, len(jobs))
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("torn tail leaked into the read-only view: %v", err)
	}
	bad := filepath.Join(t.TempDir(), "not.jsonl")
	if err := os.WriteFile(bad, []byte("plain text\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournalResults(bad, 0); err == nil {
		t.Fatal("non-journal file accepted")
	}
}
