package sweep

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// mergeFixture runs a small real sweep and returns its in-order results
// — the reference a merged shard set must reproduce byte-for-byte.
func mergeFixture(t *testing.T, n int) []Result {
	t.Helper()
	jobs := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, Job{
			Desc: Desc{Index: i, Grid: "merge", Network: "line(5)", Replica: i, Seed: uint64(i + 1), Horizon: 120},
			Build: func(seed uint64) *core.Engine {
				spec := core.NewSpec(graph.Line(5)).SetSource(0, 1).SetSink(4, 1)
				return core.NewEngine(spec, core.NewLGG())
			},
			Options: sim.Options{Horizon: 120},
		})
	}
	rs, err := (&Runner{Workers: 4}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func ranges(rs []Result, bounds ...int) [][]Result {
	var out [][]Result
	for i := 0; i+1 < len(bounds); i++ {
		out = append(out, rs[bounds[i]:bounds[i+1]])
	}
	return out
}

func jsonl(t *testing.T, rs []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMergeIndexedReassemblesRangesInAnyOrder(t *testing.T) {
	ref := mergeFixture(t, 12)
	batches := ranges(ref, 0, 5, 9, 12)
	for trial := 0; trial < 10; trial++ {
		shuffled := append([][]Result(nil), batches...)
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got, err := MergeIndexed(shuffled, len(ref))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonl(t, got), jsonl(t, ref)) {
			t.Fatalf("trial %d: merged JSONL differs from the unsharded sweep", trial)
		}
	}
}

func TestMergeDedupsStolenRangeDuplicatesByteIdentically(t *testing.T) {
	// A range re-leased to a second worker after the straggler deadline
	// can complete on BOTH workers. The duplicated runs are
	// byte-identical by the determinism contract; the merge must emit
	// each index exactly once and the output must match the
	// single-daemon run byte-for-byte.
	ref := mergeFixture(t, 10)
	batches := [][]Result{
		ref[0:4],
		ref[4:8], // original lease
		ref[4:8], // stolen duplicate, identical bytes
		ref[6:10],
	}
	got, err := MergeIndexed(batches, len(ref))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("merged %d results, want %d (duplicates not deduped)", len(got), len(ref))
	}
	if !bytes.Equal(jsonl(t, got), jsonl(t, ref)) {
		t.Fatal("merged JSONL with duplicated stolen range differs from the single-daemon bytes")
	}
}

func TestMergerEmitsIncrementallyAndJournalMatches(t *testing.T) {
	// Wiring the merger's emit to a journal must produce the same bytes
	// as journalling the unsharded sweep, with emission growing as the
	// contiguous prefix extends (a follower sees only finished prefixes).
	ref := mergeFixture(t, 9)
	var refBuf bytes.Buffer
	refJ, err := NewJournal(&refBuf, len(ref))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ref {
		if err := refJ.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	var gotBuf bytes.Buffer
	gotJ, err := NewJournal(&gotBuf, len(ref))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMerger(len(ref), gotJ.Append)
	if err := m.Add(ref[3:6]); err != nil {
		t.Fatal(err)
	}
	if m.Emitted() != 0 {
		t.Fatalf("emitted %d before the prefix range arrived", m.Emitted())
	}
	if err := m.Add(ref[0:3]); err != nil {
		t.Fatal(err)
	}
	if m.Emitted() != 6 {
		t.Fatalf("emitted %d after ranges 0-6 arrived, want 6", m.Emitted())
	}
	if err := m.Add(ref[6:9]); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), refBuf.Bytes()) {
		t.Fatal("merged journal bytes differ from the unsharded journal")
	}
}

func TestMergerCloseReportsGaps(t *testing.T) {
	ref := mergeFixture(t, 6)
	m := NewMerger(6, func(Result) error { return nil })
	if err := m.Add(ref[0:2]); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(ref[4:6]); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err == nil {
		t.Fatal("Close accepted a merge with indices 2-3 missing")
	}
}

func TestMergerRejectsOutOfRangeIndex(t *testing.T) {
	ref := mergeFixture(t, 4)
	m := NewMerger(2, func(Result) error { return nil })
	if err := m.Add(ref); err == nil {
		t.Fatal("Add accepted an index beyond the sweep size")
	}
}
