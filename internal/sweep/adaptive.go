package sweep

import (
	"context"
	"fmt"
)

// RunFrontier is the adaptive sweep driver: instead of enumerating a
// Space exhaustively it locates, for every cell group, the coordinate on
// one numeric axis where the configured metric share crosses the
// threshold — the empirical stability frontier — by bisection, spending
// replicas per probed coordinate only until a confidence interval
// resolves which side of the threshold the probe is on.
//
// Execution is round-synchronous and therefore deterministic: every
// round collects, in group enumeration order, the next replica batch of
// each group's current probe into one job list, runs it through a copy
// of base (so Workers, Timeout, Retries, Progress and Journal all
// apply), and feeds the results back before any group advances. Probe
// emission order — and hence Desc.Index, the journal byte stream and
// the returned report — depends only on the space, the config and the
// results themselves, never on worker scheduling.
//
// Crash recovery rides on the same Journal machinery as exhaustive
// sweeps: create the journal with AdaptiveJobs (the total run count is
// not known up front), wire it into base.Journal, and on restart pass
// the prefix from OpenJournalResume as base.Resume — RunFrontier feeds
// each round from the front of that prefix, so the refinement replays
// its recorded decisions without re-running them and continues live
// exactly where the journal tore.
func RunFrontier(ctx context.Context, s *Space, cfg FrontierConfig, base *Runner) (*FrontierReport, error) {
	if base == nil {
		base = &Runner{}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	axis, ok := s.Axis(cfg.Axis)
	if !ok {
		return nil, fmt.Errorf("sweep: space %q has no axis %q", s.Name, cfg.Axis)
	}
	axisLo, axisHi, ok := axis.Bounds()
	if !ok || !axis.Numeric() {
		return nil, fmt.Errorf("sweep: axis %q is categorical — the search axis must be numeric", cfg.Axis)
	}
	if axisLo >= axisHi {
		return nil, fmt.Errorf("sweep: axis %q spans no range (%g..%g)", cfg.Axis, axisLo, axisHi)
	}
	cfg = cfg.withDefaults(axisLo, axisHi)

	groupPts, err := s.groups(cfg.Axis)
	if err != nil {
		return nil, err
	}
	groups := make([]*groupState, len(groupPts))
	for i, gp := range groupPts {
		g := &groupState{
			group: gp,
			phase: phaseLo,
			cur:   &probeStat{x: axisLo},
		}
		g.res = FrontierResult{
			Grid:   s.Name,
			Axis:   axis.Name,
			Unit:   axis.Unit,
			Coords: append([]AxisValue(nil), gp...),
			Probes: 1, // the lower endpoint; advance counts the rest
		}
		groups[i] = g
	}

	var (
		base2   = *base // local copy: Resume is consumed round by round
		resume  = base2.Resume
		probes  []Result
		emitted int
	)
	for {
		// Collect this round's batches, remembering each group's slice.
		var (
			jobs   []Job
			feeds  []*groupState
			counts []int
		)
		for _, g := range groups {
			if g.phase == phaseDone {
				continue
			}
			batch := g.cur.nextBatch(cfg)
			if batch == 0 {
				// Unreachable: advance only leaves an unsettled cur behind.
				return nil, fmt.Errorf("sweep: adaptive group stalled at %g", g.cur.x)
			}
			pt := s.pointWith(g.group, axis, g.cur.x)
			for rep := g.cur.n; rep < g.cur.n+batch; rep++ {
				jobs = append(jobs, s.job(emitted, pt, rep))
				emitted++
			}
			feeds = append(feeds, g)
			counts = append(counts, batch)
		}
		if len(jobs) == 0 {
			break // every group done
		}

		r := base2
		take := len(resume)
		if take > len(jobs) {
			take = len(jobs)
		}
		r.Resume, resume = resume[:take], resume[take:]
		rs, err := r.RunWithContext(ctx, jobs)
		if err != nil {
			// The journal holds everything emitted so far; a resumed run
			// picks the refinement up from here.
			return nil, err
		}
		probes = append(probes, rs...)

		off := 0
		for i, g := range feeds {
			g.cur.observe(cfg, rs[off:off+counts[i]])
			g.res.Runs += counts[i]
			off += counts[i]
			g.advance(cfg, axisLo, axisHi)
		}
	}
	if len(resume) > 0 {
		return nil, fmt.Errorf("sweep: resume prefix has %d results beyond the adaptive refinement — journal from a different sweep?", len(resume))
	}

	rep := &FrontierReport{
		Results:   make([]FrontierResult, len(groups)),
		Probes:    probes,
		TotalRuns: len(probes),
	}
	for i, g := range groups {
		rep.Results[i] = g.res
	}
	return rep, nil
}
