package sweep

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestTimeoutCancelsMidRun gives the runner one enormous job and a tiny
// deadline: with context threading the in-flight run must be cancelled
// mid-run, so the sweep returns promptly instead of after the full
// multi-second horizon (the pre-context behavior).
func TestTimeoutCancelsMidRun(t *testing.T) {
	build := func(uint64) *core.Engine {
		return core.NewEngine(core.NewSpec(graph.Line(5)).SetSource(0, 1).SetSink(4, 1), core.NewLGG())
	}
	jobs := []Job{{Desc: Desc{Index: 0, Horizon: 50_000_000}, Build: build}}
	r := &Runner{Workers: 1, Timeout: 30 * time.Millisecond}
	start := time.Now()
	rs, err := r.Run(jobs)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if len(rs) != 0 {
		t.Fatalf("cancelled sweep returned %d results, want 0", len(rs))
	}
	if elapsed > 5*time.Second {
		t.Fatalf("sweep took %v — the in-flight run was not cancelled mid-run", elapsed)
	}
}

func TestRunWithContextCallerCancel(t *testing.T) {
	jobs := testGrid(2, 100_000).Jobs()
	ctx, cancel := context.WithCancel(context.Background())
	var got int
	r := &Runner{Workers: 2, OnResult: func(Job, Result, *sim.Result) {
		got++
		cancel() // stop the sweep after the first emitted result
	}}
	rs, err := r.RunWithContext(ctx, jobs)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled wrap", err)
	}
	if len(rs) >= len(jobs) {
		t.Fatalf("cancelled sweep completed all %d jobs", len(rs))
	}
	for i, res := range rs {
		if res.Index != i {
			t.Fatalf("partial results not a contiguous prefix at %d", i)
		}
	}
}

func TestAggregateCellsValues(t *testing.T) {
	rs := []Result{
		{Desc: Desc{Grid: "g", Network: "n", Router: "r", Variant: "v"},
			Verdict: sim.Stable, MeanBacklog: 2, PeakPotential: 10, PeakQueued: 4,
			Injected: 100, Sent: 90, Lost: 5, Extracted: 80},
		{Desc: Desc{Grid: "g", Network: "n", Router: "r", Variant: "v", Replica: 1},
			Verdict: sim.Diverging, MeanBacklog: 6, PeakPotential: 30, PeakQueued: 9,
			Injected: 100, Sent: 95, Lost: 2, Extracted: 70},
	}
	cells, err := AggregateCells(rs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Replicas != 2 || c.StableShare != 0.5 || c.WorstVerdict != sim.Diverging {
		t.Fatalf("cell identity stats wrong: %+v", c)
	}
	if c.MeanBacklog != 4 || c.PeakPotential != 30 || c.PeakQueued != 9 {
		t.Fatalf("cell aggregates wrong: %+v", c)
	}
	if c.Injected != 200 || c.Sent != 185 || c.Lost != 7 || c.Extracted != 150 {
		t.Fatalf("cell totals wrong: %+v", c)
	}
}

// TestObservabilityDeterminism is the worker-count contract for every
// new output surface: cell JSONL, cell CSV, the Prometheus exposition
// of RecordMetrics, and the live event stream must all be byte-stable
// between a 1-worker and an 8-worker execution of the same grid.
func TestObservabilityDeterminism(t *testing.T) {
	const replicas = 2
	jobs := testGrid(replicas, 300).Jobs()
	type outputs struct{ cellsJSONL, cellsCSV, prom, events string }
	capture := func(workers int) outputs {
		var events bytes.Buffer
		es := NewEventStreamer(&events, replicas)
		r := &Runner{Workers: workers, OnResult: es.OnResult}
		rs, err := r.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if err := es.Flush(); err != nil {
			t.Fatal(err)
		}
		cells, err := AggregateCells(rs, replicas)
		if err != nil {
			t.Fatal(err)
		}
		var cj, cc, pm bytes.Buffer
		if err := WriteCellsJSONL(&cj, cells); err != nil {
			t.Fatal(err)
		}
		if err := WriteCellsCSV(&cc, cells); err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		RecordMetrics(reg, rs)
		if err := reg.WriteProm(&pm); err != nil {
			t.Fatal(err)
		}
		return outputs{cj.String(), cc.String(), pm.String(), events.String()}
	}
	serial, parallel := capture(1), capture(8)
	if serial != parallel {
		t.Fatal("observability outputs differ between 1 and 8 workers")
	}
	if n := strings.Count(serial.events, `"event":"run"`); n != len(jobs) {
		t.Fatalf("event stream has %d run events, want %d", n, len(jobs))
	}
	if n := strings.Count(serial.events, `"event":"cell"`); n != len(jobs)/replicas {
		t.Fatalf("event stream has %d cell events, want %d", n, len(jobs)/replicas)
	}
	if !strings.HasPrefix(serial.cellsCSV, "grid,network,router,variant,replicas,") {
		t.Fatalf("cells CSV header unexpected: %q", serial.cellsCSV[:60])
	}
}

func TestRecordMetricsCounts(t *testing.T) {
	rs := []Result{
		{Verdict: sim.Stable, Injected: 10, Sent: 9, Lost: 1, Extracted: 8, PeakPotential: 7, PeakQueued: 3},
		{Verdict: sim.Diverging, Injected: 20, Sent: 18, Lost: 0, Extracted: 2, PeakPotential: 90, PeakQueued: 30},
		{Verdict: sim.Inconclusive},
	}
	reg := metrics.NewRegistry()
	RecordMetrics(reg, rs)
	checks := map[string]int64{
		MetricRuns:           3,
		MetricRunsStable:     1,
		MetricRunsDiverging:  1,
		MetricRunsUndecided:  1,
		MetricSweepInjected:  30,
		MetricSweepLost:      1,
		MetricSweepExtracted: 10,
	}
	for name, want := range checks {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge(MetricSweepPeakPot, "").Value(); got != 90 {
		t.Errorf("peak potential gauge = %d, want 90", got)
	}
}
