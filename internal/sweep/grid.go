package sweep

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Network is the topology axis of a grid: a named spec builder. The spec
// is built once per grid enumeration and shared read-only by every engine
// drawn from it.
type Network struct {
	Name string
	New  func() *core.Spec
}

// RouterAxis is the routing-algorithm axis. New receives the network spec
// and a run-private RNG stream (for randomized routers).
type RouterAxis struct {
	Name string
	New  func(spec *core.Spec, r *rng.Source) core.Router
}

// Variant is the policy axis: a named mutation of a freshly built engine
// (arrivals, losses, declaration/extraction policies, interference, …),
// again with a run-private RNG stream.
type Variant struct {
	Name  string
	Apply func(e *core.Engine, r *rng.Source)
}

// Grid is the cartesian product Networks × Routers × Variants × Replicas.
//
// Deprecated-path note: Grid predates the typed-axis API and survives as
// a thin compat layer over Space — its three fixed closure axes cannot
// carry units, numeric coordinates or continuous ranges, so the adaptive
// frontier driver cannot search them. New grids should construct a Space
// directly; Grid keeps compiling (and keeps its exact RNG discipline:
// streams derive only from (BaseSeed, run index) via rng.ForRun) for
// existing callers.
type Grid struct {
	Name     string
	BaseSeed uint64
	// Replicas is the number of independent runs per cell (default 1).
	Replicas int
	Horizon  int64
	Networks []Network
	Routers  []RouterAxis
	Variants []Variant
	// Options tunes every run; Horizon above wins when Options.Horizon is
	// unset.
	Options sim.Options
}

// identityVariant is the implicit single variant of a grid without a
// Variants axis.
var identityVariant = []Variant{{Name: "", Apply: nil}}

// defaultRouter is the implicit single router of a grid without a Routers
// axis: plain LGG.
var defaultRouter = []RouterAxis{{Name: "lgg",
	New: func(*core.Spec, *rng.Source) core.Router { return core.NewLGG() }}}

// Space rebuilds the legacy grid as a typed-axis space: three categorical
// axes (network, router, variant) whose ordinals index the original
// closure lists. Seeds and RNG streams reproduce Grid.Jobs exactly —
// Desc.Seed is BaseSeed and the run stream is rng.ForRun(BaseSeed, index)
// — so the compat layer is byte-transparent.
func (g *Grid) Space() *Space {
	routers := g.Routers
	if len(routers) == 0 {
		routers = defaultRouter
	}
	variants := g.Variants
	if len(variants) == 0 {
		variants = identityVariant
	}
	networkNames := make([]string, len(g.Networks))
	specs := make([]*core.Spec, len(g.Networks))
	for i, nw := range g.Networks {
		networkNames[i] = nw.Name
		specs[i] = nw.New()
	}
	routerNames := make([]string, len(routers))
	for i, rt := range routers {
		routerNames[i] = rt.Name
	}
	variantNames := make([]string, len(variants))
	for i, vr := range variants {
		variantNames[i] = vr.Name
	}
	return &Space{
		Name:     g.Name,
		BaseSeed: g.BaseSeed,
		Replicas: g.Replicas,
		Horizon:  g.Horizon,
		Options:  g.Options,
		Axes: []Axis{
			{Name: "network", Labels: networkNames},
			{Name: "router", Labels: routerNames},
			{Name: "variant", Labels: variantNames},
		},
		SeedFn: func(Point, int) uint64 { return g.BaseSeed },
		Build: func(p Probe) *core.Engine {
			ni := int(p.Point[0].Value)
			ri := int(p.Point[1].Value)
			vi := int(p.Point[2].Value)
			// The run stream depends only on (base, index): sub-streams 1
			// and 2 feed the router and the variant, leaving the root for
			// future axes.
			rs := rng.ForRun(g.BaseSeed, uint64(p.Index))
			e := core.NewEngine(specs[ni], routers[ri].New(specs[ni], rs.Split(1)))
			if variants[vi].Apply != nil {
				variants[vi].Apply(e, rs.Split(2))
			}
			return e
		},
	}
}

// Jobs enumerates the grid in deterministic order: networks outermost,
// then routers, variants, and replicas innermost (replicas of a cell stay
// contiguous, so Cells applies directly to the results).
func (g *Grid) Jobs() []Job {
	if len(g.Networks) == 0 {
		return nil
	}
	jobs, err := g.Space().Jobs()
	if err != nil {
		// Unreachable: the compat axes are always enumerable and Build is
		// always set.
		panic(fmt.Sprintf("sweep: legacy grid %q: %v", g.Name, err))
	}
	return jobs
}
