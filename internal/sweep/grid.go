package sweep

import (
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Network is the topology axis of a grid: a named spec builder. The spec
// is built once per grid enumeration and shared read-only by every engine
// drawn from it.
type Network struct {
	Name string
	New  func() *core.Spec
}

// RouterAxis is the routing-algorithm axis. New receives the network spec
// and a run-private RNG stream (for randomized routers).
type RouterAxis struct {
	Name string
	New  func(spec *core.Spec, r *rng.Source) core.Router
}

// Variant is the policy axis: a named mutation of a freshly built engine
// (arrivals, losses, declaration/extraction policies, interference, …),
// again with a run-private RNG stream.
type Variant struct {
	Name  string
	Apply func(e *core.Engine, r *rng.Source)
}

// Grid is the cartesian product Networks × Routers × Variants × Replicas.
// Jobs enumerates it into run descriptors whose RNG streams derive only
// from (BaseSeed, run index), so a Grid executes bit-identically at any
// worker count.
type Grid struct {
	Name     string
	BaseSeed uint64
	// Replicas is the number of independent runs per cell (default 1).
	Replicas int
	Horizon  int64
	Networks []Network
	Routers  []RouterAxis
	Variants []Variant
	// Options tunes every run; Horizon above wins when Options.Horizon is
	// unset.
	Options sim.Options
}

// identityVariant is the implicit single variant of a grid without a
// Variants axis.
var identityVariant = []Variant{{Name: "", Apply: nil}}

// defaultRouter is the implicit single router of a grid without a Routers
// axis: plain LGG.
var defaultRouter = []RouterAxis{{Name: "lgg",
	New: func(*core.Spec, *rng.Source) core.Router { return core.NewLGG() }}}

// Jobs enumerates the grid in deterministic order: networks outermost,
// then routers, variants, and replicas innermost (replicas of a cell stay
// contiguous, so Cells applies directly to the results).
func (g *Grid) Jobs() []Job {
	replicas := g.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	routers := g.Routers
	if len(routers) == 0 {
		routers = defaultRouter
	}
	variants := g.Variants
	if len(variants) == 0 {
		variants = identityVariant
	}
	var jobs []Job
	for _, nw := range g.Networks {
		spec := nw.New()
		for _, rt := range routers {
			for _, vr := range variants {
				for rep := 0; rep < replicas; rep++ {
					idx := len(jobs)
					rt, vr := rt, vr
					jobs = append(jobs, Job{
						Desc: Desc{
							Index:   idx,
							Grid:    g.Name,
							Network: nw.Name,
							Router:  rt.Name,
							Variant: vr.Name,
							Replica: rep,
							Seed:    g.BaseSeed,
							Horizon: g.Horizon,
						},
						Build: func(uint64) *core.Engine {
							// The run stream depends only on (base, index):
							// sub-streams 1 and 2 feed the router and the
							// variant, leaving the root for future axes.
							rs := rng.ForRun(g.BaseSeed, uint64(idx))
							e := core.NewEngine(spec, rt.New(spec, rs.Split(1)))
							if vr.Apply != nil {
								vr.Apply(e, rs.Split(2))
							}
							return e
						},
						Options: g.Options,
					})
				}
			}
		}
	}
	return jobs
}
