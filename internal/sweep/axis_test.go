package sweep

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// axisTestSpace is a two-axis space (categorical network × numeric load)
// exercising the Desc mapping and enumeration order.
func axisTestSpace(replicas int) *Space {
	spec := core.NewSpec(graph.Line(4)).SetSource(0, 1).SetSink(3, 1)
	return &Space{
		Name:     "axes",
		BaseSeed: 7,
		Replicas: replicas,
		Horizon:  50,
		Axes: []Axis{
			{Name: "network", Labels: []string{"line(4)", "line(6)"}},
			{Name: "load", Unit: "×f*", Points: []float64{0.5, 0.9}, Labels: []string{"0.50", "0.90"}},
		},
		Build: func(Probe) *core.Engine {
			return core.NewEngine(spec, core.NewLGG())
		},
	}
}

func TestSpaceEnumerationOrder(t *testing.T) {
	s := axisTestSpace(2)
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2*2*2 {
		t.Fatalf("space enumerated %d jobs, want 8", len(jobs))
	}
	// First axis outermost, replicas innermost; the Desc mapping sends
	// the network axis to Desc.Network and the load axis to Desc.Variant
	// as "load=<label>".
	want := []struct {
		network, variant string
		replica          int
	}{
		{"line(4)", "load=0.50", 0}, {"line(4)", "load=0.50", 1},
		{"line(4)", "load=0.90", 0}, {"line(4)", "load=0.90", 1},
		{"line(6)", "load=0.50", 0}, {"line(6)", "load=0.50", 1},
		{"line(6)", "load=0.90", 0}, {"line(6)", "load=0.90", 1},
	}
	for i, j := range jobs {
		d := j.Desc
		if d.Index != i || d.Grid != "axes" || d.Horizon != 50 {
			t.Fatalf("job %d descriptor incomplete: %+v", i, d)
		}
		if d.Network != want[i].network || d.Variant != want[i].variant || d.Replica != want[i].replica {
			t.Fatalf("job %d = (%q, %q, %d), want %+v", i, d.Network, d.Variant, d.Replica, want[i])
		}
		// The numeric axis reports its coordinate by name.
		if len(d.Coords) != 1 || d.Coords[0].Axis != "load" {
			t.Fatalf("job %d coords = %+v, want one load coordinate", i, d.Coords)
		}
	}
	if jobs[0].Desc.Coords[0].Value != 0.5 || jobs[2].Desc.Coords[0].Value != 0.9 {
		t.Fatalf("coordinates misaligned: %+v %+v", jobs[0].Desc.Coords, jobs[2].Desc.Coords)
	}
}

func TestSpaceSeedsCoordinateKeyed(t *testing.T) {
	s := axisTestSpace(1)
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for i, j := range jobs {
		if prev, dup := seen[j.Desc.Seed]; dup {
			t.Fatalf("jobs %d and %d share seed %d", prev, i, j.Desc.Seed)
		}
		seen[j.Desc.Seed] = i
	}
	// An adaptive probe landing on a declared grid point must draw the
	// same seed as the enumerated job — the label is display-only.
	load, _ := s.Axis("load")
	pt := s.pointWith(Point{s.Axes[0].value(0)}, load, 0.5)
	if got := s.seedFor(pt, 0); got != jobs[0].Desc.Seed {
		t.Fatalf("probe at 0.5 seeds %d, enumerated point seeds %d", got, jobs[0].Desc.Seed)
	}
	// And a label-free copy of the axis derives identical seeds: only the
	// coordinate value enters the hash.
	unlabelled := *s
	unlabelled.Axes = append([]Axis(nil), s.Axes...)
	unlabelled.Axes[1].Labels = nil
	jobs2, err := unlabelled.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Desc.Seed != jobs2[i].Desc.Seed {
			t.Fatalf("job %d: labelled seed %d != unlabelled seed %d", i, jobs[i].Desc.Seed, jobs2[i].Desc.Seed)
		}
	}
}

func TestSpaceValidation(t *testing.T) {
	base := func() *Space { return axisTestSpace(1) }
	cases := []struct {
		name   string
		mutate func(*Space)
		want   string
	}{
		{"no build", func(s *Space) { s.Build = nil }, "no Build"},
		{"no axes", func(s *Space) { s.Axes = nil }, "no axes"},
		{"duplicate axis", func(s *Space) { s.Axes[1].Name = "network" }, "twice"},
		{"unnamed axis", func(s *Space) { s.Axes[0].Name = "" }, "without a name"},
		{"non-increasing points", func(s *Space) {
			s.Axes[1].Points = []float64{0.9, 0.5}
		}, "not strictly increasing"},
		{"label mismatch", func(s *Space) {
			s.Axes[1].Labels = []string{"only-one"}
		}, "1 labels"},
		{"empty axis", func(s *Space) {
			s.Axes[1] = Axis{Name: "load"}
		}, "no points"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		_, err := s.Jobs()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Jobs() error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// A continuous axis is valid but not enumerable.
	s := base()
	s.Axes[1] = Axis{Name: "load", Min: 0, Max: 1}
	if err := s.Validate(); err != nil {
		t.Fatalf("continuous axis should validate: %v", err)
	}
	if _, err := s.Jobs(); err == nil || !strings.Contains(err.Error(), "continuous") {
		t.Fatalf("Jobs() on a continuous axis: %v, want continuous error", err)
	}
}

func TestAxisBounds(t *testing.T) {
	if lo, hi, ok := (Axis{Name: "p", Points: []float64{0.25, 0.5, 2}}).Bounds(); !ok || lo != 0.25 || hi != 2 {
		t.Fatalf("points bounds = %g..%g (%v)", lo, hi, ok)
	}
	if lo, hi, ok := (Axis{Name: "c", Min: -1, Max: 3}).Bounds(); !ok || lo != -1 || hi != 3 {
		t.Fatalf("continuous bounds = %g..%g (%v)", lo, hi, ok)
	}
	if _, _, ok := (Axis{Name: "cat", Labels: []string{"a", "b"}}).Bounds(); ok {
		t.Fatal("categorical axis reported bounds")
	}
}

func TestSpaceGroupsAndPointWith(t *testing.T) {
	s := axisTestSpace(1)
	groups, err := s.groups("load")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (one per network)", len(groups))
	}
	if groups[0][0].Label != "line(4)" || groups[1][0].Label != "line(6)" {
		t.Fatalf("group order: %+v", groups)
	}
	load, _ := s.Axis("load")
	pt := s.pointWith(groups[1], load, 0.7)
	if len(pt) != 2 || pt[0].Label != "line(6)" || pt[1].Axis != "load" || pt[1].Value != 0.7 || pt[1].Label != "" {
		t.Fatalf("pointWith = %+v", pt)
	}
	// Landing exactly on a declared point picks up its label.
	if v := s.pointWith(groups[0], load, 0.9)[1]; v.Label != "0.90" {
		t.Fatalf("probe at declared point lost its label: %+v", v)
	}
	// A second continuous axis that is not the search axis is an error.
	s.Axes = append(s.Axes, Axis{Name: "noise", Min: 0, Max: 1})
	if _, err := s.groups("load"); err == nil || !strings.Contains(err.Error(), "continuous") {
		t.Fatalf("groups with stray continuous axis: %v", err)
	}
}

// TestLegacyGridDescUnchanged pins the compat layer: the legacy Grid's
// jobs keep their historical descriptors (Seed == BaseSeed, bare variant
// labels, no Coords) so journaled sweeps resume across the redesign.
func TestLegacyGridDescUnchanged(t *testing.T) {
	jobs := testGrid(2, 100).Jobs()
	for i, j := range jobs {
		d := j.Desc
		if d.Seed != 1 {
			t.Fatalf("job %d: legacy seed %d, want BaseSeed 1", i, d.Seed)
		}
		if d.Coords != nil {
			t.Fatalf("job %d: legacy grid grew coords %+v", i, d.Coords)
		}
	}
	if jobs[0].Desc.Network != "line(5)" || jobs[0].Desc.Router != "lgg" || jobs[0].Desc.Variant != "exact" {
		t.Fatalf("legacy descriptor changed: %+v", jobs[0].Desc)
	}
}
