package sweep

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// This file is the typed-axis sweep API: a Space declares its parameter
// axes as first-class values (name, unit, ordered numeric points or a
// continuous range) instead of a pre-enumerated job list. Exhaustive
// sweeps enumerate a Space with Jobs(); the adaptive frontier driver
// (adaptive.go) instead probes a numeric axis at arbitrary coordinates,
// which only works because the axis — not an opaque closure — is the
// unit of parameterization.
//
// The legacy Grid (grid.go) survives as a thin compat layer that builds
// a Space out of its three fixed axes.

// Axis is one dimension of a Space. Exactly one of three shapes:
//
//   - categorical: Labels set, Points empty — an ordered list of named
//     values (networks, routers, policy variants). The value of the i-th
//     label is the ordinal i.
//   - numeric points: Points set (strictly increasing), optionally with
//     aligned display Labels — an ordered list of numeric coordinates
//     (load fractions, loss rates).
//   - continuous: Min < Max with no Points/Labels — a numeric range only
//     the adaptive driver can probe; Jobs() refuses to enumerate it.
type Axis struct {
	// Name identifies the axis; "network", "router" and "variant" map
	// onto the matching Desc fields, anything else renders into
	// Desc.Variant as "name=value".
	Name string `json:"name"`
	// Unit is an optional display unit (e.g. "×f*").
	Unit string `json:"unit,omitempty"`
	// Points are the ordered numeric coordinates of the axis.
	Points []float64 `json:"points,omitempty"`
	// Labels are the display labels: the whole axis for a categorical
	// axis, or one label per point for a numeric axis.
	Labels []string `json:"labels,omitempty"`
	// Min/Max declare a continuous range (adaptive-only) when Min < Max
	// and the axis has no Points or Labels.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
}

// Continuous reports whether the axis is a continuous range — probe-able
// by the adaptive driver but not enumerable by Jobs().
func (a Axis) Continuous() bool {
	return len(a.Points) == 0 && len(a.Labels) == 0 && a.Min < a.Max
}

// Numeric reports whether the axis carries numeric coordinates (points
// or a continuous range) — the requirement for being a search axis.
func (a Axis) Numeric() bool { return len(a.Points) > 0 || a.Continuous() }

// Bounds returns the numeric range of the axis: the first and last point,
// or the continuous Min/Max. ok is false for categorical axes.
func (a Axis) Bounds() (lo, hi float64, ok bool) {
	if len(a.Points) > 0 {
		return a.Points[0], a.Points[len(a.Points)-1], true
	}
	if a.Continuous() {
		return a.Min, a.Max, true
	}
	return 0, 0, false
}

// validate checks the axis invariants.
func (a Axis) validate() error {
	if a.Name == "" {
		return fmt.Errorf("sweep: axis without a name")
	}
	if len(a.Points) == 0 && len(a.Labels) == 0 && !(a.Min < a.Max) {
		return fmt.Errorf("sweep: axis %q has no points, no labels and no continuous range", a.Name)
	}
	if len(a.Points) > 0 && len(a.Labels) > 0 && len(a.Points) != len(a.Labels) {
		return fmt.Errorf("sweep: axis %q has %d points but %d labels", a.Name, len(a.Points), len(a.Labels))
	}
	for i := 1; i < len(a.Points); i++ {
		if a.Points[i] <= a.Points[i-1] {
			return fmt.Errorf("sweep: axis %q points not strictly increasing at %d (%g after %g)",
				a.Name, i, a.Points[i], a.Points[i-1])
		}
	}
	return nil
}

// size is the number of enumerable values (0 for a continuous axis).
func (a Axis) size() int {
	if len(a.Points) > 0 {
		return len(a.Points)
	}
	return len(a.Labels)
}

// value returns the i-th enumerable value of the axis.
func (a Axis) value(i int) AxisValue {
	v := AxisValue{Axis: a.Name}
	if len(a.Points) > 0 {
		v.Value = a.Points[i]
		if len(a.Labels) > 0 {
			v.Label = a.Labels[i]
		}
		return v
	}
	v.Value = float64(i)
	v.Label = a.Labels[i]
	return v
}

// at returns an AxisValue for an arbitrary numeric coordinate x of the
// axis, attaching the display label when x coincides with a declared
// point — so an adaptive probe landing on a grid point carries the same
// descriptor the exhaustive enumeration would.
func (a Axis) at(x float64) AxisValue {
	v := AxisValue{Axis: a.Name, Value: x}
	for i, p := range a.Points {
		if p == x && len(a.Labels) > 0 {
			v.Label = a.Labels[i]
		}
	}
	return v
}

// display renders an axis value for Desc fields: the label when the axis
// carries one, the formatted coordinate otherwise.
func (a Axis) display(v AxisValue) string {
	if v.Label != "" || !a.Numeric() {
		return v.Label
	}
	return strconv.FormatFloat(v.Value, 'g', -1, 64)
}

// AxisValue is one coordinate of a run: the axis name plus the numeric
// value (the ordinal for categorical axes) and display label.
type AxisValue struct {
	Axis  string  `json:"axis"`
	Value float64 `json:"value"`
	Label string  `json:"label,omitempty"`
}

// Point is a full coordinate vector, aligned with the Space's Axes.
type Point []AxisValue

// Value returns the numeric coordinate of the named axis.
func (p Point) Value(axis string) (float64, bool) {
	for _, v := range p {
		if v.Axis == axis {
			return v.Value, true
		}
	}
	return 0, false
}

// Label returns the display label of the named axis.
func (p Point) Label(axis string) (string, bool) {
	for _, v := range p {
		if v.Axis == axis {
			return v.Label, true
		}
	}
	return "", false
}

// Probe identifies one engine build request: the coordinate vector, the
// replica number within that coordinate, the derived seed, and the dense
// emission index (which the legacy Grid compat layer feeds to
// rng.ForRun).
type Probe struct {
	Index   int
	Point   Point
	Replica int
	Seed    uint64
}

// Space is a sweep parameterized by typed axes. Jobs() enumerates the
// cartesian product (axes in declaration order, first axis outermost,
// replicas innermost — the Cells convention); RunFrontier instead probes
// one numeric axis adaptively.
type Space struct {
	// Name becomes Desc.Grid.
	Name string
	// BaseSeed feeds the per-coordinate seed derivation.
	BaseSeed uint64
	// Replicas is the number of runs per coordinate (default 1).
	Replicas int
	// Horizon is the per-run step count.
	Horizon int64
	// Axes are the dimensions, in enumeration order.
	Axes []Axis
	// Options tunes every run (Horizon above wins when unset there).
	Options sim.Options
	// Build constructs the engine for one probe. Like sim.EngineFactory
	// it must return an independent engine per call.
	Build func(Probe) *core.Engine
	// SeedFn, when set, overrides the default coordinate-keyed seed
	// derivation — the migrated experiment grids use it to keep their
	// historical base+replica seeds. The default hashes (BaseSeed, every
	// coordinate, replica), so a probe at the same coordinates draws the
	// same stream no matter how the sweep reached it: exhaustive
	// enumeration, adaptive refinement and resumed refinement all agree.
	SeedFn func(p Point, replica int) uint64
}

// Validate checks the space invariants shared by Jobs and RunFrontier.
func (s *Space) Validate() error {
	if s.Build == nil {
		return fmt.Errorf("sweep: space %q has no Build", s.Name)
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("sweep: space %q has no axes", s.Name)
	}
	seen := map[string]bool{}
	for _, a := range s.Axes {
		if err := a.validate(); err != nil {
			return err
		}
		if seen[a.Name] {
			return fmt.Errorf("sweep: space %q declares axis %q twice", s.Name, a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// Axis looks an axis up by name.
func (s *Space) Axis(name string) (Axis, bool) {
	for _, a := range s.Axes {
		if a.Name == name {
			return a, true
		}
	}
	return Axis{}, false
}

// replicas is Replicas with the default applied.
func (s *Space) replicas() int {
	if s.Replicas <= 0 {
		return 1
	}
	return s.Replicas
}

// Jobs enumerates the cartesian product of the axes into the flat job
// list the Runner executes: first axis outermost, replicas innermost.
// Continuous axes cannot be enumerated — run those through RunFrontier.
func (s *Space) Jobs() ([]Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	total := s.replicas()
	for _, a := range s.Axes {
		if a.Continuous() {
			return nil, fmt.Errorf("sweep: space %q axis %q is continuous — enumerate explicit points or use RunFrontier", s.Name, a.Name)
		}
		total *= a.size()
	}
	if total == 0 {
		return nil, nil
	}
	jobs := make([]Job, 0, total)
	counters := make([]int, len(s.Axes))
	for {
		pt := make(Point, len(s.Axes))
		for i, c := range counters {
			pt[i] = s.Axes[i].value(c)
		}
		for rep := 0; rep < s.replicas(); rep++ {
			jobs = append(jobs, s.job(len(jobs), pt, rep))
		}
		k := len(counters) - 1
		for ; k >= 0; k-- {
			if counters[k]++; counters[k] < s.Axes[k].size() {
				break
			}
			counters[k] = 0
		}
		if k < 0 {
			return jobs, nil
		}
	}
}

// job builds the Job for one probe of the space.
func (s *Space) job(idx int, pt Point, rep int) Job {
	d := s.desc(idx, pt, rep)
	p := Probe{Index: idx, Point: pt, Replica: rep, Seed: d.Seed}
	return Job{
		Desc:    d,
		Build:   func(uint64) *core.Engine { return s.Build(p) },
		Options: s.Options,
	}
}

// desc maps a coordinate vector onto the flat run descriptor: the
// "network"/"router" axes fill the matching fields, a "variant" axis
// contributes its bare label, and every other axis renders as
// "name=value"; the non-dedicated parts join with "/" into Desc.Variant.
// Numeric coordinates are additionally reported by name in Desc.Coords.
func (s *Space) desc(idx int, pt Point, rep int) Desc {
	d := Desc{Index: idx, Grid: s.Name, Replica: rep,
		Seed: s.seedFor(pt, rep), Horizon: s.Horizon}
	var variant []string
	for i, v := range pt {
		a := s.Axes[i]
		switch a.Name {
		case "network":
			d.Network = a.display(v)
		case "router":
			d.Router = a.display(v)
		case "variant":
			variant = append(variant, a.display(v))
		default:
			variant = append(variant, a.Name+"="+a.display(v))
		}
		if a.Numeric() {
			d.Coords = append(d.Coords, v)
		}
	}
	d.Variant = strings.Join(variant, "/")
	return d
}

// seedFor derives the run seed for a coordinate vector and replica.
func (s *Space) seedFor(pt Point, rep int) uint64 {
	if s.SeedFn != nil {
		return s.SeedFn(pt, rep)
	}
	h := splitmix64(s.BaseSeed ^ 0x5357454550415845) // "SWEEPAXE"
	for i, v := range pt {
		a := s.Axes[i]
		h = splitmix64(h ^ fnv64(a.Name))
		if a.Numeric() {
			// Hash the coordinate, not the label: a probe at 0.5 and an
			// enumerated point labelled "0.50" must share a stream.
			h = splitmix64(h ^ math.Float64bits(v.Value))
		} else {
			h = splitmix64(h ^ fnv64(v.Label))
		}
	}
	return splitmix64(h ^ uint64(rep))
}

// groups enumerates the cartesian product of every axis except skip —
// the per-group coordinate prefixes the adaptive driver bisects within.
// Group points have one entry per non-skip axis, in axis order.
func (s *Space) groups(skip string) ([]Point, error) {
	var rest []Axis
	for _, a := range s.Axes {
		if a.Name == skip {
			continue
		}
		if a.Continuous() {
			return nil, fmt.Errorf("sweep: space %q axis %q is continuous but not the search axis", s.Name, a.Name)
		}
		rest = append(rest, a)
	}
	pts := []Point{nil}
	for _, a := range rest {
		next := make([]Point, 0, len(pts)*a.size())
		for _, p := range pts {
			for i := 0; i < a.size(); i++ {
				np := make(Point, len(p), len(p)+1)
				copy(np, p)
				next = append(next, append(np, a.value(i)))
			}
		}
		pts = next
	}
	return pts, nil
}

// pointWith assembles a full coordinate vector from a group point (all
// axes but one) plus a coordinate on the remaining axis, in axis order.
func (s *Space) pointWith(group Point, axis Axis, x float64) Point {
	pt := make(Point, 0, len(s.Axes))
	g := 0
	for _, a := range s.Axes {
		if a.Name == axis.Name {
			pt = append(pt, axis.at(x))
			continue
		}
		pt = append(pt, group[g])
		g++
	}
	return pt
}

// splitmix64 is the standard splitmix64 finalizer — the same mixer the
// rng package builds its streams from, reimplemented here so the seed
// derivation is self-contained and frozen (changing it would silently
// re-seed every journaled sweep).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 is FNV-1a over a string, for folding axis names and labels into
// the seed chain.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
