package sweep

import "fmt"

// The merger reassembles a sweep that was sharded by run-index range
// across a fleet of workers into the single in-order result stream the
// determinism contract promises. Each worker executes a contiguous
// index range and (by the per-run RNG derivation) produces exactly the
// results a single-daemon sweep would have produced for those indices,
// so merging is a k-way merge keyed on Desc.Index: results are emitted
// in global index order, and duplicates — a range that was re-leased to
// a second worker after the first went quiet, then completed on both —
// collapse to one emission per index. Because duplicated runs are
// byte-identical by construction, dedup-by-index loses nothing, and the
// merged stream is byte-identical to an unsharded run of the same
// sweep.

// Merger incrementally k-way merges result batches by run index. Feed
// it each worker's results with Add as they arrive (in any order,
// overlaps allowed); it invokes emit for each result exactly once, in
// strictly ascending index order, as soon as the contiguous prefix
// extends. Close verifies full coverage. Not safe for concurrent use;
// callers serialize Add.
type Merger struct {
	total   int // expected run count; <0 disables the bound + coverage check
	next    int // lowest index not yet emitted
	pending map[int]Result
	emit    func(Result) error
}

// NewMerger builds a merger for a sweep of total runs (indices
// [0,total)); emit receives the merged in-order stream. total < 0
// disables the range bound and the Close coverage check (adaptive
// sweeps with an unknown run count).
func NewMerger(total int, emit func(Result) error) *Merger {
	return &Merger{total: total, pending: make(map[int]Result), emit: emit}
}

// Add feeds one batch of results (a whole range or any prefix of one).
// Results whose index was already emitted or is already buffered are
// dropped — the stolen-range dedup. Emission happens inside Add, so a
// journal wired into emit grows as the contiguous prefix does.
func (m *Merger) Add(rs []Result) error {
	for _, r := range rs {
		if m.total >= 0 && (r.Index < 0 || r.Index >= m.total) {
			return fmt.Errorf("sweep: merge: result index %d outside sweep of %d runs", r.Index, m.total)
		}
		if r.Index < m.next {
			continue // duplicate of an already-emitted run
		}
		if _, dup := m.pending[r.Index]; dup {
			continue // duplicate of a buffered run
		}
		m.pending[r.Index] = r
	}
	for {
		r, ok := m.pending[m.next]
		if !ok {
			return nil
		}
		delete(m.pending, m.next)
		m.next++
		if err := m.emit(r); err != nil {
			return err
		}
	}
}

// Emitted reports how many results have been emitted so far (the length
// of the contiguous merged prefix).
func (m *Merger) Emitted() int { return m.next }

// Resume marks indices [0,n) as already emitted — a restarted
// coordinator replaying a merged journal's prefix. Later arrivals of
// those indices are dropped as duplicates; emission continues at n.
func (m *Merger) Resume(n int) {
	if n > m.next {
		m.next = n
	}
}

// Close verifies the merge is complete: every index in [0,total) was
// emitted and nothing non-contiguous is left buffered. A gap means a
// range was never finished by any worker.
func (m *Merger) Close() error {
	if len(m.pending) > 0 {
		return fmt.Errorf("sweep: merge: %d results stranded beyond a gap at index %d", len(m.pending), m.next)
	}
	if m.total >= 0 && m.next != m.total {
		return fmt.Errorf("sweep: merge: covered %d of %d runs (gap at index %d)", m.next, m.total, m.next)
	}
	return nil
}

// MergeIndexed merges independently produced result batches into the
// single in-order result list of a sweep with total runs, deduplicating
// overlapping indices. It is the one-shot convenience over Merger.
func MergeIndexed(batches [][]Result, total int) ([]Result, error) {
	out := make([]Result, 0, total)
	m := NewMerger(total, func(r Result) error {
		out = append(out, r)
		return nil
	})
	for _, b := range batches {
		if err := m.Add(b); err != nil {
			return nil, err
		}
	}
	if err := m.Close(); err != nil {
		return nil, err
	}
	return out, nil
}
