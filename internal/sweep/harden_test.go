package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
)

// TestPanicIsolation: one poisoned job must become a Failed result while
// every other run completes untouched — a panic never kills the sweep.
func TestPanicIsolation(t *testing.T) {
	clean := testGrid(2, 150).Jobs()
	want, err := (&Runner{Workers: 4}).Run(clean)
	if err != nil {
		t.Fatal(err)
	}

	poisoned := testGrid(2, 150).Jobs()
	const bad = 7
	poisoned[bad].Build = func(seed uint64) *core.Engine { panic("boom at 7") }
	rs, err := (&Runner{Workers: 4}).Run(poisoned)
	if err != nil {
		t.Fatalf("a failed run must not error the sweep: %v", err)
	}
	if len(rs) != len(poisoned) {
		t.Fatalf("got %d results, want %d", len(rs), len(poisoned))
	}
	f := rs[bad]
	if !f.Failed || !strings.Contains(f.Error, "boom at 7") || f.Stack == "" {
		t.Fatalf("poisoned run not recorded as Failed with error+stack: %+v", f)
	}
	if f.Index != bad || f.Verdict != 0 {
		t.Fatalf("failed result carries wrong identity/verdict: %+v", f)
	}
	for i := range rs {
		if i == bad {
			continue
		}
		if !reflect.DeepEqual(rs[i], want[i]) {
			t.Fatalf("healthy run %d disturbed by the failure:\n got %+v\nwant %+v", i, rs[i], want[i])
		}
	}
}

// TestRetryRecoversTransientPanic: a run that panics once and then
// succeeds must be retried into a normal result when Retries allows.
func TestRetryRecoversTransientPanic(t *testing.T) {
	clean := testGrid(1, 100).Jobs()
	want, err := (&Runner{Workers: 1}).Run(clean)
	if err != nil {
		t.Fatal(err)
	}

	flaky := testGrid(1, 100).Jobs()
	const idx = 3
	inner := flaky[idx].Build
	var calls atomic.Int64
	flaky[idx].Build = func(seed uint64) *core.Engine {
		if calls.Add(1) == 1 {
			panic("transient")
		}
		return inner(seed)
	}
	rs, err := (&Runner{Workers: 2, Retries: 2, RetryBackoff: time.Millisecond}).Run(flaky)
	if err != nil {
		t.Fatal(err)
	}
	if rs[idx].Failed {
		t.Fatalf("retry did not rescue the flaky run: %+v", rs[idx])
	}
	if !reflect.DeepEqual(rs[idx], want[idx]) {
		t.Fatalf("retried run differs from clean run:\n got %+v\nwant %+v", rs[idx], want[idx])
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("build called %d times, want 2 (fail, then success)", got)
	}

	// Without retries the same panic is terminal.
	calls.Store(0)
	rs, err = (&Runner{Workers: 2}).Run(flaky)
	if err != nil {
		t.Fatal(err)
	}
	if !rs[idx].Failed || calls.Load() != 1 {
		t.Fatalf("Retries=0 still retried (calls=%d, failed=%v)", calls.Load(), rs[idx].Failed)
	}
}

// readJournal decodes the raw lines of a journal file.
func readJournal(t *testing.T, path string) (journalHeader, []Result) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatalf("journal %s has no header", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	var rs []Result
	for sc.Scan() {
		var res Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		rs = append(rs, res)
	}
	return hdr, rs
}

// TestJournalResumeReproducesSweep is the crash-recovery contract: kill a
// sweep part-way (simulated by truncating its journal, with a torn tail),
// resume from the journal, and the final output must be byte-identical to
// an uninterrupted run.
func TestJournalResumeReproducesSweep(t *testing.T) {
	jobs := testGrid(2, 150).Jobs()
	want, err := (&Runner{Workers: 4}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Full journalled run first, to harvest authentic journal bytes.
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := CreateJournal(path, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Workers: 4, Journal: j}).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, onDisk := readJournal(t, path)
	if hdr.Jobs != len(jobs) || !reflect.DeepEqual(onDisk, want) {
		t.Fatalf("journal does not mirror the sweep: hdr=%+v lines=%d", hdr, len(onDisk))
	}

	// Simulate a crash: keep the header + 5 results, then a torn line.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	torn := append(bytes.Join(lines[:1+5], nil), []byte(`{"index":6,"se`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, resume, err := OpenJournalResume(path, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if len(resume) != 5 || !reflect.DeepEqual(resume, want[:5]) {
		t.Fatalf("resume prefix wrong: %d results", len(resume))
	}
	var replayed []int
	r := &Runner{Workers: 4, Journal: j2, Resume: resume,
		OnResult: func(jb Job, res Result, full *sim.Result) {
			if res.Index < 5 && full != nil {
				t.Errorf("replayed run %d carries a full result", res.Index)
			}
			replayed = append(replayed, res.Index)
		}}
	got, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed sweep differs from uninterrupted sweep")
	}
	if len(replayed) != len(jobs) {
		t.Fatalf("OnResult fired %d times, want %d (replays included)", len(replayed), len(jobs))
	}
	if _, after := readJournal(t, path); !reflect.DeepEqual(after, want) {
		t.Fatal("journal after resume does not hold the full sweep")
	}

	// Byte-level check, the strongest form of the contract.
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, got); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("resumed JSONL bytes differ from uninterrupted JSONL")
	}
}

// TestJournalRejectsForeignFiles: a journal for the wrong sweep (or a file
// that is not a journal) must error rather than be clobbered.
func TestJournalRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	notJournal := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(notJournal, []byte("hello world\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournalResume(notJournal, 4); err == nil {
		t.Fatal("accepted a non-journal file")
	}
	mismatch := filepath.Join(dir, "other.jsonl")
	j, err := CreateJournal(mismatch, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournalResume(mismatch, 4); err == nil {
		t.Fatal("accepted a journal with a different job count")
	}
}

// TestResumePrefixValidated: a resume prefix that does not match the job
// list (wrong seed) must be refused before any run starts.
func TestResumePrefixValidated(t *testing.T) {
	jobs := testGrid(1, 100).Jobs()
	bogus := []Result{{Desc: Desc{Index: 0, Seed: 999, Horizon: 100}}}
	if _, err := (&Runner{Resume: bogus}).Run(jobs); err == nil {
		t.Fatal("mismatched resume prefix accepted")
	}
	tooLong := make([]Result, len(jobs)+1)
	if _, err := (&Runner{Resume: tooLong}).Run(jobs); err == nil {
		t.Fatal("oversized resume prefix accepted")
	}
}

// TestJournalHoldsFinishedPrefixOnTimeout is the satellite-2 regression:
// when a sweep is cut off by its deadline, whatever reached the journal on
// disk must be exactly the finished, in-order prefix the runner returned.
func TestJournalHoldsFinishedPrefixOnTimeout(t *testing.T) {
	jobs := testGrid(4, 200_000).Jobs()
	path := filepath.Join(t.TempDir(), "timeout.jsonl")
	j, err := CreateJournal(path, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := (&Runner{Workers: 2, Timeout: 5 * time.Millisecond, Journal: j}).Run(jobs)
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, onDisk := readJournal(t, path)
	if len(onDisk) != len(rs) {
		t.Fatalf("journal holds %d results, runner returned %d", len(onDisk), len(rs))
	}
	if len(rs) > 0 && !reflect.DeepEqual(onDisk, rs) {
		t.Fatal("journal prefix differs from returned prefix")
	}
	for i, res := range onDisk {
		if res.Index != i {
			t.Fatalf("journal prefix not contiguous at %d (index %d)", i, res.Index)
		}
	}
}

// faultGrid is testGrid's sibling with fault injection on every axis: a
// burst-loss window, a link-down window and a crash, plus a recovery
// observer whose report must surface in the sweep results.
func faultGrid(replicas int, horizon int64) *Grid {
	sched := faults.Schedule{Events: []faults.Event{
		{Kind: faults.Burst, From: 20, To: 80, PGood: 0.02, PBad: 0.5, GtoB: 0.1, BtoG: 0.3},
		{Kind: faults.LinkDown, From: 40, To: 70, Edges: []graph.EdgeID{0}},
	}}
	return &Grid{
		Name:     "fault-test",
		BaseSeed: 7,
		Replicas: replicas,
		Horizon:  horizon,
		Networks: []Network{
			{"cycle(4)", func() *core.Spec {
				return core.NewSpec(graph.Cycle(4)).SetSource(0, 1).SetSink(2, 2)
			}},
			{"theta(3,2)", func() *core.Spec {
				return core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
			}},
		},
		Routers: []RouterAxis{
			{"lgg", func(*core.Spec, *rng.Source) core.Router { return core.NewLGG() }},
		},
		Variants: []Variant{
			{"faulty", func(e *core.Engine, r *rng.Source) {
				if _, err := faults.Inject(e, sched, r.Split(0xFA)); err != nil {
					panic(err)
				}
				e.AddObserver(faults.NewRecoveryObserver(sched))
			}},
		},
	}
}

// TestFaultSweepDeterminism extends the worker-count contract to fault
// injection: Gilbert–Elliott chains, link-down windows and the recovery
// report must all be byte-identical at 1 and 8 workers.
func TestFaultSweepDeterminism(t *testing.T) {
	jobs := faultGrid(4, 300).Jobs()
	encode := func(workers int) string {
		rs, err := (&Runner{Workers: workers}).Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, rs); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := encode(1)
	if parallel := encode(8); parallel != serial {
		t.Fatal("fault-schedule sweep JSONL differs between 1 and 8 workers")
	}
	if !strings.Contains(serial, `"recovery":`) {
		t.Fatal("no run surfaced a recovery verdict")
	}
	for _, f := range []string{`"time_to_drain":`, `"fault_peak_backlog":`} {
		if !strings.Contains(serial, f) {
			t.Fatalf("results missing %s field", f)
		}
	}
}
