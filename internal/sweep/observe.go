package sweep

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
)

// CellStats aggregates the replicas of one grid cell (one
// network × router × variant point) into the summary statistics the
// stability plots are drawn from. Aggregation is pure arithmetic over
// the in-order result list, so the output inherits the sweep's
// determinism contract: identical bytes at any worker count.
type CellStats struct {
	Grid    string `json:"grid,omitempty"`
	Network string `json:"network,omitempty"`
	Router  string `json:"router,omitempty"`
	Variant string `json:"variant,omitempty"`
	// Replicas is the number of runs aggregated into this cell.
	Replicas int `json:"replicas"`
	// StableShare is the fraction of replicas judged stable, with its
	// Wilson score interval at z=1.96 (StableShareLo/Hi) — the same
	// interval the adaptive frontier driver early-stops on, so exhaustive
	// cell aggregates and frontier probes read on one scale.
	StableShare   float64 `json:"stable_share"`
	StableShareLo float64 `json:"stable_share_lo"`
	StableShareHi float64 `json:"stable_share_hi"`
	// WorstVerdict is the most pessimistic replica verdict (diverging
	// beats inconclusive beats stable).
	WorstVerdict sim.Verdict `json:"worst_verdict"`
	// MeanBacklog averages the per-run trailing-half mean backlog.
	MeanBacklog float64 `json:"mean_backlog"`
	// PeakPotential / PeakQueued are cell-wide maxima.
	PeakPotential int64 `json:"peak_potential"`
	PeakQueued    int64 `json:"peak_queued"`
	// Packet totals summed over the replicas.
	Injected   int64 `json:"injected"`
	Sent       int64 `json:"sent"`
	Lost       int64 `json:"lost"`
	Extracted  int64 `json:"extracted"`
	Collisions int64 `json:"collisions"`
	Violations int64 `json:"violations"`
	// Failed counts replicas recorded as Failed (panicking runs).
	Failed int `json:"failed,omitempty"`
	// Recovery aggregates over the replicas that carried a fault-recovery
	// verdict: RecoveredShare is the recovered fraction of the decided
	// (Recovered + Degraded) replicas, MeanTimeToDrain averages the drain
	// time of the recovered ones, and FaultPeakPotential /
	// FaultPeakBacklog are cell-wide maxima of the under-fault peaks.
	// All stay zero for fault-free sweeps.
	// RecoveredShareLo/Hi is the Wilson interval of RecoveredShare over
	// the decided replicas (present only when some replica decided).
	RecoveredShare     float64 `json:"recovered_share,omitempty"`
	RecoveredShareLo   float64 `json:"recovered_share_lo,omitempty"`
	RecoveredShareHi   float64 `json:"recovered_share_hi,omitempty"`
	MeanTimeToDrain    float64 `json:"mean_time_to_drain,omitempty"`
	FaultPeakPotential int64   `json:"fault_peak_potential,omitempty"`
	FaultPeakBacklog   int64   `json:"fault_peak_backlog,omitempty"`
	// Coords reports the cell's numeric axis coordinates by name, for
	// spaces with numeric axes (empty on legacy categorical grids).
	Coords []AxisValue `json:"coords,omitempty"`
}

// aggregateCell folds one cell's replicas (all sharing a descriptor)
// into its statistics.
func aggregateCell(cell []Result) CellStats {
	d := cell[0].Desc
	cs := CellStats{
		Grid:         d.Grid,
		Network:      d.Network,
		Router:       d.Router,
		Variant:      d.Variant,
		Replicas:     len(cell),
		StableShare:  StableShare(cell),
		WorstVerdict: WorstVerdict(cell),
		MeanBacklog:  MeanBacklog(cell),
		Coords:       d.Coords,
	}
	stable := 0
	for _, r := range cell {
		if r.Verdict == sim.Stable {
			stable++
		}
	}
	cs.StableShareLo, cs.StableShareHi = stats.WilsonInterval(stable, len(cell), 1.96)
	recovered, degraded := 0, 0
	var drainSum float64
	for _, r := range cell {
		if r.PeakPotential > cs.PeakPotential {
			cs.PeakPotential = r.PeakPotential
		}
		if r.PeakQueued > cs.PeakQueued {
			cs.PeakQueued = r.PeakQueued
		}
		cs.Injected += r.Injected
		cs.Sent += r.Sent
		cs.Lost += r.Lost
		cs.Extracted += r.Extracted
		cs.Collisions += r.Collisions
		cs.Violations += r.Violations
		if r.Failed {
			cs.Failed++
		}
		switch r.Recovery {
		case "Recovered":
			recovered++
			drainSum += float64(r.TimeToDrain)
		case "Degraded":
			degraded++
		}
		if r.FaultPeakPotential > cs.FaultPeakPotential {
			cs.FaultPeakPotential = r.FaultPeakPotential
		}
		if r.FaultPeakBacklog > cs.FaultPeakBacklog {
			cs.FaultPeakBacklog = r.FaultPeakBacklog
		}
	}
	if decided := recovered + degraded; decided > 0 {
		cs.RecoveredShare = float64(recovered) / float64(decided)
		cs.RecoveredShareLo, cs.RecoveredShareHi = stats.WilsonInterval(recovered, decided, 1.96)
	}
	if recovered > 0 {
		cs.MeanTimeToDrain = drainSum / float64(recovered)
	}
	return cs
}

// AggregateCells slices the ordered result list into cells of replicas
// runs each (the Cells convention) and aggregates every cell. The error
// cases are those of Cells: non-positive replicas or a list that does not
// divide evenly (the finished prefix of a timed-out sweep).
func AggregateCells(rs []Result, replicas int) ([]CellStats, error) {
	cells, err := Cells(rs, replicas)
	if err != nil {
		return nil, err
	}
	out := make([]CellStats, len(cells))
	for i, cell := range cells {
		out[i] = aggregateCell(cell)
	}
	return out, nil
}

// WriteCellsJSONL encodes cell aggregates as JSON lines, byte-stably.
func WriteCellsJSONL(w io.Writer, cells []CellStats) error {
	enc := json.NewEncoder(w)
	for i := range cells {
		if err := enc.Encode(&cells[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCellsCSV renders cell aggregates as a CSV table with a fixed
// header, byte-stably.
func WriteCellsCSV(w io.Writer, cells []CellStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"grid", "network", "router", "variant",
		"replicas", "stable_share", "stable_share_lo", "stable_share_hi",
		"worst_verdict", "mean_backlog",
		"peak_potential", "peak_queued", "injected", "sent", "lost",
		"extracted", "collisions", "violations", "failed",
		"recovered_share", "recovered_share_lo", "recovered_share_hi",
		"mean_time_to_drain", "fault_peak_potential",
		"fault_peak_backlog", "coords"}); err != nil {
		return err
	}
	for _, c := range cells {
		coords := ""
		for _, v := range c.Coords {
			if coords != "" {
				coords += "/"
			}
			coords += v.Axis + "=" + strconv.FormatFloat(v.Value, 'g', -1, 64)
		}
		rec := []string{c.Grid, c.Network, c.Router, c.Variant,
			strconv.Itoa(c.Replicas),
			strconv.FormatFloat(c.StableShare, 'g', -1, 64),
			strconv.FormatFloat(c.StableShareLo, 'g', -1, 64),
			strconv.FormatFloat(c.StableShareHi, 'g', -1, 64),
			c.WorstVerdict.String(),
			strconv.FormatFloat(c.MeanBacklog, 'g', -1, 64),
			strconv.FormatInt(c.PeakPotential, 10),
			strconv.FormatInt(c.PeakQueued, 10),
			strconv.FormatInt(c.Injected, 10),
			strconv.FormatInt(c.Sent, 10),
			strconv.FormatInt(c.Lost, 10),
			strconv.FormatInt(c.Extracted, 10),
			strconv.FormatInt(c.Collisions, 10),
			strconv.FormatInt(c.Violations, 10),
			strconv.Itoa(c.Failed),
			strconv.FormatFloat(c.RecoveredShare, 'g', -1, 64),
			strconv.FormatFloat(c.RecoveredShareLo, 'g', -1, 64),
			strconv.FormatFloat(c.RecoveredShareHi, 'g', -1, 64),
			strconv.FormatFloat(c.MeanTimeToDrain, 'g', -1, 64),
			strconv.FormatInt(c.FaultPeakPotential, 10),
			strconv.FormatInt(c.FaultPeakBacklog, 10),
			coords}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Canonical sweep-level metric names for RecordMetrics.
const (
	MetricRuns              = "sweep_runs_total"
	MetricRunsStable        = "sweep_runs_stable_total"
	MetricRunsDiverging     = "sweep_runs_diverging_total"
	MetricRunsUndecided     = "sweep_runs_inconclusive_total"
	MetricSweepInjected     = "sweep_injected_packets_total"
	MetricSweepSent         = "sweep_sent_packets_total"
	MetricSweepLost         = "sweep_lost_packets_total"
	MetricSweepExtracted    = "sweep_extracted_packets_total"
	MetricSweepPeakPot      = "sweep_peak_potential"
	MetricSweepPeakBack     = "sweep_peak_backlog"
	MetricRunsFailed        = "sweep_runs_failed_total"
	MetricRunsRecovered     = "sweep_runs_recovered_total"
	MetricRunsDegraded      = "sweep_runs_degraded_total"
	MetricRunsIndeterminate = "sweep_runs_indeterminate_total"
)

// RecordMetrics folds finished sweep results into the canonical
// sweep-level metrics of reg, so one scrape covers a whole grid. It
// operates on the in-order result list (not the hot loop), which keeps
// the exposition deterministic at any worker count.
func RecordMetrics(reg *metrics.Registry, rs []Result) {
	runs := reg.Counter(MetricRuns, "Sweep runs completed.")
	stable := reg.Counter(MetricRunsStable, "Runs judged stable (Definition 2 holds empirically).")
	diverging := reg.Counter(MetricRunsDiverging, "Runs judged diverging.")
	undecided := reg.Counter(MetricRunsUndecided, "Runs the detector could not call.")
	injected := reg.Counter(MetricSweepInjected, "Packets injected across all runs.")
	sent := reg.Counter(MetricSweepSent, "Packets sent across all runs.")
	lost := reg.Counter(MetricSweepLost, "Packets lost across all runs.")
	extracted := reg.Counter(MetricSweepExtracted, "Packets delivered across all runs.")
	peakPot := reg.Gauge(MetricSweepPeakPot, "Largest P_t across all runs.")
	peakBack := reg.Gauge(MetricSweepPeakBack, "Largest N_t across all runs.")
	failed := reg.Counter(MetricRunsFailed, "Runs that panicked and were recorded as failed.")
	recovered := reg.Counter(MetricRunsRecovered, "Runs that recovered after their fault schedule cleared.")
	degraded := reg.Counter(MetricRunsDegraded, "Runs still degraded after their fault schedule cleared.")
	indeterminate := reg.Counter(MetricRunsIndeterminate, "Runs whose fault window outlived the horizon (drain unobserved).")
	for _, r := range rs {
		runs.Inc()
		switch r.Verdict {
		case sim.Stable:
			stable.Inc()
		case sim.Diverging:
			diverging.Inc()
		default:
			undecided.Inc()
		}
		if r.Failed {
			failed.Inc()
		}
		switch r.Recovery {
		case "Recovered":
			recovered.Inc()
		case "Degraded":
			degraded.Inc()
		case "Indeterminate":
			indeterminate.Inc()
		}
		injected.Add(r.Injected)
		sent.Add(r.Sent)
		lost.Add(r.Lost)
		extracted.Add(r.Extracted)
		peakPot.SetMax(r.PeakPotential)
		peakBack.SetMax(r.PeakQueued)
	}
}

// runEvent / cellEvent fix the JSONL field order of the event stream:
// a tag first, then the payload fields in declaration order.
type runEvent struct {
	Event string `json:"event"` // always "run"
	Result
}

type cellEvent struct {
	Event string `json:"event"` // always "cell"
	CellStats
}

// EventStreamer turns the in-order result callback of a Runner into a
// JSONL event stream: one {"event":"run",…} line per finished run and —
// when Replicas is set — one {"event":"cell",…} aggregate line after
// each completed cell. Because OnResult fires in index order, the
// stream is byte-identical at any worker count.
//
// Wire it up with runner.OnResult = s.OnResult and call Flush after the
// sweep returns.
type EventStreamer struct {
	// Replicas, when > 0, emits a cell aggregate after every Replicas
	// consecutive runs.
	Replicas int

	bw   *bufio.Writer
	enc  *json.Encoder
	cell []Result
	err  error
}

// NewEventStreamer streams events to w; replicas > 0 additionally emits
// per-cell aggregates.
func NewEventStreamer(w io.Writer, replicas int) *EventStreamer {
	bw := bufio.NewWriter(w)
	return &EventStreamer{Replicas: replicas, bw: bw, enc: json.NewEncoder(bw)}
}

// OnResult implements the Runner.OnResult signature.
func (s *EventStreamer) OnResult(_ Job, res Result, _ *sim.Result) {
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(runEvent{Event: "run", Result: res}); err != nil {
		s.err = err
		return
	}
	if s.Replicas <= 0 {
		return
	}
	s.cell = append(s.cell, res)
	if len(s.cell) == s.Replicas {
		s.err = s.enc.Encode(cellEvent{Event: "cell", CellStats: aggregateCell(s.cell)})
		s.cell = s.cell[:0]
	}
}

// Flush drains the buffer and reports the first error encountered,
// including a trailing partial cell that never filled (timeout).
func (s *EventStreamer) Flush() error {
	if s.err == nil && len(s.cell) > 0 {
		s.err = fmt.Errorf("sweep: %d trailing runs did not fill a cell of %d", len(s.cell), s.Replicas)
		// The partial cell is dropped, matching the finished-prefix
		// semantics of a timed-out sweep.
	}
	if err := s.bw.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}
