// Package sweep fans a grid of independent simulation runs across a
// bounded worker pool and collects their summaries in grid order.
//
// Determinism is the contract: every run owns an RNG stream derived only
// from the sweep's base seed and the run's index (rng.ForRun), and results
// are emitted in index order, so the output — including the JSON-lines
// encoding — is byte-identical no matter how many workers execute the
// sweep or how the scheduler interleaves them.
//
// Memory stays bounded: the dispatcher never runs more than a small
// window of jobs ahead of the in-order emitter, so at most O(window) full
// time series are alive at once even for sweeps with millions of runs.
package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Desc identifies one run of a sweep: the axis values it was drawn from
// plus its dense index in the grid enumeration. Desc is everything about a
// run that ends up in structured output.
type Desc struct {
	Index   int    `json:"index"`
	Grid    string `json:"grid,omitempty"`
	Network string `json:"network,omitempty"`
	Router  string `json:"router,omitempty"`
	Variant string `json:"variant,omitempty"`
	Replica int    `json:"replica"`
	Seed    uint64 `json:"seed"`
	Horizon int64  `json:"horizon"`
	// Coords are the numeric axis coordinates of the run, reported by
	// axis name — populated for Space-built jobs (axis.go); categorical
	// axes already appear in the named fields above.
	Coords []AxisValue `json:"coords,omitempty"`
}

// Job couples a run descriptor with the factory that builds its engine.
// Build is called with Desc.Seed; like sim.EngineFactory it must return an
// independent engine because jobs execute concurrently.
type Job struct {
	Desc    Desc
	Build   sim.EngineFactory
	Options sim.Options
}

func (j Job) options() sim.Options {
	o := j.Options
	if o.Horizon <= 0 {
		o.Horizon = j.Desc.Horizon
	}
	return o
}

// Result is the bounded-size summary of one completed run. It carries no
// wall-clock fields on purpose: two sweeps over the same jobs must produce
// identical Results at any worker count.
type Result struct {
	Desc
	Verdict   sim.Verdict `json:"verdict"`
	Slope     float64     `json:"slope"`
	RelGrowth float64     `json:"rel_growth"`
	R2        float64     `json:"r2"`
	// MeanBacklog is the trailing-half mean of the recorded backlog
	// series (the same statistic as sim.MeanBacklogs).
	MeanBacklog float64 `json:"mean_backlog"`
	// MaxDelta is the largest one-step potential change; only populated
	// when the job ran with Options.RecordDeltas.
	MaxDelta       float64 `json:"max_delta,omitempty"`
	PeakPotential  int64   `json:"peak_potential"`
	PeakQueued     int64   `json:"peak_queued"`
	PeakMaxQ       int64   `json:"peak_maxq"`
	FinalPotential int64   `json:"final_potential"`
	FinalQueued    int64   `json:"final_queued"`
	Injected       int64   `json:"injected"`
	Sent           int64   `json:"sent"`
	Lost           int64   `json:"lost"`
	Arrived        int64   `json:"arrived"`
	Extracted      int64   `json:"extracted"`
	Collisions     int64   `json:"collisions"`
	Violations     int64   `json:"violations"`
	// Failed marks a run whose Build or engine panicked (after exhausting
	// Runner.Retries). Error holds the panic value and Stack the goroutine
	// stack at the point of the panic. Stack bytes include goroutine ids
	// and addresses, so a sweep containing failures is exempt from the
	// byte-identical-output contract — panic-free sweeps keep it.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
	Stack  string `json:"stack,omitempty"`
	// Recovery fields, populated when the run's engine carried a
	// fault-recovery observer (anything exposing RecoveryReport, e.g.
	// faults.RecoveryObserver): the post-fault verdict ("Recovered",
	// "Degraded", "Indeterminate" — fault window outlived the horizon —
	// or "Unknown"), steps from fault clear until the backlog
	// returned to its pre-fault level (0 = never), and the peak state
	// while faults were active.
	Recovery           string `json:"recovery,omitempty"`
	TimeToDrain        int64  `json:"time_to_drain,omitempty"`
	FaultPeakPotential int64  `json:"fault_peak_potential,omitempty"`
	FaultPeakBacklog   int64  `json:"fault_peak_backlog,omitempty"`
}

// Summarize reduces a full simulation result to its sweep summary.
func Summarize(d Desc, r *sim.Result) Result {
	out := Result{
		Desc:           d,
		Verdict:        r.Diagnosis.Verdict,
		Slope:          r.Diagnosis.Slope,
		RelGrowth:      r.Diagnosis.RelGrowth,
		R2:             r.Diagnosis.R2,
		PeakPotential:  r.Totals.PeakPotential,
		PeakQueued:     r.Totals.PeakQueued,
		PeakMaxQ:       r.Totals.PeakMaxQ,
		FinalPotential: r.Totals.FinalPotential,
		FinalQueued:    r.Totals.FinalQueued,
		Injected:       r.Totals.Injected,
		Sent:           r.Totals.Sent,
		Lost:           r.Totals.Lost,
		Arrived:        r.Totals.Arrived,
		Extracted:      r.Totals.Extracted,
		Collisions:     r.Totals.Collisions,
		Violations:     r.Totals.Violations,
	}
	if q := r.Series.Queued; len(q) > 0 {
		out.MeanBacklog = stats.Mean(q[len(q)/2:])
	}
	if len(r.Series.Deltas) > 0 {
		out.MaxDelta = stats.Max(r.Series.Deltas)
	}
	return out
}

// Progress is a snapshot of a running sweep, delivered after each emitted
// result.
type Progress struct {
	Done    int
	Total   int
	Elapsed time.Duration
	// ETA extrapolates the remaining wall time from the mean rate so far.
	ETA time.Duration
}

// ErrTimeout reports that a sweep hit its Runner.Timeout; Run then returns
// the contiguous prefix of results that finished in time.
var ErrTimeout = errors.New("sweep: timeout")

// Runner executes jobs on a worker pool.
type Runner struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout, when positive, bounds the whole sweep: past the deadline
	// no new jobs are dispatched AND runs already in flight are cancelled
	// mid-run (via sim.RunContext), so even a single enormous run cannot
	// overshoot by more than a cancellation-poll batch. Run then returns
	// the finished prefix and an error wrapping ErrTimeout.
	Timeout time.Duration
	// Window caps how far the dispatcher runs ahead of the in-order
	// emitter (bounding retained full results); <= 0 means 4×Workers.
	Window int
	// Progress, when set, is invoked after every emitted result.
	Progress func(Progress)
	// OnResult, when set, receives each job's summary and full simulation
	// result in index order, before the full result is released. The full
	// result is nil for failed runs and for results replayed from Resume.
	OnResult func(Job, Result, *sim.Result)
	// Retries is how many times a panicking run is re-attempted before it
	// is recorded as Failed. Runs are deterministic, so a logic-bug panic
	// fails every attempt; retries exist for transient environmental
	// failures (memory pressure, runtime limits) during long campaigns.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubled per
	// attempt and capped at RetryBackoffMax (defaults 50ms / 2s). The
	// sleep aborts early when the sweep context is cancelled.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// Journal, when set, receives every emitted result in index order —
	// the checkpoint stream OpenJournalResume can later resume from. The
	// runner does not Close it.
	Journal *Journal
	// Resume is a previously completed result prefix (typically from
	// OpenJournalResume): those jobs are not re-run; their results are
	// re-emitted (with a nil full result) and the pool starts at the
	// first missing index. The prefix must match the job list.
	Resume []Result
}

// item travels from a worker to the emitter.
type item struct {
	idx     int
	res     Result
	full    *sim.Result
	skipped bool // dispatcher gave up on this job (timeout)
}

// Run executes every job and returns one summary per job, in job order.
// With a Timeout it may return a shorter prefix plus ErrTimeout. It is
// RunWithContext with a background context.
func (r *Runner) Run(jobs []Job) ([]Result, error) {
	return r.RunWithContext(context.Background(), jobs)
}

// RunWithContext executes every job and returns one summary per job, in
// job order. Cancelling ctx (or exceeding Runner.Timeout, whichever
// comes first) stops the sweep: no new jobs are dispatched, in-flight
// runs are cancelled mid-run, and the contiguous prefix of results that
// finished in time is returned with a non-nil error — wrapping
// ErrTimeout when the Timeout expired, or ctx's error when the caller
// cancelled.
func (r *Runner) RunWithContext(ctx context.Context, jobs []Job) ([]Result, error) {
	n := len(jobs)
	if n == 0 {
		return nil, nil
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	window := r.Window
	if window <= 0 {
		window = 4 * workers
	}
	if window < workers {
		window = workers
	}

	resumed := len(r.Resume)
	if resumed > n {
		return nil, fmt.Errorf("sweep: resume prefix has %d results but the sweep has %d jobs", resumed, n)
	}
	for i, res := range r.Resume {
		d := jobs[i].Desc
		if res.Index != d.Index || res.Seed != d.Seed || res.Horizon != d.Horizon {
			return nil, fmt.Errorf("sweep: resume result %d (index %d, seed %d) does not match job (index %d, seed %d) — journal from a different sweep?",
				i, res.Index, res.Seed, d.Index, d.Seed)
		}
	}

	start := time.Now()
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}

	results := make([]Result, 0, n)
	for i, res := range r.Resume {
		results = append(results, res)
		if r.OnResult != nil {
			r.OnResult(jobs[i], res, nil)
		}
	}
	if resumed == n {
		return results, nil
	}

	// tokens bounds dispatched-but-not-yet-emitted jobs to the window.
	// The dispatcher acquires them in index order — acquiring inside the
	// workers instead would let the window fill with high-index jobs while
	// the lowest unemitted job still waits for a token: deadlock.
	tokens := make(chan struct{}, window)
	next := make(chan int)
	done := make(chan item, window)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				done <- r.runJob(ctx, i, jobs[i])
			}
		}()
	}
	go func() {
		for i := resumed; i < n; i++ {
			tokens <- struct{}{}
			if ctx.Err() != nil {
				done <- item{idx: i, skipped: true}
				continue
			}
			next <- i
		}
		close(next)
		wg.Wait()
		close(done)
	}()

	// Emit in index order; workers complete out of order, so buffer the
	// gap (at most window items by construction).
	pending := make(map[int]item, window)
	want, timedOut := resumed, false
	var journalErr error
	for it := range done {
		pending[it.idx] = it
		for {
			next, ok := pending[want]
			if !ok {
				break
			}
			delete(pending, want)
			<-tokens
			want++
			if next.skipped {
				timedOut = true
			}
			if timedOut {
				continue // drain, but keep only the finished prefix
			}
			results = append(results, next.res)
			if r.Journal != nil && journalErr == nil {
				journalErr = r.Journal.Append(next.res)
			}
			if r.OnResult != nil {
				r.OnResult(jobs[next.idx], next.res, next.full)
			}
			if r.Progress != nil {
				elapsed := time.Since(start)
				perRun := elapsed / time.Duration(len(results)-resumed)
				r.Progress(Progress{Done: len(results), Total: n, Elapsed: elapsed,
					ETA: perRun * time.Duration(n-len(results))})
			}
		}
	}
	if timedOut {
		if err := ctx.Err(); errors.Is(err, context.Canceled) {
			return results, fmt.Errorf("sweep: cancelled (%d/%d runs): %w", len(results), n, err)
		}
		return results, fmt.Errorf("%w after %v (%d/%d runs)", ErrTimeout, r.Timeout, len(results), n)
	}
	if journalErr != nil {
		return results, fmt.Errorf("sweep: journal write: %w", journalErr)
	}
	return results, nil
}

// runFailure captures a panic from a run attempt.
type runFailure struct {
	msg   string
	stack string
}

// runJob executes one job with panic isolation and the retry policy: a
// panicking attempt (in Build or anywhere inside the engine step loop) is
// retried up to Retries times with doubling capped backoff, then recorded
// as a Failed result carrying the panic value and stack — the sweep
// itself never dies with a run.
func (r *Runner) runJob(ctx context.Context, idx int, j Job) item {
	it, fail := r.runOnce(ctx, j)
	backoff := r.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	maxBackoff := r.RetryBackoffMax
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	for attempt := 0; fail != nil && attempt < r.Retries && ctx.Err() == nil; attempt++ {
		sleepCtx(ctx, backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		it, fail = r.runOnce(ctx, j)
	}
	it.idx = idx
	if fail != nil {
		it = item{idx: idx, res: Result{Desc: j.Desc, Failed: true, Error: fail.msg, Stack: fail.stack}}
	}
	return it
}

// runOnce is a single attempt: build, run, summarize, harvest recovery.
func (r *Runner) runOnce(ctx context.Context, j Job) (it item, fail *runFailure) {
	defer func() {
		if p := recover(); p != nil {
			fail = &runFailure{msg: fmt.Sprint(p), stack: string(debug.Stack())}
		}
	}()
	opts := j.options()
	eng := j.Build(j.Desc.Seed)
	full := sim.RunContext(ctx, eng, opts)
	if full.Totals.Steps < opts.Horizon {
		// Cancelled mid-run: a partial series would break the
		// determinism contract, so the job counts as skipped.
		it.skipped = true
		return it, nil
	}
	it.res = Summarize(j.Desc, full)
	harvestRecovery(&it.res, eng)
	if r.OnResult != nil {
		it.full = full
	}
	return it, nil
}

// recoveryReporter is the structural interface a fault-recovery observer
// (faults.RecoveryObserver) satisfies; matching structurally keeps sweep
// free of a faults dependency.
type recoveryReporter interface {
	RecoveryReport() (verdict string, timeToDrain, peakPotential, peakBacklog int64)
}

// harvestRecovery copies the recovery report of the engine's observer (if
// any) into the result. With several reporters the last registered wins.
func harvestRecovery(res *Result, eng *core.Engine) {
	for _, o := range eng.Observers() {
		if rr, ok := o.(recoveryReporter); ok {
			res.Recovery, res.TimeToDrain, res.FaultPeakPotential, res.FaultPeakBacklog = rr.RecoveryReport()
		}
	}
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// NewReporter returns a Progress callback that writes one status line to w
// at most once per interval, and always for the final result. Pass it to
// Runner.Progress.
func NewReporter(w io.Writer, interval time.Duration) func(Progress) {
	if interval <= 0 {
		interval = time.Second
	}
	var last time.Time
	return func(p Progress) {
		now := time.Now()
		if p.Done < p.Total && now.Sub(last) < interval {
			return
		}
		last = now
		fmt.Fprintf(w, "sweep: %d/%d runs (%.1f%%) elapsed %s eta %s\n",
			p.Done, p.Total, 100*float64(p.Done)/float64(p.Total),
			p.Elapsed.Round(time.Millisecond), p.ETA.Round(time.Millisecond))
	}
}

// WriteJSONL encodes results as JSON lines. For a fixed job list the bytes
// are identical at any worker count (the determinism contract).
func WriteJSONL(w io.Writer, rs []Result) error {
	enc := json.NewEncoder(w)
	for i := range rs {
		if err := enc.Encode(&rs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Cells slices an ordered result list into contiguous cells of k replicas
// each — the inverse of enumerating a grid cell-by-cell with k seeds. It
// returns an error (never panics) when k is not positive or the results
// do not divide evenly — the normal aftermath of a timed-out sweep whose
// finished prefix stops mid-cell. Callers that want the complete cells of
// such a prefix can trim to len(rs)-len(rs)%k first.
func Cells(rs []Result, k int) ([][]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sweep: Cells needs a positive replica count (got %d)", k)
	}
	if len(rs)%k != 0 {
		return nil, fmt.Errorf("sweep: %d results do not divide into cells of %d replicas (partial prefix? trim %d trailing runs)",
			len(rs), k, len(rs)%k)
	}
	out := make([][]Result, 0, len(rs)/k)
	for i := 0; i < len(rs); i += k {
		out = append(out, rs[i:i+k])
	}
	return out, nil
}

// StableShare returns the fraction of results judged stable. An empty
// list yields 0 by definition (no evidence of stability), not an error.
func StableShare(rs []Result) float64 {
	if len(rs) == 0 {
		return 0
	}
	c := 0
	for _, r := range rs {
		if r.Verdict == sim.Stable {
			c++
		}
	}
	return float64(c) / float64(len(rs))
}

// MeanBacklog averages the per-run trailing-half mean backlog. An empty
// list yields 0 by definition, not an error.
func MeanBacklog(rs []Result) float64 {
	if len(rs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		sum += r.MeanBacklog
	}
	return sum / float64(len(rs))
}

// PeakPotential returns the largest peak network state across results.
func PeakPotential(rs []Result) int64 {
	var peak int64
	for _, r := range rs {
		if r.PeakPotential > peak {
			peak = r.PeakPotential
		}
	}
	return peak
}

// WorstVerdict returns the most pessimistic verdict present: diverging
// beats inconclusive beats stable.
func WorstVerdict(rs []Result) sim.Verdict {
	worst := sim.Stable
	for _, r := range rs {
		switch r.Verdict {
		case sim.Diverging:
			return sim.Diverging
		case sim.Inconclusive:
			worst = sim.Inconclusive
		}
	}
	return worst
}
