package sweep

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
)

// The journal is the sweep's crash checkpoint: a JSONL file holding one
// header line identifying the sweep followed by one Result line per
// emitted run. Because the runner emits strictly in index order, the
// journal is always a contiguous prefix of the sweep — whatever is on
// disk after a crash, kill or timeout is exactly the work that does not
// need redoing. OpenJournalResume tolerates a torn tail (a partial last
// line from a crash mid-write): it truncates back to the last complete
// line and resumes from there.

// journalVersion is the format tag in the header line.
const journalVersion = "v1"

// AdaptiveJobs is the job-count sentinel for adaptive sweeps: the total
// run count of a frontier refinement is not known up front, so its
// journal header records -1 and resume reads every valid line instead of
// stopping at a fixed count. Pass it to CreateJournal/OpenJournalResume
// when the journal feeds RunFrontier.
const AdaptiveJobs = -1

// journalHeader is the first line of a journal file.
type journalHeader struct {
	Journal string `json:"journal"`
	Jobs    int    `json:"jobs"`
}

// Journal appends sweep results to a checkpoint stream. Wire it into
// Runner.Journal; the runner appends in index order, the owner Closes it
// after the sweep.
type Journal struct {
	f   *os.File // nil for NewJournal streams (no Sync on Close)
	enc *json.Encoder
}

// NewJournal writes a journal to an arbitrary stream (a pipe, a network
// connection, a failing-disk test double) and emits the header line.
// Stream journals cannot be resumed with OpenJournalResume — that needs
// a seekable file — but they carry the identical bytes.
func NewJournal(w io.Writer, jobs int) (*Journal, error) {
	j := &Journal{enc: json.NewEncoder(w)}
	if err := j.enc.Encode(journalHeader{Journal: journalVersion, Jobs: jobs}); err != nil {
		return nil, fmt.Errorf("sweep: journal header: %w", err)
	}
	return j, nil
}

// CreateJournal creates (or truncates) a journal for a sweep of jobs runs
// and writes the header line.
func CreateJournal(path string, jobs int) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: journal: %w", err)
	}
	j, err := NewJournal(f, jobs)
	if err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	return j, nil
}

// Append writes one result line. Each call issues a single Write of a
// full line, so a crash can tear at most the line being written — which
// OpenJournalResume discards. A write error (disk full, revoked
// permissions) is returned to the caller; the Runner surfaces it after
// the sweep without discarding the computed results.
func (j *Journal) Append(res Result) error {
	return j.enc.Encode(&res)
}

// Close syncs and closes the underlying file, if any.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// OpenJournalResume opens path for a sweep of jobs runs and returns the
// journal positioned for appending plus the valid result prefix already
// on disk (pass it to Runner.Resume). Semantics:
//
//   - missing or empty file: a fresh journal, empty prefix;
//   - header present but for a different job count or not a journal:
//     an error (refusing to clobber what may be someone else's file);
//   - results readable up to a torn, malformed or Failed line: the file
//     is truncated back to the last good line and the prefix before it
//     is returned — failed runs are re-attempted on resume.
func OpenJournalResume(path string, jobs int) (*Journal, []Result, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, fs.ErrNotExist) {
		j, err := CreateJournal(path, jobs)
		return j, nil, err
	}
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: journal: %w", err)
	}
	br := bufio.NewReader(f)
	head, err := br.ReadBytes('\n')
	if err != nil {
		// No complete header line: an empty or torn-at-birth file we can
		// safely claim as a fresh journal.
		f.Close()
		j, err := CreateJournal(path, jobs)
		return j, nil, err
	}
	var hdr journalHeader
	if json.Unmarshal(head, &hdr) != nil || hdr.Journal != journalVersion {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: %s is not a %s sweep journal", path, journalVersion)
	}
	if hdr.Jobs != jobs {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: journal %s records a sweep of %d jobs, this sweep has %d", path, hdr.Jobs, jobs)
	}
	offset := int64(len(head))
	var resume []Result
	for jobs < 0 || len(resume) < jobs {
		line, err := br.ReadBytes('\n')
		if err != nil {
			break // EOF or torn tail: everything before it stands
		}
		var res Result
		if json.Unmarshal(line, &res) != nil {
			break // malformed line: truncate it and everything after
		}
		if res.Failed {
			break // failed runs are re-attempted on resume
		}
		resume = append(resume, res)
		offset += int64(len(line))
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: journal truncate: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: journal seek: %w", err)
	}
	return &Journal{f: f, enc: json.NewEncoder(f)}, resume, nil
}

// ReadJournalResults returns the valid result prefix recorded in a
// journal file without opening it for writing: the read-only half of
// OpenJournalResume (same header validation and torn-tail tolerance, no
// truncation). Unlike resume, Failed lines are kept — a finished sweep
// legitimately records its failed runs. jobs <= 0 skips the job-count
// check. Daemons use it to serve the results of a completed job straight
// from its journal.
func ReadJournalResults(path string, jobs int) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: journal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("sweep: %s has no journal header", path)
	}
	var hdr journalHeader
	if json.Unmarshal(head, &hdr) != nil || hdr.Journal != journalVersion {
		return nil, fmt.Errorf("sweep: %s is not a %s sweep journal", path, journalVersion)
	}
	if jobs > 0 && hdr.Jobs != jobs {
		return nil, fmt.Errorf("sweep: journal %s records a sweep of %d jobs, expected %d", path, hdr.Jobs, jobs)
	}
	var rs []Result
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return rs, nil // EOF or torn tail: everything before it stands
		}
		var res Result
		if json.Unmarshal(line, &res) != nil {
			return rs, nil
		}
		rs = append(rs, res)
	}
}
