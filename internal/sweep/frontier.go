package sweep

import (
	"encoding/json"
	"io"

	"repro/internal/sim"
	"repro/internal/stats"
)

// FrontierMetric selects the per-run success predicate whose share the
// adaptive driver thresholds.
type FrontierMetric int

const (
	// MetricStable counts runs whose verdict is Stable — the Theorem 1
	// stability frontier.
	MetricStable FrontierMetric = iota
	// MetricRecovered counts runs whose fault-recovery verdict is
	// "Recovered" — the Conjecture 4 recovery frontier of faulted sweeps.
	MetricRecovered
)

// String names the metric for output and error messages.
func (m FrontierMetric) String() string {
	switch m {
	case MetricRecovered:
		return "recovered"
	default:
		return "stable"
	}
}

// success reports whether one run counts toward the metric share. Failed
// (panicked) runs never count — a crash is evidence against stability,
// not missing data, and treating it as such keeps the refinement
// deterministic even in the presence of failures.
func (m FrontierMetric) success(r Result) bool {
	if r.Failed {
		return false
	}
	switch m {
	case MetricRecovered:
		return r.Recovery == "Recovered"
	default:
		return r.Verdict == sim.Stable
	}
}

// FrontierConfig tunes one adaptive frontier search.
type FrontierConfig struct {
	// Axis names the numeric search axis of the space.
	Axis string
	// Tol is the absolute bracket-width tolerance the bisection refines
	// to; <= 0 defaults to 1/100 of the axis range.
	Tol float64
	// Threshold is the metric share the frontier crosses (default 0.5).
	Threshold float64
	// MinSeeds is the first replica batch per probed coordinate (default
	// 4 — the smallest n at which a unanimous Wilson interval at z=1.96
	// clears a 0.5 threshold, so deterministic cells settle in one batch).
	MinSeeds int
	// MaxSeeds caps the replicas per probe; an undecided probe is forced
	// to a side at the cap (default 4×MinSeeds). Batches grow by doubling
	// — the successive-halving budget schedule inverted: instead of
	// halving the surviving arms, the lone surviving probe doubles its
	// budget until its interval clears the threshold.
	MaxSeeds int
	// Z is the Wilson normal quantile (default 1.96, ~95%).
	Z float64
	// Hoeffding switches the early-stopping interval from Wilson to the
	// distribution-free Hoeffding bound at significance Alpha.
	Hoeffding bool
	// Alpha is the Hoeffding significance (default 0.05).
	Alpha float64
	// Metric is the thresholded share (default MetricStable).
	Metric FrontierMetric
}

// withDefaults resolves the zero values against the axis bounds.
func (c FrontierConfig) withDefaults(lo, hi float64) FrontierConfig {
	if c.Tol <= 0 {
		c.Tol = (hi - lo) / 100
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.MinSeeds <= 0 {
		c.MinSeeds = 4
	}
	if c.MaxSeeds <= 0 {
		c.MaxSeeds = 4 * c.MinSeeds
	}
	if c.MaxSeeds < c.MinSeeds {
		c.MaxSeeds = c.MinSeeds
	}
	if c.Z <= 0 {
		c.Z = 1.96
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.05
	}
	return c
}

// interval returns the configured confidence interval for k successes in
// n runs.
func (c FrontierConfig) interval(k, n int) (lo, hi float64) {
	if c.Hoeffding {
		return stats.HoeffdingInterval(k, n, c.Alpha)
	}
	return stats.WilsonInterval(k, n, c.Z)
}

// FrontierResult is the per-group outcome of a frontier search: the
// critical coordinate bracketed to tolerance, the metric shares and
// confidence intervals at the final bracket edges, and the probe budget
// spent.
type FrontierResult struct {
	Grid string `json:"grid,omitempty"`
	// Axis/Unit identify the search axis.
	Axis string `json:"axis"`
	Unit string `json:"unit,omitempty"`
	// Coords pins the group: one value per non-search axis.
	Coords []AxisValue `json:"coords,omitempty"`
	// Found reports whether the endpoints straddled the threshold. When
	// false, Side says where the whole axis sits: "above" (the metric
	// share clears the threshold everywhere) or "below".
	Found bool   `json:"found"`
	Side  string `json:"side,omitempty"`
	// Critical is the bracket midpoint once BracketHi−BracketLo ≤ Tol.
	Critical float64 `json:"critical,omitempty"`
	// BracketLo/Hi is the final bracket (the full axis range when the
	// frontier was not found).
	BracketLo float64 `json:"bracket_lo"`
	BracketHi float64 `json:"bracket_hi"`
	// ShareAtLo/Hi are the observed metric shares at the bracket edges,
	// with their confidence intervals.
	ShareAtLo float64    `json:"share_at_lo"`
	CIAtLo    [2]float64 `json:"ci_at_lo"`
	ShareAtHi float64    `json:"share_at_hi"`
	CIAtHi    [2]float64 `json:"ci_at_hi"`
	// Probes is the number of distinct coordinates probed; Runs the total
	// simulation runs spent on this group.
	Probes int `json:"probes"`
	Runs   int `json:"runs"`
}

// FrontierReport is the full outcome of RunFrontier: one FrontierResult
// per group (in group enumeration order), every probe run's summary (in
// emission order — the byte-stable probe stream), and the total budget.
type FrontierReport struct {
	Results   []FrontierResult
	Probes    []Result
	TotalRuns int
}

// WriteFrontierJSONL encodes frontier results as JSON lines, byte-stably.
func WriteFrontierJSONL(w io.Writer, frs []FrontierResult) error {
	enc := json.NewEncoder(w)
	for i := range frs {
		if err := enc.Encode(&frs[i]); err != nil {
			return err
		}
	}
	return nil
}

// probeStat accumulates the replicas of one probed coordinate.
type probeStat struct {
	x       float64
	n, k    int  // runs, metric successes
	settled bool // interval decisively on one side, or MaxSeeds reached
	above   bool // settled side: share ≥ threshold
}

// share is the observed success fraction.
func (p *probeStat) share() float64 {
	if p.n == 0 {
		return 0
	}
	return float64(p.k) / float64(p.n)
}

// observe folds a batch of results into the stat and re-evaluates the
// early-stopping rule: settle as soon as the confidence interval excludes
// the threshold, or force a side at the replica cap.
func (p *probeStat) observe(cfg FrontierConfig, batch []Result) {
	for _, r := range batch {
		p.n++
		if cfg.Metric.success(r) {
			p.k++
		}
	}
	lo, hi := cfg.interval(p.k, p.n)
	switch {
	case lo > cfg.Threshold:
		p.settled, p.above = true, true
	case hi < cfg.Threshold:
		p.settled, p.above = true, false
	case p.n >= cfg.MaxSeeds:
		p.settled, p.above = true, p.share() >= cfg.Threshold
	}
}

// nextBatch is the size of the next replica batch: MinSeeds to start,
// then doubling (add n more) up to the cap. Returns 0 once settled.
func (p *probeStat) nextBatch(cfg FrontierConfig) int {
	if p.settled {
		return 0
	}
	b := cfg.MinSeeds
	if p.n > 0 {
		b = p.n
	}
	if p.n+b > cfg.MaxSeeds {
		b = cfg.MaxSeeds - p.n
	}
	return b
}

// Group search phases.
const (
	phaseLo = iota // settling the lower axis endpoint
	phaseHi        // settling the upper axis endpoint
	phaseBisect
	phaseDone
)

// groupState is the bisection state machine of one cell group.
type groupState struct {
	group Point // non-search-axis coordinates
	phase int
	cur   *probeStat // probe being settled
	lo    *probeStat // bracket edges (phase >= phaseBisect)
	hi    *probeStat
	end0  *probeStat // the settled axis endpoints
	end1  *probeStat
	res   FrontierResult
}

// advance moves the state machine forward after cur settled, returning
// once it needs fresh runs (cur unsettled) or is done.
func (g *groupState) advance(cfg FrontierConfig, axisLo, axisHi float64) {
	for g.phase != phaseDone && g.cur.settled {
		switch g.phase {
		case phaseLo:
			g.end0 = g.cur
			g.phase = phaseHi
			g.res.Probes++
			g.cur = &probeStat{x: axisHi}
		case phaseHi:
			g.end1 = g.cur
			if g.end0.above == g.end1.above {
				g.res.Found = false
				if g.end0.above {
					g.res.Side = "above"
				} else {
					g.res.Side = "below"
				}
				g.lo, g.hi = g.end0, g.end1
				g.finish(cfg)
				return
			}
			g.lo, g.hi = g.end0, g.end1
			g.phase = phaseBisect
			g.cur = g.bisectOrFinish(cfg)
		case phaseBisect:
			if g.cur.above == g.lo.above {
				g.lo = g.cur
			} else {
				g.hi = g.cur
			}
			g.cur = g.bisectOrFinish(cfg)
		}
	}
}

// bisectOrFinish either emits the next midpoint probe or, when the
// bracket is within tolerance, closes the group with the frontier found.
func (g *groupState) bisectOrFinish(cfg FrontierConfig) *probeStat {
	if g.hi.x-g.lo.x <= cfg.Tol {
		g.res.Found = true
		g.res.Critical = (g.lo.x + g.hi.x) / 2
		g.finish(cfg)
		return g.cur
	}
	g.res.Probes++
	return &probeStat{x: (g.lo.x + g.hi.x) / 2}
}

// finish freezes the bracket-edge statistics into the result.
func (g *groupState) finish(cfg FrontierConfig) {
	g.phase = phaseDone
	g.res.BracketLo, g.res.BracketHi = g.lo.x, g.hi.x
	g.res.ShareAtLo = g.lo.share()
	g.res.CIAtLo[0], g.res.CIAtLo[1] = cfg.interval(g.lo.k, g.lo.n)
	g.res.ShareAtHi = g.hi.share()
	g.res.CIAtHi[0], g.res.CIAtHi[1] = cfg.interval(g.hi.k, g.hi.n)
}
