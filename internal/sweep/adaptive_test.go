package sweep

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/graph"
)

// Rigged frontier coordinates of frontierTestSpace: the "sharp" group
// flips verdict crisply at sharpCrit; the "fuzzy" group flips at
// fuzzyCrit but inside (fuzzyLo, fuzzyHi) only even replicas are stable
// (share exactly 1/2), so its probes there cannot settle by confidence
// interval and must escalate to the replica cap.
const (
	sharpCrit = 0.37
	fuzzyCrit = 0.62
	fuzzyLo   = 0.55
	fuzzyHi   = 0.70
)

// frontierTestSpace rigs engine stability as a known function of the
// continuous rho axis, so the bisection's answer can be checked exactly:
// a run is "stable" when it gets the unloaded line, "diverging" when its
// arrivals are tripled past capacity.
func frontierTestSpace() *Space {
	spec := core.NewSpec(graph.Line(4)).SetSource(0, 1).SetSink(3, 1)
	stable := func(group string, x float64, replica int) bool {
		switch group {
		case "sharp":
			return x <= sharpCrit
		default:
			if x > fuzzyLo && x < fuzzyHi {
				return replica%2 == 0
			}
			return x <= fuzzyCrit
		}
	}
	return &Space{
		Name:     "rigged-frontier",
		BaseSeed: 11,
		Horizon:  200,
		Axes: []Axis{
			{Name: "network", Labels: []string{"sharp", "fuzzy"}},
			{Name: "rho", Unit: "×f*", Min: 0, Max: 1},
		},
		Build: func(p Probe) *core.Engine {
			group, _ := p.Point.Label("network")
			x, _ := p.Point.Value("rho")
			e := core.NewEngine(spec, core.NewLGG())
			if !stable(group, x, p.Replica) {
				e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: 3, Den: 1}
			}
			return e
		},
	}
}

func runRigged(t *testing.T, workers int, base *Runner) *FrontierReport {
	t.Helper()
	if base == nil {
		base = &Runner{}
	}
	base.Workers = workers
	rep, err := RunFrontier(t.Context(), frontierTestSpace(), FrontierConfig{Axis: "rho", Tol: 0.02}, base)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFrontierConvergesToRiggedCritical(t *testing.T) {
	rep := runRigged(t, 4, nil)
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want one per network group", len(rep.Results))
	}
	sharp, fuzzy := rep.Results[0], rep.Results[1]
	if sharp.Coords[0].Label != "sharp" || fuzzy.Coords[0].Label != "fuzzy" {
		t.Fatalf("group order: %+v / %+v", sharp.Coords, fuzzy.Coords)
	}
	if !sharp.Found || math.Abs(sharp.Critical-sharpCrit) > 0.02 {
		t.Fatalf("sharp frontier at %g (found=%v), want %g ± 0.02", sharp.Critical, sharp.Found, sharpCrit)
	}
	// Inside the fuzzy window forced probes land on the stable side
	// (share 1/2 meets the 0.5 threshold), so the observable flip is at
	// the window's upper edge.
	if !fuzzy.Found || math.Abs(fuzzy.Critical-fuzzyHi) > 0.02 {
		t.Fatalf("fuzzy frontier at %g (found=%v), want %g ± 0.02", fuzzy.Critical, fuzzy.Found, fuzzyHi)
	}
	if sharp.BracketHi-sharp.BracketLo > 0.02 || fuzzy.BracketHi-fuzzy.BracketLo > 0.02 {
		t.Fatalf("brackets wider than tolerance: %+v %+v", sharp, fuzzy)
	}
	// The crisp group settles every probe in the minimum batch; the fuzzy
	// group's window probes must have escalated past it.
	if sharp.Runs != 4*sharp.Probes {
		t.Fatalf("sharp spent %d runs on %d probes, want MinSeeds each", sharp.Runs, sharp.Probes)
	}
	if fuzzy.Runs <= 4*fuzzy.Probes {
		t.Fatalf("fuzzy never escalated past MinSeeds: %d runs on %d probes", fuzzy.Runs, fuzzy.Probes)
	}
	if rep.TotalRuns != len(rep.Probes) || rep.TotalRuns != sharp.Runs+fuzzy.Runs {
		t.Fatalf("run accounting: total %d, probes %d, groups %d", rep.TotalRuns, len(rep.Probes), sharp.Runs+fuzzy.Runs)
	}
	// Budget sanity: exhaustively scanning rho at the same resolution
	// would cost 50 coordinates × MaxSeeds replicas per group.
	if exhaustive := 2 * 50 * 4; rep.TotalRuns > exhaustive/2 {
		t.Fatalf("adaptive spent %d runs, exhaustive equivalent is %d", rep.TotalRuns, exhaustive)
	}
	// Confidence intervals at the bracket edges are populated and ordered.
	for _, fr := range rep.Results {
		if fr.CIAtLo[0] > fr.ShareAtLo || fr.CIAtLo[1] < fr.ShareAtLo ||
			fr.CIAtHi[0] > fr.ShareAtHi || fr.CIAtHi[1] < fr.ShareAtHi {
			t.Fatalf("bracket CI does not contain its share: %+v", fr)
		}
	}
}

// TestFrontierNotFound pins the endpoint-agreement path: an axis range
// entirely on one side reports Found=false with the side.
func TestFrontierNotFound(t *testing.T) {
	s := frontierTestSpace()
	s.Axes[1] = Axis{Name: "rho", Min: 0.75, Max: 1} // above both criticals
	rep, err := RunFrontier(t.Context(), s, FrontierConfig{Axis: "rho", Tol: 0.02}, &Runner{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range rep.Results {
		if fr.Found || fr.Side != "below" {
			t.Fatalf("want not-found below, got %+v", fr)
		}
		if fr.Probes != 2 || fr.BracketLo != 0.75 || fr.BracketHi != 1 {
			t.Fatalf("not-found group should spend exactly the two endpoints: %+v", fr)
		}
	}
}

func TestFrontierConfigErrors(t *testing.T) {
	s := frontierTestSpace()
	if _, err := RunFrontier(t.Context(), s, FrontierConfig{Axis: "zeta"}, nil); err == nil || !strings.Contains(err.Error(), "no axis") {
		t.Fatalf("unknown axis: %v", err)
	}
	if _, err := RunFrontier(t.Context(), s, FrontierConfig{Axis: "network"}, nil); err == nil || !strings.Contains(err.Error(), "categorical") {
		t.Fatalf("categorical search axis: %v", err)
	}
}

// frontierBytes flattens a report into its two byte-stable streams.
func frontierBytes(t *testing.T, rep *FrontierReport) (results, probes string) {
	t.Helper()
	var rbuf, pbuf bytes.Buffer
	if err := WriteFrontierJSONL(&rbuf, rep.Results); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&pbuf, rep.Probes); err != nil {
		t.Fatal(err)
	}
	return rbuf.String(), pbuf.String()
}

// TestFrontierDeterminismAcrossWorkerCounts is the adaptive contract:
// both output streams are byte-identical at any worker count.
func TestFrontierDeterminismAcrossWorkerCounts(t *testing.T) {
	r1, p1 := frontierBytes(t, runRigged(t, 1, nil))
	r8, p8 := frontierBytes(t, runRigged(t, 8, nil))
	if r1 != r8 {
		t.Fatal("8-worker frontier results differ from 1-worker results")
	}
	if p1 != p8 {
		t.Fatal("8-worker probe stream differs from 1-worker stream")
	}
}

// TestFrontierResumeFromTornJournal crash-recovers a refinement: journal
// a full run, tear the journal mid-bisection (partial trailing line),
// resume at both 1 and 8 workers, and demand byte-identical outputs and
// a byte-identical healed journal.
func TestFrontierResumeFromTornJournal(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.jsonl")
	j, err := CreateJournal(ref, AdaptiveJobs)
	if err != nil {
		t.Fatal(err)
	}
	full := runRigged(t, 4, &Runner{Journal: j})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	wantResults, wantProbes := frontierBytes(t, full)
	refBytes, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(refBytes, []byte("\n"))
	if len(lines) < 20 {
		t.Fatalf("reference journal too short to tear: %d lines", len(lines))
	}

	for _, workers := range []int{1, 8} {
		// Keep the header plus a mid-bisection prefix, then tear the tail.
		cut := len(lines) / 2
		torn := append([]byte{}, bytes.Join(lines[:cut], nil)...)
		torn = append(torn, []byte(`{"index":`)...) // partial line from a crash
		path := filepath.Join(dir, "resume.jsonl")
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}

		j2, resume, err := OpenJournalResume(path, AdaptiveJobs)
		if err != nil {
			t.Fatal(err)
		}
		if len(resume) != cut-1 {
			t.Fatalf("resume prefix has %d results, want %d", len(resume), cut-1)
		}
		rep := runRigged(t, workers, &Runner{Journal: j2, Resume: resume})
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		gotResults, gotProbes := frontierBytes(t, rep)
		if gotResults != wantResults {
			t.Fatalf("workers=%d: resumed frontier results differ from the uninterrupted run", workers)
		}
		if gotProbes != wantProbes {
			t.Fatalf("workers=%d: resumed probe stream differs from the uninterrupted run", workers)
		}
		healed, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(healed, refBytes) {
			t.Fatalf("workers=%d: healed journal differs from the reference journal", workers)
		}
	}
}

// TestFrontierResumeRejectsForeignJournal: a journal longer than the
// refinement (a different sweep's leftovers) is an error, not silence.
func TestFrontierResumeRejectsForeignJournal(t *testing.T) {
	full := runRigged(t, 2, nil)
	extra := append(append([]Result(nil), full.Probes...), Result{Desc: Desc{Index: len(full.Probes)}})
	_, err := RunFrontier(t.Context(), frontierTestSpace(), FrontierConfig{Axis: "rho", Tol: 0.02},
		&Runner{Workers: 2, Resume: extra})
	if err == nil || !strings.Contains(err.Error(), "beyond the adaptive refinement") {
		t.Fatalf("oversized resume prefix: %v", err)
	}
}
