package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/loss"
	"repro/internal/rng"
	"repro/internal/sim"
)

// testGrid exercises every randomized axis (arrivals thinning, losses,
// random-tie routing) so a determinism regression cannot hide behind a
// deterministic workload.
func testGrid(replicas int, horizon int64) *Grid {
	return &Grid{
		Name:     "test",
		BaseSeed: 1,
		Replicas: replicas,
		Horizon:  horizon,
		Networks: []Network{
			{"line(5)", func() *core.Spec {
				return core.NewSpec(graph.Line(5)).SetSource(0, 1).SetSink(4, 1)
			}},
			{"theta(3,2)", func() *core.Spec {
				return core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
			}},
		},
		Routers: []RouterAxis{
			{"lgg", func(*core.Spec, *rng.Source) core.Router { return core.NewLGG() }},
			{"lgg-random-ties", func(_ *core.Spec, r *rng.Source) core.Router {
				return core.NewLGGRandomTies(r)
			}},
		},
		Variants: []Variant{
			{"exact", nil},
			{"thinned+lossy", func(e *core.Engine, r *rng.Source) {
				e.Arrivals = &arrivals.Thinned{P: 0.8, R: r.Split(1)}
				e.Loss = &loss.Bernoulli{P: 0.2, R: r.Split(2)}
			}},
		},
	}
}

func TestGridEnumeration(t *testing.T) {
	g := testGrid(3, 100)
	jobs := g.Jobs()
	if len(jobs) != 2*2*2*3 {
		t.Fatalf("grid enumerated %d jobs, want 24", len(jobs))
	}
	for i, j := range jobs {
		if j.Desc.Index != i {
			t.Fatalf("job %d carries index %d", i, j.Desc.Index)
		}
		if j.Desc.Horizon != 100 || j.Desc.Grid != "test" {
			t.Fatalf("job %d descriptor incomplete: %+v", i, j.Desc)
		}
	}
	// Replicas of a cell must stay contiguous so Cells() applies.
	if jobs[0].Desc.Variant != jobs[2].Desc.Variant || jobs[0].Desc.Replica != 0 || jobs[2].Desc.Replica != 2 {
		t.Fatalf("replicas not contiguous: %+v %+v", jobs[0].Desc, jobs[2].Desc)
	}
}

// TestDeterminismAcrossWorkerCounts is the sweep contract: the same grid
// run with 1 worker and with 8 workers produces byte-identical JSON lines.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	jobs := testGrid(2, 300).Jobs()
	encode := func(workers int) string {
		r := &Runner{Workers: workers}
		rs, err := r.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, rs); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := encode(1)
	if parallel := encode(8); parallel != serial {
		t.Fatal("8-worker JSONL differs from 1-worker JSONL")
	}
	if lines := strings.Count(serial, "\n"); lines != len(jobs) {
		t.Fatalf("JSONL has %d lines, want %d", lines, len(jobs))
	}
	// And the lines decode back to the verdict strings, not raw ints.
	var first map[string]any
	if err := json.Unmarshal([]byte(serial[:strings.Index(serial, "\n")]), &first); err != nil {
		t.Fatal(err)
	}
	if _, ok := first["verdict"].(string); !ok {
		t.Fatalf("verdict not encoded as text: %v", first["verdict"])
	}
}

func TestRunnerOrderAndOnResult(t *testing.T) {
	jobs := testGrid(2, 120).Jobs()
	var seen []int
	r := &Runner{Workers: 4, Window: 5, OnResult: func(j Job, res Result, full *sim.Result) {
		if full == nil || full.Totals.Steps != 120 {
			t.Errorf("job %d: full result missing or truncated", j.Desc.Index)
		}
		if res.Index != j.Desc.Index {
			t.Errorf("summary index %d for job %d", res.Index, j.Desc.Index)
		}
		seen = append(seen, j.Desc.Index)
	}}
	rs, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(jobs) || len(seen) != len(jobs) {
		t.Fatalf("got %d results, %d callbacks, want %d", len(rs), len(seen), len(jobs))
	}
	for i := range seen {
		if seen[i] != i || rs[i].Index != i {
			t.Fatalf("results not in job order at %d: callback=%d result=%d", i, seen[i], rs[i].Index)
		}
	}
}

func TestRunnerTimeout(t *testing.T) {
	// Long-horizon jobs with a tiny deadline: the runner must stop
	// dispatching, return a clean prefix and wrap ErrTimeout.
	jobs := testGrid(4, 200_000).Jobs()
	r := &Runner{Workers: 2, Timeout: time.Millisecond}
	rs, err := r.Run(jobs)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if len(rs) >= len(jobs) {
		t.Fatalf("timeout sweep completed all %d jobs", len(rs))
	}
	for i, res := range rs {
		if res.Index != i {
			t.Fatalf("partial results not a contiguous prefix at %d", i)
		}
	}
}

func TestRunnerEmpty(t *testing.T) {
	rs, err := (&Runner{}).Run(nil)
	if err != nil || rs != nil {
		t.Fatalf("empty run: %v %v", rs, err)
	}
}

func TestSummarizeMatchesSim(t *testing.T) {
	build := func(seed uint64) *core.Engine {
		e := core.NewEngine(core.NewSpec(graph.Line(4)).SetSource(0, 1).SetSink(3, 1), core.NewLGG())
		e.Loss = &loss.Bernoulli{P: 0.1, R: rng.New(seed)}
		return e
	}
	full := sim.Run(build(5), sim.Options{Horizon: 250, RecordDeltas: true})
	res := Summarize(Desc{Seed: 5}, full)
	if res.Verdict != full.Diagnosis.Verdict || res.Slope != full.Diagnosis.Slope {
		t.Fatalf("diagnosis mismatch: %+v vs %+v", res, full.Diagnosis)
	}
	if res.PeakPotential != full.Totals.PeakPotential || res.Lost != full.Totals.Lost {
		t.Fatalf("totals mismatch: %+v vs %+v", res, full.Totals)
	}
	if res.MaxDelta == 0 {
		t.Fatal("MaxDelta not populated despite RecordDeltas")
	}
	q := full.Series.Queued
	var mean float64
	for _, x := range q[len(q)/2:] {
		mean += x
	}
	mean /= float64(len(q) - len(q)/2)
	if res.MeanBacklog != mean {
		t.Fatalf("MeanBacklog = %v, want %v", res.MeanBacklog, mean)
	}
}

func TestCellsAndReductions(t *testing.T) {
	rs := []Result{
		{Verdict: sim.Stable, MeanBacklog: 2, PeakPotential: 10},
		{Verdict: sim.Diverging, MeanBacklog: 4, PeakPotential: 30},
		{Verdict: sim.Stable, MeanBacklog: 6, PeakPotential: 20},
		{Verdict: sim.Inconclusive, MeanBacklog: 8, PeakPotential: 5},
	}
	cells, err := Cells(rs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || len(cells[0]) != 2 {
		t.Fatalf("cells shape wrong: %v", cells)
	}
	if s := StableShare(cells[0]); s != 0.5 {
		t.Fatalf("StableShare = %v", s)
	}
	if m := MeanBacklog(cells[1]); m != 7 {
		t.Fatalf("MeanBacklog = %v", m)
	}
	if p := PeakPotential(rs); p != 30 {
		t.Fatalf("PeakPotential = %v", p)
	}
	if v := WorstVerdict(cells[0]); v != sim.Diverging {
		t.Fatalf("WorstVerdict = %v", v)
	}
	if v := WorstVerdict(cells[1]); v != sim.Inconclusive {
		t.Fatalf("WorstVerdict = %v", v)
	}
	if _, err := Cells(rs, 3); err == nil {
		t.Fatal("ragged Cells accepted")
	}
	if _, err := Cells(rs, 0); err == nil {
		t.Fatal("non-positive cell size accepted")
	}
}

func TestReporterThrottles(t *testing.T) {
	var buf bytes.Buffer
	report := NewReporter(&buf, time.Hour)
	for done := 1; done <= 10; done++ {
		report(Progress{Done: done, Total: 10, Elapsed: time.Second})
	}
	out := buf.String()
	// Exactly two lines: the first result (interval elapsed since zero
	// time) and the forced final one.
	if n := strings.Count(out, "\n"); n != 2 {
		t.Fatalf("reporter wrote %d lines:\n%s", n, out)
	}
	if !strings.Contains(out, "10/10") {
		t.Fatalf("final line missing:\n%s", out)
	}
}

func TestProgressCountsUp(t *testing.T) {
	jobs := testGrid(1, 50).Jobs()
	var last Progress
	r := &Runner{Workers: 3, Progress: func(p Progress) {
		if p.Done != last.Done+1 || p.Total != len(jobs) {
			t.Errorf("progress out of order: %+v after %+v", p, last)
		}
		last = p
	}}
	if _, err := r.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if last.Done != len(jobs) {
		t.Fatalf("final progress %d/%d", last.Done, last.Total)
	}
}
