package chaos

import (
	"strings"
	"testing"
)

func TestByteIdentical(t *testing.T) {
	if err := ByteIdentical("x", []byte("abc"), []byte("abc")); err != nil {
		t.Errorf("equal bytes flagged: %v", err)
	}
	err := ByteIdentical("journal", []byte("abXc"), []byte("abYc"))
	if err == nil || !strings.Contains(err.Error(), "byte 2") {
		t.Errorf("divergence error = %v, want first divergence at byte 2", err)
	}
	if err := ByteIdentical("journal", []byte("ab"), []byte("abc")); err == nil {
		t.Error("length mismatch not flagged")
	}
}

func TestCompleteOnce(t *testing.T) {
	if err := CompleteOnce([]int{2, 0, 1}, 3); err != nil {
		t.Errorf("complete set flagged: %v", err)
	}
	for _, tc := range []struct {
		name    string
		indices []int
		total   int
		want    string
	}{
		{"duplicate", []int{0, 1, 1, 2}, 3, "duplicated=[1]"},
		{"missing", []int{0, 2}, 3, "missing=[1]"},
		{"alien", []int{0, 1, 2, 9}, 3, "out-of-range=[9]"},
	} {
		err := CompleteOnce(tc.indices, tc.total)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestNoJobLost(t *testing.T) {
	states := map[string]string{"a": "done", "b": "running"}
	lookup := func(id string) (string, bool) { st, ok := states[id]; return st, ok }
	terminal := func(st string) bool { return st == "done" || st == "failed" || st == "cancelled" }
	if err := NoJobLost([]string{"a"}, lookup, terminal); err != nil {
		t.Errorf("terminal job flagged: %v", err)
	}
	err := NoJobLost([]string{"a", "b", "c"}, lookup, terminal)
	if err == nil || !strings.Contains(err.Error(), "b (stuck running)") || !strings.Contains(err.Error(), "c (unknown)") {
		t.Errorf("err=%v, want stuck b and unknown c", err)
	}
}

func TestBoundedRetries(t *testing.T) {
	if err := BoundedRetries(40, 10, 4); err != nil {
		t.Errorf("attempts at the bound flagged: %v", err)
	}
	if err := BoundedRetries(41, 10, 4); err == nil {
		t.Error("retry storm not flagged")
	}
}

func TestReportAggregates(t *testing.T) {
	var r Report
	r.Check(nil)
	if err := r.Err(); err != nil {
		t.Errorf("clean report errs: %v", err)
	}
	r.Check(BoundedRetries(100, 1, 1))
	r.Violationf("custom %s", "violation")
	err := r.Err()
	if err == nil || !strings.Contains(err.Error(), "custom violation") ||
		!strings.Contains(err.Error(), "retry amplification") {
		t.Errorf("aggregate err = %v", err)
	}
	if len(r.Violations()) != 2 {
		t.Errorf("violations = %v, want 2", r.Violations())
	}
}
