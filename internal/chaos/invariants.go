package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// The invariant checker states what "stability under adversarial
// injection" means for the serving plane, mirroring the paper's
// argument for the simulated network. Under every shipped schedule:
//
//  1. ByteIdentical — the merged output equals an unfaulted run's,
//     byte for byte. Chaos may slow the system, never change results.
//  2. CompleteOnce — every run index appears exactly once in the
//     merged output: nothing lost, nothing double-executed with
//     effects. (Work stealing may *attempt* an index twice; the merge
//     layer must let at most one attempt take effect.)
//  3. NoJobLost — every admitted job reaches a terminal state on the
//     surviving coordinator, across any number of promotions.
//  4. BoundedRetries — total attempts stay within k·runs: retries are
//     a constant amplification, never a storm.
//
// Each check returns a descriptive error or nil; Report aggregates
// them for a whole scenario.

// Report collects invariant violations for one chaos scenario.
type Report struct {
	violations []string
}

// Check records err as a violation when non-nil.
func (r *Report) Check(err error) {
	if err != nil {
		r.violations = append(r.violations, err.Error())
	}
}

// Violationf records a formatted violation directly.
func (r *Report) Violationf(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// Violations returns the recorded violations in order.
func (r *Report) Violations() []string { return r.violations }

// Err returns nil when every invariant held, else one error joining
// all violations.
func (r *Report) Err() error {
	if len(r.violations) == 0 {
		return nil
	}
	return errors.New("chaos invariants violated:\n  " + strings.Join(r.violations, "\n  "))
}

// ByteIdentical asserts got == want byte for byte; name labels the
// artifact in the error (e.g. "merged journal").
func ByteIdentical(name string, got, want []byte) error {
	if bytes.Equal(got, want) {
		return nil
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	at := n
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			at = i
			break
		}
	}
	return fmt.Errorf("%s differs from unfaulted run: first divergence at byte %d (got %d bytes, want %d)",
		name, at, len(got), len(want))
}

// CompleteOnce asserts indices is exactly {0, …, total-1}, each once:
// no run lost, no run executed twice with effects.
func CompleteOnce(indices []int, total int) error {
	seen := make(map[int]int, len(indices))
	for _, idx := range indices {
		seen[idx]++
	}
	var dup, missing, alien []int
	for idx, n := range seen {
		if idx < 0 || idx >= total {
			alien = append(alien, idx)
		} else if n > 1 {
			dup = append(dup, idx)
		}
	}
	for idx := 0; idx < total; idx++ {
		if seen[idx] == 0 {
			missing = append(missing, idx)
		}
	}
	if len(dup) == 0 && len(missing) == 0 && len(alien) == 0 {
		return nil
	}
	sort.Ints(dup)
	sort.Ints(missing)
	sort.Ints(alien)
	return fmt.Errorf("run-index ledger broken: duplicated=%v missing=%v out-of-range=%v (total %d)",
		dup, missing, alien, total)
}

// NoJobLost asserts every admitted job ID resolves to a terminal state.
// lookup returns the job's status and whether the coordinator knows it;
// terminal reports whether that status is final.
func NoJobLost(admitted []string, lookup func(id string) (status string, ok bool), terminal func(status string) bool) error {
	var lost []string
	for _, id := range admitted {
		st, ok := lookup(id)
		if !ok {
			lost = append(lost, id+" (unknown)")
		} else if !terminal(st) {
			lost = append(lost, id+" (stuck "+st+")")
		}
	}
	if len(lost) == 0 {
		return nil
	}
	return fmt.Errorf("admitted jobs lost across promotions: %s", strings.Join(lost, ", "))
}

// BoundedRetries asserts attempts ≤ k·runs — retry amplification is
// bounded by a constant factor of the useful work.
func BoundedRetries(attempts int64, runs int, k float64) error {
	limit := k * float64(runs)
	if float64(attempts) <= limit {
		return nil
	}
	return fmt.Errorf("retry amplification unbounded: %d attempts for %d runs exceeds k·runs = %.0f (k=%g)",
		attempts, runs, limit, k)
}
