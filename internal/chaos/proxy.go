package chaos

import (
	"context"
	"io"
	"net"
	"sync"
)

// Proxy is the TCP-level face of the injector: a listener that forwards
// byte streams to Target, applying the schedule per accepted
// connection. It exists for faults the RoundTripper cannot express —
// resets that kill an established stream, blackholes that hold a raw
// socket open — and for injecting between processes that cannot share
// an in-process transport.
//
// Per-connection decisions use the same (schedule, seed, route, slot)
// function as the HTTP transport, with the connection's accept sequence
// as the slot. Kinds map to stream semantics: Latency delays the first
// forwarded bytes, Reset closes the client connection immediately, Drop
// and Cut hold it open unanswered until the hold cap, Stall delays the
// target→client direction, and Err (which cannot forge an HTTP
// response at this level) degrades to Reset.
type Proxy struct {
	Injector *Injector
	// From and To name the route; Target is the host:port dialed for
	// each accepted connection.
	From, To string
	Target   string

	mu     sync.Mutex
	ln     net.Listener
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves until Close. It returns the bound address.
func (p *Proxy) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.mu.Lock()
	p.ln = ln
	p.cancel = cancel
	p.mu.Unlock()
	p.wg.Add(1)
	go p.serve(ctx, ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and tears down every live connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	ln, cancel := p.ln, p.cancel
	p.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) serve(ctx context.Context, ln net.Listener) {
	defer p.wg.Done()
	route := Route(p.From, p.To)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, act := p.Injector.take(route, "TCP", "/")
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer conn.Close()
			p.handle(ctx, conn, act)
		}()
	}
}

func (p *Proxy) handle(ctx context.Context, conn net.Conn, act action) {
	in := p.Injector
	switch act.kind {
	case Reset, Err:
		return // immediate close: RST-like from the client's view
	case Drop, Cut:
		in.Sleep(ctx, in.Hold) // hold unanswered, then close
		return
	case Latency:
		if in.Sleep(ctx, act.delay) != nil {
			return
		}
	}
	up, err := net.Dial("tcp", p.Target)
	if err != nil {
		return
	}
	defer up.Close()
	// Close both sides when the proxy shuts down mid-stream.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
			up.Close()
		case <-done:
		}
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.Copy(up, conn) // client -> target
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	if act.kind == Stall && in.Sleep(ctx, act.delay) != nil {
		conn.Close()
		up.Close()
		wg.Wait()
		return
	}
	io.Copy(conn, up) // target -> client
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	wg.Wait()
}
