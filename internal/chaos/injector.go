package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// Entry is one injected fault in the transcript: what fired, on which
// route, at which slot. Transcripts are the determinism witness — the
// same schedule and seed must reproduce them byte-identically.
type Entry struct {
	Route string
	Slot  int64
	Kind  Kind
	// Detail is the kind-specific payload in canonical form, e.g.
	// "ms=7" or "code=503".
	Detail string
}

func (e Entry) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%s %d %s", e.Route, e.Slot, e.Kind)
	}
	return fmt.Sprintf("%s %d %s %s", e.Route, e.Slot, e.Kind, e.Detail)
}

// action is a compiled injection decision for one request.
type action struct {
	kind  Kind // "" = pass through untouched
	delay time.Duration
	code  int
}

// Injector compiles a Schedule + seed into per-request injection
// decisions and records the transcript. One Injector is shared by every
// Transport and Proxy of a process so route slot counters are global to
// the process, like a single unreliable network.
//
// Determinism contract: the decision for (route, slot) is a pure
// function of (schedule, seed, route, slot). Slot allocation within a
// route follows that route's request order; traffic on other routes
// never perturbs it.
type Injector struct {
	events []Event // canonical order
	seed   uint64

	// Sleep is the delay hook (Latency/Stall/Drop); tests inject a
	// virtual clock. Defaults to a context-aware real sleep.
	Sleep func(context.Context, time.Duration) error
	// Hold caps how long Drop blackholes a request whose context never
	// expires. Default 30s.
	Hold time.Duration

	mu    sync.Mutex
	names map[string]string // host:port -> endpoint name
	slots map[string]int64  // route -> next slot
	tally map[string]int64  // "route METHOD /seg1/seg2" -> requests
	log   []Entry
}

// NewInjector compiles the schedule. The seed plays the same role as a
// sweep seed: one seed, one reproducible adversary.
func NewInjector(s Schedule, seed uint64) (*Injector, error) {
	norm := Schedule{Events: s.sortedCopy()}
	for i := range norm.Events {
		norm.Events[i] = normalizeEvent(norm.Events[i])
	}
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		events: norm.Events,
		seed:   seed,
		Sleep:  sleepCtx,
		Hold:   30 * time.Second,
		names:  make(map[string]string),
		slots:  make(map[string]int64),
		tally:  make(map[string]int64),
	}, nil
}

// MustInjector is NewInjector for schedules known valid (tests,
// shipped schedules).
func MustInjector(s Schedule, seed uint64) *Injector {
	in, err := NewInjector(s, seed)
	if err != nil {
		panic(err)
	}
	return in
}

// Register names an endpoint: requests addressed to hostport resolve to
// name when matching event routes. Unregistered destinations use their
// host:port as the endpoint name.
func (in *Injector) Register(name, hostport string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.names[hostport] = name
}

// endpoint resolves a host:port to its registered name.
func (in *Injector) endpoint(hostport string) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n, ok := in.names[hostport]; ok {
		return n
	}
	return hostport
}

// take allocates the next slot on route and tallies the request under
// its method and path class (first two path segments), then returns the
// compiled decision for that slot.
func (in *Injector) take(route, method, path string) (int64, action) {
	key := route + " " + method + " " + pathClass(path)
	in.mu.Lock()
	slot := in.slots[route]
	in.slots[route] = slot + 1
	in.tally[key]++
	act, ok := in.decide(route, slot)
	if ok {
		in.log = append(in.log, Entry{Route: route, Slot: slot, Kind: act.kind, Detail: detail(act)})
	}
	in.mu.Unlock()
	return slot, act
}

// decide evaluates the schedule for (route, slot). Events are walked in
// canonical order; each probabilistic event consumes one draw from the
// (seed, route, slot)-derived stream, and the first event that fires
// wins. Called with in.mu held.
func (in *Injector) decide(route string, slot int64) (action, bool) {
	src, dst, ok := routeSplit(route)
	if !ok {
		src, dst = route, route
	}
	var stream *rng.Source
	draw := func() float64 {
		if stream == nil {
			h := fnv.New64a()
			io.WriteString(h, route)
			stream = rng.New(in.seed).Split(h.Sum64()).Split(uint64(slot))
		}
		return stream.Float64()
	}
	for _, ev := range in.events {
		if !ev.Active(slot) || !ev.Matches(src, dst) {
			continue
		}
		if ev.P < 1 && draw() >= ev.P {
			continue
		}
		act := action{kind: ev.Kind, code: ev.Code}
		switch ev.Kind {
		case Latency:
			ms := ev.MS
			if ev.Jitter > 0 {
				ms += int64(draw() * float64(ev.Jitter))
			}
			act.delay = time.Duration(ms) * time.Millisecond
		case Stall:
			act.delay = time.Duration(ev.MS) * time.Millisecond
		}
		return act, true
	}
	return action{}, false
}

func detail(act action) string {
	switch act.kind {
	case Latency, Stall:
		return fmt.Sprintf("ms=%d", act.delay.Milliseconds())
	case Err:
		return fmt.Sprintf("code=%d", act.code)
	}
	return ""
}

// pathClass truncates a URL path to its first two segments so tallies
// aggregate over job IDs ("/v1/jobs/abc123" -> "/v1/jobs").
func pathClass(path string) string {
	if path == "" {
		return "/"
	}
	segs := strings.SplitN(strings.TrimPrefix(path, "/"), "/", 3)
	if len(segs) > 2 {
		segs = segs[:2]
	}
	return "/" + strings.Join(segs, "/")
}

// Transcript returns the injected events sorted by (route, slot) — the
// canonical byte-stable order, independent of cross-route arrival
// interleaving.
func (in *Injector) Transcript() []Entry {
	in.mu.Lock()
	out := make([]Entry, len(in.log))
	copy(out, in.log)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Route != out[j].Route {
			return out[i].Route < out[j].Route
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}

// WriteTranscript writes the canonical transcript, one entry per line.
func (in *Injector) WriteTranscript(w io.Writer) error {
	for _, e := range in.Transcript() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// Requests returns the total number of requests that passed through the
// injector (injected or not).
func (in *Injector) Requests() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, c := range in.tally {
		n += c
	}
	return n
}

// RequestsMatching sums request counts over tally keys containing
// substr; keys have the form "src>dst METHOD /seg1/seg2". Used by the
// retry-amplification invariant to count, e.g., "POST /v1/jobs"
// attempts.
func (in *Injector) RequestsMatching(substr string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for k, c := range in.tally {
		if strings.Contains(k, substr) {
			n += c
		}
	}
	return n
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
