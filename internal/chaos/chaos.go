// Package chaos is the serving-plane counterpart of internal/faults: a
// Schedule of typed network-fault events — latency spikes, connection
// resets, blackholed requests, 5xx bursts, slow-loris response stalls
// and asymmetric partitions between named endpoints — compiled into an
// http.RoundTripper wrapper and a TCP-level proxy listener that inject
// the faults into real client ↔ coordinator ↔ worker traffic.
//
// The paper proves stability of the *simulated* network under
// adversarial injection; this package turns the same argument on the
// distributed system that runs the simulations. Determinism mirrors
// internal/faults: every injection decision is a pure function of
// (schedule, seed, route, slot), where a route is the ordered pair of
// endpoint names "src>dst" and the slot is the request's sequence
// number on that route. No wall-clock time and no global ordering feeds
// a decision, so the injected-event transcript replays byte-identically
// from a seed: concurrent traffic on other routes can never perturb a
// route's stream, and any workload whose per-route request order is
// deterministic (sequential pollers, keyed retries) produces identical
// transcripts at any -race/parallelism setting.
//
// Windows are half-open [From, To) over route slots, not time: "the
// 3rd through 7th request on this route", which is what makes replay
// exact. Schedules share the internal/faults codec style — a compact
// text grammar for flags and a JSON form for files (see codec.go).
package chaos

import (
	"fmt"
	"sort"
	"strings"
)

// Kind names a serving-plane fault type. The string values are the
// codec's wire format.
type Kind string

const (
	// Latency delays matching requests by MS milliseconds plus a
	// seed-deterministic jitter in [0, Jitter) ms before forwarding.
	Latency Kind = "latency"
	// Reset fails matching requests immediately with a connection-reset
	// error; the request never reaches the destination.
	Reset Kind = "reset"
	// Drop blackholes matching requests: they are held without an
	// answer until the caller's context expires (or the injector's hold
	// cap), like a silently dropped packet.
	Drop Kind = "drop"
	// Err short-circuits matching requests with a synthesized HTTP
	// response carrying Code (default 503); the destination is never
	// contacted. At the TCP proxy level, where no HTTP response can be
	// forged, Err degrades to Reset.
	Err Kind = "err"
	// Stall forwards the request but delays the response body by MS
	// milliseconds before the first byte — a slow-loris read.
	Stall Kind = "stall"
	// Cut is an asymmetric partition: matching requests fail fast with
	// an unreachable error for the whole window. Direction matters —
	// cutting "a>b" leaves "b>a" intact; cut both to partition fully.
	Cut Kind = "cut"
)

// Event is one typed fault with a half-open window [From, To) over the
// per-route request slot. Src and Dst name the endpoints the event
// applies to; "*" (or empty) matches any endpoint. Fields beyond the
// window apply only to the kinds that document them.
type Event struct {
	Kind Kind   `json:"kind"`
	From int64  `json:"from"`
	To   int64  `json:"to"`
	Src  string `json:"src,omitempty"`
	Dst  string `json:"dst,omitempty"`
	// P is the per-request trigger probability in (0, 1]; 0 is
	// normalized to 1 (always fire).
	P float64 `json:"p,omitempty"`
	// MS is the delay for Latency and Stall, in milliseconds.
	MS int64 `json:"ms,omitempty"`
	// Jitter widens Latency by a uniform [0, Jitter) ms draw.
	Jitter int64 `json:"jitter,omitempty"`
	// Code is the synthesized status for Err (default 503).
	Code int `json:"code,omitempty"`
}

// Active reports whether the event's window contains slot n.
func (ev Event) Active(n int64) bool { return n >= ev.From && n < ev.To }

// Matches reports whether the event applies to route src>dst.
func (ev Event) Matches(src, dst string) bool {
	return patternMatch(ev.Src, src) && patternMatch(ev.Dst, dst)
}

func patternMatch(pat, name string) bool {
	return pat == "" || pat == "*" || pat == name
}

// Schedule is an ordered list of chaos events. The zero value injects
// nothing.
type Schedule struct {
	Events []Event `json:"events"`
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// Validate checks windows, kinds and per-kind parameters.
func (s Schedule) Validate() error {
	for i, ev := range s.Events {
		if ev.From < 0 || ev.To < ev.From {
			return fmt.Errorf("chaos: event %d (%s): bad window [%d,%d)", i, ev.Kind, ev.From, ev.To)
		}
		if ev.P < 0 || ev.P > 1 {
			return fmt.Errorf("chaos: event %d (%s): p=%v outside [0,1]", i, ev.Kind, ev.P)
		}
		switch ev.Kind {
		case Latency:
			if ev.MS <= 0 && ev.Jitter <= 0 {
				return fmt.Errorf("chaos: event %d: latency needs ms or jitter", i)
			}
			if ev.MS < 0 || ev.Jitter < 0 {
				return fmt.Errorf("chaos: event %d: negative latency", i)
			}
		case Stall:
			if ev.MS <= 0 {
				return fmt.Errorf("chaos: event %d: stall needs ms>0", i)
			}
		case Err:
			if ev.Code != 0 && (ev.Code < 100 || ev.Code > 599) {
				return fmt.Errorf("chaos: event %d: bad status code %d", i, ev.Code)
			}
		case Reset, Drop, Cut:
		default:
			return fmt.Errorf("chaos: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// sortedCopy returns the events in canonical order: (From, To, Kind,
// Src, Dst). Decision streams walk events in this order, so two
// schedules with the same event set behave identically however they
// were written.
func (s Schedule) sortedCopy() []Event {
	out := make([]Event, len(s.Events))
	copy(out, s.Events)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	return out
}

// Route renders the canonical route name for a src/dst endpoint pair.
func Route(src, dst string) string { return src + ">" + dst }

// Shipped returns the named schedules the invariant suite and the CI
// chaos-smoke job run. Every schedule here must keep all four
// invariants (byte-identity, exactly-once effects, no job loss, bounded
// retry amplification) green — see invariants.go and the federation
// chaos tests.
func Shipped() map[string]Schedule {
	text := map[string]string{
		// A browned-out coordinator front: the first submissions on
		// every route answer 503, the next few responses stall, and a
		// small latency+jitter floor runs throughout.
		"burst-5xx-stall": "err@0-2:code=503;stall@2-5:ms=40;latency@0-64:ms=1,jitter=3",
		// Flaky transport: a probabilistic mix of resets and latency
		// spikes across every route.
		"reset-storm": "reset@0-24:p=0.4;latency@0-64:ms=2,jitter=8",
		// Isolate each standby rank from the primary in turn: rank 1
		// loses its first heartbeat polls, rank 2 the next window. The
		// partitions heal; no spurious promotion may result.
		"partition-each-rank": "cut@0-4:r=rank1>primary;cut@4-8:r=rank2>primary",
	}
	out := make(map[string]Schedule, len(text))
	for name, t := range text {
		s, err := Parse(t)
		if err != nil {
			panic("chaos: bad shipped schedule " + name + ": " + err.Error())
		}
		out[name] = s
	}
	return out
}

// routeSplit is the inverse of Route; returns ok=false when the name
// has no direction marker.
func routeSplit(route string) (src, dst string, ok bool) {
	src, dst, ok = strings.Cut(route, ">")
	return
}
